#!/usr/bin/env python3
"""Compare a fresh bench JSON against the committed baseline.

Usage: check_bench_regression.py BASELINE.json FRESH.json
       [--fail-pct 25] [--warn-pct 10]

Matches series entries by metric (plus enterprises/shards for e2e
points) and compares their throughput field (events_per_sec or
slots_per_sec). A drop beyond --fail-pct fails the job; a drop between
--warn-pct and --fail-pct prints an advisory warning only. Speedups and
new metrics never fail — baselines are refreshed by committing a new
JSON, not by loosening this check.

CI runs the fresh side in --quick mode (1 repetition, reduced event
counts): rates stay comparable to the full-mode baselines, the extra
noise is why the fail threshold is generous.
"""

import argparse
import json
import sys


RATE_FIELDS = ("events_per_sec", "slots_per_sec")


def series_key(entry):
    key = entry.get("metric", "?")
    for extra in ("enterprises", "shards"):
        if extra in entry:
            key += f"_{entry[extra]}"
    return key


def rate_of(entry):
    for f in RATE_FIELDS:
        if f in entry:
            return float(entry[f])
    return None


def load(path):
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for entry in doc.get("series", []):
        rate = rate_of(entry)
        if rate is not None:
            out[series_key(entry)] = rate
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--fail-pct", type=float, default=25.0)
    ap.add_argument("--warn-pct", type=float, default=10.0)
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures = []
    for key, base_rate in sorted(base.items()):
        if key not in fresh:
            print(f"?? {key}: missing from fresh run (skipped)")
            continue
        fresh_rate = fresh[key]
        drop_pct = (1.0 - fresh_rate / base_rate) * 100.0
        line = (f"{key}: baseline {base_rate:,.0f}/s fresh "
                f"{fresh_rate:,.0f}/s ({-drop_pct:+.1f}%)")
        if drop_pct > args.fail_pct:
            print(f"FAIL {line}")
            failures.append(key)
        elif drop_pct > args.warn_pct:
            print(f"WARN {line}")
        else:
            print(f"ok   {line}")

    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{args.fail_pct:.0f}% vs the committed baseline "
              f"({args.baseline}).")
        print("If the slowdown is intended, regenerate and commit the "
              "baseline JSON with the full-mode bench.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
