// Sharded chaos-corpus driver. Enumerates the declarative corpus manifest
// (stack x seed x adversary), deterministically selects this shard's
// slice, forks one worker process per core (each simulated run stays
// single-threaded), and aggregates per-run reports into a machine-readable
// JSON summary. Every failure prints the exact single-run repro command.
//
//   run_corpus --shard-index=0 --shard-count=4 --jobs=8 --out=shard0.json
//   run_corpus --list --shard-index=2 --shard-count=4
//   run_corpus --stack=pbft --seed=7 --adversary=gray     # one-run repro
//
// Sharding is hash-stable: an entry's shard depends only on its identity
// (stack, seed, adversary), never on manifest position, so growing the
// corpus appends to shards instead of reshuffling them.

#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/corpus.h"

namespace qanaat {
namespace {

struct Args {
  int shard_index = 0;
  int shard_count = 1;
  int jobs = 0;  // 0 = hardware concurrency
  int seeds = 0;           // 0 = manifest default
  int conflict_seeds = -1;  // <0 = manifest default
  std::string out;
  bool list = false;
  // Single-run repro mode (enabled when --seed is given).
  bool single = false;
  ChaosStack stack = ChaosStack::kQanaatPbft;
  uint64_t seed = 0;
  bool adversary_set = false;
  AdversaryKind adversary = AdversaryKind::kNone;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: run_corpus [--shard-index=I --shard-count=N] [--jobs=J]\n"
      "                  [--seeds=N] [--conflict-seeds=N] [--out=FILE]\n"
      "                  [--list]\n"
      "       run_corpus --stack=pbft|paxos|fabric --seed=S\n"
      "                  [--adversary=none|gray|equivocation|silence|"
      "conflict]\n");
}

bool ParseArgs(int argc, char** argv, Args* a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--shard-index=")) {
      a->shard_index = std::atoi(v);
    } else if (const char* v = val("--shard-count=")) {
      a->shard_count = std::atoi(v);
    } else if (const char* v = val("--jobs=")) {
      a->jobs = std::atoi(v);
    } else if (const char* v = val("--seeds=")) {
      a->seeds = std::atoi(v);
    } else if (const char* v = val("--conflict-seeds=")) {
      a->conflict_seeds = std::atoi(v);
    } else if (const char* v = val("--out=")) {
      a->out = v;
    } else if (arg == "--list") {
      a->list = true;
    } else if (const char* v = val("--stack=")) {
      if (!ParseStack(v, &a->stack)) return false;
    } else if (const char* v = val("--seed=")) {
      a->single = true;
      a->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = val("--adversary=")) {
      a->adversary_set = true;
      if (!ParseAdversary(v, &a->adversary)) return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (a->shard_count < 1 || a->shard_index < 0 ||
      a->shard_index >= a->shard_count) {
    std::fprintf(stderr, "invalid shard %d/%d\n", a->shard_index,
                 a->shard_count);
    return false;
  }
  if (a->single && a->seed == 0) {
    std::fprintf(stderr, "--seed must be >= 1\n");
    return false;
  }
  return true;
}

// Worker -> parent result lines: one TSV record per finished run, written
// to a per-worker temp file (a crashed worker simply leaves later records
// missing, which the parent turns into failures with repro lines).
std::string TsvEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string TsvUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char n = s[++i];
      out += n == 't' ? '\t' : n == 'n' ? '\n' : n;
    } else {
      out += s[i];
    }
  }
  return out;
}

void WriteResult(FILE* f, size_t index, const CorpusRunResult& r) {
  std::fprintf(f, "%zu\t%d\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64 "\t%" PRIu64
                  "\t%" PRId64 "\t%s\n",
               index, r.passed ? 1 : 0, r.report.trace_hash,
               r.report.commits_total, r.report.faults_applied,
               r.report.net_silenced,
               static_cast<int64_t>(r.report.liveness_resume_us),
               TsvEscape(r.failure).c_str());
  std::fflush(f);
}

bool ParseResult(const std::string& line, size_t* index, CorpusRunResult* r) {
  std::vector<std::string> fields;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      fields.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  if (fields.size() != 8) return false;
  *index = std::strtoull(fields[0].c_str(), nullptr, 10);
  r->passed = fields[1] == "1";
  r->report.trace_hash = std::strtoull(fields[2].c_str(), nullptr, 10);
  r->report.commits_total = std::strtoull(fields[3].c_str(), nullptr, 10);
  r->report.faults_applied = std::strtoull(fields[4].c_str(), nullptr, 10);
  r->report.net_silenced = std::strtoull(fields[5].c_str(), nullptr, 10);
  r->report.liveness_resume_us =
      std::strtoll(fields[6].c_str(), nullptr, 10);
  r->failure = TsvUnescape(fields[7]);
  return true;
}

int RunSingle(const Args& a) {
  CorpusEntry e;
  e.stack = a.stack;
  e.seed = a.seed;
  e.adversary =
      a.adversary_set ? a.adversary : AdversaryFor(a.stack, a.seed);
  std::fprintf(stderr, "running %s seed %" PRIu64 " adversary %s\n",
               StackArgName(e.stack), e.seed, AdversaryName(e.adversary));
  CorpusRunResult r = RunEntry(e);
  std::printf("%s", SummaryJson(0, 1, {r}).c_str());
  if (!r.passed) {
    std::fprintf(stderr, "FAIL: %s\n  repro: %s\n", r.failure.c_str(),
                 ReproCommand(e).c_str());
    return 1;
  }
  return 0;
}

int RunShard(const Args& a) {
  CorpusManifest manifest;
  if (a.seeds > 0) manifest.seeds = a.seeds;
  if (a.conflict_seeds >= 0) manifest.conflict_seeds = a.conflict_seeds;
  std::vector<CorpusEntry> mine;
  for (const CorpusEntry& e : manifest.Enumerate()) {
    if (ShardOf(e, a.shard_count) == a.shard_index) mine.push_back(e);
  }

  if (a.list) {
    for (const CorpusEntry& e : mine) {
      std::printf("%s\t%" PRIu64 "\t%s\n", StackArgName(e.stack), e.seed,
                  AdversaryName(e.adversary));
    }
    std::fprintf(stderr, "shard %d/%d: %zu of %d entries\n", a.shard_index,
                 a.shard_count, mine.size(),
                 manifest.seeds * 3 + manifest.conflict_seeds * 2);
    return 0;
  }

  int jobs = a.jobs > 0
                 ? a.jobs
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  if (static_cast<size_t>(jobs) > mine.size() && !mine.empty()) {
    jobs = static_cast<int>(mine.size());
  }
  std::fprintf(stderr, "shard %d/%d: %zu runs across %d workers\n",
               a.shard_index, a.shard_count, mine.size(), jobs);

  // One temp file + one forked worker per job slot; worker w owns every
  // entry with index % jobs == w. The sim itself stays single-threaded —
  // parallelism is pure process-level fan-out, so determinism is free.
  std::vector<FILE*> files;
  std::vector<pid_t> pids;
  for (int w = 0; w < jobs; ++w) {
    FILE* f = std::tmpfile();
    if (f == nullptr) {
      std::perror("tmpfile");
      return 2;
    }
    files.push_back(f);
    pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      return 2;
    }
    if (pid == 0) {
      for (size_t i = static_cast<size_t>(w); i < mine.size();
           i += static_cast<size_t>(jobs)) {
        WriteResult(f, i, RunEntry(mine[i]));
      }
      std::_Exit(0);
    }
    pids.push_back(pid);
  }

  bool worker_crashed = false;
  for (pid_t pid : pids) {
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 ||
        !(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      worker_crashed = true;
    }
  }

  // Collect: anything a worker never reported (it crashed mid-run) is a
  // failure attributed to the exact entry, repro line included.
  std::vector<CorpusRunResult> results(mine.size());
  std::vector<bool> seen(mine.size(), false);
  for (FILE* f : files) {
    std::rewind(f);
    std::string line;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      size_t index = 0;
      CorpusRunResult r;
      if (ParseResult(line, &index, &r) && index < mine.size()) {
        r.entry = mine[index];
        results[index] = r;
        seen[index] = true;
      }
      line.clear();
    }
    std::fclose(f);
  }
  for (size_t i = 0; i < mine.size(); ++i) {
    if (!seen[i]) {
      results[i].entry = mine[i];
      results[i].passed = false;
      results[i].failure = "worker process died before reporting";
    }
  }

  std::string json = SummaryJson(a.shard_index, a.shard_count, results);
  if (!a.out.empty()) {
    FILE* f = std::fopen(a.out.c_str(), "w");
    if (f == nullptr) {
      std::perror("open --out");
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fputs(json.c_str(), stdout);
  }

  size_t failed = 0;
  for (const auto& r : results) {
    if (r.passed) continue;
    ++failed;
    std::fprintf(stderr, "FAIL %s seed %" PRIu64 " adversary %s: %s\n",
                 StackArgName(r.entry.stack), r.entry.seed,
                 AdversaryName(r.entry.adversary), r.failure.c_str());
    std::fprintf(stderr, "  repro: %s\n", ReproCommand(r.entry).c_str());
  }
  std::fprintf(stderr, "shard %d/%d: %zu/%zu passed\n", a.shard_index,
               a.shard_count, results.size() - failed, results.size());
  return (failed > 0 || worker_crashed) ? 1 : 0;
}

}  // namespace
}  // namespace qanaat

int main(int argc, char** argv) {
  qanaat::Args args;
  if (!qanaat::ParseArgs(argc, argv, &args)) {
    qanaat::Usage();
    return 2;
  }
  if (args.single) return qanaat::RunSingle(args);
  return qanaat::RunShard(args);
}
