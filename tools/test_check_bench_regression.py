#!/usr/bin/env python3
"""Smoke tests for check_bench_regression.py.

Exercises the CI gate's four interesting behaviors: clean pass, advisory
warning inside the (warn, fail] band, hard failure past --fail-pct, and
a series missing from the fresh run (skipped, never failed).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def bench_doc(rates):
    """rates: dict metric -> (events_per_sec, optional enterprises)."""
    series = []
    for metric, spec in rates.items():
        entry = {"metric": metric, "events_per_sec": spec[0]}
        if len(spec) > 1:
            entry["enterprises"] = spec[1]
        series.append(entry)
    return {"series": series}


class CheckBenchRegressionTest(unittest.TestCase):
    def run_tool(self, baseline, fresh, extra=()):
        with tempfile.TemporaryDirectory() as d:
            bpath = os.path.join(d, "baseline.json")
            fpath = os.path.join(d, "fresh.json")
            with open(bpath, "w") as f:
                json.dump(baseline, f)
            with open(fpath, "w") as f:
                json.dump(fresh, f)
            proc = subprocess.run(
                [sys.executable, TOOL, bpath, fpath, *extra],
                capture_output=True, text=True)
            return proc.returncode, proc.stdout

    def test_pass_when_rates_hold(self):
        base = bench_doc({"sim_events": (100000.0,)})
        fresh = bench_doc({"sim_events": (99000.0,)})
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("ok   sim_events", out)

    def test_speedup_never_fails(self):
        base = bench_doc({"sim_events": (100000.0,)})
        fresh = bench_doc({"sim_events": (250000.0,)})
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)

    def test_advisory_band_warns_but_passes(self):
        # 15% drop: between the 10% warn and 25% fail thresholds.
        base = bench_doc({"sim_events": (100000.0,)})
        fresh = bench_doc({"sim_events": (85000.0,)})
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("WARN sim_events", out)

    def test_large_drop_fails(self):
        # 40% drop: past the default 25% fail threshold.
        base = bench_doc({"sim_events": (100000.0,)})
        fresh = bench_doc({"sim_events": (60000.0,)})
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL sim_events", out)

    def test_custom_fail_pct(self):
        # The same 15% drop fails once --fail-pct is tightened below it.
        base = bench_doc({"sim_events": (100000.0,)})
        fresh = bench_doc({"sim_events": (85000.0,)})
        code, out = self.run_tool(base, fresh, extra=("--fail-pct", "12"))
        self.assertEqual(code, 1, out)

    def test_missing_series_is_skipped_not_failed(self):
        base = bench_doc({"sim_events": (100000.0,),
                          "paxos_slots": (50000.0,)})
        fresh = bench_doc({"sim_events": (100000.0,)})
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 0, out)
        self.assertIn("?? paxos_slots: missing", out)

    def test_series_key_includes_topology(self):
        # Same metric at different enterprise counts are distinct series:
        # a regression at one scale must not hide behind the other.
        base = bench_doc({"e2e": (100000.0, 2)})
        fresh = {"series": [{"metric": "e2e", "enterprises": 2,
                             "events_per_sec": 60000.0},
                            {"metric": "e2e", "enterprises": 4,
                             "events_per_sec": 100000.0}]}
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 1, out)
        self.assertIn("FAIL e2e_2", out)


if __name__ == "__main__":
    unittest.main()
