// Confidential data leakage prevention (paper §3.4, R3): even if an
// attacker compromises execution nodes — the nodes that actually hold
// confidential data — the privacy firewall keeps the data inside.
//
// This demo compromises one execution node of a cluster and shows:
//  1. its direct leak attempts (messages to clients / ordering nodes /
//     other enterprises) are physically impossible — the network wiring
//     gives it links only to the top filter row;
//  2. its protocol-level exfiltration attempt (stuffing data into reply
//     messages) is filtered: corrupted replies never gather the g+1
//     matching shares a reply certificate needs;
//  3. the system stays live and correct throughout (2g+1 executors
//     tolerate g Byzantine ones).

#include <cstdio>

#include "qanaat/system.h"

using namespace qanaat;

int main() {
  QanaatSystem::Options opts;
  opts.params.num_enterprises = 2;
  opts.params.shards_per_enterprise = 1;
  opts.params.failure_model = FailureModel::kByzantine;
  opts.params.use_firewall = true;
  opts.params.family = ProtocolFamily::kFlattened;
  QanaatSystem sys(std::move(opts));

  const ClusterConfig& cluster_a = sys.directory().Cluster(0);
  std::printf("Cluster A/0: %zu ordering, %zu execution, %zux%zu filters\n\n",
              cluster_a.ordering.size(), cluster_a.execution.size(),
              cluster_a.filter_rows.size(), cluster_a.filter_rows[0].size());

  // ---- the adversary ----------------------------------------------------
  ExecutionNode* evil = sys.execution_node(0, 0);
  evil->SetByzantine(true);
  evil->SetCorruptReplies(true);  // tries to smuggle data via replies
  std::printf("compromised execution node: %s (id %u)\n\n",
              evil->name().c_str(), evil->id());

  // ---- workload with confidential collaboration -------------------------
  WorkloadParams wl;
  wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  wl.cross_fraction = 0.4;  // d_AB traffic carries shared secrets
  ClientMachine* client = sys.AddClient(wl, 400);
  client->Start(0, 2 * kSecond, 0, 2 * kSecond);

  // ---- attempt 1: direct exfiltration ------------------------------------
  std::printf("-- attempt 1: direct messages out of the enclave --\n");
  uint64_t blocked0 = sys.net().blocked_sends();
  auto leak = std::make_shared<Message>(MsgType::kReply);
  leak->wire_bytes = 4096;  // "the stolen ledger"
  sys.net().Send(evil->id(), client->id(), leak);
  sys.net().Send(evil->id(), cluster_a.ordering[0], leak);
  sys.net().Send(evil->id(), sys.directory().Cluster(1).execution[0], leak);
  sys.env().sim.Run(10 * kMillisecond);
  std::printf("   leak attempts blocked by physical wiring: %llu/3\n\n",
              (unsigned long long)(sys.net().blocked_sends() - blocked0));

  // ---- attempt 2: protocol-level exfiltration ----------------------------
  std::printf("-- attempt 2: corrupt replies through the firewall --\n");
  sys.env().sim.Run(3 * kSecond);
  uint64_t filtered = 0;
  for (int row = 0; row < 2; ++row) {
    for (int i = 0; i < 2; ++i) {
      filtered += sys.filter_node(0, row, i)->filtered_messages();
    }
  }
  std::printf("   corrupted shares dropped by filters: (bad-share drops "
              "counted below)\n");
  std::printf("   firewall.filtered_bad_share = %llu\n",
              (unsigned long long)sys.env().metrics.Get(
                  "firewall.filtered_bad_share"));
  (void)filtered;

  // ---- the system is still healthy ---------------------------------------
  std::printf("\n-- system health under attack --\n");
  std::printf("   transactions accepted: %llu / %llu issued\n",
              (unsigned long long)client->accepted(),
              (unsigned long long)client->issued());
  std::printf("   mean latency: %.2f ms\n",
              client->latencies().Mean() / 1000.0);
  Status audit = sys.VerifyAllLedgers();
  std::printf("   ledger audit: %s\n", audit.ToString().c_str());

  bool ok = audit.ok() && client->accepted() > 0 &&
            client->accepted() == client->issued() &&
            sys.net().blocked_sends() - blocked0 == 3;
  std::printf("\n%s\n", ok ? "privacy firewall demo: OK"
                           : "privacy firewall demo: FAILED");
  return ok ? 0 : 1;
}
