// Consistency across collaboration workflows (paper §3.2, Fig 2(c), R2):
// enterprises K, L, M collaborate in one workflow and L, M, N in another.
// Because Qanaat keys data collections by their enterprise set, d_L, d_M
// and d_LM are the *same* collections in both workflows — a supplier
// provisioning for both Pfizer and Moderna sees the total demand.
//
// The demo registers both workflows, routes orders from each through the
// shared collection d_LM, and shows that L's internal provisioning
// transaction observes the combined state (γ-captured) rather than two
// independent per-workflow copies.

#include <cstdio>

#include "qanaat/system.h"

using namespace qanaat;

namespace {
constexpr EnterpriseId kK = 0, kL = 1, kM = 2, kN = 3;
constexpr uint64_t kDemandKey = 77;
}  // namespace

int main() {
  QanaatSystem::Options opts;
  opts.params.num_enterprises = 4;
  opts.params.shards_per_enterprise = 1;
  opts.params.failure_model = FailureModel::kCrash;
  opts.params.family = ProtocolFamily::kFlattened;
  opts.params.batch_timeout_us = 500;
  opts.pairwise_collections = false;
  QanaatSystem sys(std::move(opts));

  // Register the two workflows of Fig 2(c) on top of the default model.
  DataModel* model = sys.mutable_model();
  Status s1 = model->AddWorkflow(EnterpriseSet{kK, kL, kM});
  Status s2 = model->AddWorkflow(EnterpriseSet{kL, kM, kN});
  Status s3 = model->AddIntermediateCollection(EnterpriseSet{kL, kM});
  if (!s1.ok() || !s2.ok() || !s3.ok()) {
    std::printf("model setup failed\n");
    return 1;
  }

  CollectionId d_klm{EnterpriseSet{kK, kL, kM}};
  CollectionId d_lmn{EnterpriseSet{kL, kM, kN}};
  CollectionId d_lm{EnterpriseSet{kL, kM}};
  CollectionId d_l{EnterpriseSet::Single(kL)};

  std::printf("workflows:    %s and %s\n", d_klm.Label().c_str(),
              d_lmn.Label().c_str());
  std::printf("shared:       %s, %s, d_M  (Fig 2(c))\n\n",
              d_lm.Label().c_str(), d_l.Label().c_str());

  // d_LM is order-dependent on both workflow roots; L's local collection
  // depends on all three.
  std::printf("order-dependencies of %s:\n", d_lm.Label().c_str());
  for (const auto& dep : model->OrderDependenciesOf(d_lm)) {
    std::printf("  -> %s\n", dep.Label().c_str());
  }

  // ---- drive both workflows -------------------------------------------
  // Two orders for materials land in d_LM: one placed in the KLM
  // workflow context, one in the LMN context. They accumulate in the
  // same collection.
  struct Driver : Actor {
    Driver(Env* env, const Directory* dir) : Actor(env, "driver"),
                                             dir_(dir) {}
    void Order(const CollectionId& coll, EnterpriseId init, int64_t amount,
               std::vector<TxOp> extra = {}) {
      Transaction tx;
      tx.client = id();
      tx.client_ts = ++ts_;
      tx.collection = coll;
      tx.shards = {0};
      tx.initiator = init;
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, kDemandKey, amount, {}});
      for (auto& op : extra) tx.ops.push_back(op);
      tx.client_sig = env()->keystore.Sign(id(), tx.Digest());
      auto req = std::make_shared<RequestMsg>();
      req->tx = tx;
      EnterpriseId coord = coll.members.size() > 1
                               ? dir_->CoordinatorEnterpriseOf(coll, 0)
                               : coll.members.First();
      Send(dir_->Cluster(coord, 0).InitialPrimary(), req);
    }
    void OnMessage(NodeId, const MessageRef& msg) override {
      if (msg->type == MsgType::kReply) replies_++;
    }
    const Directory* dir_;
    uint64_t ts_ = 0;
    int replies_ = 0;
  };

  Driver driver(&sys.env(), &sys.directory());
  driver.Order(d_lm, kM, 300);  // demand from the KLM (Pfizer) workflow
  driver.Order(d_lm, kM, 450);  // demand from the LMN (Moderna) workflow
  sys.env().sim.Run(1 * kSecond);

  // L provisions: an internal transaction on d_L that reads the shared
  // demand through the γ-captured snapshot of d_LM.
  driver.Order(d_l, kL, 0,
               {TxOp{TxOp::Kind::kReadDep, kDemandKey, 0, d_lm}});
  sys.env().sim.Run(2 * kSecond);

  // ---- verify the combined state ----------------------------------------
  // Both L and M replicate d_LM; each must see the total demand 750.
  bool ok = true;
  for (EnterpriseId e : {kL, kM}) {
    const auto& core =
        sys.ordering_node(sys.directory().ClusterIdOf(e, 0), 0)->exec_core();
    auto v = core.StoreOf(d_lm).Get(kDemandKey);
    std::printf("demand in %s at enterprise %c: %lld\n",
                d_lm.Label().c_str(), 'A' + e,
                v.ok() ? static_cast<long long>(*v) : -1);
    ok = ok && v.ok() && *v == 750;
  }
  // K and N are not involved in d_LM and hold nothing.
  for (EnterpriseId e : {kK, kN}) {
    const auto& core =
        sys.ordering_node(sys.directory().ClusterIdOf(e, 0), 0)->exec_core();
    bool empty = core.StoreOf(d_lm).key_count() == 0;
    std::printf("enterprise %c holds d_LM records: %s\n", 'A' + e,
                empty ? "none (correct)" : "SOME (BUG!)");
    ok = ok && empty;
  }

  std::printf("\n%s\n", ok ? "multi-workflow consistency demo: OK"
                           : "demo FAILED");
  return ok ? 0 : 1;
}
