// Quickstart: stand up a 2-enterprise Qanaat deployment, submit a few
// transactions on local and shared data collections, and inspect the
// resulting DAG ledger.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "qanaat/system.h"

using namespace qanaat;

int main() {
  // ---- 1. Configure the deployment -------------------------------------
  // Two enterprises (A and B), two data shards each, Byzantine failure
  // model with the privacy firewall enabled: every cluster has 3f+1
  // ordering nodes, 2g+1 execution nodes and an (h+1)x(h+1) filter grid.
  QanaatSystem::Options opts;
  opts.params.num_enterprises = 2;
  opts.params.shards_per_enterprise = 2;
  opts.params.failure_model = FailureModel::kByzantine;
  opts.params.use_firewall = true;
  opts.params.family = ProtocolFamily::kFlattened;
  opts.seed = 2026;
  QanaatSystem sys(std::move(opts));

  std::printf("Deployment: %d clusters, %zu simulated nodes\n",
              sys.cluster_count(), sys.net().node_count());
  std::printf("Collections:\n");
  for (const auto& c : sys.model().Collections()) {
    std::printf("  %-8s shards=%d %s\n", c.Label().c_str(),
                sys.model().ShardCountOf(c),
                c.IsLocal() ? "(local)"
                            : (c.IsRootOf(2) ? "(root)" : "(intermediate)"));
  }

  // ---- 2. Drive a workload ---------------------------------------------
  // A client machine issuing SmallBank payments: 70% internal (on d_A /
  // d_B), 30% on the shared collection d_AB.
  WorkloadParams wl;
  wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  wl.cross_fraction = 0.3;
  ClientMachine* client = sys.AddClient(wl, /*rate_tps=*/500);
  client->Start(/*start=*/0, /*stop=*/1 * kSecond,
                /*measure_from=*/0, /*measure_to=*/1 * kSecond);

  // ---- 3. Run the simulation -------------------------------------------
  sys.env().sim.Run(2 * kSecond);

  std::printf("\nissued:   %llu transactions\n",
              static_cast<unsigned long long>(client->issued()));
  std::printf("accepted: %llu (mean latency %.2f ms)\n",
              static_cast<unsigned long long>(client->accepted()),
              client->latencies().Mean() / 1000.0);

  // ---- 4. Inspect a ledger ----------------------------------------------
  // Enterprise A, shard 0. Its DAG ledger holds chains for d_A (its own
  // transactions) and d_AB (replicated shared transactions), cross-linked
  // by the γ entries of each block ID.
  const DagLedger& ledger = sys.execution_node(0, 0)->core().ledger();
  std::printf("\nLedger of enterprise A, shard 0: %zu blocks, %llu txs\n",
              ledger.size(),
              static_cast<unsigned long long>(ledger.total_txs()));
  size_t show = std::min<size_t>(ledger.size(), 6);
  for (size_t i = 0; i < show; ++i) {
    const auto& e = ledger.entry(i);
    std::printf("  block %-28s txs=%-3zu cert_sigs=%zu\n",
                TxId{e.alpha, {}, e.gamma}.ToString().c_str(),
                e.block->tx_count(), e.cert.sigs.size());
  }

  // ---- 5. Audit ----------------------------------------------------------
  Status audit = ledger.VerifyChain(sys.env().keystore,
                                    sys.directory().params.CertQuorum());
  std::printf("\nledger audit: %s\n", audit.ToString().c_str());
  return audit.ok() ? 0 : 1;
}
