// The paper's motivating scenario (§2, Fig 1): a COVID-19 vaccine supply
// chain among five enterprises — pharmaceutical Manufacturer (M),
// Supplier (S), Logistics provider (L), Transportation company (T) and
// Hospitals (H). Public workflow transactions (T1..T8) execute on the
// root collection d_MSLTH; each enterprise runs internal transactions on
// its local collection; and M and S keep their price quotation
// confidential on the intermediate collection d_MS.
//
// The example drives the workflow end to end, then demonstrates the
// confidentiality rules: which enterprises hold which records, and which
// reads the data model permits.

#include <cstdio>

#include "qanaat/system.h"

using namespace qanaat;

namespace {

constexpr EnterpriseId kM = 0, kS = 1, kL = 2, kT = 3, kH = 4;

const char* Name(EnterpriseId e) {
  static const char* kNames[] = {"Manufacturer", "Supplier", "Logistics",
                                 "Transport", "Hospitals"};
  return kNames[e];
}

/// A tiny scripted client driving the Fig 1 transactions in order.
class WorkflowClient : public Actor {
 public:
  WorkflowClient(Env* env, const Directory* dir) : Actor(env, "wf-client"),
                                                   dir_(dir) {}

  void Submit(const CollectionId& coll, EnterpriseId initiator,
              std::vector<TxOp> ops, const char* label) {
    Transaction tx;
    tx.client = id();
    tx.client_ts = ++ts_;
    tx.collection = coll;
    tx.shards = {0};
    tx.initiator = initiator;
    tx.ops = std::move(ops);
    tx.client_sig = env()->keystore.Sign(id(), tx.Digest());
    labels_[ts_] = label;

    auto req = std::make_shared<RequestMsg>();
    req->tx = tx;
    ShardId s = 0;
    EnterpriseId coord = coll.members.size() > 1
                             ? dir_->CoordinatorEnterpriseOf(coll, s)
                             : coll.members.First();
    Send(dir_->Cluster(coord, s).InitialPrimary(), req);
  }

  void OnMessage(NodeId /*from*/, const MessageRef& msg) override {
    if (msg->type != MsgType::kReply) return;
    const auto& m = *msg->As<ReplyMsg>();
    for (const auto& [client, ts] : m.clients) {
      if (client != id() || done_.count(ts)) continue;
      done_.insert(ts);
      std::printf("  [%6ld us] committed: %s\n", (long)now(),
                  labels_[ts].c_str());
    }
  }

  size_t committed() const { return done_.size(); }

 private:
  const Directory* dir_;
  uint64_t ts_ = 0;
  std::map<uint64_t, std::string> labels_;
  std::set<uint64_t> done_;
};

TxOp Write(uint64_t key, int64_t value) {
  return TxOp{TxOp::Kind::kWrite, key, value, {}};
}
TxOp ReadDep(uint64_t key, CollectionId dep) {
  return TxOp{TxOp::Kind::kReadDep, key, 0, dep};
}

}  // namespace

int main() {
  // ---- deployment: 5 enterprises, 1 shard each, crash model ------------
  QanaatSystem::Options opts;
  opts.params.num_enterprises = 5;
  opts.params.shards_per_enterprise = 1;
  opts.params.failure_model = FailureModel::kCrash;
  opts.params.family = ProtocolFamily::kCoordinator;
  opts.params.batch_timeout_us = 500;  // interactive latency
  opts.pairwise_collections = false;   // create only what the story needs
  QanaatSystem sys(std::move(opts));

  // The confidential M-S collaboration gets its own data collection.
  Status st = sys.mutable_model()->AddIntermediateCollection(
      EnterpriseSet{kM, kS});
  if (!st.ok()) {
    std::printf("model error: %s\n", st.ToString().c_str());
    return 1;
  }

  CollectionId root{EnterpriseSet::All(5)};
  CollectionId d_ms{EnterpriseSet{kM, kS}};
  CollectionId d_m{EnterpriseSet::Single(kM)};
  CollectionId d_s{EnterpriseSet::Single(kS)};

  std::printf("Vaccine supply chain: %s\n", root.Label().c_str());
  for (EnterpriseId e = 0; e < 5; ++e) {
    std::printf("  %c = %s\n", 'A' + e, Name(e));
  }
  std::printf("\n-- executing the Fig 1 workflow --\n");

  WorkflowClient client(&sys.env(), &sys.directory());

  // Keys of the shared order book.
  constexpr uint64_t kOrderMaterials = 1, kOrderShipment = 2,
                     kPickup = 3, kDelivery = 4, kVaccines = 5;

  // Public transactions T1..T8 on the root collection.
  client.Submit(root, kM, {Write(kOrderMaterials, 160)},
                "T1/T2 place orders (M -> S, L)     on d_ABCDE");
  client.Submit(root, kL, {Write(kOrderShipment, 1)},
                "T3    arrange shipment (L -> T)    on d_ABCDE");
  client.Submit(root, kS, {Write(kPickup, 1)},
                "T4/T5 inform + pick order (S, T)   on d_ABCDE");
  client.Submit(root, kT, {Write(kDelivery, 1)},
                "T6    deliver order (T -> M)       on d_ABCDE");

  // Confidential price quotation between M and S only (R1).
  client.Submit(d_ms, kS, {Write(100, 950)},
                "TMS1  price quotation (M <-> S)    on d_AB   [confidential]");

  // Internal manufacturing at M: reads the public order book (γ-capture
  // read of an order-dependent collection), writes private formulation
  // data (TM1..TM6 condensed).
  client.Submit(d_m, kM,
                {ReadDep(kOrderMaterials, root), Write(7, 42)},
                "TM*   manufacture vaccines (M)     on d_A    [internal]");
  // Internal provisioning at S reads both the public orders and the
  // confidential quotation.
  client.Submit(d_s, kS,
                {ReadDep(kOrderMaterials, root), ReadDep(100, d_ms),
                 Write(8, 160)},
                "TS*   provision materials (S)      on d_B    [internal]");
  // Vaccines distributed to hospitals.
  client.Submit(root, kT, {Write(kVaccines, 5000)},
                "T7/T8 pick + deliver vaccines (T)  on d_ABCDE");

  sys.env().sim.Run(5 * kSecond);
  std::printf("committed %zu/8 workflow transactions\n\n", client.committed());

  // ---- confidentiality audit (R1, §3.5) ---------------------------------
  std::printf("-- who holds which records --\n");
  for (EnterpriseId e = 0; e < 5; ++e) {
    const DagLedger& lg = sys.ordering_node(sys.directory().ClusterIdOf(e, 0), 0)
                              ->exec_core().ledger();
    std::printf("  %-12s: root chain %llu blocks, d_MS chain %llu blocks\n",
                Name(e),
                (unsigned long long)lg.ChainOf({root, 0}).size(),
                (unsigned long long)lg.ChainOf({d_ms, 0}).size());
  }
  std::printf("\n-- data model rules --\n");
  const DataModel& model = sys.model();
  std::printf("  Logistics may access d_MS?          %s\n",
              model.CanAccess(kL, d_ms) ? "YES (BUG!)" : "no");
  std::printf("  d_MS transactions may read root?    %s\n",
              model.ValidateRead(d_ms, root).ok() ? "yes" : "NO (BUG!)");
  std::printf("  root transactions may read d_MS?    %s\n",
              model.ValidateRead(root, d_ms).ok() ? "YES (BUG!)" : "no");
  std::printf("  Logistics may write d_MS?           %s\n",
              model.ValidateWrite(d_ms, kL).ok() ? "YES (BUG!)" : "no");

  bool ok = client.committed() == 8 && !model.CanAccess(kL, d_ms);
  std::printf("\n%s\n", ok ? "supply chain demo: OK" : "demo FAILED");
  return ok ? 0 : 1;
}
