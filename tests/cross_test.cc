// Cross-shard conflict resolution (§4.3.5) and pull-based executor state
// transfer: digest-priority arbitration of symmetric rival claims, loser
// re-proposal, and the firewall-routed StateRequest/StateReply path a
// gapped execution node uses to converge.

#include <gtest/gtest.h>

#include "harness/chaos.h"
#include "qanaat/system.h"

namespace qanaat {
namespace {

/// Inert request source for hand-crafted rivalry scenarios.
class ClientStub : public Actor {
 public:
  explicit ClientStub(Env* env) : Actor(env, "client-stub") {}
  void OnMessage(NodeId, const MessageRef& msg) override {
    if (msg->type == MsgType::kReply || msg->type == MsgType::kReplyCert) {
      ++replies;
    }
  }
  int replies = 0;
};

// --------------------------------------- §4.3.5 arbitration symmetry

/// Runs the two-enterprise rivalry scenario with the given per-side
/// initiation times, asserts full settlement (both rival transactions
/// commit exactly once, every replica converges), and returns the
/// client timestamp of the transaction that won the contested height 1
/// of the shared chain.
uint64_t RunRivalry(SimTime fire_ent0, SimTime fire_ent1) {
  QanaatSystem::Options so;
  so.params.num_enterprises = 2;
  so.params.shards_per_enterprise = 1;
  so.params.failure_model = FailureModel::kCrash;
  so.params.family = ProtocolFamily::kFlattened;
  so.params.designated_coordinator = false;  // optimistic mode: races
  so.seed = 3;
  so.cluster_regions = {0, 1};
  QanaatSystem sys(std::move(so));
  // WAN latency between the enterprises: both sides below claim n=1
  // before either one-way trip (50ms) can reveal the rival claim.
  sys.net().SetRtt(0, 1, 100 * kMillisecond);
  ClientStub stub(&sys.env());

  CollectionId shared(EnterpriseSet{0, 1});
  auto make_req = [&](uint64_t ts, EnterpriseId initiator) {
    auto req = std::make_shared<RequestMsg>();
    req->tx.client = stub.id();
    req->tx.client_ts = ts;
    req->tx.collection = shared;
    req->tx.shards = {0};
    req->tx.initiator = initiator;
    req->tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 1, 5, {}});
    req->tx.client_sig =
        sys.env().keystore.Sign(stub.id(), req->tx.Digest());
    return req;
  };
  sys.env().sim.ScheduleAt(fire_ent0, [&]() {
    sys.net().Send(stub.id(), sys.directory().Cluster(0).InitialPrimary(),
                   make_req(1, 0));
  });
  sys.env().sim.ScheduleAt(fire_ent1, [&]() {
    sys.net().Send(stub.id(), sys.directory().Cluster(1).InitialPrimary(),
                   make_req(2, 1));
  });
  sys.env().sim.Run(2 * kSecond);

  static const std::set<NodeId> kNone;
  Status st = SafetyAuditor::AuditQanaat(sys, true, &kNone);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // A loser existed and went through the re-proposal path.
  EXPECT_GT(sys.env().metrics.Get("cross.arbitration_loser"), 0u);
  // Both rival transactions settled, exactly once each.
  uint64_t winner_ts = 0;
  ShardRef ref{shared, 0};
  for (int c = 0; c < sys.cluster_count(); ++c) {
    uint64_t committed = 0;
    const DagLedger& led = sys.ordering_node(c, 0)->exec_core().ledger();
    for (size_t i = 0; i < led.size(); ++i) {
      for (const auto& tx : led.entry(i).block->txs) {
        if (tx.client == stub.id()) ++committed;
      }
    }
    EXPECT_EQ(committed, 2u) << "cluster " << c << " did not settle";
    const auto& chain = led.ChainOf(ref);
    if (!chain.empty()) {
      winner_ts = led.entry(chain[0]).block->txs[0].client_ts;
    }
  }
  return winner_ts;
}

TEST(ArbitrationTest, SymmetricClaimsConvergeOnSameWinnerEitherOrder) {
  // Digest priority is a function of block content, not claim-arrival
  // order: whichever side proposes first, the contested height must go
  // to the same block, and the other side's transaction must re-propose
  // onto the next height. The stub lives in region 0, so enterprise 1's
  // propose lags its firing by the 50ms one-way trip: with ent0 firing
  // 20ms (resp. 80ms) after ent1, both claims are in flight before
  // either side can commit-lock, in opposite propose orders.
  uint64_t winner_a = RunRivalry(30 * kMillisecond, 10 * kMillisecond);
  uint64_t winner_b = RunRivalry(90 * kMillisecond, 10 * kMillisecond);
  EXPECT_NE(winner_a, 0u);
  EXPECT_EQ(winner_a, winner_b)
      << "arbitration picked different winners for different claim orders";
}

TEST(ArbitrationTest, LateRivalYieldsToCommittedWinner) {
  // When the claims are NOT concurrent — enterprise 0's block is
  // proposed, accepted by both clusters and commit-locked before
  // enterprise 1's rival even exists — digest priority must not unseat
  // it: the lock wins, the latecomer loses and re-proposes behind it.
  uint64_t winner = RunRivalry(10 * kMillisecond, 30 * kMillisecond);
  EXPECT_EQ(winner, 1u) << "a committed claim was unseated by a late rival";
}

// ----------------------------- pull-based executor state transfer

SystemParams FirewallParams() {
  SystemParams p;
  p.num_enterprises = 2;
  p.shards_per_enterprise = 1;
  p.failure_model = FailureModel::kByzantine;
  p.use_firewall = true;
  p.family = ProtocolFamily::kFlattened;
  return p;
}

TEST(ExecutorPullTest, CrashedExecutorRecoversThroughFilterRows) {
  QanaatSystem::Options opts;
  opts.params = FirewallParams();
  opts.seed = 7;
  QanaatSystem sys(std::move(opts));

  WorkloadParams wl;
  wl.cross_fraction = 0.0;
  ClientMachine* client = sys.AddClient(wl, 300);
  client->Start(0, 1200 * kMillisecond, 0, 2000 * kMillisecond);

  // Crash one executor mid-stream; every ExecOrder push in the window is
  // lost to it (pushes are fire-and-forget through the filters). On
  // recovery it must pull the missed blocks back through the firewall —
  // nothing else would ever close the gap.
  ExecutionNode* victim = sys.execution_node(0, 2);
  sys.env().sim.ScheduleAt(300 * kMillisecond, [&]() { victim->Crash(); });
  sys.env().sim.ScheduleAt(900 * kMillisecond, [&]() { victim->Recover(); });
  sys.env().sim.Run(2000 * kMillisecond);

  ASSERT_GT(client->measured_commits(), 100u);
  EXPECT_GT(sys.env().metrics.Get("exec.pull_on_recover"), 0u);
  EXPECT_GT(sys.env().metrics.Get("exec.pull_block_installed"), 0u);
  // Store-fingerprint identity includes the recovered executor: the
  // convergence audit runs with an EMPTY exclusion set.
  static const std::set<NodeId> kNone;
  Status st = SafetyAuditor::AuditQanaat(sys, true, &kNone);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ExecutorPullTest, TamperedStateReplyBlockRejected) {
  QanaatSystem::Options opts;
  opts.params = FirewallParams();
  opts.seed = 11;
  QanaatSystem sys(std::move(opts));

  const ClusterConfig& cc = sys.directory().Cluster(0);
  ExecutionNode* exec = sys.execution_node(0, 0);

  // A sealed block whose body was tampered AFTER sealing: the memoized
  // tx_root no longer matches the transactions, exactly what a faulty
  // serving peer (or filter) would have to produce to smuggle state into
  // an executor. The verifier recomputes the root from canonical bytes,
  // so the entry must be rejected before any certificate math.
  auto block = std::make_shared<Block>();
  block->id.alpha = {CollectionId(EnterpriseSet{0}), 0, 1};
  Transaction tx;
  tx.collection = block->id.alpha.collection;
  tx.ops.push_back(TxOp{TxOp::Kind::kWrite, 1, 777, {}});
  block->txs.push_back(tx);
  block->Seal();
  block->txs[0].ops[0].value = 999999;  // post-seal tamper

  auto rep = std::make_shared<StateReplyMsg>();
  StateReplyMsg::Entry entry;
  entry.block = block;
  entry.cert.block_digest = block->Digest();
  entry.cert.direct = true;
  entry.cert.sigs.push_back(sys.env().keystore.Forge(cc.ordering[0]));
  entry.alpha = block->id.alpha;
  rep->entries.push_back(entry);
  rep->requester = exec->id();

  // Inject on the legitimate link (top filter row -> executor).
  sys.net().Send(cc.filter_rows.back()[0], exec->id(), rep);
  sys.env().sim.RunAll();

  EXPECT_GE(sys.env().metrics.Get("exec.bad_pull_block"), 1u);
  EXPECT_EQ(sys.env().metrics.Get("exec.pull_block_installed"), 0u);
  EXPECT_EQ(exec->core().executed_blocks(), 0u);
}

TEST(ExecutorPullTest, FiltersDropPullsNotFromAnExecutionNode) {
  QanaatSystem::Options opts;
  opts.params = FirewallParams();
  opts.seed = 13;
  QanaatSystem sys(std::move(opts));

  const ClusterConfig& cc = sys.directory().Cluster(0);
  // A StateRequest whose requester is not one of this cluster's
  // execution nodes is out-of-protocol traffic: filters refuse to route
  // it in either direction.
  auto req = std::make_shared<StateRequestMsg>();
  req->frontier = UINT64_MAX;
  req->requester = kInvalidNode;
  sys.net().Send(cc.execution[0], cc.filter_rows.back()[0], req);
  sys.env().sim.RunAll();

  EXPECT_GE(sys.env().metrics.Get("firewall.filtered_bad_pull"), 1u);
  EXPECT_EQ(sys.env().metrics.Get("order.state_served"), 0u);
}

}  // namespace
}  // namespace qanaat
