#include <gtest/gtest.h>

#include "ledger/dag_ledger.h"

namespace qanaat {
namespace {

CollectionId Coll(std::initializer_list<EnterpriseId> ids) {
  return CollectionId(EnterpriseSet(ids));
}

Transaction MakeTx(uint64_t key, int64_t delta, CollectionId c) {
  Transaction tx;
  tx.client = 1;
  tx.client_ts = key * 131 + static_cast<uint64_t>(delta);
  tx.collection = c;
  tx.shards = {0};
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, key, delta, {}});
  return tx;
}

BlockPtr MakeBlock(CollectionId c, ShardId shard, SeqNo n,
                   std::vector<GammaEntry> gamma = {}, int ntx = 3) {
  auto b = std::make_shared<Block>();
  b->id.alpha = {c, shard, n};
  b->id.gamma = std::move(gamma);
  for (int i = 0; i < ntx; ++i) {
    b->txs.push_back(MakeTx(n * 100 + i, 5, c));
  }
  b->Seal();
  return b;
}

CommitCertificate CertFor(const KeyStore& ks, const Block& b, int nsigs = 3) {
  CommitCertificate cert;
  cert.block_digest = b.Digest();
  cert.direct = true;
  for (NodeId i = 0; i < static_cast<NodeId>(nsigs); ++i) {
    cert.sigs.push_back(ks.Sign(i, cert.block_digest));
  }
  return cert;
}

struct LedgerFixture : ::testing::Test {
  KeyStore ks{99};
  DagLedger ledger;

  Status Append(BlockPtr b, SimTime t = 0) {
    CommitCertificate cert = CertFor(ks, *b);
    return ledger.Append(std::move(b), std::move(cert), t);
  }
};

TEST_F(LedgerFixture, AppendsInSequence) {
  auto c = Coll({0});
  EXPECT_TRUE(Append(MakeBlock(c, 0, 1)).ok());
  EXPECT_TRUE(Append(MakeBlock(c, 0, 2)).ok());
  EXPECT_EQ(ledger.HeadOf({c, 0}), 2u);
  EXPECT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger.total_txs(), 6u);
}

TEST_F(LedgerFixture, RejectsGapAndDuplicate) {
  auto c = Coll({0});
  ASSERT_TRUE(Append(MakeBlock(c, 0, 1)).ok());
  EXPECT_EQ(Append(MakeBlock(c, 0, 3)).code(),
            StatusCode::kFailedPrecondition);  // gap
  EXPECT_EQ(Append(MakeBlock(c, 0, 1)).code(),
            StatusCode::kFailedPrecondition);  // duplicate
}

TEST_F(LedgerFixture, IndependentChainsAppendInParallel) {
  // The DAG property (§3.3): order-independent collections have separate
  // chains; e.g. d_AB and d_AC blocks interleave freely.
  auto ab = Coll({0, 1});
  auto ac = Coll({0, 2});
  EXPECT_TRUE(Append(MakeBlock(ab, 0, 1)).ok());
  EXPECT_TRUE(Append(MakeBlock(ac, 0, 1)).ok());
  EXPECT_TRUE(Append(MakeBlock(ab, 0, 2)).ok());
  EXPECT_TRUE(Append(MakeBlock(ac, 0, 2)).ok());
  EXPECT_EQ(ledger.ChainOf({ab, 0}).size(), 2u);
  EXPECT_EQ(ledger.ChainOf({ac, 0}).size(), 2u);
}

TEST_F(LedgerFixture, PerShardChains) {
  auto c = Coll({0});
  EXPECT_TRUE(Append(MakeBlock(c, 0, 1)).ok());
  EXPECT_TRUE(Append(MakeBlock(c, 1, 1)).ok());
  EXPECT_EQ(ledger.HeadOf({c, 0}), 1u);
  EXPECT_EQ(ledger.HeadOf({c, 1}), 1u);
}

TEST_F(LedgerFixture, GlobalConsistencyEnforcedOnAppend) {
  auto ab = Coll({0, 1});
  auto root = Coll({0, 1, 2, 3});
  ASSERT_TRUE(Append(MakeBlock(ab, 0, 1, {{root, 5}})).ok());
  // γ may stay or advance...
  ASSERT_TRUE(Append(MakeBlock(ab, 0, 2, {{root, 5}})).ok());
  ASSERT_TRUE(Append(MakeBlock(ab, 0, 3, {{root, 8}})).ok());
  // ...but never regress (§3.3 rule 2).
  EXPECT_EQ(Append(MakeBlock(ab, 0, 4, {{root, 7}})).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(LedgerFixture, StateOfTracksCommittedSequence) {
  auto c = Coll({0, 1});
  EXPECT_EQ(ledger.StateOf(c), 0u);
  ASSERT_TRUE(Append(MakeBlock(c, 0, 1)).ok());
  ASSERT_TRUE(Append(MakeBlock(c, 0, 2)).ok());
  EXPECT_EQ(ledger.StateOf(c), 2u);
}

TEST_F(LedgerFixture, CertificateMustCoverBlock) {
  auto b = MakeBlock(Coll({0}), 0, 1);
  CommitCertificate cert = CertFor(ks, *b);
  cert.block_digest.bytes[0] ^= 1;
  EXPECT_EQ(ledger.Append(b, cert, 0).code(), StatusCode::kCorruption);
}

TEST_F(LedgerFixture, AppendForUsesPerClusterView) {
  // Cross-shard blocks: each cluster appends the same block under its
  // own ⟨α, γ⟩ (§4.3.2).
  auto c = Coll({0, 1});
  auto b = MakeBlock(c, 0, 1);
  CommitCertificate cert = CertFor(ks, *b);
  LocalPart my_alpha{c, 1, 1};  // our shard's assignment
  EXPECT_TRUE(ledger.AppendFor(b, cert, 0, my_alpha, {}).ok());
  EXPECT_EQ(ledger.HeadOf({c, 1}), 1u);
  EXPECT_EQ(ledger.HeadOf({c, 0}), 0u);  // coordinator's chain untouched
}

TEST_F(LedgerFixture, VerifyChainPassesOnHonestLedger) {
  auto c = Coll({0});
  for (SeqNo n = 1; n <= 5; ++n) ASSERT_TRUE(Append(MakeBlock(c, 0, n)).ok());
  EXPECT_TRUE(ledger.VerifyChain(ks, 3).ok());
}

TEST_F(LedgerFixture, VerifyChainDetectsTamperedTransaction) {
  auto c = Coll({0});
  auto b = MakeBlock(c, 0, 1);
  ASSERT_TRUE(Append(b).ok());
  // Tamper with the committed transaction in place (simulates a
  // malicious enterprise editing its stored ledger).
  auto* mutable_block = const_cast<Block*>(ledger.entry(0).block.get());
  mutable_block->txs[0].ops[0].value = 1000000;
  Status audit = ledger.VerifyChain(ks, 3);
  EXPECT_EQ(audit.code(), StatusCode::kCorruption);
}

TEST_F(LedgerFixture, VerifyChainDetectsShortCertificate) {
  auto c = Coll({0});
  auto b = MakeBlock(c, 0, 1);
  CommitCertificate cert = CertFor(ks, *b, 1);  // only one signature
  ASSERT_TRUE(ledger.Append(b, cert, 0).ok());
  EXPECT_TRUE(ledger.VerifyChain(ks, 1).ok());
  EXPECT_EQ(ledger.VerifyChain(ks, 3).code(), StatusCode::kCorruption);
}

// ------------------------------------------- certificates stand alone

TEST(CommitCertificateTest, PbftFormVerifies) {
  KeyStore ks(5);
  Sha256Digest d = Sha256::Hash("block");
  CommitCertificate cert;
  cert.block_digest = d;
  cert.view = 2;
  cert.slot = 9;
  cert.value_kind = 1;
  Sha256Digest covered = ConsensusSignable(2, 9, ValueDigestFor(1, d));
  for (NodeId i = 0; i < 3; ++i) cert.sigs.push_back(ks.Sign(i, covered));
  EXPECT_TRUE(cert.Valid(ks, 3));
  EXPECT_FALSE(cert.Valid(ks, 4));
  // Changing any binding field invalidates.
  cert.slot = 10;
  EXPECT_FALSE(cert.Valid(ks, 3));
}

TEST(CommitCertificateTest, ValidFromChecksMembership) {
  KeyStore ks(5);
  Sha256Digest d = Sha256::Hash("block");
  CommitCertificate cert;
  cert.block_digest = d;
  cert.direct = true;
  for (NodeId i = 0; i < 3; ++i) cert.sigs.push_back(ks.Sign(i, d));
  EXPECT_TRUE(cert.ValidFrom(ks, 3, {0, 1, 2, 3}));
  // Signer 2 is not a member of the claimed cluster.
  EXPECT_FALSE(cert.ValidFrom(ks, 3, {0, 1, 3, 4}));
}

TEST(BlockTest, DigestCoversIdAndTxs) {
  auto b1 = MakeBlock(Coll({0}), 0, 1);
  auto b2 = MakeBlock(Coll({0}), 0, 2);
  EXPECT_NE(b1->Digest(), b2->Digest());
  auto b3 = MakeBlock(Coll({0}), 0, 1, {}, 4);
  EXPECT_NE(b1->Digest(), b3->Digest());
}

TEST(BlockTest, TamperingInvalidatesMemoizedDigest) {
  // The block digest is memoized at Seal() for the hot paths; audits
  // must still catch post-hoc tampering. RecomputeTxRoot() bypasses
  // every cache, and an explicit invalidation + re-seal yields a new
  // digest.
  Block b;
  b.id.alpha = {Coll({0}), 0, 1};
  b.txs.push_back(MakeTx(7, 5, Coll({0})));
  b.txs.push_back(MakeTx(8, 5, Coll({0})));
  b.Seal();
  const Sha256Digest sealed = b.Digest();

  // Tamper with transaction content behind the caches.
  b.txs[0].ops[0].value += 1;
  // The memoized digest is stale by design (this is why audit paths must
  // recompute)...
  EXPECT_EQ(b.Digest(), sealed);
  // ...and the cache-bypassing audit recompute catches the tampering.
  Sha256Digest root = b.RecomputeTxRoot();
  EXPECT_NE(root, b.tx_root);
  EXPECT_NE(b.RecomputeDigest(root), sealed);

  // Invalidation + re-seal produces the digest of the tampered content.
  for (const auto& tx : b.txs) tx.InvalidateDigest();
  b.InvalidateDigest();
  b.Seal();
  EXPECT_NE(b.Digest(), sealed);
  EXPECT_EQ(b.tx_root, root);
}

TEST(DagLedgerTest, VerifyChainCatchesPostCommitTampering) {
  KeyStore ks(1);
  DagLedger led;
  auto b = MakeBlock(Coll({0}), 0, 1);
  ASSERT_TRUE(led.Append(b, CertFor(ks, *b), 10).ok());
  ASSERT_TRUE(led.VerifyChain(ks, 1).ok());
  // Tamper with the committed block through its shared pointer; the
  // memoized digest still matches the certificate, so only the
  // recomputing audit can notice.
  auto* block = const_cast<Block*>(led.entry(0).block.get());
  block->txs[0].client_ts ^= 1;
  Status st = led.VerifyChain(ks, 1);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace qanaat
