#include <gtest/gtest.h>

#include "store/mvstore.h"

namespace qanaat {
namespace {

TEST(MvStoreTest, GetMissingIsNotFound) {
  MvStore s;
  EXPECT_EQ(s.Get(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(s.GetAt(1, 100).status().code(), StatusCode::kNotFound);
}

TEST(MvStoreTest, PutGetLatest) {
  MvStore s;
  ASSERT_TRUE(s.Put(1, 100, 1).ok());
  ASSERT_TRUE(s.Put(1, 200, 2).ok());
  EXPECT_EQ(*s.Get(1), 200);
  EXPECT_EQ(s.latest_version(), 2u);
}

TEST(MvStoreTest, SnapshotReadsExactVersion) {
  // The γ-capture read path (§4.2): all replicas read the same state.
  MvStore s;
  ASSERT_TRUE(s.Put(1, 10, 1).ok());
  ASSERT_TRUE(s.Put(1, 20, 5).ok());
  ASSERT_TRUE(s.Put(1, 30, 9).ok());
  EXPECT_EQ(*s.GetAt(1, 1), 10);
  EXPECT_EQ(*s.GetAt(1, 4), 10);
  EXPECT_EQ(*s.GetAt(1, 5), 20);
  EXPECT_EQ(*s.GetAt(1, 8), 20);
  EXPECT_EQ(*s.GetAt(1, 9), 30);
  EXPECT_EQ(*s.GetAt(1, 1000), 30);
}

TEST(MvStoreTest, KeyAbsentAtEarlyVersion) {
  MvStore s;
  ASSERT_TRUE(s.Put(1, 10, 5).ok());
  EXPECT_EQ(s.GetAt(1, 4).status().code(), StatusCode::kNotFound);
}

TEST(MvStoreTest, VersionRegressionRejected) {
  MvStore s;
  ASSERT_TRUE(s.Put(1, 10, 5).ok());
  EXPECT_EQ(s.Put(1, 20, 3).code(), StatusCode::kFailedPrecondition);
}

TEST(MvStoreTest, SameVersionOverwrites) {
  // Last write wins within one transaction's version.
  MvStore s;
  ASSERT_TRUE(s.Put(1, 10, 5).ok());
  ASSERT_TRUE(s.Put(1, 15, 5).ok());
  EXPECT_EQ(*s.Get(1), 15);
  EXPECT_EQ(s.VersionCountOf(1), 1u);
}

TEST(MvStoreTest, IndependentKeys) {
  MvStore s;
  ASSERT_TRUE(s.Put(1, 10, 1).ok());
  ASSERT_TRUE(s.Put(2, 20, 2).ok());
  ASSERT_TRUE(s.Put(1, 11, 3).ok());
  EXPECT_EQ(*s.Get(1), 11);
  EXPECT_EQ(*s.Get(2), 20);
  EXPECT_EQ(s.key_count(), 2u);
}

TEST(MvStoreTest, TrimKeepsNewestBelowFloor) {
  MvStore s;
  for (SeqNo v = 1; v <= 10; ++v) ASSERT_TRUE(s.Put(1, int64_t(v), v).ok());
  s.TrimBelow(8);
  // Versions 8, 9, 10 plus the base (7) survive.
  EXPECT_EQ(s.VersionCountOf(1), 4u);
  EXPECT_EQ(*s.GetAt(1, 8), 8);
  EXPECT_EQ(*s.Get(1), 10);
  // Reads below the floor resolve to the retained base.
  EXPECT_EQ(*s.GetAt(1, 7), 7);
}

TEST(MvStoreTest, WriteBatchAtomicVersion) {
  MvStore s;
  WriteBatch b;
  b.Put(1, 100);
  b.Put(2, 200);
  b.Put(1, 101);  // later write in same tx wins
  ASSERT_TRUE(b.ApplyTo(&s, 7).ok());
  EXPECT_EQ(*s.GetAt(1, 7), 101);
  EXPECT_EQ(*s.GetAt(2, 7), 200);
  EXPECT_EQ(s.latest_version(), 7u);
}

TEST(MvStoreTest, ManyVersionsBinarySearch) {
  MvStore s;
  for (SeqNo v = 1; v <= 1000; ++v) {
    ASSERT_TRUE(s.Put(42, int64_t(v * 10), v).ok());
  }
  for (SeqNo probe : {1u, 17u, 500u, 999u, 1000u}) {
    EXPECT_EQ(*s.GetAt(42, probe), int64_t(probe * 10));
  }
}

}  // namespace
}  // namespace qanaat
