// Corpus-infrastructure suite: hash-stable shard partitioning, the
// adversary rotation, FaultPlan serialization, and determinism + golden
// pins for the three staged adversaries (gray failure, equivocating
// primary, selective silence). The chaos_test ChaosGolden pins guard the
// benign recipe; the pins here guard the adversary schedules the corpus
// adds on top.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/corpus.h"
#include "sim/faults.h"

namespace qanaat {
namespace {

// ------------------------------------------------------------- sharding

TEST(CorpusShard, PartitionIsCompleteAndDisjoint) {
  CorpusManifest m;
  auto entries = m.Enumerate();
  // Rotation entries (3 stacks) plus the cross-conflict profile (the two
  // Qanaat stacks only).
  ASSERT_EQ(entries.size(), static_cast<size_t>(m.seeds) * 3 +
                                static_cast<size_t>(m.conflict_seeds) * 2);

  for (int shard_count : {1, 2, 4, 7}) {
    size_t assigned = 0;
    for (int s = 0; s < shard_count; ++s) {
      for (const auto& e : entries) {
        if (ShardOf(e, shard_count) == s) ++assigned;
      }
    }
    // Every entry lands in exactly one shard.
    EXPECT_EQ(assigned, entries.size()) << shard_count << " shards";
    for (const auto& e : entries) {
      int s = ShardOf(e, shard_count);
      EXPECT_GE(s, 0);
      EXPECT_LT(s, shard_count);
    }
  }
}

TEST(CorpusShard, NoEntryLostOrDuplicated) {
  CorpusManifest m;
  std::set<std::tuple<int, uint64_t, int>> ids;
  for (const auto& e : m.Enumerate()) {
    auto id = std::make_tuple(static_cast<int>(e.stack), e.seed,
                              static_cast<int>(e.adversary));
    EXPECT_TRUE(ids.insert(id).second)
        << "duplicate entry " << StackArgName(e.stack) << " seed " << e.seed;
  }
  EXPECT_EQ(ids.size(), static_cast<size_t>(m.seeds) * 3 +
                            static_cast<size_t>(m.conflict_seeds) * 2);
}

TEST(CorpusShard, StableUnderCorpusGrowth) {
  // Adding seeds must only APPEND: every entry of the smaller manifest
  // exists verbatim in the larger one with an identical shard assignment,
  // for every shard width. This is what lets CI cache / triage per shard
  // while the corpus grows.
  CorpusManifest small;
  small.seeds = 40;
  CorpusManifest large;
  large.seeds = 80;

  std::map<std::pair<int, uint64_t>, CorpusEntry> by_id;
  for (const auto& e : large.Enumerate()) {
    by_id[{static_cast<int>(e.stack), e.seed}] = e;
  }
  for (const auto& e : small.Enumerate()) {
    auto it = by_id.find({static_cast<int>(e.stack), e.seed});
    ASSERT_NE(it, by_id.end());
    EXPECT_EQ(static_cast<int>(it->second.adversary),
              static_cast<int>(e.adversary));
    for (int shard_count : {2, 4, 8}) {
      EXPECT_EQ(ShardOf(e, shard_count), ShardOf(it->second, shard_count));
    }
  }
}

TEST(CorpusShard, KeyDependsOnIdentityOnly) {
  CorpusEntry a{ChaosStack::kQanaatPbft, 5, AdversaryKind::kGrayFailure};
  CorpusEntry b = a;
  EXPECT_EQ(EntryKey(a), EntryKey(b));
  b.seed = 6;
  EXPECT_NE(EntryKey(a), EntryKey(b));
  b = a;
  b.stack = ChaosStack::kQanaatPaxos;
  EXPECT_NE(EntryKey(a), EntryKey(b));
  b = a;
  b.adversary = AdversaryKind::kNone;
  EXPECT_NE(EntryKey(a), EntryKey(b));
}

TEST(CorpusShard, RotationMatchesStackFaultModels) {
  CorpusManifest m;
  bool pbft_equivocates = false;
  bool conflict_seen = false;
  for (const auto& e : m.Enumerate()) {
    if (e.adversary == AdversaryKind::kCrossConflict) {
      // The §4.3.5 profile sits outside the rotation: Qanaat stacks only
      // (Fabric has no cross-shard protocol), its own seed band, and
      // loss-free by construction so the convergence and eventual-commit
      // audits stay armed for every run.
      conflict_seen = true;
      EXPECT_NE(static_cast<int>(e.stack),
                static_cast<int>(ChaosStack::kFabric));
      EXPECT_GT(e.seed, kConflictSeedBase);
      EXPECT_EQ(EntryOptions(e).profile.loss, 0.0);
      continue;
    }
    if (e.stack != ChaosStack::kQanaatPbft) {
      // Only the Byzantine stack ever faces an equivocating primary.
      EXPECT_NE(static_cast<int>(e.adversary),
                static_cast<int>(AdversaryKind::kEquivocation));
    } else if (e.adversary == AdversaryKind::kEquivocation) {
      pbft_equivocates = true;
    }
    if (e.stack == ChaosStack::kFabric) {
      EXPECT_TRUE(e.adversary == AdversaryKind::kNone ||
                  e.adversary == AdversaryKind::kGrayFailure);
    }
    // Loss runs (seed % 4 == 0) stay benign so loss and adversaries are
    // independently attributable.
    if (e.seed % 4 == 0) {
      EXPECT_EQ(static_cast<int>(e.adversary),
                static_cast<int>(AdversaryKind::kNone));
    }
  }
  EXPECT_TRUE(pbft_equivocates);
  EXPECT_TRUE(conflict_seen);
}

// ------------------------------------------------- adversary plan shapes

CrashGroup TestGroup() {
  CrashGroup g;
  g.crashable = {1, 2, 3, 4};
  g.max_faulty = 2;
  return g;
}

ChaosProfile AdversaryProfile(AdversaryKind k) {
  ChaosProfile p;
  p.dup = 0.03;
  p.reorder = 0.05;
  p.adversary = k;
  if (k == AdversaryKind::kSelectiveSilence) {
    p.silence_types =
        Network::LinkFault::TypeBit(MsgType::kViewChange) |
        Network::LinkFault::TypeBit(MsgType::kCheckpoint);
  }
  return p;
}

AdversaryTargets TargetPrimary1() {
  AdversaryTargets t;
  t.primaries.push_back(1);
  return t;
}

NodeId AdversaryVictim(const FaultPlan& plan) {
  for (const auto& ev : plan.events) {
    if (ev.action.kind == FaultAction::Kind::kSlowNode ||
        ev.action.kind == FaultAction::Kind::kEquivocate) {
      return ev.action.a;
    }
    if (ev.action.kind == FaultAction::Kind::kLinkFault &&
        ev.action.fault.silence_mask != 0) {
      return ev.action.a;
    }
  }
  return kInvalidNode;
}

TEST(AdversaryPlan, GrayFailureSlowsAndLagsThePrimary) {
  FaultPlan plan = MakeRandomPlan(11, {TestGroup()}, 800000,
                                  AdversaryProfile(AdversaryKind::kGrayFailure),
                                  TargetPrimary1());
  int slow = 0, restore = 0, lag_links = 0;
  for (const auto& ev : plan.events) {
    if (ev.action.kind == FaultAction::Kind::kSlowNode) {
      if (ev.action.factor > 1.0) {
        ++slow;
        EXPECT_EQ(ev.action.a, 1u);
      } else {
        ++restore;
      }
    }
    if (ev.action.kind == FaultAction::Kind::kLinkFault &&
        ev.action.fault.extra_delay_us > 0) {
      ++lag_links;
      EXPECT_EQ(ev.action.a, 1u);
    }
  }
  EXPECT_EQ(slow, 1);
  EXPECT_GE(restore, 1);
  // One delayed link per cluster peer of the target.
  EXPECT_EQ(lag_links, 3);
  // Gray failure loses nothing: the convergence audit must stay armed.
  EXPECT_FALSE(plan.HasUntargetedLoss());
}

TEST(AdversaryPlan, EquivocationWindowOpensAndCloses) {
  FaultPlan plan = MakeRandomPlan(
      12, {TestGroup()}, 800000,
      AdversaryProfile(AdversaryKind::kEquivocation), TargetPrimary1());
  SimTime start = -1, stop = -1;
  for (const auto& ev : plan.events) {
    if (ev.action.kind == FaultAction::Kind::kEquivocate) {
      start = ev.at;
      EXPECT_EQ(ev.action.a, 1u);
    }
    if (ev.action.kind == FaultAction::Kind::kClearEquivocate &&
        stop == -1) {
      stop = ev.at;
    }
  }
  ASSERT_GE(start, 0);
  ASSERT_GE(stop, 0);
  EXPECT_LT(start, stop);
}

TEST(AdversaryPlan, SelectiveSilenceInstallsTypedDropRules) {
  ChaosProfile p = AdversaryProfile(AdversaryKind::kSelectiveSilence);
  FaultPlan plan =
      MakeRandomPlan(13, {TestGroup()}, 800000, p, TargetPrimary1());
  int silence_links = 0;
  for (const auto& ev : plan.events) {
    if (ev.action.kind == FaultAction::Kind::kLinkFault &&
        ev.action.fault.silence_mask != 0) {
      ++silence_links;
      EXPECT_EQ(ev.action.a, 1u);
      EXPECT_EQ(ev.action.fault.silence_mask, p.silence_types);
      // Typed silence is a deterministic rule, not a coin flip.
      EXPECT_EQ(ev.action.fault.drop, 0.0);
    }
  }
  EXPECT_EQ(silence_links, 3);
  // Silence rules are TARGETED loss (named links): prefix-only auditing
  // is not required, full convergence stays asserted.
  EXPECT_FALSE(plan.HasUntargetedLoss());
}

TEST(AdversaryPlan, TargetConsumesAFaultSlotAndIsNeverCrashed) {
  for (AdversaryKind k :
       {AdversaryKind::kGrayFailure, AdversaryKind::kEquivocation,
        AdversaryKind::kSelectiveSilence}) {
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      FaultPlan plan = MakeRandomPlan(seed, {TestGroup()}, 800000,
                                      AdversaryProfile(k), TargetPrimary1());
      NodeId victim = AdversaryVictim(plan);
      ASSERT_EQ(victim, 1u) << AdversaryName(k) << " seed " << seed;
      for (const auto& ev : plan.events) {
        // The adversary target must never ALSO be a crash or partition
        // victim — combined faults would exceed the group bound.
        if (ev.action.kind == FaultAction::Kind::kCrash ||
            ev.action.kind == FaultAction::Kind::kRecover) {
          EXPECT_NE(ev.action.a, victim)
              << AdversaryName(k) << " seed " << seed;
        }
        if (ev.action.kind == FaultAction::Kind::kPartition) {
          EXPECT_NE(ev.action.a, victim);
          EXPECT_NE(ev.action.b, victim);
        }
      }
    }
  }
}

TEST(AdversaryPlan, NoTargetMeansBenignPlan) {
  // Adversary requested but no eligible target: the plan must degrade to
  // the benign schedule, bit-for-bit.
  ChaosProfile p = AdversaryProfile(AdversaryKind::kGrayFailure);
  AdversaryTargets none;
  none.primaries.push_back(kInvalidNode);
  FaultPlan with = MakeRandomPlan(7, {TestGroup()}, 800000, p, none);
  ChaosProfile benign = p;
  benign.adversary = AdversaryKind::kNone;
  FaultPlan without =
      MakeRandomPlan(7, {TestGroup()}, 800000, benign, TargetPrimary1());
  EXPECT_EQ(EncodePlan(with), EncodePlan(without));
}

TEST(AdversaryPlan, KNoneMatchesHistoricOverload) {
  ChaosProfile p;
  p.dup = 0.03;
  p.reorder = 0.05;
  p.loss = 0.02;
  FaultPlan three = MakeRandomPlan(9, {TestGroup()}, 800000, p);
  FaultPlan five =
      MakeRandomPlan(9, {TestGroup()}, 800000, p, TargetPrimary1());
  EXPECT_EQ(EncodePlan(three), EncodePlan(five));
}

// ------------------------------------------------------------ plan serde

TEST(PlanSerde, RoundTripsEveryAdversary) {
  for (AdversaryKind k :
       {AdversaryKind::kNone, AdversaryKind::kGrayFailure,
        AdversaryKind::kEquivocation, AdversaryKind::kSelectiveSilence,
        AdversaryKind::kCrossConflict}) {
    ChaosProfile p = AdversaryProfile(k);
    p.loss = 0.02;  // cover drop-rate windows too
    FaultPlan plan =
        MakeRandomPlan(21, {TestGroup()}, 800000, p, TargetPrimary1());
    std::vector<uint8_t> buf = EncodePlan(plan);
    FaultPlan decoded;
    ASSERT_TRUE(DecodePlan(buf, &decoded).ok()) << AdversaryName(k);
    ASSERT_EQ(decoded.events.size(), plan.events.size());
    // Canonical encoding: re-encoding the decoded plan is byte-identical.
    EXPECT_EQ(EncodePlan(decoded), buf) << AdversaryName(k);
  }
}

TEST(PlanSerde, RejectsCorruptBuffers) {
  FaultPlan plan = MakeRandomPlan(3, {TestGroup()}, 800000,
                                  AdversaryProfile(AdversaryKind::kNone));
  std::vector<uint8_t> buf = EncodePlan(plan);
  FaultPlan out;

  std::vector<uint8_t> truncated(buf.begin(), buf.end() - 5);
  EXPECT_FALSE(DecodePlan(truncated, &out).ok());

  std::vector<uint8_t> bad_magic = buf;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodePlan(bad_magic, &out).ok());

  std::vector<uint8_t> trailing = buf;
  trailing.push_back(0);
  EXPECT_FALSE(DecodePlan(trailing, &out).ok());

  EXPECT_FALSE(DecodePlan({}, &out).ok());
}

// ----------------------------------------- corpus runs: the adversaries

struct AdversaryGolden {
  ChaosStack stack;
  uint64_t seed;
  AdversaryKind adversary;
  uint64_t trace_hash;
};

// Trace hashes pinned when the staged adversaries were introduced. Each
// run must pass the full corpus criteria AND replay to the exact pinned
// hash — any scheduling drift in the adversary machinery shows up here
// the way benign drift shows up in chaos_test's ChaosGolden.
TEST(CorpusGolden, AdversaryTraceHashesMatchPinned) {
  const AdversaryGolden kGolden[] = {
      {ChaosStack::kQanaatPbft, 5, AdversaryKind::kGrayFailure,
       0xb9cd34fd5bea5f6eULL},
      {ChaosStack::kQanaatPbft, 6, AdversaryKind::kEquivocation,
       0x0cc60606710ff962ULL},
      // Seed-7 silence pins re-pinned for the §4.3.5 PR: selective
      // silence swallows FPropose/FCommit traffic, so these schedules
      // now exercise the orphan-commit-vote query timer and moved
      // intentionally (see the chaos_test pin-table comment).
      {ChaosStack::kQanaatPbft, 7, AdversaryKind::kSelectiveSilence,
       0x6b6634f4df300933ULL},
      {ChaosStack::kQanaatPaxos, 5, AdversaryKind::kGrayFailure,
       0x9ce825a0f5baf256ULL},
      {ChaosStack::kQanaatPaxos, 7, AdversaryKind::kSelectiveSilence,
       0x0f0248c5429e6dd1ULL},
      {ChaosStack::kFabric, 6, AdversaryKind::kGrayFailure,
       0xebdbb98e6409da29ULL},
      // Cross-conflict profile pins (§4.3.5). pbft/1002 is the seed whose
      // recovery-during-wedge schedule found the certified-but-pending
      // tail hole in state transfer — its pin guards both the arbitration
      // machinery and that fix.
      {ChaosStack::kQanaatPbft, kConflictSeedBase + 2,
       AdversaryKind::kCrossConflict, 0x2f86155a7650b304ULL},
      {ChaosStack::kQanaatPaxos, kConflictSeedBase + 1,
       AdversaryKind::kCrossConflict, 0xefe1c990e2c0b7b8ULL},
  };
  for (const auto& g : kGolden) {
    CorpusEntry e{g.stack, g.seed, g.adversary};
    CorpusRunResult r = RunEntry(e);
    EXPECT_TRUE(r.passed) << ReproCommand(e) << ": " << r.failure;
    EXPECT_EQ(r.report.trace_hash, g.trace_hash)
        << StackArgName(g.stack) << " seed " << g.seed << " "
        << AdversaryName(g.adversary) << std::hex << " actual 0x"
        << r.report.trace_hash;
  }
}

TEST(CorpusReplay, AdversaryRunsAreDeterministic) {
  for (AdversaryKind k :
       {AdversaryKind::kGrayFailure, AdversaryKind::kEquivocation,
        AdversaryKind::kSelectiveSilence}) {
    CorpusEntry e{ChaosStack::kQanaatPbft, 10, k};
    ChaosOptions opts = EntryOptions(e);
    ChaosReport a = RunChaos(opts);
    ChaosReport b = RunChaos(opts);
    EXPECT_EQ(a.trace_hash, b.trace_hash) << AdversaryName(k);
    EXPECT_EQ(a.commits_total, b.commits_total) << AdversaryName(k);
    EXPECT_EQ(a.faults_applied, b.faults_applied) << AdversaryName(k);
    EXPECT_EQ(a.net_silenced, b.net_silenced) << AdversaryName(k);
  }
}

TEST(CorpusRun, StackGatingDowngradesImpossibleAdversaries) {
  // Equivocation needs a Byzantine ordering node; on the crash-model
  // Paxos stack the harness downgrades it to a benign run — identical
  // trace to an explicit kNone entry.
  CorpusEntry equiv{ChaosStack::kQanaatPaxos, 9, AdversaryKind::kEquivocation};
  CorpusEntry none{ChaosStack::kQanaatPaxos, 9, AdversaryKind::kNone};
  ChaosReport a = RunChaos(EntryOptions(equiv));
  ChaosReport b = RunChaos(EntryOptions(none));
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.commits_total, b.commits_total);
}

TEST(CorpusRun, CrossRedriveOutlivingDedupWindowStaysAtMostOnce) {
  // Regression: the corpus found this exact run committing a client
  // request twice. A lossy cross instance is re-driven past the intake
  // dedup window (2x cross_timeout), so the client's retransmission was
  // "presumed abandoned" and admitted into a second block — and both
  // blocks committed. Live locally-driven instances now pin their
  // request ids (OrderingNode::pending_cross_) with no time expiry.
  CorpusEntry e{ChaosStack::kQanaatPaxos, 32, AdversaryKind::kNone};
  CorpusRunResult r = RunEntry(e);
  EXPECT_TRUE(r.passed) << r.failure;
  EXPECT_TRUE(r.report.safety.ok()) << r.report.safety.ToString();
}

TEST(CorpusRun, ConflictProfileSettlesExactlyOnce) {
  // §4.3.5 acceptance: under the rivalry regime every contested slot
  // settles on one winner and every transaction commits exactly once —
  // RunEntry's criteria include the full safety audit (double commits,
  // per-chain agreement) and, because the profile is loss-free, the
  // post-heal convergence check across every replica. One seed per
  // Qanaat stack keeps the suite fast; the corpus matrix runs them all.
  for (ChaosStack s : {ChaosStack::kQanaatPbft, ChaosStack::kQanaatPaxos}) {
    CorpusEntry e{s, kConflictSeedBase + 3, AdversaryKind::kCrossConflict};
    CorpusRunResult r = RunEntry(e);
    EXPECT_TRUE(r.passed) << ReproCommand(e) << ": " << r.failure;
    EXPECT_TRUE(r.report.safety.ok()) << r.report.safety.ToString();
  }
}

TEST(CorpusRun, SelectiveSilenceActuallySilences) {
  CorpusEntry e{ChaosStack::kQanaatPbft, 3, AdversaryKind::kSelectiveSilence};
  CorpusRunResult r = RunEntry(e);
  EXPECT_TRUE(r.passed) << r.failure;
  // The typed drop rules must have swallowed real traffic.
  EXPECT_GT(r.report.net_silenced, 0u);
}

// --------------------------------------------------------------- options

TEST(CorpusOptions, ReproCommandNamesTheTriple) {
  CorpusEntry e{ChaosStack::kQanaatPaxos, 42, AdversaryKind::kGrayFailure};
  EXPECT_EQ(ReproCommand(e),
            "tools/run_corpus --stack=paxos --seed=42 --adversary=gray");
}

TEST(CorpusOptions, ParseRoundTrip) {
  for (ChaosStack s : {ChaosStack::kQanaatPbft, ChaosStack::kQanaatPaxos,
                       ChaosStack::kFabric}) {
    ChaosStack out;
    ASSERT_TRUE(ParseStack(StackArgName(s), &out));
    EXPECT_EQ(static_cast<int>(out), static_cast<int>(s));
  }
  for (AdversaryKind k :
       {AdversaryKind::kNone, AdversaryKind::kGrayFailure,
        AdversaryKind::kEquivocation, AdversaryKind::kSelectiveSilence,
        AdversaryKind::kCrossConflict}) {
    AdversaryKind out;
    ASSERT_TRUE(ParseAdversary(AdversaryName(k), &out));
    EXPECT_EQ(static_cast<int>(out), static_cast<int>(k));
  }
  ChaosStack s;
  AdversaryKind k;
  EXPECT_FALSE(ParseStack("raft", &s));
  EXPECT_FALSE(ParseAdversary("bitflip", &k));
}

}  // namespace
}  // namespace qanaat
