#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace qanaat {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, TieBreaksByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, RunStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { fired++; });
  sim.Schedule(100, [&] { fired++; });
  sim.Run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.Run(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.Schedule(10, recurse);
  };
  sim.Schedule(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, PooledEventsPreserveOrderAcrossPoolReuse) {
  // The tagged event queue recycles pool slots after each executed
  // event. (time, insertion-seq) ordering must survive reuse: a second
  // wave of same-time events, landing in slots freed by the first wave,
  // still executes in exact insertion order.
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  // Second wave, alternating between two times: ties break by insertion
  // order, and every time-7 event runs before every time-8 event even
  // though their pool slots interleave.
  for (int i = 16; i < 32; ++i) {
    sim.Schedule(i % 2 == 0 ? 7 : 8, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  ASSERT_EQ(order.size(), 32u);
  std::vector<int> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(i);
  for (int i = 16; i < 32; i += 2) expect.push_back(i);      // time 7
  for (int i = 17; i < 32; i += 2) expect.push_back(i);      // time 8
  EXPECT_EQ(order, expect);
  EXPECT_EQ(sim.events_executed(), 32u);
}

TEST(SimulatorTest, EventsExecutedCounterAccumulates) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] { fired++; });
  sim.Schedule(2, [&] { fired++; });
  sim.Run(1);
  EXPECT_EQ(sim.events_executed(), 1u);
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 2u);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PastScheduleClampedToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.Schedule(100, [&] {
    sim.ScheduleAt(5, [&] { observed = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(observed, 100);
}

// ------------------------------------------------------------- Network

class EchoActor : public Actor {
 public:
  EchoActor(Env* env, int region) : Actor(env, "echo", region) {}
  void OnMessage(NodeId from, const MessageRef& msg) override {
    received++;
    last_from = from;
    last_time = now();
    (void)msg;
  }
  int received = 0;
  NodeId last_from = kInvalidNode;
  SimTime last_time = 0;
};

struct NetFixture {
  NetFixture() : env(1), net(&env) {}
  Env env;
  Network net;
};

MessageRef MakeMsg() {
  auto m = std::make_shared<Message>(MsgType::kRequest);
  m->sig_verify_ops = 0;
  return m;
}

TEST(NetworkTest, DeliversWithLanLatency) {
  NetFixture f;
  f.env.costs.jitter_us = 0;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
  // latency + processing cost
  EXPECT_GE(b.last_time, f.env.costs.lan_latency_us);
}

TEST(NetworkTest, WanLatencyFromRttMatrix) {
  NetFixture f;
  f.env.costs.jitter_us = 0;
  int r1 = f.net.AddRegion();
  EchoActor a(&f.env, 0), b(&f.env, r1);
  f.net.SetRtt(0, r1, 100000);  // 100 ms RTT -> 50 ms one-way
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
  EXPECT_GE(b.last_time, 50000);
  EXPECT_LT(b.last_time, 52000);
}

TEST(NetworkTest, CrashedNodesDropTraffic) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  b.Crash();
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 0);
  b.Recover();
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
}

TEST(NetworkTest, PartitionBlocksBothDirectionsUntilHealed) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Partition(a.id(), b.id());
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.net.Send(b.id(), a.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(a.received + b.received, 0);
  f.net.HealPartition(a.id(), b.id());
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
}

TEST(NetworkTest, LinkRestrictionEnforcedBothWays) {
  // The privacy firewall's physical wiring: a restricted node can only
  // talk to its allow-list, and others cannot reach it either.
  NetFixture f;
  EchoActor exec(&f.env, 0), filter(&f.env, 0), client(&f.env, 0);
  f.net.RestrictLinks(exec.id(), {filter.id()});
  f.net.Send(exec.id(), client.id(), MakeMsg());  // leak attempt
  f.env.sim.RunAll();
  EXPECT_EQ(client.received, 0);
  EXPECT_EQ(f.net.blocked_sends(), 1u);
  f.net.Send(exec.id(), filter.id(), MakeMsg());  // allowed path
  f.env.sim.RunAll();
  EXPECT_EQ(filter.received, 1);
  f.net.Send(client.id(), exec.id(), MakeMsg());  // reverse also blocked
  f.env.sim.RunAll();
  EXPECT_EQ(exec.received, 0);
}

TEST(NetworkTest, DropRateLosesSomeMessages) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.SetDropRate(0.5);
  for (int i = 0; i < 200; ++i) f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_GT(b.received, 50);
  EXPECT_LT(b.received, 150);
}

TEST(NetworkTest, SerialCpuQueueDelaysBursts) {
  // Two messages arriving together: the second handler runs after the
  // first's processing completes (M/G/1 behaviour).
  NetFixture f;
  f.env.costs.jitter_us = 0;
  f.env.costs.base_proc_us = 100;
  f.env.costs.verify_sig_us = 0;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 2);
  // Arrival ~250, first done ~350, second done ~450.
  EXPECT_GE(b.last_time, 450);
}

TEST(NetworkTest, BandwidthAddsTransmissionDelay) {
  NetFixture f;
  f.env.costs.jitter_us = 0;
  f.env.costs.bandwidth_bytes_per_us = 1.0;  // 1 byte/us
  EchoActor a(&f.env, 0), b(&f.env, 0);
  auto m = std::make_shared<Message>(MsgType::kRequest);
  m->sig_verify_ops = 0;
  m->wire_bytes = 10000;
  f.net.Send(a.id(), b.id(), m);
  f.env.sim.RunAll();
  EXPECT_GE(b.last_time, 10000 + f.env.costs.lan_latency_us);
}

TEST(NetworkTest, MulticastReachesAll) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0), c(&f.env, 0), d(&f.env, 0);
  f.net.Multicast(a.id(), {b.id(), c.id(), d.id()}, MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received + c.received + d.received, 3);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Env env(seed);
    Network net(&env);
    EchoActor a(&env, 0), b(&env, 0);
    std::vector<SimTime> times;
    for (int i = 0; i < 20; ++i) net.Send(a.id(), b.id(), MakeMsg());
    env.sim.RunAll();
    return b.last_time;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // jitter differs with seed
}

// ----------------------------------------------------------- timers

class TimerActor : public Actor {
 public:
  explicit TimerActor(Env* env) : Actor(env, "timer") {}
  void OnMessage(NodeId, const MessageRef&) override {}
  void OnTimer(uint64_t tag, uint64_t payload) override {
    fired.emplace_back(tag, payload);
  }
  void Arm(SimTime d, uint64_t tag, uint64_t payload) {
    StartTimer(d, tag, payload);
  }
  std::vector<std::pair<uint64_t, uint64_t>> fired;
};

TEST(ActorTimerTest, TaggedTimersPreserveArmingOrderAcrossPoolReuse) {
  // Actor timers ride the pooled tagged-event path; ties on the same
  // firing time must keep arming order, including for timers armed after
  // earlier events freed their pool slots.
  NetFixture f;
  TimerActor t(&f.env);
  for (uint64_t i = 0; i < 8; ++i) t.Arm(50, 1, i);
  f.env.sim.RunAll();
  for (uint64_t i = 8; i < 16; ++i) t.Arm(50, 1, i);
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 16u);
  for (uint64_t i = 0; i < 16; ++i) EXPECT_EQ(t.fired[i].second, i);
}

// ------------------------------------------------------- CPU charging

class ChargingActor : public Actor {
 public:
  explicit ChargingActor(Env* env) : Actor(env, "charge") {}
  void OnMessage(NodeId, const MessageRef&) override { handled_at = now(); }
  void OnTimer(uint64_t, uint64_t payload) override {
    ChargeCpu(static_cast<SimTime>(payload));
  }
  void Arm(SimTime d, SimTime charge) {
    StartTimer(d, 1, static_cast<uint64_t>(charge));
  }
  SimTime handled_at = -1;
};

TEST(ActorCpuTest, ChargeCpuAfterIdleStartsFromNow) {
  // Regression: ChargeCpu used to extend a stale busy_until_ that lay in
  // the past, so a node idle since t=0 charging 500us at t=1000 appeared
  // busy only until t=500 — i.e. not at all. The charge must occupy
  // [now, now + d].
  NetFixture f;
  f.env.costs.jitter_us = 0;
  f.env.costs.base_proc_us = 8;
  EchoActor sender(&f.env, 0);
  ChargingActor c(&f.env);
  c.Arm(1000, 500);  // at t=1000, occupy the CPU until t=1500
  f.env.sim.Schedule(1000, [&] {
    auto m = std::make_shared<Message>(MsgType::kRequest);
    m->sig_verify_ops = 0;
    f.net.Send(sender.id(), c.id(), m);  // arrives ~1250, mid-charge
  });
  f.env.sim.RunAll();
  // Processing starts when the charged work completes, not at arrival.
  EXPECT_GE(c.handled_at, 1500 + f.env.costs.base_proc_us);
}

TEST(ActorTimerTest, FiresWithTagAndPayload) {
  NetFixture f;
  TimerActor t(&f.env);
  t.Arm(100, 7, 42);
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 1u);
  EXPECT_EQ(t.fired[0], std::make_pair(uint64_t{7}, uint64_t{42}));
}

TEST(ActorTimerTest, CrashedActorTimersDontFire) {
  NetFixture f;
  TimerActor t(&f.env);
  t.Arm(100, 1, 0);
  t.Crash();
  f.env.sim.RunAll();
  EXPECT_TRUE(t.fired.empty());
}

// ------------------------------------------------ crash epochs (recovery)

TEST(ActorEpochTest, PreCrashTimerDoesNotFireAfterRecovery) {
  // Regression: a timer armed before Crash() must not fire in the
  // recovered life, even though the node is up again when it expires.
  NetFixture f;
  TimerActor t(&f.env);
  t.Arm(100, 7, 1);
  f.env.sim.Schedule(10, [&] { t.Crash(); });
  f.env.sim.Schedule(20, [&] { t.Recover(); });
  f.env.sim.RunAll();
  EXPECT_TRUE(t.fired.empty());
  // A timer armed in the new life fires normally.
  t.Arm(50, 8, 2);
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 1u);
  EXPECT_EQ(t.fired[0].first, 8u);
}

TEST(ActorEpochTest, InFlightDeliveryFromPreviousLifeDiscarded) {
  // A message in flight while the destination crashes is lost with that
  // life, even when it would arrive after recovery.
  NetFixture f;
  f.env.costs.jitter_us = 0;  // arrival exactly at lan latency (250us)
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.Schedule(100, [&] { b.Crash(); });
  f.env.sim.Schedule(150, [&] { b.Recover(); });
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 0);
  // Messages sent to the recovered life are delivered.
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
}

TEST(ActorEpochTest, ProcessingInterruptedByCrashNeverCompletes) {
  // A message whose CPU processing spans a crash must not invoke the
  // handler after recovery (the process that was computing it is gone).
  NetFixture f;
  f.env.costs.jitter_us = 0;
  f.env.costs.base_proc_us = 200;  // arrival 250, handler would run at 450
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.Schedule(300, [&] { b.Crash(); });
  f.env.sim.Schedule(350, [&] { b.Recover(); });
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 0);
}

// -------------------------------------- fault randomness determinism

TEST(NetworkTest, BlockedSendsDoNotConsumeFaultRandomness) {
  // Regression: sends blocked by a crashed endpoint must not draw the
  // drop coin, or replays would diverge based on how many sends were
  // blocked. Two runs differing only in extra sends to a crashed node
  // must deliver the same messages at the same times.
  auto run = [](bool with_blocked_sends) {
    Env env(123);
    Network net(&env);
    EchoActor a(&env, 0), b(&env, 0), dead(&env, 0);
    dead.Crash();
    net.SetDropRate(0.3);
    for (int i = 0; i < 50; ++i) {
      if (with_blocked_sends) {
        net.Send(a.id(), dead.id(), MakeMsg());  // must be side-effect free
      }
      net.Send(a.id(), b.id(), MakeMsg());
    }
    env.sim.RunAll();
    return std::make_pair(b.received, b.last_time);
  };
  EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------- per-link fault injection

TEST(NetworkTest, LinkFaultDuplicatesMessages) {
  NetFixture f;
  Network::LinkFault lf;
  lf.duplicate = 1.0;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.SetLinkFault(a.id(), b.id(), lf);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 2);
  EXPECT_EQ(f.net.duplicated(), 1u);
  EXPECT_EQ(f.env.metrics.Get("net.duplicated"), 1u);
}

TEST(NetworkTest, LinkFaultReordersMessages) {
  // With an aggressive reorder rule, some later-sent messages overtake
  // earlier ones; the metric counts the overtakes.
  NetFixture f;
  f.env.costs.jitter_us = 0;
  Network::LinkFault lf;
  lf.reorder = 1.0;
  lf.reorder_delay_us = 5000;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.SetDefaultLinkFault(lf);
  for (int i = 0; i < 30; ++i) f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 30);  // reordering delays, never loses
  EXPECT_GT(f.net.reordered(), 0u);
}

TEST(NetworkTest, LinkFaultDropIsPerLink) {
  NetFixture f;
  Network::LinkFault lf;
  lf.drop = 1.0;
  EchoActor a(&f.env, 0), b(&f.env, 0), c(&f.env, 0);
  f.net.SetLinkFault(a.id(), b.id(), lf);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.net.Send(a.id(), c.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 0);  // faulted link loses everything
  EXPECT_EQ(c.received, 1);  // other links unaffected
}

// ------------------------------------------- hierarchical timer wheel

TEST(TimerWheelTest, SameTickOrderAcrossWheelHeapSpillBoundary) {
  // A timer beyond the wheel horizon spills to the 4-ary heap; a timer
  // armed later for the SAME tick lands in the wheel. The merge loop
  // must still fire them in global arming (seq) order, and closures
  // scheduled for that tick interleave by seq too.
  NetFixture f;
  TimerActor t(&f.env);
  const SimTime kTick = TimerWheel::kHorizon + 100;
  t.Arm(kTick, 1, 100);               // beyond horizon: heap spill
  std::vector<int> closure_pos;
  f.env.sim.Schedule(TimerWheel::kHorizon, [] {});  // advance the clock
  f.env.sim.Run(TimerWheel::kHorizon);
  t.Arm(100, 1, 200);                 // same tick, now within the wheel
  f.env.sim.ScheduleAt(kTick, [&] {
    closure_pos.push_back(static_cast<int>(t.fired.size()));
  });
  t.Arm(100, 1, 300);                 // armed after the closure
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 3u);
  EXPECT_EQ(t.fired[0].second, 100u);  // heap-spilled timer first (seq)
  EXPECT_EQ(t.fired[1].second, 200u);
  EXPECT_EQ(t.fired[2].second, 300u);
  // The closure was scheduled between the 200 and 300 arms: it must run
  // after two timers fired and before the third.
  ASSERT_EQ(closure_pos.size(), 1u);
  EXPECT_EQ(closure_pos[0], 2);
}

TEST(TimerWheelTest, SameTickMergesAcrossWheelLevels) {
  // Entries for one tick can sit at different wheel levels depending on
  // how far ahead they were armed (level 2 for a 70 ms delta, level 1
  // for 1 ms, level 0 for 100 us). The drain must merge them back into
  // exact arming order.
  NetFixture f;
  TimerActor t(&f.env);
  const SimTime kTick = 70000;
  t.Arm(kTick, 1, 1);  // delta 70000 -> level 2
  f.env.sim.Schedule(kTick - 1000, [] {});
  f.env.sim.Run(kTick - 1000);
  t.Arm(1000, 1, 2);   // same tick, delta 1000 -> level 1
  f.env.sim.Schedule(900, [] {});
  f.env.sim.Run(kTick - 100);
  t.Arm(100, 1, 3);    // same tick, delta 100 -> level 0
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 3u);
  EXPECT_EQ(t.fired[0].second, 1u);
  EXPECT_EQ(t.fired[1].second, 2u);
  EXPECT_EQ(t.fired[2].second, 3u);
}

TEST(TimerWheelTest, CancelledEpochTimersDieAndSlotsAreReusable) {
  // Crash-epoch "cancellation": timers armed before a crash must not
  // fire after recovery, and re-arming onto the same wheel tick (the
  // freed slot) must fire the new-life timers in their own arming order.
  NetFixture f;
  TimerActor t(&f.env);
  for (uint64_t i = 0; i < 4; ++i) t.Arm(500, 1, i);  // old life
  t.Crash();
  t.Recover();
  for (uint64_t i = 10; i < 14; ++i) t.Arm(500, 1, i);  // new life
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_EQ(t.fired[i].second, 10 + i);
  // The tick's wheel slot was fully consumed; a later tick mapping to
  // the same level-0 slot index (time + 256) is independent.
  t.Arm(256, 1, 99);
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 5u);
  EXPECT_EQ(t.fired[4].second, 99u);
}

TEST(TimerWheelTest, MessageDeliveriesRideTheWheelDeterministically) {
  // Deliveries and handler completions ride the wheel too; two runs of
  // the same seed must stay bit-identical (trace hash covers arrival
  // times and endpoints).
  auto run = [](uint64_t seed) {
    Env env(seed);
    Network net(&env);
    EchoActor a(&env, 0), b(&env, 0);
    for (int i = 0; i < 64; ++i) net.Send(a.id(), b.id(), MakeMsg());
    env.sim.RunAll();
    return net.trace_hash();
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(NetworkTest, TraceHashIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Env env(seed);
    Network net(&env);
    EchoActor a(&env, 0), b(&env, 0);
    Network::LinkFault lf;
    lf.duplicate = 0.2;
    lf.reorder = 0.3;
    net.SetDefaultLinkFault(lf);
    for (int i = 0; i < 40; ++i) net.Send(a.id(), b.id(), MakeMsg());
    env.sim.RunAll();
    return net.trace_hash();
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace qanaat
