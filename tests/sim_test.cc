#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace qanaat {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, TieBreaksByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, RunStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { fired++; });
  sim.Schedule(100, [&] { fired++; });
  sim.Run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.Run(200);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.Schedule(10, recurse);
  };
  sim.Schedule(0, recurse);
  sim.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(SimulatorTest, PastScheduleClampedToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.Schedule(100, [&] {
    sim.ScheduleAt(5, [&] { observed = sim.now(); });
  });
  sim.RunAll();
  EXPECT_EQ(observed, 100);
}

// ------------------------------------------------------------- Network

class EchoActor : public Actor {
 public:
  EchoActor(Env* env, int region) : Actor(env, "echo", region) {}
  void OnMessage(NodeId from, const MessageRef& msg) override {
    received++;
    last_from = from;
    last_time = now();
    (void)msg;
  }
  int received = 0;
  NodeId last_from = kInvalidNode;
  SimTime last_time = 0;
};

struct NetFixture {
  NetFixture() : env(1), net(&env) {}
  Env env;
  Network net;
};

MessageRef MakeMsg() {
  auto m = std::make_shared<Message>(MsgType::kRequest);
  m->sig_verify_ops = 0;
  return m;
}

TEST(NetworkTest, DeliversWithLanLatency) {
  NetFixture f;
  f.env.costs.jitter_us = 0;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
  // latency + processing cost
  EXPECT_GE(b.last_time, f.env.costs.lan_latency_us);
}

TEST(NetworkTest, WanLatencyFromRttMatrix) {
  NetFixture f;
  f.env.costs.jitter_us = 0;
  int r1 = f.net.AddRegion();
  EchoActor a(&f.env, 0), b(&f.env, r1);
  f.net.SetRtt(0, r1, 100000);  // 100 ms RTT -> 50 ms one-way
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
  EXPECT_GE(b.last_time, 50000);
  EXPECT_LT(b.last_time, 52000);
}

TEST(NetworkTest, CrashedNodesDropTraffic) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  b.Crash();
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 0);
  b.Recover();
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
}

TEST(NetworkTest, PartitionBlocksBothDirectionsUntilHealed) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Partition(a.id(), b.id());
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.net.Send(b.id(), a.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(a.received + b.received, 0);
  f.net.HealPartition(a.id(), b.id());
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 1);
}

TEST(NetworkTest, LinkRestrictionEnforcedBothWays) {
  // The privacy firewall's physical wiring: a restricted node can only
  // talk to its allow-list, and others cannot reach it either.
  NetFixture f;
  EchoActor exec(&f.env, 0), filter(&f.env, 0), client(&f.env, 0);
  f.net.RestrictLinks(exec.id(), {filter.id()});
  f.net.Send(exec.id(), client.id(), MakeMsg());  // leak attempt
  f.env.sim.RunAll();
  EXPECT_EQ(client.received, 0);
  EXPECT_EQ(f.net.blocked_sends(), 1u);
  f.net.Send(exec.id(), filter.id(), MakeMsg());  // allowed path
  f.env.sim.RunAll();
  EXPECT_EQ(filter.received, 1);
  f.net.Send(client.id(), exec.id(), MakeMsg());  // reverse also blocked
  f.env.sim.RunAll();
  EXPECT_EQ(exec.received, 0);
}

TEST(NetworkTest, DropRateLosesSomeMessages) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.SetDropRate(0.5);
  for (int i = 0; i < 200; ++i) f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_GT(b.received, 50);
  EXPECT_LT(b.received, 150);
}

TEST(NetworkTest, SerialCpuQueueDelaysBursts) {
  // Two messages arriving together: the second handler runs after the
  // first's processing completes (M/G/1 behaviour).
  NetFixture f;
  f.env.costs.jitter_us = 0;
  f.env.costs.base_proc_us = 100;
  f.env.costs.verify_sig_us = 0;
  EchoActor a(&f.env, 0), b(&f.env, 0);
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.net.Send(a.id(), b.id(), MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received, 2);
  // Arrival ~250, first done ~350, second done ~450.
  EXPECT_GE(b.last_time, 450);
}

TEST(NetworkTest, BandwidthAddsTransmissionDelay) {
  NetFixture f;
  f.env.costs.jitter_us = 0;
  f.env.costs.bandwidth_bytes_per_us = 1.0;  // 1 byte/us
  EchoActor a(&f.env, 0), b(&f.env, 0);
  auto m = std::make_shared<Message>(MsgType::kRequest);
  m->sig_verify_ops = 0;
  m->wire_bytes = 10000;
  f.net.Send(a.id(), b.id(), m);
  f.env.sim.RunAll();
  EXPECT_GE(b.last_time, 10000 + f.env.costs.lan_latency_us);
}

TEST(NetworkTest, MulticastReachesAll) {
  NetFixture f;
  EchoActor a(&f.env, 0), b(&f.env, 0), c(&f.env, 0), d(&f.env, 0);
  f.net.Multicast(a.id(), {b.id(), c.id(), d.id()}, MakeMsg());
  f.env.sim.RunAll();
  EXPECT_EQ(b.received + c.received + d.received, 3);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Env env(seed);
    Network net(&env);
    EchoActor a(&env, 0), b(&env, 0);
    std::vector<SimTime> times;
    for (int i = 0; i < 20; ++i) net.Send(a.id(), b.id(), MakeMsg());
    env.sim.RunAll();
    return b.last_time;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // jitter differs with seed
}

// ----------------------------------------------------------- timers

class TimerActor : public Actor {
 public:
  explicit TimerActor(Env* env) : Actor(env, "timer") {}
  void OnMessage(NodeId, const MessageRef&) override {}
  void OnTimer(uint64_t tag, uint64_t payload) override {
    fired.emplace_back(tag, payload);
  }
  void Arm(SimTime d, uint64_t tag, uint64_t payload) {
    StartTimer(d, tag, payload);
  }
  std::vector<std::pair<uint64_t, uint64_t>> fired;
};

TEST(ActorTimerTest, FiresWithTagAndPayload) {
  NetFixture f;
  TimerActor t(&f.env);
  t.Arm(100, 7, 42);
  f.env.sim.RunAll();
  ASSERT_EQ(t.fired.size(), 1u);
  EXPECT_EQ(t.fired[0], std::make_pair(uint64_t{7}, uint64_t{42}));
}

TEST(ActorTimerTest, CrashedActorTimersDontFire) {
  NetFixture f;
  TimerActor t(&f.env);
  t.Arm(100, 1, 0);
  t.Crash();
  f.env.sim.RunAll();
  EXPECT_TRUE(t.fired.empty());
}

}  // namespace
}  // namespace qanaat
