#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/enterprise_set.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"

namespace qanaat {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::PermissionDenied("no access to d_AB");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(s.ToString(), "PERMISSION_DENIED: no access to d_AB");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::NotFound("x");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Aborted("inner"); };
  auto outer = [&]() -> Status {
    QANAAT_RETURN_IF_ERROR(fails());
    return Status::Internal("should not reach");
  };
  EXPECT_EQ(outer().code(), StatusCode::kAborted);
}

// --------------------------------------------------------- EnterpriseSet

TEST(EnterpriseSetTest, BasicMembership) {
  EnterpriseSet s{0, 2, 3};
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.Label(), "ACD");
}

TEST(EnterpriseSetTest, SingleAndAll) {
  EXPECT_EQ(EnterpriseSet::Single(1).Label(), "B");
  EXPECT_EQ(EnterpriseSet::All(4).Label(), "ABCD");
  EXPECT_EQ(EnterpriseSet::All(4).size(), 4);
}

TEST(EnterpriseSetTest, SubsetLattice) {
  EnterpriseSet ab{0, 1};
  EnterpriseSet abc{0, 1, 2};
  EnterpriseSet cd{2, 3};
  EXPECT_TRUE(ab.IsSubsetOf(abc));
  EXPECT_TRUE(ab.IsProperSubsetOf(abc));
  EXPECT_FALSE(abc.IsSubsetOf(ab));
  EXPECT_TRUE(ab.IsSubsetOf(ab));
  EXPECT_FALSE(ab.IsProperSubsetOf(ab));
  EXPECT_FALSE(cd.IsSubsetOf(abc));
  EXPECT_TRUE(cd.Intersects(abc));
  EXPECT_FALSE(EnterpriseSet{3}.Intersects(ab));
}

TEST(EnterpriseSetTest, UnionIntersect) {
  EnterpriseSet ab{0, 1};
  EnterpriseSet bc{1, 2};
  EXPECT_EQ(ab.Union(bc).Label(), "ABC");
  EXPECT_EQ(ab.Intersect(bc).Label(), "B");
}

TEST(EnterpriseSetTest, MembersOrderedAndFirst) {
  EnterpriseSet s{3, 0, 2};
  auto m = s.Members();
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], 2);
  EXPECT_EQ(m[2], 3);
  EXPECT_EQ(s.First(), 0);
}

TEST(EnterpriseSetTest, AddRemove) {
  EnterpriseSet s;
  EXPECT_TRUE(s.empty());
  s.Add(5);
  EXPECT_TRUE(s.Contains(5));
  s.Remove(5);
  EXPECT_TRUE(s.empty());
}

// ------------------------------------------------------------------ Serde

TEST(SerdeTest, RoundTripScalars) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0x1234);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-77);
  enc.PutBool(true);
  enc.PutBytes("hello");

  Decoder dec(enc.buffer());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  bool b;
  std::string s;
  ASSERT_TRUE(dec.GetU8(&u8));
  ASSERT_TRUE(dec.GetU16(&u16));
  ASSERT_TRUE(dec.GetU32(&u32));
  ASSERT_TRUE(dec.GetU64(&u64));
  ASSERT_TRUE(dec.GetI64(&i64));
  ASSERT_TRUE(dec.GetBool(&b));
  ASSERT_TRUE(dec.GetBytes(&s));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -77);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(dec.Done());
}

TEST(SerdeTest, UnderflowDetected) {
  Encoder enc;
  enc.PutU16(7);
  Decoder dec(enc.buffer());
  uint64_t v;
  EXPECT_FALSE(dec.GetU64(&v));
}

TEST(SerdeTest, TruncatedBytesDetected) {
  Encoder enc;
  enc.PutU32(100);  // claims 100 bytes follow, but none do
  Decoder dec(enc.buffer());
  std::string s;
  EXPECT_FALSE(dec.GetBytes(&s));
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Uniform(10), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += r.Exponential(100.0);
  EXPECT_NEAR(sum / kN, 100.0, 5.0);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(42);
  Rng child = a.Fork();
  Rng b(42);
  b.Next();  // same state advance as Fork consumed
  // child stream should not replicate the parent stream
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.Next() == b.Next());
  EXPECT_LT(same, 4);
}

// ------------------------------------------------------------------- Zipf

TEST(ZipfTest, UniformWhenSZero) {
  Zipf z(100, 0.0);
  Rng r(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[z.Sample(r)]++;
  // Every key in range, roughly uniform.
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 100u);
    EXPECT_NEAR(c, 1000, 350);
  }
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng r(5);
  Zipf z1(10000, 1.0);
  int hot1 = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) hot1 += (z1.Sample(r) < 10);
  Zipf z2(10000, 2.0);
  int hot2 = 0;
  for (int i = 0; i < kN; ++i) hot2 += (z2.Sample(r) < 10);
  // With s=1 the top-10 of 10k keys get a sizable share; with s=2 nearly
  // everything.
  EXPECT_GT(hot1, kN / 5);
  EXPECT_GT(hot2, kN * 8 / 10);
  EXPECT_GT(hot2, hot1);
}

TEST(ZipfTest, SamplesInRange) {
  Rng r(6);
  for (double s : {0.0, 0.5, 1.0, 2.0}) {
    Zipf z(1000, s);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Sample(r), 1000u);
  }
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_NEAR(h.Percentile(0.5), 1234, 1234 * 0.13);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  Rng r(8);
  for (int i = 0; i < 100000; ++i) h.Add(static_cast<int64_t>(r.Uniform(1000000)));
  int64_t p50 = h.Percentile(0.5);
  int64_t p90 = h.Percentile(0.9);
  int64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 500000.0, 80000.0);
}

TEST(HistogramTest, MeanExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10);
  EXPECT_EQ(a.max(), 1000);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

}  // namespace
}  // namespace qanaat
