#include <gtest/gtest.h>

#include "baselines/fabric.h"

namespace qanaat {
namespace {

struct FabricFixture {
  explicit FabricFixture(FabricVariant v, double zipf = 0.0,
                         double cross = 0.1, double rate = 2000,
                         SimTime dur = 1500 * kMillisecond) {
    FabricConfig cfg;
    cfg.variant = v;
    cfg.seed = 17;
    sys = std::make_unique<FabricSystem>(cfg);
    WorkloadParams wl;
    wl.cross_fraction = cross;
    wl.zipf_s = zipf;
    wl.accounts_per_shard = 1000;  // small keyspace -> contention visible
    for (int i = 0; i < 4; ++i) {
      FabricClient* c = sys->AddClient(wl, rate / 4);
      c->Start(0, dur, 100 * kMillisecond, dur);
      clients.push_back(c);
    }
    sys->env().sim.Run(dur + 500 * kMillisecond);
  }
  uint64_t commits() const { return sys->TotalMeasuredCommits(); }
  uint64_t invalidated() const { return sys->TotalInvalidated(); }

  std::unique_ptr<FabricSystem> sys;
  std::vector<FabricClient*> clients;
};

TEST(FabricTest, CommitsUncontendedWorkload) {
  FabricFixture f(FabricVariant::kFabric);
  EXPECT_GT(f.commits(), 2000u);
  // Uniform keys over 1000 accounts at 2k tps: few invalidations.
  EXPECT_LT(f.invalidated(), f.commits() / 5);
}

TEST(FabricTest, AllPeersSeeEveryTransaction) {
  // The single global ledger: every peer either validates or hashes
  // every ordered transaction (the §3.3 "solution 1" overhead).
  FabricFixture f(FabricVariant::kFabric, 0.0, 0.5);
  for (int e = 0; e < 4; ++e) {
    FabricPeer* p = f.sys->peer(e);
    EXPECT_GT(p->valid_txs(), 0u);
    // With 50% private-collection traffic, non-members hash.
    EXPECT_GT(p->hashed_txs(), 0u);
  }
}

TEST(FabricTest, SkewCollapsesThroughput) {
  // §5.7: Fabric loses ~90% of throughput at Zipf s=2 because endorsed
  // read versions go stale before validation. Run near saturation, as
  // the paper does.
  FabricFixture uniform(FabricVariant::kFabric, 0.0, 0.1, 9000);
  FabricFixture skewed(FabricVariant::kFabric, 2.0, 0.1, 9000);
  ASSERT_GT(uniform.commits(), 0u);
  double ratio = static_cast<double>(skewed.commits()) /
                 static_cast<double>(uniform.commits());
  EXPECT_LT(ratio, 0.35);
  EXPECT_GT(skewed.invalidated(), skewed.commits());
}

TEST(FabricTest, FabricPpSurvivesSkewBetter) {
  // Fabric++'s orderer early-aborts stale submissions cheaply, so its
  // ordering capacity is spent on fresh transactions (§5.7: Fabric++
  // loses 58% where Fabric loses 91%). Offered load well past capacity.
  FabricFixture fab(FabricVariant::kFabric, 2.0, 0.1, 25000);
  FabricFixture fpp(FabricVariant::kFabricPP, 2.0, 0.1, 25000);
  EXPECT_GT(fpp.commits(), fab.commits() * 3 / 2);
  EXPECT_GT(fpp.sys->orderer(0)->early_aborted(), 0u);
}

TEST(FabricTest, FastFabricOrdersCheaper) {
  // At a load beyond Fabric's ordering capacity, FastFabric still keeps
  // up (its orderer handles only hashes).
  FabricFixture fab(FabricVariant::kFabric, 0.0, 0.1, 14000);
  FabricFixture fast(FabricVariant::kFastFabric, 0.0, 0.1, 14000);
  EXPECT_GT(fast.commits(), fab.commits() * 12 / 10);
}

TEST(FabricTest, RaftFollowerFailureTolerated) {
  FabricConfig cfg;
  cfg.seed = 23;
  FabricSystem sys(cfg);
  sys.orderer(1)->Crash();  // one of three followers
  WorkloadParams wl;
  FabricClient* c = sys.AddClient(wl, 1000);
  c->Start(0, kSecond, 100 * kMillisecond, kSecond);
  sys.env().sim.Run(2 * kSecond);
  EXPECT_GT(c->measured_commits(), 700u);
}

TEST(FabricTest, MoneyConservedUnderValidation) {
  // MVCC never applies half a transaction: each peer's state sums to 0
  // per collection (sendPayment is zero-sum).
  FabricFixture f(FabricVariant::kFabric, 1.0, 0.3);
  ASSERT_GT(f.commits(), 0u);
  // (Implicitly validated by the absence of apply errors; peers apply
  // whole write-sets only.)
  EXPECT_EQ(f.sys->env().metrics.Get("fabric.bad_request_sig"), 0u);
}

TEST(FabricTest, DeterministicAcrossSeeds) {
  auto run = [](uint64_t seed) {
    FabricConfig cfg;
    cfg.seed = seed;
    FabricSystem sys(cfg);
    WorkloadParams wl;
    FabricClient* c = sys.AddClient(wl, 500);
    c->Start(0, kSecond, 0, kSecond);
    sys.env().sim.Run(2 * kSecond);
    return c->measured_commits();
  };
  EXPECT_EQ(run(5), run(5));
}

}  // namespace
}  // namespace qanaat
