// Deterministic chaos suite: seed-expanded fault schedules (crash/recover,
// partitions, duplication, reordering, loss) against every protocol stack,
// with the SafetyAuditor checking cross-replica agreement continuously and
// at quiesce. Every run here is replayable: a red seed is a one-line
// regression test (see the Replay suite and README "Fault model & chaos
// testing").

#include <gtest/gtest.h>

#include "harness/chaos.h"
#include "harness/corpus.h"
#include "sim/faults.h"

namespace qanaat {
namespace {

// The canonical benign corpus recipe now lives in harness/corpus.h
// (EntryOptions); this suite pins its trace hashes, so any drift in the
// shared recipe — here or in the run_corpus driver — trips the goldens.
ChaosOptions CorpusOptions(ChaosStack stack, uint64_t seed) {
  return EntryOptions(CorpusEntry{stack, seed, AdversaryKind::kNone});
}

class ChaosCorpus
    : public ::testing::TestWithParam<std::tuple<ChaosStack, uint64_t>> {};

TEST_P(ChaosCorpus, SafetyHoldsAndLivenessResumes) {
  auto [stack, seed] = GetParam();
  ChaosOptions opts = CorpusOptions(stack, seed);
  ChaosReport r = RunChaos(opts);
  EXPECT_TRUE(r.safety.ok())
      << ChaosStackName(stack) << " seed " << seed << ": "
      << r.safety.ToString() << "\n"
      << r.plan_summary;
  EXPECT_GT(r.faults_applied, 0u) << r.plan_summary;
  // The corpus keeps duplication/reordering always on; make sure the
  // injected faults actually bit.
  EXPECT_GT(r.net_duplicated + r.net_reordered, 0u);
  // Liveness: transactions keep settling after every fault healed.
  EXPECT_TRUE(r.liveness_resumed)
      << ChaosStackName(stack) << " seed " << seed << ": commits "
      << r.commits_at_heal << " at heal, " << r.commits_total << " total";
  EXPECT_GT(r.commits_total, 100u);
  if (opts.profile.loss == 0.0 && r.safety.ok()) {
    EXPECT_TRUE(r.convergence_checked);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedSweep, ChaosCorpus,
    ::testing::Combine(::testing::Values(ChaosStack::kQanaatPbft,
                                         ChaosStack::kQanaatPaxos,
                                         ChaosStack::kFabric),
                       ::testing::Range<uint64_t>(1, 21)),
    [](const ::testing::TestParamInfo<ChaosCorpus::ParamType>& info) {
      std::string stack;
      switch (std::get<0>(info.param)) {
        case ChaosStack::kQanaatPbft:
          stack = "QanaatPbft";
          break;
        case ChaosStack::kQanaatPaxos:
          stack = "QanaatPaxos";
          break;
        case ChaosStack::kFabric:
          stack = "Fabric";
          break;
      }
      return stack + "Seed" + std::to_string(std::get<1>(info.param));
    });

// ------------------------------------------------------------ replayability

TEST(ChaosReplay, SameSeedSameTrace) {
  for (uint64_t seed : {3u, 8u}) {
    ChaosOptions opts = CorpusOptions(ChaosStack::kQanaatPbft, seed);
    ChaosReport a = RunChaos(opts);
    ChaosReport b = RunChaos(opts);
    EXPECT_EQ(a.trace_hash, b.trace_hash) << "seed " << seed;
    EXPECT_EQ(a.commits_total, b.commits_total);
    EXPECT_EQ(a.faults_applied, b.faults_applied);
    EXPECT_EQ(a.net_duplicated, b.net_duplicated);
    EXPECT_EQ(a.net_reordered, b.net_reordered);
  }
}

// Golden seeds: trace hashes pinned on the checkpoint/state-transfer
// subsystem's introduction. Re-pinned from the PR-3 values because this
// PR deliberately changes every corpus schedule, not just speed: random
// plans now draw victims from ALL ordering nodes (primaries included),
// so MakeRandomPlan's RNG consumption differs; engines broadcast
// CHECKPOINT votes every checkpoint_interval slots; Fabric peers poll
// the ordering service for missed blocks; and fill requests grew a
// view-sync field. Replayability itself is unchanged — ChaosReplay
// proves seed => identical trace — and any UNINTENDED scheduling drift
// from future refactors will still trip these pins.
TEST(ChaosGolden, TraceHashesMatchPinnedSchedules) {
  struct Golden {
    ChaosStack stack;
    uint64_t seed;
    uint64_t trace_hash;
  };
  // Expanded to 5 seeds x 3 stacks by the protocol hot-path overhaul
  // (timer wheel, Paxos slot flattening, signable memoization). Every
  // value below was captured on the tree BEFORE that overhaul — the PR's
  // explicit acceptance bar is that pure performance work changes no
  // schedule, so these pins must NOT be re-pinned by perf refactors; a
  // mismatch means the optimization changed observable behavior.
  // Qanaat pins re-pinned for the §4.3.5 conflict-resolution PR. The
  // intentional behavior changes that moved them: (1) the cross-shard
  // retry path drops transactions that already committed elsewhere and
  // redrives consult the ledger before re-claiming a contested slot
  // (exactly-once); (2) commit votes arriving for a block a replica
  // never saw proposed now arm the §4.3.4 query timer (closing the
  // lost-FPropose tail gap); (3) state transfer serves certified blocks
  // still pending a predecessor (closing the recovery-during-wedge tail
  // gap). Each adds recovery traffic only on faulty schedules — these
  // seeds crash and drop, so their schedules legitimately moved. The
  // Fabric baseline has no cross-shard machinery: its pins MUST hold.
  static const Golden kGolden[] = {
      {ChaosStack::kQanaatPbft, 2u, 0x1bd5d9bca2dc5812ULL},
      {ChaosStack::kQanaatPbft, 3u, 0xfcbba6078d99f164ULL},
      {ChaosStack::kQanaatPbft, 5u, 0x62e30efd37e60b66ULL},
      {ChaosStack::kQanaatPbft, 7u, 0xa26ba5da16b8271bULL},
      {ChaosStack::kQanaatPbft, 12u, 0xb6aa66678d9ddb04ULL},
      {ChaosStack::kQanaatPaxos, 2u, 0xcc76ee3e909b56b1ULL},
      {ChaosStack::kQanaatPaxos, 3u, 0xb8fea86308d28099ULL},
      {ChaosStack::kQanaatPaxos, 5u, 0x78060eff0f1281dcULL},
      {ChaosStack::kQanaatPaxos, 7u, 0x1cb395ee292d88c4ULL},
      {ChaosStack::kQanaatPaxos, 12u, 0x20b8d76fa8064308ULL},
      {ChaosStack::kFabric, 2u, 0x967a5df6743242b0ULL},
      {ChaosStack::kFabric, 3u, 0x70b03581c3ee88beULL},
      {ChaosStack::kFabric, 5u, 0xebc0767ebf79ecc1ULL},
      {ChaosStack::kFabric, 7u, 0x9c004389bab0a364ULL},
      {ChaosStack::kFabric, 12u, 0x1cb437fd7f974f07ULL},
  };
  for (const Golden& g : kGolden) {
    ChaosReport r = RunChaos(CorpusOptions(g.stack, g.seed));
    EXPECT_EQ(r.trace_hash, g.trace_hash)
        << ChaosStackName(g.stack) << " seed " << g.seed
        << " diverged from the pinned schedule";
    EXPECT_TRUE(r.safety.ok());
  }
}

TEST(ChaosReplay, DifferentSeedsDiverge) {
  ChaosReport a = RunChaos(CorpusOptions(ChaosStack::kQanaatPbft, 5));
  ChaosReport b = RunChaos(CorpusOptions(ChaosStack::kQanaatPbft, 6));
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

// --------------------------------------------- firewall containment chaos

TEST(ChaosFirewall, ByzantineExecutorContainedUnderChaos) {
  ChaosOptions o = CorpusOptions(ChaosStack::kQanaatPbft, 11);
  o.use_firewall = true;
  o.byzantine_executor = true;
  o.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  ChaosReport r = RunChaos(o);
  // Corrupted replies never produce a bad certificate at a client, never
  // escape the wiring, and never block progress (g+1 honest executors).
  EXPECT_TRUE(r.safety.ok()) << r.safety.ToString() << "\n" << r.plan_summary;
  EXPECT_TRUE(r.liveness_resumed);
  EXPECT_GT(r.commits_total, 100u);
}

// ------------------------------------------------- targeted primary crash

TEST(ChaosPrimaryCrash, PbftViewChangeRestoresLiveness) {
  // Hand-written plan (not seed-expanded): kill cluster 0's primary under
  // load and keep it down; the view change must hand leadership over and
  // client retransmission must route the backlog to the new primary.
  QanaatSystem::Options so;
  so.params.num_enterprises = 2;
  so.params.shards_per_enterprise = 2;
  so.params.failure_model = FailureModel::kByzantine;
  so.params.family = ProtocolFamily::kFlattened;
  so.seed = 17;
  QanaatSystem sys(std::move(so));
  sys.net().set_record_delivered_links(true);

  WorkloadParams wl;
  wl.cross_fraction = 0.0;  // internal load only: isolates the view change
  ClientMachine* c = sys.AddClient(wl, 400.0);
  c->SetRetransmitTimeout(200 * kMillisecond);
  c->Start(0, 1500 * kMillisecond, 0, 2 * kSecond);

  NodeId primary = sys.directory().Cluster(0).InitialPrimary();
  FaultPlan plan;
  FaultAction crash;
  crash.kind = FaultAction::Kind::kCrash;
  crash.a = primary;
  plan.Add(300 * kMillisecond, crash);

  FaultInjector injector(&sys.env(), &sys.net());
  injector.Install(std::move(plan));

  uint64_t at_crash = 0;
  sys.env().sim.ScheduleAt(301 * kMillisecond,
                           [&]() { at_crash = sys.TotalAccepted(); });
  sys.env().sim.Run(2 * kSecond);

  EXPECT_GE(sys.env().metrics.Get("pbft.view_installed"), 3u)
      << "every replica of cluster 0 should install the new view";
  EXPECT_GT(sys.TotalAccepted(), at_crash + 50)
      << "commits must resume under the new primary";
  std::set<NodeId> degraded = {primary};
  EXPECT_TRUE(SafetyAuditor::AuditQanaat(sys, /*full=*/true, &degraded).ok());
}

// ----------------------------------------- auditor catches real violations

TEST(SafetyAuditorTest, FlagsDivergentReplicas) {
  // Run a clean system, then tamper with one replica's committed block:
  // the full audit must fail (hash-chain check), proving the auditor is
  // not vacuously green.
  QanaatSystem::Options so;
  so.params.num_enterprises = 2;
  so.params.shards_per_enterprise = 1;
  so.params.failure_model = FailureModel::kCrash;
  so.seed = 5;
  QanaatSystem sys(std::move(so));
  WorkloadParams wl;
  wl.cross_fraction = 0.0;
  ClientMachine* c = sys.AddClient(wl, 300.0);
  c->Start(0, 500 * kMillisecond, 0, kSecond);
  sys.env().sim.Run(kSecond);
  ASSERT_TRUE(SafetyAuditor::AuditQanaat(sys, true, nullptr).ok());

  const DagLedger& ledger = sys.ordering_node(0, 0)->exec_core().ledger();
  ASSERT_GT(ledger.size(), 0u);
  // Post-commit tampering with transaction content.
  auto* block = const_cast<Block*>(ledger.entry(0).block.get());
  ASSERT_FALSE(block->txs.empty());
  block->txs[0].client_ts += 1;
  block->txs[0].InvalidateDigest();
  EXPECT_FALSE(SafetyAuditor::AuditQanaat(sys, true, nullptr).ok());
}

}  // namespace
}  // namespace qanaat
