// Robustness of the wire decoders: any truncation or bit-flip of a
// serialized structure must be either detected (decode fails) or decode
// into a *different* value — never crash, never silently round-trip to
// the original under a changed byte (which would break digests).

#include <gtest/gtest.h>

#include "collections/tx_id.h"
#include "common/rng.h"
#include "crypto/signer.h"
#include "ledger/transaction.h"
#include "protocols/wire.h"

namespace qanaat {
namespace {

TxId SampleTxId() {
  TxId id;
  id.alpha = {CollectionId{EnterpriseSet{0, 1}}, 3, 42};
  id.extra_alphas.push_back({CollectionId{EnterpriseSet{0, 1}}, 1, 17});
  id.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2}}, 5});
  id.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2, 3}}, 9});
  return id;
}

Transaction SampleTx() {
  Transaction tx;
  tx.client = 7;
  tx.client_ts = 1234;
  tx.collection = CollectionId{EnterpriseSet{0, 2}};
  tx.shards = {1, 3};
  tx.initiator = 2;
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 99, -5, {}});
  tx.ops.push_back(TxOp{TxOp::Kind::kReadDep, 7, 0,
                        CollectionId{EnterpriseSet{0, 1, 2}}});
  KeyStore ks(1);
  tx.client_sig = ks.Sign(7, tx.Digest());
  return tx;
}

TEST(SerdeRobustness, TxIdEveryTruncationDetected) {
  Encoder enc;
  SampleTxId().EncodeTo(&enc);
  const auto& buf = enc.buffer();
  for (size_t len = 0; len < buf.size(); ++len) {
    Decoder dec(buf.data(), len);
    TxId out;
    EXPECT_FALSE(TxId::DecodeFrom(&dec, &out)) << "len=" << len;
  }
  // The full buffer round-trips.
  Decoder dec(buf);
  TxId out;
  ASSERT_TRUE(TxId::DecodeFrom(&dec, &out));
  EXPECT_EQ(out, SampleTxId());
}

TEST(SerdeRobustness, TransactionEveryTruncationDetected) {
  Encoder enc;
  SampleTx().EncodeTo(&enc);
  const auto& buf = enc.buffer();
  for (size_t len = 0; len < buf.size(); ++len) {
    Decoder dec(buf.data(), len);
    Transaction out;
    EXPECT_FALSE(Transaction::DecodeFrom(&dec, &out)) << "len=" << len;
  }
  Decoder dec(buf);
  Transaction out;
  ASSERT_TRUE(Transaction::DecodeFrom(&dec, &out));
  EXPECT_EQ(out.Digest(), SampleTx().Digest());
}

TEST(SerdeRobustness, BitFlipsNeverPreserveTransactionDigest) {
  Transaction tx = SampleTx();
  Encoder enc;
  tx.EncodeBodyTo(&enc);
  auto buf = enc.buffer();
  Sha256Digest original = Sha256::Hash(buf);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = buf;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    EXPECT_NE(Sha256::Hash(mutated), original);
  }
}

TEST(SerdeRobustness, RandomGarbageNeverCrashesDecoders) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.Uniform(200);
    std::vector<uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    {
      Decoder dec(garbage);
      TxId out;
      (void)TxId::DecodeFrom(&dec, &out);  // must not crash / overflow
    }
    {
      Decoder dec(garbage);
      Transaction out;
      (void)Transaction::DecodeFrom(&dec, &out);
    }
    {
      Decoder dec(garbage);
      ThresholdCert out;
      (void)ThresholdCert::DecodeFrom(&dec, &out);
    }
  }
}

TEST(SerdeRobustness, ThresholdCertRejectsAbsurdCounts) {
  // A length field claiming 2^31 shares must not allocate gigabytes.
  Encoder enc;
  enc.PutU32(0x7fffffff);
  Decoder dec(enc.buffer());
  ThresholdCert out;
  EXPECT_FALSE(ThresholdCert::DecodeFrom(&dec, &out));
}

// -------------------------------- protocol message envelope round-trips

BlockPtr SampleBlock() {
  auto b = std::make_shared<Block>();
  b->id.alpha = {CollectionId{EnterpriseSet{0, 1}}, 1, 7};
  b->id.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2}}, 4});
  b->attempt = 2;
  b->txs.push_back(SampleTx());
  b->Seal();
  return b;
}

CommitCertificate SampleCert(const Sha256Digest& d) {
  KeyStore ks(2);
  CommitCertificate cert;
  cert.block_digest = d;
  cert.view = 3;
  cert.slot = 19;
  cert.direct = true;
  for (NodeId n = 0; n < 3; ++n) cert.sigs.push_back(ks.Sign(n, d));
  return cert;
}

/// Every supported message type with representative content.
std::vector<MessageRef> SampleMessages() {
  KeyStore ks(4);
  BlockPtr blk = SampleBlock();
  Sha256Digest d = blk->Digest();
  std::vector<MessageRef> out;

  {
    auto m = std::make_shared<RequestMsg>();
    m->tx = SampleTx();
    m->is_retransmission = true;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<ReplyMsg>();
    m->block_digest = d;
    m->result_digest = Sha256::Hash("result");
    m->clients = {{9, 1}, {10, 7}};
    m->sig = ks.Sign(1, m->result_digest);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<ReplyCertMsg>();
    m->block_digest = d;
    m->result_digest = Sha256::Hash("result");
    m->clients = {{9, 1}};
    m->cert.reply_digest = Sha256::Hash("reply");
    m->cert.sigs.push_back(ks.Sign(2, m->cert.reply_digest));
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PrePrepareMsg>();
    m->view = 1;
    m->slot = 5;
    m->value = ConsensusValue::ForBlock(blk);
    m->value_digest = m->value.Digest();
    m->sig = ks.Sign(0, m->value_digest);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PrepareMsg>();
    m->view = 1;
    m->slot = 5;
    m->value_digest = Sha256::Hash("v");
    m->sig = ks.Sign(1, m->value_digest);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<CommitMsg>();
    m->view = 2;
    m->slot = 6;
    m->value_digest = Sha256::Hash("w");
    m->sig = ks.Sign(2, m->value_digest);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<ViewChangeMsg>();
    m->new_view = 4;
    m->last_delivered = 17;
    PreparedProof p;
    p.slot = 18;
    p.view = 3;
    p.value = ConsensusValue::ForBlock(blk);
    p.value_digest = p.value.Digest();
    m->prepared.push_back(p);
    m->sig = ks.Sign(3, Sha256::Hash("vc"));
    out.push_back(m);
  }
  {
    auto m = std::make_shared<NewViewMsg>();
    m->new_view = 4;
    m->sig = ks.Sign(0, Sha256::Hash("nv"));
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PaxosAcceptMsg>();
    m->ballot = 2;
    m->slot = 9;
    m->value = ConsensusValue::ForBlock(blk);
    m->value_digest = m->value.Digest();
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PaxosAcceptedMsg>();
    m->ballot = 2;
    m->slot = 9;
    m->value_digest = Sha256::Hash("a");
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PaxosLearnMsg>();
    m->ballot = 2;
    m->slot = 9;
    m->value_digest = Sha256::Hash("l");
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PaxosPrepareMsg>();
    m->ballot = 5;
    m->last_delivered = 8;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<PaxosPromiseMsg>();
    m->ballot = 5;
    PaxosAcceptedSlot a;
    a.slot = 9;
    a.ballot = 2;
    a.value = ConsensusValue::ForBlock(blk);
    a.digest = a.value.Digest();
    m->accepted.push_back(a);
    m->stable.slot = 8;
    m->stable.digest = Sha256::Hash("hist");
    m->stable.sigs.push_back(
        ks.Sign(1, CheckpointSignable(8, m->stable.digest)));
    out.push_back(m);
  }
  {
    auto m = std::make_shared<FillRequestMsg>();
    m->from_slot = 3;
    m->to_slot = 11;
    m->want_view = 2;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<FillReplyMsg>();
    m->slot = 3;
    m->view = 1;
    m->value = ConsensusValue::ForBlock(blk);
    m->commit_proof.push_back(ks.Sign(0, Sha256::Hash("c")));
    m->commit_proof.push_back(ks.Sign(1, Sha256::Hash("c")));
    out.push_back(m);
  }
  {
    auto m = std::make_shared<CheckpointMsg>();
    m->slot = 16;
    m->digest = Sha256::Hash("hist16");
    m->sig = ks.Sign(2, CheckpointSignable(16, m->digest));
    m->cert.slot = 8;
    m->cert.digest = Sha256::Hash("hist8");
    m->cert.sigs.push_back(ks.Sign(0, CheckpointSignable(8, m->cert.digest)));
    m->cert.sigs.push_back(ks.Sign(1, CheckpointSignable(8, m->cert.digest)));
    out.push_back(m);
  }
  {
    auto m = std::make_shared<StateRequestMsg>();
    m->heads.push_back(
        StateRequestMsg::ChainHead{CollectionId{EnterpriseSet{0, 1}}, 1, 7});
    m->heads.push_back(
        StateRequestMsg::ChainHead{CollectionId{EnterpriseSet{0}}, 0, 3});
    m->frontier = 12;
    m->requester = 9;  // firewall-brokered executor pull
    out.push_back(m);
  }
  {
    auto m = std::make_shared<StateReplyMsg>();
    m->ckpt.slot = 8;
    m->ckpt.digest = Sha256::Hash("hist8");
    m->ckpt.sigs.push_back(
        ks.Sign(0, CheckpointSignable(8, m->ckpt.digest)));
    StateReplyMsg::Entry e;
    e.block = blk;
    e.cert = SampleCert(d);
    e.alpha = {CollectionId{EnterpriseSet{0, 1}}, 1, 7};
    e.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2}}, 4});
    m->entries.push_back(e);
    m->requester = 9;  // echoed so the filter row can route the reply
    out.push_back(m);
  }
  {
    auto m = std::make_shared<XPrepareMsg>();
    m->coord_cluster = 1;
    m->block = blk;
    m->block_digest = d;
    m->coord_cert = SampleCert(d);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<XPreparedMsg>();
    m->from_cluster = 2;
    m->block_digest = d;
    m->has_assignment = true;
    m->assignment.cluster = 2;
    m->assignment.alpha = {CollectionId{EnterpriseSet{0, 1}}, 1, 7};
    m->assignment.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2}}, 4});
    m->is_cluster_cert = true;
    m->cluster_cert = SampleCert(d);
    m->sig = ks.Sign(5, d);
    m->abort = false;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<XCommitMsg>();
    m->coord_cluster = 1;
    m->block = blk;
    m->block_digest = d;
    m->coord_cert = SampleCert(d);
    m->assignments.push_back(
        ShardAssignment{3, {CollectionId{EnterpriseSet{0, 1}}, 0, 9}, {}});
    m->is_abort = false;
    out.push_back(m);
  }
  {
    auto m = std::make_shared<FProposeMsg>();
    m->initiator_cluster = 0;
    m->block = blk;
    m->block_digest = d;
    m->sig = ks.Sign(0, d);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<FAcceptMsg>();
    m->from_cluster = 3;
    m->block_digest = d;
    m->has_assignment = true;
    m->assignment =
        ShardAssignment{3, {CollectionId{EnterpriseSet{0, 1}}, 1, 7}, {}};
    m->sig = ks.Sign(7, d);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<FCommitMsg>();
    m->from_cluster = 3;
    m->block_digest = d;
    m->sig = ks.Sign(7, d);
    m->fast_path = true;
    m->assignments.push_back(
        ShardAssignment{3, {CollectionId{EnterpriseSet{0, 1}}, 1, 7}, {}});
    out.push_back(m);
  }
  {
    auto m = std::make_shared<QueryMsg>(MsgType::kCommitQuery);
    m->from_cluster = 2;
    m->block_digest = d;
    m->sig = ks.Sign(4, d);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<QueryMsg>(MsgType::kPreparedQuery);
    m->from_cluster = 2;
    m->block_digest = d;
    m->sig = ks.Sign(4, d);
    out.push_back(m);
  }
  {
    auto m = std::make_shared<ExecOrderMsg>();
    m->block = blk;
    m->cert = SampleCert(d);
    m->alpha_here = {CollectionId{EnterpriseSet{0, 1}}, 1, 7};
    m->gamma_here.push_back({CollectionId{EnterpriseSet{0, 1, 2}}, 4});
    out.push_back(m);
  }
  {
    auto m = std::make_shared<ExecReplyMsg>();
    m->block_digest = d;
    m->result_digest = Sha256::Hash("r");
    m->clients = {{9, 1}};
    m->sig = ks.Sign(6, m->result_digest);
    out.push_back(m);
  }
  return out;
}

TEST(MessageSerde, EncodeDecodeIsIdentityForEveryType) {
  // encode ∘ decode ∘ encode must be byte-identical: the decoded message
  // carries exactly the information of the original.
  for (const MessageRef& m : SampleMessages()) {
    Encoder enc1;
    ASSERT_TRUE(EncodeMessage(*m, &enc1))
        << "type " << MsgTypeName(m->type);
    Decoder dec(enc1.buffer());
    MessageRef back = DecodeMessage(&dec);
    ASSERT_NE(back, nullptr) << "type " << MsgTypeName(m->type);
    EXPECT_EQ(back->type, m->type);
    EXPECT_EQ(back->wire_bytes, m->wire_bytes);
    EXPECT_EQ(back->sig_verify_ops, m->sig_verify_ops);
    Encoder enc2;
    ASSERT_TRUE(EncodeMessage(*back, &enc2));
    EXPECT_EQ(enc1.buffer(), enc2.buffer())
        << "re-encode mismatch for " << MsgTypeName(m->type);
  }
}

TEST(MessageSerde, EveryTruncationDetected) {
  for (const MessageRef& m : SampleMessages()) {
    Encoder enc;
    ASSERT_TRUE(EncodeMessage(*m, &enc));
    const auto& buf = enc.buffer();
    for (size_t len = 0; len < buf.size(); ++len) {
      Decoder dec(buf.data(), len);
      EXPECT_EQ(DecodeMessage(&dec), nullptr)
          << MsgTypeName(m->type) << " len=" << len;
    }
  }
}

TEST(MessageSerde, RandomGarbageNeverCrashesEnvelopeDecode) {
  Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng.Uniform(300);
    std::vector<uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    Decoder dec(garbage);
    (void)DecodeMessage(&dec);  // must not crash, hang, or over-allocate
  }
}

TEST(MessageSerde, BitFlippedEnvelopesNeverCrashDecode) {
  // Mutate valid encodings: decode must either fail or produce a
  // well-formed message — never crash. (A flipped block byte fails the
  // digest cross-check; flipped counts fail the remaining-bytes guard.)
  Rng rng(77);
  for (const MessageRef& m : SampleMessages()) {
    Encoder enc;
    ASSERT_TRUE(EncodeMessage(*m, &enc));
    auto buf = enc.buffer();
    for (int trial = 0; trial < 60; ++trial) {
      auto mutated = buf;
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
      Decoder dec(mutated);
      (void)DecodeMessage(&dec);
    }
  }
}

TEST(MessageSerde, CarriedBlockMustMatchClaimedDigest) {
  // A tampered block travelling under an untouched digest is rejected at
  // decode (the envelope re-seals and cross-checks).
  auto m = std::make_shared<FProposeMsg>();
  m->block = SampleBlock();
  m->block_digest = m->block->Digest();
  m->block_digest.bytes[0] ^= 0x1;  // claim a different digest
  Encoder enc;
  ASSERT_TRUE(EncodeMessage(*m, &enc));
  Decoder dec(enc.buffer());
  EXPECT_EQ(DecodeMessage(&dec), nullptr);
}

}  // namespace
}  // namespace qanaat
