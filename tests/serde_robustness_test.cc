// Robustness of the wire decoders: any truncation or bit-flip of a
// serialized structure must be either detected (decode fails) or decode
// into a *different* value — never crash, never silently round-trip to
// the original under a changed byte (which would break digests).

#include <gtest/gtest.h>

#include "collections/tx_id.h"
#include "common/rng.h"
#include "crypto/signer.h"
#include "ledger/transaction.h"

namespace qanaat {
namespace {

TxId SampleTxId() {
  TxId id;
  id.alpha = {CollectionId{EnterpriseSet{0, 1}}, 3, 42};
  id.extra_alphas.push_back({CollectionId{EnterpriseSet{0, 1}}, 1, 17});
  id.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2}}, 5});
  id.gamma.push_back({CollectionId{EnterpriseSet{0, 1, 2, 3}}, 9});
  return id;
}

Transaction SampleTx() {
  Transaction tx;
  tx.client = 7;
  tx.client_ts = 1234;
  tx.collection = CollectionId{EnterpriseSet{0, 2}};
  tx.shards = {1, 3};
  tx.initiator = 2;
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 99, -5, {}});
  tx.ops.push_back(TxOp{TxOp::Kind::kReadDep, 7, 0,
                        CollectionId{EnterpriseSet{0, 1, 2}}});
  KeyStore ks(1);
  tx.client_sig = ks.Sign(7, tx.Digest());
  return tx;
}

TEST(SerdeRobustness, TxIdEveryTruncationDetected) {
  Encoder enc;
  SampleTxId().EncodeTo(&enc);
  const auto& buf = enc.buffer();
  for (size_t len = 0; len < buf.size(); ++len) {
    Decoder dec(buf.data(), len);
    TxId out;
    EXPECT_FALSE(TxId::DecodeFrom(&dec, &out)) << "len=" << len;
  }
  // The full buffer round-trips.
  Decoder dec(buf);
  TxId out;
  ASSERT_TRUE(TxId::DecodeFrom(&dec, &out));
  EXPECT_EQ(out, SampleTxId());
}

TEST(SerdeRobustness, TransactionEveryTruncationDetected) {
  Encoder enc;
  SampleTx().EncodeTo(&enc);
  const auto& buf = enc.buffer();
  for (size_t len = 0; len < buf.size(); ++len) {
    Decoder dec(buf.data(), len);
    Transaction out;
    EXPECT_FALSE(Transaction::DecodeFrom(&dec, &out)) << "len=" << len;
  }
  Decoder dec(buf);
  Transaction out;
  ASSERT_TRUE(Transaction::DecodeFrom(&dec, &out));
  EXPECT_EQ(out.Digest(), SampleTx().Digest());
}

TEST(SerdeRobustness, BitFlipsNeverPreserveTransactionDigest) {
  Transaction tx = SampleTx();
  Encoder enc;
  tx.EncodeBodyTo(&enc);
  auto buf = enc.buffer();
  Sha256Digest original = Sha256::Hash(buf);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    auto mutated = buf;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(255));
    EXPECT_NE(Sha256::Hash(mutated), original);
  }
}

TEST(SerdeRobustness, RandomGarbageNeverCrashesDecoders) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.Uniform(200);
    std::vector<uint8_t> garbage(len);
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    {
      Decoder dec(garbage);
      TxId out;
      (void)TxId::DecodeFrom(&dec, &out);  // must not crash / overflow
    }
    {
      Decoder dec(garbage);
      Transaction out;
      (void)Transaction::DecodeFrom(&dec, &out);
    }
    {
      Decoder dec(garbage);
      ThresholdCert out;
      (void)ThresholdCert::DecodeFrom(&dec, &out);
    }
  }
}

TEST(SerdeRobustness, ThresholdCertRejectsAbsurdCounts) {
  // A length field claiming 2^31 shares must not allocate gigabytes.
  Encoder enc;
  enc.PutU32(0x7fffffff);
  Decoder dec(enc.buffer());
  ThresholdCert out;
  EXPECT_FALSE(ThresholdCert::DecodeFrom(&dec, &out));
}

}  // namespace
}  // namespace qanaat
