#include <gtest/gtest.h>

#include "qanaat/system.h"

namespace qanaat {
namespace {

QanaatSystem::Options BaseOpts(ProtocolFamily fam, FailureModel fm,
                               int ents = 2, int shards = 2) {
  QanaatSystem::Options o;
  o.params.num_enterprises = ents;
  o.params.shards_per_enterprise = shards;
  o.params.failure_model = fm;
  o.params.family = fam;
  o.seed = 99;
  return o;
}

/// Scripted single-transaction client for protocol-level assertions.
class ScriptClient : public Actor {
 public:
  ScriptClient(Env* env, const Directory* dir)
      : Actor(env, "script-client"), dir_(dir) {}

  uint64_t Submit(CollectionId coll, std::vector<ShardId> shards,
                  std::vector<TxOp> ops, int target_cluster) {
    Transaction tx;
    tx.client = id();
    tx.client_ts = ++ts_;
    tx.collection = coll;
    tx.shards = std::move(shards);
    tx.initiator = dir_->Cluster(target_cluster).enterprise;
    tx.ops = std::move(ops);
    tx.client_sig = env()->keystore.Sign(id(), tx.Digest());
    auto req = std::make_shared<RequestMsg>();
    req->tx = tx;
    Send(dir_->Cluster(target_cluster).InitialPrimary(), req);
    return ts_;
  }

  void OnMessage(NodeId /*from*/, const MessageRef& msg) override {
    if (msg->type == MsgType::kReply) {
      for (const auto& [c, ts] : msg->As<ReplyMsg>()->clients) {
        if (c == id()) settled_.insert(ts);
      }
    } else if (msg->type == MsgType::kReplyCert) {
      for (const auto& [c, ts] : msg->As<ReplyCertMsg>()->clients) {
        if (c == id()) settled_.insert(ts);
      }
    }
  }

  bool Settled(uint64_t ts) const { return settled_.count(ts) > 0; }

 private:
  const Directory* dir_;
  uint64_t ts_ = 0;
  std::set<uint64_t> settled_;
};

// ----------------------------------------------- γ capture at ordering

TEST(OrderingTest, GammaCapturesOrderDependentState) {
  // Commit traffic on the shared collection, then a local transaction;
  // the local block's γ must reference the shared collection's state.
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kFlattened,
                                   FailureModel::kCrash, 2, 1));
  ScriptClient client(&sys.env(), &sys.directory());
  CollectionId root{EnterpriseSet::All(2)};
  CollectionId d_a{EnterpriseSet::Single(0)};

  client.Submit(root, {0}, {TxOp{TxOp::Kind::kWrite, 1, 7, {}}}, 0);
  sys.env().sim.Run(100 * kMillisecond);
  client.Submit(d_a, {0}, {TxOp{TxOp::Kind::kAdd, 2, 1, {}}}, 0);
  sys.env().sim.Run(300 * kMillisecond);

  const DagLedger& lg = sys.ordering_node(0, 0)->exec_core().ledger();
  ShardRef local_ref{d_a, 0};
  ASSERT_EQ(lg.ChainOf(local_ref).size(), 1u);
  const auto& entry = lg.entry(lg.ChainOf(local_ref)[0]);
  // γ includes root at sequence 1 (the committed shared block).
  bool found = false;
  for (const auto& g : entry.gamma) {
    if (g.collection == root) {
      EXPECT_EQ(g.m, 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "local block must capture root state in γ";
}

TEST(OrderingTest, WriteRuleRejectsUninvolvedEnterprise) {
  // A transaction targeting d_B submitted to enterprise A's cluster is
  // rejected by the write rule (§3.2).
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kFlattened,
                                   FailureModel::kCrash, 2, 1));
  ScriptClient client(&sys.env(), &sys.directory());
  CollectionId d_b{EnterpriseSet::Single(1)};
  uint64_t ts =
      client.Submit(d_b, {0}, {TxOp{TxOp::Kind::kWrite, 1, 1, {}}}, 0);
  sys.env().sim.Run(500 * kMillisecond);
  EXPECT_FALSE(client.Settled(ts));
  EXPECT_GE(sys.env().metrics.Get("order.rejected_write_rule"), 1u);
}

TEST(OrderingTest, DuplicateRequestsCommitOnce) {
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kFlattened,
                                   FailureModel::kCrash, 2, 1));
  ScriptClient client(&sys.env(), &sys.directory());
  CollectionId d_a{EnterpriseSet::Single(0)};
  // Submit, then replay the identical request (same client timestamp).
  Transaction tx;
  tx.client = client.id();
  tx.client_ts = 42;
  tx.collection = d_a;
  tx.shards = {0};
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 5, 100, {}});
  tx.client_sig = sys.env().keystore.Sign(client.id(), tx.Digest());
  auto req = std::make_shared<RequestMsg>();
  req->tx = tx;
  NodeId primary = sys.directory().Cluster(0).InitialPrimary();
  sys.net().Send(client.id(), primary, req);
  sys.net().Send(client.id(), primary, req);
  sys.env().sim.Run(500 * kMillisecond);
  EXPECT_GE(sys.env().metrics.Get("order.duplicate_request"), 1u);
  const auto& core = sys.ordering_node(0, 0)->exec_core();
  auto v = core.StoreOf(d_a).Get(5);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 100);  // applied exactly once
}

TEST(OrderingTest, IntakeDedupExpiresForAbandonedProposal) {
  // ROADMAP gap: the primary's intake dedup (seen_requests_) used to be
  // permanent, so a transaction stranded in that node's abandoned
  // proposal was unrecoverable until another node became primary. With
  // the expiry scheme, a client retransmission after the dedup window is
  // admitted afresh by the same primary.
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kFlattened,
                                   FailureModel::kCrash, 2, 1));
  ScriptClient client(&sys.env(), &sys.directory());
  CollectionId d_a{EnterpriseSet::Single(0)};
  const ClusterConfig& cc = sys.directory().Cluster(0);
  NodeId primary = cc.InitialPrimary();
  // Isolate the primary from its cluster peers: its proposal is lost and
  // never commits, but it still receives client traffic and stays leader
  // (no relays, so nobody suspects it).
  Network::LinkFault lost;
  lost.drop = 1.0;
  for (NodeId peer : cc.ordering) {
    if (peer != primary) sys.net().SetLinkFaultBetween(primary, peer, lost);
  }

  Transaction tx;
  tx.client = client.id();
  tx.client_ts = 7;
  tx.collection = d_a;
  tx.shards = {0};
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 9, 50, {}});
  tx.client_sig = sys.env().keystore.Sign(client.id(), tx.Digest());
  auto req = std::make_shared<RequestMsg>();
  req->tx = tx;

  sys.net().Send(client.id(), primary, req);
  // A retransmission inside the window is still deduplicated.
  sys.env().sim.Run(100 * kMillisecond);
  sys.net().Send(client.id(), primary, req);
  sys.env().sim.Run(200 * kMillisecond);
  EXPECT_EQ(sys.env().metrics.Get("order.duplicate_request"), 1u);
  // Past the window (2 x cross_timeout = 800ms) the entry expires and
  // the retransmission is admitted again instead of being blacklisted.
  sys.env().sim.Run(1200 * kMillisecond);
  sys.net().Send(client.id(), primary, req);
  sys.env().sim.Run(1500 * kMillisecond);
  EXPECT_EQ(sys.env().metrics.Get("order.duplicate_request"), 1u)
      << "expired intake entry must not flag the retransmission";
}

// ------------------------------------- cross-shard ID concatenation

TEST(CrossShardTest, EachClusterAppendsUnderOwnAlpha) {
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kCoordinator,
                                   FailureModel::kByzantine, 2, 2));
  // A cross-shard intra-enterprise transaction on enterprise A.
  ScriptClient client(&sys.env(), &sys.directory());
  CollectionId d_a{EnterpriseSet::Single(0)};
  uint64_t ts = client.Submit(d_a, {0, 1},
                              {TxOp{TxOp::Kind::kAdd, 0, 10, {}},
                               TxOp{TxOp::Kind::kAdd, 1, -10, {}}},
                              sys.directory().ClusterIdOf(0, 0));
  sys.env().sim.Run(kSecond);
  EXPECT_TRUE(client.Settled(ts));
  const auto& l0 = sys.ordering_node(0, 0)->exec_core().ledger();
  const auto& l1 = sys.ordering_node(1, 0)->exec_core().ledger();
  EXPECT_EQ(l0.HeadOf({d_a, 0}), 1u);
  EXPECT_EQ(l1.HeadOf({d_a, 1}), 1u);
  // Same block digest on both chains (the ID concatenation lives in the
  // ledger entries, not in the block bytes).
  ASSERT_EQ(l0.ChainOf({d_a, 0}).size(), 1u);
  ASSERT_EQ(l1.ChainOf({d_a, 1}).size(), 1u);
  EXPECT_EQ(l0.entry(l0.ChainOf({d_a, 0})[0]).block->Digest(),
            l1.entry(l1.ChainOf({d_a, 1})[0]).block->Digest());
  // Each cluster applied only its shard's ops (keys shard by key % 2).
  EXPECT_TRUE(
      sys.ordering_node(0, 0)->exec_core().StoreOf(d_a).Get(0).ok());
  EXPECT_FALSE(
      sys.ordering_node(0, 0)->exec_core().StoreOf(d_a).Get(1).ok());
  EXPECT_TRUE(
      sys.ordering_node(1, 0)->exec_core().StoreOf(d_a).Get(1).ok());
}

TEST(CrossShardTest, ConflictingBlocksSerialized) {
  // Two concurrent cross-shard transactions intersecting in both shards
  // must serialize (§4.3.2's reservation rule), not deadlock.
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kCoordinator,
                                   FailureModel::kByzantine, 2, 2));
  ScriptClient client(&sys.env(), &sys.directory());
  CollectionId d_a{EnterpriseSet::Single(0)};
  int coord = sys.directory().ClusterIdOf(0, 0);
  // Small batch timeout ensures two separate blocks.
  uint64_t t1 = client.Submit(d_a, {0, 1},
                              {TxOp{TxOp::Kind::kAdd, 0, 1, {}},
                               TxOp{TxOp::Kind::kAdd, 1, 1, {}}},
                              coord);
  sys.env().sim.Run(15 * kMillisecond);  // first block forms (batch window)
  uint64_t t2 = client.Submit(d_a, {0, 1},
                              {TxOp{TxOp::Kind::kAdd, 0, 2, {}},
                               TxOp{TxOp::Kind::kAdd, 1, 2, {}}},
                              coord);
  sys.env().sim.Run(2 * kSecond);
  EXPECT_TRUE(client.Settled(t1));
  EXPECT_TRUE(client.Settled(t2));
  const auto& lg = sys.ordering_node(0, 0)->exec_core().ledger();
  EXPECT_EQ(lg.HeadOf({d_a, 0}), 2u);
}

// ------------------------------------------------- client retransmission

TEST(FailureHandlingTest, ClientRetransmitsToAllNodes) {
  auto sys = QanaatSystem(BaseOpts(ProtocolFamily::kFlattened,
                                   FailureModel::kByzantine, 2, 1));
  WorkloadParams wl;
  wl.cross_fraction = 0.0;
  ClientMachine* c = sys.AddClient(wl, 200);
  c->SetRetransmitTimeout(400 * kMillisecond);
  c->Start(0, kSecond, 0, kSecond);
  // Crash the primary of cluster 0 immediately: requests to it vanish;
  // retransmissions reach the backups, which forward to the new primary
  // after the view change.
  sys.ordering_node(0, 0)->Crash();
  sys.env().sim.Run(6 * kSecond);
  EXPECT_GT(sys.env().metrics.Get("client.retransmit"), 0u);
  // A sizable share of transactions still commits (those targeting the
  // healthy cluster immediately; the crashed cluster's after view
  // change + retransmit).
  EXPECT_GT(c->accepted(), c->issued() / 2);
}

// ------------------------------------------------------ geo distribution

TEST(GeoTest, WanLatencyDominatesCommitLatency) {
  QanaatSystem::Options opts =
      BaseOpts(ProtocolFamily::kFlattened, FailureModel::kCrash, 2, 2);
  opts.cluster_regions = {0, 0, 1, 1};  // enterprise B across the WAN
  auto sys = QanaatSystem(std::move(opts));
  sys.net().SetRtt(0, 1, 100000);  // 100 ms
  WorkloadParams wl;
  wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  wl.cross_fraction = 1.0;
  ClientMachine* c = sys.AddClient(wl, 100);
  c->Start(0, kSecond, 0, kSecond);
  sys.env().sim.Run(4 * kSecond);
  ASSERT_GT(c->accepted(), 0u);
  // Cross-enterprise commits need >= 1 WAN round trip on top of the
  // ~10ms cross-batch window.
  EXPECT_GT(c->latencies().Mean(), 60000.0);
}

// --------------------------------------------------------- determinism

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  auto run = [](uint64_t seed) {
    QanaatSystem::Options o =
        BaseOpts(ProtocolFamily::kFlattened, FailureModel::kByzantine);
    o.seed = seed;
    QanaatSystem sys(std::move(o));
    WorkloadParams wl;
    wl.cross_fraction = 0.3;
    ClientMachine* c = sys.AddClient(wl, 500);
    c->Start(0, kSecond, 0, kSecond);
    sys.env().sim.Run(2 * kSecond);
    return std::make_pair(c->accepted(),
                          (uint64_t)c->latencies().Percentile(0.5));
  };
  auto a = run(1234);
  auto b = run(1234);
  auto c = run(4321);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a != c || true);  // different seed may legitimately differ
}

}  // namespace
}  // namespace qanaat
