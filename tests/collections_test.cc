#include <gtest/gtest.h>

#include "collections/data_model.h"
#include "collections/tx_id.h"

namespace qanaat {
namespace {

CollectionId Coll(std::initializer_list<EnterpriseId> ids) {
  return CollectionId(EnterpriseSet(ids));
}

// ----------------------------------------------------------- CollectionId

TEST(CollectionIdTest, LocalAndRoot) {
  EXPECT_TRUE(Coll({2}).IsLocal());
  EXPECT_FALSE(Coll({1, 2}).IsLocal());
  EXPECT_TRUE(Coll({0, 1, 2, 3}).IsRootOf(4));
  EXPECT_FALSE(Coll({0, 1, 2}).IsRootOf(4));
}

TEST(CollectionIdTest, OrderDependencyIsSubsetRelation) {
  // d_AB is order-dependent on d_ABC and d_ABCD, not vice versa (§3.2).
  auto ab = Coll({0, 1});
  auto abc = Coll({0, 1, 2});
  auto abcd = Coll({0, 1, 2, 3});
  auto cd = Coll({2, 3});
  EXPECT_TRUE(ab.OrderDependentOn(abc));
  EXPECT_TRUE(ab.OrderDependentOn(abcd));
  EXPECT_TRUE(abc.OrderDependentOn(abcd));
  EXPECT_FALSE(abc.OrderDependentOn(ab));
  EXPECT_FALSE(cd.OrderDependentOn(ab));
}

TEST(CollectionIdTest, ReadRuleMatchesPaperExamples) {
  // §3.5 rule 2: d_AB reads d_ABC: allowed; d_ABC reads d_AB: denied.
  EXPECT_TRUE(Coll({0, 1}).CanRead(Coll({0, 1, 2})));
  EXPECT_FALSE(Coll({0, 1, 2}).CanRead(Coll({0, 1})));
  // A collection can always read itself.
  EXPECT_TRUE(Coll({0, 1}).CanRead(Coll({0, 1})));
}

TEST(CollectionIdTest, VerifyRuleIsStrictSuperset) {
  // §3.2: d_AB may *verify* (privacy-preserving) records of d_A.
  EXPECT_TRUE(Coll({0, 1}).CanVerify(Coll({0})));
  EXPECT_FALSE(Coll({0}).CanVerify(Coll({0, 1})));
  EXPECT_FALSE(Coll({0, 1}).CanVerify(Coll({0, 1})));
}

TEST(CollectionIdTest, LabelNotation) {
  EXPECT_EQ(Coll({0, 2, 3}).Label(), "d_ACD");
  EXPECT_EQ((ShardRef{Coll({1}), 3}).Label(), "d_B/3");
}

TEST(CollectionIdTest, SerializationRoundTrip) {
  Encoder enc;
  Coll({0, 3}).EncodeTo(&enc);
  Decoder dec(enc.buffer());
  CollectionId out;
  ASSERT_TRUE(CollectionId::DecodeFrom(&dec, &out));
  EXPECT_EQ(out, Coll({0, 3}));
}

// ------------------------------------------------------------------ TxId

TxId MakeId(CollectionId c, ShardId shard, SeqNo n,
            std::vector<GammaEntry> gamma = {}) {
  TxId id;
  id.alpha = {c, shard, n};
  id.gamma = std::move(gamma);
  return id;
}

TEST(TxIdTest, ToStringMatchesPaperNotation) {
  // ⟨[ABCD:1], 0⟩ and ⟨[BC:1], [ABC:1, BCD:1]⟩ from Fig 3.
  auto t1 = MakeId(Coll({0, 1, 2, 3}), 0, 1);
  EXPECT_EQ(t1.ToString(), "<[ABCD:1], 0>");
  auto t2 = MakeId(Coll({1, 2}), 0, 1,
                   {{Coll({0, 1, 2}), 1}, {Coll({1, 2, 3}), 1}});
  EXPECT_EQ(t2.ToString(), "<[BC:1], [ABC:1, BCD:1]>");
}

TEST(TxIdTest, GammaLookup) {
  auto t = MakeId(Coll({1, 2}), 0, 1,
                  {{Coll({0, 1, 2}), 5}, {Coll({1, 2, 3}), 7}});
  EXPECT_EQ(t.GammaFor(Coll({0, 1, 2})).value(), 5u);
  EXPECT_EQ(t.GammaFor(Coll({1, 2, 3})).value(), 7u);
  EXPECT_FALSE(t.GammaFor(Coll({0, 1, 2, 3})).has_value());
}

TEST(TxIdTest, LocalConsistencyHolds) {
  auto a = MakeId(Coll({0}), 0, 1);
  auto b = MakeId(Coll({0}), 0, 2);
  EXPECT_TRUE(CheckLocalConsistency(a, b).ok());
  // n must strictly increase.
  EXPECT_EQ(CheckLocalConsistency(b, a).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(CheckLocalConsistency(a, a).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TxIdTest, LocalConsistencyRequiresSameChain) {
  auto a = MakeId(Coll({0}), 0, 1);
  auto b = MakeId(Coll({1}), 0, 2);
  EXPECT_EQ(CheckLocalConsistency(a, b).code(),
            StatusCode::kInvalidArgument);
  auto c = MakeId(Coll({0}), 1, 2);  // different shard
  EXPECT_EQ(CheckLocalConsistency(a, c).code(),
            StatusCode::kInvalidArgument);
}

TEST(TxIdTest, GlobalConsistencyMonotoneGamma) {
  // §3.3: ∀ d_Y ∈ γ∩γ': m <= m'.
  auto root = Coll({0, 1, 2, 3});
  auto a = MakeId(Coll({0, 1}), 0, 1, {{root, 3}});
  auto b = MakeId(Coll({0, 1}), 0, 2, {{root, 3}});
  auto c = MakeId(Coll({0, 1}), 0, 3, {{root, 5}});
  auto bad = MakeId(Coll({0, 1}), 0, 4, {{root, 4}});
  EXPECT_TRUE(CheckGlobalConsistency(a, b).ok());
  EXPECT_TRUE(CheckGlobalConsistency(b, c).ok());
  EXPECT_FALSE(CheckGlobalConsistency(c, bad).ok());
}

TEST(TxIdTest, GlobalConsistencyIgnoresDisjointGamma) {
  // Entries outside γ∩γ' impose no constraint.
  auto a = MakeId(Coll({0, 1}), 0, 1, {{Coll({0, 1, 2}), 9}});
  auto b = MakeId(Coll({0, 1}), 0, 2, {{Coll({0, 1, 3}), 1}});
  EXPECT_TRUE(CheckGlobalConsistency(a, b).ok());
}

TEST(TxIdTest, SerializationRoundTrip) {
  auto t = MakeId(Coll({1, 2}), 3, 42,
                  {{Coll({0, 1, 2}), 5}, {Coll({1, 2, 3}), 7}});
  t.extra_alphas.push_back({Coll({1, 2}), 1, 17});
  Encoder enc;
  t.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  TxId out;
  ASSERT_TRUE(TxId::DecodeFrom(&dec, &out));
  EXPECT_EQ(out, t);
}

// -------------------------------------------------------------- DataModel

TEST(DataModelTest, WorkflowCreatesRootAndLocals) {
  DataModel m(4);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet::All(4)).ok());
  EXPECT_TRUE(m.HasCollection(Coll({0, 1, 2, 3})));
  for (EnterpriseId e = 0; e < 4; ++e) {
    EXPECT_TRUE(m.HasCollection(Coll({e})));
  }
  // Intermediates are optional and absent by default (§3.2).
  EXPECT_FALSE(m.HasCollection(Coll({0, 1})));
}

TEST(DataModelTest, WorkflowValidation) {
  DataModel m(4);
  EXPECT_FALSE(m.AddWorkflow(EnterpriseSet{0}).ok());
  EXPECT_FALSE(m.AddWorkflow(EnterpriseSet{0, 5}).ok());
}

TEST(DataModelTest, IntermediateMustBeInsideAWorkflow) {
  DataModel m(6);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet{0, 1, 2, 3}).ok());
  EXPECT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1}).ok());
  // {0, 4} spans no registered workflow.
  EXPECT_EQ(m.AddIntermediateCollection(EnterpriseSet{0, 4}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(DataModelTest, MultiWorkflowSharesCollections) {
  // Fig 2(c): workflows KLM and LMN share d_L, d_M and d_LM.
  DataModel m(4);  // K=0, L=1, M=2, N=3
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet{0, 1, 2}).ok());
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet{1, 2, 3}).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{1, 2}).ok());
  auto before = m.Collections().size();
  // Re-registering the shared intermediate (second workflow) reuses it.
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{1, 2}).ok());
  EXPECT_EQ(m.Collections().size(), before);
  // L maintains: d_L, d_LM, both roots.
  auto maintained = m.MaintainedBy(1);
  EXPECT_EQ(maintained.size(), 4u);
}

TEST(DataModelTest, OrderDependenciesOf) {
  DataModel m(4);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet::All(4)).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1}).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1, 2}).ok());
  auto deps = m.OrderDependenciesOf(Coll({0, 1}));
  // d_AB depends on d_ABC and the root (both exist), not on itself.
  EXPECT_EQ(deps.size(), 2u);
  auto deps_local = m.OrderDependenciesOf(Coll({0}));
  // d_A depends on d_AB, d_ABC, root.
  EXPECT_EQ(deps_local.size(), 3u);
}

TEST(DataModelTest, WriteRule) {
  DataModel m(4);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet::All(4)).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1}).ok());
  EXPECT_TRUE(m.ValidateWrite(Coll({0, 1}), 0).ok());
  EXPECT_TRUE(m.ValidateWrite(Coll({0, 1}), 1).ok());
  // Enterprise C is not involved in d_AB.
  EXPECT_EQ(m.ValidateWrite(Coll({0, 1}), 2).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(m.ValidateWrite(Coll({0, 2}), 0).code(), StatusCode::kNotFound);
}

TEST(DataModelTest, ReadRule) {
  DataModel m(4);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet::All(4)).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1}).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1, 2}).ok());
  EXPECT_TRUE(m.ValidateRead(Coll({0, 1}), Coll({0, 1, 2})).ok());
  EXPECT_EQ(m.ValidateRead(Coll({0, 1, 2}), Coll({0, 1})).code(),
            StatusCode::kPermissionDenied);
}

TEST(DataModelTest, AccessRule) {
  DataModel m(4);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet::All(4)).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 2}).ok());
  EXPECT_TRUE(m.CanAccess(0, Coll({0, 2})));
  EXPECT_TRUE(m.CanAccess(2, Coll({0, 2})));
  EXPECT_FALSE(m.CanAccess(1, Coll({0, 2})));
}

TEST(DataModelTest, ShardingSchema) {
  DataModel m(4);
  m.set_default_shard_count(4);
  ASSERT_TRUE(m.AddWorkflow(EnterpriseSet::All(4)).ok());
  ASSERT_TRUE(m.AddIntermediateCollection(EnterpriseSet{0, 1}, 2).ok());
  EXPECT_EQ(m.ShardCountOf(Coll({0})), 4);
  // Per-collection schema agreed at creation (§3.6).
  EXPECT_EQ(m.ShardCountOf(Coll({0, 1})), 2);
}

}  // namespace
}  // namespace qanaat
