#include <gtest/gtest.h>

#include "qanaat/system.h"
#include "workload/smallbank.h"

namespace qanaat {
namespace {

struct WorkloadFixture {
  explicit WorkloadFixture(WorkloadParams p, int ents = 4, int shards = 4) {
    QanaatSystem::Options o;
    o.params.num_enterprises = ents;
    o.params.shards_per_enterprise = shards;
    sys = std::make_unique<QanaatSystem>(std::move(o));
    wl = std::make_unique<SmallBankWorkload>(&sys->model(),
                                             &sys->directory(), p, Rng(77));
  }
  std::unique_ptr<QanaatSystem> sys;
  std::unique_ptr<SmallBankWorkload> wl;
};

TEST(SmallBankTest, InternalTxsTargetLocalCollections) {
  WorkloadParams p;
  p.cross_fraction = 0.0;
  p.dep_read_fraction = 0.0;
  WorkloadFixture f(p);
  for (int i = 0; i < 500; ++i) {
    Transaction tx = f.wl->Next(1, i + 1);
    EXPECT_TRUE(tx.collection.IsLocal());
    EXPECT_EQ(tx.shards.size(), 1u);
    ASSERT_EQ(tx.ops.size(), 2u);
    // sendPayment is zero-sum.
    EXPECT_EQ(tx.ops[0].value + tx.ops[1].value, 0);
  }
}

TEST(SmallBankTest, CrossFractionRespected) {
  WorkloadParams p;
  p.cross_fraction = 0.5;
  p.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  WorkloadFixture f(p);
  int cross = 0;
  const int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    cross += f.wl->Next(1, i + 1).IsCrossEnterprise();
  }
  EXPECT_NEAR(cross, kN / 2, kN / 10);
}

TEST(SmallBankTest, CrossShardTxsSpanTwoShards) {
  WorkloadParams p;
  p.cross_fraction = 1.0;
  p.cross_kind = CrossKind::kCrossShardIntraEnterprise;
  WorkloadFixture f(p);
  for (int i = 0; i < 300; ++i) {
    Transaction tx = f.wl->Next(1, i + 1);
    EXPECT_TRUE(tx.collection.IsLocal());
    ASSERT_EQ(tx.shards.size(), 2u);
    EXPECT_LT(tx.shards[0], tx.shards[1]);
    // Every op's key lands on one of the declared shards.
    int sc = f.sys->model().ShardCountOf(tx.collection);
    for (const auto& op : tx.ops) {
      ShardId key_shard = static_cast<ShardId>(op.key % sc);
      EXPECT_TRUE(key_shard == tx.shards[0] || key_shard == tx.shards[1]);
    }
  }
}

TEST(SmallBankTest, CrossShardCrossEnterpriseTargetsSharedCollections) {
  WorkloadParams p;
  p.cross_fraction = 1.0;
  p.cross_kind = CrossKind::kCrossShardCrossEnterprise;
  WorkloadFixture f(p);
  for (int i = 0; i < 300; ++i) {
    Transaction tx = f.wl->Next(1, i + 1);
    EXPECT_GT(tx.collection.members.size(), 1);
    EXPECT_EQ(tx.shards.size(), 2u);
  }
}

TEST(SmallBankTest, TargetClusterMatchesDesignatedCoordinator) {
  WorkloadParams p;
  p.cross_fraction = 1.0;
  p.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  WorkloadFixture f(p);
  for (int i = 0; i < 200; ++i) {
    Transaction tx = f.wl->Next(1, i + 1);
    int target = f.wl->TargetCluster(tx);
    const ClusterConfig& cc = f.sys->directory().Cluster(target);
    // The designated coordinator is an involved enterprise handling an
    // involved shard.
    EXPECT_TRUE(tx.collection.members.Contains(cc.enterprise));
    EXPECT_EQ(cc.shard, tx.shards.front());
  }
}

TEST(SmallBankTest, DepReadsOnlyTargetOrderDependentCollections) {
  WorkloadParams p;
  p.cross_fraction = 0.0;
  p.dep_read_fraction = 1.0;
  WorkloadFixture f(p);
  for (int i = 0; i < 300; ++i) {
    Transaction tx = f.wl->Next(1, i + 1);
    for (const auto& op : tx.ops) {
      if (op.kind != TxOp::Kind::kReadDep) continue;
      EXPECT_TRUE(tx.collection.CanRead(op.dep))
          << tx.collection.Label() << " -> " << op.dep.Label();
    }
  }
}

TEST(SmallBankTest, ZipfSkewsKeyChoice) {
  WorkloadParams p;
  p.cross_fraction = 0.0;
  p.zipf_s = 2.0;
  p.accounts_per_shard = 1000;
  WorkloadFixture f(p);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 2000; ++i) {
    Transaction tx = f.wl->Next(1, i + 1);
    counts[tx.ops[0].key / 4]++;  // rank = key / shard_count
  }
  // Rank-0 accounts dominate under s=2.
  EXPECT_GT(counts[0], 800);
}

// ------------------------------------- optimistic coordinator mode

TEST(OptimisticModeTest, ConflictingCoordinatorsResolveByAbortRetry) {
  // Without designated coordinators, two enterprises may concurrently
  // order blocks with the same α on the same shared-collection shard;
  // validators nack the loser, which aborts and retries (§4.3.5).
  QanaatSystem::Options o;
  o.params.num_enterprises = 2;
  o.params.shards_per_enterprise = 1;
  o.params.failure_model = FailureModel::kByzantine;
  o.params.family = ProtocolFamily::kCoordinator;
  o.params.designated_coordinator = false;
  o.seed = 31;
  QanaatSystem sys(std::move(o));

  struct RawClient : Actor {
    explicit RawClient(Env* env) : Actor(env, "raw") {}
    void OnMessage(NodeId, const MessageRef& msg) override {
      if (msg->type == MsgType::kReply) {
        for (const auto& [c, ts] : msg->As<ReplyMsg>()->clients) {
          if (c == id()) settled.insert(ts);
        }
      }
    }
    std::set<uint64_t> settled;
  };
  RawClient client(&sys.env());
  CollectionId d_ab{EnterpriseSet{0, 1}};

  auto submit_to = [&](EnterpriseId e, uint64_t ts) {
    Transaction tx;
    tx.client = client.id();
    tx.client_ts = ts;
    tx.collection = d_ab;
    tx.shards = {0};
    tx.initiator = e;
    tx.ops.push_back(TxOp{TxOp::Kind::kAdd, ts, 1, {}});
    tx.client_sig = sys.env().keystore.Sign(client.id(), tx.Digest());
    auto req = std::make_shared<RequestMsg>();
    req->tx = tx;
    sys.net().Send(client.id(),
                   sys.directory().Cluster(e, 0).InitialPrimary(), req);
  };
  // Both enterprises initiate on the same shared shard concurrently.
  submit_to(0, 1);
  submit_to(1, 2);
  sys.env().sim.Run(10 * kSecond);

  // Both transactions eventually commit (one directly, one possibly
  // after an abort/retry round), and the replicas agree.
  EXPECT_EQ(client.settled.size(), 2u);
  const auto& la = sys.ordering_node(0, 0)->exec_core().ledger();
  const auto& lb = sys.ordering_node(1, 0)->exec_core().ledger();
  EXPECT_EQ(la.HeadOf({d_ab, 0}), 2u);
  EXPECT_EQ(lb.HeadOf({d_ab, 0}), 2u);
  EXPECT_TRUE(sys.VerifyAllLedgers().ok());
}

}  // namespace
}  // namespace qanaat
