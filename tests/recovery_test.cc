// Targeted checkpoint + state-transfer tests: the recovery subsystem's
// contract, piece by piece — certified checkpoints garbage-collect only
// once stable, tampered certificates are rejected, recovered replicas
// converge to byte-identical state on every stack, state transfer is
// served by non-primary peers, and Fabric peers catch up across lossy
// block delivery. The random chaos corpus (chaos_test.cc) exercises the
// same machinery under arbitrary schedules; these tests pin down each
// mechanism in isolation.

#include <gtest/gtest.h>

#include "consensus/paxos.h"
#include "consensus/pbft.h"
#include "harness/chaos.h"
#include "sim/faults.h"

namespace qanaat {
namespace {

// ----------------------------------------------------- engine-level GC

/// Minimal engine host (consensus_test.cc pattern) with a checkpoint
/// interval and an optional checkpoint-vote filter, so a test can starve
/// one replica of the quorum that would make its checkpoint stable.
class CkptHost : public Actor {
 public:
  CkptHost(Env* env, int index) : Actor(env, "ckpt-host"), index_(index) {}

  void Init(const std::vector<NodeId>& cluster, bool byzantine_engine,
            int f, size_t checkpoint_interval) {
    EngineContext ctx;
    ctx.env = env();
    ctx.self = id();
    ctx.cluster = cluster;
    ctx.self_index = index_;
    ctx.checkpoint_interval = checkpoint_interval;
    ctx.send = [this](NodeId to, MessageRef m) { Send(to, std::move(m)); };
    ctx.broadcast = [this, cluster](MessageRef m) {
      for (NodeId p : cluster) {
        if (p != id()) Send(p, m);
      }
    };
    ctx.start_timer = [this](SimTime d, uint64_t tag, uint64_t payload) {
      StartTimer(d, tag, payload);
    };
    ctx.deliver = [this](uint64_t slot, const ConsensusValue& v) {
      delivered.emplace_back(slot, v.block_digest);
    };
    if (byzantine_engine) {
      engine = std::make_unique<PbftEngine>(std::move(ctx), f, 20000);
    } else {
      engine = std::make_unique<PaxosEngine>(std::move(ctx), f, 20000);
    }
  }

  void OnMessage(NodeId from, const MessageRef& msg) override {
    if (drop_checkpoint_votes && msg->type == MsgType::kCheckpoint) return;
    engine->OnMessage(from, msg);
  }
  void OnTimer(uint64_t tag, uint64_t payload) override {
    engine->OnTimer(tag, payload);
  }

  std::unique_ptr<InternalConsensus> engine;
  std::vector<std::pair<uint64_t, Sha256Digest>> delivered;
  bool drop_checkpoint_votes = false;

 private:
  int index_;
};

struct CkptFixture {
  CkptFixture(bool byz, int n, int f, size_t interval) : env(11), net(&env) {
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<CkptHost>(&env, i));
    }
    std::vector<NodeId> ids;
    for (auto& h : hosts) ids.push_back(h->id());
    for (auto& h : hosts) h->Init(ids, byz, f, interval);
  }

  ConsensusValue MakeValue(uint64_t tag) {
    ConsensusValue v;
    v.kind = ConsensusValue::Kind::kBlock;
    auto b = std::make_shared<Block>();
    b->id.alpha = {CollectionId(EnterpriseSet{0}), 0, ++seq};
    b->txs.push_back(Transaction{});
    b->txs.back().client_ts = tag;
    b->Seal();
    v.block = b;
    v.block_digest = b->Digest();
    return v;
  }

  Env env;
  Network net;
  std::vector<std::unique_ptr<CkptHost>> hosts;
  SeqNo seq = 0;
};

TEST(CheckpointTest, GcNeverDiscardsSlotsBelowUnstableCheckpoint) {
  // Host 0 drops every incoming CHECKPOINT vote: its own checkpoints are
  // proposed but can never gather a quorum. Unstable checkpoints must
  // not garbage-collect — otherwise a replica could discard slot state
  // (and its ability to serve fills) on its own unconfirmed say-so.
  CkptFixture fx(/*byz=*/true, 4, 1, /*interval=*/4);
  fx.hosts[0]->drop_checkpoint_votes = true;
  for (int i = 0; i < 10; ++i) {
    fx.hosts[0]->engine->Propose(fx.MakeValue(100 + i));
    fx.env.sim.Run(fx.env.sim.now() + 50000);
  }
  ASSERT_GE(fx.hosts[0]->delivered.size(), 8u);

  // Peers received all votes: stable at a boundary, slots below GC'd.
  const InternalConsensus& peer = *fx.hosts[1]->engine;
  EXPECT_GE(peer.stable_checkpoint().slot, 4u);
  EXPECT_EQ(peer.gc_floor(), peer.stable_checkpoint().slot);
  EXPECT_FALSE(peer.HasSlotState(1));

  // The starved host proposed the same checkpoints but none went stable:
  // every slot must still be retained.
  InternalConsensus& starved = *fx.hosts[0]->engine;
  EXPECT_TRUE(starved.stable_checkpoint().empty());
  EXPECT_EQ(starved.gc_floor(), 0u);
  EXPECT_TRUE(starved.HasSlotState(1));
  EXPECT_TRUE(starved.HasSlotState(4));

  // Handing it a peer's certificate (the carried-cert path a fill
  // request below the GC floor triggers) makes it stable and GCs.
  EXPECT_TRUE(starved.InstallCheckpoint(peer.stable_checkpoint()));
  EXPECT_EQ(starved.gc_floor(), peer.stable_checkpoint().slot);
  EXPECT_FALSE(starved.HasSlotState(1));
}

TEST(CheckpointTest, TamperedCertificateRejected) {
  CkptFixture fx(/*byz=*/true, 4, 1, /*interval=*/4);
  for (int i = 0; i < 6; ++i) {
    fx.hosts[0]->engine->Propose(fx.MakeValue(200 + i));
    fx.env.sim.Run(fx.env.sim.now() + 50000);
  }
  const CheckpointCertificate& good =
      fx.hosts[1]->engine->stable_checkpoint();
  ASSERT_FALSE(good.empty());
  ASSERT_TRUE(good.Valid(fx.env.keystore, 3));

  // Flipped history digest: every signature now covers the wrong bytes.
  CheckpointCertificate bad_digest = good;
  bad_digest.digest.bytes[0] ^= 0xff;
  bad_digest.slot += 4;  // claim a further frontier
  EXPECT_FALSE(bad_digest.Valid(fx.env.keystore, 3));
  EXPECT_FALSE(fx.hosts[3]->engine->InstallCheckpoint(bad_digest));

  // Forged signature inside an otherwise-correct certificate.
  CheckpointCertificate bad_sig = good;
  bad_sig.sigs[0].tag_lo ^= 1;
  EXPECT_FALSE(fx.hosts[3]->engine->InstallCheckpoint(bad_sig));

  // Too few distinct signers (duplicated entries must not count twice).
  CheckpointCertificate thin = good;
  thin.sigs.resize(1);
  thin.sigs.push_back(thin.sigs[0]);
  thin.sigs.push_back(thin.sigs[0]);
  EXPECT_FALSE(fx.hosts[3]->engine->InstallCheckpoint(thin));

  // The untampered certificate installs fine.
  EXPECT_TRUE(fx.hosts[3]->engine->InstallCheckpoint(good));
  EXPECT_EQ(fx.env.metrics.Get("ckpt.invalid_cert"), 3u);
}

// ----------------------------------------- recovered-replica convergence

struct RecoverySystem {
  explicit RecoverySystem(FailureModel fm, uint64_t seed = 21) {
    QanaatSystem::Options so;
    so.params.num_enterprises = 2;
    so.params.shards_per_enterprise = 1;
    so.params.failure_model = fm;
    so.params.family = ProtocolFamily::kFlattened;
    so.params.checkpoint_interval = 8;  // small: checkpoints + GC bite
    so.seed = seed;
    sys = std::make_unique<QanaatSystem>(std::move(so));
    sys->net().set_record_delivered_links(true);
    WorkloadParams wl;
    wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
    wl.cross_fraction = 0.3;
    client = sys->AddClient(wl, 400.0);
    client->SetRetransmitTimeout(250 * kMillisecond);
    client->Start(0, 1200 * kMillisecond, 0, 1800 * kMillisecond);
  }

  std::unique_ptr<QanaatSystem> sys;
  ClientMachine* client = nullptr;
};

void RunCrashRecoverConvergence(FailureModel fm) {
  RecoverySystem rs(fm);
  // One backup per cluster crashes mid-run and recovers under load: each
  // misses internal AND cross-cluster commits (the latter are never
  // retransmitted once the instance completes everywhere).
  FaultPlan plan;
  for (int c = 0; c < rs.sys->cluster_count(); ++c) {
    const ClusterConfig& cc = rs.sys->directory().Cluster(c);
    plan.CrashWindow(300 * kMillisecond, 700 * kMillisecond,
                     cc.ordering[1]);
  }
  plan.Sort();
  FaultInjector injector(&rs.sys->env(), &rs.sys->net());
  injector.Install(std::move(plan));
  rs.sys->env().sim.Run(1800 * kMillisecond);

  // Full audit with NO exclusions: the recovered replicas end with
  // chains and multi-versioned stores byte-identical to their peers'.
  static const std::set<NodeId> kNone;
  Status st = SafetyAuditor::AuditQanaat(*rs.sys, /*full=*/true, &kNone);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // ...and state transfer is what got them there.
  EXPECT_GT(rs.sys->env().metrics.Get("order.state_block_installed"), 0u);
  EXPECT_GT(rs.sys->env().metrics.Get("ckpt.stable"), 0u);
}

TEST(StateTransferTest, RecoveredReplicaConvergesPbft) {
  RunCrashRecoverConvergence(FailureModel::kByzantine);
}

TEST(StateTransferTest, RecoveredReplicaConvergesPaxos) {
  RunCrashRecoverConvergence(FailureModel::kCrash);
}

TEST(StateTransferTest, FabricPeerCatchesUpAcrossLossyDelivery) {
  FabricConfig fc;
  fc.enterprises = 3;
  fc.seed = 9;
  FabricSystem sys(fc);
  WorkloadParams wl;
  wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  wl.cross_fraction = 0.2;
  FabricClient* c = sys.AddClient(wl, 400.0);
  c->Start(0, 1200 * kMillisecond, 0, 1800 * kMillisecond);

  // Sever block delivery to peer 0 completely for 400ms: every ordered
  // block in the window is lost on that link, the exact pattern that
  // wedged a peer forever before catch-up existed.
  FaultPlan plan;
  Network::LinkFault f;
  f.drop = 1.0;
  plan.LinkFaultWindow(200 * kMillisecond, 600 * kMillisecond,
                       sys.leader_id(), sys.peer(0)->id(), f);
  plan.Sort();
  FaultInjector injector(&sys.env(), &sys.net());
  injector.Install(std::move(plan));
  sys.env().sim.Run(1800 * kMillisecond);

  EXPECT_TRUE(SafetyAuditor::AuditFabric(sys).ok());
  uint64_t head = sys.peers().front()->next_block_to_apply();
  EXPECT_GT(head, 1u);
  for (const auto& p : sys.peers()) {
    EXPECT_EQ(p->next_block_to_apply(), head) << "peer did not converge";
  }
  EXPECT_GT(sys.env().metrics.Get("fabric.blocks_refetched"), 0u);
}

TEST(StateTransferTest, ServedEntirelyByNonPrimaryPeers) {
  RecoverySystem rs(FailureModel::kByzantine, /*seed=*/33);
  // Crash ordering[2] at 300ms; while it is down the other three nodes
  // advance stable checkpoints past its frontier and garbage-collect
  // (interval 8), so per-slot fills cannot serve its gap. At 500ms the
  // initial primary dies for good (view change hands leadership to
  // ordering[1]). When ordering[2] recovers at 900ms its round-robin
  // state sync starts at ordering[3] — a backup — and the dead node 0
  // can never serve; convergence therefore proves non-primary peers
  // carry the whole transfer.
  const ClusterConfig& cc = rs.sys->directory().Cluster(0);
  FaultPlan plan;
  plan.CrashWindow(300 * kMillisecond, 900 * kMillisecond, cc.ordering[2]);
  FaultAction kill;
  kill.kind = FaultAction::Kind::kCrash;
  kill.a = cc.ordering[0];
  plan.Add(500 * kMillisecond, kill);
  plan.Sort();
  FaultInjector injector(&rs.sys->env(), &rs.sys->net());
  injector.Install(std::move(plan));
  rs.sys->env().sim.Run(1800 * kMillisecond);

  // The permanently-dead initial primary is legitimately excluded; the
  // recovered ordering[2] is not.
  std::set<NodeId> dead = {cc.ordering[0]};
  Status st = SafetyAuditor::AuditQanaat(*rs.sys, /*full=*/true, &dead);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(rs.sys->env().metrics.Get("order.state_block_installed"), 0u);
  EXPECT_GT(rs.client->accepted(), 100u);
}

// --------------------- §4.3.5 rivalry settlement (former ROADMAP gap)

/// Inert request source for hand-crafted rivalry scenarios.
class ClientStub : public Actor {
 public:
  explicit ClientStub(Env* env) : Actor(env, "client-stub") {}
  void OnMessage(NodeId, const MessageRef& msg) override {
    if (msg->type == MsgType::kReply || msg->type == MsgType::kReplyCert) {
      ++replies;
    }
  }
  int replies = 0;
};

TEST(StateTransferTest, RivalBlockTransactionsSettleExactlyOnce) {
  // Formerly the pinned ROADMAP gap (NackedRivalBlockTransactionsAre-
  // DroppedToday): in optimistic (non-designated-coordinator) FLATTENED
  // mode two enterprises initiate rival blocks claiming the same
  // (chain, n) of a shared collection, and the second claim used to be
  // nacked forever — both instances deadlocked and their transactions
  // were dropped. Digest-priority arbitration (§4.3.5) now settles the
  // rivalry: validators switch their endorsement to the lower-digest
  // block unless already commit-locked, the winner commits, and the
  // loser's transactions are re-queued through the retry machinery and
  // land on a fresh block — so BOTH transactions commit, each exactly
  // once.
  QanaatSystem::Options so;
  so.params.num_enterprises = 2;
  so.params.shards_per_enterprise = 1;
  so.params.failure_model = FailureModel::kCrash;
  so.params.family = ProtocolFamily::kFlattened;
  so.params.designated_coordinator = false;  // optimistic mode: races
  so.seed = 3;
  // WAN latency between the enterprises: an in-flight instance lives
  // ~100ms, so the concurrently initiated rivals below both claim n=1
  // before either side learns of the other.
  so.cluster_regions = {0, 1};
  QanaatSystem sys(std::move(so));
  sys.net().SetRtt(0, 1, 100 * kMillisecond);
  ClientStub stub(&sys.env());

  CollectionId shared(EnterpriseSet{0, 1});
  auto make_req = [&](uint64_t ts, EnterpriseId initiator) {
    auto req = std::make_shared<RequestMsg>();
    req->tx.client = stub.id();
    req->tx.client_ts = ts;
    req->tx.collection = shared;
    req->tx.shards = {0};
    req->tx.initiator = initiator;
    req->tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 1, 5, {}});
    req->tx.client_sig =
        sys.env().keystore.Sign(stub.id(), req->tx.Digest());
    return req;
  };
  // Rival initiations, one per enterprise, fired together.
  sys.env().sim.ScheduleAt(10 * kMillisecond, [&]() {
    sys.net().Send(stub.id(),
                   sys.directory().Cluster(0).InitialPrimary(),
                   make_req(1, 0));
    sys.net().Send(stub.id(),
                   sys.directory().Cluster(1).InitialPrimary(),
                   make_req(2, 1));
  });
  sys.env().sim.Run(2 * kSecond);

  // Safety holds throughout: the commit-vote lock is what keeps the
  // loser from ever assembling a quorum at the contested height. The
  // convergence audit (empty exclusion set) additionally proves every
  // replica ends on identical chains and stores.
  static const std::set<NodeId> kNone;
  Status st = SafetyAuditor::AuditQanaat(sys, true, &kNone);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // The race happened and was arbitrated, not just nacked...
  EXPECT_GT(sys.env().metrics.Get("cross.arbitration_switch"), 0u);
  EXPECT_GT(sys.env().metrics.Get("cross.arbitration_loser"), 0u);
  // ...and BOTH rival transactions settled, each exactly once across
  // the shared chain (per-ledger double commits are excluded by the
  // audit above; count on one replica of each cluster).
  for (int c = 0; c < sys.cluster_count(); ++c) {
    uint64_t committed = 0;
    const DagLedger& led = sys.ordering_node(c, 0)->exec_core().ledger();
    for (size_t i = 0; i < led.size(); ++i) {
      for (const auto& tx : led.entry(i).block->txs) {
        if (tx.client == stub.id()) ++committed;
      }
    }
    EXPECT_EQ(committed, 2u)
        << "cluster " << c
        << ": rival transactions did not fully settle after arbitration";
  }
}

}  // namespace
}  // namespace qanaat
