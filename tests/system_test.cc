#include <gtest/gtest.h>

#include "qanaat/system.h"

namespace qanaat {
namespace {

struct RunResult {
  uint64_t commits = 0;
  double mean_latency_ms = 0;
  std::unique_ptr<QanaatSystem> sys;
};

RunResult RunWorkload(SystemParams params, WorkloadParams wl,
                      double rate_tps, SimTime dur = 2 * kSecond,
                      uint64_t seed = 42) {
  QanaatSystem::Options opts;
  opts.params = params;
  opts.seed = seed;
  auto sys = std::make_unique<QanaatSystem>(std::move(opts));
  ClientMachine* c = sys->AddClient(wl, rate_tps);
  c->Start(0, dur, 100 * kMillisecond, dur - 100 * kMillisecond);
  sys->env().sim.Run(dur + kSecond);
  RunResult r;
  r.commits = c->measured_commits();
  r.mean_latency_ms = c->latencies().Mean() / 1000.0;
  r.sys = std::move(sys);
  return r;
}

SystemParams Crash(ProtocolFamily fam) {
  SystemParams p;
  p.failure_model = FailureModel::kCrash;
  p.use_firewall = false;
  p.family = fam;
  p.num_enterprises = 2;
  p.shards_per_enterprise = 2;
  return p;
}

SystemParams Byz(ProtocolFamily fam, bool firewall) {
  SystemParams p;
  p.failure_model = FailureModel::kByzantine;
  p.use_firewall = firewall;
  p.family = fam;
  p.num_enterprises = 2;
  p.shards_per_enterprise = 2;
  return p;
}

WorkloadParams Mix(CrossKind kind, double frac) {
  WorkloadParams wl;
  wl.cross_kind = kind;
  wl.cross_fraction = frac;
  return wl;
}

// ------------------------------------------------ intra-cluster basics

TEST(SystemIntra, CrashClusterCommitsInternalTxs) {
  auto r = RunWorkload(Crash(ProtocolFamily::kFlattened),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                       500.0);
  EXPECT_GT(r.commits, 700u);  // ~900 expected in 1.8s window
  EXPECT_LT(r.mean_latency_ms, 50.0);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

TEST(SystemIntra, ByzantineNoFirewallCommitsInternalTxs) {
  auto r = RunWorkload(Byz(ProtocolFamily::kFlattened, false),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                       500.0);
  EXPECT_GT(r.commits, 700u);
  EXPECT_LT(r.mean_latency_ms, 50.0);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

TEST(SystemIntra, ByzantineWithFirewallCommitsInternalTxs) {
  auto r = RunWorkload(Byz(ProtocolFamily::kFlattened, true),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                       500.0);
  EXPECT_GT(r.commits, 700u);
  EXPECT_LT(r.mean_latency_ms, 60.0);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

// -------------------------------------------- cross-cluster, both fams

class CrossProtocolTest
    : public ::testing::TestWithParam<std::tuple<ProtocolFamily, CrossKind,
                                                 FailureModel, bool>> {};

TEST_P(CrossProtocolTest, CommitsMixedWorkload) {
  auto [fam, kind, fm, firewall] = GetParam();
  SystemParams p = fm == FailureModel::kCrash ? Crash(fam)
                                              : Byz(fam, firewall);
  auto r = RunWorkload(p, Mix(kind, 0.3), 400.0);
  EXPECT_GT(r.commits, 500u) << "family=" << int(fam) << " kind="
                             << int(kind);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, CrossProtocolTest,
    ::testing::Combine(
        ::testing::Values(ProtocolFamily::kCoordinator,
                          ProtocolFamily::kFlattened),
        ::testing::Values(CrossKind::kIntraShardCrossEnterprise,
                          CrossKind::kCrossShardIntraEnterprise,
                          CrossKind::kCrossShardCrossEnterprise),
        ::testing::Values(FailureModel::kCrash, FailureModel::kByzantine),
        ::testing::Values(false)));

TEST(CrossFirewall, CoordinatorByzFirewallCrossEnterprise) {
  auto r = RunWorkload(Byz(ProtocolFamily::kCoordinator, true),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.5),
                       300.0);
  EXPECT_GT(r.commits, 350u);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

TEST(CrossFirewall, FlattenedByzFirewallCrossShardCrossEnterprise) {
  auto r = RunWorkload(Byz(ProtocolFamily::kFlattened, true),
                       Mix(CrossKind::kCrossShardCrossEnterprise, 0.5),
                       300.0);
  EXPECT_GT(r.commits, 350u);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

// ----------------------------------------------------- data invariants

TEST(SystemInvariants, MoneyConservedOnLocalCollections) {
  // sendPayment moves amounts between accounts of the same collection
  // shard; the sum over each shard's store must be zero.
  auto r = RunWorkload(Crash(ProtocolFamily::kFlattened),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                       800.0);
  ASSERT_GT(r.commits, 0u);
  // (Sum check happens implicitly per store: every kAdd pair nets zero in
  // a shard; verify ledger audit passes and executed txs match commits.)
  uint64_t executed = 0;
  for (int c = 0; c < r.sys->cluster_count(); ++c) {
    executed += r.sys->ordering_node(c, 0)->exec_core().executed_txs();
  }
  EXPECT_GT(executed, 0u);
}

TEST(SystemInvariants, ReplicasConvergeOnSharedCollections) {
  // After a cross-enterprise workload, the shared-collection chains of
  // the two enterprises' same-shard clusters must be identical.
  auto r = RunWorkload(Byz(ProtocolFamily::kFlattened, false),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.5),
                       400.0, 2 * kSecond);
  ASSERT_GT(r.commits, 0u);
  auto& sys = *r.sys;
  const auto& dir = sys.directory();
  CollectionId shared{EnterpriseSet{0, 1}};
  for (ShardId s = 0; s < 2; ++s) {
    const auto& la =
        sys.ordering_node(dir.ClusterIdOf(0, s), 0)->exec_core().ledger();
    const auto& lb =
        sys.ordering_node(dir.ClusterIdOf(1, s), 0)->exec_core().ledger();
    ShardRef ref{shared, s};
    // Heads advance in lockstep modulo in-flight deliveries.
    EXPECT_LE(
        std::max(la.HeadOf(ref), lb.HeadOf(ref)) -
            std::min(la.HeadOf(ref), lb.HeadOf(ref)),
        2u);
    size_t n = std::min(la.ChainOf(ref).size(), lb.ChainOf(ref).size());
    for (size_t i = 0; i < n; ++i) {
      const auto& ea = la.entry(la.ChainOf(ref)[i]);
      const auto& eb = lb.entry(lb.ChainOf(ref)[i]);
      EXPECT_EQ(ea.block->Digest(), eb.block->Digest())
          << "divergence at " << i << " shard " << s;
    }
  }
}

// ------------------------------------------------------------- batching

TEST(SystemBatching, BatchedRunMatchesUnbatchedResults) {
  // At a load both configurations sustain, batching must change
  // performance only — the same transactions commit and every ledger
  // verifies. Identical seeds give identical client request streams.
  SystemParams p1 = Byz(ProtocolFamily::kFlattened, false);
  p1.batch_size = 1;
  SystemParams p64 = p1;
  p64.batch_size = 64;
  auto r1 = RunWorkload(p1, Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                        300.0);
  auto r64 = RunWorkload(p64, Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                         300.0);
  EXPECT_TRUE(r1.sys->VerifyAllLedgers().ok());
  EXPECT_TRUE(r64.sys->VerifyAllLedgers().ok());
  ASSERT_GT(r1.commits, 400u);
  // Allow a handful of in-flight transactions at the window edges.
  EXPECT_NEAR(static_cast<double>(r1.commits),
              static_cast<double>(r64.commits),
              0.03 * static_cast<double>(r1.commits));
}

TEST(SystemBatching, BatchingRaisesThroughputAtEqualOfferedLoad) {
  // Past the batch-1 saturation point, larger batches amortize the
  // consensus round and commit strictly more at the same offered load.
  SystemParams p1 = Byz(ProtocolFamily::kFlattened, false);
  p1.batch_size = 1;
  SystemParams p64 = p1;
  p64.batch_size = 64;
  WorkloadParams wl = Mix(CrossKind::kIntraShardCrossEnterprise, 0.0);
  auto r1 = RunWorkload(p1, wl, 20000.0);
  auto r64 = RunWorkload(p64, wl, 20000.0);
  EXPECT_GT(r64.commits, r1.commits * 13 / 10)
      << "batch=1 commits " << r1.commits << ", batch=64 commits "
      << r64.commits;
  // Batch size 1 closes every batch by size; the batched run cuts
  // timeout-closed blocks of many transactions each.
  EXPECT_GT(r1.sys->env().metrics.Get("batch.closed_size"), 0u);
  EXPECT_GT(r64.sys->env().metrics.Get("batch.closed_timeout"), 0u);
}

TEST(SystemBatching, PipelineDepthOneStillCommitsEverything) {
  // Fully serialized rounds (depth 1) are slower but must stay correct.
  SystemParams p = Byz(ProtocolFamily::kFlattened, false);
  p.pipeline_depth = 1;
  auto r = RunWorkload(p, Mix(CrossKind::kIntraShardCrossEnterprise, 0.0),
                       500.0);
  EXPECT_GT(r.commits, 700u);
  EXPECT_TRUE(r.sys->VerifyAllLedgers().ok());
}

TEST(SystemInvariants, ExecutionReplicasAgreeWithFirewall) {
  auto r = RunWorkload(Byz(ProtocolFamily::kFlattened, true),
                       Mix(CrossKind::kIntraShardCrossEnterprise, 0.2),
                       300.0);
  ASSERT_GT(r.commits, 0u);
  auto& sys = *r.sys;
  for (int c = 0; c < sys.cluster_count(); ++c) {
    const auto& e0 = sys.execution_node(c, 0)->core();
    const auto& e1 = sys.execution_node(c, 1)->core();
    const auto& e2 = sys.execution_node(c, 2)->core();
    // All execution replicas of a cluster execute the same blocks.
    EXPECT_LE(std::max({e0.executed_blocks(), e1.executed_blocks(),
                        e2.executed_blocks()}) -
                  std::min({e0.executed_blocks(), e1.executed_blocks(),
                            e2.executed_blocks()}),
              2u);
  }
}

}  // namespace
}  // namespace qanaat
