#include <gtest/gtest.h>

#include "consensus/batcher.h"
#include "consensus/paxos.h"
#include "consensus/pbft.h"
#include "sim/network.h"

namespace qanaat {
namespace {

/// Minimal actor hosting a consensus engine for unit testing.
class EngineHost : public Actor {
 public:
  EngineHost(Env* env, int index) : Actor(env, "host"), index_(index) {}

  void Init(const std::vector<NodeId>& cluster, bool byzantine_engine,
            int f, SimTime timeout, size_t pipeline_depth = 0) {
    EngineContext ctx;
    ctx.env = env();
    ctx.self = id();
    ctx.cluster = cluster;
    ctx.self_index = index_;
    ctx.pipeline_depth = pipeline_depth;
    ctx.send = [this](NodeId to, MessageRef m) { Send(to, std::move(m)); };
    ctx.broadcast = [this, cluster](MessageRef m) {
      for (NodeId p : cluster) {
        if (p != id()) Send(p, m);
      }
    };
    ctx.start_timer = [this](SimTime d, uint64_t tag, uint64_t payload) {
      StartTimer(d, tag, payload);
    };
    ctx.deliver = [this](uint64_t slot, const ConsensusValue& v) {
      delivered.emplace_back(slot, v.block_digest);
    };
    if (byzantine_engine) {
      engine = std::make_unique<PbftEngine>(std::move(ctx), f, timeout);
    } else {
      engine = std::make_unique<PaxosEngine>(std::move(ctx), f, timeout);
    }
  }

  void OnMessage(NodeId from, const MessageRef& msg) override {
    engine->OnMessage(from, msg);
  }
  void OnTimer(uint64_t tag, uint64_t payload) override {
    engine->OnTimer(tag, payload);
  }

  std::unique_ptr<InternalConsensus> engine;
  std::vector<std::pair<uint64_t, Sha256Digest>> delivered;

 private:
  int index_;
};

struct EngineFixture {
  EngineFixture(bool byz, int n, int f, SimTime timeout = 20000,
                size_t pipeline_depth = 0)
      : env(7), net(&env) {
    for (int i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<EngineHost>(&env, i));
    }
    std::vector<NodeId> ids;
    for (auto& h : hosts) ids.push_back(h->id());
    for (auto& h : hosts) h->Init(ids, byz, f, timeout, pipeline_depth);
  }

  ConsensusValue MakeValue(const std::string& tag, int txs = 1) {
    ConsensusValue v;
    v.kind = ConsensusValue::Kind::kBlock;
    auto b = std::make_shared<Block>();
    b->id.alpha = {CollectionId(EnterpriseSet{0}), 0, ++seq};
    for (int i = 0; i < txs; ++i) {
      b->txs.push_back(Transaction{});
      b->txs.back().client_ts =
          std::hash<std::string>{}(tag) + static_cast<uint64_t>(i);
    }
    b->Seal();
    v.block = b;
    v.block_digest = b->Digest();
    return v;
  }

  /// All non-crashed hosts delivered the same sequence of digests.
  void ExpectAgreement(size_t expect_count) {
    const EngineHost* ref = nullptr;
    for (auto& h : hosts) {
      if (h->crashed()) continue;
      if (!ref) {
        ref = h.get();
        EXPECT_EQ(ref->delivered.size(), expect_count);
        continue;
      }
      ASSERT_EQ(h->delivered.size(), ref->delivered.size())
          << "replica " << h->id();
      for (size_t i = 0; i < ref->delivered.size(); ++i) {
        EXPECT_EQ(h->delivered[i], ref->delivered[i]);
      }
    }
  }

  Env env;
  Network net;
  std::vector<std::unique_ptr<EngineHost>> hosts;
  SeqNo seq = 0;
};

// ------------------------------------------------------------------ PBFT

TEST(PbftTest, DecidesSingleValueOnAllReplicas) {
  EngineFixture f(true, 4, 1);
  f.hosts[0]->engine->Propose(f.MakeValue("a"));
  f.env.sim.RunAll();
  f.ExpectAgreement(1);
}

TEST(PbftTest, DecidesManyValuesInOrder) {
  EngineFixture f(true, 4, 1);
  for (int i = 0; i < 20; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  f.env.sim.RunAll();
  f.ExpectAgreement(20);
  // Slots delivered in order 1..20.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(f.hosts[1]->delivered[i].first, i + 1);
  }
}

TEST(PbftTest, ToleratesOneCrashedBackup) {
  EngineFixture f(true, 4, 1);
  f.hosts[3]->Crash();
  for (int i = 0; i < 5; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  f.env.sim.RunAll();
  f.ExpectAgreement(5);
}

TEST(PbftTest, ProposeOnBackupIsRejected) {
  EngineFixture f(true, 4, 1);
  f.hosts[1]->engine->Propose(f.MakeValue("x"));
  f.env.sim.RunAll();
  f.ExpectAgreement(0);
  EXPECT_EQ(f.env.metrics.Get("pbft.propose_on_backup"), 1u);
}

TEST(PbftTest, CommitsWithoutPrimaryAfterPrePrepare) {
  // Once the pre-prepare is out, PBFT commits even if the primary then
  // crashes (replicas exchange prepares/commits among themselves).
  EngineFixture f(true, 4, 1);
  f.hosts[0]->engine->Propose(f.MakeValue("pre"));
  f.env.sim.Run(200000);
  f.hosts[0]->engine->Propose(f.MakeValue("survivor"));
  f.env.sim.Run(201000);  // pre-prepare reaches the backups
  f.hosts[0]->Crash();
  f.env.sim.Run(2000000);
  EXPECT_EQ(f.hosts[1]->delivered.size(), 2u);
  EXPECT_EQ(f.hosts[2]->delivered.size(), 2u);
  EXPECT_EQ(f.hosts[3]->delivered.size(), 2u);
}

TEST(PbftTest, ViewChangeOnUnresponsivePrimary) {
  EngineFixture f(true, 4, 1);
  // Prime the cluster with a committed value.
  f.hosts[0]->engine->Propose(f.MakeValue("pre"));
  f.env.sim.Run(200000);
  // Partition the primary from backups 2 and 3: its next pre-prepare
  // reaches only backup 1, which can never assemble a quorum. Timers
  // fire, the cluster view-changes to node 1.
  f.net.Partition(f.hosts[0]->id(), f.hosts[2]->id());
  f.net.Partition(f.hosts[0]->id(), f.hosts[3]->id());
  f.hosts[0]->engine->Propose(f.MakeValue("orphan"));
  f.env.sim.Run(250000);
  f.hosts[0]->Crash();
  f.env.sim.Run(3000000);
  EXPECT_GE(f.env.metrics.Get("pbft.view_installed"), 1u);
  EXPECT_EQ(f.hosts[1]->engine->PrimaryNode(), f.hosts[1]->id());
  // The new primary restores liveness ("orphan" itself is recovered by
  // client retransmission at the ordering layer, not the engine).
  f.hosts[1]->engine->Propose(f.MakeValue("fresh"));
  f.env.sim.Run(6000000);
  size_t n1 = f.hosts[1]->delivered.size();
  EXPECT_GE(n1, 2u);
  EXPECT_EQ(f.hosts[2]->delivered.size(), n1);
  EXPECT_EQ(f.hosts[3]->delivered.size(), n1);
}

TEST(PbftTest, EquivocatingPrimaryIsReplaced) {
  EngineFixture f(true, 4, 1);
  static_cast<PbftEngine*>(f.hosts[0]->engine.get())->SetEquivocate(true);
  f.hosts[0]->engine->Propose(f.MakeValue("evil"));
  f.env.sim.Run(3000000);
  // Replicas could not gather matching quorums; a view change happened.
  EXPECT_GE(f.env.metrics.Get("pbft.view_installed"), 1u);
  // System remains live under the new primary.
  NodeId new_primary = f.hosts[1]->engine->PrimaryNode();
  EXPECT_NE(new_primary, f.hosts[0]->id());
}

TEST(PbftTest, CommitProofFormsValidCertificate) {
  EngineFixture f(true, 4, 1);
  ConsensusValue v = f.MakeValue("cert");
  f.hosts[0]->engine->Propose(v);
  f.env.sim.RunAll();
  auto sigs = f.hosts[0]->engine->CommitProof(1);
  EXPECT_GE(sigs.size(), f.hosts[0]->engine->Quorum());
  CommitCertificate cert;
  cert.block_digest = v.block_digest;
  cert.view = 0;
  cert.slot = 1;
  cert.value_kind = static_cast<uint8_t>(v.kind);
  cert.sigs = sigs;
  EXPECT_TRUE(cert.Valid(f.env.keystore, 3));
}

TEST(PbftTest, MessagesFromOutsiderIgnored) {
  EngineFixture f(true, 4, 1);
  // A 5th actor forges a pre-prepare claiming to be the primary.
  EngineHost outsider(&f.env, 4);
  auto pp = std::make_shared<PrePrepareMsg>();
  pp->view = 0;
  pp->slot = 1;
  pp->value = f.MakeValue("forged");
  pp->value_digest = pp->value.Digest();
  pp->sig = f.env.keystore.Forge(f.hosts[0]->id());
  f.net.Send(outsider.id(), f.hosts[1]->id(), pp);
  f.env.sim.RunAll();
  EXPECT_EQ(f.hosts[1]->delivered.size(), 0u);
}

// ----------------------------------------------------------------- Paxos

// ------------------------------------------- signable memoization

TEST(SignableCacheTest, StaleViewSignatureMustNotVerify) {
  // The memoized signable is keyed by (view, slot, digest): after a view
  // change the cache must re-derive, so a signature produced against the
  // old view's signable fails verification against the new one — a
  // stale cache served across views would let an old-view vote count in
  // the new view.
  Env env(21);
  Sha256Digest d = Sha256::Hash("value");
  SignableCache cache;
  Signature old_sig = env.keystore.Sign(1, cache.Get(3, 9, d));
  // View changes to 4; the same slot's signable is re-derived.
  Sha256Digest fresh = cache.Get(4, 9, d);
  EXPECT_FALSE(env.keystore.Verify(old_sig, fresh));
  EXPECT_TRUE(env.keystore.Verify(env.keystore.Sign(1, fresh), fresh));
  // And going back to view 3 re-derives the original signable exactly.
  EXPECT_TRUE(env.keystore.Verify(old_sig, cache.Get(3, 9, d)));
}

TEST(SignableCacheTest, MemoizedMatchesFreshForRandomizedTriples) {
  // Cross-check: through hits, misses and interleaved (view, slot,
  // digest) triples, the memoized signable always equals an independent
  // derivation.
  Rng rng(77);
  SignableCache cache;
  for (int i = 0; i < 5000; ++i) {
    ViewNo v = rng.Uniform(8);
    uint64_t slot = rng.Uniform(64) + 1;
    Sha256Digest d;
    for (auto& b : d.bytes) b = static_cast<uint8_t>(rng.Uniform(4));
    // Query twice (second is a guaranteed hit) — both must match fresh.
    EXPECT_EQ(cache.Get(v, slot, d), ConsensusSignable(v, slot, d));
    EXPECT_EQ(cache.Get(v, slot, d), ConsensusSignable(v, slot, d));
  }
}

TEST(SignableCacheTest, SeededValueIsServedAndKeyed) {
  // Seed() installs an externally derived signable (the verify-before-
  // slot-creation path); a Get with the same key serves it, a different
  // key re-derives.
  SignableCache cache;
  Sha256Digest d = Sha256::Hash("x");
  Sha256Digest signable = ConsensusSignable(5, 12, d);
  cache.Seed(5, 12, d, signable);
  EXPECT_EQ(cache.Get(5, 12, d), signable);
  EXPECT_EQ(cache.Get(6, 12, d), ConsensusSignable(6, 12, d));
}

TEST(PaxosTest, DecidesOnAllReplicas) {
  EngineFixture f(false, 3, 1);
  f.hosts[0]->engine->Propose(f.MakeValue("a"));
  f.env.sim.RunAll();
  f.ExpectAgreement(1);
}

TEST(PaxosTest, DecidesManyInOrder) {
  EngineFixture f(false, 3, 1);
  for (int i = 0; i < 30; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  f.env.sim.RunAll();
  f.ExpectAgreement(30);
}

TEST(PaxosTest, ToleratesCrashedFollower) {
  EngineFixture f(false, 3, 1);
  f.hosts[2]->Crash();
  for (int i = 0; i < 5; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  f.env.sim.RunAll();
  EXPECT_EQ(f.hosts[0]->delivered.size(), 5u);
  EXPECT_EQ(f.hosts[1]->delivered.size(), 5u);
}

TEST(PaxosTest, LeaderTakeoverAfterCrash) {
  EngineFixture f(false, 3, 1);
  f.hosts[0]->engine->Propose(f.MakeValue("pre"));
  f.env.sim.Run(100000);
  // Leader crashes with a value accepted at followers but not yet
  // learned (the ACCEPTED responses never reach it).
  f.hosts[0]->engine->Propose(f.MakeValue("orphan"));
  f.env.sim.Run(100450);  // accepts reached followers; responses in flight
  f.hosts[0]->Crash();
  f.env.sim.Run(5000000);
  EXPECT_GE(f.env.metrics.Get("paxos.leader_takeover"), 1u);
  // The orphan is re-driven by the new leader; both live nodes agree.
  ASSERT_EQ(f.hosts[1]->delivered.size(), f.hosts[2]->delivered.size());
  EXPECT_GE(f.hosts[1]->delivered.size(), 2u);
}

TEST(PaxosTest, FZeroSingleNodeDecidesImmediately) {
  EngineFixture f(false, 1, 0);
  f.hosts[0]->engine->Propose(f.MakeValue("solo"));
  f.env.sim.RunAll();
  EXPECT_EQ(f.hosts[0]->delivered.size(), 1u);
}

// --------------------------------------------------------------- Batcher

struct BatcherHarness {
  using B = Batcher<int, int>;
  explicit BatcherHarness(int max_batch, SimTime window)
      : batcher(
            BatcherConfig{max_batch, window},
            [this](SimTime delay, uint64_t token) {
              armed.emplace_back(delay, token);
            },
            [this](const int& key, std::vector<int> items, BatchClose why) {
              flushed.emplace_back(key, std::move(items));
              reasons.push_back(why);
            }) {}

  B batcher;
  std::vector<std::pair<SimTime, uint64_t>> armed;
  std::vector<std::pair<int, std::vector<int>>> flushed;
  std::vector<BatchClose> reasons;
};

TEST(BatcherTest, ClosesBySizeBeforeTimeout) {
  BatcherHarness h(3, 2000);
  h.batcher.Add(0, 1);
  h.batcher.Add(0, 2);
  EXPECT_TRUE(h.flushed.empty());
  h.batcher.Add(0, 3);
  ASSERT_EQ(h.flushed.size(), 1u);
  EXPECT_EQ(h.flushed[0].second, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(h.reasons[0], BatchClose::kSize);
  // The timer armed for the first item is now stale: firing it must not
  // re-flush or flush an empty batch.
  ASSERT_EQ(h.armed.size(), 1u);
  h.batcher.OnTimer(h.armed[0].second);
  EXPECT_EQ(h.flushed.size(), 1u);
}

TEST(BatcherTest, SizeOneNeverArmsTimer) {
  BatcherHarness h(1, 2000);
  h.batcher.Add(0, 42);
  ASSERT_EQ(h.flushed.size(), 1u);
  EXPECT_EQ(h.reasons[0], BatchClose::kSize);
  // No timer scheduled for a batch that closed immediately.
  EXPECT_TRUE(h.armed.empty());
}

TEST(BatcherTest, TimeoutFlushesPartialBatch) {
  BatcherHarness h(100, 2000);
  h.batcher.Add(7, 1);
  h.batcher.Add(7, 2);
  ASSERT_EQ(h.armed.size(), 1u);
  EXPECT_EQ(h.armed[0].first, 2000);
  h.batcher.OnTimer(h.armed[0].second);
  ASSERT_EQ(h.flushed.size(), 1u);
  EXPECT_EQ(h.flushed[0].first, 7);
  EXPECT_EQ(h.flushed[0].second.size(), 2u);
  EXPECT_EQ(h.reasons[0], BatchClose::kTimeout);
  EXPECT_EQ(h.batcher.closed_by_timeout(), 1u);
}

TEST(BatcherTest, FlowsBatchIndependently) {
  BatcherHarness h(2, 2000);
  h.batcher.Add(1, 10);
  h.batcher.Add(2, 20);
  h.batcher.Add(1, 11);  // flow 1 reaches max_batch
  ASSERT_EQ(h.flushed.size(), 1u);
  EXPECT_EQ(h.flushed[0].first, 1);
  EXPECT_EQ(h.batcher.PendingOf(2), 1u);
  h.batcher.FlushAll();
  ASSERT_EQ(h.flushed.size(), 2u);
  EXPECT_EQ(h.flushed[1].first, 2);
  EXPECT_EQ(h.reasons[1], BatchClose::kFlush);
}

TEST(BatcherTest, TimeoutOverridePerFlow) {
  BatcherHarness h(100, 2000);
  h.batcher.Add(0, 1, /*timeout_override=*/10000);
  ASSERT_EQ(h.armed.size(), 1u);
  EXPECT_EQ(h.armed[0].first, 10000);  // cross-cluster window
}

// ---------------------------------------------- batching via consensus

TEST(PbftTest, BatchedBlockDeliversAtomically) {
  // A block carrying many transactions is one consensus value: every
  // replica delivers it exactly once, whole (no partial batches).
  EngineFixture f(true, 4, 1);
  f.hosts[0]->engine->Propose(f.MakeValue("batch", /*txs=*/64));
  f.env.sim.RunAll();
  f.ExpectAgreement(1);
  for (auto& h : f.hosts) {
    ASSERT_EQ(h->delivered.size(), 1u);
  }
}

// ------------------------------------------------------------ pipelining

TEST(PbftTest, PipelineDepthCapsInFlightSlots) {
  EngineFixture f(true, 4, 1, 20000, /*pipeline_depth=*/2);
  for (int i = 0; i < 10; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  // Before any network round trip completes, only 2 slots are open; the
  // rest wait inside the engine.
  EXPECT_EQ(f.hosts[0]->engine->InFlight(), 2u);
  EXPECT_EQ(f.hosts[0]->engine->QueuedProposals(), 8u);
  f.env.sim.RunAll();
  // The queue drains as slots commit; everything delivers, in order.
  f.ExpectAgreement(10);
  EXPECT_EQ(f.hosts[0]->engine->QueuedProposals(), 0u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(f.hosts[1]->delivered[i].first, i + 1);
  }
}

TEST(PbftTest, PipelineDepthOneSerializesRounds) {
  EngineFixture f(true, 4, 1, 20000, /*pipeline_depth=*/1);
  for (int i = 0; i < 5; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  EXPECT_EQ(f.hosts[0]->engine->InFlight(), 1u);
  f.env.sim.RunAll();
  f.ExpectAgreement(5);
}

TEST(PbftTest, PipelineSafeUnderPrimaryFailure) {
  // Several slots in flight plus queued proposals when the primary dies:
  // the view change must leave all correct replicas with identical
  // delivered sequences (prepared slots recovered, queued ones dropped
  // for the clients to retransmit).
  EngineFixture f(true, 4, 1, 20000, /*pipeline_depth=*/4);
  f.hosts[0]->engine->Propose(f.MakeValue("pre"));
  f.env.sim.Run(200000);
  // Partition the primary from backups 2 and 3, then fill its pipeline:
  // the open slots' pre-prepares reach only backup 1 and can never
  // quorum, so the cluster must view-change with a full pipeline (and a
  // non-empty proposal queue) outstanding.
  f.net.Partition(f.hosts[0]->id(), f.hosts[2]->id());
  f.net.Partition(f.hosts[0]->id(), f.hosts[3]->id());
  for (int i = 0; i < 8; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("pipe" + std::to_string(i)));
  }
  EXPECT_EQ(f.hosts[0]->engine->InFlight(), 4u);
  EXPECT_EQ(f.hosts[0]->engine->QueuedProposals(), 4u);
  f.env.sim.Run(250000);
  f.hosts[0]->Crash();
  f.env.sim.Run(5000000);
  EXPECT_GE(f.env.metrics.Get("pbft.view_installed"), 1u);
  // All surviving replicas agree on an identical sequence: the orphaned
  // pipeline slots either committed everywhere or were noop-filled; no
  // replica delivered a partial pipeline different from its peers'.
  ASSERT_EQ(f.hosts[1]->delivered.size(), f.hosts[2]->delivered.size());
  ASSERT_EQ(f.hosts[1]->delivered.size(), f.hosts[3]->delivered.size());
  EXPECT_GE(f.hosts[1]->delivered.size(), 1u);
  for (size_t i = 0; i < f.hosts[1]->delivered.size(); ++i) {
    EXPECT_EQ(f.hosts[1]->delivered[i], f.hosts[2]->delivered[i]);
    EXPECT_EQ(f.hosts[1]->delivered[i], f.hosts[3]->delivered[i]);
  }
  // Liveness after the failover: the new primary still pipelines.
  size_t before = f.hosts[1]->delivered.size();
  ASSERT_EQ(f.hosts[1]->engine->PrimaryNode(), f.hosts[1]->id());
  for (int i = 0; i < 6; ++i) {
    f.hosts[1]->engine->Propose(f.MakeValue("post" + std::to_string(i)));
  }
  f.env.sim.Run(20000000);
  ASSERT_EQ(f.hosts[1]->delivered.size(), f.hosts[2]->delivered.size());
  ASSERT_EQ(f.hosts[1]->delivered.size(), f.hosts[3]->delivered.size());
  EXPECT_GE(f.hosts[1]->delivered.size(), before + 6);
}

TEST(PaxosTest, PipelineDepthCapsInFlightSlots) {
  EngineFixture f(false, 3, 1, 20000, /*pipeline_depth=*/2);
  for (int i = 0; i < 9; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  EXPECT_EQ(f.hosts[0]->engine->InFlight(), 2u);
  EXPECT_EQ(f.hosts[0]->engine->QueuedProposals(), 7u);
  f.env.sim.RunAll();
  f.ExpectAgreement(9);
  EXPECT_EQ(f.hosts[0]->engine->QueuedProposals(), 0u);
}

TEST(PaxosTest, PipelinedOpenSlotsRedrivenAfterTakeover) {
  EngineFixture f(false, 3, 1, 20000, /*pipeline_depth=*/2);
  f.hosts[0]->engine->Propose(f.MakeValue("pre"));
  f.env.sim.Run(100000);
  for (int i = 0; i < 6; ++i) {
    f.hosts[0]->engine->Propose(f.MakeValue("v" + std::to_string(i)));
  }
  f.env.sim.Run(100450);
  f.hosts[0]->Crash();
  f.env.sim.Run(8000000);
  EXPECT_GE(f.env.metrics.Get("paxos.leader_takeover"), 1u);
  // Live nodes agree on an identical sequence; the accepted-but-unlearned
  // slots were re-driven by the new leader.
  ASSERT_EQ(f.hosts[1]->delivered.size(), f.hosts[2]->delivered.size());
  EXPECT_GE(f.hosts[1]->delivered.size(), 2u);
  for (size_t i = 0; i < f.hosts[1]->delivered.size(); ++i) {
    EXPECT_EQ(f.hosts[1]->delivered[i], f.hosts[2]->delivered[i]);
  }
}

}  // namespace
}  // namespace qanaat
