#include <gtest/gtest.h>

#include "qanaat/system.h"

namespace qanaat {
namespace {

SystemParams PfParams() {
  SystemParams p;
  p.num_enterprises = 2;
  p.shards_per_enterprise = 1;
  p.failure_model = FailureModel::kByzantine;
  p.use_firewall = true;
  p.family = ProtocolFamily::kFlattened;
  return p;
}

struct PfFixture : ::testing::Test {
  void Build(SystemParams p = PfParams(), uint64_t seed = 5) {
    QanaatSystem::Options opts;
    opts.params = p;
    opts.seed = seed;
    sys = std::make_unique<QanaatSystem>(std::move(opts));
  }
  uint64_t RunLoad(double tps = 300, SimTime dur = 1500 * kMillisecond) {
    WorkloadParams wl;
    wl.cross_fraction = 0.0;
    ClientMachine* c = sys->AddClient(wl, tps);
    c->Start(0, dur, 100 * kMillisecond, dur);
    sys->env().sim.Run(dur + 500 * kMillisecond);
    return c->measured_commits();
  }
  std::unique_ptr<QanaatSystem> sys;
};

// ------------------------------------------------- topology & wiring

TEST_F(PfFixture, TopologyHasSeparatedRoles) {
  Build();
  const ClusterConfig& cc = sys->directory().Cluster(0);
  EXPECT_EQ(cc.ordering.size(), 4u);      // 3f+1
  EXPECT_EQ(cc.execution.size(), 3u);     // 2g+1
  ASSERT_EQ(cc.filter_rows.size(), 2u);   // h+1 rows
  EXPECT_EQ(cc.filter_rows[0].size(), 2u);  // of h+1 filters
}

TEST_F(PfFixture, PhysicalWiringBlocksExecToClientLeak) {
  // §3.4: a malicious node can access confidential data OR communicate
  // freely with clients, but not both. The network wiring makes an
  // execution node physically unable to reach anything but the top
  // filter row.
  Build();
  WorkloadParams wl;
  ClientMachine* client = sys->AddClient(wl, 1.0);
  ExecutionNode* evil = sys->execution_node(0, 0);

  uint64_t blocked_before = sys->net().blocked_sends();
  // Leak attempts: to a client machine, to an ordering node, to an
  // execution node of another cluster.
  auto leak = std::make_shared<Message>(MsgType::kReply);
  sys->net().Send(evil->id(), client->id(), leak);
  sys->net().Send(evil->id(), sys->directory().Cluster(0).ordering[0], leak);
  sys->net().Send(evil->id(), sys->directory().Cluster(1).execution[0],
                  leak);
  sys->env().sim.RunAll();
  EXPECT_EQ(sys->net().blocked_sends(), blocked_before + 3);

  // The legitimate path (to the top filter row) is open.
  NodeId top_filter = sys->directory().Cluster(0).filter_rows.back()[0];
  EXPECT_TRUE(sys->net().LinkAllowed(evil->id(), top_filter));
}

TEST_F(PfFixture, FiltersOnlyConnectToAdjacentRows) {
  Build();
  const ClusterConfig& cc = sys->directory().Cluster(0);
  NodeId bottom = cc.filter_rows[0][0];
  NodeId top = cc.filter_rows[1][0];
  // Bottom row: ordering (below) + top row (above); NOT execution.
  EXPECT_TRUE(sys->net().LinkAllowed(bottom, cc.ordering[0]));
  EXPECT_TRUE(sys->net().LinkAllowed(bottom, top));
  EXPECT_FALSE(sys->net().LinkAllowed(bottom, cc.execution[0]));
  // Top row: execution (above) + bottom row (below); NOT ordering.
  EXPECT_TRUE(sys->net().LinkAllowed(top, cc.execution[0]));
  EXPECT_FALSE(sys->net().LinkAllowed(top, cc.ordering[0]));
}

// ------------------------------------------------- end-to-end behaviour

TEST_F(PfFixture, CommitsFlowThroughFirewall) {
  Build();
  uint64_t commits = RunLoad(400);
  EXPECT_GT(commits, 400u);
  // Execution really happened on the execution nodes, not ordering.
  EXPECT_GT(sys->execution_node(0, 0)->core().executed_txs(), 0u);
  EXPECT_EQ(sys->ordering_node(0, 0)->exec_core().executed_txs(), 0u);
}

TEST_F(PfFixture, CorruptExecutorRepliesAreFiltered) {
  // A Byzantine executor stuffs bogus data into replies; with g=1 the
  // other two executors' matching replies still certify, and the bogus
  // value never gathers g+1 shares.
  Build();
  sys->execution_node(0, 0)->SetCorruptReplies(true);
  uint64_t commits = RunLoad(300);
  EXPECT_GT(commits, 300u);  // liveness preserved
}

TEST_F(PfFixture, CrashedFilterToleratedByRowRedundancy) {
  // h+1 filters per row: one crashed filter leaves a live path.
  Build();
  sys->filter_node(0, 0, 0)->Crash();
  sys->filter_node(1, 1, 1)->Crash();
  uint64_t commits = RunLoad(300);
  EXPECT_GT(commits, 300u);
}

TEST_F(PfFixture, CrashedExecutionNodeTolerated) {
  Build();
  sys->execution_node(0, 2)->Crash();
  uint64_t commits = RunLoad(300);
  EXPECT_GT(commits, 300u);
}

TEST_F(PfFixture, ForgedExecOrderRejectedByFilters) {
  // A message with an invalid commit certificate injected at a filter is
  // dropped, never reaching execution.
  Build();
  auto block = std::make_shared<Block>();
  block->id.alpha = {CollectionId(EnterpriseSet{0}), 0, 1};
  Transaction tx;
  tx.collection = block->id.alpha.collection;
  tx.ops.push_back(TxOp{TxOp::Kind::kWrite, 1, 777, {}});
  block->txs.push_back(tx);
  block->Seal();

  auto eo = std::make_shared<ExecOrderMsg>();
  eo->block = block;
  eo->cert.block_digest = block->Digest();
  eo->cert.direct = true;
  eo->cert.sigs.push_back(sys->env().keystore.Forge(3));
  eo->alpha_here = block->id.alpha;

  NodeId bottom = sys->directory().Cluster(0).filter_rows[0][0];
  NodeId order0 = sys->directory().Cluster(0).ordering[0];
  // Inject "from" an ordering node (link allowed) with a bad cert.
  sys->net().Send(order0, bottom, eo);
  sys->env().sim.RunAll();
  EXPECT_EQ(sys->execution_node(0, 0)->core().executed_blocks(), 0u);
  EXPECT_GE(sys->env().metrics.Get("firewall.filtered_bad_cert"), 1u);
}

TEST_F(PfFixture, ReplyCertificatesVerifiableByClients) {
  Build();
  uint64_t commits = RunLoad(200);
  ASSERT_GT(commits, 0u);
  EXPECT_EQ(sys->env().metrics.Get("client.bad_reply_cert"), 0u);
  EXPECT_EQ(sys->env().metrics.Get("client.short_reply_cert"), 0u);
}

TEST_F(PfFixture, ByzantineFilterContainedByRowRedundancy) {
  // One Byzantine filter per row corrupts everything it forwards. With
  // h+1 = 2 filters per row there is still a fully-correct path, and the
  // corrupted copies are dropped by the verification at the next hop
  // (§3.4: a row of non-faulty filters stops malicious messages).
  Build();
  sys->filter_node(0, 0, 1)->SetByzantine(true);
  sys->filter_node(0, 1, 0)->SetByzantine(true);
  uint64_t commits = RunLoad(250);
  EXPECT_GT(commits, 250u);  // liveness through the clean path
  // Corrupted certificates were detected somewhere downstream.
  EXPECT_GT(sys->env().metrics.Get("firewall.filtered_bad_cert") +
                sys->env().metrics.Get("exec.bad_cert") +
                sys->env().metrics.Get("client.bad_reply_cert") +
                sys->env().metrics.Get("firewall.filtered_bad_cert_share"),
            0u);
  // And no corrupted result was ever accepted by a client: every settled
  // transaction implies a valid certificate, which requires g+1 honest
  // matching executions.
  EXPECT_TRUE(sys->VerifyAllLedgers().ok());
}

TEST_F(PfFixture, GeneralCaseWiderFirewall) {
  // h = 2: 3x3 filter grid still commits.
  SystemParams p = PfParams();
  p.h = 2;
  Build(p);
  const ClusterConfig& cc = sys->directory().Cluster(0);
  ASSERT_EQ(cc.filter_rows.size(), 3u);
  EXPECT_EQ(cc.filter_rows[0].size(), 3u);
  uint64_t commits = RunLoad(200);
  EXPECT_GT(commits, 200u);
}

// --------------------------------------------- executor core semantics

TEST(ExecutorCoreTest, GammaReadsResolveAtCapturedVersion) {
  Env env(3);
  DataModel model(2);
  ASSERT_TRUE(model.AddWorkflow(EnterpriseSet::All(2)).ok());
  ExecutorCore core(&env, &model, 0, 0);
  KeyStore& ks = env.keystore;

  CollectionId root{EnterpriseSet::All(2)};
  CollectionId local{EnterpriseSet::Single(0)};

  auto mkblock = [&](CollectionId c, SeqNo n, std::vector<TxOp> ops,
                     std::vector<GammaEntry> gamma) {
    auto b = std::make_shared<Block>();
    b->id.alpha = {c, 0, n};
    b->id.gamma = std::move(gamma);
    Transaction tx;
    tx.collection = c;
    tx.shards = {0};
    tx.client_ts = n * 7 + static_cast<uint64_t>(c.members.mask());
    tx.ops = std::move(ops);
    b->txs.push_back(tx);
    b->Seal();
    return b;
  };
  auto submit = [&](BlockPtr b) {
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    cert.sigs.push_back(ks.Sign(0, cert.block_digest));
    LocalPart alpha = b->id.alpha;
    auto gamma = b->id.gamma;
    return core.Submit(b, cert, alpha, gamma, nullptr);
  };

  // root: key 5 = 100 at version 1, = 200 at version 2.
  ASSERT_TRUE(
      submit(mkblock(root, 1, {{TxOp::Kind::kWrite, 5, 100, {}}}, {})).ok());
  ASSERT_TRUE(
      submit(mkblock(root, 2, {{TxOp::Kind::kWrite, 5, 200, {}}}, {})).ok());

  // Local tx whose γ captured root at version 1 reads the OLD value even
  // though version 2 is already committed (paper §4.2: every replica
  // reads the captured state).
  TxOp dep{TxOp::Kind::kReadDep, 5, 0, root};
  auto b = mkblock(local, 1, {dep}, {{root, 1}});
  Sha256Digest result_at_1;
  core.Submit(b, [&] {
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    cert.sigs.push_back(ks.Sign(0, cert.block_digest));
    return cert;
  }(), b->id.alpha, b->id.gamma,
              [&](const ExecutorCore::ExecResult& r) {
                result_at_1 = r.result_digest;
              });

  // Same read with γ at version 2 yields a different result digest.
  auto b2 = mkblock(local, 2, {dep}, {{root, 2}});
  Sha256Digest result_at_2;
  CommitCertificate cert2;
  cert2.block_digest = b2->Digest();
  cert2.direct = true;
  cert2.sigs.push_back(ks.Sign(0, cert2.block_digest));
  core.Submit(b2, cert2, b2->id.alpha, b2->id.gamma,
              [&](const ExecutorCore::ExecResult& r) {
                result_at_2 = r.result_digest;
              });
  EXPECT_NE(result_at_1, result_at_2);
}

TEST(ExecutorCoreTest, BlocksWaitForGammaDependencies) {
  Env env(3);
  DataModel model(2);
  ASSERT_TRUE(model.AddWorkflow(EnterpriseSet::All(2)).ok());
  ExecutorCore core(&env, &model, 0, 0);

  CollectionId root{EnterpriseSet::All(2)};
  CollectionId local{EnterpriseSet::Single(0)};

  auto mk = [&](CollectionId c, SeqNo n, std::vector<GammaEntry> g) {
    auto b = std::make_shared<Block>();
    b->id.alpha = {c, 0, n};
    b->id.gamma = std::move(g);
    Transaction tx;
    tx.collection = c;
    tx.client_ts = n;
    tx.ops.push_back(TxOp{TxOp::Kind::kWrite, 1, 1, {}});
    b->txs.push_back(tx);
    b->Seal();
    return b;
  };
  auto cert_for = [&](const BlockPtr& b) {
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    cert.sigs.push_back(env.keystore.Sign(0, cert.block_digest));
    return cert;
  };

  // Local block depends on root:1, which has not committed here yet.
  bool executed = false;
  auto blocked = mk(local, 1, {{root, 1}});
  ASSERT_TRUE(core.Submit(blocked, cert_for(blocked), blocked->id.alpha,
                          blocked->id.gamma,
                          [&](const ExecutorCore::ExecResult&) {
                            executed = true;
                          })
                  .ok());
  EXPECT_FALSE(executed);
  EXPECT_EQ(core.pending_blocks(), 1u);

  // Committing root:1 unblocks it.
  auto r1 = mk(root, 1, {});
  ASSERT_TRUE(core.Submit(r1, cert_for(r1), r1->id.alpha, r1->id.gamma,
                          nullptr)
                  .ok());
  EXPECT_TRUE(executed);
  EXPECT_EQ(core.pending_blocks(), 0u);
}

TEST(ExecutorCoreTest, OutOfOrderBlocksExecuteInOrder) {
  Env env(3);
  DataModel model(2);
  ASSERT_TRUE(model.AddWorkflow(EnterpriseSet::All(2)).ok());
  ExecutorCore core(&env, &model, 0, 0);
  CollectionId local{EnterpriseSet::Single(0)};

  std::vector<SeqNo> executed;
  auto submit = [&](SeqNo n) {
    auto b = std::make_shared<Block>();
    b->id.alpha = {local, 0, n};
    Transaction tx;
    tx.collection = local;
    tx.client_ts = n;
    tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 1, 1, {}});
    b->txs.push_back(tx);
    b->Seal();
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    cert.sigs.push_back(env.keystore.Sign(0, cert.block_digest));
    LocalPart a = b->id.alpha;
    core.Submit(b, cert, a, {},
                [&executed, n](const ExecutorCore::ExecResult&) {
                  executed.push_back(n);
                });
  };
  submit(3);
  submit(2);
  EXPECT_TRUE(executed.empty());
  submit(1);
  EXPECT_EQ(executed, (std::vector<SeqNo>{1, 2, 3}));
}

}  // namespace
}  // namespace qanaat
