#include <gtest/gtest.h>

#include <string>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace qanaat {
namespace {

// ---------------------------------------------------------------- SHA-256
// Known-answer tests from FIPS 180-4 / NIST examples.

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Hash("").ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Hash("abc").ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .ToHex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  std::string m(1000000, 'a');
  EXPECT_EQ(Sha256::Hash(m).ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string data =
      "the quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789";
  Sha256 h;
  // Feed in awkward chunk sizes spanning the 64-byte block boundary.
  for (size_t i = 0; i < data.size();) {
    size_t chunk = (i % 7) + 1;
    chunk = std::min(chunk, data.size() - i);
    h.Update(data.data() + i, chunk);
    i += chunk;
  }
  EXPECT_EQ(h.Finalize().ToHex(), Sha256::Hash(data).ToHex());
}

TEST(Sha256Test, ExactBlockBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string m(len, 'x');
    Sha256 h;
    h.Update(m);
    // Must equal one-shot (pads internally consistent at boundary sizes).
    EXPECT_EQ(h.Finalize(), Sha256::Hash(m)) << "len=" << len;
  }
}

TEST(Sha256Test, DigestPrefixAndOrdering) {
  auto a = Sha256::Hash("a");
  auto b = Sha256::Hash("b");
  EXPECT_NE(a, b);
  EXPECT_NE(a.Prefix64(), b.Prefix64());
  EXPECT_TRUE(a < b || b < a);
}

TEST(Sha256Test, ResetAfterFinalize) {
  Sha256 h;
  h.Update("abc");
  h.Finalize();
  h.Update("abc");
  EXPECT_EQ(h.Finalize().ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------- signatures

TEST(SignerTest, SignVerifyRoundTrip) {
  KeyStore ks(123);
  auto d = Sha256::Hash("message");
  Signature sig = ks.Sign(7, d);
  EXPECT_EQ(sig.signer, 7u);
  EXPECT_TRUE(ks.Verify(sig, d));
}

TEST(SignerTest, WrongDigestRejected) {
  KeyStore ks(123);
  Signature sig = ks.Sign(7, Sha256::Hash("message"));
  EXPECT_FALSE(ks.Verify(sig, Sha256::Hash("other")));
}

TEST(SignerTest, WrongSignerRejected) {
  KeyStore ks(123);
  auto d = Sha256::Hash("message");
  Signature sig = ks.Sign(7, d);
  sig.signer = 8;  // claim someone else signed it
  EXPECT_FALSE(ks.Verify(sig, d));
}

TEST(SignerTest, DifferentKeyStoresIncompatible) {
  KeyStore ks1(1), ks2(2);
  auto d = Sha256::Hash("m");
  EXPECT_FALSE(ks2.Verify(ks1.Sign(3, d), d));
}

TEST(SignerTest, ForgeNeverVerifies) {
  KeyStore ks(55);
  auto d = Sha256::Hash("m");
  EXPECT_FALSE(ks.Verify(ks.Forge(3), d));
}

TEST(SignerTest, ShareAndSignDomainsSeparated) {
  KeyStore ks(9);
  auto d = Sha256::Hash("m");
  Signature share = ks.SignShare(4, d);
  EXPECT_TRUE(ks.VerifyShare(share, d));
  // A threshold share is not a plain signature and vice versa.
  EXPECT_FALSE(ks.Verify(share, d));
  EXPECT_FALSE(ks.VerifyShare(ks.Sign(4, d), d));
}

TEST(SignerTest, SerializationRoundTrip) {
  KeyStore ks(77);
  auto d = Sha256::Hash("x");
  Signature sig = ks.Sign(12, d);
  Encoder enc;
  sig.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  Signature out;
  ASSERT_TRUE(Signature::DecodeFrom(&dec, &out));
  EXPECT_EQ(out, sig);
  EXPECT_TRUE(ks.Verify(out, d));
}

// --------------------------------------------------------- ThresholdCert

TEST(ThresholdCertTest, ValidWithQuorum) {
  KeyStore ks(5);
  auto d = Sha256::Hash("block");
  ThresholdCert cert;
  for (NodeId i = 0; i < 3; ++i) cert.shares.push_back(ks.SignShare(i, d));
  EXPECT_TRUE(cert.Valid(ks, d, 3));
  EXPECT_FALSE(cert.Valid(ks, d, 4));
}

TEST(ThresholdCertTest, DuplicateSignersDontCount) {
  KeyStore ks(5);
  auto d = Sha256::Hash("block");
  ThresholdCert cert;
  cert.shares.push_back(ks.SignShare(1, d));
  cert.shares.push_back(ks.SignShare(1, d));
  cert.shares.push_back(ks.SignShare(2, d));
  EXPECT_FALSE(cert.Valid(ks, d, 3));
}

TEST(ThresholdCertTest, OneBadShareInvalidates) {
  KeyStore ks(5);
  auto d = Sha256::Hash("block");
  ThresholdCert cert;
  cert.shares.push_back(ks.SignShare(1, d));
  cert.shares.push_back(ks.SignShare(2, d));
  cert.shares.push_back(ks.Forge(3));
  EXPECT_FALSE(cert.Valid(ks, d, 2));
}

TEST(ThresholdCertTest, SerializationRoundTrip) {
  KeyStore ks(5);
  auto d = Sha256::Hash("block");
  ThresholdCert cert;
  for (NodeId i = 0; i < 4; ++i) cert.shares.push_back(ks.SignShare(i, d));
  Encoder enc;
  cert.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  ThresholdCert out;
  ASSERT_TRUE(ThresholdCert::DecodeFrom(&dec, &out));
  EXPECT_TRUE(out.Valid(ks, d, 4));
}

// ----------------------------------------------------------------- Merkle

TEST(MerkleTest, SingleLeafRootIsLeaf) {
  auto leaf = Sha256::Hash("tx0");
  MerkleTree t({leaf});
  EXPECT_EQ(t.Root(), leaf);
}

TEST(MerkleTest, EmptyTreeDefined) {
  MerkleTree t({});
  EXPECT_EQ(t.Root(), Sha256::Hash("", 0));
}

TEST(MerkleTest, ProofsVerifyForAllLeaves) {
  for (size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u}) {
    std::vector<Sha256Digest> leaves;
    for (size_t i = 0; i < n; ++i)
      leaves.push_back(Sha256::Hash("tx" + std::to_string(i)));
    MerkleTree t(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto proof = t.Prove(i);
      EXPECT_TRUE(MerkleTree::Verify(leaves[i], i, proof, t.Root()))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, WrongLeafFailsProof) {
  std::vector<Sha256Digest> leaves;
  for (int i = 0; i < 8; ++i)
    leaves.push_back(Sha256::Hash("tx" + std::to_string(i)));
  MerkleTree t(leaves);
  auto proof = t.Prove(3);
  EXPECT_FALSE(
      MerkleTree::Verify(Sha256::Hash("evil"), 3, proof, t.Root()));
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  std::vector<Sha256Digest> leaves;
  for (int i = 0; i < 8; ++i)
    leaves.push_back(Sha256::Hash("tx" + std::to_string(i)));
  auto root = MerkleTree::RootOf(leaves);
  for (int i = 0; i < 8; ++i) {
    auto mutated = leaves;
    mutated[i] = Sha256::Hash("mut" + std::to_string(i));
    EXPECT_NE(MerkleTree::RootOf(mutated), root);
  }
}

TEST(MerkleTest, OrderMatters) {
  auto a = Sha256::Hash("a");
  auto b = Sha256::Hash("b");
  EXPECT_NE(MerkleTree::RootOf({a, b}), MerkleTree::RootOf({b, a}));
}

}  // namespace
}  // namespace qanaat
