// Property-based tests: invariants checked over randomized inputs and
// parameterized sweeps (TEST_P), complementing the example-based suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "collections/tx_id.h"
#include "common/enterprise_set.h"
#include "common/rng.h"
#include "consensus/batcher.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "firewall/executor_core.h"
#include "ledger/dag_ledger.h"
#include "store/mvstore.h"

namespace qanaat {
namespace {

// ----------------------------------------------- EnterpriseSet lattice

class LatticeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LatticeProperty, SubsetRelationIsAPartialOrder) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    EnterpriseSet a(static_cast<uint16_t>(rng.Next() & 0xff));
    EnterpriseSet b(static_cast<uint16_t>(rng.Next() & 0xff));
    EnterpriseSet c(static_cast<uint16_t>(rng.Next() & 0xff));
    // Reflexive.
    EXPECT_TRUE(a.IsSubsetOf(a));
    // Antisymmetric.
    if (a.IsSubsetOf(b) && b.IsSubsetOf(a)) {
      EXPECT_EQ(a, b);
    }
    // Transitive.
    if (a.IsSubsetOf(b) && b.IsSubsetOf(c)) {
      EXPECT_TRUE(a.IsSubsetOf(c));
    }
    // Union is an upper bound, intersection a lower bound.
    EXPECT_TRUE(a.IsSubsetOf(a.Union(b)));
    EXPECT_TRUE(a.Intersect(b).IsSubsetOf(a));
    // |A| + |B| = |A∪B| + |A∩B|.
    EXPECT_EQ(a.size() + b.size(),
              a.Union(b).size() + a.Intersect(b).size());
  }
}

TEST_P(LatticeProperty, ReadPermissionFollowsOrderDependency) {
  // CanRead ≡ OrderDependentOn ≡ ⊆; CanVerify ≡ ⊃ — and they never
  // both hold unless equal/impossible.
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 200; ++i) {
    CollectionId x{EnterpriseSet(static_cast<uint16_t>(rng.Next() & 0xff))};
    CollectionId y{EnterpriseSet(static_cast<uint16_t>(rng.Next() & 0xff))};
    EXPECT_EQ(x.CanRead(y), x.members.IsSubsetOf(y.members));
    EXPECT_EQ(x.CanVerify(y), y.members.IsProperSubsetOf(x.members));
    if (x.CanRead(y) && x.CanVerify(y)) {
      ADD_FAILURE() << "read and verify cannot both hold";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatticeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --------------------------------------------------- SHA-256 streaming

class ShaChunking : public ::testing::TestWithParam<int> {};

TEST_P(ShaChunking, IncrementalEqualsOneShotForAnyChunking) {
  Rng rng(GetParam());
  std::string data;
  for (int i = 0; i < 777; ++i) {
    data.push_back(static_cast<char>(rng.Next() & 0xff));
  }
  Sha256 h;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t chunk = 1 + rng.Uniform(100);
    chunk = std::min(chunk, data.size() - pos);
    h.Update(data.data() + pos, chunk);
    pos += chunk;
  }
  EXPECT_EQ(h.Finalize(), Sha256::Hash(data));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShaChunking,
                         ::testing::Range(100, 110));

// ------------------------------------------------------ Merkle proofs

class MerkleProperty : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProperty, ProofForWrongIndexFails) {
  int n = GetParam();
  std::vector<Sha256Digest> leaves;
  for (int i = 0; i < n; ++i) {
    leaves.push_back(Sha256::Hash("leaf" + std::to_string(i)));
  }
  MerkleTree t(leaves);
  for (int i = 0; i < n; ++i) {
    auto proof = t.Prove(i);
    // The right (leaf, index) verifies; the same proof with another leaf
    // or a different index does not (except the duplicated-node corner
    // at the end of odd levels, which never changes the attested leaf).
    EXPECT_TRUE(MerkleTree::Verify(leaves[i], i, proof, t.Root()));
    int j = (i + 1) % n;
    if (j != i) {
      EXPECT_FALSE(MerkleTree::Verify(leaves[j], i, proof, t.Root()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProperty,
                         ::testing::Values(2, 3, 5, 8, 9, 16, 31, 33));

// ------------------------------------------- MvStore snapshot semantics

class MvStoreProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MvStoreProperty, SnapshotReadEqualsSerialReplay) {
  // Model: apply random writes at increasing versions; GetAt(k, v) must
  // equal the last write to k at version <= v in the reference log.
  Rng rng(GetParam());
  MvStore store;
  std::map<std::pair<uint64_t, SeqNo>, int64_t> log;  // (key, ver) -> val
  SeqNo version = 0;
  for (int i = 0; i < 500; ++i) {
    ++version;
    int writes = 1 + static_cast<int>(rng.Uniform(4));
    for (int w = 0; w < writes; ++w) {
      uint64_t key = rng.Uniform(20);
      auto val = static_cast<int64_t>(rng.Uniform(1000));
      ASSERT_TRUE(store.Put(key, val, version).ok());
      log[{key, version}] = val;
    }
  }
  for (int probe = 0; probe < 300; ++probe) {
    uint64_t key = rng.Uniform(20);
    SeqNo at = 1 + rng.Uniform(version);
    // Reference: scan the log backwards.
    const int64_t* expect = nullptr;
    for (SeqNo v = at; v >= 1 && expect == nullptr; --v) {
      auto it = log.find({key, v});
      if (it != log.end()) expect = &it->second;
    }
    auto got = store.GetAt(key, at);
    if (expect == nullptr) {
      EXPECT_FALSE(got.ok());
    } else {
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, *expect);
    }
  }
}

TEST_P(MvStoreProperty, TrimPreservesReadsAtOrAboveFloor) {
  Rng rng(GetParam() * 7 + 3);
  MvStore store;
  MvStore reference;
  for (SeqNo v = 1; v <= 200; ++v) {
    uint64_t key = rng.Uniform(5);
    auto val = static_cast<int64_t>(v * 10);
    ASSERT_TRUE(store.Put(key, val, v).ok());
    ASSERT_TRUE(reference.Put(key, val, v).ok());
  }
  store.TrimBelow(120);
  for (SeqNo at = 120; at <= 200; ++at) {
    for (uint64_t key = 0; key < 5; ++key) {
      auto a = store.GetAt(key, at);
      auto b = reference.GetAt(key, at);
      EXPECT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        EXPECT_EQ(*a, *b);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MvStoreProperty,
                         ::testing::Values(11, 22, 33, 44));

// --------------------------------------------- DAG ledger γ invariants

class LedgerGammaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LedgerGammaProperty, RandomMonotoneHistoriesAlwaysAudit) {
  Rng rng(GetParam());
  KeyStore ks(9);
  DagLedger ledger;
  CollectionId root{EnterpriseSet{0, 1, 2, 3}};
  CollectionId abc{EnterpriseSet{0, 1, 2}};
  CollectionId ab{EnterpriseSet{0, 1}};
  std::map<CollectionId, SeqNo> state;  // simulated committed state

  auto append = [&](const CollectionId& c,
                    std::vector<CollectionId> deps) -> Status {
    auto b = std::make_shared<Block>();
    b->id.alpha = {c, 0, state[c] + 1};
    for (const auto& d : deps) {
      b->id.gamma.push_back({d, state[d]});
    }
    Transaction tx;
    tx.collection = c;
    tx.client_ts = rng.Next();
    tx.ops.push_back(TxOp{TxOp::Kind::kAdd, rng.Uniform(10), 1, {}});
    b->txs.push_back(tx);
    b->Seal();
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    for (NodeId n = 0; n < 3; ++n) {
      cert.sigs.push_back(ks.Sign(n, cert.block_digest));
    }
    Status st = ledger.Append(b, cert, 0);
    if (st.ok()) state[c]++;
    return st;
  };

  // Random interleaving of appends across the three chains; γ always
  // captures the current committed state, so every append must succeed
  // and the full audit must pass.
  for (int i = 0; i < 300; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        ASSERT_TRUE(append(root, {}).ok());
        break;
      case 1:
        ASSERT_TRUE(append(abc, {root}).ok());
        break;
      default:
        ASSERT_TRUE(append(ab, {abc, root}).ok());
        break;
    }
  }
  EXPECT_TRUE(ledger.VerifyChain(ks, 3).ok());
  // Heads equal the simulated state.
  EXPECT_EQ(ledger.HeadOf({root, 0}), state[root]);
  EXPECT_EQ(ledger.HeadOf({abc, 0}), state[abc]);
  EXPECT_EQ(ledger.HeadOf({ab, 0}), state[ab]);
}

TEST_P(LedgerGammaProperty, RegressingGammaAlwaysRejected) {
  Rng rng(GetParam() + 1000);
  KeyStore ks(9);
  DagLedger ledger;
  CollectionId root{EnterpriseSet{0, 1}};
  CollectionId local{EnterpriseSet{0}};

  auto make = [&](SeqNo n, SeqNo gamma_m) {
    auto b = std::make_shared<Block>();
    b->id.alpha = {local, 0, n};
    b->id.gamma.push_back({root, gamma_m});
    Transaction tx;
    tx.collection = local;
    tx.client_ts = n;
    tx.ops.push_back(TxOp{TxOp::Kind::kAdd, 1, 1, {}});
    b->txs.push_back(tx);
    b->Seal();
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    cert.sigs.push_back(ks.Sign(0, cert.block_digest));
    return std::make_pair(b, cert);
  };

  SeqNo gamma = 5;
  for (SeqNo n = 1; n <= 50; ++n) {
    // γ advances by a random non-negative amount...
    gamma += rng.Uniform(3);
    auto [b, cert] = make(n, gamma);
    ASSERT_TRUE(ledger.Append(b, cert, 0).ok());
    // ...and any attempt to regress is rejected.
    if (gamma > 0) {
      auto [bad, bad_cert] = make(n + 1, gamma - 1 - rng.Uniform(gamma));
      EXPECT_EQ(ledger.Append(bad, bad_cert, 0).code(),
                StatusCode::kFailedPrecondition);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LedgerGammaProperty,
                         ::testing::Values(5, 6, 7));

// ------------------------------------------------ executor determinism

class ExecutorDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorDeterminism, ReplicasProduceIdenticalResults) {
  // Two independent executor cores fed the same blocks must produce
  // byte-identical result digests and store contents — the property that
  // lets g+1 matching replies certify execution (paper §4.2).
  Rng rng(GetParam());
  Env env1(1), env2(2);  // different environments, same inputs
  DataModel model(2);
  ASSERT_TRUE(model.AddWorkflow(EnterpriseSet::All(2)).ok());
  ExecutorCore a(&env1, &model, 0, 0);
  ExecutorCore b(&env2, &model, 0, 0);
  KeyStore ks(3);

  CollectionId root{EnterpriseSet::All(2)};
  CollectionId local{EnterpriseSet::Single(0)};
  std::map<CollectionId, SeqNo> seq;

  for (int i = 0; i < 100; ++i) {
    CollectionId c = rng.Uniform(2) ? root : local;
    auto blk = std::make_shared<Block>();
    blk->id.alpha = {c, 0, ++seq[c]};
    if (c == local) blk->id.gamma.push_back({root, seq[root]});
    int ntx = 1 + static_cast<int>(rng.Uniform(5));
    for (int t = 0; t < ntx; ++t) {
      Transaction tx;
      tx.collection = c;
      tx.client = 1;
      tx.client_ts = static_cast<uint64_t>(i) * 100 + t;
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, rng.Uniform(30),
                            static_cast<int64_t>(rng.Uniform(100)) - 50,
                            {}});
      if (c == local && rng.Uniform(3) == 0) {
        tx.ops.push_back(
            TxOp{TxOp::Kind::kReadDep, rng.Uniform(30), 0, root});
      }
      blk->txs.push_back(std::move(tx));
    }
    blk->Seal();
    CommitCertificate cert;
    cert.block_digest = blk->Digest();
    cert.direct = true;
    cert.sigs.push_back(ks.Sign(0, cert.block_digest));

    Sha256Digest ra, rb;
    ASSERT_TRUE(a.Submit(blk, cert, blk->id.alpha, blk->id.gamma,
                         [&ra](const ExecutorCore::ExecResult& r) {
                           ra = r.result_digest;
                         })
                    .ok());
    ASSERT_TRUE(b.Submit(blk, cert, blk->id.alpha, blk->id.gamma,
                         [&rb](const ExecutorCore::ExecResult& r) {
                           rb = r.result_digest;
                         })
                    .ok());
    ASSERT_EQ(ra, rb) << "divergent execution at block " << i;
  }
  // Store contents agree on every key.
  for (uint64_t key = 0; key < 30; ++key) {
    auto va = a.StoreOf(local).Get(key);
    auto vb = b.StoreOf(local).Get(key);
    ASSERT_EQ(va.ok(), vb.ok());
    if (va.ok()) {
      EXPECT_EQ(*va, *vb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDeterminism,
                         ::testing::Values(101, 202, 303, 404, 505));

// --------------------------------------------------- Zipf distribution

TEST(ZipfProperty, FrequenciesDecreaseWithRank) {
  Rng rng(77);
  for (double s : {0.5, 1.0, 2.0}) {
    Zipf z(1000, s);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i) counts[z.Sample(rng)]++;
    // Coarse monotonicity over rank buckets.
    int head = counts[0] + counts[1] + counts[2];
    int mid = counts[10] + counts[11] + counts[12];
    int tail = counts[500] + counts[501] + counts[502];
    EXPECT_GT(head, mid);
    EXPECT_GE(mid, tail);
  }
}

// ---------------------------------- Batcher under chaotic interleavings

class BatcherProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatcherProperty, ConservationUnderRandomTimersAndCrashes) {
  // Model a host that interleaves adds across flows with timers firing
  // in arbitrary order, duplicated/stale timer tokens, forced flushes,
  // and crash-style resets (all armed timers die, pending items drop).
  // Invariants:
  //  * every item is flushed at most once, in FIFO order per flow;
  //  * after the final FlushAll, every item was either flushed or lost
  //    to a crash reset — never silently retained;
  //  * no batch exceeds max_batch; size-closed batches are exactly full;
  //  * a crash-reset batcher keeps working (the armed-timer flags must
  //    not outlive the timers, or timeout flushes stop forever).
  Rng rng(GetParam());
  BatcherConfig cfg;
  cfg.max_batch = 1 + static_cast<int>(rng.Uniform(8));
  cfg.flush_timeout_us = 1000;

  std::vector<uint64_t> armed_tokens;  // live timers (die on crash)
  std::map<int, std::vector<uint64_t>> flushed_per_flow;
  std::set<uint64_t> flushed;
  uint64_t lost_to_crash = 0;

  Batcher<uint64_t, int> batcher(
      cfg,
      [&](SimTime /*delay*/, uint64_t token) { armed_tokens.push_back(token); },
      [&](const int& flow, std::vector<uint64_t> items, BatchClose why) {
        ASSERT_LE(items.size(), static_cast<size_t>(cfg.max_batch));
        if (why == BatchClose::kSize) {
          EXPECT_EQ(items.size(), static_cast<size_t>(cfg.max_batch));
        }
        for (uint64_t it : items) {
          EXPECT_TRUE(flushed.insert(it).second) << "item flushed twice";
          flushed_per_flow[flow].push_back(it);
        }
      });

  uint64_t next_item = 0;
  std::map<int, uint64_t> pending_count;
  for (int step = 0; step < 3000; ++step) {
    switch (rng.Uniform(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
      case 5: {  // add an item to a random flow
        int flow = static_cast<int>(rng.Uniform(4));
        batcher.Add(flow, next_item++);
        break;
      }
      case 6: {  // fire a random live timer (arbitrary order)
        if (armed_tokens.empty()) break;
        size_t i = rng.Uniform(armed_tokens.size());
        uint64_t tok = armed_tokens[i];
        armed_tokens.erase(armed_tokens.begin() + static_cast<long>(i));
        batcher.OnTimer(tok);
        break;
      }
      case 7: {  // fire a stale/duplicated token: must be a no-op
        batcher.OnTimer(rng.Next());
        break;
      }
      case 8: {  // forced flush (leadership change)
        if (rng.Uniform(4) == 0) batcher.FlushAll();
        break;
      }
      case 9: {  // crash: timers die, pending items are lost
        if (rng.Uniform(8) != 0) break;
        uint64_t pending = batcher.items_in() - flushed.size() -
                           lost_to_crash;
        lost_to_crash += pending;
        armed_tokens.clear();
        batcher.Reset();
        break;
      }
    }
  }
  // Quiesce: fire every remaining timer, then force-flush.
  for (uint64_t tok : armed_tokens) batcher.OnTimer(tok);
  batcher.FlushAll();

  // Conservation: in = flushed + lost.
  EXPECT_EQ(batcher.items_in(), flushed.size() + lost_to_crash);
  // FIFO per flow.
  for (const auto& [flow, items] : flushed_per_flow) {
    for (size_t i = 1; i < items.size(); ++i) {
      EXPECT_LT(items[i - 1], items[i]) << "flow " << flow
                                        << " flushed out of order";
    }
  }
  // The batcher still works after everything above.
  uint64_t before = batcher.batches_closed();
  for (int i = 0; i < cfg.max_batch; ++i) batcher.Add(0, next_item++);
  EXPECT_EQ(batcher.batches_closed(), before + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatcherProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ------------------------------------------------- TxId predicates

class TxIdProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxIdProperty, GlobalConsistencyIsIntersectionMonotonicity) {
  Rng rng(GetParam());
  CollectionId chain{EnterpriseSet{0, 1}};
  std::vector<CollectionId> deps = {
      CollectionId{EnterpriseSet{0, 1, 2}},
      CollectionId{EnterpriseSet{0, 1, 3}},
      CollectionId{EnterpriseSet{0, 1, 2, 3}},
  };
  for (int i = 0; i < 300; ++i) {
    TxId a, b;
    a.alpha = {chain, 0, 1};
    b.alpha = {chain, 0, 2};
    bool violates = false;
    for (const auto& d : deps) {
      bool in_a = rng.Uniform(2);
      bool in_b = rng.Uniform(2);
      SeqNo ma = rng.Uniform(10);
      SeqNo mb = rng.Uniform(10);
      if (in_a) a.gamma.push_back({d, ma});
      if (in_b) b.gamma.push_back({d, mb});
      if (in_a && in_b && ma > mb) violates = true;
    }
    EXPECT_EQ(CheckGlobalConsistency(a, b).ok(), !violates);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxIdProperty,
                         ::testing::Values(42, 43, 44, 45));

}  // namespace
}  // namespace qanaat
