// Ablations beyond the paper's figures (DESIGN.md §6): the effect of the
// design choices Qanaat makes.
//   (a) batch size — throughput/latency trade-off of block batching;
//   (b) firewall depth h — confidentiality redundancy vs. cost;
//   (c) γ capture — the consistency violations a naive per-collection
//       ledger (solution 2 of §3.3) would admit, measured as the rate of
//       order-dependent reads that would have observed a different state
//       than the one captured at ordering time.

#include "bench_common.h"
#include "qanaat/system.h"

using namespace qanaat;
using namespace qanaat::bench;

static void BatchSizeAblation() {
  PrintSubfigureHeader("(a) batch size (Flt-B, 10% cross-enterprise)");
  std::printf("%-10s %-14s %-12s\n", "batch", "tput[tps]", "avg_lat[ms]");
  for (int batch : {1, 10, 50, 100, 200}) {
    QanaatSeries s = AllQanaatSeries()[2];  // Flt-B
    QanaatRunConfig cfg =
        MakeQanaatConfig(s, CrossKind::kIntraShardCrossEnterprise, 0.1);
    cfg.params.batch_size = batch;
    double guess = s.capacity_guess * (batch < 10 ? 0.25 : 1.0);
    SweepResult r = SmartSweep(
        [&cfg](double tps) { return RunQanaatPoint(cfg, tps); }, guess);
    std::printf("%-10d %-14.0f %-12.2f\n", batch, r.knee.measured_tps,
                r.knee.avg_latency_ms);
    std::fflush(stdout);
  }
  std::printf("\n");
}

static void FirewallDepthAblation() {
  PrintSubfigureHeader("(b) privacy-firewall depth h (Flt-B(PF))");
  std::printf("%-10s %-14s %-12s %-14s\n", "h", "tput[tps]", "avg_lat[ms]",
              "filter nodes");
  for (int h : {1, 2, 3}) {
    QanaatSeries s = AllQanaatSeries()[3];  // Flt-B(PF)
    QanaatRunConfig cfg =
        MakeQanaatConfig(s, CrossKind::kIntraShardCrossEnterprise, 0.1);
    cfg.params.h = h;
    SweepResult r = SmartSweep(
        [&cfg](double tps) { return RunQanaatPoint(cfg, tps); },
        s.capacity_guess);
    std::printf("%-10d %-14.0f %-12.2f %-14d\n", h, r.knee.measured_tps,
                r.knee.avg_latency_ms, (h + 1) * (h + 1) * 16);
    std::fflush(stdout);
  }
  std::printf("\n");
}

static void GammaCaptureAblation() {
  PrintSubfigureHeader("(c) γ capture: stale reads a per-collection ledger "
                       "would admit");
  // Run a dependency-read-heavy workload and count how often the
  // γ-captured version differs from the executor's latest version at
  // execution time — each difference is a read that, without γ, would
  // have returned a different value on different replicas (the
  // inconsistency of §3.3's solution 2).
  QanaatSystem::Options opts;
  opts.params.failure_model = FailureModel::kByzantine;
  opts.params.family = ProtocolFamily::kFlattened;
  QanaatSystem sys(std::move(opts));
  WorkloadParams wl;
  wl.cross_fraction = 0.3;
  wl.dep_read_fraction = 0.5;
  for (int i = 0; i < 8; ++i) {
    ClientMachine* c = sys.AddClient(wl, 2500);
    c->Start(0, kSecond, 0, kSecond);
  }
  sys.env().sim.Run(1500 * kMillisecond);

  // Census over the ledgers: for every committed block with γ entries,
  // compare the captured sequence against the executing cluster's state
  // of that collection at its commit time (proxy: its final state).
  uint64_t dep_blocks = 0, stale_at_commit = 0;
  for (int cl = 0; cl < sys.cluster_count(); ++cl) {
    const DagLedger& lg = sys.ordering_node(cl, 0)->exec_core().ledger();
    for (size_t i = 0; i < lg.size(); ++i) {
      const auto& e = lg.entry(i);
      if (e.gamma.empty()) continue;
      dep_blocks++;
      for (const auto& ge : e.gamma) {
        if (lg.StateOf(ge.collection) > ge.m) {
          stale_at_commit++;
          break;
        }
      }
    }
  }
  std::printf(
      "blocks with γ: %llu; blocks whose captured state was already "
      "superseded by commit time: %llu (%.1f%%)\n",
      static_cast<unsigned long long>(dep_blocks),
      static_cast<unsigned long long>(stale_at_commit),
      dep_blocks ? 100.0 * stale_at_commit / dep_blocks : 0.0);
  std::printf(
      "each such block would read different values on different replicas "
      "without γ capture — the paper's argument for solution 3 (§3.3).\n\n");
}

int main() {
  std::printf("Ablations (DESIGN.md §6)\n\n");
  BatchSizeAblation();
  FirewallDepthAblation();
  GammaCaptureAblation();
  return 0;
}
