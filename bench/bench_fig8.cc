// Reproduces Figure 8 (paper §5.2): workloads with 10%, 50% and 90%
// cross-shard intra-enterprise transactions. Flt-C runs the crash-only
// fast path of §4.4.2 and should dominate; Fabric is shard-insensitive.

#include "bench_common.h"

int main() {
  qanaat::bench::RunCrossFigure(
      "Figure 8 — cross-shard intra-enterprise transactions",
      qanaat::CrossKind::kCrossShardIntraEnterprise,
      /*include_fabric=*/true);
  return 0;
}
