// Micro-benchmarks (google-benchmark) for the core data structures and
// crypto primitives — not a paper figure, but useful for profiling the
// substrate that every experiment runs on.

#include <benchmark/benchmark.h>

#include "collections/tx_id.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "ledger/dag_ledger.h"
#include "store/mvstore.h"

namespace qanaat {
namespace {

void BM_Sha256_1KB(benchmark::State& state) {
  std::string data(1024, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_SignVerify(benchmark::State& state) {
  KeyStore ks(1);
  auto d = Sha256::Hash("message");
  for (auto _ : state) {
    Signature sig = ks.Sign(1, d);
    benchmark::DoNotOptimize(ks.Verify(sig, d));
  }
}
BENCHMARK(BM_SignVerify);

void BM_MerkleRoot(benchmark::State& state) {
  std::vector<Sha256Digest> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back(Sha256::Hash(std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::RootOf(leaves));
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(16)->Arg(128)->Arg(1024);

void BM_MvStorePut(benchmark::State& state) {
  MvStore store;
  SeqNo v = 0;
  uint64_t k = 0;
  for (auto _ : state) {
    store.Put(k++ % 10000, 42, ++v);
  }
}
BENCHMARK(BM_MvStorePut);

void BM_MvStoreSnapshotRead(benchmark::State& state) {
  MvStore store;
  for (SeqNo v = 1; v <= 1000; ++v) {
    store.Put(7, int64_t(v), v);
  }
  SeqNo at = 0;
  for (auto _ : state) {
    at = at % 1000 + 1;
    benchmark::DoNotOptimize(store.GetAt(7, at));
  }
}
BENCHMARK(BM_MvStoreSnapshotRead);

void BM_TxIdConsistencyCheck(benchmark::State& state) {
  CollectionId ab{EnterpriseSet{0, 1}};
  CollectionId root{EnterpriseSet{0, 1, 2, 3}};
  TxId a, b;
  a.alpha = {ab, 0, 1};
  a.gamma = {{root, 3}, {CollectionId{EnterpriseSet{0, 1, 2}}, 2}};
  b.alpha = {ab, 0, 2};
  b.gamma = a.gamma;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CheckLocalConsistency(a, b));
    benchmark::DoNotOptimize(CheckGlobalConsistency(a, b));
  }
}
BENCHMARK(BM_TxIdConsistencyCheck);

void BM_LedgerAppend(benchmark::State& state) {
  KeyStore ks(1);
  CollectionId local{EnterpriseSet{0}};
  int batch = static_cast<int>(state.range(0));
  SeqNo n = 0;
  DagLedger ledger;
  for (auto _ : state) {
    auto b = std::make_shared<Block>();
    b->id.alpha = {local, 0, ++n};
    for (int i = 0; i < batch; ++i) {
      Transaction tx;
      tx.collection = local;
      tx.client_ts = n * 1000 + i;
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, uint64_t(i), 1, {}});
      b->txs.push_back(std::move(tx));
    }
    b->Seal();
    CommitCertificate cert;
    cert.block_digest = b->Digest();
    cert.direct = true;
    cert.sigs.push_back(ks.Sign(0, cert.block_digest));
    benchmark::DoNotOptimize(ledger.Append(b, cert, 0));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * batch);
}
BENCHMARK(BM_LedgerAppend)->Arg(10)->Arg(100);

void BM_BlockSealAndDigest(benchmark::State& state) {
  CollectionId local{EnterpriseSet{0}};
  for (auto _ : state) {
    auto b = std::make_shared<Block>();
    b->id.alpha = {local, 0, 1};
    for (int i = 0; i < 100; ++i) {
      Transaction tx;
      tx.collection = local;
      tx.client_ts = uint64_t(i);
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, uint64_t(i), 1, {}});
      b->txs.push_back(std::move(tx));
    }
    b->Seal();
    benchmark::DoNotOptimize(b->Digest());
  }
}
BENCHMARK(BM_BlockSealAndDigest);

}  // namespace
}  // namespace qanaat

BENCHMARK_MAIN();
