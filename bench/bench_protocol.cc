// Protocol hot-path baseline: isolates the three levers of the protocol
// overhaul and composes them in a fig7-style end-to-end sweep.
//
//  * paxos_slot_churn — a 3-node Multi-Paxos cluster wired with
//    zero-latency loopback delivery, driven through N slots: measures
//    the flat slot map, vote-set and delivery bookkeeping per decided
//    slot with no transport or CPU model in the way.
//  * signable_fresh / signable_memoized — ConsensusSignable derivations
//    with and without the per-slot SignableCache, on a protocol-shaped
//    access pattern (one miss, then hits for the same (view, slot,
//    digest) as votes arrive).
//  * wheel_storm — self-rearming timers over protocol-shaped delays
//    (sub-slot watchdogs to multi-second retries, with occasional
//    far-future spills to the heap): the hierarchical-wheel path.
//  * fig7_e2e — the bench_simcore fig7-style run at three cluster
//    scales (2x2, 4x4, 8x4 enterprises x shards) at a fixed per-cluster
//    offered load.
//
// Every record prints as a bench JSON line and the set is written to
// BENCH_protocol.json (override with a path argument). --quick runs one
// repetition with reduced counts for the CI bench-smoke job; committed
// baselines use the full default.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "consensus/paxos.h"
#include "qanaat/system.h"
#include "sim/network.h"

namespace qanaat {
namespace bench {
namespace {

double WallSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ------------------------------------------------------ paxos slot churn

struct ChurnResult {
  uint64_t slots = 0;
  uint64_t messages = 0;
  double wall_s = 0;
  double slots_per_sec = 0;
};

/// Drives a 3-node PaxosEngine cluster through `slots` decided slots with
/// synchronous loopback delivery: every broadcast/send invokes the peer
/// handler inline, so the measurement is pure engine bookkeeping.
ChurnResult RunPaxosSlotChurn(uint64_t slots) {
  Env env(7);
  constexpr int kN = 3;
  std::vector<std::unique_ptr<PaxosEngine>> engines(kN);
  std::vector<NodeId> cluster = {0, 1, 2};
  uint64_t delivered = 0;
  uint64_t messages = 0;

  for (int i = 0; i < kN; ++i) {
    EngineContext ctx;
    ctx.env = &env;
    ctx.self = static_cast<NodeId>(i);
    ctx.cluster = cluster;
    ctx.self_index = i;
    ctx.send = [&, i](NodeId to, MessageRef m) {
      ++messages;
      engines[to]->OnMessage(static_cast<NodeId>(i), m);
    };
    ctx.broadcast = [&, i](MessageRef m) {
      for (int p = 0; p < kN; ++p) {
        if (p == i) continue;
        ++messages;
        engines[p]->OnMessage(static_cast<NodeId>(i), m);
      }
    };
    ctx.start_timer = [](SimTime, uint64_t, uint64_t) {};  // never fires
    ctx.deliver = [&](uint64_t, const ConsensusValue&) { ++delivered; };
    engines[i] = std::make_unique<PaxosEngine>(std::move(ctx), /*f=*/1,
                                               /*base_timeout_us=*/100000);
  }

  auto t0 = std::chrono::steady_clock::now();
  ConsensusValue v;  // noop values: churn measures slot state, not blocks
  for (uint64_t s = 0; s < slots; ++s) engines[0]->Propose(v);
  ChurnResult r;
  r.slots = delivered / kN;
  r.messages = messages;
  r.wall_s = WallSince(t0);
  r.slots_per_sec = static_cast<double>(r.slots) / r.wall_s;
  return r;
}

// --------------------------------------------------- signable throughput

struct SignableResult {
  uint64_t ops = 0;
  double wall_s = 0;
  double ops_per_sec = 0;
  uint64_t check = 0;  // fold, so the loop cannot be optimized away
};

/// Protocol-shaped access pattern: per slot, one derivation then
/// `kHitsPerSlot` re-uses (self-sign, vote verifies, commit sign).
SignableResult RunSignable(uint64_t slot_count, bool memoized) {
  constexpr int kHitsPerSlot = 6;
  SignableResult r;
  Sha256Digest d;
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t s = 1; s <= slot_count; ++s) {
    d.bytes[0] = static_cast<uint8_t>(s);
    d.bytes[8] = static_cast<uint8_t>(s >> 8);
    if (memoized) {
      SignableCache cache;
      for (int k = 0; k < kHitsPerSlot; ++k) {
        r.check ^= cache.Get(3, s, d).Prefix64();
      }
    } else {
      for (int k = 0; k < kHitsPerSlot; ++k) {
        r.check ^= ConsensusSignable(3, s, d).Prefix64();
      }
    }
  }
  r.ops = slot_count * kHitsPerSlot;
  r.wall_s = WallSince(t0);
  r.ops_per_sec = static_cast<double>(r.ops) / r.wall_s;
  return r;
}

// -------------------------------------------------------- wheel storm

class ProtocolTimerActor : public Actor {
 public:
  ProtocolTimerActor(Env* env, uint64_t* left)
      : Actor(env, "wheel"), left_(left) {}
  void OnMessage(NodeId, const MessageRef&) override {}
  void OnTimer(uint64_t tag, uint64_t payload) override {
    if (*left_ == 0) return;
    --*left_;
    // Protocol-shaped delays: batcher deadline, slot watchdog, cross
    // retry, checkpoint horizon — plus a rare far-future spill that
    // exercises the wheel->heap boundary.
    static constexpr SimTime kDelays[] = {120, 2000, 65000, 400000};
    SimTime d = (payload % 97 == 0) ? (20 * kSecond)
                                    : kDelays[payload % 4];
    StartTimer(d, tag, payload + 1);
  }
  void Kick(int streams) {
    for (int i = 0; i < streams; ++i) StartTimer(1 + i, 1, i);
  }

 private:
  uint64_t* left_;
};

struct RawResult {
  uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

RawResult RunWheelStorm(uint64_t firings) {
  Env env(11);
  Network net(&env);
  uint64_t left = firings;
  ProtocolTimerActor actor(&env, &left);
  auto t0 = std::chrono::steady_clock::now();
  actor.Kick(64);
  RawResult r;
  r.events = env.sim.RunAll();
  r.wall_s = WallSince(t0);
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

// ------------------------------------------------------------ e2e sweep

struct E2eResult {
  int enterprises = 0;
  int shards = 0;
  double offered_tps = 0;
  double measured_tps = 0;
  double avg_lat_ms = 0;
  uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  double sim_time_ratio = 0;
};

/// The bench_simcore fig7-style configuration at a given scale, with the
/// per-cluster offered load held constant (1875 tps per cluster — the
/// 30k/16 of the committed fig7_e2e point).
E2eResult RunE2e(int enterprises, int shards) {
  QanaatSystem::Options opts;
  opts.params.num_enterprises = enterprises;
  opts.params.shards_per_enterprise = shards;
  opts.params.failure_model = FailureModel::kByzantine;
  opts.params.family = ProtocolFamily::kCoordinator;
  opts.seed = 1;
  QanaatSystem sys(std::move(opts));

  WorkloadParams wl;
  wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  wl.cross_fraction = 0.1;

  const int clusters = enterprises * shards;
  const double offered = 1875.0 * clusters;
  const int machines = clusters;
  const SimTime duration = BenchDuration();
  const SimTime warmup = BenchWarmup();
  SimTime measure_from = warmup;
  SimTime measure_to = duration - warmup / 3;
  for (int i = 0; i < machines; ++i) {
    ClientMachine* c = sys.AddClient(wl, offered / machines);
    c->Start(0, duration, measure_from, measure_to);
  }

  auto t0 = std::chrono::steady_clock::now();
  E2eResult r;
  SimTime run_until = duration + 500 * kMillisecond;
  r.events = sys.env().sim.Run(run_until);
  r.wall_s = WallSince(t0);
  r.enterprises = enterprises;
  r.shards = shards;
  r.offered_tps = offered;
  double window_s = static_cast<double>(measure_to - measure_from) / kSecond;
  r.measured_tps = static_cast<double>(sys.TotalMeasuredCommits()) / window_s;
  r.avg_lat_ms = sys.MergedLatencies().Mean() / 1000.0;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  r.sim_time_ratio = (static_cast<double>(run_until) / kSecond) / r.wall_s;
  return r;
}

template <typename Fn, typename Res>
Res BestOfN(int n, Fn fn, Res first) {
  Res best = first;
  for (int i = 1; i < n; ++i) {
    Res r = fn();
    if (r.wall_s < best.wall_s) best = r;
  }
  return best;
}

}  // namespace
}  // namespace bench
}  // namespace qanaat

int main(int argc, char** argv) {
  using namespace qanaat;
  using namespace qanaat::bench;

  bool quick = false;
  const char* path = "BENCH_protocol.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      path = argv[i];
    }
  }
  const int reps = quick ? 1 : 3;
  // Churn keeps its full slot count even in quick mode: the run is
  // cheap, and a shorter one is dominated by allocator/map warm-up,
  // which would read as a spurious regression against the full-mode
  // baseline.
  const uint64_t churn_slots = 200000;
  const uint64_t signable_slots = quick ? 300000 : 1000000;
  const uint64_t storm_firings = quick ? 500000 : 2000000;

  std::printf("bench_protocol — protocol hot-path levers + e2e scales "
              "(%s mode)\n\n", quick ? "quick" : "full");

  if (quick) {
    // Untimed full-size warm-up: the first churn run is dominated by
    // page faults growing the allocator arena for the ~200k-slot maps;
    // later runs reuse the freed arena. Best-of-3 hides that in full
    // mode; the single quick repetition must not report it as a
    // regression.
    RunPaxosSlotChurn(churn_slots);
  }
  ChurnResult churn = BestOfN(
      reps, [&] { return RunPaxosSlotChurn(churn_slots); },
      RunPaxosSlotChurn(churn_slots));
  std::printf("paxos churn  : %9llu slots (%llu msgs) in %6.3fs -> %10.0f "
              "slots/s\n",
              static_cast<unsigned long long>(churn.slots),
              static_cast<unsigned long long>(churn.messages), churn.wall_s,
              churn.slots_per_sec);

  SignableResult fresh = BestOfN(
      reps, [&] { return RunSignable(signable_slots, false); },
      RunSignable(signable_slots, false));
  SignableResult memo = BestOfN(
      reps, [&] { return RunSignable(signable_slots, true); },
      RunSignable(signable_slots, true));
  std::printf("signable     : fresh %10.0f ops/s, memoized %10.0f ops/s "
              "(%.1fx)\n",
              fresh.ops_per_sec, memo.ops_per_sec,
              memo.ops_per_sec / fresh.ops_per_sec);

  RawResult storm = BestOfN(
      reps, [&] { return RunWheelStorm(storm_firings); },
      RunWheelStorm(storm_firings));
  std::printf("wheel storm  : %9llu events in %6.3fs  -> %10.0f events/s\n",
              static_cast<unsigned long long>(storm.events), storm.wall_s,
              storm.events_per_sec);

  struct Scale {
    int e;
    int s;
    int reps;
  };
  // The 4x4 point is the committed fig7_e2e configuration (best-of-3);
  // the outer scales bound how the protocol layer behaves as cluster
  // count shrinks and grows, one repetition each.
  const Scale scales[] = {{2, 2, 1}, {4, 4, quick ? 1 : 3}, {8, 4, 1}};
  std::vector<E2eResult> e2e;
  for (const Scale& sc : scales) {
    E2eResult r = BestOfN(
        sc.reps, [&] { return RunE2e(sc.e, sc.s); }, RunE2e(sc.e, sc.s));
    std::printf("e2e %dx%-2d     : %9llu events in %6.3fs  -> %10.0f "
                "events/s, %0.0f tps (avg lat %.2f ms), sim/wall %.2fx\n",
                r.enterprises, r.shards,
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_sec, r.measured_tps, r.avg_lat_ms,
                r.sim_time_ratio);
    e2e.push_back(r);
  }
  std::printf("\n");

  std::string json = "{\"bench\":\"protocol\",\"mode\":\"";
  json += quick ? "quick" : "full";
  json += "\",\"series\":[\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  {\"metric\":\"paxos_slot_churn\",\"slots\":%llu,"
                "\"messages\":%llu,\"wall_s\":%.4f,"
                "\"slots_per_sec\":%.0f},\n",
                static_cast<unsigned long long>(churn.slots),
                static_cast<unsigned long long>(churn.messages),
                churn.wall_s, churn.slots_per_sec);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  {\"metric\":\"signable_fresh\",\"ops\":%llu,"
                "\"wall_s\":%.4f,\"events_per_sec\":%.0f},\n",
                static_cast<unsigned long long>(fresh.ops), fresh.wall_s,
                fresh.ops_per_sec);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  {\"metric\":\"signable_memoized\",\"ops\":%llu,"
                "\"wall_s\":%.4f,\"events_per_sec\":%.0f},\n",
                static_cast<unsigned long long>(memo.ops), memo.wall_s,
                memo.ops_per_sec);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  {\"metric\":\"wheel_storm\",\"events\":%llu,"
                "\"wall_s\":%.4f,\"events_per_sec\":%.0f},\n",
                static_cast<unsigned long long>(storm.events), storm.wall_s,
                storm.events_per_sec);
  json += buf;
  for (size_t i = 0; i < e2e.size(); ++i) {
    const E2eResult& r = e2e[i];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"metric\":\"e2e\",\"enterprises\":%d,\"shards\":%d,"
        "\"offered_tps\":%.0f,\"tput_tps\":%.0f,\"avg_lat_ms\":%.2f,"
        "\"events\":%llu,\"wall_s\":%.4f,\"events_per_sec\":%.0f,"
        "\"sim_time_ratio\":%.3f}%s\n",
        r.enterprises, r.shards, r.offered_tps, r.measured_tps,
        r.avg_lat_ms, static_cast<unsigned long long>(r.events), r.wall_s,
        r.events_per_sec, r.sim_time_ratio,
        i + 1 < e2e.size() ? "," : "");
    json += buf;
  }
  json += "]}\n";
  std::fputs(json.c_str(), stdout);

  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  return 0;
}
