#ifndef QANAAT_BENCH_BENCH_COMMON_H_
#define QANAAT_BENCH_BENCH_COMMON_H_

// Shared configuration for the paper-reproduction bench binaries. Each
// binary regenerates one table/figure of the paper's §5 and prints the
// same series the paper plots. See EXPERIMENTS.md for the mapping and
// the paper-vs-measured record.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/sweep.h"

namespace qanaat {
namespace bench {

/// One Qanaat protocol series of the paper's plots.
struct QanaatSeries {
  const char* name;
  FailureModel fm;
  bool firewall;
  ProtocolFamily family;
  /// Rough expected capacity at 4x4 with 10% cross (used to seed the
  /// two-phase sweep; the sweep self-corrects).
  double capacity_guess;
};

inline const std::vector<QanaatSeries>& AllQanaatSeries() {
  static const std::vector<QanaatSeries> kSeries = {
      {"Crd-B", FailureModel::kByzantine, false, ProtocolFamily::kCoordinator,
       80000},
      {"Crd-B(PF)", FailureModel::kByzantine, true,
       ProtocolFamily::kCoordinator, 74000},
      {"Flt-B", FailureModel::kByzantine, false, ProtocolFamily::kFlattened,
       84000},
      {"Flt-B(PF)", FailureModel::kByzantine, true,
       ProtocolFamily::kFlattened, 78000},
      {"Crd-C", FailureModel::kCrash, false, ProtocolFamily::kCoordinator,
       104000},
      {"Flt-C", FailureModel::kCrash, false, ProtocolFamily::kFlattened,
       110000},
  };
  return kSeries;
}

struct FabricSeries {
  const char* name;
  FabricVariant variant;
  double capacity_guess;
};

inline const std::vector<FabricSeries>& AllFabricSeries() {
  static const std::vector<FabricSeries> kSeries = {
      {"Fabric", FabricVariant::kFabric, 9700},
      {"Fabric++", FabricVariant::kFabricPP, 10000},
      {"FastFabric", FabricVariant::kFastFabric, 28000},
  };
  return kSeries;
}

/// QANAAT_BENCH_FAST=1 shrinks durations for quick iteration.
inline bool FastMode() {
  const char* v = std::getenv("QANAAT_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline SimTime BenchDuration() {
  return FastMode() ? 400 * kMillisecond : 900 * kMillisecond;
}
inline SimTime BenchWarmup() { return FastMode() ? 150 * kMillisecond
                                                 : 200 * kMillisecond; }

inline QanaatRunConfig MakeQanaatConfig(const QanaatSeries& s,
                                        CrossKind kind, double cross_frac,
                                        int enterprises = 4, int shards = 4,
                                        double zipf = 0.0) {
  QanaatRunConfig cfg;
  cfg.params.num_enterprises = enterprises;
  cfg.params.shards_per_enterprise = shards;
  cfg.params.failure_model = s.fm;
  cfg.params.use_firewall = s.firewall;
  cfg.params.family = s.family;
  cfg.workload.cross_kind = kind;
  cfg.workload.cross_fraction = cross_frac;
  cfg.workload.zipf_s = zipf;
  cfg.duration = BenchDuration();
  cfg.warmup = BenchWarmup();
  return cfg;
}

inline FabricRunConfig MakeFabricConfig(const FabricSeries& s,
                                        CrossKind kind, double cross_frac,
                                        double zipf = 0.0) {
  FabricRunConfig cfg;
  cfg.fabric.variant = s.variant;
  cfg.workload.cross_kind = kind;
  cfg.workload.cross_fraction = cross_frac;
  cfg.workload.zipf_s = zipf;
  cfg.duration = BenchDuration();
  cfg.warmup = BenchWarmup();
  return cfg;
}

inline void PrintSubfigureHeader(const std::string& title) {
  std::printf("==== %s ====\n", title.c_str());
}

/// The standard bench JSON record: one line per measured point, greppable
/// and machine-parseable next to the human-readable tables.
inline void PrintJsonPoint(const char* bench, const char* system,
                           const char* scenario, const LoadPoint& p) {
  std::printf(
      "{\"bench\":\"%s\",\"system\":\"%s\",\"scenario\":\"%s\","
      "\"offered_tps\":%.0f,\"tput_tps\":%.0f,\"avg_lat_ms\":%.2f,"
      "\"p99_lat_ms\":%.2f}\n",
      bench, system, scenario, p.offered_tps, p.measured_tps,
      p.avg_latency_ms, p.p99_latency_ms);
}

inline void PrintKneeRow(const char* name, const SweepResult& r) {
  std::printf("%-12s knee: %8.0f tps @ %7.2f ms (p99 %7.2f ms)\n", name,
              r.knee.measured_tps, r.knee.avg_latency_ms,
              r.knee.p99_latency_ms);
}

/// Shared driver for Figures 7, 8 and 9: one subfigure per cross-cluster
/// fraction in {10%, 50%, 90%}, all Qanaat series (+ optionally the
/// Fabric family).
inline void RunCrossFigure(const std::string& title, CrossKind kind,
                           bool include_fabric) {
  std::printf("%s\n(4 enterprises x 4 shards, f=g=h=1, SmallBank, uniform "
              "keys)\n\n",
              title.c_str());
  const char* sub[] = {"a", "b", "c"};
  const double fracs[] = {0.1, 0.5, 0.9};
  for (int i = 0; i < 3; ++i) {
    double frac = fracs[i];
    PrintSubfigureHeader(std::string("(") + sub[i] + "): " +
                         std::to_string(int(frac * 100)) +
                         "% cross-cluster transactions");
    for (const auto& s : AllQanaatSeries()) {
      QanaatRunConfig cfg = MakeQanaatConfig(s, kind, frac);
      // Cross-cluster consensus is costlier; scale the sweep seed.
      double guess = s.capacity_guess * (1.0 - 0.55 * frac);
      SweepResult r = SmartSweep(
          [&cfg](double tps) { return RunQanaatPoint(cfg, tps); }, guess);
      PrintCurve(s.name, r);
    }
    if (!include_fabric) continue;
    for (const auto& s : AllFabricSeries()) {
      FabricRunConfig cfg = MakeFabricConfig(s, kind, frac);
      SweepResult r = SmartSweep(
          [&cfg](double tps) { return RunFabricPoint(cfg, tps); },
          s.capacity_guess * (1.0 - 0.25 * frac));
      PrintCurve(s.name, r);
    }
  }
}

}  // namespace bench
}  // namespace qanaat

#endif  // QANAAT_BENCH_BENCH_COMMON_H_
