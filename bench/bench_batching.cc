// Batching ablation: committed throughput as a function of batch size at
// a fixed offered load, for a PBFT-based Qanaat deployment and the Fabric
// baseline. Isolates the amortization win the batching layer provides:
// with batch size 1 every request pays a full consensus round; larger
// batches spread that round over many transactions until the block cost
// itself (hashing, execution) dominates.

#include <cstdio>

#include "bench_common.h"

namespace qanaat {
namespace bench {
namespace {

const int kBatchSizes[] = {1, 8, 64, 256};

void RunQanaatBatchSweep() {
  PrintSubfigureHeader(
      "Qanaat PBFT (Byzantine, flattened, 2 enterprises x 2 shards)");
  // Offered load chosen to saturate the batch-1 configuration, so the
  // curve shows amortization rather than an intake-limited plateau.
  const double offered = 24000;
  std::printf("%-8s %12s %12s %12s\n", "batch", "offered", "committed",
              "avg-lat-ms");
  for (int bs : kBatchSizes) {
    QanaatRunConfig cfg =
        MakeQanaatConfig(AllQanaatSeries()[2],  // Flt-B
                         CrossKind::kIntraShardCrossEnterprise, 0.0,
                         /*enterprises=*/2, /*shards=*/2);
    cfg.params.batch_size = bs;
    LoadPoint p = RunQanaatPoint(cfg, offered);
    std::printf("%-8d %12.0f %12.0f %12.2f\n", bs, p.offered_tps,
                p.measured_tps, p.avg_latency_ms);
  }
}

void RunFabricBatchSweep() {
  PrintSubfigureHeader("Fabric baseline (4 orgs, Raft ordering)");
  const double offered = 12000;
  std::printf("%-8s %12s %12s %12s\n", "batch", "offered", "committed",
              "avg-lat-ms");
  for (int bs : kBatchSizes) {
    FabricRunConfig cfg =
        MakeFabricConfig(AllFabricSeries()[0],  // Fabric v2.2
                         CrossKind::kIntraShardCrossEnterprise, 0.0);
    cfg.fabric.batch_size = bs;
    LoadPoint p = RunFabricPoint(cfg, offered);
    std::printf("%-8d %12.0f %12.0f %12.2f\n", bs, p.offered_tps,
                p.measured_tps, p.avg_latency_ms);
  }
}

}  // namespace
}  // namespace bench
}  // namespace qanaat

int main() {
  std::printf("Batching ablation: throughput vs batch size at fixed "
              "offered load\n(SmallBank, uniform keys, 0%% cross-cluster; "
              "batch window %s)\n\n",
              "2 ms");
  qanaat::bench::RunQanaatBatchSweep();
  std::printf("\n");
  qanaat::bench::RunFabricBatchSweep();
  return 0;
}
