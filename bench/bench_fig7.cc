// Reproduces Figure 7 (paper §5.1): throughput/latency with 10%, 50% and
// 90% intra-shard cross-enterprise transactions, for the six Qanaat
// protocol variants and the Fabric family. 4 enterprises x 4 shards,
// f = g = h = 1, single datacenter.

#include "bench_common.h"

int main() {
  qanaat::bench::RunCrossFigure(
      "Figure 7 — intra-shard cross-enterprise transactions",
      qanaat::CrossKind::kIntraShardCrossEnterprise,
      /*include_fabric=*/true);
  return 0;
}
