// Reproduces Figure 9 (paper §5.3): workloads with 10%, 50% and 90%
// cross-shard cross-enterprise transactions — the heaviest case, where
// the coordinator-based family should win at high cross fractions.

#include "bench_common.h"

int main() {
  qanaat::bench::RunCrossFigure(
      "Figure 9 — cross-shard cross-enterprise transactions",
      qanaat::CrossKind::kCrossShardCrossEnterprise,
      /*include_fabric=*/true);
  return 0;
}
