// Sim-core throughput baseline: how fast the discrete-event engine itself
// runs, independent of (and then composed with) the protocol stacks.
//
//  * raw_message_events — a message ring through Network/Actor with no
//    protocol logic: measures scheduling + delivery + CPU-model overhead
//    per event.
//  * raw_timer_events — a self-rearming timer storm: measures the timer
//    path of the event core.
//  * fig7_e2e — wall-clock of a fixed Figure-7-style run (4 enterprises x
//    4 shards, Byzantine/coordinator, 10% intra-shard cross-enterprise
//    transactions at a fixed offered load): the end-to-end number the
//    ≥2x sim-core speedup target is judged on.
//
// Every record is printed as a bench JSON line on stdout and the whole
// set is written to BENCH_simcore.json (override with argv[1]) so CI can
// archive the perf trajectory run over run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "qanaat/system.h"
#include "sim/network.h"

namespace qanaat {
namespace bench {
namespace {

double WallSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Ring actor: forwards a token to the next actor until the hop budget
/// of the token's ring is exhausted.
class RingActor : public Actor {
 public:
  RingActor(Env* env, int index) : Actor(env, "ring/" + std::to_string(index)) {}

  void Wire(NodeId next, uint64_t* hops_left) {
    next_ = next;
    hops_left_ = hops_left;
  }

  void OnMessage(NodeId /*from*/, const MessageRef& msg) override {
    if (*hops_left_ == 0) return;
    --*hops_left_;
    Send(next_, msg);
  }

 private:
  NodeId next_ = kInvalidNode;
  uint64_t* hops_left_ = nullptr;
};

/// Timer actor: rearm on every firing until the budget is exhausted.
class RearmActor : public Actor {
 public:
  explicit RearmActor(Env* env, uint64_t* left) : Actor(env, "rearm"), left_(left) {}
  void OnMessage(NodeId, const MessageRef&) override {}
  void OnTimer(uint64_t tag, uint64_t payload) override {
    if (*left_ == 0) return;
    --*left_;
    StartTimer(1 + (payload % 7), tag, payload + 1);
  }
  void Kick(int streams) {
    for (int i = 0; i < streams; ++i) StartTimer(1 + i, 1, i);
  }

 private:
  uint64_t* left_;
};

struct RawResult {
  uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
};

RawResult RunMessageRing(uint64_t hops) {
  Env env(42);
  Network net(&env);
  env.costs.verify_sig_us = 0;
  constexpr int kActors = 16;
  constexpr int kTokens = 8;
  std::vector<std::unique_ptr<RingActor>> actors;
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(std::make_unique<RingActor>(&env, i));
  }
  uint64_t hops_left = hops;
  for (int i = 0; i < kActors; ++i) {
    actors[i]->Wire(actors[(i + 1) % kActors]->id(), &hops_left);
  }
  auto t0 = std::chrono::steady_clock::now();
  for (int t = 0; t < kTokens; ++t) {
    auto m = std::make_shared<Message>(MsgType::kRequest);
    m->sig_verify_ops = 0;
    net.Send(actors[t % kActors]->id(), actors[(t + 1) % kActors]->id(), m);
  }
  RawResult r;
  r.events = env.sim.RunAll();
  r.wall_s = WallSince(t0);
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

RawResult RunTimerStorm(uint64_t firings) {
  Env env(43);
  Network net(&env);
  uint64_t left = firings;
  RearmActor actor(&env, &left);
  auto t0 = std::chrono::steady_clock::now();
  actor.Kick(8);
  RawResult r;
  r.events = env.sim.RunAll();
  r.wall_s = WallSince(t0);
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  return r;
}

/// Best-of-n for the raw micro measurements (single-core CI containers
/// are noisy; the simulated work is identical per repetition).
template <typename Fn>
RawResult BestOf(int n, Fn fn) {
  RawResult best;
  for (int i = 0; i < n; ++i) {
    RawResult r = fn();
    if (best.events == 0 || r.wall_s < best.wall_s) best = r;
  }
  return best;
}

struct E2eResult {
  double offered_tps = 0;
  double measured_tps = 0;
  double avg_lat_ms = 0;
  uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  /// Simulated seconds per wall second — the corpus-capacity meter.
  double sim_time_ratio = 0;
};

/// The fixed Figure-7-style configuration: this must stay byte-stable
/// across PRs so BENCH_simcore.json entries are comparable run over run.
E2eResult RunFig7Style() {
  QanaatSystem::Options opts;
  opts.params.num_enterprises = 4;
  opts.params.shards_per_enterprise = 4;
  opts.params.failure_model = FailureModel::kByzantine;
  opts.params.family = ProtocolFamily::kCoordinator;
  opts.seed = 1;
  QanaatSystem sys(std::move(opts));

  WorkloadParams wl;
  wl.cross_kind = CrossKind::kIntraShardCrossEnterprise;
  wl.cross_fraction = 0.1;

  const double offered = 30000;
  const int machines = 16;
  const SimTime duration = BenchDuration();
  const SimTime warmup = BenchWarmup();
  SimTime measure_from = warmup;
  SimTime measure_to = duration - warmup / 3;
  for (int i = 0; i < machines; ++i) {
    ClientMachine* c = sys.AddClient(wl, offered / machines);
    c->Start(0, duration, measure_from, measure_to);
  }

  auto t0 = std::chrono::steady_clock::now();
  E2eResult r;
  SimTime run_until = duration + 500 * kMillisecond;
  r.events = sys.env().sim.Run(run_until);
  r.wall_s = WallSince(t0);
  r.offered_tps = offered;
  double window_s = static_cast<double>(measure_to - measure_from) / kSecond;
  r.measured_tps = static_cast<double>(sys.TotalMeasuredCommits()) / window_s;
  r.avg_lat_ms = sys.MergedLatencies().Mean() / 1000.0;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  r.sim_time_ratio = (static_cast<double>(run_until) / kSecond) / r.wall_s;
  return r;
}

}  // namespace
}  // namespace bench
}  // namespace qanaat

int main(int argc, char** argv) {
  using namespace qanaat;
  using namespace qanaat::bench;

  // --quick: one repetition with reduced event counts, for the CI
  // bench-smoke job (full best-of-3 stays the default and is what the
  // committed BENCH_simcore.json baselines are measured with).
  bool quick = false;
  const char* path = "BENCH_simcore.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      path = argv[i];
    }
  }

  const bool fast = FastMode();
  const uint64_t ring_hops = (fast || quick) ? 500000 : 2000000;
  const uint64_t timer_firings = (fast || quick) ? 500000 : 2000000;
  const int reps = quick ? 1 : 3;
  const char* mode = quick ? "quick" : fast ? "fast" : "full";

  std::printf("bench_simcore — sim-core event throughput + fig7-style "
              "wall-clock (%s mode)\n\n", mode);

  RawResult ring = BestOf(reps, [&] { return RunMessageRing(ring_hops); });
  std::printf("message ring : %9llu events in %6.3fs  -> %10.0f events/s\n",
              static_cast<unsigned long long>(ring.events), ring.wall_s,
              ring.events_per_sec);

  RawResult timers =
      BestOf(reps, [&] { return RunTimerStorm(timer_firings); });
  std::printf("timer storm  : %9llu events in %6.3fs  -> %10.0f events/s\n",
              static_cast<unsigned long long>(timers.events), timers.wall_s,
              timers.events_per_sec);

  // Best-of-n like the raw parts: the simulated work is identical per
  // repetition, so the minimum wall clock is the least-noisy estimate on
  // a shared machine.
  E2eResult e2e = RunFig7Style();
  for (int i = 1; i < reps; ++i) {
    E2eResult r = RunFig7Style();
    if (r.wall_s < e2e.wall_s) e2e = r;
  }
  std::printf("fig7-style   : %9llu events in %6.3fs  -> %10.0f events/s, "
              "%0.0f tps (avg lat %.2f ms), sim/wall %.2fx\n\n",
              static_cast<unsigned long long>(e2e.events), e2e.wall_s,
              e2e.events_per_sec, e2e.measured_tps, e2e.avg_lat_ms,
              e2e.sim_time_ratio);

  char buf[2048];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"simcore\",\"mode\":\"%s\",\"series\":[\n"
      "  {\"metric\":\"raw_message_events\",\"events\":%llu,"
      "\"wall_s\":%.4f,\"events_per_sec\":%.0f},\n"
      "  {\"metric\":\"raw_timer_events\",\"events\":%llu,"
      "\"wall_s\":%.4f,\"events_per_sec\":%.0f},\n"
      "  {\"metric\":\"fig7_e2e\",\"offered_tps\":%.0f,\"tput_tps\":%.0f,"
      "\"avg_lat_ms\":%.2f,\"events\":%llu,\"wall_s\":%.4f,"
      "\"events_per_sec\":%.0f,\"sim_time_ratio\":%.3f}\n"
      "]}\n",
      mode,
      static_cast<unsigned long long>(ring.events), ring.wall_s,
      ring.events_per_sec,
      static_cast<unsigned long long>(timers.events), timers.wall_s,
      timers.events_per_sec,
      e2e.offered_tps, e2e.measured_tps, e2e.avg_lat_ms,
      static_cast<unsigned long long>(e2e.events), e2e.wall_s,
      e2e.events_per_sec, e2e.sim_time_ratio);
  std::fputs(buf, stdout);

  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(buf, 1, static_cast<size_t>(n), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "could not write %s\n", path);
    return 1;
  }
  return 0;
}
