// Reproduces Figure 10 (paper §5.4): scalability across spatial domains.
// Clusters are spread over four AWS regions (Tokyo, Seoul, Virginia,
// California) with the paper's measured RTTs; workloads have 90%
// internal + 10% cross-cluster transactions of each kind. Fabric is not
// measured (the paper cannot sensibly geo-distribute its single
// ordering service either).

#include "bench_common.h"

using namespace qanaat;
using namespace qanaat::bench;

int main() {
  std::printf(
      "Figure 10 — scalability over spatial domains\n"
      "(clusters over TY/SU/VA/CA; RTTs: TY-SU 33ms, TY-VA 148ms, TY-CA "
      "107ms, SU-VA 175ms, SU-CA 135ms, VA-CA 62ms; 10%% cross)\n\n");

  struct Sub {
    const char* label;
    CrossKind kind;
  };
  const Sub subs[] = {
      {"(a): 10% intra-shard cross-enterprise",
       CrossKind::kIntraShardCrossEnterprise},
      {"(b): 10% cross-shard intra-enterprise",
       CrossKind::kCrossShardIntraEnterprise},
      {"(c): 10% cross-shard cross-enterprise",
       CrossKind::kCrossShardCrossEnterprise},
  };

  for (const auto& sub : subs) {
    PrintSubfigureHeader(sub.label);
    for (const auto& s : AllQanaatSeries()) {
      QanaatRunConfig cfg = MakeQanaatConfig(s, sub.kind, 0.1);
      // One enterprise per region: all 4 clusters of enterprise e sit in
      // region e (the paper distributes clusters of different
      // enterprises over the four regions).
      cfg.cluster_regions.resize(16);
      for (int c = 0; c < 16; ++c) cfg.cluster_regions[c] = c / 4;
      // WAN rounds cut capacity; longer runs cover the higher latency.
      cfg.duration = BenchDuration() + 800 * kMillisecond;
      double guess = s.capacity_guess * 0.55;
      SweepResult r = SmartSweep(
          [&cfg](double tps) { return RunQanaatPoint(cfg, tps); }, guess);
      PrintCurve(s.name, r);
    }
  }
  return 0;
}
