// Reproduces Figure 11 (paper §5.7): performance under contention —
// Zipfian key skew s in {0, 1, 2}, 90% internal + 10% cross-cluster.
// Qanaat orders then executes sequentially, so skew barely matters;
// Fabric/FastFabric collapse (~90% loss) from MVCC invalidations and
// Fabric++ loses ~58%.

#include "bench_common.h"

using namespace qanaat;
using namespace qanaat::bench;

int main() {
  std::printf(
      "Figure 11 — performance with different Zipfian skewness\n"
      "(90%% internal + 10%% cross-cluster transactions)\n\n");
  std::printf("%-12s", "System");
  for (double s : {0.0, 1.0, 2.0}) {
    std::printf("  | s=%.0f: T[tps]   L[ms]", s);
  }
  std::printf("\n");

  for (const auto& s : AllQanaatSeries()) {
    std::printf("%-12s", s.name);
    for (double skew : {0.0, 1.0, 2.0}) {
      QanaatRunConfig cfg = MakeQanaatConfig(
          s, CrossKind::kIntraShardCrossEnterprise, 0.1, 4, 4, skew);
      SweepResult r = SmartSweep(
          [&cfg](double tps) { return RunQanaatPoint(cfg, tps); },
          s.capacity_guess);
      std::printf("  | %11.0f  %6.1f", r.knee.measured_tps,
                  r.knee.avg_latency_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  for (const auto& s : AllFabricSeries()) {
    std::printf("%-12s", s.name);
    for (double skew : {0.0, 1.0, 2.0}) {
      FabricRunConfig cfg = MakeFabricConfig(
          s, CrossKind::kIntraShardCrossEnterprise, 0.1, skew);
      // Under contention most transactions invalidate; useful throughput
      // keeps growing with offered load, so sweep for the plateau.
      SweepResult r = PlateauSweep(
          [&cfg](double tps) { return RunFabricPoint(cfg, tps); },
          s.capacity_guess * 0.8, /*growth=*/1.8, /*max_points=*/6);
      std::printf("  | %11.0f  %6.1f", r.knee.measured_tps,
                  r.knee.avg_latency_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
