// Throughput/latency under failures — the paper's §5 failure experiments:
// Qanaat-PBFT (Byzantine, flattened) vs Fabric at a fixed offered load,
// fault-free vs one crashed backup per cluster (Table 3's setup) vs 1%
// uniform message loss. Emits the standard bench JSON (one line per
// point) after the human-readable table.

#include <cstdio>

#include "bench_common.h"

namespace qanaat {
namespace bench {
namespace {

struct Scenario {
  const char* name;
  int crash_backups = 0;
  double loss = 0.0;
  /// Crash-and-recover window (one backup per cluster) — the
  /// checkpoint/state-transfer overhead point.
  bool crash_recover = false;
  bool state_transfer = true;
};

const Scenario kScenarios[] = {
    {"baseline", 0, 0.0},
    {"crash_backup", 1, 0.0},
    {"loss_1pct", 0, 0.01},
    // Checkpoint overhead pair: one backup per cluster crashes mid-run
    // and recovers under load, with the certified-checkpoint + state-
    // transfer subsystem on vs off. The delta in throughput/latency is
    // what proactive recovery costs (checkpoint votes, transfer bytes)
    // and buys (no stale replicas; see recovery_test.cc for the safety
    // side).
    {"crash_recover_st", 0, 0.0, /*crash_recover=*/true,
     /*state_transfer=*/true},
    {"crash_recover_no_st", 0, 0.0, /*crash_recover=*/true,
     /*state_transfer=*/false},
};

void Run() {
  std::printf("Failure experiments: fixed offered load, fault-free vs one "
              "crashed backup per cluster vs 1%% message loss\n"
              "(2 enterprises x 2 shards, f=1, SmallBank, 10%% "
              "cross-enterprise)\n\n");
  const double kQanaatLoad = FastMode() ? 4000 : 12000;
  const double kFabricLoad = FastMode() ? 2000 : 6000;

  PrintCurveHeader("Qanaat-PBFT (Flt-B)");
  for (const Scenario& sc : kScenarios) {
    QanaatRunConfig cfg;
    cfg.params.num_enterprises = 2;
    cfg.params.shards_per_enterprise = 2;
    cfg.params.failure_model = FailureModel::kByzantine;
    cfg.params.family = ProtocolFamily::kFlattened;
    cfg.workload.cross_kind = CrossKind::kIntraShardCrossEnterprise;
    cfg.workload.cross_fraction = 0.1;
    cfg.duration = BenchDuration();
    cfg.warmup = BenchWarmup();
    cfg.faulty_ordering_nodes = sc.crash_backups;
    cfg.drop_rate = sc.loss;
    if (sc.loss > 0) cfg.client_retransmit_us = 250 * kMillisecond;
    if (sc.crash_recover) {
      cfg.crash_at = cfg.duration / 4;
      cfg.recover_at = cfg.duration / 2;
      cfg.client_retransmit_us = 250 * kMillisecond;
      cfg.params.state_transfer = sc.state_transfer;
      if (!sc.state_transfer) cfg.params.checkpoint_interval = 0;
    }
    LoadPoint p = RunQanaatPoint(cfg, kQanaatLoad);
    std::printf("%-14s %-14.0f %-12.2f %-12.2f  (%s)\n", "", p.measured_tps,
                p.avg_latency_ms, p.p99_latency_ms, sc.name);
    PrintJsonPoint("faults", "qanaat-pbft", sc.name, p);
  }
  std::printf("\n");

  PrintCurveHeader("Fabric");
  for (const Scenario& sc : kScenarios) {
    if (sc.crash_recover) continue;  // Qanaat-only recovery scenarios
    FabricRunConfig cfg;
    cfg.fabric.enterprises = 2;
    cfg.workload.cross_kind = CrossKind::kIntraShardCrossEnterprise;
    cfg.workload.cross_fraction = 0.1;
    cfg.duration = BenchDuration();
    cfg.warmup = BenchWarmup();
    cfg.fail_follower = sc.crash_backups > 0;
    cfg.drop_rate = sc.loss;
    LoadPoint p = RunFabricPoint(cfg, kFabricLoad);
    std::printf("%-14s %-14.0f %-12.2f %-12.2f  (%s)\n", "", p.measured_tps,
                p.avg_latency_ms, p.p99_latency_ms, sc.name);
    PrintJsonPoint("faults", "fabric", sc.name, p);
  }
}

}  // namespace
}  // namespace bench
}  // namespace qanaat

int main() {
  qanaat::bench::Run();
  return 0;
}
