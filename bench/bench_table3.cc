// Reproduces Table 3 (paper §5.6): performance with faulty nodes. One
// non-primary ordering node per cluster fails (f=1 tolerated); for the
// privacy-firewall variants additionally one execution node and one
// filter fail. All protocols are pessimistic, so the impact should be
// small (paper: <= ~12% throughput reduction).

#include "bench_common.h"

using namespace qanaat;
using namespace qanaat::bench;

int main() {
  std::printf(
      "Table 3 — performance with faulty nodes\n"
      "(first-set workload: 10%% intra-shard cross-enterprise)\n\n");
  std::printf("%-12s | %13s %9s | %13s %9s | %7s\n", "Protocol",
              "no-fail T", "L[ms]", "1-fail T", "L[ms]", "dT%");

  for (const auto& s : AllQanaatSeries()) {
    QanaatRunConfig cfg = MakeQanaatConfig(
        s, CrossKind::kIntraShardCrossEnterprise, 0.1);
    SweepResult healthy = SmartSweep(
        [&cfg](double tps) { return RunQanaatPoint(cfg, tps); },
        s.capacity_guess);
    QanaatRunConfig faulty = cfg;
    faulty.faulty_ordering_nodes = 1;
    SweepResult failed = SmartSweep(
        [&faulty](double tps) { return RunQanaatPoint(faulty, tps); },
        s.capacity_guess * 0.9);
    double delta = 100.0 *
                   (healthy.knee.measured_tps - failed.knee.measured_tps) /
                   healthy.knee.measured_tps;
    std::printf("%-12s | %13.0f %9.1f | %13.0f %9.1f | %6.1f%%\n", s.name,
                healthy.knee.measured_tps, healthy.knee.avg_latency_ms,
                failed.knee.measured_tps, failed.knee.avg_latency_ms,
                delta);
    std::fflush(stdout);
  }

  for (const auto& s : AllFabricSeries()) {
    FabricRunConfig cfg =
        MakeFabricConfig(s, CrossKind::kIntraShardCrossEnterprise, 0.1);
    SweepResult healthy = SmartSweep(
        [&cfg](double tps) { return RunFabricPoint(cfg, tps); },
        s.capacity_guess);
    FabricRunConfig faulty = cfg;
    faulty.fail_follower = true;
    SweepResult failed = SmartSweep(
        [&faulty](double tps) { return RunFabricPoint(faulty, tps); },
        s.capacity_guess * 0.9);
    double delta = 100.0 *
                   (healthy.knee.measured_tps - failed.knee.measured_tps) /
                   healthy.knee.measured_tps;
    std::printf("%-12s | %13.0f %9.1f | %13.0f %9.1f | %6.1f%%\n", s.name,
                healthy.knee.measured_tps, healthy.knee.avg_latency_ms,
                failed.knee.measured_tps, failed.knee.avg_latency_ms,
                delta);
    std::fflush(stdout);
  }
  return 0;
}
