// Reproduces Table 2 (paper §5.5): throughput and latency with 2, 4, 6
// and 8 enterprises; 90% internal + 10% cross-cluster (intra-shard
// cross-enterprise) transactions. Throughput should grow almost linearly
// with the number of enterprises.

#include "bench_common.h"

using namespace qanaat;
using namespace qanaat::bench;

int main() {
  std::printf(
      "Table 2 — performance with different numbers of enterprises\n"
      "(4 shards each, 90%% internal + 10%% cross-cluster)\n\n");
  std::printf("%-12s", "Protocol");
  for (int e : {2, 4, 6, 8}) {
    std::printf("  | %2d ent: T[tps]   L[ms]", e);
  }
  std::printf("\n");

  for (const auto& s : AllQanaatSeries()) {
    std::printf("%-12s", s.name);
    for (int e : {2, 4, 6, 8}) {
      QanaatRunConfig cfg = MakeQanaatConfig(
          s, CrossKind::kIntraShardCrossEnterprise, 0.1, e, 4);
      double guess = s.capacity_guess * e / 4.0;
      SweepResult r = SmartSweep(
          [&cfg](double tps) { return RunQanaatPoint(cfg, tps); }, guess);
      std::printf("  | %13.0f  %6.1f", r.knee.measured_tps,
                  r.knee.avg_latency_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
