#include "ledger/transaction.h"

namespace qanaat {

void Transaction::EncodeBodyTo(Encoder* enc) const {
  enc->PutU32(client);
  enc->PutU64(client_ts);
  collection.EncodeTo(enc);
  enc->PutU16(static_cast<uint16_t>(shards.size()));
  for (ShardId s : shards) enc->PutU16(s);
  enc->PutU8(initiator);
  enc->PutU16(static_cast<uint16_t>(ops.size()));
  for (const auto& op : ops) op.EncodeTo(enc);
}

bool Transaction::DecodeFrom(Decoder* dec, Transaction* out) {
  if (!dec->GetU32(&out->client)) return false;
  if (!dec->GetU64(&out->client_ts)) return false;
  if (!CollectionId::DecodeFrom(dec, &out->collection)) return false;
  uint16_t ns;
  if (!dec->GetU16(&ns)) return false;
  out->shards.resize(ns);
  for (auto& s : out->shards) {
    if (!dec->GetU16(&s)) return false;
  }
  if (!dec->GetU8(&out->initiator)) return false;
  uint16_t no;
  if (!dec->GetU16(&no)) return false;
  out->ops.resize(no);
  for (auto& op : out->ops) {
    if (!TxOp::DecodeFrom(dec, &op)) return false;
  }
  return Signature::DecodeFrom(dec, &out->client_sig);
}

Sha256Digest Transaction::Digest() const {
  if (!digest_valid_) {
    digest_cache_ = RecomputeDigest();
    digest_valid_ = true;
  }
  return digest_cache_;
}

Sha256Digest Transaction::RecomputeDigest() const {
  Encoder enc;
  EncodeBodyTo(&enc);
  return Sha256::Hash(enc.buffer());
}

}  // namespace qanaat
