#ifndef QANAAT_LEDGER_TRANSACTION_H_
#define QANAAT_LEDGER_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "collections/collection_id.h"
#include "common/serde.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace qanaat {

/// One primitive operation inside a transaction program. Transactions are
/// small op programs executed deterministically against the multi-version
/// store (the "business logic" of a data collection, §3.2).
struct TxOp {
  enum class Kind : uint8_t {
    kRead = 0,    // read key from own collection
    kWrite,       // write value to key in own collection
    kAdd,         // read-modify-write: key += delta (SmallBank sendPayment)
    kReadDep,     // read key from an order-dependent collection `dep`
  };

  Kind kind = Kind::kRead;
  uint64_t key = 0;
  int64_t value = 0;        // write value / add delta
  CollectionId dep;         // for kReadDep

  void EncodeTo(Encoder* enc) const {
    enc->PutU8(static_cast<uint8_t>(kind));
    enc->PutU64(key);
    enc->PutI64(value);
    dep.EncodeTo(enc);
  }
  static bool DecodeFrom(Decoder* dec, TxOp* out) {
    uint8_t k;
    if (!dec->GetU8(&k)) return false;
    out->kind = static_cast<Kind>(k);
    return dec->GetU64(&out->key) && dec->GetI64(&out->value) &&
           CollectionId::DecodeFrom(dec, &out->dep);
  }
};

/// A client request ⟨REQUEST, op, tc, c⟩_σc (paper §4.1): an op program to
/// execute on one data collection, touching one or more of its shards.
struct Transaction {
  NodeId client = kInvalidNode;
  uint64_t client_ts = 0;           // timestamp tc (request dedup)
  CollectionId collection;          // the collection it executes on
  std::vector<ShardId> shards;      // involved shards, sorted; >1 = cross-shard
  EnterpriseId initiator = 0;       // enterprise whose cluster received it
  std::vector<TxOp> ops;
  Signature client_sig;             // over Digest()

  bool IsCrossShard() const { return shards.size() > 1; }
  /// Cross-enterprise iff the target collection is shared (non-local).
  bool IsCrossEnterprise() const { return collection.members.size() > 1; }

  /// Canonical encoding (excluding the signature).
  void EncodeBodyTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, Transaction* out);
  void EncodeTo(Encoder* enc) const {
    EncodeBodyTo(enc);
    client_sig.EncodeTo(enc);
  }

  /// Digest of the canonical body — what the client signs. Memoized:
  /// transactions are immutable once signed. Audit paths that must
  /// detect post-hoc tampering call InvalidateDigest() first, or use
  /// RecomputeDigest() to hash the canonical bytes without touching the
  /// cache (no mutation of shared state).
  Sha256Digest Digest() const;
  Sha256Digest RecomputeDigest() const;
  void InvalidateDigest() const { digest_valid_ = false; }

  /// Approximate wire size in bytes.
  uint32_t WireSize() const {
    return static_cast<uint32_t>(64 + ops.size() * 24);
  }

 private:
  mutable Sha256Digest digest_cache_;
  mutable bool digest_valid_ = false;
};

}  // namespace qanaat

#endif  // QANAAT_LEDGER_TRANSACTION_H_
