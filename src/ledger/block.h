#ifndef QANAAT_LEDGER_BLOCK_H_
#define QANAAT_LEDGER_BLOCK_H_

#include <memory>
#include <vector>

#include "collections/tx_id.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "ledger/transaction.h"

namespace qanaat {

/// Fixed-width digest serde helpers shared by every message codec.
inline void EncodeDigestTo(Encoder* enc, const Sha256Digest& d) {
  enc->PutRaw(d.bytes.data(), d.bytes.size());
}
inline bool DecodeDigestFrom(Decoder* dec, Sha256Digest* d) {
  return dec->GetRaw(d->bytes.data(), d->bytes.size());
}

/// A transaction block: the unit of ordering and of ledger append.
///
/// The primary batches pending requests of one collection shard into a
/// block and assigns the block an ID = ⟨α, γ⟩ during the ordering phase
/// (paper §4.1 — "to provide a total order among transaction blocks ...
/// the primary also assigns an ID"). α.n is the block's sequence number
/// on that collection shard; γ captures the state of every
/// order-dependent collection.
struct Block {
  TxId id;
  std::vector<Transaction> txs;
  /// Retry nonce: an aborted cross-cluster block is re-proposed with the
  /// same transactions and ID but a new attempt number, so the retry has
  /// a fresh digest (§4.3.5 deadlock resolution).
  uint32_t attempt = 0;

  /// Merkle root over transaction digests (set by Seal()).
  Sha256Digest tx_root;

  /// Seals the block: computes tx_root and memoizes the block digest.
  /// Must be called after the tx list and id are final.
  void Seal();

  /// Digest covering id + tx_root: what consensus orders and commit
  /// certificates sign. Memoized by Seal(); blocks are immutable once
  /// sealed, so the hot paths (consensus, certificates, audits) reuse
  /// the cached value the way Transaction::Digest() does.
  Sha256Digest Digest() const;

  /// Audit helpers: recompute tamper-evidence from canonical bytes,
  /// bypassing every memoized digest and without mutating shared state.
  /// RecomputeTxRoot() re-hashes every transaction body and rebuilds the
  /// Merkle root; RecomputeDigest(root) re-derives the block digest a
  /// certificate must cover, given that recomputed root.
  Sha256Digest RecomputeTxRoot() const;
  Sha256Digest RecomputeDigest(const Sha256Digest& root) const;
  /// Drops the memoized digest after in-place mutation (tests, Byzantine
  /// models); the next Digest() recomputes from the current contents.
  void InvalidateDigest() const { digest_valid_ = false; }

  uint32_t WireSize() const;
  size_t tx_count() const { return txs.size(); }

  /// Canonical wire form (id, attempt, transactions). tx_root is not
  /// encoded: DecodeFrom re-Seals, so a tampered body cannot smuggle a
  /// stale root past the digest check.
  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, Block* out);

 private:
  mutable Sha256Digest digest_cache_;
  mutable bool digest_valid_ = false;
};

using BlockPtr = std::shared_ptr<const Block>;

/// Derives a 256-bit digest from (salt, a, b, parent digest) with two
/// lanes of chained SplitMix64 finalizers. The protocol-internal digest
/// derivations below (value digests, consensus signables, vote signables)
/// use this instead of an inner SHA-256: they only ever feed equality
/// checks and KeyStore sign/verify, both sides derive them with the same
/// deterministic function, and unforgeability still rests entirely on the
/// KeyStore's secret key — so the substitution argument of DESIGN.md §2
/// is unchanged while the sim-core hot path drops most of its SHA cost.
/// Content digests (transactions, blocks, results) remain real SHA-256.
Sha256Digest DeriveDigest(uint64_t salt, uint64_t a, uint64_t b,
                          const Sha256Digest& parent);

/// Digest of a consensus value: derived from (kind ‖ block digest).
/// Defined here so commit certificates can be verified by parties outside
/// the consensus engine (filters, other clusters) from the block digest
/// alone.
Sha256Digest ValueDigestFor(uint8_t kind, const Sha256Digest& block_digest);

/// What PBFT prepare/commit signatures cover: derived from (view ‖ slot ‖
/// value digest).
Sha256Digest ConsensusSignable(ViewNo view, uint64_t slot,
                               const Sha256Digest& value_digest);

/// What checkpoint votes sign: derived from (slot ‖ history digest),
/// where the history digest chains the value digests of every delivered
/// slot up to `slot`. Matching votes from a quorum make the checkpoint
/// stable — the engine may then garbage-collect slot state at or below
/// it, and a certificate of those votes proves the frontier to a
/// recovering replica.
Sha256Digest CheckpointSignable(uint64_t slot,
                                const Sha256Digest& history_digest);

/// Commit certificate: signatures from a quorum (local-majority) of a
/// cluster's ordering nodes proving a block was ordered (paper §4.2).
/// Appended to the ledger with the block so any later tampering with
/// block data is detectable.
///
/// Two forms:
///  * PBFT form — the signatures are the COMMIT-phase signatures, which
///    cover ConsensusSignable(view, slot, ValueDigestFor(kind, d));
///  * direct form (`direct == true`) — crash clusters and flattened
///    commit votes sign the block digest itself.
struct CommitCertificate {
  Sha256Digest block_digest;
  ViewNo view = 0;
  uint64_t slot = 0;
  uint8_t value_kind = 1;  // ConsensusValue::Kind::kBlock
  bool direct = false;
  std::vector<Signature> sigs;

  /// Valid iff >= quorum distinct valid signatures over the covered
  /// digest.
  bool Valid(const KeyStore& ks, size_t quorum) const;

  /// As Valid, additionally requiring every signer to be a member of
  /// `allowed` (e.g. the ordering nodes of the claimed cluster).
  bool ValidFrom(const KeyStore& ks, size_t quorum,
                 const std::vector<NodeId>& allowed) const;

  uint32_t WireSize() const {
    return static_cast<uint32_t>(56 + sigs.size() * 20);
  }

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, CommitCertificate* out);

 private:
  Sha256Digest CoveredDigest() const;
};

/// Reply certificate: g+1 matching signed replies from distinct execution
/// nodes, assembled by the top filter row (paper §4.2). The client accepts
/// a result only with a valid reply certificate.
struct ReplyCertificate {
  Sha256Digest reply_digest;
  std::vector<Signature> sigs;

  bool Valid(const KeyStore& ks, size_t quorum) const;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ReplyCertificate* out);
};

}  // namespace qanaat

#endif  // QANAAT_LEDGER_BLOCK_H_
