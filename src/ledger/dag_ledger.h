#ifndef QANAAT_LEDGER_DAG_LEDGER_H_
#define QANAAT_LEDGER_DAG_LEDGER_H_

#include <map>
#include <vector>

#include "collections/collection_id.h"
#include "common/flat_map.h"
#include "common/status.h"
#include "crypto/signer.h"
#include "ledger/block.h"

namespace qanaat {

/// The DAG-structured blockchain ledger of one cluster (paper §3.3, Fig 3).
///
/// Entries of independent collections append in parallel (separate
/// chains); γ entries cross-link a block to the captured state of every
/// order-dependent collection. For cross-cluster blocks, each involved
/// cluster appends the *same block* (same digest, same certificate) under
/// its *own* ⟨α, γ⟩ — the per-cluster IDs are assigned during the
/// protocol and travel in prepared/accept messages, so the block digest
/// stays stable across clusters (paper §4.3.2: the commit message carries
/// the concatenation of the received IDs).
///
/// Appends enforce exactly the paper's two rules:
///   * local consistency — per collection shard, sequence numbers are
///     gapless and increasing;
///   * global consistency — γ is monotone w.r.t. the previous block of
///     the same collection shard.
class DagLedger {
 public:
  struct Entry {
    BlockPtr block;
    CommitCertificate cert;
    LocalPart alpha;                // this cluster's α for the block
    std::vector<GammaEntry> gamma;  // this cluster's γ capture
    SimTime commit_time = 0;
  };

  DagLedger() = default;

  /// Appends a block ordered by this cluster (α/γ = block->id).
  Status Append(BlockPtr block, CommitCertificate cert, SimTime when);

  /// Appends a cross-cluster block under this cluster's own ID parts.
  Status AppendFor(BlockPtr block, CommitCertificate cert, SimTime when,
                   const LocalPart& alpha_here,
                   std::vector<GammaEntry> gamma_here);

  /// Head sequence number (last committed α.n) of a collection shard;
  /// 0 if nothing committed yet.
  SeqNo HeadOf(const ShardRef& ref) const;

  /// γ-capture input (paper §4.1): the current state of collection `c`
  /// on this ledger = max committed n across its shards here.
  SeqNo StateOf(const CollectionId& c) const;

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }
  const std::vector<size_t>& ChainOf(const ShardRef& ref) const;
  /// Every chain this ledger maintains (audit surface: cross-replica
  /// agreement is checked chain by chain).
  const std::map<ShardRef, std::vector<size_t>>& chains() const {
    return chains_;
  }

  uint64_t total_txs() const { return total_txs_; }

  /// Full audit: recomputes every block digest against its certificate
  /// and re-checks both consistency rules along every chain. Detects any
  /// post-commit tampering with block contents.
  Status VerifyChain(const KeyStore& ks, size_t cert_quorum) const;

 private:
  Status CheckAppend(const LocalPart& alpha,
                     const std::vector<GammaEntry>& gamma) const;
  static Status CheckGammaMonotone(const std::vector<GammaEntry>& earlier,
                                   const std::vector<GammaEntry>& later);

  std::vector<Entry> entries_;
  std::map<ShardRef, std::vector<size_t>> chains_;  // per collection shard
  // Hot per-commit lookups: flat sorted-vector maps (see common/flat_map.h).
  FlatMap<ShardRef, SeqNo> heads_;
  FlatMap<CollectionId, SeqNo> collection_state_;
  uint64_t total_txs_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_LEDGER_DAG_LEDGER_H_
