#include "ledger/dag_ledger.h"

#include <algorithm>

namespace qanaat {

namespace {
const std::vector<size_t> kEmptyChain;
}  // namespace

Status DagLedger::CheckGammaMonotone(const std::vector<GammaEntry>& earlier,
                                     const std::vector<GammaEntry>& later) {
  // Global consistency (paper §3.3 rule 2): ∀ d_Y ∈ γ∩γ': m ≤ m'.
  for (const auto& ge : earlier) {
    for (const auto& gl : later) {
      if (ge.collection == gl.collection && ge.m > gl.m) {
        return Status::FailedPrecondition(
            "global consistency violated on " + ge.collection.Label());
      }
    }
  }
  return Status::Ok();
}

Status DagLedger::CheckAppend(const LocalPart& alpha,
                              const std::vector<GammaEntry>& gamma) const {
  ShardRef ref{alpha.collection, alpha.shard};
  // Local consistency: gapless, increasing sequence per collection shard.
  SeqNo head = 0;
  if (const SeqNo* at = heads_.Find(ref)) head = *at;
  if (alpha.n != head + 1) {
    return Status::FailedPrecondition(
        "local consistency: expected n=" + std::to_string(head + 1) +
        " on " + ref.Label() + ", got " + std::to_string(alpha.n));
  }
  auto chain_it = chains_.find(ref);
  if (chain_it != chains_.end() && !chain_it->second.empty()) {
    const Entry& prev = entries_[chain_it->second.back()];
    QANAAT_RETURN_IF_ERROR(CheckGammaMonotone(prev.gamma, gamma));
  }
  return Status::Ok();
}

Status DagLedger::Append(BlockPtr block, CommitCertificate cert,
                         SimTime when) {
  LocalPart alpha = block->id.alpha;
  std::vector<GammaEntry> gamma = block->id.gamma;
  return AppendFor(std::move(block), std::move(cert), when, alpha,
                   std::move(gamma));
}

Status DagLedger::AppendFor(BlockPtr block, CommitCertificate cert,
                            SimTime when, const LocalPart& alpha_here,
                            std::vector<GammaEntry> gamma_here) {
  QANAAT_RETURN_IF_ERROR(CheckAppend(alpha_here, gamma_here));
  if (cert.block_digest != block->Digest()) {
    return Status::Corruption("commit certificate does not cover block");
  }
  ShardRef ref{alpha_here.collection, alpha_here.shard};
  size_t idx = entries_.size();
  total_txs_ += block->tx_count();
  heads_[ref] = alpha_here.n;
  auto& st = collection_state_[ref.collection];
  st = std::max(st, alpha_here.n);
  chains_[ref].push_back(idx);
  entries_.push_back(Entry{std::move(block), std::move(cert), alpha_here,
                           std::move(gamma_here), when});
  return Status::Ok();
}

SeqNo DagLedger::HeadOf(const ShardRef& ref) const {
  const SeqNo* at = heads_.Find(ref);
  return at == nullptr ? 0 : *at;
}

SeqNo DagLedger::StateOf(const CollectionId& c) const {
  const SeqNo* at = collection_state_.Find(c);
  return at == nullptr ? 0 : *at;
}

const std::vector<size_t>& DagLedger::ChainOf(const ShardRef& ref) const {
  auto it = chains_.find(ref);
  return it == chains_.end() ? kEmptyChain : it->second;
}

Status DagLedger::VerifyChain(const KeyStore& ks, size_t cert_quorum) const {
  for (const auto& [ref, chain] : chains_) {
    SeqNo expect = 1;
    const Entry* prev = nullptr;
    for (size_t idx : chain) {
      const Entry& e = entries_[idx];
      if (e.alpha.n != expect) {
        return Status::Corruption("gap in chain " + ref.Label());
      }
      // Tamper evidence, recomputed from canonical bytes while bypassing
      // every memoized digest (a tampered block may carry a stale cache):
      // the Merkle root over the transactions must match the sealed root,
      // and the certificate must cover the block digest re-derived from
      // that recomputed root. One pass, no block copy, and no redundant
      // re-hash of data either check already covered.
      Sha256Digest root = e.block->RecomputeTxRoot();
      if (root != e.block->tx_root) {
        return Status::Corruption("transaction set tampered in " +
                                  e.block->id.ToString());
      }
      if (e.cert.block_digest != e.block->RecomputeDigest(root)) {
        return Status::Corruption("block " + e.block->id.ToString() +
                                  " does not match its certificate");
      }
      if (cert_quorum > 0 && !e.cert.Valid(ks, cert_quorum)) {
        return Status::Corruption("invalid certificate on " +
                                  e.block->id.ToString());
      }
      if (prev != nullptr) {
        QANAAT_RETURN_IF_ERROR(CheckGammaMonotone(prev->gamma, e.gamma));
      }
      prev = &e;
      ++expect;
    }
  }
  return Status::Ok();
}

}  // namespace qanaat
