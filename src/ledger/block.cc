#include "ledger/block.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/rng.h"

namespace qanaat {

void Block::Seal() {
  std::vector<Sha256Digest> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.Digest());
  tx_root = MerkleTree::RootOf(leaves);
  digest_valid_ = false;
  digest_cache_ = Digest();
}

Sha256Digest Block::Digest() const {
  if (!digest_valid_) {
    digest_cache_ = RecomputeDigest(tx_root);
    digest_valid_ = true;
  }
  return digest_cache_;
}

Sha256Digest Block::RecomputeTxRoot() const {
  std::vector<Sha256Digest> leaves;
  leaves.reserve(txs.size());
  for (const auto& tx : txs) leaves.push_back(tx.RecomputeDigest());
  return MerkleTree::RootOf(leaves);
}

Sha256Digest Block::RecomputeDigest(const Sha256Digest& root) const {
  Encoder enc;
  id.EncodeTo(&enc);
  enc.PutU32(attempt);
  enc.PutRaw(root.bytes.data(), root.bytes.size());
  return Sha256::Hash(enc.buffer());
}

uint32_t Block::WireSize() const {
  uint32_t sz = 96;  // id + root + framing
  for (const auto& tx : txs) sz += tx.WireSize();
  return sz;
}

void Block::EncodeTo(Encoder* enc) const {
  id.EncodeTo(enc);
  enc->PutU32(attempt);
  enc->PutU32(static_cast<uint32_t>(txs.size()));
  for (const auto& tx : txs) tx.EncodeTo(enc);
}

bool Block::DecodeFrom(Decoder* dec, Block* out) {
  if (!TxId::DecodeFrom(dec, &out->id)) return false;
  if (!dec->GetU32(&out->attempt)) return false;
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  // Every encoded transaction occupies well over one byte; a count
  // exceeding the remaining buffer is corruption, not a giant block.
  if (n > dec->remaining()) return false;
  out->txs.resize(n);
  for (auto& tx : out->txs) {
    if (!Transaction::DecodeFrom(dec, &tx)) return false;
  }
  out->Seal();
  return true;
}

namespace {
bool QuorumOfValidSigs(const KeyStore& ks, const Sha256Digest& digest,
                       const std::vector<Signature>& sigs, size_t quorum,
                       const std::vector<NodeId>* allowed) {
  std::vector<NodeId> distinct;
  distinct.reserve(sigs.size());
  for (const auto& s : sigs) {
    if (!ks.Verify(s, digest)) return false;
    if (allowed != nullptr &&
        std::find(allowed->begin(), allowed->end(), s.signer) ==
            allowed->end()) {
      return false;
    }
    AddDistinctSigner(&distinct, s.signer);
  }
  return distinct.size() >= quorum;
}
}  // namespace

Sha256Digest DeriveDigest(uint64_t salt, uint64_t a, uint64_t b,
                          const Sha256Digest& parent) {
  uint64_t w[4];
  std::memcpy(w, parent.bytes.data(), sizeof(w));
  uint64_t lo = Mix64(salt ^ 0x51ed270b9f652295ULL) ^ Mix64(a);
  uint64_t hi = Mix64(salt + 0x9e3779b97f4a7c15ULL) ^ Mix64(~b);
  for (int k = 0; k < 4; ++k) {
    lo = Mix64(lo ^ w[k]);
    hi = Mix64(hi + w[k] + 0x9e3779b97f4a7c15ULL * (k + 1));
  }
  uint64_t out[4] = {Mix64(lo ^ (hi >> 32)), Mix64(hi ^ (lo << 32)),
                     Mix64(lo + hi + a), Mix64(lo ^ hi ^ b)};
  Sha256Digest d;
  std::memcpy(d.bytes.data(), out, sizeof(out));
  return d;
}

Sha256Digest ValueDigestFor(uint8_t kind, const Sha256Digest& block_digest) {
  return DeriveDigest(0x56444947u /* "VDIG" */, kind, 0, block_digest);
}

Sha256Digest ConsensusSignable(ViewNo view, uint64_t slot,
                               const Sha256Digest& value_digest) {
  return DeriveDigest(0x43534947u /* "CSIG" */, view, slot, value_digest);
}

Sha256Digest CheckpointSignable(uint64_t slot,
                                const Sha256Digest& history_digest) {
  return DeriveDigest(0x434b5054u /* "CKPT" */, slot, 0, history_digest);
}

Sha256Digest CommitCertificate::CoveredDigest() const {
  if (direct) return block_digest;
  return ConsensusSignable(view, slot,
                           ValueDigestFor(value_kind, block_digest));
}

bool CommitCertificate::Valid(const KeyStore& ks, size_t quorum) const {
  return QuorumOfValidSigs(ks, CoveredDigest(), sigs, quorum, nullptr);
}

bool CommitCertificate::ValidFrom(const KeyStore& ks, size_t quorum,
                                  const std::vector<NodeId>& allowed) const {
  return QuorumOfValidSigs(ks, CoveredDigest(), sigs, quorum, &allowed);
}

bool ReplyCertificate::Valid(const KeyStore& ks, size_t quorum) const {
  return QuorumOfValidSigs(ks, reply_digest, sigs, quorum, nullptr);
}

namespace {
bool DecodeSigList(Decoder* dec, std::vector<Signature>* out) {
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > dec->remaining()) return false;  // each signature is 20 bytes
  out->resize(n);
  for (auto& s : *out) {
    if (!Signature::DecodeFrom(dec, &s)) return false;
  }
  return true;
}
}  // namespace

void CommitCertificate::EncodeTo(Encoder* enc) const {
  EncodeDigestTo(enc, block_digest);
  enc->PutU64(view);
  enc->PutU64(slot);
  enc->PutU8(value_kind);
  enc->PutBool(direct);
  enc->PutU32(static_cast<uint32_t>(sigs.size()));
  for (const auto& s : sigs) s.EncodeTo(enc);
}

bool CommitCertificate::DecodeFrom(Decoder* dec, CommitCertificate* out) {
  return DecodeDigestFrom(dec, &out->block_digest) && dec->GetU64(&out->view) &&
         dec->GetU64(&out->slot) && dec->GetU8(&out->value_kind) &&
         dec->GetBool(&out->direct) && DecodeSigList(dec, &out->sigs);
}

void ReplyCertificate::EncodeTo(Encoder* enc) const {
  EncodeDigestTo(enc, reply_digest);
  enc->PutU32(static_cast<uint32_t>(sigs.size()));
  for (const auto& s : sigs) s.EncodeTo(enc);
}

bool ReplyCertificate::DecodeFrom(Decoder* dec, ReplyCertificate* out) {
  return DecodeDigestFrom(dec, &out->reply_digest) &&
         DecodeSigList(dec, &out->sigs);
}

}  // namespace qanaat
