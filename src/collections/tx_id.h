#ifndef QANAAT_COLLECTIONS_TX_ID_H_
#define QANAAT_COLLECTIONS_TX_ID_H_

#include <optional>
#include <string>
#include <vector>

#include "collections/collection_id.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"

namespace qanaat {

/// Local part α = [X:n] of a transaction ID (paper §3.3): collection label
/// X (+ the shard it executes on) and the sequence number n of the
/// transaction within that collection shard.
struct LocalPart {
  CollectionId collection;
  ShardId shard = 0;
  SeqNo n = 0;

  void EncodeTo(Encoder* enc) const {
    collection.EncodeTo(enc);
    enc->PutU16(shard);
    enc->PutU64(n);
  }
  static bool DecodeFrom(Decoder* dec, LocalPart* out) {
    return CollectionId::DecodeFrom(dec, &out->collection) &&
           dec->GetU16(&out->shard) && dec->GetU64(&out->n);
  }

  std::string ToString() const;

  friend bool operator==(const LocalPart& a, const LocalPart& b) {
    return a.collection == b.collection && a.shard == b.shard && a.n == b.n;
  }
};

/// One entry Y:m of the global part γ: the local sequence number m of the
/// last transaction committed on order-dependent collection d_Y at the
/// time this transaction was ordered. Captures the state the executors
/// must read (paper §3.3, §4.2).
struct GammaEntry {
  CollectionId collection;
  SeqNo m = 0;

  void EncodeTo(Encoder* enc) const {
    collection.EncodeTo(enc);
    enc->PutU64(m);
  }
  static bool DecodeFrom(Decoder* dec, GammaEntry* out) {
    return CollectionId::DecodeFrom(dec, &out->collection) &&
           dec->GetU64(&out->m);
  }
  friend bool operator==(const GammaEntry& a, const GammaEntry& b) {
    return a.collection == b.collection && a.m == b.m;
  }
};

/// Transaction identifier ID = ⟨α, γ⟩ assigned during the ordering phase.
///
/// For cross-shard transactions the full ID is a *concatenation* of the
/// per-shard local parts (paper §4.3.2: "the ID of the commit messages is
/// a concatenation of the received IDs"); `alpha` is the part for the
/// shard at hand and `extra_alphas` the parts assigned by other involved
/// clusters.
struct TxId {
  LocalPart alpha;
  std::vector<LocalPart> extra_alphas;
  std::vector<GammaEntry> gamma;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, TxId* out);

  /// γ lookup: sequence captured for collection Y, if present.
  std::optional<SeqNo> GammaFor(const CollectionId& y) const;

  std::string ToString() const;

  friend bool operator==(const TxId& a, const TxId& b) {
    return a.alpha == b.alpha && a.extra_alphas == b.extra_alphas &&
           a.gamma == b.gamma;
  }
};

/// The ⟨α, γ⟩ a cluster assigned for its shard of a cross-cluster block
/// (paper §4.3.2: the full ID of a cross-shard transaction concatenates
/// the IDs assigned by every involved cluster). The shared-collection
/// chain of a shard is replicated identically across enterprises, so the
/// assignment of the initiator-enterprise cluster applies to every
/// cluster maintaining that shard.
struct ShardAssignment {
  int cluster = 0;
  LocalPart alpha;
  std::vector<GammaEntry> gamma;

  void EncodeTo(Encoder* enc) const {
    enc->PutU32(static_cast<uint32_t>(cluster));
    alpha.EncodeTo(enc);
    enc->PutU16(static_cast<uint16_t>(gamma.size()));
    for (const auto& g : gamma) g.EncodeTo(enc);
  }
  static bool DecodeFrom(Decoder* dec, ShardAssignment* out) {
    uint32_t c;
    if (!dec->GetU32(&c)) return false;
    out->cluster = static_cast<int>(c);
    if (!LocalPart::DecodeFrom(dec, &out->alpha)) return false;
    uint16_t ng;
    if (!dec->GetU16(&ng)) return false;
    out->gamma.resize(ng);
    for (auto& g : out->gamma) {
      if (!GammaEntry::DecodeFrom(dec, &g)) return false;
    }
    return true;
  }
  friend bool operator==(const ShardAssignment& x, const ShardAssignment& y) {
    return x.cluster == y.cluster && x.alpha == y.alpha && x.gamma == y.gamma;
  }
};

/// The two blockchain-ledger consistency predicates of §3.3. `earlier`
/// and `later` must be transactions of the same data collection with
/// earlier ordered before later.
///
/// * Local consistency:  earlier.n < later.n
/// * Global consistency: ∀ d_Y ∈ γ(earlier) ∩ γ(later):
///                       earlier.m ≤ later.m
Status CheckLocalConsistency(const TxId& earlier, const TxId& later);
Status CheckGlobalConsistency(const TxId& earlier, const TxId& later);

}  // namespace qanaat

#endif  // QANAAT_COLLECTIONS_TX_ID_H_
