#ifndef QANAAT_COLLECTIONS_COLLECTION_ID_H_
#define QANAAT_COLLECTIONS_COLLECTION_ID_H_

#include <string>

#include "common/enterprise_set.h"
#include "common/serde.h"
#include "common/types.h"

namespace qanaat {

/// Identifier of a data collection (paper §3.2): the set of enterprises
/// that share it. d_A is a local collection, d_ABCD the root of a
/// 4-enterprise workflow, d_AB an intermediate collection.
///
/// A collection is a *logical* partition — creating one has no
/// configuration cost — and the same EnterpriseSet denotes the same
/// collection across all workflows those enterprises participate in
/// (§3.2's cross-workflow consistency rule).
struct CollectionId {
  EnterpriseSet members;

  CollectionId() = default;
  explicit CollectionId(EnterpriseSet m) : members(m) {}

  bool IsLocal() const { return members.size() == 1; }
  bool IsRootOf(int enterprise_count) const {
    return members == EnterpriseSet::All(enterprise_count);
  }

  /// Order-dependency (§3.2): d_this is order-dependent on d_other iff
  /// this.members ⊆ other.members. Transactions here may then read
  /// d_other's records.
  bool OrderDependentOn(const CollectionId& other) const {
    return members.IsSubsetOf(other.members);
  }

  /// Read rule (§3.5 rule 2): a transaction executing on d_this may read
  /// records of d_other iff this ⊆ other.
  bool CanRead(const CollectionId& other) const {
    return OrderDependentOn(other);
  }

  /// Privacy-preserving verification direction (§3.2): d_this may *verify*
  /// (not read) records of d_other iff other ⊂ this.
  bool CanVerify(const CollectionId& other) const {
    return other.members.IsProperSubsetOf(members);
  }

  std::string Label() const { return "d_" + members.Label(); }

  void EncodeTo(Encoder* enc) const { enc->PutU16(members.mask()); }
  static bool DecodeFrom(Decoder* dec, CollectionId* out) {
    uint16_t m;
    if (!dec->GetU16(&m)) return false;
    out->members = EnterpriseSet(m);
    return true;
  }

  friend bool operator==(const CollectionId& a, const CollectionId& b) {
    return a.members == b.members;
  }
  friend bool operator!=(const CollectionId& a, const CollectionId& b) {
    return !(a == b);
  }
  friend bool operator<(const CollectionId& a, const CollectionId& b) {
    return a.members < b.members;
  }
};

/// One shard of one data collection: the unit a cluster maintains and a
/// consensus instance orders (paper §3.6).
struct ShardRef {
  CollectionId collection;
  ShardId shard = 0;

  friend bool operator==(const ShardRef& a, const ShardRef& b) {
    return a.collection == b.collection && a.shard == b.shard;
  }
  friend bool operator<(const ShardRef& a, const ShardRef& b) {
    if (a.collection != b.collection) return a.collection < b.collection;
    return a.shard < b.shard;
  }

  std::string Label() const {
    return collection.Label() + "/" + std::to_string(shard);
  }
};

}  // namespace qanaat

#endif  // QANAAT_COLLECTIONS_COLLECTION_ID_H_
