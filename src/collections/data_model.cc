#include "collections/data_model.h"

namespace qanaat {

DataModel::DataModel(int enterprise_count)
    : enterprise_count_(enterprise_count) {}

Status DataModel::AddWorkflow(EnterpriseSet members) {
  if (members.size() < 2) {
    return Status::InvalidArgument("a workflow needs at least 2 enterprises");
  }
  if (!members.IsSubsetOf(EnterpriseSet::All(enterprise_count_))) {
    return Status::InvalidArgument("workflow references unknown enterprise");
  }
  workflows_.insert(members);
  // Root collection, shared by all members. Reused if it already exists
  // (same group collaborating in another workflow).
  collections_.emplace(CollectionId(members), 0);
  // Local collections. §3.2: one local collection per enterprise, shared
  // across every workflow it participates in.
  for (EnterpriseId e : members.Members()) {
    collections_.emplace(CollectionId(EnterpriseSet::Single(e)), 0);
  }
  return Status::Ok();
}

Status DataModel::AddIntermediateCollection(EnterpriseSet members,
                                            int shard_count) {
  if (members.size() < 2) {
    return Status::InvalidArgument(
        "an intermediate collection needs >= 2 enterprises");
  }
  bool inside_some_workflow = false;
  for (const auto& wf : workflows_) {
    if (members.IsSubsetOf(wf)) {
      inside_some_workflow = true;
      break;
    }
  }
  if (!inside_some_workflow) {
    return Status::FailedPrecondition(
        "collection " + members.Label() +
        " is not a subset of any registered workflow");
  }
  collections_.emplace(CollectionId(members), shard_count);
  return Status::Ok();
}

void DataModel::SetShardCount(const CollectionId& c, int shards) {
  collections_[c] = shards;
}

int DataModel::ShardCountOf(const CollectionId& c) const {
  auto it = collections_.find(c);
  if (it == collections_.end() || it->second == 0) return default_shards_;
  return it->second;
}

bool DataModel::HasCollection(const CollectionId& c) const {
  return collections_.count(c) > 0;
}

std::vector<CollectionId> DataModel::Collections() const {
  std::vector<CollectionId> out;
  out.reserve(collections_.size());
  for (const auto& [c, _] : collections_) out.push_back(c);
  return out;
}

std::vector<CollectionId> DataModel::MaintainedBy(EnterpriseId e) const {
  std::vector<CollectionId> out;
  for (const auto& [c, _] : collections_) {
    if (c.members.Contains(e)) out.push_back(c);
  }
  return out;
}

std::vector<CollectionId> DataModel::OrderDependenciesOf(
    const CollectionId& x) const {
  std::vector<CollectionId> out;
  for (const auto& [c, _] : collections_) {
    if (c != x && x.members.IsProperSubsetOf(c.members)) out.push_back(c);
  }
  return out;
}

Status DataModel::ValidateWrite(const CollectionId& target,
                                EnterpriseId initiator) const {
  if (!HasCollection(target)) {
    return Status::NotFound("collection " + target.Label() +
                            " does not exist");
  }
  if (!target.members.Contains(initiator)) {
    return Status::PermissionDenied(
        "enterprise " + EnterpriseSet::Single(initiator).Label() +
        " is not involved in " + target.Label());
  }
  return Status::Ok();
}

Status DataModel::ValidateRead(const CollectionId& on,
                               const CollectionId& from) const {
  if (!HasCollection(on) || !HasCollection(from)) {
    return Status::NotFound("unknown collection");
  }
  if (!on.CanRead(from)) {
    return Status::PermissionDenied(
        "transactions on " + on.Label() + " may not read " + from.Label() +
        " (X ⊆ Y violated)");
  }
  return Status::Ok();
}

}  // namespace qanaat
