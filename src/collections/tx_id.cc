#include "collections/tx_id.h"

namespace qanaat {

std::string LocalPart::ToString() const {
  std::string s = "[" + collection.members.Label();
  if (shard != 0) s += "^" + std::to_string(shard);
  s += ":" + std::to_string(n) + "]";
  return s;
}

void TxId::EncodeTo(Encoder* enc) const {
  alpha.EncodeTo(enc);
  enc->PutU16(static_cast<uint16_t>(extra_alphas.size()));
  for (const auto& a : extra_alphas) a.EncodeTo(enc);
  enc->PutU16(static_cast<uint16_t>(gamma.size()));
  for (const auto& g : gamma) g.EncodeTo(enc);
}

bool TxId::DecodeFrom(Decoder* dec, TxId* out) {
  if (!LocalPart::DecodeFrom(dec, &out->alpha)) return false;
  uint16_t na;
  if (!dec->GetU16(&na)) return false;
  out->extra_alphas.resize(na);
  for (auto& a : out->extra_alphas) {
    if (!LocalPart::DecodeFrom(dec, &a)) return false;
  }
  uint16_t ng;
  if (!dec->GetU16(&ng)) return false;
  out->gamma.resize(ng);
  for (auto& g : out->gamma) {
    if (!GammaEntry::DecodeFrom(dec, &g)) return false;
  }
  return true;
}

std::optional<SeqNo> TxId::GammaFor(const CollectionId& y) const {
  for (const auto& g : gamma) {
    if (g.collection == y) return g.m;
  }
  return std::nullopt;
}

std::string TxId::ToString() const {
  std::string s = "<" + alpha.ToString();
  for (const auto& a : extra_alphas) s += a.ToString();
  s += ", ";
  if (gamma.empty()) {
    s += "0";  // γ = ∅
  } else {
    s += "[";
    for (size_t i = 0; i < gamma.size(); ++i) {
      if (i) s += ", ";
      s += gamma[i].collection.members.Label() + ":" +
           std::to_string(gamma[i].m);
    }
    s += "]";
  }
  s += ">";
  return s;
}

Status CheckLocalConsistency(const TxId& earlier, const TxId& later) {
  if (earlier.alpha.collection != later.alpha.collection ||
      earlier.alpha.shard != later.alpha.shard) {
    return Status::InvalidArgument(
        "local consistency is defined per collection shard");
  }
  if (earlier.alpha.n >= later.alpha.n) {
    return Status::FailedPrecondition(
        "local consistency violated: " + earlier.ToString() +
        " ordered before " + later.ToString());
  }
  return Status::Ok();
}

Status CheckGlobalConsistency(const TxId& earlier, const TxId& later) {
  for (const auto& ge : earlier.gamma) {
    auto ml = later.GammaFor(ge.collection);
    if (ml.has_value() && ge.m > *ml) {
      return Status::FailedPrecondition(
          "global consistency violated on " + ge.collection.Label() + ": " +
          earlier.ToString() + " -> " + later.ToString());
    }
  }
  return Status::Ok();
}

}  // namespace qanaat
