#ifndef QANAAT_COLLECTIONS_DATA_MODEL_H_
#define QANAAT_COLLECTIONS_DATA_MODEL_H_

#include <map>
#include <set>
#include <vector>

#include "collections/collection_id.h"
#include "common/status.h"

namespace qanaat {

/// The hierarchical data model of a Qanaat deployment (paper §3.2, Fig 2).
///
/// Tracks every data collection across all registered collaboration
/// workflows. Collections are keyed by their enterprise set, so when an
/// enterprise (or group) participates in several workflows the same
/// collection object is shared — this is how Qanaat provides consistency
/// across workflows (Fig 2(c): d_L, d_M, d_LM shared between the KLM and
/// LMN workflows).
class DataModel {
 public:
  explicit DataModel(int enterprise_count);

  int enterprise_count() const { return enterprise_count_; }

  /// Registers a collaboration workflow among `members`: creates (or
  /// reuses) the root collection d_members and a local collection per
  /// member. Intermediate collections are added separately — they are
  /// optional and exist only where a subset actually collaborates.
  Status AddWorkflow(EnterpriseSet members);

  /// Creates an intermediate collection shared by `members` (must be a
  /// subset of some workflow's members, with 2 <= |members| < workflow
  /// size). `shard_count` is the sharding schema agreed by all involved
  /// enterprises (§3.6); 0 means "use the deployment default".
  Status AddIntermediateCollection(EnterpriseSet members, int shard_count = 0);

  /// Sets/gets the sharding schema of a collection.
  void SetShardCount(const CollectionId& c, int shards);
  int ShardCountOf(const CollectionId& c) const;
  void set_default_shard_count(int s) { default_shards_ = s; }

  bool HasCollection(const CollectionId& c) const;
  std::vector<CollectionId> Collections() const;
  std::vector<EnterpriseSet> Workflows() const {
    return {workflows_.begin(), workflows_.end()};
  }

  /// All collections enterprise `e` maintains: its local collection, every
  /// root it participates in, and every intermediate containing it (§3.2:
  /// "every enterprise maintains all data collections that the enterprise
  /// is involved in").
  std::vector<CollectionId> MaintainedBy(EnterpriseId e) const;

  /// All *existing* collections d_Y (Y ≠ X) that d_X is order-dependent
  /// on, i.e. X ⊂ Y. These are the γ entries the ordering primary captures
  /// when assigning a TxId on d_X (§4.1).
  std::vector<CollectionId> OrderDependenciesOf(const CollectionId& x) const;

  /// Write rule (§3.2): results of a transaction executed on d_X are
  /// written only to d_X, and the submitting enterprise must be involved.
  Status ValidateWrite(const CollectionId& target,
                       EnterpriseId initiator) const;

  /// Read rule (§3.2/§3.5): a transaction on d_X may read d_Y iff X ⊆ Y
  /// and both exist.
  Status ValidateRead(const CollectionId& on, const CollectionId& from) const;

  /// Access rule (§3.5 rule 1): may enterprise `e` access records of `c`?
  bool CanAccess(EnterpriseId e, const CollectionId& c) const {
    return c.members.Contains(e);
  }

 private:
  int enterprise_count_;
  int default_shards_ = 1;
  std::set<EnterpriseSet> workflows_;
  std::map<CollectionId, int> collections_;  // -> shard count (0 = default)
};

}  // namespace qanaat

#endif  // QANAAT_COLLECTIONS_DATA_MODEL_H_
