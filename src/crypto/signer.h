#ifndef QANAAT_CRYPTO_SIGNER_H_
#define QANAAT_CRYPTO_SIGNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "common/types.h"
#include "crypto/sha256.h"

namespace qanaat {

/// A signature over a digest by one node, ⟨m⟩_σi in the paper's notation.
///
/// Substitution note (see DESIGN.md §2): instead of ECDSA over a PKI we use
/// a deterministic keyed digest, tag = SHA-256(secret_key(i) ‖ digest)
/// truncated to 16 bytes. Unforgeability holds against the simulated
/// adversary because secret keys never leave the KeyStore; protocol code
/// only ever observes sign/verify outcomes, exactly as with real
/// signatures.
struct Signature {
  NodeId signer = kInvalidNode;
  uint64_t tag_lo = 0;
  uint64_t tag_hi = 0;

  bool operator==(const Signature& o) const {
    return signer == o.signer && tag_lo == o.tag_lo && tag_hi == o.tag_hi;
  }

  void EncodeTo(Encoder* enc) const {
    enc->PutU32(signer);
    enc->PutU64(tag_lo);
    enc->PutU64(tag_hi);
  }
  static bool DecodeFrom(Decoder* dec, Signature* out) {
    return dec->GetU32(&out->signer) && dec->GetU64(&out->tag_lo) &&
           dec->GetU64(&out->tag_hi);
  }
};

/// Public-key infrastructure for the deployment: issues per-node secret
/// keys and performs sign/verify. One global instance per simulation.
///
/// Also issues threshold signature *shares* (σ⟨m⟩_i): a share is a
/// signature under a per-node threshold key; a ThresholdCert combining k
/// distinct valid shares is accepted (paper §3.1 uses n−f shares).
class KeyStore {
 public:
  explicit KeyStore(uint64_t seed) : seed_(seed) {}

  /// Sign a digest with node i's secret key.
  Signature Sign(NodeId i, const Sha256Digest& digest) const;

  /// Verify a signature allegedly from sig.signer over the digest.
  bool Verify(const Signature& sig, const Sha256Digest& digest) const;

  /// Produce a threshold signature share for node i.
  Signature SignShare(NodeId i, const Sha256Digest& digest) const;
  bool VerifyShare(const Signature& share, const Sha256Digest& digest) const;

  /// Produce a forged signature that does NOT verify (used by Byzantine
  /// node models in tests and fault-injection benches).
  Signature Forge(NodeId claimed_signer) const;

 private:
  Signature SignWithDomain(NodeId i, uint64_t domain,
                           const Sha256Digest& digest) const;

  uint64_t seed_;
};

/// Appends `signer` to the flat distinct-signer list unless already
/// present. Certificate validators count distinct signers over
/// quorum-sized lists, where a linear probe over a small vector beats
/// the tree allocation per signature this replaced; shared here so the
/// threshold-share and commit-quorum validators cannot diverge.
inline void AddDistinctSigner(std::vector<NodeId>* distinct, NodeId signer) {
  for (NodeId n : *distinct) {
    if (n == signer) return;
  }
  distinct->push_back(signer);
}

/// A threshold signature certificate: k signature shares from distinct
/// nodes over the same digest. Valid iff it has >= `threshold` distinct
/// valid shares.
struct ThresholdCert {
  std::vector<Signature> shares;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ThresholdCert* out);

  /// Checks distinctness of signers and validity of every share.
  bool Valid(const KeyStore& ks, const Sha256Digest& digest,
             size_t threshold) const;
};

}  // namespace qanaat

#endif  // QANAAT_CRYPTO_SIGNER_H_
