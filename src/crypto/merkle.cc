#include "crypto/merkle.h"

#include <cstring>

namespace qanaat {

Sha256Digest MerkleTree::HashPair(const Sha256Digest& a,
                                  const Sha256Digest& b) {
  // Two child digests fill exactly one compression block, so the padded
  // second compression of a general-purpose hash adds nothing here: every
  // input has the same fixed length and the children are themselves
  // collision-resistant digests. Seal, chain audits and proof
  // verification all combine children through this one function.
  uint8_t block[64];
  std::memcpy(block, a.bytes.data(), 32);
  std::memcpy(block + 32, b.bytes.data(), 32);
  return Sha256::CompressBlock(block);
}

MerkleTree::MerkleTree(std::vector<Sha256Digest> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    levels_.push_back({Sha256::Hash("", 0)});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& cur = levels_.back();
    std::vector<Sha256Digest> next;
    next.reserve((cur.size() + 1) / 2);
    for (size_t i = 0; i < cur.size(); i += 2) {
      const Sha256Digest& left = cur[i];
      const Sha256Digest& right = (i + 1 < cur.size()) ? cur[i + 1] : cur[i];
      next.push_back(HashPair(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

std::vector<Sha256Digest> MerkleTree::Prove(size_t index) const {
  std::vector<Sha256Digest> proof;
  if (index >= leaf_count_) return proof;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& cur = levels_[lvl];
    size_t sibling = index ^ 1;
    if (sibling >= cur.size()) sibling = index;  // duplicated last node
    proof.push_back(cur[sibling]);
    index /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Sha256Digest& leaf, size_t index,
                        const std::vector<Sha256Digest>& proof,
                        const Sha256Digest& root) {
  Sha256Digest acc = leaf;
  for (const auto& sib : proof) {
    if (index % 2 == 0) {
      acc = HashPair(acc, sib);
    } else {
      acc = HashPair(sib, acc);
    }
    index /= 2;
  }
  return acc == root;
}

Sha256Digest MerkleTree::RootOf(const std::vector<Sha256Digest>& leaves) {
  return MerkleTree(leaves).Root();
}

}  // namespace qanaat
