#include "crypto/merkle.h"

namespace qanaat {

Sha256Digest MerkleTree::HashPair(const Sha256Digest& a,
                                  const Sha256Digest& b) {
  Sha256 h;
  h.Update(a.bytes.data(), a.bytes.size());
  h.Update(b.bytes.data(), b.bytes.size());
  return h.Finalize();
}

MerkleTree::MerkleTree(std::vector<Sha256Digest> leaves)
    : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    levels_.push_back({Sha256::Hash("", 0)});
    return;
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& cur = levels_.back();
    std::vector<Sha256Digest> next;
    next.reserve((cur.size() + 1) / 2);
    for (size_t i = 0; i < cur.size(); i += 2) {
      const Sha256Digest& left = cur[i];
      const Sha256Digest& right = (i + 1 < cur.size()) ? cur[i + 1] : cur[i];
      next.push_back(HashPair(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

std::vector<Sha256Digest> MerkleTree::Prove(size_t index) const {
  std::vector<Sha256Digest> proof;
  if (index >= leaf_count_) return proof;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& cur = levels_[lvl];
    size_t sibling = index ^ 1;
    if (sibling >= cur.size()) sibling = index;  // duplicated last node
    proof.push_back(cur[sibling]);
    index /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Sha256Digest& leaf, size_t index,
                        const std::vector<Sha256Digest>& proof,
                        const Sha256Digest& root) {
  Sha256Digest acc = leaf;
  for (const auto& sib : proof) {
    if (index % 2 == 0) {
      acc = HashPair(acc, sib);
    } else {
      acc = HashPair(sib, acc);
    }
    index /= 2;
  }
  return acc == root;
}

Sha256Digest MerkleTree::RootOf(const std::vector<Sha256Digest>& leaves) {
  return MerkleTree(leaves).Root();
}

}  // namespace qanaat
