#ifndef QANAAT_CRYPTO_MERKLE_H_
#define QANAAT_CRYPTO_MERKLE_H_

#include <vector>

#include "crypto/sha256.h"

namespace qanaat {

/// Binary Merkle tree over a list of leaf digests. Blocks carry the root so
/// a single commit certificate covers every transaction in the batch, and
/// clients can be given O(log n) inclusion proofs.
class MerkleTree {
 public:
  /// Builds the tree; an empty leaf list yields the hash of the empty
  /// string as root. Odd levels duplicate the last node (Bitcoin-style).
  explicit MerkleTree(std::vector<Sha256Digest> leaves);

  const Sha256Digest& Root() const { return levels_.back()[0]; }
  size_t leaf_count() const { return leaf_count_; }

  /// Sibling path from leaf `index` to the root.
  std::vector<Sha256Digest> Prove(size_t index) const;

  /// Verifies an inclusion proof produced by Prove().
  static bool Verify(const Sha256Digest& leaf, size_t index,
                     const std::vector<Sha256Digest>& proof,
                     const Sha256Digest& root);

  /// Convenience: root over leaves without keeping the tree.
  static Sha256Digest RootOf(const std::vector<Sha256Digest>& leaves);

 private:
  static Sha256Digest HashPair(const Sha256Digest& a, const Sha256Digest& b);

  size_t leaf_count_;
  // levels_[0] = leaves (possibly padded), levels_.back() = {root}
  std::vector<std::vector<Sha256Digest>> levels_;
};

}  // namespace qanaat

#endif  // QANAAT_CRYPTO_MERKLE_H_
