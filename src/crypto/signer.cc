#include "crypto/signer.h"

#include <set>

namespace qanaat {

namespace {
constexpr uint64_t kDomainSign = 0x5349474e;   // "SIGN"
constexpr uint64_t kDomainShare = 0x53484152;  // "SHAR"
}  // namespace

Signature KeyStore::SignWithDomain(NodeId i, uint64_t domain,
                                   const Sha256Digest& digest) const {
  // secret_key(i) = (seed, i); never exposed outside this class.
  Sha256 h;
  h.Update(&seed_, sizeof(seed_));
  h.Update(&domain, sizeof(domain));
  uint32_t id = i;
  h.Update(&id, sizeof(id));
  h.Update(digest.bytes.data(), digest.bytes.size());
  Sha256Digest d = h.Finalize();
  Signature sig;
  sig.signer = i;
  std::memcpy(&sig.tag_lo, d.bytes.data(), 8);
  std::memcpy(&sig.tag_hi, d.bytes.data() + 8, 8);
  return sig;
}

Signature KeyStore::Sign(NodeId i, const Sha256Digest& digest) const {
  return SignWithDomain(i, kDomainSign, digest);
}

bool KeyStore::Verify(const Signature& sig, const Sha256Digest& digest) const {
  if (sig.signer == kInvalidNode) return false;
  Signature expect = SignWithDomain(sig.signer, kDomainSign, digest);
  return expect == sig;
}

Signature KeyStore::SignShare(NodeId i, const Sha256Digest& digest) const {
  return SignWithDomain(i, kDomainShare, digest);
}

bool KeyStore::VerifyShare(const Signature& share,
                           const Sha256Digest& digest) const {
  if (share.signer == kInvalidNode) return false;
  Signature expect = SignWithDomain(share.signer, kDomainShare, digest);
  return expect == share;
}

Signature KeyStore::Forge(NodeId claimed_signer) const {
  Signature sig;
  sig.signer = claimed_signer;
  sig.tag_lo = 0xbadbadbadbadbadbULL;
  sig.tag_hi = 0xdeadbeefdeadbeefULL;
  return sig;
}

void ThresholdCert::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(shares.size()));
  for (const auto& s : shares) s.EncodeTo(enc);
}

bool ThresholdCert::DecodeFrom(Decoder* dec, ThresholdCert* out) {
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > 4096) return false;  // sanity bound
  out->shares.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!Signature::DecodeFrom(dec, &out->shares[i])) return false;
  }
  return true;
}

bool ThresholdCert::Valid(const KeyStore& ks, const Sha256Digest& digest,
                          size_t threshold) const {
  std::set<NodeId> distinct;
  for (const auto& s : shares) {
    if (!ks.VerifyShare(s, digest)) return false;
    distinct.insert(s.signer);
  }
  return distinct.size() >= threshold;
}

}  // namespace qanaat
