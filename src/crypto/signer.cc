#include "crypto/signer.h"

#include <cstring>

#include "common/rng.h"

namespace qanaat {

namespace {
constexpr uint64_t kDomainSign = 0x5349474e;   // "SIGN"
constexpr uint64_t kDomainShare = 0x53484152;  // "SHAR"
}  // namespace

Signature KeyStore::SignWithDomain(NodeId i, uint64_t domain,
                                   const Sha256Digest& digest) const {
  // secret_key(i) = (seed, i); never exposed outside this class.
  //
  // The tag is a keyed PRF over the 256-bit digest: two lanes of chained
  // SplitMix64 finalizers, keyed by (seed, domain, signer). This replaced
  // an inner SHA-256 — sign/verify dominated the sim-core wall clock —
  // and the substitution argument of DESIGN.md §2 is unchanged:
  // unforgeability against the *simulated* adversary holds because
  // protocol code never computes tags itself (secret keys never leave
  // the KeyStore; Byzantine models use Forge(), which never verifies).
  uint64_t key = seed_ ^ Mix64(domain + 0x51ed270b9f652295ULL) ^
                 Mix64(static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
  uint64_t lo = key;
  uint64_t hi = ~key;
  uint64_t w[4];
  std::memcpy(w, digest.bytes.data(), sizeof(w));
  for (int k = 0; k < 4; ++k) {
    lo = Mix64(lo ^ w[k]);
    hi = Mix64(hi + w[k] + 0x9e3779b97f4a7c15ULL * (k + 1));
  }
  Signature sig;
  sig.signer = i;
  sig.tag_lo = Mix64(lo ^ (hi >> 32));
  sig.tag_hi = Mix64(hi ^ (lo << 32) ^ key);
  return sig;
}

Signature KeyStore::Sign(NodeId i, const Sha256Digest& digest) const {
  return SignWithDomain(i, kDomainSign, digest);
}

bool KeyStore::Verify(const Signature& sig, const Sha256Digest& digest) const {
  if (sig.signer == kInvalidNode) return false;
  Signature expect = SignWithDomain(sig.signer, kDomainSign, digest);
  return expect == sig;
}

Signature KeyStore::SignShare(NodeId i, const Sha256Digest& digest) const {
  return SignWithDomain(i, kDomainShare, digest);
}

bool KeyStore::VerifyShare(const Signature& share,
                           const Sha256Digest& digest) const {
  if (share.signer == kInvalidNode) return false;
  Signature expect = SignWithDomain(share.signer, kDomainShare, digest);
  return expect == share;
}

Signature KeyStore::Forge(NodeId claimed_signer) const {
  Signature sig;
  sig.signer = claimed_signer;
  sig.tag_lo = 0xbadbadbadbadbadbULL;
  sig.tag_hi = 0xdeadbeefdeadbeefULL;
  return sig;
}

void ThresholdCert::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(shares.size()));
  for (const auto& s : shares) s.EncodeTo(enc);
}

bool ThresholdCert::DecodeFrom(Decoder* dec, ThresholdCert* out) {
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > 4096) return false;  // sanity bound
  out->shares.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!Signature::DecodeFrom(dec, &out->shares[i])) return false;
  }
  return true;
}

bool ThresholdCert::Valid(const KeyStore& ks, const Sha256Digest& digest,
                          size_t threshold) const {
  std::vector<NodeId> distinct;
  distinct.reserve(shares.size());
  for (const auto& s : shares) {
    if (!ks.VerifyShare(s, digest)) return false;
    AddDistinctSigner(&distinct, s.signer);
  }
  return distinct.size() >= threshold;
}

}  // namespace qanaat
