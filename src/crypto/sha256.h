#ifndef QANAAT_CRYPTO_SHA256_H_
#define QANAAT_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace qanaat {

/// 32-byte SHA-256 digest. Used as the collision-resistant hash D(.) of the
/// paper (§3.1) for message digests, block hashes and Merkle roots.
struct Sha256Digest {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Sha256Digest& o) const { return bytes == o.bytes; }
  bool operator!=(const Sha256Digest& o) const { return bytes != o.bytes; }
  bool operator<(const Sha256Digest& o) const { return bytes < o.bytes; }

  /// First 8 bytes as integer — convenient map key / short id.
  uint64_t Prefix64() const {
    uint64_t v;
    std::memcpy(&v, bytes.data(), 8);
    return v;
  }

  /// Lowercase hex string.
  std::string ToHex() const;
};

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(const std::string& s) { Update(s.data(), s.size()); }
  void Update(const std::vector<uint8_t>& v) { Update(v.data(), v.size()); }
  Sha256Digest Finalize();

  /// One-shot convenience.
  static Sha256Digest Hash(const void* data, size_t len);
  /// Single raw compression of exactly one 64-byte block from the IV
  /// (Davies–Meyer style, no length padding). Half the cost of Hash()
  /// for 64-byte inputs; used by the Merkle tree to combine two child
  /// digests, where the input length is fixed so padding adds nothing.
  static Sha256Digest CompressBlock(const uint8_t block[64]);
  static Sha256Digest Hash(const std::string& s) {
    return Hash(s.data(), s.size());
  }
  static Sha256Digest Hash(const std::vector<uint8_t>& v) {
    return Hash(v.data(), v.size());
  }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t h_[8];
  uint64_t total_len_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace qanaat

#endif  // QANAAT_CRYPTO_SHA256_H_
