#ifndef QANAAT_SIM_NETWORK_H_
#define QANAAT_SIM_NETWORK_H_

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/env.h"
#include "sim/message.h"

namespace qanaat {

class Actor;

/// Growable dense bitset over NodeIds — the flat form of a per-node
/// allow-list (firewall wiring). Membership is one word load on the
/// per-send hot path.
class NodeBitset {
 public:
  void Set(NodeId id) {
    size_t word = id / 64;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= uint64_t{1} << (id % 64);
  }
  bool Test(NodeId id) const {
    size_t word = id / 64;
    return word < words_.size() &&
           (words_[word] >> (id % 64)) & uint64_t{1};
  }

 private:
  std::vector<uint64_t> words_;
};

/// Simulated transport: per-region RTT matrix, bandwidth, jitter, message
/// drops, partitions, and *physical link restrictions* (the privacy
/// firewall's wiring constraint, paper §3.4: each filter has a physical
/// connection only to the rows above/below, so a malicious execution node
/// cannot reach clients at all).
///
/// Fault injection beyond the global drop rate is expressed as per-link
/// (or default, all-link) `LinkFault` rules: independent drop, duplicate
/// and reorder-delay coins plus a fixed extra latency. Rules are consulted
/// only after the cheap deterministic checks (restriction, partition,
/// crashed endpoints), so blocked sends never consume randomness and a
/// seed replays bit-identically regardless of how many sends were blocked.
class Network {
 public:
  /// Per-link fault rule. All probabilities are independent coins drawn
  /// per message; `reorder_delay_us` bounds the extra delay a reordered
  /// (or duplicated) copy receives, which bounds how far delivery order
  /// can diverge from send order. `silence_mask` is a *deterministic*
  /// per-message-type drop (bit = MsgType): a selective-silence adversary
  /// swallows e.g. only view-change or checkpoint traffic while every
  /// other message passes. Silenced sends consume no randomness, so a
  /// seed replays bit-identically regardless of how many were swallowed.
  struct LinkFault {
    double drop = 0.0;       // loss probability
    double duplicate = 0.0;  // probability of delivering a second copy
    double reorder = 0.0;    // probability of an extra random delay
    SimTime reorder_delay_us = 2000;
    SimTime extra_delay_us = 0;  // fixed additional one-way latency
    uint64_t silence_mask = 0;   // deterministic per-MsgType drop bits

    static constexpr uint64_t TypeBit(MsgType t) {
      return uint64_t{1} << static_cast<unsigned>(t);
    }
    bool Silences(MsgType t) const {
      return (silence_mask >> static_cast<unsigned>(t)) & uint64_t{1};
    }
    bool Destructive() const { return drop > 0.0 || silence_mask != 0; }
    bool Any() const {
      return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
             extra_delay_us > 0 || silence_mask != 0;
    }
  };

  explicit Network(Env* env);

  /// Adds a region; returns its id. Region 0 exists by default.
  int AddRegion();
  /// Sets the round-trip time between two regions (one-way = rtt/2).
  void SetRtt(int region_a, int region_b, SimTime rtt_us);
  int region_count() const { return static_cast<int>(rtt_.size()); }

  /// Registers an actor and assigns it a NodeId.
  NodeId Register(Actor* actor);
  Actor* actor(NodeId id) const { return actors_[id]; }
  size_t node_count() const { return actors_.size(); }

  /// Restricts `node` so it may exchange messages only with `peers`.
  /// Models the firewall's physical wiring. Unrestricted by default.
  void RestrictLinks(NodeId node, std::vector<NodeId> peers);
  bool LinkAllowed(NodeId from, NodeId to) const;

  /// Unicast with latency + bandwidth + jitter. Silently drops if either
  /// endpoint is crashed, the link is disallowed/partitioned, or a drop
  /// coin fires.
  void Send(NodeId from, NodeId to, MessageRef msg);
  void Multicast(NodeId from, const std::vector<NodeId>& to, MessageRef msg);

  /// Fault injection.
  void SetDropRate(double p) { drop_rate_ = p; }
  void Partition(NodeId a, NodeId b);  // symmetric
  void HealPartition(NodeId a, NodeId b);
  void HealAllPartitions();

  /// Installs a fault rule on the directed link from -> to.
  void SetLinkFault(NodeId from, NodeId to, const LinkFault& f);
  /// Installs a fault rule on both directions between a and b.
  void SetLinkFaultBetween(NodeId a, NodeId b, const LinkFault& f);
  /// Removes the per-link rules between a and b (the link falls back to
  /// the default rule, unlike installing an all-zero rule which shadows
  /// it).
  void ClearLinkFaultBetween(NodeId a, NodeId b);
  /// Default rule for links without a specific one (whole-network chaos).
  void SetDefaultLinkFault(const LinkFault& f);
  void ClearDefaultLinkFault() { have_default_fault_ = false; }
  /// Removes every per-link rule and the default rule.
  void ClearLinkFaults();

  /// Running hash over every scheduled delivery (time, endpoints, type)
  /// and every fault event folded in via NoteTraceEvent. Two runs of the
  /// same seed must produce the same value — the replayability anchor the
  /// chaos harness asserts.
  uint64_t trace_hash() const { return trace_hash_; }
  void NoteTraceEvent(uint64_t word);

  /// When enabled, records every (from, to) pair a message was actually
  /// scheduled on, so an auditor can re-check the link restrictions post
  /// hoc (firewall containment under fault injection). The accessor
  /// materializes a sorted pair list from the flat-keyed hot-path record.
  void set_record_delivered_links(bool on) { record_links_ = on; }
  std::vector<std::pair<NodeId, NodeId>> delivered_links() const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t blocked_sends() const { return blocked_sends_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t reordered() const { return reordered_; }
  uint64_t silenced() const { return silenced_; }

 private:
  /// Directed links are keyed by one packed word on every hot-path
  /// container: no pair comparisons, no tree walks.
  static constexpr uint64_t LinkKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }
  /// Mixes the packed key so the flat hash tables spread sequentially
  /// assigned NodeIds instead of clustering them.
  struct LinkKeyHash {
    size_t operator()(uint64_t k) const {
      return static_cast<size_t>(Mix64(k + 0x9e3779b97f4a7c15ULL));
    }
  };

  SimTime LatencyBetween(int region_a, int region_b);
  void RebuildOneWayCache();
  const LinkFault* FaultFor(NodeId from, NodeId to) const;
  /// Schedules one delivery at `arrival`, folding it into the trace hash
  /// and detecting overtakes (a later-sent message scheduled to arrive
  /// before an earlier-sent one on the same link).
  void ScheduleDelivery(NodeId from, NodeId to, SimTime arrival,
                        MessageRef msg);

  Env* env_;
  Rng rng_;
  std::vector<Actor*> actors_;
  std::vector<std::vector<SimTime>> rtt_;  // region x region RTT (µs)
  // Flattened one-way latency (rtt/2) per region pair, rebuilt on
  // AddRegion/SetRtt so the per-send lookup is one indexed load.
  std::vector<SimTime> one_way_;
  std::vector<std::unique_ptr<NodeBitset>> allowed_;  // per node
  // Symmetric partitions, keyed LinkKey(min, max): a small sorted vector
  // beats a tree for the few-entries, read-heavy partition set.
  std::vector<uint64_t> partitions_;
  std::unordered_map<uint64_t, LinkFault, LinkKeyHash> link_faults_;
  LinkFault default_fault_;
  bool have_default_fault_ = false;
  double drop_rate_ = 0.0;
  bool record_links_ = false;
  std::unordered_set<uint64_t, LinkKeyHash> delivered_links_;
  // Latest scheduled arrival per directed link, for overtake detection.
  // Dense node x node matrix (kNoArrival = never used): consulted on
  // every delivery, where even a flat hash map paid a mix + probe per
  // message. Rebuilt lazily when registrations outgrow it; node counts
  // are topology-sized, so the matrix stays a few hundred KB.
  static constexpr SimTime kNoArrival = -1;
  std::vector<SimTime> last_arrival_;
  size_t arrival_dim_ = 0;
  SimTime* ArrivalCell(NodeId from, NodeId to) {
    size_t need = static_cast<size_t>(from < to ? to : from) + 1;
    if (need > arrival_dim_) GrowArrivalMatrix(need);
    return &last_arrival_[static_cast<size_t>(from) * arrival_dim_ + to];
  }
  void GrowArrivalMatrix(size_t need);
  uint64_t trace_hash_ = 0x51ed270b9f652295ULL;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t blocked_sends_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t reordered_ = 0;
  uint64_t silenced_ = 0;
};

/// Base class for every simulated node (ordering node, execution node,
/// filter, client, endorser, orderer, ...).
///
/// CPU model: each actor is a serial server. A message arriving at time t
/// begins processing at max(t, busy_until) and occupies the CPU for
/// CostOf(msg); the handler runs when processing completes. Queueing delay
/// under load produces the saturation knees in the paper's
/// throughput/latency plots.
///
/// Crash model: Crash() opens a new *epoch*. Timers armed and deliveries
/// accepted in an earlier epoch are discarded even if the node has since
/// Recover()ed — a recovered process has none of its predecessor's timers
/// or half-processed messages (crash-stop semantics).
class Actor {
 public:
  Actor(Env* env, std::string name, int region = 0);
  virtual ~Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  NodeId id() const { return id_; }
  int region() const { return region_; }
  const std::string& name() const { return name_; }
  bool crashed() const { return crashed_; }
  uint64_t epoch() const { return epoch_; }

  /// Crash-stop the node (drops queued work and invalidates every timer
  /// and in-flight delivery of the current life) / bring it back.
  void Crash() {
    crashed_ = true;
    ++epoch_;
    OnCrash();
  }
  void Recover() {
    crashed_ = false;
    busy_until_ = 0;  // the restarted process starts with an idle CPU
    OnRecover();
  }

  /// Mark this node Byzantine for fault-injection runs; protocol
  /// subclasses consult this flag to misbehave.
  void SetByzantine(bool b) { byzantine_ = b; }
  bool byzantine() const { return byzantine_; }

  /// Gray-failure injection: every CPU charge (message processing and
  /// explicit ChargeCpu) is multiplied by `f`. A gray node is
  /// slow-but-alive — it keeps answering, just late enough to stall
  /// quorums and trip (or worse, *not* trip) failure detectors. 1.0
  /// restores full speed; the 1.0 path is bit-identical to a node that
  /// was never slowed.
  void SetCpuFactor(double f) { cpu_factor_ = f <= 0 ? 1.0 : f; }
  double cpu_factor() const { return cpu_factor_; }

  /// Byzantine-ordering injection hook: protocol subclasses that run a
  /// consensus engine make their primary equivocate (divergent digests to
  /// disjoint replica subsets). Default: ignore — only ordering nodes
  /// misbehave this way.
  virtual void SetEquivocating(bool /*on*/) {}

  /// Called by the network at delivery time (after transport latency);
  /// enqueues CPU work.
  void DeliverAt(SimTime arrival, NodeId from, MessageRef msg);

  /// Crash hook: subclasses drop volatile state a real process would
  /// lose (pending batches, un-fired timer bookkeeping). Durable state —
  /// the ledger, the store — survives, matching a process restart over
  /// persistent storage.
  virtual void OnCrash() {}
  /// Recovery hook, called when the node restarts: the place to kick off
  /// catch-up work (e.g. ledger state transfer) — a recovered process
  /// has no timers left from its previous life, so nothing else would.
  virtual void OnRecover() {}

  /// Handler, runs after CPU processing completes.
  virtual void OnMessage(NodeId from, const MessageRef& msg) = 0;
  /// Timer callback; `tag` identifies the purpose, `payload` the instance.
  virtual void OnTimer(uint64_t tag, uint64_t payload);

 protected:
  SimTime now() const { return env_->sim.now(); }
  Env* env() const { return env_; }

  void Send(NodeId to, MessageRef msg) { env_->net->Send(id_, to, msg); }
  void Multicast(const std::vector<NodeId>& to, MessageRef msg) {
    env_->net->Multicast(id_, to, msg);
  }
  /// Schedule OnTimer(tag, payload) after `delay`; fires unless crashed
  /// or armed in a previous life (pre-crash epoch).
  void StartTimer(SimTime delay, uint64_t tag, uint64_t payload = 0);
  /// Occupy the CPU for `d` more microseconds (e.g. executing a batch).
  /// The charge starts from now when the CPU is idle: extending a
  /// busy_until_ that lies in the past would under-charge by the idle gap.
  /// A gray-failed node (cpu_factor > 1) pays inflated charges.
  void ChargeCpu(SimTime d) {
    busy_until_ = std::max(now(), busy_until_) + Inflate(d);
  }

  /// Per-message CPU cost; default = base + verifications.
  virtual SimTime CostOf(const Message& msg) const;

 private:
  friend class Network;
  /// Applies the gray-failure CPU inflation. The factor-1.0 fast path
  /// performs no floating-point arithmetic, so un-slowed runs stay
  /// bit-identical to builds that predate the gray-failure adversary.
  SimTime Inflate(SimTime d) const {
    if (cpu_factor_ == 1.0) return d;
    return static_cast<SimTime>(static_cast<double>(d) * cpu_factor_);
  }

  Env* env_;
  std::string name_;
  int region_;
  NodeId id_;
  bool crashed_ = false;
  bool byzantine_ = false;
  uint64_t epoch_ = 0;
  SimTime busy_until_ = 0;
  double cpu_factor_ = 1.0;
};

}  // namespace qanaat

#endif  // QANAAT_SIM_NETWORK_H_
