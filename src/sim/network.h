#ifndef QANAAT_SIM_NETWORK_H_
#define QANAAT_SIM_NETWORK_H_

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/env.h"
#include "sim/message.h"

namespace qanaat {

class Actor;

/// Simulated transport: per-region RTT matrix, bandwidth, jitter, message
/// drops, partitions, and *physical link restrictions* (the privacy
/// firewall's wiring constraint, paper §3.4: each filter has a physical
/// connection only to the rows above/below, so a malicious execution node
/// cannot reach clients at all).
class Network {
 public:
  explicit Network(Env* env);

  /// Adds a region; returns its id. Region 0 exists by default.
  int AddRegion();
  /// Sets the round-trip time between two regions (one-way = rtt/2).
  void SetRtt(int region_a, int region_b, SimTime rtt_us);
  int region_count() const { return static_cast<int>(rtt_.size()); }

  /// Registers an actor and assigns it a NodeId.
  NodeId Register(Actor* actor);
  Actor* actor(NodeId id) const { return actors_[id]; }
  size_t node_count() const { return actors_.size(); }

  /// Restricts `node` so it may exchange messages only with `peers`.
  /// Models the firewall's physical wiring. Unrestricted by default.
  void RestrictLinks(NodeId node, std::vector<NodeId> peers);
  bool LinkAllowed(NodeId from, NodeId to) const;

  /// Unicast with latency + bandwidth + jitter. Silently drops if either
  /// endpoint is crashed, the link is disallowed/partitioned, or the drop
  /// coin fires.
  void Send(NodeId from, NodeId to, MessageRef msg);
  void Multicast(NodeId from, const std::vector<NodeId>& to, MessageRef msg);

  /// Fault injection.
  void SetDropRate(double p) { drop_rate_ = p; }
  void Partition(NodeId a, NodeId b);  // symmetric
  void HealPartition(NodeId a, NodeId b);
  void HealAllPartitions();

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t blocked_sends() const { return blocked_sends_; }

 private:
  SimTime LatencyBetween(int region_a, int region_b);

  Env* env_;
  Rng rng_;
  std::vector<Actor*> actors_;
  std::vector<std::vector<SimTime>> rtt_;  // region x region RTT (µs)
  std::vector<std::unique_ptr<std::set<NodeId>>> allowed_;  // per node
  std::set<std::pair<NodeId, NodeId>> partitions_;
  double drop_rate_ = 0.0;
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t blocked_sends_ = 0;
};

/// Base class for every simulated node (ordering node, execution node,
/// filter, client, endorser, orderer, ...).
///
/// CPU model: each actor is a serial server. A message arriving at time t
/// begins processing at max(t, busy_until) and occupies the CPU for
/// CostOf(msg); the handler runs when processing completes. Queueing delay
/// under load produces the saturation knees in the paper's
/// throughput/latency plots.
class Actor {
 public:
  Actor(Env* env, std::string name, int region = 0);
  virtual ~Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  NodeId id() const { return id_; }
  int region() const { return region_; }
  const std::string& name() const { return name_; }
  bool crashed() const { return crashed_; }

  /// Crash-stop the node (drops queued work) / bring it back.
  void Crash() { crashed_ = true; }
  void Recover() { crashed_ = false; }

  /// Mark this node Byzantine for fault-injection runs; protocol
  /// subclasses consult this flag to misbehave.
  void SetByzantine(bool b) { byzantine_ = b; }
  bool byzantine() const { return byzantine_; }

  /// Called by the network at delivery time (after transport latency);
  /// enqueues CPU work.
  void DeliverAt(SimTime arrival, NodeId from, MessageRef msg);

  /// Handler, runs after CPU processing completes.
  virtual void OnMessage(NodeId from, const MessageRef& msg) = 0;
  /// Timer callback; `tag` identifies the purpose, `payload` the instance.
  virtual void OnTimer(uint64_t tag, uint64_t payload);

 protected:
  SimTime now() const { return env_->sim.now(); }
  Env* env() const { return env_; }

  void Send(NodeId to, MessageRef msg) { env_->net->Send(id_, to, msg); }
  void Multicast(const std::vector<NodeId>& to, MessageRef msg) {
    env_->net->Multicast(id_, to, msg);
  }
  /// Schedule OnTimer(tag, payload) after `delay`; fires unless crashed.
  void StartTimer(SimTime delay, uint64_t tag, uint64_t payload = 0);
  /// Occupy the CPU for `d` more microseconds (e.g. executing a batch).
  void ChargeCpu(SimTime d) { busy_until_ += d; }

  /// Per-message CPU cost; default = base + verifications.
  virtual SimTime CostOf(const Message& msg) const;

 private:
  Env* env_;
  std::string name_;
  int region_;
  NodeId id_;
  bool crashed_ = false;
  bool byzantine_ = false;
  SimTime busy_until_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_SIM_NETWORK_H_
