#include "sim/network.h"

#include <algorithm>

namespace qanaat {

namespace {
// Folds a trace word into the running hash so single-bit differences
// avalanche (Mix64 is the shared SplitMix64 finalizer).
uint64_t MixWord(uint64_t h, uint64_t word) {
  return Mix64(h ^ (word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}
}  // namespace

Network::Network(Env* env) : env_(env), rng_(env->rng.Fork()) {
  env_->net = this;
  rtt_.push_back({0});  // region 0, zero self-RTT
  RebuildOneWayCache();
}

void Network::GrowArrivalMatrix(size_t need) {
  size_t dim = arrival_dim_ == 0 ? 64 : arrival_dim_;
  while (dim < need) dim *= 2;
  std::vector<SimTime> fresh(dim * dim, kNoArrival);
  for (size_t f = 0; f < arrival_dim_; ++f) {
    for (size_t t = 0; t < arrival_dim_; ++t) {
      fresh[f * dim + t] = last_arrival_[f * arrival_dim_ + t];
    }
  }
  last_arrival_.swap(fresh);
  arrival_dim_ = dim;
}

int Network::AddRegion() {
  int id = static_cast<int>(rtt_.size());
  for (auto& row : rtt_) row.push_back(0);
  rtt_.emplace_back(rtt_.size() + 1, 0);
  RebuildOneWayCache();
  return id;
}

void Network::SetRtt(int a, int b, SimTime rtt_us) {
  rtt_[a][b] = rtt_us;
  rtt_[b][a] = rtt_us;
  RebuildOneWayCache();
}

void Network::RebuildOneWayCache() {
  size_t n = rtt_.size();
  one_way_.assign(n * n, 0);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      one_way_[a * n + b] = rtt_[a][b] / 2;
    }
  }
}

NodeId Network::Register(Actor* actor) {
  NodeId id = static_cast<NodeId>(actors_.size());
  actors_.push_back(actor);
  allowed_.push_back(nullptr);
  return id;
}

void Network::RestrictLinks(NodeId node, std::vector<NodeId> peers) {
  auto bits = std::make_unique<NodeBitset>();
  for (NodeId p : peers) bits->Set(p);
  allowed_[node] = std::move(bits);
}

bool Network::LinkAllowed(NodeId from, NodeId to) const {
  const auto& fa = allowed_[from];
  if (fa && !fa->Test(to)) return false;
  const auto& ta = allowed_[to];
  if (ta && !ta->Test(from)) return false;
  return true;
}

SimTime Network::LatencyBetween(int a, int b) {
  SimTime base = (a == b) ? env_->costs.lan_latency_us
                          : one_way_[static_cast<size_t>(a) * rtt_.size() + b];
  SimTime jitter = env_->costs.jitter_us > 0
                       ? static_cast<SimTime>(rng_.Uniform(
                             static_cast<uint64_t>(env_->costs.jitter_us) + 1))
                       : 0;
  return base + jitter;
}

const Network::LinkFault* Network::FaultFor(NodeId from, NodeId to) const {
  if (!link_faults_.empty()) {
    auto it = link_faults_.find(LinkKey(from, to));
    if (it != link_faults_.end()) return &it->second;
  }
  if (have_default_fault_) return &default_fault_;
  return nullptr;
}

void Network::SetLinkFault(NodeId from, NodeId to, const LinkFault& f) {
  link_faults_[LinkKey(from, to)] = f;
}

void Network::SetLinkFaultBetween(NodeId a, NodeId b, const LinkFault& f) {
  SetLinkFault(a, b, f);
  SetLinkFault(b, a, f);
}

void Network::ClearLinkFaultBetween(NodeId a, NodeId b) {
  link_faults_.erase(LinkKey(a, b));
  link_faults_.erase(LinkKey(b, a));
}

void Network::SetDefaultLinkFault(const LinkFault& f) {
  default_fault_ = f;
  have_default_fault_ = true;
}

void Network::ClearLinkFaults() {
  link_faults_.clear();
  have_default_fault_ = false;
}

void Network::NoteTraceEvent(uint64_t word) {
  trace_hash_ = MixWord(trace_hash_, word);
}

std::vector<std::pair<NodeId, NodeId>> Network::delivered_links() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(delivered_links_.size());
  for (uint64_t key : delivered_links_) {
    out.emplace_back(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffu));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Network::ScheduleDelivery(NodeId from, NodeId to, SimTime arrival,
                               MessageRef msg) {
  SimTime* cell = ArrivalCell(from, to);
  if (*cell != kNoArrival) {
    if (arrival < *cell) {
      // This later-sent message overtakes an earlier one on the link.
      ++reordered_;
      env_->metrics.Inc("net.reordered");
    } else {
      *cell = arrival;
    }
  } else {
    *cell = arrival;
  }
  if (record_links_) delivered_links_.insert(LinkKey(from, to));
  NoteTraceEvent((static_cast<uint64_t>(arrival) << 16) ^
                 (static_cast<uint64_t>(from) << 40) ^
                 (static_cast<uint64_t>(to) << 8) ^
                 static_cast<uint64_t>(msg->type));
  Actor* dst = actors_[to];
  env_->sim.ScheduleDeliver(arrival, dst, dst->epoch(), from,
                            std::move(msg));
}

void Network::Send(NodeId from, NodeId to, MessageRef msg) {
  if (from == to) {
    // Self-delivery: skip the wire but still pay CPU cost.
    actors_[to]->DeliverAt(env_->sim.now(), from, std::move(msg));
    return;
  }
  if (!LinkAllowed(from, to)) {
    ++blocked_sends_;
    env_->metrics.Inc("net.blocked_sends");
    return;
  }
  if (!partitions_.empty()) {
    auto key = std::minmax(from, to);
    uint64_t packed = LinkKey(key.first, key.second);
    if (std::binary_search(partitions_.begin(), partitions_.end(), packed)) {
      env_->metrics.Inc("net.partitioned");
      return;
    }
  }
  // Crash-stop endpoints are checked before any random draw: a blocked
  // send must not consume fault randomness, or the post-recovery replay
  // of a seed would diverge based on how many sends were blocked.
  Actor* src = actors_[from];
  Actor* dst = actors_[to];
  if (src->crashed() || dst->crashed()) return;

  const LinkFault* lf = FaultFor(from, to);
  // Selective silence is deterministic (no coin): it must come before any
  // random draw so swallowed messages never perturb the fault RNG stream.
  if (lf != nullptr && lf->silence_mask != 0 && lf->Silences(msg->type)) {
    ++silenced_;
    env_->metrics.Inc("net.silenced");
    return;
  }
  if (drop_rate_ > 0 && rng_.NextDouble() < drop_rate_) {
    env_->metrics.Inc("net.dropped");
    return;
  }
  if (lf != nullptr && lf->drop > 0 && rng_.NextDouble() < lf->drop) {
    env_->metrics.Inc("net.dropped");
    return;
  }

  SimTime wire = LatencyBetween(src->region(), dst->region());
  SimTime xmit = static_cast<SimTime>(static_cast<double>(msg->wire_bytes) /
                                      env_->costs.bandwidth_bytes_per_us);
  SimTime arrival = env_->sim.now() + wire + xmit;
  bool duplicate = false;
  if (lf != nullptr) {
    arrival += lf->extra_delay_us;
    duplicate = lf->duplicate > 0 && rng_.NextDouble() < lf->duplicate;
    if (lf->reorder > 0 && lf->reorder_delay_us > 0 &&
        rng_.NextDouble() < lf->reorder) {
      arrival += 1 + static_cast<SimTime>(rng_.Uniform(
                         static_cast<uint64_t>(lf->reorder_delay_us)));
    }
  }
  ++messages_sent_;
  bytes_sent_ += msg->wire_bytes;
  if (duplicate) {
    // The copy trails the original by a bounded random gap (e.g. a
    // retransmission racing the original through another path).
    SimTime gap =
        1 + static_cast<SimTime>(rng_.Uniform(static_cast<uint64_t>(
                std::max<SimTime>(lf->reorder_delay_us, 1))));
    ++duplicated_;
    env_->metrics.Inc("net.duplicated");
    ScheduleDelivery(from, to, arrival + gap, msg);
  }
  ScheduleDelivery(from, to, arrival, std::move(msg));
}

void Network::Multicast(NodeId from, const std::vector<NodeId>& to,
                        MessageRef msg) {
  for (NodeId t : to) Send(from, t, msg);
}

void Network::Partition(NodeId a, NodeId b) {
  auto key = std::minmax(a, b);
  uint64_t packed = LinkKey(key.first, key.second);
  auto it = std::lower_bound(partitions_.begin(), partitions_.end(), packed);
  if (it == partitions_.end() || *it != packed) partitions_.insert(it, packed);
}

void Network::HealPartition(NodeId a, NodeId b) {
  auto key = std::minmax(a, b);
  uint64_t packed = LinkKey(key.first, key.second);
  auto it = std::lower_bound(partitions_.begin(), partitions_.end(), packed);
  if (it != partitions_.end() && *it == packed) partitions_.erase(it);
}

void Network::HealAllPartitions() { partitions_.clear(); }

Actor::Actor(Env* env, std::string name, int region)
    : env_(env), name_(std::move(name)), region_(region) {
  id_ = env_->net->Register(this);
}

void Actor::OnTimer(uint64_t /*tag*/, uint64_t /*payload*/) {}

SimTime Actor::CostOf(const Message& msg) const {
  return env_->costs.base_proc_us +
         static_cast<SimTime>(msg.sig_verify_ops) * env_->costs.verify_sig_us;
}

void Actor::DeliverAt(SimTime arrival, NodeId from, MessageRef msg) {
  if (crashed_) return;
  SimTime start = std::max(arrival, busy_until_);
  SimTime done = start + Inflate(CostOf(*msg));
  busy_until_ = done;
  // Tagged handle event: the epoch guard runs at execution time, so work
  // accepted before a crash cannot complete in a recovered life.
  env_->sim.ScheduleHandle(done, this, epoch_, from, std::move(msg));
}

void Actor::StartTimer(SimTime delay, uint64_t tag, uint64_t payload) {
  if (delay < 0) delay = 0;
  // Tagged timer event: timers armed before a crash die with that life.
  env_->sim.ScheduleTimer(env_->sim.now() + delay, this, epoch_, tag,
                          payload);
}

}  // namespace qanaat
