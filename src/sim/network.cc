#include "sim/network.h"

#include <algorithm>

namespace qanaat {

namespace {
// SplitMix64 finalizer: used to fold trace words into the running hash so
// single-bit differences avalanche.
uint64_t MixWord(uint64_t h, uint64_t word) {
  uint64_t z = h ^ (word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Network::Network(Env* env) : env_(env), rng_(env->rng.Fork()) {
  env_->net = this;
  rtt_.push_back({0});  // region 0, zero self-RTT
}

int Network::AddRegion() {
  int id = static_cast<int>(rtt_.size());
  for (auto& row : rtt_) row.push_back(0);
  rtt_.emplace_back(rtt_.size() + 1, 0);
  return id;
}

void Network::SetRtt(int a, int b, SimTime rtt_us) {
  rtt_[a][b] = rtt_us;
  rtt_[b][a] = rtt_us;
}

NodeId Network::Register(Actor* actor) {
  NodeId id = static_cast<NodeId>(actors_.size());
  actors_.push_back(actor);
  allowed_.push_back(nullptr);
  return id;
}

void Network::RestrictLinks(NodeId node, std::vector<NodeId> peers) {
  allowed_[node] =
      std::make_unique<std::set<NodeId>>(peers.begin(), peers.end());
}

bool Network::LinkAllowed(NodeId from, NodeId to) const {
  const auto& fa = allowed_[from];
  if (fa && !fa->count(to)) return false;
  const auto& ta = allowed_[to];
  if (ta && !ta->count(from)) return false;
  return true;
}

SimTime Network::LatencyBetween(int a, int b) {
  SimTime base = (a == b) ? env_->costs.lan_latency_us : rtt_[a][b] / 2;
  SimTime jitter = env_->costs.jitter_us > 0
                       ? static_cast<SimTime>(rng_.Uniform(
                             static_cast<uint64_t>(env_->costs.jitter_us) + 1))
                       : 0;
  return base + jitter;
}

const Network::LinkFault* Network::FaultFor(NodeId from, NodeId to) const {
  auto it = link_faults_.find({from, to});
  if (it != link_faults_.end()) return &it->second;
  if (have_default_fault_) return &default_fault_;
  return nullptr;
}

void Network::SetLinkFault(NodeId from, NodeId to, const LinkFault& f) {
  link_faults_[{from, to}] = f;
}

void Network::SetLinkFaultBetween(NodeId a, NodeId b, const LinkFault& f) {
  SetLinkFault(a, b, f);
  SetLinkFault(b, a, f);
}

void Network::ClearLinkFaultBetween(NodeId a, NodeId b) {
  link_faults_.erase({a, b});
  link_faults_.erase({b, a});
}

void Network::SetDefaultLinkFault(const LinkFault& f) {
  default_fault_ = f;
  have_default_fault_ = true;
}

void Network::ClearLinkFaults() {
  link_faults_.clear();
  have_default_fault_ = false;
}

void Network::NoteTraceEvent(uint64_t word) {
  trace_hash_ = MixWord(trace_hash_, word);
}

void Network::ScheduleDelivery(NodeId from, NodeId to, SimTime arrival,
                               MessageRef msg) {
  auto link = std::make_pair(from, to);
  auto [it, inserted] = last_arrival_.emplace(link, arrival);
  if (!inserted) {
    if (arrival < it->second) {
      // This later-sent message overtakes an earlier one on the link.
      ++reordered_;
      env_->metrics.Inc("net.reordered");
    }
    it->second = std::max(it->second, arrival);
  }
  if (record_links_) delivered_links_.insert(link);
  NoteTraceEvent((static_cast<uint64_t>(arrival) << 16) ^
                 (static_cast<uint64_t>(from) << 40) ^
                 (static_cast<uint64_t>(to) << 8) ^
                 static_cast<uint64_t>(msg->type));
  Actor* dst = actors_[to];
  uint64_t dst_epoch = dst->epoch();
  env_->sim.ScheduleAt(arrival,
                       [dst, dst_epoch, arrival, from, m = std::move(msg)]() {
                         // A message addressed to a previous life of the
                         // node (it crashed while this was in flight) is
                         // lost with the crashed process.
                         if (dst->epoch() == dst_epoch) {
                           dst->DeliverAt(arrival, from, m);
                         }
                       });
}

void Network::Send(NodeId from, NodeId to, MessageRef msg) {
  if (from == to) {
    // Self-delivery: skip the wire but still pay CPU cost.
    actors_[to]->DeliverAt(env_->sim.now(), from, std::move(msg));
    return;
  }
  if (!LinkAllowed(from, to)) {
    ++blocked_sends_;
    env_->metrics.Inc("net.blocked_sends");
    return;
  }
  auto key = std::minmax(from, to);
  if (partitions_.count({key.first, key.second})) {
    env_->metrics.Inc("net.partitioned");
    return;
  }
  // Crash-stop endpoints are checked before any random draw: a blocked
  // send must not consume fault randomness, or the post-recovery replay
  // of a seed would diverge based on how many sends were blocked.
  Actor* src = actors_[from];
  Actor* dst = actors_[to];
  if (src->crashed() || dst->crashed()) return;

  const LinkFault* lf = FaultFor(from, to);
  if (drop_rate_ > 0 && rng_.NextDouble() < drop_rate_) {
    env_->metrics.Inc("net.dropped");
    return;
  }
  if (lf != nullptr && lf->drop > 0 && rng_.NextDouble() < lf->drop) {
    env_->metrics.Inc("net.dropped");
    return;
  }

  SimTime wire = LatencyBetween(src->region(), dst->region());
  SimTime xmit = static_cast<SimTime>(static_cast<double>(msg->wire_bytes) /
                                      env_->costs.bandwidth_bytes_per_us);
  SimTime arrival = env_->sim.now() + wire + xmit;
  bool duplicate = false;
  if (lf != nullptr) {
    arrival += lf->extra_delay_us;
    duplicate = lf->duplicate > 0 && rng_.NextDouble() < lf->duplicate;
    if (lf->reorder > 0 && lf->reorder_delay_us > 0 &&
        rng_.NextDouble() < lf->reorder) {
      arrival += 1 + static_cast<SimTime>(rng_.Uniform(
                         static_cast<uint64_t>(lf->reorder_delay_us)));
    }
  }
  ++messages_sent_;
  bytes_sent_ += msg->wire_bytes;
  if (duplicate) {
    // The copy trails the original by a bounded random gap (e.g. a
    // retransmission racing the original through another path).
    SimTime gap =
        1 + static_cast<SimTime>(rng_.Uniform(static_cast<uint64_t>(
                std::max<SimTime>(lf->reorder_delay_us, 1))));
    ++duplicated_;
    env_->metrics.Inc("net.duplicated");
    ScheduleDelivery(from, to, arrival + gap, msg);
  }
  ScheduleDelivery(from, to, arrival, std::move(msg));
}

void Network::Multicast(NodeId from, const std::vector<NodeId>& to,
                        MessageRef msg) {
  for (NodeId t : to) Send(from, t, msg);
}

void Network::Partition(NodeId a, NodeId b) {
  auto key = std::minmax(a, b);
  partitions_.insert({key.first, key.second});
}

void Network::HealPartition(NodeId a, NodeId b) {
  auto key = std::minmax(a, b);
  partitions_.erase({key.first, key.second});
}

void Network::HealAllPartitions() { partitions_.clear(); }

Actor::Actor(Env* env, std::string name, int region)
    : env_(env), name_(std::move(name)), region_(region) {
  id_ = env_->net->Register(this);
}

void Actor::OnTimer(uint64_t /*tag*/, uint64_t /*payload*/) {}

SimTime Actor::CostOf(const Message& msg) const {
  return env_->costs.base_proc_us +
         static_cast<SimTime>(msg.sig_verify_ops) * env_->costs.verify_sig_us;
}

void Actor::DeliverAt(SimTime arrival, NodeId from, MessageRef msg) {
  if (crashed_) return;
  SimTime start = std::max(arrival, busy_until_);
  SimTime done = start + CostOf(*msg);
  busy_until_ = done;
  uint64_t e = epoch_;
  env_->sim.ScheduleAt(done, [this, e, from, m = std::move(msg)]() {
    // Epoch guard: work accepted before a crash must not complete in a
    // recovered life.
    if (!crashed_ && e == epoch_) OnMessage(from, m);
  });
}

void Actor::StartTimer(SimTime delay, uint64_t tag, uint64_t payload) {
  uint64_t e = epoch_;
  env_->sim.Schedule(delay, [this, e, tag, payload]() {
    // Epoch guard: timers armed before a crash die with that life.
    if (!crashed_ && e == epoch_) OnTimer(tag, payload);
  });
}

}  // namespace qanaat
