#include "sim/network.h"

#include <algorithm>

namespace qanaat {

Network::Network(Env* env) : env_(env), rng_(env->rng.Fork()) {
  env_->net = this;
  rtt_.push_back({0});  // region 0, zero self-RTT
}

int Network::AddRegion() {
  int id = static_cast<int>(rtt_.size());
  for (auto& row : rtt_) row.push_back(0);
  rtt_.emplace_back(rtt_.size() + 1, 0);
  return id;
}

void Network::SetRtt(int a, int b, SimTime rtt_us) {
  rtt_[a][b] = rtt_us;
  rtt_[b][a] = rtt_us;
}

NodeId Network::Register(Actor* actor) {
  NodeId id = static_cast<NodeId>(actors_.size());
  actors_.push_back(actor);
  allowed_.push_back(nullptr);
  return id;
}

void Network::RestrictLinks(NodeId node, std::vector<NodeId> peers) {
  allowed_[node] =
      std::make_unique<std::set<NodeId>>(peers.begin(), peers.end());
}

bool Network::LinkAllowed(NodeId from, NodeId to) const {
  const auto& fa = allowed_[from];
  if (fa && !fa->count(to)) return false;
  const auto& ta = allowed_[to];
  if (ta && !ta->count(from)) return false;
  return true;
}

SimTime Network::LatencyBetween(int a, int b) {
  SimTime base = (a == b) ? env_->costs.lan_latency_us : rtt_[a][b] / 2;
  SimTime jitter = env_->costs.jitter_us > 0
                       ? static_cast<SimTime>(rng_.Uniform(
                             static_cast<uint64_t>(env_->costs.jitter_us) + 1))
                       : 0;
  return base + jitter;
}

void Network::Send(NodeId from, NodeId to, MessageRef msg) {
  if (from == to) {
    // Self-delivery: skip the wire but still pay CPU cost.
    actors_[to]->DeliverAt(env_->sim.now(), from, std::move(msg));
    return;
  }
  if (!LinkAllowed(from, to)) {
    ++blocked_sends_;
    env_->metrics.Inc("net.blocked_sends");
    return;
  }
  auto key = std::minmax(from, to);
  if (partitions_.count({key.first, key.second})) return;
  if (drop_rate_ > 0 && rng_.NextDouble() < drop_rate_) {
    env_->metrics.Inc("net.dropped");
    return;
  }
  Actor* src = actors_[from];
  Actor* dst = actors_[to];
  if (src->crashed() || dst->crashed()) return;

  SimTime wire = LatencyBetween(src->region(), dst->region());
  SimTime xmit = static_cast<SimTime>(static_cast<double>(msg->wire_bytes) /
                                      env_->costs.bandwidth_bytes_per_us);
  SimTime arrival = env_->sim.now() + wire + xmit;
  ++messages_sent_;
  bytes_sent_ += msg->wire_bytes;
  env_->sim.ScheduleAt(arrival, [dst, arrival, from, m = std::move(msg)]() {
    dst->DeliverAt(arrival, from, m);
  });
}

void Network::Multicast(NodeId from, const std::vector<NodeId>& to,
                        MessageRef msg) {
  for (NodeId t : to) Send(from, t, msg);
}

void Network::Partition(NodeId a, NodeId b) {
  auto key = std::minmax(a, b);
  partitions_.insert({key.first, key.second});
}

void Network::HealPartition(NodeId a, NodeId b) {
  auto key = std::minmax(a, b);
  partitions_.erase({key.first, key.second});
}

void Network::HealAllPartitions() { partitions_.clear(); }

Actor::Actor(Env* env, std::string name, int region)
    : env_(env), name_(std::move(name)), region_(region) {
  id_ = env_->net->Register(this);
}

void Actor::OnTimer(uint64_t /*tag*/, uint64_t /*payload*/) {}

SimTime Actor::CostOf(const Message& msg) const {
  return env_->costs.base_proc_us +
         static_cast<SimTime>(msg.sig_verify_ops) * env_->costs.verify_sig_us;
}

void Actor::DeliverAt(SimTime arrival, NodeId from, MessageRef msg) {
  if (crashed_) return;
  SimTime start = std::max(arrival, busy_until_);
  SimTime done = start + CostOf(*msg);
  busy_until_ = done;
  env_->sim.ScheduleAt(done, [this, from, m = std::move(msg)]() {
    if (!crashed_) OnMessage(from, m);
  });
}

void Actor::StartTimer(SimTime delay, uint64_t tag, uint64_t payload) {
  env_->sim.Schedule(delay, [this, tag, payload]() {
    if (!crashed_) OnTimer(tag, payload);
  });
}

}  // namespace qanaat
