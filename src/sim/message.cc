#include "sim/message.h"

namespace qanaat {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kRequest: return "REQUEST";
    case MsgType::kReply: return "REPLY";
    case MsgType::kReplyCert: return "REPLY_CERT";
    case MsgType::kPrePrepare: return "PRE_PREPARE";
    case MsgType::kPrepare: return "PREPARE";
    case MsgType::kCommit: return "COMMIT";
    case MsgType::kCheckpoint: return "CHECKPOINT";
    case MsgType::kViewChange: return "VIEW_CHANGE";
    case MsgType::kNewView: return "NEW_VIEW";
    case MsgType::kPaxosAccept: return "PAXOS_ACCEPT";
    case MsgType::kPaxosAccepted: return "PAXOS_ACCEPTED";
    case MsgType::kPaxosLearn: return "PAXOS_LEARN";
    case MsgType::kPaxosPrepare: return "PAXOS_PREPARE";
    case MsgType::kPaxosPromise: return "PAXOS_PROMISE";
    case MsgType::kFillRequest: return "FILL_REQUEST";
    case MsgType::kFillReply: return "FILL_REPLY";
    case MsgType::kStateRequest: return "STATE_REQUEST";
    case MsgType::kStateReply: return "STATE_REPLY";
    case MsgType::kXPrepare: return "X_PREPARE";
    case MsgType::kXPrepared: return "X_PREPARED";
    case MsgType::kXCommit: return "X_COMMIT";
    case MsgType::kXAbort: return "X_ABORT";
    case MsgType::kFPropose: return "F_PROPOSE";
    case MsgType::kFAccept: return "F_ACCEPT";
    case MsgType::kFCommit: return "F_COMMIT";
    case MsgType::kCommitQuery: return "COMMIT_QUERY";
    case MsgType::kPreparedQuery: return "PREPARED_QUERY";
    case MsgType::kExecOrder: return "EXEC_ORDER";
    case MsgType::kExecReply: return "EXEC_REPLY";
    case MsgType::kEndorseReq: return "ENDORSE_REQ";
    case MsgType::kEndorseResp: return "ENDORSE_RESP";
    case MsgType::kOrderSubmit: return "ORDER_SUBMIT";
    case MsgType::kOrderedBlock: return "ORDERED_BLOCK";
    case MsgType::kValidateDone: return "VALIDATE_DONE";
    case MsgType::kRaftAppend: return "RAFT_APPEND";
    case MsgType::kRaftAppendResp: return "RAFT_APPEND_RESP";
    case MsgType::kBlockFetchReq: return "BLOCK_FETCH_REQ";
  }
  return "UNKNOWN";
}

}  // namespace qanaat
