#include "sim/timer_wheel.h"

#include <algorithm>

namespace qanaat {

int TimerWheel::ScanFrom(int level, int start) const {
  const uint64_t* b = bits_[level];
  int w0 = start >> 6;
  uint64_t w = b[w0] & (~uint64_t{0} << (start & 63));
  if (w != 0) return (w0 << 6) + __builtin_ctzll(w);
  for (int i = 1; i <= 4; ++i) {
    int wi = (w0 + i) & 3;
    uint64_t ww = b[wi];
    if (i == 4) {
      // Wrapped back to the starting word: only bits below `start`.
      int low = start & 63;
      ww &= low != 0 ? (~uint64_t{0} >> (64 - low)) : 0;
    }
    if (ww != 0) return (wi << 6) + __builtin_ctzll(ww);
  }
  return -1;
}

bool TimerWheel::Min(SimTime now, SimTime* when, uint64_t* seq) {
  if (count_ == 0) return false;
  if (!cache_valid_) {
    bool have = false;
    int best_level = kBucketLevel;
    int best_slot = 0;
    SimTime best_when = 0;
    uint64_t best_seq = 0;
    if (bucket_pos_ < bucket_.size()) {
      best_when = bucket_time_;
      best_seq = bucket_[bucket_pos_].seq;
      have = true;
    }
    for (int level = 0; level < kLevels; ++level) {
      if (level_count_[level] == 0) continue;
      int s_now =
          static_cast<int>(now >> (kSlotBits * level)) & (kSlots - 1);
      // slot(now) may hold both laps of its split window: consider it
      // on its own, then the next occupied slot in circular order
      // (whose window start precedes every later slot's).
      int cand[2] = {-1, -1};
      if ((bits_[level][s_now >> 6] >> (s_now & 63)) & 1) cand[0] = s_now;
      int nxt = ScanFrom(level, (s_now + 1) & (kSlots - 1));
      if (nxt >= 0 && nxt != s_now) cand[1] = nxt;
      for (int c : cand) {
        if (c < 0) continue;
        const SlotMinKey& m = slot_min_[(level << kSlotBits) + c];
        if (!have || m.when < best_when ||
            (m.when == best_when && m.seq < best_seq)) {
          have = true;
          best_when = m.when;
          best_seq = m.seq;
          best_level = level;
          best_slot = c;
        }
      }
    }
    cache_valid_ = true;
    cache_when_ = best_when;
    cache_seq_ = best_seq;
    cache_level_ = best_level;
    cache_slot_ = best_slot;
  }
  *when = cache_when_;
  *seq = cache_seq_;
  return true;
}

void TimerWheel::DrainLevel0(int idx) {
  std::vector<Entry>& v = Slot(0, idx);
  bits_[0][idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  level_count_[0] -= static_cast<int>(v.size());
  if (bucket_pos_ == bucket_.size()) {
    bucket_.clear();
    bucket_pos_ = 0;
  }
  if (bucket_.empty()) {
    bucket_.swap(v);  // recycles both vectors' capacity
    bucket_time_ = bucket_.front().when;
  } else {
    // Same-tick merge: a cascade dropped older-seq entries onto a tick
    // the bucket is already draining.
    bucket_.insert(bucket_.end(), std::make_move_iterator(v.begin()),
                   std::make_move_iterator(v.end()));
    v.clear();
  }
  std::sort(bucket_.begin() + static_cast<long>(bucket_pos_),
            bucket_.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
}

void TimerWheel::Cascade(int level, int idx, SimTime now) {
  std::vector<Entry>& v = Slot(level, idx);
  bits_[level][idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  level_count_[level] -= static_cast<int>(v.size());
  scratch_.swap(v);
  for (Entry& e : scratch_) Place(e.when - now, std::move(e));
  scratch_.clear();
}

TimerWheel::Entry TimerWheel::Pop(SimTime now) {
  SimTime when;
  uint64_t seq;
  Min(now, &when, &seq);
  // Promote the min down to the drain bucket: the min entry's delta
  // relative to `now` (== its own time) is 0, so each cascade moves it
  // at least one level lower — at most kLevels rounds.
  while (cache_level_ != kBucketLevel) {
    std::vector<Entry>& v = Slot(cache_level_, cache_slot_);
    if (v.size() == 1) {
      // Single-entry slot (the sparse-traffic common case): the entry IS
      // the slot min, so skip the cascade/drain hops and pop in place.
      Entry e = std::move(v.front());
      v.clear();
      bits_[cache_level_][cache_slot_ >> 6] &=
          ~(uint64_t{1} << (cache_slot_ & 63));
      --level_count_[cache_level_];
      --count_;
      cache_valid_ = false;
      return e;
    }
    if (cache_level_ == 0) {
      DrainLevel0(cache_slot_);
    } else {
      Cascade(cache_level_, cache_slot_, now);
    }
    cache_valid_ = false;
    Min(now, &when, &seq);
  }
  Entry e = std::move(bucket_[bucket_pos_]);
  ++bucket_pos_;
  --count_;
  if (bucket_pos_ == bucket_.size()) {
    bucket_.clear();
    bucket_pos_ = 0;
  }
  // No shortcut to the next bucket entry here: a level>=1 slot can still
  // hold a same-tick entry with a *smaller* seq (inserted long ago with a
  // large delta), which must fire before the bucket's next entry — the
  // full recompute in Min() finds it and the drain merge re-sorts.
  cache_valid_ = false;
  return e;
}

}  // namespace qanaat
