#ifndef QANAAT_SIM_ENV_H_
#define QANAAT_SIM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/signer.h"
#include "sim/simulator.h"

namespace qanaat {

class Network;

/// CPU / transport cost model: the knobs that calibrate simulated
/// performance against the paper's c4.2xlarge testbed. All times in
/// microseconds of simulated time.
/// Constants are calibrated (see EXPERIMENTS.md) so that one cluster of
/// c4.2xlarge-class nodes saturates near the paper's per-cluster
/// throughput; what the experiments compare is protocols, not absolute
/// hardware speed.
struct CostModel {
  /// Fixed cost of handling any message (deserialize + dispatch).
  SimTime base_proc_us = 8;
  /// Cost per signature verification performed on receipt.
  SimTime verify_sig_us = 35;
  /// Cost of verifying a MAC (crash clusters authenticate clients and
  /// each other with MACs instead of signatures).
  SimTime mac_verify_us = 6;
  /// Cost of executing one transaction against the store.
  SimTime exec_tx_us = 15;
  /// Per-transaction ordering cost at the primary: dedup, serialization,
  /// hashing into the batch, amortized signing.
  SimTime batch_tx_us = 103;
  /// Extra per-transaction cost at ordering nodes when the privacy
  /// firewall is deployed: encrypted request/reply bodies and
  /// threshold-share handling (§3.4; calibrated to the 6-8% throughput
  /// overhead reported in §5.1).
  SimTime pf_tx_overhead_us = 8;
  // ---- Fabric-family baseline costs (see src/baselines) ----
  /// Endorsement: simulate the transaction, produce read/write sets.
  SimTime endorse_tx_us = 45;
  /// Per-transaction ordering cost at the Raft leader (Fabric's single
  /// ordering service is the bottleneck the paper measures, §5.1).
  SimTime fabric_order_tx_us = 95;
  /// FastFabric sends only transaction hashes to the orderers.
  SimTime fastfabric_order_tx_us = 28;
  /// MVCC validation + commit per transaction at a peer.
  SimTime validate_tx_us = 25;
  /// Processing the hash of a private transaction at a non-member peer.
  SimTime hash_tx_us = 8;

  /// One-way latency between nodes in the same datacenter.
  SimTime lan_latency_us = 250;
  /// Random additional delay, uniform in [0, jitter].
  SimTime jitter_us = 50;
  /// NIC bandwidth in bytes per microsecond (1250 = 10 Gbit/s).
  double bandwidth_bytes_per_us = 1250.0;
};

/// Named counters + histograms for a simulation run.
class Metrics {
 public:
  void Inc(const std::string& name, uint64_t by = 1) { counters_[name] += by; }
  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  Histogram& Hist(const std::string& name) { return hists_[name]; }
  const std::map<std::string, uint64_t>& counters() const { return counters_; }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> hists_;
};

/// Shared context for one simulation run: clock/event queue, transport,
/// PKI, cost model, metrics and the root RNG. Owned by the topology
/// builder; actors borrow it.
struct Env {
  explicit Env(uint64_t seed)
      : rng(seed), keystore(SplitMix64Seed(seed)) {}

  Simulator sim;
  Rng rng;
  KeyStore keystore;
  CostModel costs;
  Metrics metrics;
  Network* net = nullptr;  // set by Network's constructor

 private:
  static uint64_t SplitMix64Seed(uint64_t s) {
    uint64_t st = s ^ 0x9e3779b97f4a7c15ULL;
    return SplitMix64(st);
  }
};

}  // namespace qanaat

#endif  // QANAAT_SIM_ENV_H_
