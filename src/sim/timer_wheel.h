#ifndef QANAAT_SIM_TIMER_WHEEL_H_
#define QANAAT_SIM_TIMER_WHEEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "sim/message.h"

namespace qanaat {

class Actor;

/// Hierarchical timing wheel for the simulator's tagged events — actor
/// timers (the dominant schedule churn: engine slot watchdogs, batcher
/// deadlines, fill/checkpoint timers) plus message delivery and handler
/// completion, whose horizons are transport latencies and CPU queues.
/// Insertion is O(1) — bucket index arithmetic plus a push_back — where
/// the binary heap paid O(log n) sift cost per event against a heap full
/// of long-lived timers that mostly never fire.
///
/// Three levels of 256 slots cover deltas up to ~16.7 simulated seconds
/// (1 µs, 256 µs and 65536 µs of span per slot respectively); the
/// Simulator spills rarer far-future events to its 4-ary heap.
///
/// Determinism contract: the wheel pops entries in exactly the global
/// (time, seq) order the heap would have used — Min() reports the
/// lexicographically smallest (when, seq) so the Simulator can merge
/// wheel events against heap events tie-break-identically, keeping every
/// golden per-seed trace hash unchanged.
///
/// Level-l slots are unambiguous time buckets because all pending
/// entries satisfy now <= when < now + 256^(l+1): an entry is placed at
/// the smallest level whose window covers its delta, and `now` only
/// advances past an entry by popping it. Within a level the circular
/// slot scan from slot(now) visits windows in increasing start order;
/// only slot(now) itself can hold two laps (its window is split by
/// `now`), which Min() handles by considering it separately.
class TimerWheel {
 public:
  enum class Kind : uint8_t { kTimer = 0, kDeliver, kHandle };

  /// Field use per kind:
  ///   kTimer   — a = tag, b = payload;
  ///   kDeliver — a = arrival time, b = sender, msg;
  ///   kHandle  — b = sender, msg.
  struct Entry {
    SimTime when = 0;
    uint64_t seq = 0;
    Actor* actor = nullptr;
    uint64_t epoch = 0;
    uint64_t a = 0;
    uint64_t b = 0;
    MessageRef msg;
    Kind kind = Kind::kTimer;
  };

  static constexpr int kLevels = 3;
  static constexpr int kSlotBits = 8;
  static constexpr int kSlots = 1 << kSlotBits;
  /// Deltas at or beyond this must go to the overflow heap.
  static constexpr SimTime kHorizon = SimTime{1}
                                      << (kSlotBits * kLevels);  // ~16.7 s

  TimerWheel()
      : slots_(kLevels * kSlots), slot_min_(kLevels * kSlots) {}

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  /// Inserts an entry with now <= e.when < now + kHorizon. `e.seq` must
  /// exceed every previously issued sequence number (the Simulator's
  /// global counter guarantees it).
  void Insert(SimTime now, Entry e) {
    if (cache_valid_ && e.when < cache_when_) cache_valid_ = false;
    Place(e.when - now, std::move(e));
    ++count_;
  }

  /// Earliest pending (when, seq); false when empty. `now` is the
  /// simulator clock (no pending entry is earlier than it).
  bool Min(SimTime now, SimTime* when, uint64_t* seq);

  /// Removes and returns the entry Min() reported. Requires a prior
  /// successful Min() with the same `now` (== the popped entry's time in
  /// the caller's merge loop, so cascades re-anchor windows correctly).
  Entry Pop(SimTime now);

 private:
  static constexpr int kBucketLevel = -1;

  std::vector<Entry>& Slot(int level, int idx) {
    return slots_[(level << kSlotBits) + idx];
  }

  void Place(SimTime delta, Entry e) {
    int level = delta < (SimTime{1} << kSlotBits)
                    ? 0
                    : delta < (SimTime{1} << (2 * kSlotBits)) ? 1 : 2;
    int idx =
        static_cast<int>(e.when >> (kSlotBits * level)) & (kSlots - 1);
    std::vector<Entry>& v = Slot(level, idx);
    // Per-slot min, kept O(1): entries only ever leave a slot via a
    // whole-slot drain or cascade, so the min never needs a rescan.
    SlotMinKey& m = slot_min_[(level << kSlotBits) + idx];
    if (v.empty() || e.when < m.when ||
        (e.when == m.when && e.seq < m.seq)) {
      m.when = e.when;
      m.seq = e.seq;
    }
    v.push_back(std::move(e));
    bits_[level][idx >> 6] |= uint64_t{1} << (idx & 63);
    ++level_count_[level];
  }

  /// First occupied slot of `level` in circular order from `start`;
  /// -1 when the level is empty.
  int ScanFrom(int level, int start) const;

  /// Moves a due level-0 slot (single tick) into the drain bucket,
  /// merging behind any still-pending same-tick entries.
  void DrainLevel0(int idx);

  /// Redistributes a level>=1 slot downward, re-anchored at `now` (the
  /// slot's min entry time, which the caller is about to pop).
  void Cascade(int level, int idx, SimTime now);

  struct SlotMinKey {
    SimTime when = 0;
    uint64_t seq = 0;
  };

  std::vector<std::vector<Entry>> slots_;
  std::vector<SlotMinKey> slot_min_;  // valid while the slot is occupied
  uint64_t bits_[kLevels][kSlots / 64] = {};
  int level_count_[kLevels] = {};  // entries per level: empty-level skip
  size_t count_ = 0;

  // Due entries for one tick, sorted by seq, consumed via bucket_pos_.
  std::vector<Entry> bucket_;
  size_t bucket_pos_ = 0;
  SimTime bucket_time_ = 0;

  // Cached global-min location; invalidated by pops, cascades and
  // earlier-time inserts (later inserts always carry larger seq).
  bool cache_valid_ = false;
  SimTime cache_when_ = 0;
  uint64_t cache_seq_ = 0;
  int cache_level_ = kBucketLevel;
  int cache_slot_ = 0;

  std::vector<Entry> scratch_;  // cascade staging, capacity recycled
};

}  // namespace qanaat

#endif  // QANAAT_SIM_TIMER_WHEEL_H_
