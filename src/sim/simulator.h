#ifndef QANAAT_SIM_SIMULATOR_H_
#define QANAAT_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace qanaat {

/// Deterministic discrete-event simulator.
///
/// Events execute in (time, insertion-sequence) order, so a single seed
/// yields a bit-identical run. All protocol code runs inside event
/// callbacks; the simulator substitutes wall clock + transport of the
/// paper's AWS deployment (DESIGN.md §2).
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() : now_(0), next_seq_(0) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (>= 0).
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (clamped to now).
  void ScheduleAt(SimTime when, Callback fn) {
    if (when < now_) when = now_;
    queue_.push(Event{when, next_seq_++, std::move(fn)});
  }

  /// Run until the queue drains or simulated time exceeds `until`.
  /// Returns the number of events executed.
  uint64_t Run(SimTime until);

  /// Run until the queue is fully drained.
  uint64_t RunAll();

  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  uint64_t next_seq_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace qanaat

#endif  // QANAAT_SIM_SIMULATOR_H_
