#ifndef QANAAT_SIM_SIMULATOR_H_
#define QANAAT_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/message.h"
#include "sim/timer_wheel.h"

namespace qanaat {

class Actor;

/// Deterministic discrete-event simulator.
///
/// Events execute in (time, insertion-sequence) order, so a single seed
/// yields a bit-identical run. All protocol code runs inside event
/// callbacks; the simulator substitutes wall clock + transport of the
/// paper's AWS deployment (DESIGN.md §2).
///
/// Hot-path design: the steady-state events of a run — message delivery
/// at an actor (ScheduleDeliver), handler completion after CPU
/// processing (ScheduleHandle) and actor timers (ScheduleTimer) — are
/// *tagged* events stored flat inside a reserved 4-ary heap, so pushing
/// and popping them allocates nothing once the heap has grown to the
/// run's working set. The generic closure form (Schedule/ScheduleAt with
/// a std::function) remains as an escape hatch for harness/test code;
/// its closures live in an internal free-list pool. Identical (time,
/// seq) ordering across all five schedule paths keeps the refactor
/// byte-compatible with the old std::function priority queue: per-seed
/// chaos trace hashes are unchanged.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() : now_(0), next_seq_(0) {
    heap_.reserve(kInitialReserve);
    pool_.reserve(kInitialReserve);
  }
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now (>= 0).
  void Schedule(SimTime delay, Callback fn) {
    ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Schedule `fn` at an absolute time (clamped to now). Generic escape
  /// hatch — the tagged forms below are the allocation-free hot path.
  void ScheduleAt(SimTime when, Callback fn) {
    Event ev;
    ev.kind = Kind::kClosure;
    ev.closure = AcquireClosure(std::move(fn));
    Push(when, ev);
  }

  /// Tagged event: `actor->DeliverAt(arrival, from, msg)` at `when`,
  /// dropped if the actor's crash epoch advanced past `epoch` meanwhile.
  void ScheduleDeliver(SimTime when, Actor* actor, uint64_t epoch,
                       NodeId from, MessageRef msg) {
    if (when < now_) when = now_;
    if (when - now_ >= TimerWheel::kHorizon) {
      Event ev;
      ev.kind = Kind::kDeliver;
      ev.actor = actor;
      ev.epoch = epoch;
      ev.a = static_cast<uint64_t>(when);  // arrival == scheduled time
      ev.b = from;
      ev.msg = std::move(msg);
      Push(when, ev);
      return;
    }
    TimerWheel::Entry e;
    e.when = when;
    e.seq = next_seq_++;
    e.actor = actor;
    e.epoch = epoch;
    e.a = static_cast<uint64_t>(when);
    e.b = from;
    e.msg = std::move(msg);
    e.kind = TimerWheel::Kind::kDeliver;
    wheel_.Insert(now_, std::move(e));
  }

  /// Tagged event: `actor->OnMessage(from, msg)` at `when` (CPU
  /// processing completes), unless crashed or from a previous life.
  void ScheduleHandle(SimTime when, Actor* actor, uint64_t epoch,
                      NodeId from, MessageRef msg) {
    if (when < now_) when = now_;
    if (when - now_ >= TimerWheel::kHorizon) {
      Event ev;
      ev.kind = Kind::kHandle;
      ev.actor = actor;
      ev.epoch = epoch;
      ev.b = from;
      ev.msg = std::move(msg);
      Push(when, ev);
      return;
    }
    TimerWheel::Entry e;
    e.when = when;
    e.seq = next_seq_++;
    e.actor = actor;
    e.epoch = epoch;
    e.b = from;
    e.msg = std::move(msg);
    e.kind = TimerWheel::Kind::kHandle;
    wheel_.Insert(now_, std::move(e));
  }

  /// Tagged event: `actor->OnTimer(tag, payload)` at `when`, unless
  /// crashed or armed in a previous life. Tagged events within the
  /// wheel's ~16.7-second horizon take the O(1) hierarchical-wheel path;
  /// the rare far-future ones spill to the 4-ary heap. Both draw from
  /// the same global sequence counter, so the merged execution order is
  /// (time, seq)-identical to the all-heap implementation.
  void ScheduleTimer(SimTime when, Actor* actor, uint64_t epoch,
                     uint64_t tag, uint64_t payload) {
    if (when < now_) when = now_;
    if (when - now_ >= TimerWheel::kHorizon) {
      Event ev;
      ev.kind = Kind::kTimer;
      ev.actor = actor;
      ev.epoch = epoch;
      ev.a = tag;
      ev.b = payload;
      Push(when, ev);
      return;
    }
    TimerWheel::Entry e;
    e.when = when;
    e.seq = next_seq_++;
    e.actor = actor;
    e.epoch = epoch;
    e.a = tag;
    e.b = payload;
    e.kind = TimerWheel::Kind::kTimer;
    wheel_.Insert(now_, std::move(e));
  }

  /// Run until the queue drains or simulated time exceeds `until`.
  /// Returns the number of events executed.
  uint64_t Run(SimTime until);

  /// Run until the queue is fully drained.
  uint64_t RunAll();

  size_t pending() const { return heap_.size() + wheel_.size(); }

  /// Total events executed since construction, and the wall-clock meter
  /// over time spent inside Run/RunAll — the sim-core throughput gauge
  /// bench_simcore records (see README "Profiling the simulator core").
  uint64_t events_executed() const { return events_executed_; }
  double wall_seconds_in_run() const { return wall_seconds_; }
  double events_per_second() const {
    return wall_seconds_ > 0
               ? static_cast<double>(events_executed_) / wall_seconds_
               : 0.0;
  }

 private:
  enum class Kind : uint8_t { kClosure = 0, kDeliver, kHandle, kTimer };

  /// Tagged event payload, pooled in fixed slots. Field use per kind:
  ///   kClosure — `closure` indexes the pooled std::function;
  ///   kDeliver — `a` = arrival time, `b` = sender, `msg`, `epoch`;
  ///   kHandle  — `b` = sender, `msg`, `epoch`;
  ///   kTimer   — `a` = tag, `b` = payload, `epoch`.
  struct Event {
    Actor* actor = nullptr;
    uint64_t epoch = 0;
    uint64_t a = 0;
    uint64_t b = 0;
    MessageRef msg;
    uint32_t closure = 0;
    Kind kind = Kind::kClosure;
  };

  /// What the heap actually sifts: 24 bytes of ordering key plus a pool
  /// slot. Keeping payloads out of the heap makes every sift swap a
  /// three-word move instead of dragging a shared_ptr-bearing struct.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
  };

  static constexpr size_t kInitialReserve = 1024;
  static constexpr size_t kArity = 4;
  static constexpr uint32_t kNoSlot = UINT32_MAX;

  static bool Earlier(const HeapEntry& x, const HeapEntry& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.seq < y.seq;
  }

  void Push(SimTime when, Event& ev) {
    if (when < now_) when = now_;
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      pool_[slot] = std::move(ev);
    } else {
      slot = static_cast<uint32_t>(pool_.size());
      pool_.push_back(std::move(ev));
    }
    heap_.push_back(HeapEntry{when, next_seq_++, slot});
    SiftUp(heap_.size() - 1);
  }

  void SiftUp(size_t i) {
    HeapEntry moving = heap_[i];
    while (i > 0) {
      size_t parent = (i - 1) / kArity;
      if (!Earlier(moving, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = moving;
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    HeapEntry moving = heap_[i];
    for (;;) {
      size_t first = kArity * i + 1;
      if (first >= n) break;
      size_t best = first;
      size_t last = first + kArity < n ? first + kArity : n;
      for (size_t c = first + 1; c < last; ++c) {
        if (Earlier(heap_[c], heap_[best])) best = c;
      }
      if (!Earlier(heap_[best], moving)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = moving;
  }

  /// Pops the earliest event into `out` and releases its pool slot
  /// (heap must be non-empty). Returns the event's time.
  SimTime PopInto(Event& out) {
    HeapEntry top = heap_.front();
    if (heap_.size() > 1) {
      heap_.front() = heap_.back();
      heap_.pop_back();
      SiftDown(0);
    } else {
      heap_.pop_back();
    }
    out = std::move(pool_[top.slot]);
    free_slots_.push_back(top.slot);
    return top.time;
  }

  uint32_t AcquireClosure(Callback fn) {
    if (!free_closures_.empty()) {
      uint32_t idx = free_closures_.back();
      free_closures_.pop_back();
      closures_[idx] = std::move(fn);
      return idx;
    }
    closures_.push_back(std::move(fn));
    return static_cast<uint32_t>(closures_.size() - 1);
  }

  void Execute(Event& ev);
  /// Shared Run/RunAll core: pops the (time, seq)-smallest of the heap
  /// top and the wheel min until both drain or the next event is past
  /// `until`.
  uint64_t RunLoop(SimTime until);

  SimTime now_;
  uint64_t next_seq_;
  TimerWheel wheel_;                   // near-horizon actor timers
  std::vector<HeapEntry> heap_;        // 4-ary min-heap on (time, seq)
  std::vector<Event> pool_;            // slot storage for queued events
  std::vector<uint32_t> free_slots_;
  std::vector<Callback> closures_;     // pool for kClosure events
  std::vector<uint32_t> free_closures_;
  uint64_t events_executed_ = 0;
  double wall_seconds_ = 0.0;
};

}  // namespace qanaat

#endif  // QANAAT_SIM_SIMULATOR_H_
