#ifndef QANAAT_SIM_MESSAGE_H_
#define QANAAT_SIM_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"
#include "crypto/sha256.h"

namespace qanaat {

/// Wire-level message kind. One enum across all subsystems so traces are
/// easy to read and the network can account costs uniformly.
enum class MsgType : uint8_t {
  // Client <-> cluster
  kRequest = 0,
  kReply,
  kReplyCert,
  // Internal consensus (Paxos / PBFT)
  kPrePrepare,
  kPrepare,
  kCommit,
  kCheckpoint,
  kViewChange,
  kNewView,
  kPaxosAccept,
  kPaxosAccepted,
  kPaxosLearn,
  kPaxosPrepare,   // phase-1a: ballot takeover
  kPaxosPromise,   // phase-1b: promise + accepted history
  kFillRequest,    // gap catch-up: ask a peer for decided slots
  kFillReply,      // gap catch-up: decided value + commit proof
  // Checkpointing + state transfer (host level; kCheckpoint above is the
  // engine-level vote)
  kStateRequest,   // recovering replica: chain heads + consensus frontier
  kStateReply,     // checkpoint certificate + missing ledger blocks
  // Cross-cluster coordinator-based (paper Fig 5)
  kXPrepare,
  kXPrepared,
  kXCommit,
  kXAbort,
  // Cross-cluster flattened (paper Fig 6)
  kFPropose,
  kFAccept,
  kFCommit,
  // Failure handling (paper §4.3.4 / §4.4.4)
  kCommitQuery,
  kPreparedQuery,
  // Ordering -> firewall -> execution path (paper §4.2)
  kExecOrder,    // request + commit certificate toward execution nodes
  kExecReply,    // signed reply from execution node toward filters
  // Baselines (Fabric family)
  kEndorseReq,
  kEndorseResp,
  kOrderSubmit,
  kOrderedBlock,
  kValidateDone,
  kRaftAppend,
  kRaftAppendResp,
  kBlockFetchReq,  // peer block catch-up: resend ordered blocks >= from
};

const char* MsgTypeName(MsgType t);

/// Base class for every simulated network message.
///
/// Messages are immutable after construction and shared by pointer between
/// actors (the canonical serialized form is hashed into `digest` where
/// protocols need it). `wire_bytes` feeds the bandwidth model and
/// `sig_verify_ops` the CPU model: the receiving node is charged
/// per-signature verification time before its handler runs.
struct Message {
  explicit Message(MsgType t) : type(t) {}
  virtual ~Message() = default;

  MsgType type;
  /// Estimated serialized size in bytes (headers + payload).
  uint32_t wire_bytes = 128;
  /// Number of signature verifications the receiver performs.
  uint16_t sig_verify_ops = 1;

  template <typename T>
  const T* As() const {
    return static_cast<const T*>(this);
  }
};

using MessageRef = std::shared_ptr<const Message>;

}  // namespace qanaat

#endif  // QANAAT_SIM_MESSAGE_H_
