#ifndef QANAAT_SIM_FAULTS_H_
#define QANAAT_SIM_FAULTS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/network.h"

namespace qanaat {

/// One step of a fault schedule. Declarative so a plan can be printed,
/// serialized (EncodePlan/DecodePlan), stored next to a failing seed and
/// replayed verbatim.
struct FaultAction {
  enum class Kind : uint8_t {
    kCrash = 0,          // crash-stop node a
    kRecover,            // restart node a (fresh epoch semantics)
    kPartition,          // symmetric partition between a and b
    kHealPartition,      // heal the a <-> b partition
    kHealAllPartitions,  // heal every partition
    kLinkFault,          // install `fault` on both directions of a <-> b
    kClearLinkFault,     // remove the a <-> b rules (back to the default)
    kGlobalLinkFault,    // install `fault` as the default for every link
    kClearLinkFaults,    // remove all per-link and default fault rules
    kSetDropRate,        // set the global drop rate to `drop_rate`
    kSlowNode,           // gray failure: node a's CPU charges x `factor`
    kEquivocate,         // node a's consensus primary equivocates
    kClearEquivocate,    // node a stops equivocating
  };

  Kind kind = Kind::kCrash;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  Network::LinkFault fault;
  double drop_rate = 0.0;
  /// CPU inflation for kSlowNode (1.0 = restore full speed).
  double factor = 1.0;

  std::string ToString() const;
};

struct FaultEvent {
  SimTime at = 0;
  FaultAction action;
};

/// A declarative, time-ordered fault schedule. Built by hand for targeted
/// tests or expanded from a seed by MakeRandomPlan; in either case the
/// plan alone (plus the seed of the system under test) reproduces a run
/// bit-identically.
struct FaultPlan {
  std::vector<FaultEvent> events;

  void Add(SimTime at, FaultAction action);
  /// Stable-sorts events by time (ties keep insertion order).
  void Sort();

  // -- convenience window builders -------------------------------------
  void CrashWindow(SimTime from, SimTime to, NodeId n);
  void PartitionWindow(SimTime from, SimTime to, NodeId a, NodeId b);
  void LinkFaultWindow(SimTime from, SimTime to, NodeId a, NodeId b,
                       const Network::LinkFault& f);
  void GlobalFaultWindow(SimTime from, SimTime to,
                         const Network::LinkFault& f);
  void DropRateWindow(SimTime from, SimTime to, double rate);
  /// Crashes every node of a region for [from, to) — a datacenter outage.
  void RegionOutage(SimTime from, SimTime to,
                    const std::vector<NodeId>& region_nodes);
  /// Appends recover-everything / heal-everything events at `at`.
  void HealEverything(SimTime at, const std::vector<NodeId>& crashed_nodes);

  /// True iff the plan loses messages on links it cannot name up front
  /// (global drop-rate windows, destructive default link faults). Without
  /// untargeted loss, every replica NOT in DegradedNodes() must end the
  /// run bit-identical to its peers — the convergence audit; with it,
  /// only prefix agreement can be asserted.
  bool HasUntargetedLoss() const;
  /// Nodes a destructive event touches (crash victims, partition and
  /// lossy-link endpoints): their ledgers may legitimately be stale.
  std::vector<NodeId> DegradedNodes() const;

  std::string Summary() const;
};

/// A set of nodes that tolerate up to `max_faulty` simultaneous chaos
/// victims (e.g. one cluster's ordering nodes with its failure bound f).
/// Random plans pick victims per group and never exceed the bound — a
/// recovered replica may have missed decisions, so a victim counts
/// against the bound for the whole run, not just while crashed.
struct CrashGroup {
  std::vector<NodeId> crashable;
  int max_faulty = 1;
};

/// Active-adversary profile a random plan can stage on top of the benign
/// crash/partition/loss chaos. Each targets one consensus group and must
/// cost only liveness, never safety — the SafetyAuditor proves it.
enum class AdversaryKind : uint8_t {
  kNone = 0,
  /// Slow-but-alive primary: inflated CPU charges plus extra one-way
  /// latency on every link between the primary and its cluster peers.
  /// The node never dies, so naive dead/alive detectors see a healthy
  /// peer while quorums crawl.
  kGrayFailure,
  /// Byzantine ordering node: the targeted primary equivocates —
  /// divergent pre-prepare digests to disjoint replica subsets. Correct
  /// replicas must never commit conflicting values; the cluster pays a
  /// view change.
  kEquivocation,
  /// Selective-silence links: per-message-type deterministic drop rules
  /// between the target and its cluster peers (e.g. swallow only
  /// view-change or checkpoint traffic); everything else flows.
  kSelectiveSilence,
  /// Cross-conflict forcing (§4.3.5): lossy, laggy links between the
  /// target primary and its cluster peers delay its intra-cluster
  /// propose relative to rival clusters' cross-shard claims, so
  /// symmetric claims for the same slot arise and digest-priority
  /// arbitration plus loser re-proposal must settle them. The loss is
  /// targeted (named links only), so convergence and the eventual-commit
  /// audit stay armed. Meaningful with designated_coordinator off.
  kCrossConflict,
};

const char* AdversaryName(AdversaryKind k);

/// Knobs for seed-expanded random plans.
struct ChaosProfile {
  bool crashes = true;
  bool partitions = true;
  bool duplication = true;
  bool reordering = true;
  /// Per-link loss probability during fault windows. 0 keeps the plan
  /// loss-free apart from crashes/partitions.
  double loss = 0.0;
  double dup = 0.02;
  double reorder = 0.05;
  SimTime reorder_delay_us = 2 * kMillisecond;
  /// Crash/recover cycles per victim.
  int crash_cycles = 2;
  SimTime min_window = 50 * kMillisecond;
  SimTime max_window = 250 * kMillisecond;

  /// Staged adversary (kNone reproduces the historic plans bit-for-bit:
  /// no extra RNG draws, no group adjustments).
  AdversaryKind adversary = AdversaryKind::kNone;
  /// Gray failure: CPU inflation on the target and extra one-way latency
  /// on its cluster links.
  double gray_slow_factor = 6.0;
  SimTime gray_link_delay_us = 3 * kMillisecond;
  /// Selective silence: mask of MsgType bits to swallow
  /// (Network::LinkFault::TypeBit). 0 lets the harness pick a
  /// stack-appropriate default.
  uint64_t silence_types = 0;
};

/// Per-group adversary targets for MakeRandomPlan: entry i names the node
/// the staged adversary may target in groups[i] (a cluster's current
/// primary / Fabric's pinned Raft leader); kInvalidNode = no target. The
/// target consumes one of its group's `max_faulty` slots — a Byzantine or
/// gray node counts against the same bound a crash victim would, so the
/// plan never exceeds f combined faults per cluster.
struct AdversaryTargets {
  std::vector<NodeId> primaries;
};

/// Expands a seed into a randomized fault schedule over [0, horizon):
/// crash/recover cycles and partition windows for at most `max_faulty`
/// victims per group, plus network-wide duplication/reorder (and optional
/// loss) windows. The returned plan ends with a heal-everything event at
/// `horizon`, so the system can quiesce and be audited for convergence.
FaultPlan MakeRandomPlan(uint64_t seed, const std::vector<CrashGroup>& groups,
                         SimTime horizon, const ChaosProfile& profile);

/// Same, with staged-adversary support: when profile.adversary != kNone
/// and a target exists, one group is chosen and its target gets the
/// adversary windows (slow-node actions + link delays, equivocation
/// window, or selective-silence link rules). The adversary's RNG draws
/// come strictly after the benign plan's, so kNone plans are bit-identical
/// to the historic three-argument overload.
FaultPlan MakeRandomPlan(uint64_t seed, const std::vector<CrashGroup>& groups,
                         SimTime horizon, const ChaosProfile& profile,
                         const AdversaryTargets& targets);

/// Canonical little-endian serialization of a plan, so a failing seed's
/// expanded schedule can be stored verbatim next to its repro command.
std::vector<uint8_t> EncodePlan(const FaultPlan& plan);
Status DecodePlan(const std::vector<uint8_t>& buf, FaultPlan* out);

/// Executes a FaultPlan against the simulation: an actor whose timers
/// walk the schedule and apply each action to the Network / target
/// actors. Every applied action is folded into the network trace hash so
/// replays cover the fault schedule too.
class FaultInjector : public Actor {
 public:
  FaultInjector(Env* env, Network* net);

  /// Schedules every event of the plan. Call once, before running.
  void Install(FaultPlan plan);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;

  uint64_t applied() const { return applied_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  static constexpr uint64_t kTagFault = 1;

  void Apply(const FaultAction& a);

  Network* net_;
  FaultPlan plan_;
  uint64_t applied_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_SIM_FAULTS_H_
