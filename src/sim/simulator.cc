#include "sim/simulator.h"

#include <chrono>
#include <limits>

#include "sim/network.h"

namespace qanaat {

void Simulator::Execute(Event& ev) {
  switch (ev.kind) {
    case Kind::kClosure: {
      // Move the pooled closure out before running it: the callback may
      // schedule new closures, which can reuse (or reallocate) the slot.
      Callback fn = std::move(closures_[ev.closure]);
      closures_[ev.closure] = nullptr;
      free_closures_.push_back(ev.closure);
      fn();
      break;
    }
    case Kind::kDeliver:
      // A message addressed to a previous life of the node (it crashed
      // while this was in flight) is lost with the crashed process.
      if (ev.actor->epoch() == ev.epoch) {
        ev.actor->DeliverAt(static_cast<SimTime>(ev.a),
                            static_cast<NodeId>(ev.b), std::move(ev.msg));
      }
      break;
    case Kind::kHandle:
      // Epoch guard: work accepted before a crash must not complete in a
      // recovered life.
      if (!ev.actor->crashed() && ev.actor->epoch() == ev.epoch) {
        ev.actor->OnMessage(static_cast<NodeId>(ev.b), ev.msg);
      }
      break;
    case Kind::kTimer:
      // Epoch guard: timers armed before a crash die with that life.
      if (!ev.actor->crashed() && ev.actor->epoch() == ev.epoch) {
        ev.actor->OnTimer(ev.a, ev.b);
      }
      break;
  }
}

uint64_t Simulator::RunLoop(SimTime until) {
  uint64_t executed = 0;
  Event ev;
  for (;;) {
    // Merge point of the two event stores: the 4-ary heap (messages,
    // closures, spilled far timers) and the timer wheel. Both order by
    // the same global (time, seq) key, so picking the lexicographic
    // smaller each iteration reproduces the all-heap execution order
    // bit for bit.
    SimTime tw;
    uint64_t sw;
    bool have_wheel = wheel_.Min(now_, &tw, &sw);
    bool have_heap = !heap_.empty();
    if (!have_wheel && !have_heap) break;
    bool use_wheel =
        have_wheel &&
        (!have_heap || tw < heap_.front().time ||
         (tw == heap_.front().time && sw < heap_.front().seq));
    SimTime t = use_wheel ? tw : heap_.front().time;
    if (t > until) break;
    if (use_wheel) {
      now_ = t;
      TimerWheel::Entry e = wheel_.Pop(now_);
      switch (e.kind) {
        case TimerWheel::Kind::kTimer:
          // Epoch guard: timers armed before a crash die with that life.
          if (!e.actor->crashed() && e.actor->epoch() == e.epoch) {
            e.actor->OnTimer(e.a, e.b);
          }
          break;
        case TimerWheel::Kind::kDeliver:
          // A message addressed to a previous life of the node (it
          // crashed while this was in flight) is lost with the process.
          if (e.actor->epoch() == e.epoch) {
            e.actor->DeliverAt(static_cast<SimTime>(e.a),
                               static_cast<NodeId>(e.b), std::move(e.msg));
          }
          break;
        case TimerWheel::Kind::kHandle:
          // Work accepted before a crash must not complete in a
          // recovered life.
          if (!e.actor->crashed() && e.actor->epoch() == e.epoch) {
            e.actor->OnMessage(static_cast<NodeId>(e.b), e.msg);
          }
          break;
      }
    } else {
      // Pop before executing: the event may schedule new events.
      now_ = PopInto(ev);
      Execute(ev);
    }
    ++executed;
  }
  return executed;
}

uint64_t Simulator::Run(SimTime until) {
  auto wall0 = std::chrono::steady_clock::now();
  uint64_t executed = RunLoop(until);
  if (now_ < until) now_ = until;
  events_executed_ += executed;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return executed;
}

uint64_t Simulator::RunAll() {
  auto wall0 = std::chrono::steady_clock::now();
  uint64_t executed = RunLoop(std::numeric_limits<SimTime>::max());
  events_executed_ += executed;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return executed;
}

}  // namespace qanaat
