#include "sim/simulator.h"

namespace qanaat {

uint64_t Simulator::Run(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    // Copy out: the callback may schedule new events, invalidating top().
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

uint64_t Simulator::RunAll() {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++executed;
  }
  return executed;
}

}  // namespace qanaat
