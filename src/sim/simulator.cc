#include "sim/simulator.h"

#include <chrono>

#include "sim/network.h"

namespace qanaat {

void Simulator::Execute(Event& ev) {
  switch (ev.kind) {
    case Kind::kClosure: {
      // Move the pooled closure out before running it: the callback may
      // schedule new closures, which can reuse (or reallocate) the slot.
      Callback fn = std::move(closures_[ev.closure]);
      closures_[ev.closure] = nullptr;
      free_closures_.push_back(ev.closure);
      fn();
      break;
    }
    case Kind::kDeliver:
      // A message addressed to a previous life of the node (it crashed
      // while this was in flight) is lost with the crashed process.
      if (ev.actor->epoch() == ev.epoch) {
        ev.actor->DeliverAt(static_cast<SimTime>(ev.a),
                            static_cast<NodeId>(ev.b), std::move(ev.msg));
      }
      break;
    case Kind::kHandle:
      // Epoch guard: work accepted before a crash must not complete in a
      // recovered life.
      if (!ev.actor->crashed() && ev.actor->epoch() == ev.epoch) {
        ev.actor->OnMessage(static_cast<NodeId>(ev.b), ev.msg);
      }
      break;
    case Kind::kTimer:
      // Epoch guard: timers armed before a crash die with that life.
      if (!ev.actor->crashed() && ev.actor->epoch() == ev.epoch) {
        ev.actor->OnTimer(ev.a, ev.b);
      }
      break;
  }
}

uint64_t Simulator::Run(SimTime until) {
  auto wall0 = std::chrono::steady_clock::now();
  uint64_t executed = 0;
  Event ev;
  while (!heap_.empty() && heap_.front().time <= until) {
    // Pop before executing: the event may schedule new events.
    now_ = PopInto(ev);
    Execute(ev);
    ++executed;
  }
  if (now_ < until) now_ = until;
  events_executed_ += executed;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return executed;
}

uint64_t Simulator::RunAll() {
  auto wall0 = std::chrono::steady_clock::now();
  uint64_t executed = 0;
  Event ev;
  while (!heap_.empty()) {
    now_ = PopInto(ev);
    Execute(ev);
    ++executed;
  }
  events_executed_ += executed;
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  return executed;
}

}  // namespace qanaat
