#include "sim/faults.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/serde.h"

namespace qanaat {

namespace {
const char* KindName(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::kCrash:
      return "crash";
    case FaultAction::Kind::kRecover:
      return "recover";
    case FaultAction::Kind::kPartition:
      return "partition";
    case FaultAction::Kind::kHealPartition:
      return "heal-partition";
    case FaultAction::Kind::kHealAllPartitions:
      return "heal-all";
    case FaultAction::Kind::kLinkFault:
      return "link-fault";
    case FaultAction::Kind::kClearLinkFault:
      return "clear-link-fault";
    case FaultAction::Kind::kGlobalLinkFault:
      return "global-fault";
    case FaultAction::Kind::kClearLinkFaults:
      return "clear-faults";
    case FaultAction::Kind::kSetDropRate:
      return "drop-rate";
    case FaultAction::Kind::kSlowNode:
      return "slow-node";
    case FaultAction::Kind::kEquivocate:
      return "equivocate";
    case FaultAction::Kind::kClearEquivocate:
      return "clear-equivocate";
  }
  return "?";
}
}  // namespace

const char* AdversaryName(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kNone:
      return "none";
    case AdversaryKind::kGrayFailure:
      return "gray";
    case AdversaryKind::kEquivocation:
      return "equivocation";
    case AdversaryKind::kSelectiveSilence:
      return "silence";
    case AdversaryKind::kCrossConflict:
      return "conflict";
  }
  return "?";
}

std::string FaultAction::ToString() const {
  std::string s = KindName(kind);
  if (a != kInvalidNode) s += " a=" + std::to_string(a);
  if (b != kInvalidNode) s += " b=" + std::to_string(b);
  if (kind == Kind::kLinkFault || kind == Kind::kGlobalLinkFault) {
    s += " drop=" + std::to_string(fault.drop) +
         " dup=" + std::to_string(fault.duplicate) +
         " reorder=" + std::to_string(fault.reorder);
    if (fault.extra_delay_us > 0) {
      s += " delay=" + std::to_string(fault.extra_delay_us) + "us";
    }
    if (fault.silence_mask != 0) {
      s += " silence=0x";
      char buf[17];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(fault.silence_mask));
      s += buf;
    }
  }
  if (kind == Kind::kSetDropRate) s += " p=" + std::to_string(drop_rate);
  if (kind == Kind::kSlowNode) s += " x=" + std::to_string(factor);
  return s;
}

void FaultPlan::Add(SimTime at, FaultAction action) {
  events.push_back(FaultEvent{at, std::move(action)});
}

void FaultPlan::Sort() {
  std::stable_sort(
      events.begin(), events.end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
}

void FaultPlan::CrashWindow(SimTime from, SimTime to, NodeId n) {
  FaultAction c;
  c.kind = FaultAction::Kind::kCrash;
  c.a = n;
  Add(from, c);
  FaultAction r;
  r.kind = FaultAction::Kind::kRecover;
  r.a = n;
  Add(to, r);
}

void FaultPlan::PartitionWindow(SimTime from, SimTime to, NodeId a,
                                NodeId b) {
  FaultAction p;
  p.kind = FaultAction::Kind::kPartition;
  p.a = a;
  p.b = b;
  Add(from, p);
  FaultAction h;
  h.kind = FaultAction::Kind::kHealPartition;
  h.a = a;
  h.b = b;
  Add(to, h);
}

void FaultPlan::LinkFaultWindow(SimTime from, SimTime to, NodeId a, NodeId b,
                                const Network::LinkFault& f) {
  FaultAction on;
  on.kind = FaultAction::Kind::kLinkFault;
  on.a = a;
  on.b = b;
  on.fault = f;
  Add(from, on);
  FaultAction off;
  // Remove the rule rather than installing an all-zero one: a per-link
  // rule shadows the default rule, so a zero rule would make this link
  // immune to later network-wide fault windows.
  off.kind = FaultAction::Kind::kClearLinkFault;
  off.a = a;
  off.b = b;
  Add(to, off);
}

void FaultPlan::GlobalFaultWindow(SimTime from, SimTime to,
                                  const Network::LinkFault& f) {
  FaultAction on;
  on.kind = FaultAction::Kind::kGlobalLinkFault;
  on.fault = f;
  Add(from, on);
  FaultAction off;
  off.kind = FaultAction::Kind::kGlobalLinkFault;
  off.fault = Network::LinkFault{};
  Add(to, off);
}

void FaultPlan::DropRateWindow(SimTime from, SimTime to, double rate) {
  FaultAction on;
  on.kind = FaultAction::Kind::kSetDropRate;
  on.drop_rate = rate;
  Add(from, on);
  FaultAction off;
  off.kind = FaultAction::Kind::kSetDropRate;
  off.drop_rate = 0.0;
  Add(to, off);
}

void FaultPlan::RegionOutage(SimTime from, SimTime to,
                             const std::vector<NodeId>& region_nodes) {
  for (NodeId n : region_nodes) CrashWindow(from, to, n);
}

void FaultPlan::HealEverything(SimTime at,
                               const std::vector<NodeId>& crashed_nodes) {
  for (NodeId n : crashed_nodes) {
    FaultAction r;
    r.kind = FaultAction::Kind::kRecover;
    r.a = n;
    Add(at, r);
  }
  FaultAction heal;
  heal.kind = FaultAction::Kind::kHealAllPartitions;
  Add(at, heal);
  FaultAction clear;
  clear.kind = FaultAction::Kind::kClearLinkFaults;
  Add(at, clear);
  FaultAction drop;
  drop.kind = FaultAction::Kind::kSetDropRate;
  drop.drop_rate = 0.0;
  Add(at, drop);
}

bool FaultPlan::HasUntargetedLoss() const {
  for (const auto& ev : events) {
    switch (ev.action.kind) {
      case FaultAction::Kind::kGlobalLinkFault:
        if (ev.action.fault.Destructive()) return true;
        break;
      case FaultAction::Kind::kSetDropRate:
        if (ev.action.drop_rate > 0) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

std::vector<NodeId> FaultPlan::DegradedNodes() const {
  std::set<NodeId> out;
  for (const auto& ev : events) {
    switch (ev.action.kind) {
      case FaultAction::Kind::kCrash:
        out.insert(ev.action.a);
        break;
      case FaultAction::Kind::kPartition:
        out.insert(ev.action.a);
        out.insert(ev.action.b);
        break;
      case FaultAction::Kind::kLinkFault:
        if (ev.action.fault.Destructive()) {
          out.insert(ev.action.a);
          out.insert(ev.action.b);
        }
        break;
      default:
        break;
    }
  }
  return std::vector<NodeId>(out.begin(), out.end());
}

std::string FaultPlan::Summary() const {
  std::string s = "plan[" + std::to_string(events.size()) + "]";
  for (const auto& ev : events) {
    s += " @" + std::to_string(ev.at / kMillisecond) + "ms " +
         ev.action.ToString() + ";";
  }
  return s;
}

FaultPlan MakeRandomPlan(uint64_t seed, const std::vector<CrashGroup>& groups,
                         SimTime horizon, const ChaosProfile& profile) {
  return MakeRandomPlan(seed, groups, horizon, profile, AdversaryTargets{});
}

FaultPlan MakeRandomPlan(uint64_t seed, const std::vector<CrashGroup>& groups,
                         SimTime horizon, const ChaosProfile& profile,
                         const AdversaryTargets& targets) {
  Rng rng(seed ^ 0xc4a05e1ab6f0ca75ULL);
  FaultPlan plan;
  std::vector<NodeId> victims;

  // Staged adversary: pick one target group up front and charge the
  // target against that group's failure bound — a gray or Byzantine node
  // counts exactly like a crash victim, so the combined plan never
  // exceeds f faults per cluster. With kNone none of this runs and the
  // RNG stream matches the historic plans bit-for-bit.
  std::vector<CrashGroup> staged = groups;
  NodeId adversary_target = kInvalidNode;
  size_t adversary_group = 0;
  if (profile.adversary != AdversaryKind::kNone) {
    std::vector<size_t> eligible;
    for (size_t i = 0; i < staged.size() && i < targets.primaries.size();
         ++i) {
      if (targets.primaries[i] != kInvalidNode && staged[i].max_faulty > 0) {
        eligible.push_back(i);
      }
    }
    if (!eligible.empty()) {
      adversary_group = eligible[rng.Uniform(eligible.size())];
      adversary_target = targets.primaries[adversary_group];
      CrashGroup& g = staged[adversary_group];
      g.max_faulty -= 1;
      g.crashable.erase(
          std::remove(g.crashable.begin(), g.crashable.end(),
                      adversary_target),
          g.crashable.end());
    }
  }

  // Partition partners come from the whole crashable universe, so cross-
  // group (cross-cluster) partitions arise naturally. The adversary
  // target is excluded: it already consumes its group's fault slot.
  std::vector<NodeId> universe;
  for (const auto& g : staged) {
    universe.insert(universe.end(), g.crashable.begin(), g.crashable.end());
  }

  auto window = [&](SimTime latest_start) {
    SimTime len = profile.min_window;
    if (profile.max_window > profile.min_window) {
      len += static_cast<SimTime>(rng.Uniform(
          static_cast<uint64_t>(profile.max_window - profile.min_window)));
    }
    SimTime start = static_cast<SimTime>(
        rng.Uniform(static_cast<uint64_t>(std::max<SimTime>(latest_start, 1))));
    return std::make_pair(start, std::min(start + len, horizon));
  };

  for (const auto& g : staged) {
    // Up to max_faulty victims per group for the WHOLE run: a recovered
    // replica may have missed committed decisions, so it stays degraded.
    std::vector<NodeId> pool = g.crashable;
    int nv = std::min<int>(g.max_faulty, static_cast<int>(pool.size()));
    for (int i = 0; i < nv && !pool.empty(); ++i) {
      size_t pick = rng.Uniform(pool.size());
      NodeId v = pool[pick];
      pool.erase(pool.begin() + static_cast<long>(pick));
      victims.push_back(v);

      if (profile.crashes) {
        for (int c = 0; c < profile.crash_cycles; ++c) {
          auto [from, to] = window(horizon * 3 / 4);
          plan.CrashWindow(from, to, v);
        }
      }
      if (profile.partitions && universe.size() > 1) {
        NodeId partner = v;
        while (partner == v) {
          partner = universe[rng.Uniform(universe.size())];
        }
        auto [from, to] = window(horizon * 3 / 4);
        plan.PartitionWindow(from, to, v, partner);
      }
    }
  }

  if (profile.duplication || profile.reordering) {
    Network::LinkFault f;
    f.duplicate = profile.duplication ? profile.dup : 0.0;
    f.reorder = profile.reordering ? profile.reorder : 0.0;
    f.reorder_delay_us = profile.reorder_delay_us;
    int windows = 1 + static_cast<int>(rng.Uniform(2));
    for (int i = 0; i < windows; ++i) {
      auto [from, to] = window(horizon * 2 / 3);
      plan.GlobalFaultWindow(from, to, f);
    }
  }
  if (profile.loss > 0) {
    auto [from, to] = window(horizon / 2);
    plan.DropRateWindow(from, to, profile.loss);
  }

  // Staged adversary windows. Drawn after every benign draw so the
  // benign prefix of the schedule matches what the same seed produced
  // before adversaries existed.
  if (adversary_target != kInvalidNode) {
    const std::vector<NodeId>& peers = groups[adversary_group].crashable;
    auto [from, to] = window(horizon / 2);
    switch (profile.adversary) {
      case AdversaryKind::kNone:
        break;
      case AdversaryKind::kGrayFailure: {
        FaultAction slow;
        slow.kind = FaultAction::Kind::kSlowNode;
        slow.a = adversary_target;
        slow.factor = profile.gray_slow_factor;
        plan.Add(from, slow);
        FaultAction restore = slow;
        restore.factor = 1.0;
        plan.Add(to, restore);
        Network::LinkFault lag;
        lag.extra_delay_us = profile.gray_link_delay_us;
        for (NodeId p : peers) {
          if (p == adversary_target) continue;
          plan.LinkFaultWindow(from, to, adversary_target, p, lag);
        }
        break;
      }
      case AdversaryKind::kEquivocation: {
        FaultAction eq;
        eq.kind = FaultAction::Kind::kEquivocate;
        eq.a = adversary_target;
        plan.Add(from, eq);
        FaultAction clear;
        clear.kind = FaultAction::Kind::kClearEquivocate;
        clear.a = adversary_target;
        plan.Add(to, clear);
        break;
      }
      case AdversaryKind::kSelectiveSilence: {
        Network::LinkFault silence;
        silence.silence_mask = profile.silence_types;
        if (silence.silence_mask != 0) {
          for (NodeId p : peers) {
            if (p == adversary_target) continue;
            plan.LinkFaultWindow(from, to, adversary_target, p, silence);
          }
        }
        break;
      }
      case AdversaryKind::kCrossConflict: {
        // Lossy + laggy intra-cluster links around the target primary:
        // its own propose for a contested slot races (and often loses
        // to) the rival cluster's cross-shard claim, manufacturing the
        // symmetric rivalries §4.3.5 arbitrates. Loss is confined to
        // named links, so the plan keeps HasUntargetedLoss() == false
        // and the convergence + eventual-commit audits stay armed.
        Network::LinkFault contested;
        contested.drop = 0.35;
        contested.extra_delay_us = profile.gray_link_delay_us;
        for (NodeId p : peers) {
          if (p == adversary_target) continue;
          plan.LinkFaultWindow(from, to, adversary_target, p, contested);
        }
        break;
      }
    }
    // Belt and braces: whatever a window left behind is reset at the
    // horizon, next to HealEverything's link/partition/drop cleanup.
    FaultAction unslow;
    unslow.kind = FaultAction::Kind::kSlowNode;
    unslow.a = adversary_target;
    unslow.factor = 1.0;
    plan.Add(horizon, unslow);
    FaultAction uneq;
    uneq.kind = FaultAction::Kind::kClearEquivocate;
    uneq.a = adversary_target;
    plan.Add(horizon, uneq);
  }

  plan.HealEverything(horizon, victims);
  plan.Sort();
  return plan;
}

namespace {

// Doubles are encoded as their IEEE-754 bit pattern: the round trip is
// exact, which the replay guarantee requires (a re-expanded plan must
// flip the same coins).
uint64_t DoubleBits(double d) {
  uint64_t u;
  static_assert(sizeof(u) == sizeof(d), "double must be 64-bit");
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsDouble(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

constexpr uint32_t kPlanMagic = 0x51504c4e;  // "QPLN"
constexpr uint8_t kPlanVersion = 1;

}  // namespace

std::vector<uint8_t> EncodePlan(const FaultPlan& plan) {
  Encoder enc;
  enc.PutU32(kPlanMagic);
  enc.PutU8(kPlanVersion);
  enc.PutU32(static_cast<uint32_t>(plan.events.size()));
  for (const FaultEvent& ev : plan.events) {
    enc.PutI64(ev.at);
    enc.PutU8(static_cast<uint8_t>(ev.action.kind));
    enc.PutU32(ev.action.a);
    enc.PutU32(ev.action.b);
    enc.PutU64(DoubleBits(ev.action.fault.drop));
    enc.PutU64(DoubleBits(ev.action.fault.duplicate));
    enc.PutU64(DoubleBits(ev.action.fault.reorder));
    enc.PutI64(ev.action.fault.reorder_delay_us);
    enc.PutI64(ev.action.fault.extra_delay_us);
    enc.PutU64(ev.action.fault.silence_mask);
    enc.PutU64(DoubleBits(ev.action.drop_rate));
    enc.PutU64(DoubleBits(ev.action.factor));
  }
  return std::move(enc).Take();
}

Status DecodePlan(const std::vector<uint8_t>& buf, FaultPlan* out) {
  Decoder dec(buf);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!dec.GetU32(&magic) || magic != kPlanMagic) {
    return Status::Corruption("fault plan: bad magic");
  }
  if (!dec.GetU8(&version) || version != kPlanVersion) {
    return Status::Corruption("fault plan: unsupported version");
  }
  if (!dec.GetU32(&count)) return Status::Corruption("fault plan: truncated");
  FaultPlan plan;
  plan.events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FaultEvent ev;
    uint8_t kind = 0;
    uint64_t drop = 0, dup = 0, reorder = 0, silence = 0, rate = 0,
             factor = 0;
    if (!dec.GetI64(&ev.at) || !dec.GetU8(&kind) ||
        !dec.GetU32(&ev.action.a) || !dec.GetU32(&ev.action.b) ||
        !dec.GetU64(&drop) || !dec.GetU64(&dup) || !dec.GetU64(&reorder) ||
        !dec.GetI64(&ev.action.fault.reorder_delay_us) ||
        !dec.GetI64(&ev.action.fault.extra_delay_us) ||
        !dec.GetU64(&silence) || !dec.GetU64(&rate) ||
        !dec.GetU64(&factor)) {
      return Status::Corruption("fault plan: truncated event");
    }
    if (kind > static_cast<uint8_t>(FaultAction::Kind::kClearEquivocate)) {
      return Status::Corruption("fault plan: unknown action kind");
    }
    ev.action.kind = static_cast<FaultAction::Kind>(kind);
    ev.action.fault.drop = BitsDouble(drop);
    ev.action.fault.duplicate = BitsDouble(dup);
    ev.action.fault.reorder = BitsDouble(reorder);
    ev.action.fault.silence_mask = silence;
    ev.action.drop_rate = BitsDouble(rate);
    ev.action.factor = BitsDouble(factor);
    plan.events.push_back(std::move(ev));
  }
  if (!dec.Done()) return Status::Corruption("fault plan: trailing bytes");
  *out = std::move(plan);
  return Status::Ok();
}

FaultInjector::FaultInjector(Env* env, Network* net)
    : Actor(env, "fault-injector"), net_(net) {}

void FaultInjector::Install(FaultPlan plan) {
  plan_ = std::move(plan);
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    StartTimer(plan_.events[i].at - now(), kTagFault, i);
  }
}

void FaultInjector::OnMessage(NodeId /*from*/, const MessageRef& /*msg*/) {}

void FaultInjector::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag != kTagFault || payload >= plan_.events.size()) return;
  Apply(plan_.events[payload].action);
}

void FaultInjector::Apply(const FaultAction& a) {
  ++applied_;
  net_->NoteTraceEvent((static_cast<uint64_t>(now()) << 12) ^
                       (static_cast<uint64_t>(a.kind) << 56) ^
                       (static_cast<uint64_t>(a.a) << 28) ^
                       static_cast<uint64_t>(a.b));
  env()->metrics.Inc(std::string("faults.") + KindName(a.kind));
  switch (a.kind) {
    case FaultAction::Kind::kCrash:
      net_->actor(a.a)->Crash();
      break;
    case FaultAction::Kind::kRecover:
      net_->actor(a.a)->Recover();
      break;
    case FaultAction::Kind::kPartition:
      net_->Partition(a.a, a.b);
      break;
    case FaultAction::Kind::kHealPartition:
      net_->HealPartition(a.a, a.b);
      break;
    case FaultAction::Kind::kHealAllPartitions:
      net_->HealAllPartitions();
      break;
    case FaultAction::Kind::kLinkFault:
      net_->SetLinkFaultBetween(a.a, a.b, a.fault);
      break;
    case FaultAction::Kind::kClearLinkFault:
      net_->ClearLinkFaultBetween(a.a, a.b);
      break;
    case FaultAction::Kind::kGlobalLinkFault:
      if (a.fault.Any()) {
        net_->SetDefaultLinkFault(a.fault);
      } else {
        net_->ClearDefaultLinkFault();
      }
      break;
    case FaultAction::Kind::kClearLinkFaults:
      net_->ClearLinkFaults();
      break;
    case FaultAction::Kind::kSetDropRate:
      net_->SetDropRate(a.drop_rate);
      break;
    case FaultAction::Kind::kSlowNode:
      net_->actor(a.a)->SetCpuFactor(a.factor);
      break;
    case FaultAction::Kind::kEquivocate:
      net_->actor(a.a)->SetEquivocating(true);
      break;
    case FaultAction::Kind::kClearEquivocate:
      net_->actor(a.a)->SetEquivocating(false);
      break;
  }
}

}  // namespace qanaat
