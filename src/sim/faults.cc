#include "sim/faults.h"

#include <algorithm>
#include <set>

namespace qanaat {

namespace {
const char* KindName(FaultAction::Kind k) {
  switch (k) {
    case FaultAction::Kind::kCrash:
      return "crash";
    case FaultAction::Kind::kRecover:
      return "recover";
    case FaultAction::Kind::kPartition:
      return "partition";
    case FaultAction::Kind::kHealPartition:
      return "heal-partition";
    case FaultAction::Kind::kHealAllPartitions:
      return "heal-all";
    case FaultAction::Kind::kLinkFault:
      return "link-fault";
    case FaultAction::Kind::kClearLinkFault:
      return "clear-link-fault";
    case FaultAction::Kind::kGlobalLinkFault:
      return "global-fault";
    case FaultAction::Kind::kClearLinkFaults:
      return "clear-faults";
    case FaultAction::Kind::kSetDropRate:
      return "drop-rate";
  }
  return "?";
}
}  // namespace

std::string FaultAction::ToString() const {
  std::string s = KindName(kind);
  if (a != kInvalidNode) s += " a=" + std::to_string(a);
  if (b != kInvalidNode) s += " b=" + std::to_string(b);
  if (kind == Kind::kLinkFault || kind == Kind::kGlobalLinkFault) {
    s += " drop=" + std::to_string(fault.drop) +
         " dup=" + std::to_string(fault.duplicate) +
         " reorder=" + std::to_string(fault.reorder);
  }
  if (kind == Kind::kSetDropRate) s += " p=" + std::to_string(drop_rate);
  return s;
}

void FaultPlan::Add(SimTime at, FaultAction action) {
  events.push_back(FaultEvent{at, std::move(action)});
}

void FaultPlan::Sort() {
  std::stable_sort(
      events.begin(), events.end(),
      [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
}

void FaultPlan::CrashWindow(SimTime from, SimTime to, NodeId n) {
  FaultAction c;
  c.kind = FaultAction::Kind::kCrash;
  c.a = n;
  Add(from, c);
  FaultAction r;
  r.kind = FaultAction::Kind::kRecover;
  r.a = n;
  Add(to, r);
}

void FaultPlan::PartitionWindow(SimTime from, SimTime to, NodeId a,
                                NodeId b) {
  FaultAction p;
  p.kind = FaultAction::Kind::kPartition;
  p.a = a;
  p.b = b;
  Add(from, p);
  FaultAction h;
  h.kind = FaultAction::Kind::kHealPartition;
  h.a = a;
  h.b = b;
  Add(to, h);
}

void FaultPlan::LinkFaultWindow(SimTime from, SimTime to, NodeId a, NodeId b,
                                const Network::LinkFault& f) {
  FaultAction on;
  on.kind = FaultAction::Kind::kLinkFault;
  on.a = a;
  on.b = b;
  on.fault = f;
  Add(from, on);
  FaultAction off;
  // Remove the rule rather than installing an all-zero one: a per-link
  // rule shadows the default rule, so a zero rule would make this link
  // immune to later network-wide fault windows.
  off.kind = FaultAction::Kind::kClearLinkFault;
  off.a = a;
  off.b = b;
  Add(to, off);
}

void FaultPlan::GlobalFaultWindow(SimTime from, SimTime to,
                                  const Network::LinkFault& f) {
  FaultAction on;
  on.kind = FaultAction::Kind::kGlobalLinkFault;
  on.fault = f;
  Add(from, on);
  FaultAction off;
  off.kind = FaultAction::Kind::kGlobalLinkFault;
  off.fault = Network::LinkFault{};
  Add(to, off);
}

void FaultPlan::DropRateWindow(SimTime from, SimTime to, double rate) {
  FaultAction on;
  on.kind = FaultAction::Kind::kSetDropRate;
  on.drop_rate = rate;
  Add(from, on);
  FaultAction off;
  off.kind = FaultAction::Kind::kSetDropRate;
  off.drop_rate = 0.0;
  Add(to, off);
}

void FaultPlan::RegionOutage(SimTime from, SimTime to,
                             const std::vector<NodeId>& region_nodes) {
  for (NodeId n : region_nodes) CrashWindow(from, to, n);
}

void FaultPlan::HealEverything(SimTime at,
                               const std::vector<NodeId>& crashed_nodes) {
  for (NodeId n : crashed_nodes) {
    FaultAction r;
    r.kind = FaultAction::Kind::kRecover;
    r.a = n;
    Add(at, r);
  }
  FaultAction heal;
  heal.kind = FaultAction::Kind::kHealAllPartitions;
  Add(at, heal);
  FaultAction clear;
  clear.kind = FaultAction::Kind::kClearLinkFaults;
  Add(at, clear);
  FaultAction drop;
  drop.kind = FaultAction::Kind::kSetDropRate;
  drop.drop_rate = 0.0;
  Add(at, drop);
}

bool FaultPlan::HasUntargetedLoss() const {
  for (const auto& ev : events) {
    switch (ev.action.kind) {
      case FaultAction::Kind::kGlobalLinkFault:
        if (ev.action.fault.Destructive()) return true;
        break;
      case FaultAction::Kind::kSetDropRate:
        if (ev.action.drop_rate > 0) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

std::vector<NodeId> FaultPlan::DegradedNodes() const {
  std::set<NodeId> out;
  for (const auto& ev : events) {
    switch (ev.action.kind) {
      case FaultAction::Kind::kCrash:
        out.insert(ev.action.a);
        break;
      case FaultAction::Kind::kPartition:
        out.insert(ev.action.a);
        out.insert(ev.action.b);
        break;
      case FaultAction::Kind::kLinkFault:
        if (ev.action.fault.Destructive()) {
          out.insert(ev.action.a);
          out.insert(ev.action.b);
        }
        break;
      default:
        break;
    }
  }
  return std::vector<NodeId>(out.begin(), out.end());
}

std::string FaultPlan::Summary() const {
  std::string s = "plan[" + std::to_string(events.size()) + "]";
  for (const auto& ev : events) {
    s += " @" + std::to_string(ev.at / kMillisecond) + "ms " +
         ev.action.ToString() + ";";
  }
  return s;
}

FaultPlan MakeRandomPlan(uint64_t seed, const std::vector<CrashGroup>& groups,
                         SimTime horizon, const ChaosProfile& profile) {
  Rng rng(seed ^ 0xc4a05e1ab6f0ca75ULL);
  FaultPlan plan;
  std::vector<NodeId> victims;

  // Partition partners come from the whole crashable universe, so cross-
  // group (cross-cluster) partitions arise naturally.
  std::vector<NodeId> universe;
  for (const auto& g : groups) {
    universe.insert(universe.end(), g.crashable.begin(), g.crashable.end());
  }

  auto window = [&](SimTime latest_start) {
    SimTime len = profile.min_window;
    if (profile.max_window > profile.min_window) {
      len += static_cast<SimTime>(rng.Uniform(
          static_cast<uint64_t>(profile.max_window - profile.min_window)));
    }
    SimTime start = static_cast<SimTime>(
        rng.Uniform(static_cast<uint64_t>(std::max<SimTime>(latest_start, 1))));
    return std::make_pair(start, std::min(start + len, horizon));
  };

  for (const auto& g : groups) {
    // Up to max_faulty victims per group for the WHOLE run: a recovered
    // replica may have missed committed decisions, so it stays degraded.
    std::vector<NodeId> pool = g.crashable;
    int nv = std::min<int>(g.max_faulty, static_cast<int>(pool.size()));
    for (int i = 0; i < nv && !pool.empty(); ++i) {
      size_t pick = rng.Uniform(pool.size());
      NodeId v = pool[pick];
      pool.erase(pool.begin() + static_cast<long>(pick));
      victims.push_back(v);

      if (profile.crashes) {
        for (int c = 0; c < profile.crash_cycles; ++c) {
          auto [from, to] = window(horizon * 3 / 4);
          plan.CrashWindow(from, to, v);
        }
      }
      if (profile.partitions && universe.size() > 1) {
        NodeId partner = v;
        while (partner == v) {
          partner = universe[rng.Uniform(universe.size())];
        }
        auto [from, to] = window(horizon * 3 / 4);
        plan.PartitionWindow(from, to, v, partner);
      }
    }
  }

  if (profile.duplication || profile.reordering) {
    Network::LinkFault f;
    f.duplicate = profile.duplication ? profile.dup : 0.0;
    f.reorder = profile.reordering ? profile.reorder : 0.0;
    f.reorder_delay_us = profile.reorder_delay_us;
    int windows = 1 + static_cast<int>(rng.Uniform(2));
    for (int i = 0; i < windows; ++i) {
      auto [from, to] = window(horizon * 2 / 3);
      plan.GlobalFaultWindow(from, to, f);
    }
  }
  if (profile.loss > 0) {
    auto [from, to] = window(horizon / 2);
    plan.DropRateWindow(from, to, profile.loss);
  }

  plan.HealEverything(horizon, victims);
  plan.Sort();
  return plan;
}

FaultInjector::FaultInjector(Env* env, Network* net)
    : Actor(env, "fault-injector"), net_(net) {}

void FaultInjector::Install(FaultPlan plan) {
  plan_ = std::move(plan);
  for (size_t i = 0; i < plan_.events.size(); ++i) {
    StartTimer(plan_.events[i].at - now(), kTagFault, i);
  }
}

void FaultInjector::OnMessage(NodeId /*from*/, const MessageRef& /*msg*/) {}

void FaultInjector::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag != kTagFault || payload >= plan_.events.size()) return;
  Apply(plan_.events[payload].action);
}

void FaultInjector::Apply(const FaultAction& a) {
  ++applied_;
  net_->NoteTraceEvent((static_cast<uint64_t>(now()) << 12) ^
                       (static_cast<uint64_t>(a.kind) << 56) ^
                       (static_cast<uint64_t>(a.a) << 28) ^
                       static_cast<uint64_t>(a.b));
  env()->metrics.Inc(std::string("faults.") + KindName(a.kind));
  switch (a.kind) {
    case FaultAction::Kind::kCrash:
      net_->actor(a.a)->Crash();
      break;
    case FaultAction::Kind::kRecover:
      net_->actor(a.a)->Recover();
      break;
    case FaultAction::Kind::kPartition:
      net_->Partition(a.a, a.b);
      break;
    case FaultAction::Kind::kHealPartition:
      net_->HealPartition(a.a, a.b);
      break;
    case FaultAction::Kind::kHealAllPartitions:
      net_->HealAllPartitions();
      break;
    case FaultAction::Kind::kLinkFault:
      net_->SetLinkFaultBetween(a.a, a.b, a.fault);
      break;
    case FaultAction::Kind::kClearLinkFault:
      net_->ClearLinkFaultBetween(a.a, a.b);
      break;
    case FaultAction::Kind::kGlobalLinkFault:
      if (a.fault.Any()) {
        net_->SetDefaultLinkFault(a.fault);
      } else {
        net_->ClearDefaultLinkFault();
      }
      break;
    case FaultAction::Kind::kClearLinkFaults:
      net_->ClearLinkFaults();
      break;
    case FaultAction::Kind::kSetDropRate:
      net_->SetDropRate(a.drop_rate);
      break;
  }
}

}  // namespace qanaat
