#include "qanaat/system.h"

namespace qanaat {

QanaatSystem::QanaatSystem(Options opts)
    : env_(std::make_unique<Env>(opts.seed)),
      net_(std::make_unique<Network>(env_.get())),
      model_(opts.params.num_enterprises) {
  const SystemParams& p = opts.params;
  dir_.params = p;

  // ---- data model: one workflow over all enterprises + pairwise
  // intermediate collections (the §5 setup: transactions target shared
  // collections with varying numbers of involved enterprises).
  model_.set_default_shard_count(p.shards_per_enterprise);
  model_.AddWorkflow(EnterpriseSet::All(p.num_enterprises));
  if (opts.pairwise_collections) {
    for (int a = 0; a < p.num_enterprises; ++a) {
      for (int b = a + 1; b < p.num_enterprises; ++b) {
        model_.AddIntermediateCollection(
            EnterpriseSet{static_cast<EnterpriseId>(a),
                          static_cast<EnterpriseId>(b)});
      }
    }
  }

  // ---- regions
  int max_region = 0;
  for (int r : opts.cluster_regions) max_region = std::max(max_region, r);
  for (int r = 0; r < max_region; ++r) net_->AddRegion();

  // ---- cluster configs (node ids assigned at actor construction, so we
  // lay out the directory first with placeholder ids, then construct
  // actors in a fixed order and fill the ids in).
  int num_clusters = p.num_enterprises * p.shards_per_enterprise;
  dir_.clusters.resize(num_clusters);
  ordering_.resize(num_clusters);
  execution_.resize(num_clusters);
  filters_.resize(num_clusters);

  for (int c = 0; c < num_clusters; ++c) {
    ClusterConfig& cfg = dir_.clusters[c];
    cfg.cluster_id = c;
    cfg.enterprise = static_cast<EnterpriseId>(c / p.shards_per_enterprise);
    cfg.shard = static_cast<ShardId>(c % p.shards_per_enterprise);
    cfg.failure_model = p.failure_model;
    cfg.region = opts.cluster_regions.empty()
                     ? 0
                     : opts.cluster_regions[c % opts.cluster_regions.size()];
  }

  // Reserve node ids by constructing actors cluster by cluster. Ordering
  // node ids must be known before OrderingNode construction (the engine
  // needs the member list), so we pre-compute them: ids are assigned
  // sequentially by Network::Register.
  size_t ord_n = p.OrderingClusterSize();
  size_t exec_n =
      (p.failure_model == FailureModel::kByzantine && p.use_firewall)
          ? static_cast<size_t>(2 * p.g + 1)
          : 0;
  size_t filter_rows = p.use_firewall ? static_cast<size_t>(p.h) + 1 : 0;
  size_t filters_per_row = p.use_firewall ? static_cast<size_t>(p.h) + 1 : 0;

  NodeId next_id = 0;
  for (int c = 0; c < num_clusters; ++c) {
    ClusterConfig& cfg = dir_.clusters[c];
    for (size_t i = 0; i < ord_n; ++i) cfg.ordering.push_back(next_id++);
    for (size_t i = 0; i < exec_n; ++i) cfg.execution.push_back(next_id++);
    cfg.filter_rows.resize(filter_rows);
    for (size_t r = 0; r < filter_rows; ++r) {
      for (size_t i = 0; i < filters_per_row; ++i) {
        cfg.filter_rows[r].push_back(next_id++);
      }
    }
  }

  for (int c = 0; c < num_clusters; ++c) {
    for (size_t i = 0; i < ord_n; ++i) {
      ordering_[c].push_back(std::make_unique<OrderingNode>(
          env_.get(), &dir_, &model_, c, static_cast<int>(i)));
    }
    for (size_t i = 0; i < exec_n; ++i) {
      execution_[c].push_back(std::make_unique<ExecutionNode>(
          env_.get(), &dir_, &model_, c, static_cast<int>(i)));
    }
    filters_[c].resize(filter_rows);
    for (size_t r = 0; r < filter_rows; ++r) {
      for (size_t i = 0; i < filters_per_row; ++i) {
        filters_[c][r].push_back(std::make_unique<FilterNode>(
            env_.get(), &dir_, c, static_cast<int>(r),
            static_cast<int>(i)));
      }
    }
    // Sanity: the pre-computed ids must match the assigned ones.
    if (!ordering_[c].empty() &&
        ordering_[c][0]->id() != dir_.clusters[c].ordering[0]) {
      env_->metrics.Inc("system.id_mismatch");
    }
    RestrictFirewallLinks(net_.get(), dir_.clusters[c]);
  }
}

ClientMachine* QanaatSystem::AddClient(WorkloadParams wl, double rate_tps) {
  auto workload = std::make_unique<SmallBankWorkload>(
      &model_, &dir_, wl, Rng(client_seed_ * 31 + clients_.size()));
  clients_.push_back(std::make_unique<ClientMachine>(
      env_.get(), &dir_, std::move(workload), rate_tps,
      client_seed_ + clients_.size()));
  return clients_.back().get();
}

uint64_t QanaatSystem::TotalMeasuredCommits() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->measured_commits();
  return total;
}

uint64_t QanaatSystem::TotalAccepted() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->accepted();
  return total;
}

Histogram QanaatSystem::MergedLatencies() const {
  Histogram h;
  for (const auto& c : clients_) h.Merge(c->latencies());
  return h;
}

Status QanaatSystem::VerifyAllLedgers() const {
  for (const auto& cluster_nodes : ordering_) {
    for (const auto& node : cluster_nodes) {
      // Quorum 0: skip certificate checks for mixed cert forms; chain
      // structure + digests still fully verified.
      QANAAT_RETURN_IF_ERROR(
          node->exec_core().ledger().VerifyChain(env_->keystore, 0));
    }
  }
  for (const auto& cluster_nodes : execution_) {
    for (const auto& node : cluster_nodes) {
      QANAAT_RETURN_IF_ERROR(
          node->core().ledger().VerifyChain(env_->keystore, 0));
    }
  }
  return Status::Ok();
}

}  // namespace qanaat
