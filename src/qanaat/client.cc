#include "qanaat/client.h"

#include <set>

namespace qanaat {

ClientMachine::ClientMachine(Env* env, const Directory* dir,
                             std::unique_ptr<SmallBankWorkload> workload,
                             double rate_tps, uint64_t seed)
    : Actor(env, "client", 0),
      dir_(dir),
      workload_(std::move(workload)),
      rate_tps_(rate_tps),
      rng_(seed) {}

void ClientMachine::Start(SimTime start, SimTime stop, SimTime measure_from,
                          SimTime measure_to) {
  stop_at_ = stop;
  measure_from_ = measure_from;
  measure_to_ = measure_to;
  StartTimer(start, kTagIssue, 0);
}

void ClientMachine::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag == kTagIssue) {
    if (now() >= stop_at_) return;
    IssueNext();
    // Poisson arrivals at rate_tps_.
    double gap_us = rng_.Exponential(1e6 / rate_tps_);
    StartTimer(static_cast<SimTime>(gap_us) + 1, kTagIssue, 0);
    return;
  }
  if (tag == kTagRetransmit) {
    auto it = pending_.find(payload);
    if (it == pending_.end()) return;  // settled (erased) meanwhile
    // §4.3.4: multicast the request to all nodes of the target cluster.
    auto req = std::make_shared<RequestMsg>(*it->second.request);
    req->is_retransmission = true;
    Multicast(dir_->Cluster(it->second.target_cluster).ordering, req);
    env()->metrics.Inc("client.retransmit");
    StartTimer(retransmit_timeout_, kTagRetransmit, payload);
  }
}

void ClientMachine::IssueNext() {
  uint64_t ts = next_ts_++;
  Transaction tx = workload_->Next(id(), ts);
  tx.client_sig = env()->keystore.Sign(id(), tx.Digest());
  int target = workload_->TargetCluster(tx);

  auto req = std::make_shared<RequestMsg>();
  req->tx = tx;
  req->wire_bytes = 64 + tx.WireSize();

  PendingTx p;
  p.sent_at = now();
  p.target_cluster = target;
  if (retransmit_timeout_ > 0) {
    p.request = req;
    StartTimer(retransmit_timeout_, kTagRetransmit, ts);
  }
  pending_.emplace(ts, std::move(p));
  issued_++;
  Send(dir_->Cluster(target).InitialPrimary(), req);
}

void ClientMachine::Settle(uint64_t ts, bool matching_rule_met) {
  if (!matching_rule_met) return;
  auto it = pending_.find(ts);
  if (it == pending_.end()) return;  // already settled
  accepted_++;
  SimTime lat = now() - it->second.sent_at;
  // Throughput is counted by completion time (settles per second of the
  // measurement window) so an over-driven run reports the sustainable
  // rate rather than the offered one.
  if (now() >= measure_from_ && now() < measure_to_) {
    measured_commits_++;
    latencies_.Add(lat);
  }
  pending_.erase(it);
}

void ClientMachine::HandleReply(NodeId /*from*/, const ReplyMsg& m) {
  if (!env()->keystore.Verify(m.sig, m.result_digest)) {
    env()->metrics.Inc("client.bad_reply_sig");
    return;
  }
  // Find our transactions inside the block's client list.
  size_t needed = 1;
  if (dir_->params.failure_model == FailureModel::kByzantine &&
      !dir_->params.use_firewall) {
    needed = static_cast<size_t>(dir_->params.f) + 1;
  }
  for (const auto& [client, ts] : m.clients) {
    if (client != id()) continue;
    auto it = pending_.find(ts);
    if (it == pending_.end()) continue;  // settled already
    if (needed == 1) {
      Settle(ts, true);
      continue;
    }
    uint64_t result = m.result_digest.Prefix64();
    auto& votes = it->second.votes;
    bool dup = false;
    size_t matching = 1;  // this reply
    for (const auto& [r, signer] : votes) {
      if (signer == m.sig.signer && r == result) dup = true;
      if (r == result) ++matching;
    }
    if (dup) continue;
    votes.emplace_back(result, m.sig.signer);
    if (matching >= needed) Settle(ts, true);
  }
}

void ClientMachine::HandleReplyCert(const ReplyCertMsg& m) {
  // Re-verify the certificate: g+1 valid shares from distinct executors
  // over the result digest.
  std::set<NodeId> distinct;
  Encoder enc;
  enc.PutRaw(m.block_digest.bytes.data(), 32);
  enc.PutRaw(m.result_digest.bytes.data(), 32);
  Sha256Digest signable = Sha256::Hash(enc.buffer());
  for (const auto& s : m.cert.sigs) {
    if (!env()->keystore.VerifyShare(s, signable)) {
      env()->metrics.Inc("client.bad_reply_cert");
      return;
    }
    distinct.insert(s.signer);
  }
  if (distinct.size() < static_cast<size_t>(dir_->params.g) + 1) {
    env()->metrics.Inc("client.short_reply_cert");
    return;
  }
  // Per-request matching inside a batched certificate: one block-granular
  // certificate settles every pending request of ours it covers.
  uint64_t settled = 0;
  for (const auto& [client, ts] : m.clients) {
    if (client != id()) continue;
    Settle(ts, true);
    ++settled;
  }
  if (settled > 0) {
    env()->metrics.Hist("client.settles_per_cert")
        .Add(static_cast<int64_t>(settled));
  }
}

void ClientMachine::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kReply:
      HandleReply(from, *msg->As<ReplyMsg>());
      break;
    case MsgType::kReplyCert:
      HandleReplyCert(*msg->As<ReplyCertMsg>());
      break;
    default:
      break;
  }
}

}  // namespace qanaat
