#ifndef QANAAT_QANAAT_SYSTEM_H_
#define QANAAT_QANAAT_SYSTEM_H_

#include <memory>
#include <vector>

#include "collections/data_model.h"
#include "firewall/firewall.h"
#include "protocols/context.h"
#include "protocols/ordering_node.h"
#include "qanaat/client.h"
#include "sim/env.h"
#include "sim/network.h"

namespace qanaat {

/// Everything needed to stand up a Qanaat deployment in one simulation:
/// data model, directory, clusters (ordering nodes, and — for Byzantine
/// deployments with separation — execution nodes and the privacy
/// firewall), plus client machines.
///
/// The default data model registers one workflow over all enterprises
/// (root collection), local collections, and an intermediate collection
/// for every pair of enterprises, matching the evaluation setups of §5.
class QanaatSystem {
 public:
  struct Options {
    SystemParams params;
    /// Region index per cluster (empty = all region 0). Used for the
    /// geo-distribution experiments (§5.4).
    std::vector<int> cluster_regions;
    /// Create intermediate collections for every pair of enterprises.
    bool pairwise_collections = true;
    uint64_t seed = 1;
  };

  explicit QanaatSystem(Options opts);

  Env& env() { return *env_; }
  Network& net() { return *net_; }
  const Directory& directory() const { return dir_; }
  const DataModel& model() const { return model_; }
  DataModel* mutable_model() { return &model_; }

  OrderingNode* ordering_node(int cluster, int index) {
    return ordering_[cluster][index].get();
  }
  ExecutionNode* execution_node(int cluster, int index) {
    return execution_[cluster][index].get();
  }
  FilterNode* filter_node(int cluster, int row, int index) {
    return filters_[cluster][row][index].get();
  }
  int cluster_count() const { return static_cast<int>(ordering_.size()); }

  /// Creates a client machine driving the given workload at `rate_tps`.
  ClientMachine* AddClient(WorkloadParams wl, double rate_tps);
  const std::vector<std::unique_ptr<ClientMachine>>& clients() const {
    return clients_;
  }

  /// Aggregate committed transactions across all client machines
  /// (measurement window only).
  uint64_t TotalMeasuredCommits() const;
  /// Accepted (settled) transactions across all clients, whole run.
  uint64_t TotalAccepted() const;
  Histogram MergedLatencies() const;

  /// Sum of committed txs over every cluster's node 0 ledger (sanity /
  /// audit surface for tests).
  Status VerifyAllLedgers() const;

 private:
  std::unique_ptr<Env> env_;
  std::unique_ptr<Network> net_;
  DataModel model_;
  Directory dir_;
  std::vector<std::vector<std::unique_ptr<OrderingNode>>> ordering_;
  std::vector<std::vector<std::unique_ptr<ExecutionNode>>> execution_;
  std::vector<std::vector<std::vector<std::unique_ptr<FilterNode>>>> filters_;
  std::vector<std::unique_ptr<ClientMachine>> clients_;
  uint64_t client_seed_ = 7777;
};

}  // namespace qanaat

#endif  // QANAAT_QANAAT_SYSTEM_H_
