#ifndef QANAAT_QANAAT_CLIENT_H_
#define QANAAT_QANAAT_CLIENT_H_

#include <map>
#include <memory>
#include <unordered_map>

#include "common/histogram.h"
#include "consensus/messages.h"
#include "protocols/context.h"
#include "sim/network.h"
#include "workload/smallbank.h"

namespace qanaat {

/// A client machine: an open-loop load generator driving many logical
/// clients. Issues signed requests at a Poisson rate to the (designated)
/// primary of each transaction's target cluster, matches replies
/// according to the deployment's acceptance rule, and records end-to-end
/// latency — the measurement methodology of §5 ("results reflect
/// end-to-end measurements from the clients").
///
/// Acceptance rules:
///  * crash cluster                — first reply (from the primary);
///  * Byzantine, no separation    — f+1 matching signed replies;
///  * Byzantine + privacy firewall — one valid reply certificate (g+1
///    execution shares, re-verified here).
class ClientMachine : public Actor {
 public:
  ClientMachine(Env* env, const Directory* dir,
                std::unique_ptr<SmallBankWorkload> workload, double rate_tps,
                uint64_t seed);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;

  /// Starts issuing requests in [start, stop); measurement window
  /// [measure_from, measure_to) filters warmup/cooldown.
  void Start(SimTime start, SimTime stop, SimTime measure_from,
             SimTime measure_to);

  uint64_t issued() const { return issued_; }
  uint64_t accepted() const { return accepted_; }
  /// Committed transactions inside the measurement window.
  uint64_t measured_commits() const { return measured_commits_; }
  const Histogram& latencies() const { return latencies_; }

  /// Enable client retransmission on timeout (primary-failure handling).
  void SetRetransmitTimeout(SimTime t) { retransmit_timeout_ = t; }

 protected:
  /// A client machine aggregates many physical client hosts; its CPU is
  /// not part of the system under test, so message handling is charged a
  /// token cost (otherwise reply fan-in would bottleneck measurement).
  SimTime CostOf(const Message& /*msg*/) const override { return 2; }

 private:
  struct PendingTx {
    SimTime sent_at = 0;
    int target_cluster = 0;
    std::shared_ptr<RequestMsg> request;  // kept for retransmission
    // Byzantine (no firewall) acceptance rule: one (result prefix,
    // replier) record per reply; settle once `needed` distinct repliers
    // agree on one result. Replies per tx are bounded by cluster size,
    // so a flat vector beats the map<result, set<node>> it replaced.
    std::vector<std::pair<uint64_t, NodeId>> votes;
  };

  static constexpr uint64_t kTagIssue = 1;
  static constexpr uint64_t kTagRetransmit = 2;

  void IssueNext();
  void Settle(uint64_t ts, bool matching_rule_met);
  void HandleReply(NodeId from, const ReplyMsg& m);
  void HandleReplyCert(const ReplyCertMsg& m);

  const Directory* dir_;
  std::unique_ptr<SmallBankWorkload> workload_;
  double rate_tps_;
  Rng rng_;
  SimTime stop_at_ = 0;
  SimTime measure_from_ = 0;
  SimTime measure_to_ = 0;
  SimTime retransmit_timeout_ = 0;  // 0 = disabled

  uint64_t next_ts_ = 1;
  /// Sequential timestamps need a mixing hash; accessed on every issue,
  /// reply and retransmission, never iterated.
  struct TsHash {
    size_t operator()(uint64_t ts) const {
      return static_cast<size_t>(Mix64(ts + 0x9e3779b97f4a7c15ULL));
    }
  };
  // Settled entries are erased (late replies and retransmit timers treat
  // "missing" exactly like the old done flag), so the table tracks only
  // in-flight transactions.
  std::unordered_map<uint64_t, PendingTx, TsHash> pending_;

  uint64_t issued_ = 0;
  uint64_t accepted_ = 0;
  uint64_t measured_commits_ = 0;
  Histogram latencies_;
};

}  // namespace qanaat

#endif  // QANAAT_QANAAT_CLIENT_H_
