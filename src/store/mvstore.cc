#include "store/mvstore.h"

#include <algorithm>

namespace qanaat {

Status MvStore::Put(Key key, Value value, SeqNo version) {
  auto& chain = chains_[key];
  if (!chain.empty() && chain.back().version > version) {
    return Status::FailedPrecondition(
        "version regression on key " + std::to_string(key) + ": " +
        std::to_string(chain.back().version) + " -> " +
        std::to_string(version));
  }
  if (!chain.empty() && chain.back().version == version) {
    chain.back().value = value;  // last write in the same tx wins
  } else {
    chain.push_back({version, value});
  }
  latest_version_ = std::max(latest_version_, version);
  return Status::Ok();
}

StatusOr<MvStore::Value> MvStore::Get(Key key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return it->second.back().value;
}

StatusOr<MvStore::Value> MvStore::GetAt(Key key, SeqNo max_version) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  const auto& chain = it->second;
  // Last version <= max_version.
  auto pos = std::upper_bound(
      chain.begin(), chain.end(), max_version,
      [](SeqNo v, const VersionedValue& vv) { return v < vv.version; });
  if (pos == chain.begin()) {
    return Status::NotFound("key " + std::to_string(key) +
                            " absent at version " +
                            std::to_string(max_version));
  }
  return std::prev(pos)->value;
}

size_t MvStore::VersionCountOf(Key key) const {
  auto it = chains_.find(key);
  return it == chains_.end() ? 0 : it->second.size();
}

void MvStore::TrimBelow(SeqNo floor) {
  for (auto& [key, chain] : chains_) {
    if (chain.size() <= 1) continue;
    // Keep the newest version < floor as the base value plus everything
    // >= floor.
    auto first_kept = std::lower_bound(
        chain.begin(), chain.end(), floor,
        [](const VersionedValue& vv, SeqNo v) { return vv.version < v; });
    if (first_kept == chain.begin()) continue;
    auto base = std::prev(first_kept);
    chain.erase(chain.begin(), base);
  }
}

Status WriteBatch::ApplyTo(MvStore* store, SeqNo version) const {
  for (const auto& [k, v] : writes_) {
    QANAAT_RETURN_IF_ERROR(store->Put(k, v, version));
  }
  return Status::Ok();
}

}  // namespace qanaat
