#include "store/mvstore.h"

#include <algorithm>

namespace qanaat {

uint32_t MvStore::FindChain(Key key) const {
  size_t mask = index_.size() - 1;
  size_t i = HashKey(key) & mask;
  while (true) {
    const auto& bucket = index_[i];
    if (bucket.second == kNoChain) return kNoChain;
    if (bucket.first == key) return bucket.second;
    i = (i + 1) & mask;
  }
}

uint32_t MvStore::FindOrCreateChain(Key key) {
  size_t mask = index_.size() - 1;
  size_t i = HashKey(key) & mask;
  while (true) {
    auto& bucket = index_[i];
    if (bucket.second == kNoChain) {
      uint32_t idx = static_cast<uint32_t>(chains_.size());
      chains_.emplace_back();
      bucket = {key, idx};
      // Keep the load factor under 1/2 so probe runs stay short.
      if (chains_.size() * 2 > index_.size()) GrowIndex();
      return idx;
    }
    if (bucket.first == key) return bucket.second;
    i = (i + 1) & mask;
  }
}

void MvStore::GrowIndex() {
  std::vector<std::pair<Key, uint32_t>> bigger(index_.size() * 2,
                                               {0, kNoChain});
  size_t mask = bigger.size() - 1;
  for (const auto& bucket : index_) {
    if (bucket.second == kNoChain) continue;
    size_t i = HashKey(bucket.first) & mask;
    while (bigger[i].second != kNoChain) i = (i + 1) & mask;
    bigger[i] = bucket;
  }
  index_.swap(bigger);
}

Status MvStore::Put(Key key, Value value, SeqNo version) {
  auto& chain = chains_[FindOrCreateChain(key)];
  if (!chain.empty() && chain.back().version > version) {
    return Status::FailedPrecondition(
        "version regression on key " + std::to_string(key) + ": " +
        std::to_string(chain.back().version) + " -> " +
        std::to_string(version));
  }
  if (!chain.empty() && chain.back().version == version) {
    chain.back().value = value;  // last write in the same tx wins
  } else {
    chain.push_back({version, value});
  }
  latest_version_ = std::max(latest_version_, version);
  return Status::Ok();
}

StatusOr<MvStore::Value> MvStore::Get(Key key) const {
  uint32_t idx = FindChain(key);
  if (idx == kNoChain || chains_[idx].empty()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  return chains_[idx].back().value;
}

StatusOr<MvStore::Value> MvStore::GetAt(Key key, SeqNo max_version) const {
  uint32_t idx = FindChain(key);
  if (idx == kNoChain || chains_[idx].empty()) {
    return Status::NotFound("key " + std::to_string(key));
  }
  const auto& chain = chains_[idx];
  // Last version <= max_version.
  auto pos = std::upper_bound(
      chain.begin(), chain.end(), max_version,
      [](SeqNo v, const VersionedValue& vv) { return v < vv.version; });
  if (pos == chain.begin()) {
    return Status::NotFound("key " + std::to_string(key) +
                            " absent at version " +
                            std::to_string(max_version));
  }
  return std::prev(pos)->value;
}

size_t MvStore::VersionCountOf(Key key) const {
  uint32_t idx = FindChain(key);
  return idx == kNoChain ? 0 : chains_[idx].size();
}

void MvStore::TrimBelow(SeqNo floor) {
  for (auto& chain : chains_) {
    if (chain.size() <= 1) continue;
    // Keep the newest version < floor as the base value plus everything
    // >= floor.
    auto first_kept = std::lower_bound(
        chain.begin(), chain.end(), floor,
        [](const VersionedValue& vv, SeqNo v) { return vv.version < v; });
    if (first_kept == chain.begin()) continue;
    auto base = std::prev(first_kept);
    chain.erase(chain.begin(), base);
  }
}

uint64_t MvStore::Fingerprint() const {
  // Commutative accumulation (sum of mixed per-key words): key order in
  // the open-addressed index depends on insertion history, which differs
  // between a replica that executed live and one rebuilt by state
  // transfer, and must not affect the result.
  uint64_t acc = 0;
  for (const auto& bucket : index_) {
    if (bucket.second == kNoChain) continue;
    const auto& chain = chains_[bucket.second];
    if (chain.empty()) continue;
    uint64_t w = Mix64(bucket.first + 0x9e3779b97f4a7c15ULL);
    w ^= Mix64(chain.back().version + 0x51ed270b9f652295ULL);
    w ^= Mix64(static_cast<uint64_t>(chain.back().value));
    acc += Mix64(w);
  }
  return acc;
}

Status WriteBatch::ApplyTo(MvStore* store, SeqNo version) const {
  for (const auto& [k, v] : writes_) {
    QANAAT_RETURN_IF_ERROR(store->Put(k, v, version));
  }
  return Status::Ok();
}

}  // namespace qanaat
