#ifndef QANAAT_STORE_MVSTORE_H_
#define QANAAT_STORE_MVSTORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace qanaat {

/// Multi-versioned key-value store backing one shard of one data
/// collection on an execution node.
///
/// Paper §4.2: "Data collections store data in multi-versioned datastores
/// to enable nodes to read the version they need to" — executors resolve
/// reads of order-dependent collections at exactly the sequence number
/// captured in the transaction's γ, so every replica reads the same state.
///
/// Versions are the local sequence numbers of the committing transactions
/// and are therefore monotonically increasing per store.
class MvStore {
 public:
  using Key = uint64_t;
  using Value = int64_t;

  MvStore() { index_.assign(kInitialBuckets, {0, kNoChain}); }

  /// Installs `value` for `key` at `version`. Versions must not decrease
  /// across calls for the same key (enforced; ledger order guarantees it).
  Status Put(Key key, Value value, SeqNo version);

  /// Latest committed value.
  StatusOr<Value> Get(Key key) const;

  /// Allocation-free read of the latest committed value: nullptr when the
  /// key is absent. The execution hot path reads keys that often do not
  /// exist yet (first touch of an account), and Get's NotFound status
  /// builds a std::string per miss — measurable at hundreds of thousands
  /// of reads per run.
  const Value* Find(Key key) const {
    uint32_t idx = FindChain(key);
    if (idx == kNoChain || chains_[idx].empty()) return nullptr;
    return &chains_[idx].back().value;
  }

  /// Snapshot read: the value as of version <= max_version (the γ-capture
  /// read path). NotFound if the key did not exist at that version.
  StatusOr<Value> GetAt(Key key, SeqNo max_version) const;

  /// Highest version ever written to this store.
  SeqNo latest_version() const { return latest_version_; }

  size_t key_count() const { return chains_.size(); }

  /// Number of versions retained for `key` (0 if absent).
  size_t VersionCountOf(Key key) const;

  /// Drops versions strictly below `floor`, keeping at least the newest
  /// one per key (checkpoint garbage collection).
  void TrimBelow(SeqNo floor);

  /// Order-independent fingerprint over every key's latest (version,
  /// value): the state-identity surface the chaos auditor compares
  /// across replicas of a chain. Two stores built by executing the same
  /// blocks in the same per-chain order always fingerprint equal,
  /// regardless of key insertion order.
  uint64_t Fingerprint() const;

 private:
  struct VersionedValue {
    SeqNo version;
    Value value;
  };
  // Per-key version chains, dense and append-only; keys live only in
  // the linear-probed open-addressing index (one authoritative copy).
  // Store reads/writes run on every executed transaction, and the
  // node-per-entry layout of std::unordered_map made each access a
  // guaranteed cache miss.

  static constexpr uint32_t kNoChain = UINT32_MAX;
  // Small initial table: deployments build one store per (collection,
  // shard) per node and most stay tiny, so construction cost matters as
  // much as steady-state probes. Growth doubles under load factor 1/2.
  static constexpr size_t kInitialBuckets = 1 << 8;  // power of two

  static size_t HashKey(Key k) {
    return static_cast<size_t>(Mix64(k + 0x9e3779b97f4a7c15ULL));
  }

  /// Index of `key`'s chain, or kNoChain.
  uint32_t FindChain(Key key) const;
  /// Index of `key`'s chain, creating an empty one on first write.
  uint32_t FindOrCreateChain(Key key);
  void GrowIndex();

  std::vector<std::vector<VersionedValue>> chains_;  // dense chain storage
  std::vector<std::pair<Key, uint32_t>> index_;      // open-addressed buckets
  SeqNo latest_version_ = 0;
};

/// A buffered set of writes produced by executing one transaction, applied
/// atomically at commit version.
class WriteBatch {
 public:
  // Transactions write a handful of keys; one reservation avoids the
  // grow-from-empty reallocations that showed up on the execution path.
  WriteBatch() { writes_.reserve(8); }

  void Put(MvStore::Key key, MvStore::Value value) {
    writes_.push_back({key, value});
  }
  size_t size() const { return writes_.size(); }
  bool empty() const { return writes_.empty(); }

  /// Applies every write at `version`.
  Status ApplyTo(MvStore* store, SeqNo version) const;

  const std::vector<std::pair<MvStore::Key, MvStore::Value>>& writes() const {
    return writes_;
  }

 private:
  std::vector<std::pair<MvStore::Key, MvStore::Value>> writes_;
};

}  // namespace qanaat

#endif  // QANAAT_STORE_MVSTORE_H_
