// Canonical wire codecs for the internal-consensus messages and the
// values they carry. The simulation exchanges messages as shared structs,
// but every field that influences a digest or a signature is defined by
// these encodings, and the serde fuzz suite drives them with garbage —
// so a malformed byte stream can never crash a node.

#include "consensus/messages.h"

#include <algorithm>

#include "consensus/value.h"

namespace qanaat {

namespace {

void EncodeClients(Encoder* enc,
                   const std::vector<std::pair<NodeId, uint64_t>>& clients) {
  enc->PutU32(static_cast<uint32_t>(clients.size()));
  for (const auto& [c, ts] : clients) {
    enc->PutU32(c);
    enc->PutU64(ts);
  }
}

bool DecodeClients(Decoder* dec,
                   std::vector<std::pair<NodeId, uint64_t>>* clients) {
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > dec->remaining()) return false;  // 12 bytes per entry
  clients->resize(n);
  for (auto& [c, ts] : *clients) {
    if (!dec->GetU32(&c) || !dec->GetU64(&ts)) return false;
  }
  return true;
}

bool DecodeBlockPtr(Decoder* dec, BlockPtr* out) {
  bool present;
  if (!dec->GetBool(&present)) return false;
  if (!present) {
    out->reset();
    return true;
  }
  auto b = std::make_shared<Block>();
  if (!Block::DecodeFrom(dec, b.get())) return false;
  *out = std::move(b);
  return true;
}

void EncodeBlockPtr(Encoder* enc, const BlockPtr& b) {
  enc->PutBool(b != nullptr);
  if (b != nullptr) b->EncodeTo(enc);
}

}  // namespace

// ------------------------------------------------------- ConsensusValue

void ConsensusValue::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(kind));
  EncodeDigestTo(enc, block_digest);
  enc->PutU8(batch_close);
  EncodeBlockPtr(enc, block);
  enc->PutU16(static_cast<uint16_t>(assignments.size()));
  for (const auto& a : assignments) a.EncodeTo(enc);
}

bool ConsensusValue::DecodeFrom(Decoder* dec, ConsensusValue* out) {
  uint8_t k;
  if (!dec->GetU8(&k)) return false;
  if (k > static_cast<uint8_t>(Kind::kXAbort)) return false;
  out->kind = static_cast<Kind>(k);
  if (!DecodeDigestFrom(dec, &out->block_digest)) return false;
  if (!dec->GetU8(&out->batch_close)) return false;
  if (!DecodeBlockPtr(dec, &out->block)) return false;
  // The carried block must be the one the digest commits to.
  if (out->block != nullptr && out->block->Digest() != out->block_digest) {
    return false;
  }
  uint16_t na;
  if (!dec->GetU16(&na)) return false;
  if (na > dec->remaining()) return false;
  out->assignments.resize(na);
  for (auto& a : out->assignments) {
    if (!ShardAssignment::DecodeFrom(dec, &a)) return false;
  }
  return true;
}

// ------------------------------------------------------ client messages

void RequestMsg::EncodeTo(Encoder* enc) const {
  tx.EncodeTo(enc);
  enc->PutBool(is_retransmission);
}

bool RequestMsg::DecodeFrom(Decoder* dec, RequestMsg* out) {
  return Transaction::DecodeFrom(dec, &out->tx) &&
         dec->GetBool(&out->is_retransmission);
}

void ReplyMsg::EncodeTo(Encoder* enc) const {
  EncodeDigestTo(enc, block_digest);
  EncodeDigestTo(enc, result_digest);
  EncodeClients(enc, clients);
  sig.EncodeTo(enc);
}

bool ReplyMsg::DecodeFrom(Decoder* dec, ReplyMsg* out) {
  return DecodeDigestFrom(dec, &out->block_digest) &&
         DecodeDigestFrom(dec, &out->result_digest) &&
         DecodeClients(dec, &out->clients) &&
         Signature::DecodeFrom(dec, &out->sig);
}

void ReplyCertMsg::EncodeTo(Encoder* enc) const {
  EncodeDigestTo(enc, block_digest);
  EncodeDigestTo(enc, result_digest);
  EncodeClients(enc, clients);
  cert.EncodeTo(enc);
}

bool ReplyCertMsg::DecodeFrom(Decoder* dec, ReplyCertMsg* out) {
  return DecodeDigestFrom(dec, &out->block_digest) &&
         DecodeDigestFrom(dec, &out->result_digest) &&
         DecodeClients(dec, &out->clients) &&
         ReplyCertificate::DecodeFrom(dec, &out->cert);
}

// -------------------------------------------------------- PBFT messages

void PrePrepareMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(slot);
  value.EncodeTo(enc);
  EncodeDigestTo(enc, value_digest);
  sig.EncodeTo(enc);
}

bool PrePrepareMsg::DecodeFrom(Decoder* dec, PrePrepareMsg* out) {
  return dec->GetU64(&out->view) && dec->GetU64(&out->slot) &&
         ConsensusValue::DecodeFrom(dec, &out->value) &&
         DecodeDigestFrom(dec, &out->value_digest) &&
         Signature::DecodeFrom(dec, &out->sig);
}

void PrepareMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(slot);
  EncodeDigestTo(enc, value_digest);
  sig.EncodeTo(enc);
}

bool PrepareMsg::DecodeFrom(Decoder* dec, PrepareMsg* out) {
  return dec->GetU64(&out->view) && dec->GetU64(&out->slot) &&
         DecodeDigestFrom(dec, &out->value_digest) &&
         Signature::DecodeFrom(dec, &out->sig);
}

void CommitMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(view);
  enc->PutU64(slot);
  EncodeDigestTo(enc, value_digest);
  sig.EncodeTo(enc);
}

bool CommitMsg::DecodeFrom(Decoder* dec, CommitMsg* out) {
  return dec->GetU64(&out->view) && dec->GetU64(&out->slot) &&
         DecodeDigestFrom(dec, &out->value_digest) &&
         Signature::DecodeFrom(dec, &out->sig);
}

void PreparedProof::EncodeTo(Encoder* enc) const {
  enc->PutU64(slot);
  enc->PutU64(view);
  value.EncodeTo(enc);
  EncodeDigestTo(enc, value_digest);
}

bool PreparedProof::DecodeFrom(Decoder* dec, PreparedProof* out) {
  return dec->GetU64(&out->slot) && dec->GetU64(&out->view) &&
         ConsensusValue::DecodeFrom(dec, &out->value) &&
         DecodeDigestFrom(dec, &out->value_digest);
}

namespace {
bool DecodeProofList(Decoder* dec, std::vector<PreparedProof>* out) {
  uint16_t n;
  if (!dec->GetU16(&n)) return false;
  if (n > dec->remaining()) return false;
  out->resize(n);
  for (auto& p : *out) {
    if (!PreparedProof::DecodeFrom(dec, &p)) return false;
  }
  return true;
}
}  // namespace

void ViewChangeMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(new_view);
  enc->PutU64(last_delivered);
  enc->PutU16(static_cast<uint16_t>(prepared.size()));
  for (const auto& p : prepared) p.EncodeTo(enc);
  sig.EncodeTo(enc);
}

bool ViewChangeMsg::DecodeFrom(Decoder* dec, ViewChangeMsg* out) {
  return dec->GetU64(&out->new_view) && dec->GetU64(&out->last_delivered) &&
         DecodeProofList(dec, &out->prepared) &&
         Signature::DecodeFrom(dec, &out->sig);
}

void NewViewMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(new_view);
  enc->PutU16(static_cast<uint16_t>(reproposals.size()));
  for (const auto& p : reproposals) p.EncodeTo(enc);
  sig.EncodeTo(enc);
}

bool NewViewMsg::DecodeFrom(Decoder* dec, NewViewMsg* out) {
  return dec->GetU64(&out->new_view) &&
         DecodeProofList(dec, &out->reproposals) &&
         Signature::DecodeFrom(dec, &out->sig);
}

// ------------------------------------------------------- Paxos messages

void PaxosAcceptMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU64(slot);
  value.EncodeTo(enc);
  EncodeDigestTo(enc, value_digest);
}

bool PaxosAcceptMsg::DecodeFrom(Decoder* dec, PaxosAcceptMsg* out) {
  return dec->GetU64(&out->ballot) && dec->GetU64(&out->slot) &&
         ConsensusValue::DecodeFrom(dec, &out->value) &&
         DecodeDigestFrom(dec, &out->value_digest);
}

void PaxosAcceptedMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU64(slot);
  EncodeDigestTo(enc, value_digest);
}

bool PaxosAcceptedMsg::DecodeFrom(Decoder* dec, PaxosAcceptedMsg* out) {
  return dec->GetU64(&out->ballot) && dec->GetU64(&out->slot) &&
         DecodeDigestFrom(dec, &out->value_digest);
}

void PaxosLearnMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU64(slot);
  EncodeDigestTo(enc, value_digest);
}

bool PaxosLearnMsg::DecodeFrom(Decoder* dec, PaxosLearnMsg* out) {
  return dec->GetU64(&out->ballot) && dec->GetU64(&out->slot) &&
         DecodeDigestFrom(dec, &out->value_digest);
}

void PaxosPrepareMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU64(last_delivered);
}

bool PaxosPrepareMsg::DecodeFrom(Decoder* dec, PaxosPrepareMsg* out) {
  return dec->GetU64(&out->ballot) && dec->GetU64(&out->last_delivered);
}

void PaxosAcceptedSlot::EncodeTo(Encoder* enc) const {
  enc->PutU64(slot);
  enc->PutU64(ballot);
  value.EncodeTo(enc);
  EncodeDigestTo(enc, digest);
}

bool PaxosAcceptedSlot::DecodeFrom(Decoder* dec, PaxosAcceptedSlot* out) {
  return dec->GetU64(&out->slot) && dec->GetU64(&out->ballot) &&
         ConsensusValue::DecodeFrom(dec, &out->value) &&
         DecodeDigestFrom(dec, &out->digest);
}

void PaxosPromiseMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(ballot);
  enc->PutU32(static_cast<uint32_t>(accepted.size()));
  for (const auto& a : accepted) a.EncodeTo(enc);
  stable.EncodeTo(enc);
}

bool PaxosPromiseMsg::DecodeFrom(Decoder* dec, PaxosPromiseMsg* out) {
  if (!dec->GetU64(&out->ballot)) return false;
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > dec->remaining()) return false;
  out->accepted.resize(n);
  for (auto& a : out->accepted) {
    if (!PaxosAcceptedSlot::DecodeFrom(dec, &a)) return false;
  }
  return CheckpointCertificate::DecodeFrom(dec, &out->stable);
}

// ------------------------------------- checkpoints + state transfer

bool CheckpointCertificate::Valid(const KeyStore& ks, size_t quorum) const {
  if (empty() || sigs.size() < quorum) return false;
  Sha256Digest covered = CheckpointSignable(slot, digest);
  std::vector<NodeId> signers;
  for (const auto& s : sigs) {
    if (!ks.Verify(s, covered)) return false;
    signers.push_back(s.signer);
  }
  std::sort(signers.begin(), signers.end());
  signers.erase(std::unique(signers.begin(), signers.end()), signers.end());
  return signers.size() >= quorum;
}

void CheckpointCertificate::EncodeTo(Encoder* enc) const {
  enc->PutU64(slot);
  EncodeDigestTo(enc, digest);
  enc->PutU16(static_cast<uint16_t>(sigs.size()));
  for (const auto& s : sigs) s.EncodeTo(enc);
}

bool CheckpointCertificate::DecodeFrom(Decoder* dec,
                                       CheckpointCertificate* out) {
  if (!dec->GetU64(&out->slot) || !DecodeDigestFrom(dec, &out->digest)) {
    return false;
  }
  uint16_t n;
  if (!dec->GetU16(&n)) return false;
  if (n > dec->remaining()) return false;
  out->sigs.resize(n);
  for (auto& s : out->sigs) {
    if (!Signature::DecodeFrom(dec, &s)) return false;
  }
  return true;
}

void CheckpointMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(slot);
  EncodeDigestTo(enc, digest);
  sig.EncodeTo(enc);
  cert.EncodeTo(enc);
}

bool CheckpointMsg::DecodeFrom(Decoder* dec, CheckpointMsg* out) {
  return dec->GetU64(&out->slot) && DecodeDigestFrom(dec, &out->digest) &&
         Signature::DecodeFrom(dec, &out->sig) &&
         CheckpointCertificate::DecodeFrom(dec, &out->cert);
}

void StateRequestMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(heads.size()));
  for (const auto& h : heads) {
    h.collection.EncodeTo(enc);
    enc->PutU16(h.shard);
    enc->PutU64(h.head);
  }
  enc->PutU64(frontier);
  enc->PutU32(requester);
}

bool StateRequestMsg::DecodeFrom(Decoder* dec, StateRequestMsg* out) {
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > dec->remaining()) return false;
  out->heads.resize(n);
  for (auto& h : out->heads) {
    if (!CollectionId::DecodeFrom(dec, &h.collection) ||
        !dec->GetU16(&h.shard) || !dec->GetU64(&h.head)) {
      return false;
    }
  }
  return dec->GetU64(&out->frontier) && dec->GetU32(&out->requester);
}

void StateReplyMsg::EncodeTo(Encoder* enc) const {
  ckpt.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& e : entries) {
    EncodeBlockPtr(enc, e.block);
    e.cert.EncodeTo(enc);
    e.alpha.EncodeTo(enc);
    enc->PutU16(static_cast<uint16_t>(e.gamma.size()));
    for (const auto& g : e.gamma) g.EncodeTo(enc);
  }
  enc->PutU32(requester);
}

bool StateReplyMsg::DecodeFrom(Decoder* dec, StateReplyMsg* out) {
  if (!CheckpointCertificate::DecodeFrom(dec, &out->ckpt)) return false;
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > dec->remaining()) return false;
  out->entries.resize(n);
  for (auto& e : out->entries) {
    if (!DecodeBlockPtr(dec, &e.block)) return false;
    if (e.block == nullptr) return false;  // entries always carry a block
    if (!CommitCertificate::DecodeFrom(dec, &e.cert)) return false;
    if (!LocalPart::DecodeFrom(dec, &e.alpha)) return false;
    uint16_t ng;
    if (!dec->GetU16(&ng)) return false;
    if (ng > dec->remaining()) return false;
    e.gamma.resize(ng);
    for (auto& g : e.gamma) {
      if (!GammaEntry::DecodeFrom(dec, &g)) return false;
    }
  }
  return dec->GetU32(&out->requester);
}

void FillRequestMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(from_slot);
  enc->PutU64(to_slot);
  enc->PutU64(want_view);
}

bool FillRequestMsg::DecodeFrom(Decoder* dec, FillRequestMsg* out) {
  return dec->GetU64(&out->from_slot) && dec->GetU64(&out->to_slot) &&
         dec->GetU64(&out->want_view);
}

void FillReplyMsg::EncodeTo(Encoder* enc) const {
  enc->PutU64(slot);
  enc->PutU64(view);
  value.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(commit_proof.size()));
  for (const auto& s : commit_proof) s.EncodeTo(enc);
}

bool FillReplyMsg::DecodeFrom(Decoder* dec, FillReplyMsg* out) {
  if (!dec->GetU64(&out->slot) || !dec->GetU64(&out->view)) return false;
  if (!ConsensusValue::DecodeFrom(dec, &out->value)) return false;
  uint32_t n;
  if (!dec->GetU32(&n)) return false;
  if (n > dec->remaining()) return false;
  out->commit_proof.resize(n);
  for (auto& s : out->commit_proof) {
    if (!Signature::DecodeFrom(dec, &s)) return false;
  }
  return true;
}

// --------------------------------------------- execution-path messages

void ExecOrderMsg::EncodeTo(Encoder* enc) const {
  EncodeBlockPtr(enc, block);
  cert.EncodeTo(enc);
  alpha_here.EncodeTo(enc);
  enc->PutU16(static_cast<uint16_t>(gamma_here.size()));
  for (const auto& g : gamma_here) g.EncodeTo(enc);
}

bool ExecOrderMsg::DecodeFrom(Decoder* dec, ExecOrderMsg* out) {
  if (!DecodeBlockPtr(dec, &out->block)) return false;
  if (!CommitCertificate::DecodeFrom(dec, &out->cert)) return false;
  if (!LocalPart::DecodeFrom(dec, &out->alpha_here)) return false;
  uint16_t ng;
  if (!dec->GetU16(&ng)) return false;
  if (ng > dec->remaining()) return false;
  out->gamma_here.resize(ng);
  for (auto& g : out->gamma_here) {
    if (!GammaEntry::DecodeFrom(dec, &g)) return false;
  }
  return true;
}

void ExecReplyMsg::EncodeTo(Encoder* enc) const {
  EncodeDigestTo(enc, block_digest);
  EncodeDigestTo(enc, result_digest);
  EncodeClients(enc, clients);
  sig.EncodeTo(enc);
}

bool ExecReplyMsg::DecodeFrom(Decoder* dec, ExecReplyMsg* out) {
  return DecodeDigestFrom(dec, &out->block_digest) &&
         DecodeDigestFrom(dec, &out->result_digest) &&
         DecodeClients(dec, &out->clients) &&
         Signature::DecodeFrom(dec, &out->sig);
}

}  // namespace qanaat
