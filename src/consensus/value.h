#ifndef QANAAT_CONSENSUS_VALUE_H_
#define QANAAT_CONSENSUS_VALUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "collections/tx_id.h"
#include "crypto/sha256.h"
#include "ledger/block.h"

namespace qanaat {

/// What a cluster's internal consensus agrees on. Either a transaction
/// block (the normal case), or a cross-cluster protocol step — the
/// coordinator-based protocols of §4.3 run internal consensus twice: once
/// on the block order (kXOrder, which for involved clusters also fixes
/// the locally assigned ⟨α, γ⟩), then again on the commit/abort decision
/// after collecting prepared messages (kXCommit / kXAbort, which fixes
/// the full concatenated ID).
struct ConsensusValue {
  enum class Kind : uint8_t {
    kNoop = 0,
    kBlock,        // order this block on our shard and commit it
    kXOrder,       // order a cross-cluster block (prepare-phase consensus)
    kXCommit,      // commit decision for a cross-cluster block
    kXAbort,       // abort decision for a cross-cluster block
  };

  Kind kind = Kind::kNoop;
  BlockPtr block;              // the block the value refers to
  Sha256Digest block_digest;   // digest of `block` (precomputed)
  /// Why the batcher cut the batch this block carries (a BatchClose
  /// value); observability only — not folded into the digest.
  uint8_t batch_close = 0;
  /// kXOrder at an involved cluster: the single assignment this cluster
  /// made. kXCommit: every assignment collected in the prepared phase.
  std::vector<ShardAssignment> assignments;

  /// Digest of the value itself (what consensus messages sign):
  /// H(kind ‖ block digest). Assignments are not folded in so the
  /// resulting commit certificate stays verifiable from the block digest
  /// alone (filters, remote clusters); assignments are bound by the
  /// individually signed prepared/accept messages instead.
  Sha256Digest Digest() const {
    return ValueDigestFor(static_cast<uint8_t>(kind), block_digest);
  }

  uint32_t WireSize() const {
    uint32_t base =
        40 + static_cast<uint32_t>(assignments.size()) * 48;
    return base + (kind == Kind::kBlock && block ? block->WireSize() : 0);
  }

  static ConsensusValue ForBlock(BlockPtr b) {
    ConsensusValue v;
    v.kind = Kind::kBlock;
    v.block_digest = b->Digest();
    v.block = std::move(b);
    return v;
  }
  static ConsensusValue Decision(Kind k, BlockPtr b,
                                 const Sha256Digest& digest) {
    ConsensusValue v;
    v.kind = k;
    v.block = std::move(b);
    v.block_digest = digest;
    return v;
  }

  /// Canonical wire form (consensus/messages.cc). The block travels by
  /// value; DecodeFrom re-seals it and rejects a body whose digest does
  /// not match the carried block_digest.
  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ConsensusValue* out);
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_VALUE_H_
