#ifndef QANAAT_CONSENSUS_PBFT_H_
#define QANAAT_CONSENSUS_PBFT_H_

#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "consensus/engine.h"
#include "consensus/messages.h"

namespace qanaat {

/// Practical Byzantine Fault Tolerance (Castro & Liskov, OSDI'99) over a
/// cluster of n = 3f+1 ordering nodes, used as Qanaat's internal consensus
/// for Byzantine clusters (paper §4.1).
///
/// Normal case: PRE-PREPARE (primary) → PREPARE (all) → COMMIT (all);
/// a slot is prepared with 2f matching PREPAREs + the PRE-PREPARE, and
/// committed-local with 2f+1 matching COMMITs. Slots deliver in order.
///
/// View change: a replica that suspects the primary (slot timer expires
/// before commit) broadcasts VIEW-CHANGE carrying its prepared proofs;
/// the new primary collects 2f+1, broadcasts NEW-VIEW re-proposing every
/// prepared slot, and timeouts double on consecutive failures (§4.3.4).
///
/// Pipelining: the primary runs up to `ctx.pipeline_depth` slots
/// concurrently (each in its own PRE-PREPARE/PREPARE/COMMIT exchange);
/// proposals beyond the cap queue inside the engine and start as earlier
/// slots commit. Slots still *deliver* strictly in order, so pipelined
/// rounds overlap network latency without reordering execution. Queued
/// proposals are dropped if leadership moves (clients recover them by
/// retransmitting to the new primary).
class PbftEngine : public InternalConsensus {
 public:
  PbftEngine(EngineContext ctx, int f, SimTime base_timeout_us);

  void Propose(const ConsensusValue& v) override;
  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;
  void SuspectPrimary() override;
  void OnHostCrash() override;
  void OnHostRecover() override;

  bool IsPrimary() const override {
    return ctx_.cluster[view_ % ClusterSize()] == ctx_.self;
  }
  NodeId PrimaryNode() const override {
    return ctx_.cluster[view_ % ClusterSize()];
  }
  ViewNo view() const override { return view_; }
  size_t Quorum() const override { return 2 * static_cast<size_t>(f_) + 1; }
  std::vector<Signature> CommitProof(uint64_t slot) const override;

  uint64_t last_delivered() const { return last_delivered_; }
  uint64_t LastDelivered() const override { return last_delivered_; }
  uint64_t view_changes() const { return view_change_count_; }
  size_t InFlight() const override { return my_open_slots_.size(); }
  size_t QueuedProposals() const override { return propose_queue_.size(); }

  /// Byzantine-primary fault injection: when set, PRE-PREPAREs are
  /// equivocated (different digests to different replicas), which correct
  /// replicas must resolve via view change.
  void SetEquivocate(bool e) override { equivocate_ = e; }

  bool HasSlotState(uint64_t slot) const override {
    return slots_.count(slot) > 0;
  }
  size_t retained_slots() const { return slots_.size(); }

 protected:
  void GarbageCollectBelow(uint64_t slot) override;
  void AdvanceFrontierTo(uint64_t slot) override;
  void ResumeAfterInstall() override;

 private:
  struct SlotState {
    ViewNo view = 0;
    ConsensusValue value;
    Sha256Digest digest;
    bool have_preprepare = false;
    VoteSet prepares;  // matching digest only
    VoteSet commits;
    bool prepared = false;
    bool committed = false;
    bool delivered = false;
    bool timer_armed = false;
    // Memoized ConsensusSignable for this slot, keyed (view, digest):
    // one derivation serves the pre-prepare signature, the self-prepare,
    // every vote verification and the commit signature; a view change or
    // an equivocating digest misses and recomputes.
    SignableCache signable;
  };

  static constexpr uint64_t kTagSlotTimeout = kEngineTimerBase + 1;
  /// Escalation: if a view change toward `payload` has not installed by
  /// the time this fires, vote for the next view — without it, lost
  /// VIEW-CHANGE votes wedge the cluster forever.
  static constexpr uint64_t kTagVcTimeout = kEngineTimerBase + 2;
  /// Gap catch-up: the delivery frontier is stuck while later slots have
  /// committed; ask a peer to retransmit the decided slots.
  static constexpr uint64_t kTagGapFill = kEngineTimerBase + 3;
  /// View synchronization: messages for a future view are buffering but
  /// the NEW-VIEW that would install it never arrived (it was sent while
  /// this replica was crashed or partitioned, and nothing retransmits
  /// it). Ask a peer to re-serve the latest NEW-VIEW it processed.
  static constexpr uint64_t kTagViewFetch = kEngineTimerBase + 4;

  void HandlePrePrepare(NodeId from, const PrePrepareMsg& m);
  void HandlePrepare(NodeId from, const PrepareMsg& m);
  void HandleCommit(NodeId from, const CommitMsg& m);
  void HandleViewChange(NodeId from, const ViewChangeMsg& m);
  void HandleNewView(NodeId from, const NewViewMsg& m);
  void HandleFillRequest(NodeId from, const FillRequestMsg& m);
  void HandleFillReply(NodeId from, const FillReplyMsg& m);
  /// Arms the gap timer when a committed slot sits beyond a stuck
  /// delivery frontier (the missing slot's messages were lost — e.g.
  /// while this node was crashed or partitioned). PBFT retransmits
  /// nothing by itself, so without the fill protocol this node would
  /// stall forever and permanently shrink the live quorum.
  void MaybeRequestFill();

  /// Verifies `sig` over ConsensusSignable(view, slot, digest) without
  /// creating slot state: uses the slot's memo when the slot exists,
  /// otherwise derives once into *fresh (the caller seeds the memo after
  /// it creates the slot, so the following sign is a hit).
  bool VerifyVote(const Signature& sig, ViewNo view, uint64_t slot,
                  const Sha256Digest& digest, SlotState* st,
                  Sha256Digest* fresh);

  void MaybePrepared(uint64_t slot, SlotState& st);
  void MaybeCommitted(uint64_t slot, SlotState& st);
  void DeliverReady();
  bool AtPipelineCap() const {
    return ctx_.pipeline_depth > 0 &&
           my_open_slots_.size() >= ctx_.pipeline_depth;
  }
  void StartSlot(const ConsensusValue& v);
  void DrainProposeQueue();
  void ArmSlotTimer(uint64_t slot, SlotState& st);
  void StartViewChange(ViewNo target, bool lone_suspicion);
  void SendPrePrepare(uint64_t slot, SlotState& st);

  Sha256Digest SignableDigest(ViewNo v, uint64_t slot,
                              const Sha256Digest& value_digest) const;

  int f_;
  SimTime base_timeout_;
  ViewNo view_ = 0;
  uint64_t next_slot_ = 1;       // primary's next proposal slot
  uint64_t last_delivered_ = 0;
  uint64_t max_committed_ = 0;   // highest locally committed slot
  bool gap_timer_armed_ = false;
  int fill_rr_ = 0;              // round-robin peer cursor for fills
  /// Consecutive gap-fill rounds without frontier progress. Fills that
  /// target slots a peer already garbage-collected can never be served
  /// per slot; after a few dry rounds the engine asks the host for full
  /// state transfer instead of spinning forever.
  int fill_stalls_ = 0;
  uint64_t view_change_count_ = 0;
  bool in_view_change_ = false;
  bool equivocate_ = false;
  // Slot states live in a flat hash map — per-message handlers touch a
  // slot several times, and runs accumulate tens of thousands of slots.
  // The rare paths that need slots in order (view change) gather and
  // sort the keys so emitted message contents keep the exact order the
  // ordered map produced.
  std::unordered_map<uint64_t, SlotState> slots_;
  // Pipelining: slots we proposed that have not committed yet, and
  // proposals queued behind the pipeline-depth cap.
  SortedVec<uint64_t> my_open_slots_;
  std::deque<ConsensusValue> propose_queue_;
  // View-change bookkeeping: new_view -> sender -> message
  std::map<ViewNo, std::map<NodeId, std::shared_ptr<const ViewChangeMsg>>>
      view_changes_rcvd_;
  std::set<ViewNo> view_change_voted_;
  // New-primary side: targets we already built and broadcast a NEW-VIEW
  // for (one per target — extra votes beyond the quorum must not rebuild
  // it with a different reproposal set).
  std::set<ViewNo> new_view_sent_;
  // Replica side: highest NEW-VIEW actually processed; re-deliveries of
  // the same view (duplicated or rebuilt) are ignored instead of
  // resetting in-flight slots again.
  ViewNo last_new_view_processed_ = 0;
  // Messages for views we have not installed yet (a NEW-VIEW and the new
  // primary's first pre-prepares can arrive reordered); replayed after
  // the view installs.
  std::vector<std::pair<NodeId, MessageRef>> future_msgs_;
  // Latest NEW-VIEW processed (or built, on the primary), retained so
  // any peer can re-serve it to a view-wedged replica: the message is
  // self-certifying (signed by its view's primary).
  std::shared_ptr<const NewViewMsg> last_new_view_msg_;
  bool view_fetch_armed_ = false;
  int view_fetch_rr_ = 0;

  void MaybeFetchView();
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_PBFT_H_
