#ifndef QANAAT_CONSENSUS_MESSAGES_H_
#define QANAAT_CONSENSUS_MESSAGES_H_

#include <vector>

#include "collections/tx_id.h"
#include "consensus/value.h"
#include "crypto/signer.h"
#include "ledger/block.h"
#include "ledger/transaction.h"
#include "sim/message.h"

namespace qanaat {

/// ⟨REQUEST, op, tc, c⟩_σc — client request (paper §4.1).
struct RequestMsg : Message {
  RequestMsg() : Message(MsgType::kRequest) {}
  Transaction tx;
  bool is_retransmission = false;
};

/// Reply from an executing node to the client machine (crash and
/// no-firewall paths). Block-granular: carries the (client, timestamp)
/// pairs of every transaction in the block so the client machine can
/// settle each of its pending requests.
struct ReplyMsg : Message {
  ReplyMsg() : Message(MsgType::kReply) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  std::vector<std::pair<NodeId, uint64_t>> clients;
  Signature sig;
};

/// Reply certificate assembled by the top filter row: g+1 matching signed
/// replies from distinct execution nodes (paper §4.2).
struct ReplyCertMsg : Message {
  ReplyCertMsg() : Message(MsgType::kReplyCert) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  std::vector<std::pair<NodeId, uint64_t>> clients;
  ReplyCertificate cert;
};

// --------------------------------------------------------- PBFT messages

struct PrePrepareMsg : Message {
  PrePrepareMsg() : Message(MsgType::kPrePrepare) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  ConsensusValue value;
  Sha256Digest value_digest;
  Signature sig;  // primary's signature over (view, slot, value_digest)
};

struct PrepareMsg : Message {
  PrepareMsg() : Message(MsgType::kPrepare) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
  Signature sig;
};

struct CommitMsg : Message {
  CommitMsg() : Message(MsgType::kCommit) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
  Signature sig;
};

/// Prepared-slot evidence carried in a view change.
struct PreparedProof {
  uint64_t slot = 0;
  ViewNo view = 0;
  ConsensusValue value;
  Sha256Digest value_digest;
};

struct ViewChangeMsg : Message {
  ViewChangeMsg() : Message(MsgType::kViewChange) {}
  ViewNo new_view = 0;
  uint64_t last_delivered = 0;
  std::vector<PreparedProof> prepared;
  Signature sig;
};

struct NewViewMsg : Message {
  NewViewMsg() : Message(MsgType::kNewView) {}
  ViewNo new_view = 0;
  // Slots the new primary re-proposes (prepared in prior views).
  std::vector<PreparedProof> reproposals;
  Signature sig;
};

// ---------------------------------------------------- Multi-Paxos (CFT)

struct PaxosAcceptMsg : Message {
  PaxosAcceptMsg() : Message(MsgType::kPaxosAccept) {
    sig_verify_ops = 0;  // CFT path authenticates with cheap MACs
  }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  ConsensusValue value;
  Sha256Digest value_digest;
};

struct PaxosAcceptedMsg : Message {
  PaxosAcceptedMsg() : Message(MsgType::kPaxosAccepted) {
    sig_verify_ops = 0;
  }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
};

struct PaxosLearnMsg : Message {
  PaxosLearnMsg() : Message(MsgType::kPaxosLearn) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
};

// --------------------------- ordering -> firewall -> execution (§4.2)

/// Request + commit certificate flowing from ordering nodes through the
/// filters to the execution nodes.
struct ExecOrderMsg : Message {
  ExecOrderMsg() : Message(MsgType::kExecOrder) {}
  BlockPtr block;
  CommitCertificate cert;
  /// The ⟨α, γ⟩ that applies on the receiving cluster's shard.
  LocalPart alpha_here;
  std::vector<GammaEntry> gamma_here;
};

/// Signed execution reply flowing from execution nodes up through the
/// filters (top row aggregates g+1 into a ReplyCertMsg).
struct ExecReplyMsg : Message {
  ExecReplyMsg() : Message(MsgType::kExecReply) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  // (client, client_ts, tx digest) per transaction so filters can route
  // per-client certificates; kept aggregate here: one reply per block.
  std::vector<std::pair<NodeId, uint64_t>> clients;
  Signature sig;
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_MESSAGES_H_
