#ifndef QANAAT_CONSENSUS_MESSAGES_H_
#define QANAAT_CONSENSUS_MESSAGES_H_

#include <vector>

#include "collections/tx_id.h"
#include "consensus/value.h"
#include "crypto/signer.h"
#include "ledger/block.h"
#include "ledger/transaction.h"
#include "sim/message.h"

namespace qanaat {

/// ⟨REQUEST, op, tc, c⟩_σc — client request (paper §4.1).
struct RequestMsg : Message {
  RequestMsg() : Message(MsgType::kRequest) {}
  Transaction tx;
  bool is_retransmission = false;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, RequestMsg* out);
};

/// Reply from an executing node to the client machine (crash and
/// no-firewall paths). Block-granular: carries the (client, timestamp)
/// pairs of every transaction in the block so the client machine can
/// settle each of its pending requests.
struct ReplyMsg : Message {
  ReplyMsg() : Message(MsgType::kReply) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  std::vector<std::pair<NodeId, uint64_t>> clients;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ReplyMsg* out);
};

/// Reply certificate assembled by the top filter row: g+1 matching signed
/// replies from distinct execution nodes (paper §4.2).
struct ReplyCertMsg : Message {
  ReplyCertMsg() : Message(MsgType::kReplyCert) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  std::vector<std::pair<NodeId, uint64_t>> clients;
  ReplyCertificate cert;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ReplyCertMsg* out);
};

// ------------------------------------- checkpoints + state transfer

/// Certificate of a stable checkpoint: `sigs` are matching CHECKPOINT
/// votes from a quorum of distinct cluster members over
/// CheckpointSignable(slot, digest), where `digest` chains the value
/// digests of every slot delivered up to `slot`. Self-certifying: a
/// recovering replica can accept it from a single (possibly faulty) peer.
struct CheckpointCertificate {
  uint64_t slot = 0;
  Sha256Digest digest;
  std::vector<Signature> sigs;

  bool empty() const { return slot == 0; }
  /// Valid iff >= quorum distinct valid signatures over the signable.
  bool Valid(const KeyStore& ks, size_t quorum) const;

  uint32_t WireSize() const {
    return static_cast<uint32_t>(44 + sigs.size() * 20);
  }
  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, CheckpointCertificate* out);
};

/// Engine-level checkpoint vote, broadcast every checkpoint_interval
/// delivered slots. When `cert` is non-empty the message instead carries
/// an already-stable certificate — sent to a replica whose fill request
/// fell below the sender's garbage-collection floor, telling it to state-
/// transfer rather than wait for per-slot fills that can never come.
struct CheckpointMsg : Message {
  CheckpointMsg() : Message(MsgType::kCheckpoint) {}
  uint64_t slot = 0;
  Sha256Digest digest;
  Signature sig;
  CheckpointCertificate cert;  // empty for a plain vote

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, CheckpointMsg* out);
};

// --------------------------------------------------------- PBFT messages

struct PrePrepareMsg : Message {
  PrePrepareMsg() : Message(MsgType::kPrePrepare) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  ConsensusValue value;
  Sha256Digest value_digest;
  Signature sig;  // primary's signature over (view, slot, value_digest)

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PrePrepareMsg* out);
};

struct PrepareMsg : Message {
  PrepareMsg() : Message(MsgType::kPrepare) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PrepareMsg* out);
};

struct CommitMsg : Message {
  CommitMsg() : Message(MsgType::kCommit) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, CommitMsg* out);
};

/// Prepared-slot evidence carried in a view change.
struct PreparedProof {
  uint64_t slot = 0;
  ViewNo view = 0;
  ConsensusValue value;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PreparedProof* out);
};

struct ViewChangeMsg : Message {
  ViewChangeMsg() : Message(MsgType::kViewChange) {}
  ViewNo new_view = 0;
  uint64_t last_delivered = 0;
  std::vector<PreparedProof> prepared;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ViewChangeMsg* out);
};

struct NewViewMsg : Message {
  NewViewMsg() : Message(MsgType::kNewView) {}
  ViewNo new_view = 0;
  // Slots the new primary re-proposes (prepared in prior views).
  std::vector<PreparedProof> reproposals;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, NewViewMsg* out);
};

// ---------------------------------------------------- Multi-Paxos (CFT)

struct PaxosAcceptMsg : Message {
  PaxosAcceptMsg() : Message(MsgType::kPaxosAccept) {
    sig_verify_ops = 0;  // CFT path authenticates with cheap MACs
  }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  ConsensusValue value;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosAcceptMsg* out);
};

struct PaxosAcceptedMsg : Message {
  PaxosAcceptedMsg() : Message(MsgType::kPaxosAccepted) {
    sig_verify_ops = 0;
  }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosAcceptedMsg* out);
};

struct PaxosLearnMsg : Message {
  PaxosLearnMsg() : Message(MsgType::kPaxosLearn) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosLearnMsg* out);
};

/// Phase-1a ballot takeover (classic Paxos prepare): a node claiming
/// leadership must learn what a quorum has already accepted before it may
/// re-drive slots — without this, a takeover can overwrite a chosen value.
struct PaxosPrepareMsg : Message {
  PaxosPrepareMsg() : Message(MsgType::kPaxosPrepare) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  /// The usurper's delivery frontier: promises report accepted values for
  /// every slot above it, so the usurper can fill its own gaps too.
  uint64_t last_delivered = 0;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosPrepareMsg* out);
};

/// One slot of a promise's accepted history.
struct PaxosAcceptedSlot {
  uint64_t slot = 0;
  uint64_t ballot = 0;  // ballot the value was accepted under
  ConsensusValue value;
  Sha256Digest digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosAcceptedSlot* out);
};

/// Phase-1b promise: the follower will never accept a ballot below
/// `ballot` again, and reports every undelivered value it has accepted.
/// `stable` carries the follower's stable checkpoint: a usurper whose
/// frontier lies below it must state-transfer first — the follower has
/// garbage-collected those slots, so re-driving them with no-op fills
/// would wedge the takeover (delivered replicas only re-ack the decided
/// values, which the usurper no longer can learn per slot).
struct PaxosPromiseMsg : Message {
  PaxosPromiseMsg() : Message(MsgType::kPaxosPromise) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  std::vector<PaxosAcceptedSlot> accepted;
  CheckpointCertificate stable;  // empty when none

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosPromiseMsg* out);
};

/// Host-level state transfer request: a recovering (or gap-stuck) replica
/// reports its per-chain committed heads and its consensus delivery
/// frontier; any peer of the cluster answers with what it is missing.
struct StateRequestMsg : Message {
  StateRequestMsg() : Message(MsgType::kStateRequest) {
    sig_verify_ops = 0;
  }
  struct ChainHead {
    CollectionId collection;
    ShardId shard = 0;
    SeqNo head = 0;
  };
  std::vector<ChainHead> heads;
  uint64_t frontier = 0;  // engine LastDelivered()
  /// Originator of a pull-based transfer routed through the privacy
  /// firewall: an execution node cannot be addressed by a serving
  /// ordering node directly, so the reply carries this id back up and
  /// the top filter row delivers it. kInvalidNode for the ordering-side
  /// peer-to-peer path (the server just answers the sender).
  NodeId requester = kInvalidNode;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, StateRequestMsg* out);
};

/// Host-level state transfer reply: the serving peer's stable checkpoint
/// certificate plus every ledger entry above the requester's heads. Each
/// entry is self-certifying — its commit certificate covers the block
/// digest recomputed from the transferred bytes — so a single faulty
/// peer cannot inject a fake block, and the requester re-executes the
/// blocks to rebuild its multi-versioned store deterministically.
struct StateReplyMsg : Message {
  StateReplyMsg() : Message(MsgType::kStateReply) {}
  struct Entry {
    BlockPtr block;
    CommitCertificate cert;
    LocalPart alpha;
    std::vector<GammaEntry> gamma;
  };
  CheckpointCertificate ckpt;  // may be empty (no stable checkpoint yet)
  std::vector<Entry> entries;  // per chain, ascending sequence numbers
  /// Echo of StateRequestMsg::requester: lets each filter row route the
  /// reply up to the pulling execution node instead of flooding every
  /// row (see ExecutionNode::SendPullRequest).
  NodeId requester = kInvalidNode;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, StateReplyMsg* out);
};

/// Gap catch-up request: a replica whose delivery frontier is stuck —
/// later slots committed but an earlier one never arrived (its messages
/// were lost while the node was partitioned, crashed, or unlucky) — asks
/// a peer for the decided slots in [from_slot, to_slot]. With
/// `want_view` non-zero the request additionally asks for view
/// synchronization: the peer re-sends the latest NEW-VIEW it processed
/// (self-certifying — signed by that view's primary), un-wedging a
/// recovered replica stuck in an old view that nothing else would ever
/// tell about the change.
struct FillRequestMsg : Message {
  FillRequestMsg() : Message(MsgType::kFillRequest) { sig_verify_ops = 0; }
  uint64_t from_slot = 0;
  uint64_t to_slot = 0;
  uint64_t want_view = 0;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FillRequestMsg* out);
};

/// Gap catch-up reply, one per slot: the decided value plus the COMMIT
/// quorum signatures proving the decision — self-certifying, so a fill
/// from a single (possibly faulty) peer cannot inject a fake decision.
struct FillReplyMsg : Message {
  FillReplyMsg() : Message(MsgType::kFillReply) {}
  uint64_t slot = 0;
  ViewNo view = 0;
  ConsensusValue value;
  std::vector<Signature> commit_proof;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FillReplyMsg* out);
};

// --------------------------- ordering -> firewall -> execution (§4.2)

/// Request + commit certificate flowing from ordering nodes through the
/// filters to the execution nodes.
struct ExecOrderMsg : Message {
  ExecOrderMsg() : Message(MsgType::kExecOrder) {}
  BlockPtr block;
  CommitCertificate cert;
  /// The ⟨α, γ⟩ that applies on the receiving cluster's shard.
  LocalPart alpha_here;
  std::vector<GammaEntry> gamma_here;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ExecOrderMsg* out);
};

/// Signed execution reply flowing from execution nodes up through the
/// filters (top row aggregates g+1 into a ReplyCertMsg).
struct ExecReplyMsg : Message {
  ExecReplyMsg() : Message(MsgType::kExecReply) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  // (client, client_ts, tx digest) per transaction so filters can route
  // per-client certificates; kept aggregate here: one reply per block.
  std::vector<std::pair<NodeId, uint64_t>> clients;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ExecReplyMsg* out);
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_MESSAGES_H_
