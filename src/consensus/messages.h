#ifndef QANAAT_CONSENSUS_MESSAGES_H_
#define QANAAT_CONSENSUS_MESSAGES_H_

#include <vector>

#include "collections/tx_id.h"
#include "consensus/value.h"
#include "crypto/signer.h"
#include "ledger/block.h"
#include "ledger/transaction.h"
#include "sim/message.h"

namespace qanaat {

/// ⟨REQUEST, op, tc, c⟩_σc — client request (paper §4.1).
struct RequestMsg : Message {
  RequestMsg() : Message(MsgType::kRequest) {}
  Transaction tx;
  bool is_retransmission = false;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, RequestMsg* out);
};

/// Reply from an executing node to the client machine (crash and
/// no-firewall paths). Block-granular: carries the (client, timestamp)
/// pairs of every transaction in the block so the client machine can
/// settle each of its pending requests.
struct ReplyMsg : Message {
  ReplyMsg() : Message(MsgType::kReply) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  std::vector<std::pair<NodeId, uint64_t>> clients;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ReplyMsg* out);
};

/// Reply certificate assembled by the top filter row: g+1 matching signed
/// replies from distinct execution nodes (paper §4.2).
struct ReplyCertMsg : Message {
  ReplyCertMsg() : Message(MsgType::kReplyCert) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  std::vector<std::pair<NodeId, uint64_t>> clients;
  ReplyCertificate cert;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ReplyCertMsg* out);
};

// --------------------------------------------------------- PBFT messages

struct PrePrepareMsg : Message {
  PrePrepareMsg() : Message(MsgType::kPrePrepare) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  ConsensusValue value;
  Sha256Digest value_digest;
  Signature sig;  // primary's signature over (view, slot, value_digest)

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PrePrepareMsg* out);
};

struct PrepareMsg : Message {
  PrepareMsg() : Message(MsgType::kPrepare) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PrepareMsg* out);
};

struct CommitMsg : Message {
  CommitMsg() : Message(MsgType::kCommit) {}
  ViewNo view = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, CommitMsg* out);
};

/// Prepared-slot evidence carried in a view change.
struct PreparedProof {
  uint64_t slot = 0;
  ViewNo view = 0;
  ConsensusValue value;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PreparedProof* out);
};

struct ViewChangeMsg : Message {
  ViewChangeMsg() : Message(MsgType::kViewChange) {}
  ViewNo new_view = 0;
  uint64_t last_delivered = 0;
  std::vector<PreparedProof> prepared;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ViewChangeMsg* out);
};

struct NewViewMsg : Message {
  NewViewMsg() : Message(MsgType::kNewView) {}
  ViewNo new_view = 0;
  // Slots the new primary re-proposes (prepared in prior views).
  std::vector<PreparedProof> reproposals;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, NewViewMsg* out);
};

// ---------------------------------------------------- Multi-Paxos (CFT)

struct PaxosAcceptMsg : Message {
  PaxosAcceptMsg() : Message(MsgType::kPaxosAccept) {
    sig_verify_ops = 0;  // CFT path authenticates with cheap MACs
  }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  ConsensusValue value;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosAcceptMsg* out);
};

struct PaxosAcceptedMsg : Message {
  PaxosAcceptedMsg() : Message(MsgType::kPaxosAccepted) {
    sig_verify_ops = 0;
  }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosAcceptedMsg* out);
};

struct PaxosLearnMsg : Message {
  PaxosLearnMsg() : Message(MsgType::kPaxosLearn) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  uint64_t slot = 0;
  Sha256Digest value_digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosLearnMsg* out);
};

/// Phase-1a ballot takeover (classic Paxos prepare): a node claiming
/// leadership must learn what a quorum has already accepted before it may
/// re-drive slots — without this, a takeover can overwrite a chosen value.
struct PaxosPrepareMsg : Message {
  PaxosPrepareMsg() : Message(MsgType::kPaxosPrepare) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  /// The usurper's delivery frontier: promises report accepted values for
  /// every slot above it, so the usurper can fill its own gaps too.
  uint64_t last_delivered = 0;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosPrepareMsg* out);
};

/// One slot of a promise's accepted history.
struct PaxosAcceptedSlot {
  uint64_t slot = 0;
  uint64_t ballot = 0;  // ballot the value was accepted under
  ConsensusValue value;
  Sha256Digest digest;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosAcceptedSlot* out);
};

/// Phase-1b promise: the follower will never accept a ballot below
/// `ballot` again, and reports every undelivered value it has accepted.
struct PaxosPromiseMsg : Message {
  PaxosPromiseMsg() : Message(MsgType::kPaxosPromise) { sig_verify_ops = 0; }
  uint64_t ballot = 0;
  std::vector<PaxosAcceptedSlot> accepted;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, PaxosPromiseMsg* out);
};

/// Gap catch-up request: a replica whose delivery frontier is stuck —
/// later slots committed but an earlier one never arrived (its messages
/// were lost while the node was partitioned, crashed, or unlucky) — asks
/// a peer for the decided slots in [from_slot, to_slot].
struct FillRequestMsg : Message {
  FillRequestMsg() : Message(MsgType::kFillRequest) { sig_verify_ops = 0; }
  uint64_t from_slot = 0;
  uint64_t to_slot = 0;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FillRequestMsg* out);
};

/// Gap catch-up reply, one per slot: the decided value plus the COMMIT
/// quorum signatures proving the decision — self-certifying, so a fill
/// from a single (possibly faulty) peer cannot inject a fake decision.
struct FillReplyMsg : Message {
  FillReplyMsg() : Message(MsgType::kFillReply) {}
  uint64_t slot = 0;
  ViewNo view = 0;
  ConsensusValue value;
  std::vector<Signature> commit_proof;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FillReplyMsg* out);
};

// --------------------------- ordering -> firewall -> execution (§4.2)

/// Request + commit certificate flowing from ordering nodes through the
/// filters to the execution nodes.
struct ExecOrderMsg : Message {
  ExecOrderMsg() : Message(MsgType::kExecOrder) {}
  BlockPtr block;
  CommitCertificate cert;
  /// The ⟨α, γ⟩ that applies on the receiving cluster's shard.
  LocalPart alpha_here;
  std::vector<GammaEntry> gamma_here;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ExecOrderMsg* out);
};

/// Signed execution reply flowing from execution nodes up through the
/// filters (top row aggregates g+1 into a ReplyCertMsg).
struct ExecReplyMsg : Message {
  ExecReplyMsg() : Message(MsgType::kExecReply) {}
  Sha256Digest block_digest;
  Sha256Digest result_digest;
  // (client, client_ts, tx digest) per transaction so filters can route
  // per-client certificates; kept aggregate here: one reply per block.
  std::vector<std::pair<NodeId, uint64_t>> clients;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, ExecReplyMsg* out);
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_MESSAGES_H_
