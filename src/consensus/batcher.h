#ifndef QANAAT_CONSENSUS_BATCHER_H_
#define QANAAT_CONSENSUS_BATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace qanaat {

/// Why a batch was closed.
enum class BatchClose : uint8_t {
  kSize = 0,     // reached max_batch pending items
  kTimeout = 1,  // flush window elapsed since the first pending item
  kFlush = 2,    // host forced a flush (shutdown, leadership change)
};

const char* BatchCloseName(BatchClose c);

struct BatcherConfig {
  /// Close a batch as soon as this many items are pending on one flow.
  int max_batch = 100;
  /// Otherwise close it this long after the flow's first pending item.
  SimTime flush_timeout_us = 2000;
};

/// Size- and timeout-triggered request batcher, the amortization layer in
/// front of consensus: a full consensus round costs the same for 1 or 256
/// requests, so the primary accumulates requests per flow (items that can
/// legally share one ordered batch) and closes a batch at `max_batch`
/// items or `flush_timeout_us` after the first one, whichever comes first
/// — the block-cutting rule of production ordering services.
///
/// The batcher is transport- and time-agnostic: the host supplies an
/// `arm_timer` primitive (schedule a callback after a delay, identified
/// by an opaque token routed back into OnTimer) and a `flush` sink that
/// receives each closed batch. Stale timers are invalidated internally —
/// a flow whose batch already closed by size ignores its pending timer.
template <typename Item, typename Key>
class Batcher {
 public:
  using FlushFn =
      std::function<void(const Key&, std::vector<Item>, BatchClose)>;
  using ArmTimerFn = std::function<void(SimTime delay, uint64_t token)>;

  Batcher(BatcherConfig cfg, ArmTimerFn arm_timer, FlushFn flush)
      : cfg_(cfg),
        arm_timer_(std::move(arm_timer)),
        flush_(std::move(flush)) {}

  /// Adds one item to `key`'s pending batch. `timeout_override` (0 = use
  /// the configured window) supports per-flow windows: cross-cluster
  /// flows amortize a much costlier protocol, so they batch longer.
  void Add(const Key& key, Item item, SimTime timeout_override = 0) {
    Flow& flow = flows_[key];
    flow.pending.push_back(std::move(item));
    ++items_in_;
    if (flow.pending.size() >= static_cast<size_t>(cfg_.max_batch)) {
      // Closing by size right away: never arm a timer that would only
      // fire stale (matters at batch size 1, where it would double the
      // timer load of the hot path).
      Close(key, flow, BatchClose::kSize);
      return;
    }
    if (flow.pending.size() == 1 && !flow.timer_armed) {
      flow.timer_armed = true;
      flow.token = next_token_++;
      token_to_key_[flow.token] = key;
      SimTime window =
          timeout_override > 0 ? timeout_override : cfg_.flush_timeout_us;
      arm_timer_(window, flow.token);
    }
  }

  /// Routes a timer armed via `arm_timer` back in; closes the flow's
  /// batch if it is still pending. Tokens of batches that already closed
  /// were deregistered at close time, so a stale timer is a no-op.
  void OnTimer(uint64_t token) {
    auto tk = token_to_key_.find(token);
    if (tk == token_to_key_.end()) return;
    Key key = tk->second;
    token_to_key_.erase(tk);
    auto it = flows_.find(key);
    if (it == flows_.end()) return;
    it->second.timer_armed = false;
    if (!it->second.pending.empty()) {
      Close(key, it->second, BatchClose::kTimeout);
    }
  }

  /// Drops all pending items and timer bookkeeping. For crash modeling:
  /// a restarted process has no pending batch, and the armed-timer flags
  /// must not survive into a life whose timers were invalidated — a
  /// recovered node would otherwise never cut a timeout batch again.
  void Reset() {
    flows_.clear();
    token_to_key_.clear();
  }

  /// Force-closes every non-empty batch (leadership change, shutdown).
  void FlushAll() {
    for (auto& [key, flow] : flows_) {
      if (!flow.pending.empty()) Close(key, flow, BatchClose::kFlush);
    }
  }

  size_t PendingOf(const Key& key) const {
    auto it = flows_.find(key);
    return it == flows_.end() ? 0 : it->second.pending.size();
  }

  const BatcherConfig& config() const { return cfg_; }
  uint64_t items_in() const { return items_in_; }
  uint64_t batches_closed() const { return batches_closed_; }
  uint64_t closed_by_size() const { return closed_by_size_; }
  uint64_t closed_by_timeout() const { return closed_by_timeout_; }

 private:
  struct Flow {
    std::vector<Item> pending;
    uint64_t token = 0;  // the armed timer's token, valid iff timer_armed
    bool timer_armed = false;
  };

  void Close(const Key& key, Flow& flow, BatchClose why) {
    std::vector<Item> batch = std::move(flow.pending);
    flow.pending.clear();
    if (flow.timer_armed) {
      // Deregister the armed timer so its eventual firing is a no-op.
      token_to_key_.erase(flow.token);
      flow.timer_armed = false;
    }
    ++batches_closed_;
    if (why == BatchClose::kSize) ++closed_by_size_;
    if (why == BatchClose::kTimeout) ++closed_by_timeout_;
    flush_(key, std::move(batch), why);
  }

  BatcherConfig cfg_;
  ArmTimerFn arm_timer_;
  FlushFn flush_;
  std::map<Key, Flow> flows_;
  std::map<uint64_t, Key> token_to_key_;
  uint64_t next_token_ = 0;
  uint64_t items_in_ = 0;
  uint64_t batches_closed_ = 0;
  uint64_t closed_by_size_ = 0;
  uint64_t closed_by_timeout_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_BATCHER_H_
