#ifndef QANAAT_CONSENSUS_PAXOS_H_
#define QANAAT_CONSENSUS_PAXOS_H_

#include <deque>
#include <unordered_map>

#include "consensus/engine.h"
#include "consensus/messages.h"

namespace qanaat {

/// Multi-Paxos over a cluster of n = 2f+1 crash-only nodes, used as
/// Qanaat's internal consensus for crash clusters (paper §4.1: "a crash
/// fault-tolerant protocol, e.g., (Multi-)Paxos").
///
/// Steady state (leader elected): ACCEPT (leader) → ACCEPTED (followers)
/// → LEARN (leader, after f+1 including itself). Leader failure is
/// handled by ballot takeover with a full phase-1: the usurper broadcasts
/// PREPARE, collects promises from a quorum — each carrying the accepted
/// values above the usurper's delivery frontier — adopts the
/// highest-ballot value per slot, fills never-accepted holes with no-ops,
/// and re-drives. The quorum-intersection argument of single-decree Paxos
/// then guarantees a chosen value is never overwritten; skipping phase-1
/// (as a naive "bump the ballot and re-send" takeover does) lets two
/// replicas learn different values for one slot — a divergence the chaos
/// harness reproduces deterministically. Messages are MAC-authenticated
/// (no signature verification cost).
///
/// Pipelining: the leader keeps up to `ctx.pipeline_depth` slots in
/// flight (accepted but not yet learned); excess proposals queue inside
/// the engine and start as earlier slots learn. Delivery stays in slot
/// order. 0 = unbounded.
class PaxosEngine : public InternalConsensus {
 public:
  PaxosEngine(EngineContext ctx, int f, SimTime base_timeout_us);

  void Propose(const ConsensusValue& v) override;
  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;
  void SuspectPrimary() override;
  void OnHostCrash() override;
  void OnHostRecover() override;

  bool IsPrimary() const override {
    return ctx_.cluster[ballot_ % ClusterSize()] == ctx_.self;
  }
  NodeId PrimaryNode() const override {
    return ctx_.cluster[ballot_ % ClusterSize()];
  }
  ViewNo view() const override { return ballot_; }
  size_t Quorum() const override { return static_cast<size_t>(f_) + 1; }
  /// Crash nodes don't sign; cross-enterprise messages from crash
  /// clusters sign at the sending node instead. Returns an empty proof.
  std::vector<Signature> CommitProof(uint64_t) const override { return {}; }

  uint64_t last_delivered() const { return last_delivered_; }
  uint64_t LastDelivered() const override { return last_delivered_; }
  size_t InFlight() const override { return my_open_slots_.size(); }
  size_t QueuedProposals() const override { return propose_queue_.size(); }
  /// Phase-1 complete for the current ballot (we may drive slots).
  bool leading() const { return leading_; }

  bool HasSlotState(uint64_t slot) const override {
    return slots_.find(slot) != slots_.end();
  }
  size_t retained_slots() const { return slots_.size(); }

 protected:
  /// CFT clusters authenticate with MACs; checkpoint votes are free to
  /// verify like every other Paxos message.
  bool CheapCheckpointAuth() const override { return true; }
  void GarbageCollectBelow(uint64_t slot) override;
  void AdvanceFrontierTo(uint64_t slot) override;
  void ResumeAfterInstall() override;

 private:
  struct SlotState {
    uint64_t ballot = 0;
    ConsensusValue value;
    Sha256Digest digest;
    bool have_value = false;
    SortedVec<NodeId> accepted;
    // A LEARN that overtook its ACCEPT (reordered delivery): remembered
    // here and consumed when the value arrives, instead of being lost.
    bool learn_pending = false;
    Sha256Digest learn_digest;
    bool learned = false;
    bool delivered = false;
    bool timer_armed = false;
  };

  static constexpr uint64_t kTagSlotTimeout = kEngineTimerBase + 11;
  /// Re-broadcast PREPARE while phase-1 has not gathered a quorum.
  static constexpr uint64_t kTagTakeoverRetry = kEngineTimerBase + 12;
  /// Frontier stuck while later slots learned: the missing slot's
  /// messages are gone (nothing retransmits them), so take over — the
  /// phase-1 promises carry every accepted value above our frontier.
  static constexpr uint64_t kTagGapTimeout = kEngineTimerBase + 13;

  void HandleAccept(NodeId from, const PaxosAcceptMsg& m);
  void HandleAccepted(NodeId from, const PaxosAcceptedMsg& m);
  void HandleLearn(NodeId from, const PaxosLearnMsg& m);
  void HandlePrepare(NodeId from, const PaxosPrepareMsg& m);
  void HandlePromise(NodeId from, const PaxosPromiseMsg& m);
  void DeliverReady();
  // Handlers thread the SlotState& they already hold (one hash lookup
  // per message) instead of re-looking the slot up in every helper.
  void ArmSlotTimer(uint64_t slot, SlotState& st);
  void MaybeArmGapTimer();
  bool AtPipelineCap() const {
    return ctx_.pipeline_depth > 0 &&
           my_open_slots_.size() >= ctx_.pipeline_depth;
  }
  void StartSlot(const ConsensusValue& v);
  void MarkLearned(uint64_t slot, SlotState& st);
  void DrainProposeQueue();
  /// Ballot takeover phase-1: claim a ballot we own and solicit promises.
  void TakeOver();
  /// Phase-1 quorum reached: adopt gathered values, fill holes with
  /// no-ops, re-drive everything undelivered.
  void FinishTakeover();
  void MergeGathered(uint64_t slot, uint64_t ballot, const ConsensusValue& v,
                     const Sha256Digest& digest);
  void BroadcastAccept(uint64_t slot, const SlotState& st);
  /// Adopts a higher observed ballot; drops leadership and the propose
  /// queue when that moves leadership away from this node.
  void ObserveBallot(uint64_t b);
  void DropProposeQueue();

  int f_;
  SimTime base_timeout_;
  uint64_t ballot_ = 0;
  /// Highest ballot promised: never accept or promise below it.
  uint64_t promised_ = 0;
  /// Phase-1 complete for ballot_ with us as leader. The initial leader
  /// (index 0, ballot 0) starts leading: there is no history to gather.
  bool leading_ = false;
  uint64_t next_slot_ = 1;
  uint64_t last_delivered_ = 0;
  uint64_t max_learned_ = 0;
  bool gap_timer_armed_ = false;
  /// A promise revealed a stable checkpoint beyond our frontier: the
  /// takeover must wait for host state transfer — finishing phase-1 now
  /// would no-op-fill slots the quorum has garbage-collected, and those
  /// fills can never gather acks from delivered replicas.
  uint64_t awaiting_transfer_ = 0;
  // Slot states live in a flat hash map, mirroring PBFT's treatment:
  // every message touches its slot a few times and long runs accumulate
  // tens of thousands of slots, where the ordered map paid a pointer-
  // chasing tree walk per touch. The rare paths that need slots in order
  // (promise assembly, takeover re-drive) gather and sort, so emitted
  // message contents keep the exact order the ordered map produced.
  std::unordered_map<uint64_t, SlotState> slots_;
  // Phase-1 state for ballot_ (valid while !leading_ and we own ballot_).
  SortedVec<NodeId> promises_;
  std::unordered_map<uint64_t, PaxosAcceptedSlot> gathered_;
  // Pipelining: slots we drove that are not learned yet, and proposals
  // queued behind the pipeline-depth cap.
  SortedVec<uint64_t> my_open_slots_;
  std::deque<ConsensusValue> propose_queue_;
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_PAXOS_H_
