#ifndef QANAAT_CONSENSUS_PAXOS_H_
#define QANAAT_CONSENSUS_PAXOS_H_

#include <deque>
#include <map>
#include <set>

#include "consensus/engine.h"
#include "consensus/messages.h"

namespace qanaat {

/// Multi-Paxos over a cluster of n = 2f+1 crash-only nodes, used as
/// Qanaat's internal consensus for crash clusters (paper §4.1: "a crash
/// fault-tolerant protocol, e.g., (Multi-)Paxos").
///
/// Steady state (leader elected): ACCEPT (leader) → ACCEPTED (followers)
/// → LEARN (leader, after f+1 including itself). Leader failure is
/// handled by ballot takeover: the next node (ballot mod n) assumes
/// leadership after a timeout and re-drives unfinished slots. Messages
/// are MAC-authenticated (no signature verification cost).
///
/// Pipelining: the leader keeps up to `ctx.pipeline_depth` slots in
/// flight (accepted but not yet learned); excess proposals queue inside
/// the engine and start as earlier slots learn. Delivery stays in slot
/// order. 0 = unbounded.
class PaxosEngine : public InternalConsensus {
 public:
  PaxosEngine(EngineContext ctx, int f, SimTime base_timeout_us);

  void Propose(const ConsensusValue& v) override;
  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;

  bool IsPrimary() const override {
    return ctx_.cluster[ballot_ % ClusterSize()] == ctx_.self;
  }
  NodeId PrimaryNode() const override {
    return ctx_.cluster[ballot_ % ClusterSize()];
  }
  ViewNo view() const override { return ballot_; }
  size_t Quorum() const override { return static_cast<size_t>(f_) + 1; }
  /// Crash nodes don't sign; cross-enterprise messages from crash
  /// clusters sign at the sending node instead. Returns an empty proof.
  std::vector<Signature> CommitProof(uint64_t) const override { return {}; }

  uint64_t last_delivered() const { return last_delivered_; }
  size_t InFlight() const override { return my_open_slots_.size(); }
  size_t QueuedProposals() const override { return propose_queue_.size(); }

 private:
  struct SlotState {
    uint64_t ballot = 0;
    ConsensusValue value;
    Sha256Digest digest;
    bool have_value = false;
    std::set<NodeId> accepted;
    bool learned = false;
    bool delivered = false;
    bool timer_armed = false;
  };

  static constexpr uint64_t kTagSlotTimeout = kEngineTimerBase + 11;

  void HandleAccept(NodeId from, const PaxosAcceptMsg& m);
  void HandleAccepted(NodeId from, const PaxosAcceptedMsg& m);
  void HandleLearn(NodeId from, const PaxosLearnMsg& m);
  void DeliverReady();
  void ArmSlotTimer(uint64_t slot);
  bool AtPipelineCap() const {
    return ctx_.pipeline_depth > 0 &&
           my_open_slots_.size() >= ctx_.pipeline_depth;
  }
  void StartSlot(const ConsensusValue& v);
  void MarkLearned(uint64_t slot);
  void DrainProposeQueue();
  /// Adopts a higher observed ballot; drops the propose queue when that
  /// moves leadership away from this node.
  void ObserveBallot(uint64_t b);
  void DropProposeQueue();

  int f_;
  SimTime base_timeout_;
  uint64_t ballot_ = 0;
  uint64_t next_slot_ = 1;
  uint64_t last_delivered_ = 0;
  std::map<uint64_t, SlotState> slots_;
  // Pipelining: slots we drove that are not learned yet, and proposals
  // queued behind the pipeline-depth cap.
  std::set<uint64_t> my_open_slots_;
  std::deque<ConsensusValue> propose_queue_;
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_PAXOS_H_
