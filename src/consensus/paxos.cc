#include "consensus/paxos.h"

#include <algorithm>

namespace qanaat {

PaxosEngine::PaxosEngine(EngineContext ctx, int f, SimTime base_timeout_us)
    : InternalConsensus(std::move(ctx)),
      f_(f),
      base_timeout_(base_timeout_us) {
  slots_.reserve(1 << 12);
  // Ballot 0 belongs to index 0 with an empty history: it leads from the
  // start without a phase-1.
  leading_ = (ctx_.cluster[0] == ctx_.self);
}

void PaxosEngine::Propose(const ConsensusValue& v) {
  if (!IsPrimary()) {
    ctx_.env->metrics.Inc("paxos.propose_on_follower");
    return;
  }
  // Queue while phase-1 is still gathering promises, and past the
  // pipelining cap; queued proposals start as slots learn.
  if (!leading_ || AtPipelineCap()) {
    propose_queue_.push_back(v);
    ctx_.env->metrics.Inc("paxos.proposal_queued");
    return;
  }
  StartSlot(v);
}

void PaxosEngine::BroadcastAccept(uint64_t slot, const SlotState& st) {
  auto acc = std::make_shared<PaxosAcceptMsg>();
  acc->ballot = ballot_;
  acc->slot = slot;
  acc->value = st.value;
  acc->value_digest = st.digest;
  acc->wire_bytes = 64 + st.value.WireSize();
  ctx_.broadcast(acc);
}

void PaxosEngine::StartSlot(const ConsensusValue& v) {
  uint64_t slot = next_slot_++;
  SlotState& st = slots_[slot];
  st.ballot = ballot_;
  st.value = v;
  st.digest = v.Digest();
  st.have_value = true;
  st.accepted.Insert(ctx_.self);
  my_open_slots_.Insert(slot);

  BroadcastAccept(slot, st);
  ArmSlotTimer(slot, st);

  // f = 0 degenerate case: single-node cluster decides immediately.
  if (st.accepted.size() >= Quorum()) {
    MarkLearned(slot, st);
    DeliverReady();
  }
}

void PaxosEngine::MarkLearned(uint64_t slot, SlotState& st) {
  st.learned = true;
  max_learned_ = std::max(max_learned_, slot);
  my_open_slots_.Erase(slot);
  DrainProposeQueue();
}

void PaxosEngine::DrainProposeQueue() {
  while (!propose_queue_.empty() && IsPrimary() && leading_ &&
         !AtPipelineCap()) {
    ConsensusValue v = std::move(propose_queue_.front());
    propose_queue_.pop_front();
    StartSlot(v);
  }
}

void PaxosEngine::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kPaxosAccept:
      HandleAccept(from, *msg->As<PaxosAcceptMsg>());
      break;
    case MsgType::kPaxosAccepted:
      HandleAccepted(from, *msg->As<PaxosAcceptedMsg>());
      break;
    case MsgType::kPaxosLearn:
      HandleLearn(from, *msg->As<PaxosLearnMsg>());
      break;
    case MsgType::kPaxosPrepare:
      HandlePrepare(from, *msg->As<PaxosPrepareMsg>());
      break;
    case MsgType::kPaxosPromise:
      HandlePromise(from, *msg->As<PaxosPromiseMsg>());
      break;
    case MsgType::kCheckpoint:
      HandleCheckpoint(from, *msg->As<CheckpointMsg>());
      break;
    default:
      break;
  }
}

void PaxosEngine::DropProposeQueue() {
  if (propose_queue_.empty()) return;
  ctx_.env->metrics.Inc("paxos.queue_dropped_on_takeover",
                        propose_queue_.size());
  propose_queue_.clear();
}

void PaxosEngine::ObserveBallot(uint64_t b) {
  if (b <= ballot_) return;
  ballot_ = b;
  // Leadership moved past us: queued proposals can only be driven by
  // the new leader (clients retransmit there). Re-proposing them on a
  // later takeover would duplicate already-committed transactions.
  if (!IsPrimary()) {
    leading_ = false;
    DropProposeQueue();
  }
}

void PaxosEngine::HandleAccept(NodeId from, const PaxosAcceptMsg& m) {
  if (m.ballot < promised_ || m.ballot < ballot_) return;  // stale leader
  promised_ = std::max(promised_, m.ballot);
  ObserveBallot(m.ballot);
  if (from != PrimaryNode()) return;
  // One lookup serves the GC'd-slot check and the state access below.
  auto it = slots_.find(m.slot);
  if (m.slot <= last_delivered_ && it == slots_.end()) {
    // Delivered and garbage-collected: the leader is refreshing a slot we
    // already applied. Ack it so its catch-up can quorum; CFT leaders are
    // honest, and post-phase-1 re-drives carry only decided values.
    auto resp = std::make_shared<PaxosAcceptedMsg>();
    resp->ballot = m.ballot;
    resp->slot = m.slot;
    resp->value_digest = m.value_digest;
    ctx_.send(from, resp);
    return;
  }
  if (it == slots_.end()) it = slots_.try_emplace(m.slot).first;
  SlotState& st = it->second;
  if (st.delivered) {
    // Already applied here, but the (new) leader may be re-driving the
    // slot to finish its own catch-up: ack the decided value so it can
    // gather a quorum — silently ignoring it would starve the leader
    // into an endless takeover loop.
    if (st.digest == m.value_digest) {
      auto resp = std::make_shared<PaxosAcceptedMsg>();
      resp->ballot = m.ballot;
      resp->slot = m.slot;
      resp->value_digest = m.value_digest;
      ctx_.send(from, resp);
    }
    return;
  }
  if (st.learned && st.digest != m.value_digest) {
    // A correct post-phase-1 leader can never change a learned value;
    // surfaced as a metric so the chaos auditor's trace points here.
    ctx_.env->metrics.Inc("paxos.conflicting_accept_ignored");
    return;
  }
  st.ballot = m.ballot;
  st.value = m.value;
  st.digest = m.value_digest;
  st.have_value = true;

  auto resp = std::make_shared<PaxosAcceptedMsg>();
  resp->ballot = m.ballot;
  resp->slot = m.slot;
  resp->value_digest = m.value_digest;
  ctx_.send(from, resp);
  // A LEARN for this slot overtook the ACCEPT (reordered delivery):
  // consume it now that the value is known.
  if (st.learn_pending && st.learn_digest == st.digest && !st.learned) {
    ctx_.env->metrics.Inc("paxos.pending_learn_consumed");
    MarkLearned(m.slot, st);
    DeliverReady();
    return;
  }
  ArmSlotTimer(m.slot, st);
}

void PaxosEngine::HandleAccepted(NodeId from, const PaxosAcceptedMsg& m) {
  if (m.ballot != ballot_ || !IsPrimary() || !leading_) return;
  SlotState& st = slots_[m.slot];
  if (!st.have_value || st.digest != m.value_digest) return;
  st.accepted.Insert(from);
  if (st.learned || st.accepted.size() < Quorum()) return;
  auto learn = std::make_shared<PaxosLearnMsg>();
  learn->ballot = m.ballot;
  learn->slot = m.slot;
  learn->value_digest = st.digest;
  ctx_.broadcast(learn);
  MarkLearned(m.slot, st);
  DeliverReady();
}

void PaxosEngine::HandleLearn(NodeId from, const PaxosLearnMsg& m) {
  if (from != ctx_.cluster[m.ballot % ClusterSize()]) return;
  ObserveBallot(m.ballot);
  if (m.slot <= last_delivered_) return;  // delivered (possibly GC'd)
  SlotState& st = slots_[m.slot];
  if (!st.have_value || st.digest != m.value_digest) {
    // Value not seen yet (the LEARN overtook its ACCEPT). Buffer the
    // decision: HandleAccept consumes it when the value arrives. Dropping
    // it here would stall this node's delivery sequence forever.
    ctx_.env->metrics.Inc("paxos.learn_before_value");
    st.learn_pending = true;
    st.learn_digest = m.value_digest;
    return;
  }
  MarkLearned(m.slot, st);
  DeliverReady();
}

void PaxosEngine::DeliverReady() {
  while (true) {
    auto it = slots_.find(last_delivered_ + 1);
    if (it == slots_.end() || !it->second.learned || it->second.delivered ||
        !it->second.have_value) {
      break;
    }
    it->second.delivered = true;
    ++last_delivered_;
    uint64_t slot = it->first;
    Sha256Digest vd = it->second.digest;
    // Copy the value out before delivering: the host callback can
    // re-enter the engine (propose, install a checkpoint), and an
    // insert-triggered rehash of the flat slot map would invalidate a
    // reference into it mid-call.
    ConsensusValue v = it->second.value;
    ctx_.deliver(slot, v);
    NoteDelivered(last_delivered_, vd);
  }
  MaybeArmGapTimer();
}

void PaxosEngine::GarbageCollectBelow(uint64_t slot) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = it->first <= slot ? slots_.erase(it) : std::next(it);
  }
  my_open_slots_.EraseUpTo(slot);
  for (auto it = gathered_.begin(); it != gathered_.end();) {
    it = it->first <= slot ? gathered_.erase(it) : std::next(it);
  }
}

void PaxosEngine::AdvanceFrontierTo(uint64_t slot) {
  last_delivered_ = slot;
  max_learned_ = std::max(max_learned_, slot);
  next_slot_ = std::max(next_slot_, slot + 1);
}

void PaxosEngine::ResumeAfterInstall() {
  DeliverReady();
  // A takeover parked behind the transfer can finish now: the certified
  // frontier is installed, so phase-1 no longer spans GC'd slots.
  if (awaiting_transfer_ <= last_delivered_ && !leading_ && IsPrimary() &&
      promises_.size() >= Quorum()) {
    FinishTakeover();
  }
  DrainProposeQueue();
}

void PaxosEngine::MaybeArmGapTimer() {
  // Stalled iff a learned slot sits beyond the undelivered frontier: the
  // frontier slot's ACCEPT/LEARN were lost while this node was crashed,
  // partitioned, or unlucky — and no slot timer exists for a slot we
  // never heard of. Take over after a timeout: phase-1 promises carry
  // every accepted value above our frontier, closing the gap.
  if (gap_timer_armed_ || max_learned_ <= last_delivered_ + 1) return;
  auto it = slots_.find(last_delivered_ + 1);
  if (it != slots_.end() && it->second.learned) return;  // will deliver
  gap_timer_armed_ = true;
  ctx_.start_timer(base_timeout_, kTagGapTimeout, last_delivered_);
}

void PaxosEngine::ArmSlotTimer(uint64_t slot, SlotState& st) {
  if (st.timer_armed || st.learned) return;
  st.timer_armed = true;
  ctx_.start_timer(base_timeout_, kTagSlotTimeout, slot);
}

void PaxosEngine::SuspectPrimary() {
  if (IsPrimary()) return;
  ctx_.env->metrics.Inc("paxos.suspect_takeover");
  TakeOver();
}

void PaxosEngine::OnHostCrash() {
  // Armed-timer flags must not outlive the timers (the crash epoch kills
  // every pending one), or gap detection stays disabled after recovery.
  gap_timer_armed_ = false;
  for (auto& [slot, st] : slots_) st.timer_armed = false;
}

void PaxosEngine::OnHostRecover() {
  MaybeArmGapTimer();
  if (IsPrimary() && !leading_ && ballot_ > 0) {
    // Mid-takeover crash: the phase-1 retry timer died with the old
    // life; restart the solicitation or the ballot stalls forever.
    ctx_.start_timer(base_timeout_, kTagTakeoverRetry, ballot_);
  }
}

void PaxosEngine::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag == kTagTakeoverRetry) {
    // Phase-1 stalled (promises lost or a quorum unreachable): re-solicit
    // while the ballot is still ours and unfinished.
    if (leading_ || ballot_ != payload || !IsPrimary()) return;
    ctx_.env->metrics.Inc("paxos.takeover_retry");
    auto prep = std::make_shared<PaxosPrepareMsg>();
    prep->ballot = ballot_;
    prep->last_delivered = last_delivered_;
    ctx_.broadcast(prep);
    ctx_.start_timer(base_timeout_, kTagTakeoverRetry, ballot_);
    return;
  }
  if (tag == kTagGapTimeout) {
    gap_timer_armed_ = false;
    if (last_delivered_ != payload) {
      MaybeArmGapTimer();  // progressed; keep watching
      return;
    }
    ctx_.env->metrics.Inc("paxos.gap_takeover");
    TakeOver();
    return;
  }
  if (tag != kTagSlotTimeout) return;
  auto it = slots_.find(payload);
  if (it == slots_.end()) return;
  SlotState& st = it->second;
  st.timer_armed = false;
  if (st.learned) return;
  TakeOver();
}

void PaxosEngine::TakeOver() {
  // Anything still queued was queued under a leadership that has since
  // timed out — clients have retransmitted by now, so re-proposing it
  // here could duplicate transactions an interim leader already
  // committed.
  DropProposeQueue();
  uint64_t nb = ballot_ + 1;
  while (ctx_.cluster[nb % ClusterSize()] != ctx_.self) ++nb;
  ballot_ = nb;
  promised_ = std::max(promised_, nb);
  leading_ = false;
  ctx_.env->metrics.Inc("paxos.leader_takeover");
  if (ctx_.on_view_change) ctx_.on_view_change(ballot_, ctx_.self);

  // Phase-1: gather what a quorum has accepted before driving anything.
  promises_.clear();
  gathered_.clear();
  promises_.Insert(ctx_.self);
  for (const auto& [slot, st] : slots_) {
    if (st.have_value && slot > last_delivered_) {
      MergeGathered(slot, st.ballot, st.value, st.digest);
    }
  }
  auto prep = std::make_shared<PaxosPrepareMsg>();
  prep->ballot = ballot_;
  prep->last_delivered = last_delivered_;
  ctx_.broadcast(prep);
  if (promises_.size() >= Quorum()) {
    FinishTakeover();  // f = 0 degenerate case
  } else {
    ctx_.start_timer(base_timeout_, kTagTakeoverRetry, ballot_);
  }
}

void PaxosEngine::MergeGathered(uint64_t slot, uint64_t ballot,
                                const ConsensusValue& v,
                                const Sha256Digest& digest) {
  auto it = gathered_.find(slot);
  if (it != gathered_.end() && it->second.ballot >= ballot) return;
  PaxosAcceptedSlot a;
  a.slot = slot;
  a.ballot = ballot;
  a.value = v;
  a.digest = digest;
  gathered_[slot] = std::move(a);
}

void PaxosEngine::HandlePrepare(NodeId from, const PaxosPrepareMsg& m) {
  if (m.ballot < promised_) return;  // already promised someone newer
  promised_ = m.ballot;
  ObserveBallot(m.ballot);
  auto pr = std::make_shared<PaxosPromiseMsg>();
  pr->ballot = m.ballot;
  uint32_t bytes = 32;
  // Gather accepted slots in ascending slot order: slots_ is a hash map,
  // but the emitted promise must keep the deterministic order the old
  // ordered map produced (message contents feed the replay trace).
  std::vector<const std::pair<const uint64_t, SlotState>*> accepted_slots;
  for (const auto& entry : slots_) {
    if (!entry.second.have_value || entry.first <= m.last_delivered) {
      continue;
    }
    accepted_slots.push_back(&entry);
  }
  std::sort(accepted_slots.begin(), accepted_slots.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : accepted_slots) {
    const SlotState& st = entry->second;
    PaxosAcceptedSlot a;
    a.slot = entry->first;
    a.ballot = st.ballot;
    a.value = st.value;
    a.digest = st.digest;
    bytes += 48 + st.value.WireSize();
    pr->accepted.push_back(std::move(a));
  }
  // Report our stable checkpoint: a usurper below it cannot learn the
  // GC'd slots per slot and must state-transfer before driving anything.
  pr->stable = stable_checkpoint();
  pr->wire_bytes = bytes + pr->stable.WireSize();
  ctx_.send(from, pr);
}

void PaxosEngine::HandlePromise(NodeId from, const PaxosPromiseMsg& m) {
  if (m.ballot != ballot_ || leading_ || !IsPrimary()) return;
  for (const auto& a : m.accepted) {
    if (a.slot > last_delivered_) {
      MergeGathered(a.slot, a.ballot, a.value, a.digest);
    }
  }
  if (m.stable.slot > last_delivered_ && ctx_.request_state_transfer &&
      m.stable.Valid(ctx_.env->keystore, Quorum())) {
    // The follower certified a frontier beyond ours and has GC'd the
    // slots below it: park the takeover until state transfer installs
    // the checkpoint (ResumeAfterInstall un-parks it). Re-request on
    // EVERY such promise — the takeover-retry loop keeps soliciting
    // them, so a transfer request or reply lost on the wire is retried
    // instead of wedging the parked ballot forever (the host dedups
    // concurrent requests).
    awaiting_transfer_ = std::max(awaiting_transfer_, m.stable.slot);
    ctx_.env->metrics.Inc("paxos.takeover_awaits_transfer");
    ctx_.request_state_transfer(m.stable);
  }
  promises_.Insert(from);
  if (awaiting_transfer_ > last_delivered_) return;
  if (promises_.size() >= Quorum()) FinishTakeover();
}

void PaxosEngine::FinishTakeover() {
  leading_ = true;
  ctx_.env->metrics.Inc("paxos.takeover_complete");
  uint64_t max_slot = last_delivered_;
  for (const auto& [slot, st] : slots_) max_slot = std::max(max_slot, slot);
  for (const auto& [slot, a] : gathered_) max_slot = std::max(max_slot, slot);
  next_slot_ = std::max(next_slot_, max_slot + 1);

  my_open_slots_.clear();
  for (uint64_t slot = last_delivered_ + 1; slot < next_slot_; ++slot) {
    SlotState& st = slots_[slot];
    if (st.delivered) continue;
    auto g = gathered_.find(slot);
    if (g != gathered_.end()) {
      // Quorum intersection: any chosen value appears in some promise —
      // adopt the highest-ballot one; re-driving it is idempotent.
      if (!st.learned) {
        st.value = g->second.value;
        st.digest = g->second.digest;
        st.have_value = true;
      }
    } else if (!st.have_value) {
      // Never accepted anywhere reachable: fill with a no-op so delivery
      // can progress past the hole.
      st.value = ConsensusValue{};
      st.digest = st.value.Digest();
      st.have_value = true;
      ctx_.env->metrics.Inc("paxos.noop_filled");
    }
    st.ballot = ballot_;
    if (st.learned) {
      // Already decided: refresh stragglers (a follower that missed the
      // original ACCEPT/LEARN — e.g. one recovering from a crash — fills
      // its gap from this).
      BroadcastAccept(slot, st);
      auto learn = std::make_shared<PaxosLearnMsg>();
      learn->ballot = ballot_;
      learn->slot = slot;
      learn->value_digest = st.digest;
      ctx_.broadcast(learn);
      continue;
    }
    st.accepted.clear();
    st.accepted.Insert(ctx_.self);
    my_open_slots_.Insert(slot);
    BroadcastAccept(slot, st);
    st.timer_armed = false;
    ArmSlotTimer(slot, st);
  }
  DeliverReady();
  DrainProposeQueue();
}

}  // namespace qanaat
