#include "consensus/paxos.h"

namespace qanaat {

PaxosEngine::PaxosEngine(EngineContext ctx, int f, SimTime base_timeout_us)
    : InternalConsensus(std::move(ctx)),
      f_(f),
      base_timeout_(base_timeout_us) {}

void PaxosEngine::Propose(const ConsensusValue& v) {
  if (!IsPrimary()) {
    ctx_.env->metrics.Inc("paxos.propose_on_follower");
    return;
  }
  // Pipelining: cap concurrently open slots; excess proposals queue and
  // start as earlier slots learn.
  if (AtPipelineCap()) {
    propose_queue_.push_back(v);
    ctx_.env->metrics.Inc("paxos.proposal_queued");
    return;
  }
  StartSlot(v);
}

void PaxosEngine::StartSlot(const ConsensusValue& v) {
  uint64_t slot = next_slot_++;
  SlotState& st = slots_[slot];
  st.ballot = ballot_;
  st.value = v;
  st.digest = v.Digest();
  st.have_value = true;
  st.accepted.insert(ctx_.self);
  my_open_slots_.insert(slot);

  auto acc = std::make_shared<PaxosAcceptMsg>();
  acc->ballot = ballot_;
  acc->slot = slot;
  acc->value = v;
  acc->value_digest = st.digest;
  acc->wire_bytes = 64 + v.WireSize();
  ctx_.broadcast(acc);
  ArmSlotTimer(slot);

  // f = 0 degenerate case: single-node cluster decides immediately.
  if (st.accepted.size() >= Quorum()) {
    MarkLearned(slot);
    DeliverReady();
  }
}

void PaxosEngine::MarkLearned(uint64_t slot) {
  slots_[slot].learned = true;
  my_open_slots_.erase(slot);
  DrainProposeQueue();
}

void PaxosEngine::DrainProposeQueue() {
  while (!propose_queue_.empty() && IsPrimary() && !AtPipelineCap()) {
    ConsensusValue v = std::move(propose_queue_.front());
    propose_queue_.pop_front();
    StartSlot(v);
  }
}

void PaxosEngine::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kPaxosAccept:
      HandleAccept(from, *msg->As<PaxosAcceptMsg>());
      break;
    case MsgType::kPaxosAccepted:
      HandleAccepted(from, *msg->As<PaxosAcceptedMsg>());
      break;
    case MsgType::kPaxosLearn:
      HandleLearn(from, *msg->As<PaxosLearnMsg>());
      break;
    default:
      break;
  }
}

void PaxosEngine::DropProposeQueue() {
  if (propose_queue_.empty()) return;
  ctx_.env->metrics.Inc("paxos.queue_dropped_on_takeover",
                        propose_queue_.size());
  propose_queue_.clear();
}

void PaxosEngine::ObserveBallot(uint64_t b) {
  if (b <= ballot_) return;
  ballot_ = b;
  // Leadership moved past us: queued proposals can only be driven by
  // the new leader (clients retransmit there). Re-proposing them on a
  // later takeover would duplicate already-committed transactions.
  if (!IsPrimary()) DropProposeQueue();
}

void PaxosEngine::HandleAccept(NodeId from, const PaxosAcceptMsg& m) {
  if (m.ballot < ballot_) return;  // stale leader
  ObserveBallot(m.ballot);
  if (from != PrimaryNode()) return;
  SlotState& st = slots_[m.slot];
  st.ballot = m.ballot;
  st.value = m.value;
  st.digest = m.value_digest;
  st.have_value = true;

  auto resp = std::make_shared<PaxosAcceptedMsg>();
  resp->ballot = m.ballot;
  resp->slot = m.slot;
  resp->value_digest = m.value_digest;
  ctx_.send(from, resp);
  ArmSlotTimer(m.slot);
}

void PaxosEngine::HandleAccepted(NodeId from, const PaxosAcceptedMsg& m) {
  if (m.ballot != ballot_ || !IsPrimary()) return;
  SlotState& st = slots_[m.slot];
  if (!st.have_value || st.digest != m.value_digest) return;
  st.accepted.insert(from);
  if (st.learned || st.accepted.size() < Quorum()) return;
  auto learn = std::make_shared<PaxosLearnMsg>();
  learn->ballot = m.ballot;
  learn->slot = m.slot;
  learn->value_digest = st.digest;
  ctx_.broadcast(learn);
  MarkLearned(m.slot);
  DeliverReady();
}

void PaxosEngine::HandleLearn(NodeId from, const PaxosLearnMsg& m) {
  if (from != ctx_.cluster[m.ballot % ClusterSize()]) return;
  ObserveBallot(m.ballot);
  SlotState& st = slots_[m.slot];
  if (!st.have_value || st.digest != m.value_digest) {
    // Value not seen yet (reordered delivery) — remember it is decided;
    // Accept will follow or retransmission recovers it.
    ctx_.env->metrics.Inc("paxos.learn_before_value");
    return;
  }
  MarkLearned(m.slot);
  DeliverReady();
}

void PaxosEngine::DeliverReady() {
  while (true) {
    auto it = slots_.find(last_delivered_ + 1);
    if (it == slots_.end() || !it->second.learned || it->second.delivered ||
        !it->second.have_value) {
      break;
    }
    it->second.delivered = true;
    ++last_delivered_;
    ctx_.deliver(it->first, it->second.value);
  }
}

void PaxosEngine::ArmSlotTimer(uint64_t slot) {
  SlotState& st = slots_[slot];
  if (st.timer_armed || st.learned) return;
  st.timer_armed = true;
  ctx_.start_timer(base_timeout_, kTagSlotTimeout, slot);
}

void PaxosEngine::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag != kTagSlotTimeout) return;
  auto it = slots_.find(payload);
  if (it == slots_.end()) return;
  SlotState& st = it->second;
  st.timer_armed = false;
  if (st.learned) return;

  // Leader takeover: bump the ballot until we own it, then re-drive every
  // unfinished slot with our (possibly inherited) value. Anything still
  // queued was queued under a leadership that has since timed out —
  // clients have retransmitted by now, so re-proposing it here could
  // duplicate transactions an interim leader already committed.
  DropProposeQueue();
  uint64_t nb = ballot_ + 1;
  while (ctx_.cluster[nb % ClusterSize()] != ctx_.self) ++nb;
  ballot_ = nb;
  ctx_.env->metrics.Inc("paxos.leader_takeover");
  if (ctx_.on_view_change) ctx_.on_view_change(ballot_, ctx_.self);

  uint64_t max_slot = last_delivered_;
  for (auto& [s, ss] : slots_) max_slot = std::max(max_slot, s);
  next_slot_ = std::max(next_slot_, max_slot + 1);

  my_open_slots_.clear();
  for (auto& [s, ss] : slots_) {
    if (ss.delivered || ss.learned || !ss.have_value) continue;
    ss.ballot = ballot_;
    ss.accepted.clear();
    ss.accepted.insert(ctx_.self);
    my_open_slots_.insert(s);
    auto acc = std::make_shared<PaxosAcceptMsg>();
    acc->ballot = ballot_;
    acc->slot = s;
    acc->value = ss.value;
    acc->value_digest = ss.digest;
    acc->wire_bytes = 64 + ss.value.WireSize();
    ctx_.broadcast(acc);
    ArmSlotTimer(s);
  }
}

}  // namespace qanaat
