#ifndef QANAAT_CONSENSUS_ENGINE_H_
#define QANAAT_CONSENSUS_ENGINE_H_

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "consensus/messages.h"
#include "consensus/value.h"
#include "sim/env.h"
#include "sim/message.h"

namespace qanaat {

/// Per-slot vote bookkeeping (node -> signature). Vote sets are tiny
/// (bounded by cluster size) and sit on the per-message hot path, so a
/// sorted flat vector replaces the std::map it grew from; iteration stays
/// in ascending NodeId order, byte-identical to the tree it replaced
/// (commit proofs and fill replies serialize votes in that order).
class VoteSet {
 public:
  /// Inserts or overwrites `node`'s vote.
  void Put(NodeId node, const Signature& sig) {
    // One up-front reservation covers any realistic cluster: the grow-
    // from-empty doubling showed up as ~200k vector reallocations per
    // fig7-style run (two vote sets per slot per replica).
    if (votes_.capacity() == 0) votes_.reserve(8);
    auto it = std::lower_bound(
        votes_.begin(), votes_.end(), node,
        [](const std::pair<NodeId, Signature>& v, NodeId n) {
          return v.first < n;
        });
    if (it != votes_.end() && it->first == node) {
      it->second = sig;
      return;
    }
    votes_.insert(it, {node, sig});
  }

  size_t size() const { return votes_.size(); }
  bool empty() const { return votes_.empty(); }
  void clear() { votes_.clear(); }
  /// Entries in ascending NodeId order.
  const std::vector<std::pair<NodeId, Signature>>& entries() const {
    return votes_;
  }

 private:
  std::vector<std::pair<NodeId, Signature>> votes_;
};

/// Sorted small-vector of slot numbers (or node ids): the flat form of
/// the std::set both engines used for pipeline accounting and vote
/// membership. Insertions are near-append in steady state (slots open in
/// ascending order), membership is a binary search, and iteration stays
/// ascending — byte-identical to the tree it replaced wherever emitted
/// message contents depend on the order.
template <typename T>
class SortedVec {
 public:
  /// Inserts `v` if absent; returns true when newly inserted.
  bool Insert(T v) {
    if (vals_.empty() || vals_.back() < v) {  // common append path
      vals_.push_back(v);
      return true;
    }
    auto it = std::lower_bound(vals_.begin(), vals_.end(), v);
    if (it != vals_.end() && *it == v) return false;
    vals_.insert(it, v);
    return true;
  }
  bool Erase(T v) {
    auto it = std::lower_bound(vals_.begin(), vals_.end(), v);
    if (it == vals_.end() || *it != v) return false;
    vals_.erase(it);
    return true;
  }
  /// Drops every element <= bound (GC below a stable checkpoint).
  void EraseUpTo(T bound) {
    auto it = std::upper_bound(vals_.begin(), vals_.end(), bound);
    vals_.erase(vals_.begin(), it);
  }
  bool Contains(T v) const {
    return std::binary_search(vals_.begin(), vals_.end(), v);
  }
  size_t size() const { return vals_.size(); }
  bool empty() const { return vals_.empty(); }
  void clear() { vals_.clear(); }
  typename std::vector<T>::const_iterator begin() const {
    return vals_.begin();
  }
  typename std::vector<T>::const_iterator end() const { return vals_.end(); }

 private:
  std::vector<T> vals_;
};

/// Memoized consensus signable for one slot. Every PBFT sign *and*
/// verify needs ConsensusSignable(view, slot, value_digest); within a
/// slot the (view, digest) pair is stable across the whole
/// pre-prepare/prepare/commit exchange, so one derivation serves the
/// pre-prepare signature, the self-prepare, every vote verification and
/// the commit signature. The cache is keyed by (view, digest): a view
/// change or an equivocating digest misses and recomputes, so a stale
/// view's signable can never be served for a newer view's signature.
class SignableCache {
 public:
  const Sha256Digest& Get(ViewNo view, uint64_t slot,
                          const Sha256Digest& value_digest) {
    if (!valid_ || view_ != view || slot_ != slot ||
        !(for_digest_ == value_digest)) {
      signable_ = ConsensusSignable(view, slot, value_digest);
      view_ = view;
      slot_ = slot;
      for_digest_ = value_digest;
      valid_ = true;
    }
    return signable_;
  }

  /// Installs an externally computed signable (e.g. one derived for a
  /// signature check before the slot state existed), so the immediately
  /// following sign over the same (view, slot, digest) is a hit.
  void Seed(ViewNo view, uint64_t slot, const Sha256Digest& value_digest,
            const Sha256Digest& signable) {
    view_ = view;
    slot_ = slot;
    for_digest_ = value_digest;
    signable_ = signable;
    valid_ = true;
  }

 private:
  bool valid_ = false;
  ViewNo view_ = 0;
  uint64_t slot_ = 0;
  Sha256Digest for_digest_;
  Sha256Digest signable_;
};

/// Callbacks wiring a consensus engine into its hosting actor (an
/// ordering node). The engine itself is transport-agnostic; the host
/// forwards consensus messages into OnMessage and provides send/timer
/// primitives.
struct EngineContext {
  Env* env = nullptr;
  NodeId self = kInvalidNode;
  /// Ordering nodes of this cluster, in fixed index order (primary of
  /// view v = cluster[v % cluster.size()]).
  std::vector<NodeId> cluster;
  int self_index = 0;

  /// Round pipelining: maximum slots the primary may have in flight
  /// (proposed but not yet committed) at once. Further proposals queue
  /// inside the engine and start as earlier slots commit. 0 = unbounded.
  size_t pipeline_depth = 0;

  /// Certified checkpoints: every `checkpoint_interval` delivered slots a
  /// replica broadcasts a signed CHECKPOINT vote over its history digest;
  /// a quorum of matching votes makes the checkpoint stable, garbage-
  /// collecting per-slot consensus state and anchoring state transfer.
  /// 0 disables checkpointing.
  size_t checkpoint_interval = 0;

  /// Host hook: the engine learned — from a stable checkpoint certificate
  /// — that the cluster's certified frontier lies beyond this replica's,
  /// or its per-slot fills stalled below a peer's GC floor. The host
  /// should fetch ledger state from a peer and then feed the certificate
  /// it received back through InstallCheckpoint.
  std::function<void(const CheckpointCertificate&)> request_state_transfer;

  std::function<void(NodeId, MessageRef)> send;
  /// Multicast to every *other* ordering node of the cluster.
  std::function<void(MessageRef)> broadcast;
  /// StartTimer(delay, tag, payload) on the host actor; fires
  /// engine->OnTimer.
  std::function<void(SimTime, uint64_t, uint64_t)> start_timer;
  /// Delivered exactly once per slot, in slot order.
  std::function<void(uint64_t slot, const ConsensusValue&)> deliver;
  /// Invoked when the local node moves to a new view (after NEW-VIEW).
  std::function<void(ViewNo view, NodeId new_primary)> on_view_change;
};

/// Pluggable intra-cluster consensus (paper §4.1): PBFT when the cluster
/// declares the Byzantine failure model, Multi-Paxos when crash-only.
class InternalConsensus {
 public:
  explicit InternalConsensus(EngineContext ctx) : ctx_(std::move(ctx)) {}
  virtual ~InternalConsensus() = default;

  /// Primary-side: order `v`. No-op with a warning metric if called on a
  /// non-primary.
  virtual void Propose(const ConsensusValue& v) = 0;

  /// Feed a consensus protocol message from `from`.
  virtual void OnMessage(NodeId from, const MessageRef& msg) = 0;

  /// Timer callback relayed by the host (tags >= kEngineTimerBase).
  virtual void OnTimer(uint64_t tag, uint64_t payload) = 0;

  /// Host crash notification: every timer armed so far died with the
  /// crash epoch, so armed-flags must reset or the machinery they guard
  /// (gap fills, slot watchdogs, view fetches) stays disabled forever in
  /// the recovered life.
  virtual void OnHostCrash() {}
  /// Host recovery notification: re-arm whatever the current state
  /// warrants (a detected gap, a half-finished takeover).
  virtual void OnHostRecover() {}

  /// External suspicion hook: the host observed the primary failing to
  /// make progress on work it is responsible for (e.g. a relayed client
  /// request that never showed up in a proposal). PBFT casts a view-change
  /// vote; Paxos performs a ballot takeover. Default: ignore.
  virtual void SuspectPrimary() {}

  /// Byzantine-ordering fault injection: while enabled, a primary engine
  /// equivocates its proposals (divergent digests to disjoint replica
  /// subsets). Only meaningful for Byzantine-model engines; crash-model
  /// engines ignore it (an equivocating node is outside their fault
  /// model, exactly like the paper's assumption).
  virtual void SetEquivocate(bool /*on*/) {}

  virtual bool IsPrimary() const = 0;
  virtual NodeId PrimaryNode() const = 0;
  virtual ViewNo view() const = 0;

  /// Signatures from the local quorum proving a slot committed; used by
  /// the cross-cluster protocols to build cluster-signed messages
  /// ("signed by local-majority", §4.3).
  virtual std::vector<Signature> CommitProof(uint64_t slot) const = 0;

  /// Number of matching votes that constitutes a local-majority.
  virtual size_t Quorum() const = 0;

  /// Highest slot this node has delivered (consensus progress counter;
  /// hosts use it to distinguish a dead primary from a parked request).
  virtual uint64_t LastDelivered() const { return 0; }

  /// Slots this node proposed that have not yet committed (primary side;
  /// bounded by ctx_.pipeline_depth when that is non-zero).
  virtual size_t InFlight() const { return 0; }
  /// Proposals waiting behind the pipeline-depth cap.
  virtual size_t QueuedProposals() const { return 0; }

  // ---- certified checkpoints (shared by both engines) -----------------

  /// Latest stable checkpoint (slot 0 = none yet): a quorum attested the
  /// first `slot` slots delivered with history digest `digest`.
  const CheckpointCertificate& stable_checkpoint() const { return stable_; }
  /// Highest slot whose per-slot consensus state was garbage-collected
  /// (always == stable_checkpoint().slot: GC happens only at stability,
  /// never below a merely-proposed checkpoint).
  uint64_t gc_floor() const { return gc_floor_; }
  /// Running history digest over every delivered slot's value digest.
  const Sha256Digest& history_digest() const { return ckpt_history_; }

  /// Test/audit surface: is per-slot state for `slot` still retained?
  virtual bool HasSlotState(uint64_t) const { return false; }

  /// Installs a verified stable checkpoint, called by the host after it
  /// fetched and installed the corresponding ledger state from a peer.
  /// Verifies the certificate (quorum of distinct valid signatures),
  /// advances the delivery frontier past the certified slot when behind,
  /// and garbage-collects. Returns false on an invalid certificate.
  bool InstallCheckpoint(const CheckpointCertificate& cert);

  static constexpr uint64_t kEngineTimerBase = 1u << 20;

 protected:
  size_t ClusterSize() const { return ctx_.cluster.size(); }

  /// Folds a delivered slot into the history digest; at interval
  /// boundaries broadcasts a CHECKPOINT vote (and self-tallies it).
  void NoteDelivered(uint64_t slot, const Sha256Digest& value_digest);
  /// Feeds a CHECKPOINT message: a carried certificate is processed
  /// directly; a vote is verified and tallied toward stability.
  void HandleCheckpoint(NodeId from, const CheckpointMsg& m);

  /// CFT engines authenticate with MACs: checkpoint votes then charge no
  /// signature verification at the receiver.
  virtual bool CheapCheckpointAuth() const { return false; }
  /// Engine hook: drop per-slot consensus state at or below `slot`.
  virtual void GarbageCollectBelow(uint64_t slot) = 0;
  /// Engine hook: jump the delivery frontier to the certified `slot`
  /// (the host already installed the application state).
  virtual void AdvanceFrontierTo(uint64_t slot) = 0;
  /// Engine hook: flush deliveries/proposals unblocked by an installed
  /// checkpoint (committed slots above it, queued proposals).
  virtual void ResumeAfterInstall() {}

  EngineContext ctx_;

 private:
  /// Single-entry memo for CheckpointSignable(slot, digest): votes for
  /// one boundary arrive in a burst (own sign + one verify per peer), so
  /// the same signable is derived N+1 times per interval without it.
  const Sha256Digest& CkptSignableFor(uint64_t slot,
                                      const Sha256Digest& digest);

  void RecordCheckpointVote(uint64_t slot, const Sha256Digest& digest,
                            const Signature& sig);
  /// A stable certificate appeared (own tally, a peer's carried cert, or
  /// a promise): adopt + GC if at/below our frontier, otherwise ask the
  /// host for state transfer.
  void ProcessStable(const CheckpointCertificate& cert);
  void AdoptStable(const CheckpointCertificate& cert);

  Sha256Digest ckpt_history_;
  /// Our own history digest at each interval boundary we delivered.
  std::map<uint64_t, Sha256Digest> ckpt_own_;
  struct CkptTally {
    Sha256Digest digest;
    VoteSet votes;
  };
  std::map<uint64_t, std::vector<CkptTally>> ckpt_votes_;
  CheckpointCertificate stable_;
  uint64_t gc_floor_ = 0;
  bool ckpt_signable_valid_ = false;
  uint64_t ckpt_signable_slot_ = 0;
  Sha256Digest ckpt_signable_for_;
  Sha256Digest ckpt_signable_;
};

}  // namespace qanaat

#endif  // QANAAT_CONSENSUS_ENGINE_H_
