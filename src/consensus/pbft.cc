#include "consensus/pbft.h"

#include <algorithm>

namespace qanaat {

PbftEngine::PbftEngine(EngineContext ctx, int f, SimTime base_timeout_us)
    : InternalConsensus(std::move(ctx)),
      f_(f),
      base_timeout_(base_timeout_us) {}

Sha256Digest PbftEngine::SignableDigest(
    ViewNo v, uint64_t slot, const Sha256Digest& value_digest) const {
  // Shared with CommitCertificate verification (ledger/block.h) so
  // commit-phase signatures double as externally checkable certificates.
  return ConsensusSignable(v, slot, value_digest);
}

void PbftEngine::SendPrePrepare(uint64_t slot, SlotState& st) {
  if (!equivocate_) {
    auto pp = std::make_shared<PrePrepareMsg>();
    pp->view = view_;
    pp->slot = slot;
    pp->value = st.value;
    pp->value_digest = st.digest;
    pp->sig = ctx_.env->keystore.Sign(ctx_.self,
                                      SignableDigest(view_, slot, st.digest));
    pp->wire_bytes = 96 + st.value.WireSize();
    // Backups re-verify the client signature of every transaction in the
    // batch before preparing (PBFT request authentication).
    if (st.value.block != nullptr &&
        st.value.kind != ConsensusValue::Kind::kXCommit) {
      pp->sig_verify_ops = static_cast<uint16_t>(
          std::min<size_t>(1 + st.value.block->tx_count(), 65535));
    }
    ctx_.broadcast(pp);
  } else {
    // Byzantine primary: send a different (garbage) digest to half the
    // replicas. Correct replicas will fail to gather matching quorums and
    // eventually view-change.
    int i = 0;
    for (NodeId peer : ctx_.cluster) {
      if (peer == ctx_.self) continue;
      auto pp = std::make_shared<PrePrepareMsg>();
      pp->view = view_;
      pp->slot = slot;
      pp->value = st.value;
      Sha256Digest d = st.digest;
      if (i++ % 2 == 0) d.bytes[0] ^= 0xff;
      pp->value_digest = d;
      pp->sig =
          ctx_.env->keystore.Sign(ctx_.self, SignableDigest(view_, slot, d));
      pp->wire_bytes = 96 + st.value.WireSize();
      ctx_.send(peer, pp);
    }
  }
}

void PbftEngine::Propose(const ConsensusValue& v) {
  if (!IsPrimary()) {
    ctx_.env->metrics.Inc("pbft.propose_on_backup");
    return;
  }
  // Pipelining: cap concurrently open slots; excess proposals queue and
  // start as earlier slots commit. A proposal arriving mid-view-change
  // also queues (a pre-prepare in a dying view would be wasted).
  if (AtPipelineCap() || in_view_change_) {
    propose_queue_.push_back(v);
    ctx_.env->metrics.Inc("pbft.proposal_queued");
    return;
  }
  StartSlot(v);
}

void PbftEngine::StartSlot(const ConsensusValue& v) {
  uint64_t slot = next_slot_++;
  SlotState& st = slots_[slot];
  st.view = view_;
  st.value = v;
  st.digest = v.Digest();
  st.have_preprepare = true;
  my_open_slots_.insert(slot);
  SendPrePrepare(slot, st);
  // The primary's own PREPARE is implicit in the PRE-PREPARE.
  st.prepares[ctx_.self] = ctx_.env->keystore.Sign(
      ctx_.self, SignableDigest(view_, slot, st.digest));
  ArmSlotTimer(slot);
}

void PbftEngine::DrainProposeQueue() {
  while (!propose_queue_.empty() && IsPrimary() && !in_view_change_ &&
         !AtPipelineCap()) {
    ConsensusValue v = std::move(propose_queue_.front());
    propose_queue_.pop_front();
    StartSlot(v);
  }
}

void PbftEngine::ArmSlotTimer(uint64_t slot) {
  SlotState& st = slots_[slot];
  if (st.timer_armed || st.committed) return;
  st.timer_armed = true;
  // Exponential backoff on consecutive view changes (§4.3.4).
  SimTime t = base_timeout_ << std::min<uint64_t>(view_change_count_, 6);
  ctx_.start_timer(t, kTagSlotTimeout, slot);
}

void PbftEngine::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag != kTagSlotTimeout) return;
  auto it = slots_.find(payload);
  if (it == slots_.end()) return;
  // timer_armed doubles as a cancellation flag: a view change clears it,
  // invalidating timers armed in the old view.
  if (!it->second.timer_armed) return;
  it->second.timer_armed = false;
  if (it->second.committed) return;
  // Suspect the primary. A lone suspicion does not abandon the current
  // view — the node broadcasts its VIEW-CHANGE vote but keeps
  // participating until f+1 nodes agree (prevents a single spurious
  // timeout under load from wedging the node).
  StartViewChange(view_ + 1, /*lone_suspicion=*/true);
}

void PbftEngine::StartViewChange(ViewNo target, bool lone_suspicion) {
  if (view_change_voted_.count(target)) return;
  view_change_voted_.insert(target);
  if (!lone_suspicion) in_view_change_ = true;
  ctx_.env->metrics.Inc("pbft.view_change_started");
  auto vc = std::make_shared<ViewChangeMsg>();
  vc->new_view = target;
  vc->last_delivered = last_delivered_;
  for (const auto& [slot, st] : slots_) {
    if (st.prepared && !st.delivered) {
      PreparedProof p;
      p.slot = slot;
      p.view = st.view;
      p.value = st.value;
      p.value_digest = st.digest;
      vc->prepared.push_back(std::move(p));
    }
  }
  vc->sig = ctx_.env->keystore.Sign(
      ctx_.self, SignableDigest(target, 0, Sha256::Hash("view-change")));
  vc->wire_bytes = 128 + static_cast<uint32_t>(vc->prepared.size()) * 64;
  ctx_.broadcast(vc);
  // Count our own vote.
  HandleViewChange(ctx_.self, *vc);
}

void PbftEngine::OnMessage(NodeId from, const MessageRef& msg) {
  // Buffer normal-case messages that belong to a view we have not
  // installed yet; they are replayed once the NEW-VIEW arrives.
  ViewNo msg_view = view_;
  switch (msg->type) {
    case MsgType::kPrePrepare:
      msg_view = msg->As<PrePrepareMsg>()->view;
      break;
    case MsgType::kPrepare:
      msg_view = msg->As<PrepareMsg>()->view;
      break;
    case MsgType::kCommit:
      msg_view = msg->As<CommitMsg>()->view;
      break;
    default:
      break;
  }
  if (msg_view > view_) {
    if (future_msgs_.size() < 10000) future_msgs_.emplace_back(from, msg);
    return;
  }
  switch (msg->type) {
    case MsgType::kPrePrepare:
      HandlePrePrepare(from, *msg->As<PrePrepareMsg>());
      break;
    case MsgType::kPrepare:
      HandlePrepare(from, *msg->As<PrepareMsg>());
      break;
    case MsgType::kCommit:
      HandleCommit(from, *msg->As<CommitMsg>());
      break;
    case MsgType::kViewChange:
      HandleViewChange(from, *msg->As<ViewChangeMsg>());
      break;
    case MsgType::kNewView:
      HandleNewView(from, *msg->As<NewViewMsg>());
      break;
    default:
      break;
  }
}

void PbftEngine::HandlePrePrepare(NodeId from, const PrePrepareMsg& m) {
  if (m.view != view_ || in_view_change_) return;
  if (from != PrimaryNode()) return;
  if (!ctx_.env->keystore.Verify(m.sig,
                                 SignableDigest(m.view, m.slot,
                                                m.value_digest))) {
    ctx_.env->metrics.Inc("pbft.bad_sig");
    return;
  }
  SlotState& st = slots_[m.slot];
  if (st.have_preprepare && st.digest != m.value_digest) {
    // Conflicting pre-prepare from the primary: equivocation evidence.
    ctx_.env->metrics.Inc("pbft.equivocation_detected");
    StartViewChange(view_ + 1, /*lone_suspicion=*/true);
    return;
  }
  st.view = m.view;
  st.value = m.value;
  st.digest = m.value_digest;
  st.have_preprepare = true;
  // The primary's pre-prepare doubles as its prepare vote (its signature
  // covers the same ⟨view, slot, digest⟩ tuple).
  st.prepares[from] = m.sig;
  ArmSlotTimer(m.slot);

  auto prep = std::make_shared<PrepareMsg>();
  prep->view = m.view;
  prep->slot = m.slot;
  prep->value_digest = m.value_digest;
  prep->sig = ctx_.env->keystore.Sign(
      ctx_.self, SignableDigest(m.view, m.slot, m.value_digest));
  ctx_.broadcast(prep);
  st.prepares[ctx_.self] = prep->sig;
  MaybePrepared(m.slot);
}

void PbftEngine::HandlePrepare(NodeId from, const PrepareMsg& m) {
  if (m.view != view_ || in_view_change_) return;
  if (!ctx_.env->keystore.Verify(
          m.sig, SignableDigest(m.view, m.slot, m.value_digest))) {
    ctx_.env->metrics.Inc("pbft.bad_sig");
    return;
  }
  SlotState& st = slots_[m.slot];
  // Only count prepares matching the pre-prepared digest (once known).
  if (st.have_preprepare && st.digest != m.value_digest) return;
  if (!st.have_preprepare) {
    // Remember the vote; digest consistency is checked when the
    // pre-prepare arrives (mismatched votes simply never quorum).
    st.digest = m.value_digest;
  }
  st.prepares[from] = m.sig;
  ArmSlotTimer(m.slot);  // liveness: a vote for an unknown slot starts a timer
  MaybePrepared(m.slot);
}

void PbftEngine::MaybePrepared(uint64_t slot) {
  SlotState& st = slots_[slot];
  if (st.prepared || !st.have_preprepare) return;
  // PBFT: pre-prepare + 2f matching prepares (self's prepare included in
  // the map; primary's pre-prepare counts as its prepare).
  if (st.prepares.size() < Quorum()) return;
  st.prepared = true;
  auto c = std::make_shared<CommitMsg>();
  c->view = st.view;
  c->slot = slot;
  c->value_digest = st.digest;
  c->sig = ctx_.env->keystore.Sign(ctx_.self,
                                   SignableDigest(st.view, slot, st.digest));
  ctx_.broadcast(c);
  st.commits[ctx_.self] = c->sig;
  MaybeCommitted(slot);
}

void PbftEngine::HandleCommit(NodeId from, const CommitMsg& m) {
  if (m.view != view_ || in_view_change_) return;
  if (!ctx_.env->keystore.Verify(
          m.sig, SignableDigest(m.view, m.slot, m.value_digest))) {
    ctx_.env->metrics.Inc("pbft.bad_sig");
    return;
  }
  SlotState& st = slots_[m.slot];
  if (st.have_preprepare && st.digest != m.value_digest) return;
  st.commits[from] = m.sig;
  ArmSlotTimer(m.slot);
  MaybeCommitted(m.slot);
}

void PbftEngine::MaybeCommitted(uint64_t slot) {
  SlotState& st = slots_[slot];
  if (st.committed || !st.prepared) return;
  if (st.commits.size() < Quorum()) return;
  st.committed = true;
  my_open_slots_.erase(slot);
  DeliverReady();
  DrainProposeQueue();
}

void PbftEngine::DeliverReady() {
  while (true) {
    auto it = slots_.find(last_delivered_ + 1);
    if (it == slots_.end() || !it->second.committed ||
        it->second.delivered) {
      break;
    }
    it->second.delivered = true;
    ++last_delivered_;
    ctx_.deliver(it->first, it->second.value);
  }
}

std::vector<Signature> PbftEngine::CommitProof(uint64_t slot) const {
  std::vector<Signature> out;
  auto it = slots_.find(slot);
  if (it == slots_.end()) return out;
  for (const auto& [node, sig] : it->second.commits) out.push_back(sig);
  return out;
}

void PbftEngine::HandleViewChange(NodeId from, const ViewChangeMsg& m) {
  if (m.new_view <= view_) return;
  auto stored = std::make_shared<ViewChangeMsg>(m);
  view_changes_rcvd_[m.new_view][from] = stored;
  auto& votes = view_changes_rcvd_[m.new_view];

  // Join the view change once f+1 nodes demand it (liveness rule); at
  // that point the node stops working in the old view.
  if (votes.size() >= static_cast<size_t>(f_ + 1)) {
    if (!view_change_voted_.count(m.new_view)) {
      StartViewChange(m.new_view, /*lone_suspicion=*/false);
    }
    in_view_change_ = true;
  }

  // New primary: with 2f+1 view-change messages, install the view.
  NodeId new_primary = ctx_.cluster[m.new_view % ClusterSize()];
  if (new_primary != ctx_.self) return;
  if (votes.size() < Quorum()) return;

  auto nv = std::make_shared<NewViewMsg>();
  nv->new_view = m.new_view;
  // Re-propose every slot any quorum member prepared.
  std::map<uint64_t, PreparedProof> merged;
  for (const auto& [node, vc] : votes) {
    for (const auto& p : vc->prepared) {
      auto cur = merged.find(p.slot);
      if (cur == merged.end() || cur->second.view < p.view) {
        merged[p.slot] = p;
      }
    }
  }
  for (auto& [slot, p] : merged) nv->reproposals.push_back(p);
  nv->sig = ctx_.env->keystore.Sign(
      ctx_.self, SignableDigest(m.new_view, 0, Sha256::Hash("new-view")));
  nv->wire_bytes = 128 + static_cast<uint32_t>(nv->reproposals.size()) * 96;
  ctx_.broadcast(nv);
  HandleNewView(ctx_.self, *nv);
}

void PbftEngine::HandleNewView(NodeId from, const NewViewMsg& m) {
  if (m.new_view < view_) return;
  NodeId expected_primary = ctx_.cluster[m.new_view % ClusterSize()];
  if (from != expected_primary) return;
  if (!ctx_.env->keystore.Verify(
          m.sig,
          SignableDigest(m.new_view, 0, Sha256::Hash("new-view")))) {
    return;
  }
  view_ = m.new_view;
  in_view_change_ = false;
  ++view_change_count_;
  ctx_.env->metrics.Inc("pbft.view_installed");

  // Open-slot accounting restarts in the new view (re-proposed slots are
  // re-opened below at the new primary).
  my_open_slots_.clear();

  // Reset per-slot vote state for undelivered slots; prepared slots are
  // re-proposed by the new primary below.
  uint64_t max_slot = last_delivered_;
  for (auto& [slot, st] : slots_) {
    max_slot = std::max(max_slot, slot);
    if (st.delivered) continue;
    st.have_preprepare = false;
    st.prepared = false;
    st.committed = false;
    st.prepares.clear();
    st.commits.clear();
    st.timer_armed = false;
  }

  if (ctx_.self == expected_primary) {
    next_slot_ = std::max(next_slot_, max_slot + 1);
    std::set<uint64_t> reproposed;
    for (const auto& p : m.reproposals) {
      if (p.slot <= last_delivered_) continue;
      reproposed.insert(p.slot);
      SlotState& st = slots_[p.slot];
      st.view = view_;
      st.value = p.value;
      st.digest = p.value_digest;
      st.have_preprepare = true;
      my_open_slots_.insert(p.slot);
      SendPrePrepare(p.slot, st);
      st.prepares[ctx_.self] = ctx_.env->keystore.Sign(
          ctx_.self, SignableDigest(view_, p.slot, st.digest));
      ArmSlotTimer(p.slot);
    }
    // Fill abandoned slots (proposed in the old view but prepared
    // nowhere) with no-ops so later slots can deliver.
    for (uint64_t slot = last_delivered_ + 1; slot < next_slot_; ++slot) {
      if (reproposed.count(slot)) continue;
      SlotState& st = slots_[slot];
      if (st.delivered) continue;
      st.view = view_;
      st.value = ConsensusValue{};
      st.digest = st.value.Digest();
      st.have_preprepare = true;
      my_open_slots_.insert(slot);
      SendPrePrepare(slot, st);
      st.prepares[ctx_.self] = ctx_.env->keystore.Sign(
          ctx_.self, SignableDigest(view_, slot, st.digest));
      ArmSlotTimer(slot);
    }
  } else {
    // Replicas accept the re-proposals as fresh pre-prepares in the new
    // view via the normal path (the new primary broadcast them).
    for (const auto& p : m.reproposals) {
      if (p.slot <= last_delivered_) continue;
      SlotState& st = slots_[p.slot];
      st.view = view_;
      st.value = p.value;
      st.digest = p.value_digest;
      st.have_preprepare = true;
      auto prep = std::make_shared<PrepareMsg>();
      prep->view = view_;
      prep->slot = p.slot;
      prep->value_digest = p.value_digest;
      prep->sig = ctx_.env->keystore.Sign(
          ctx_.self, SignableDigest(view_, p.slot, p.value_digest));
      ctx_.broadcast(prep);
      st.prepares[ctx_.self] = prep->sig;
      ArmSlotTimer(p.slot);
    }
  }
  // Queued proposals were accepted in an earlier view; even if this node
  // is primary again now, the intervening views may have committed them
  // via client retransmission, so re-proposing would duplicate them.
  // Drop unconditionally — clients retransmit whatever really was lost.
  if (!propose_queue_.empty()) {
    ctx_.env->metrics.Inc("pbft.queue_dropped_on_view_change",
                          propose_queue_.size());
    propose_queue_.clear();
  }
  if (ctx_.on_view_change) {
    ctx_.on_view_change(view_, ctx_.cluster[view_ % ClusterSize()]);
  }
  // Replay messages that raced ahead of this NEW-VIEW.
  std::vector<std::pair<NodeId, MessageRef>> replay;
  replay.swap(future_msgs_);
  for (auto& [sender, message] : replay) OnMessage(sender, message);
}

}  // namespace qanaat
