#include "consensus/pbft.h"

#include <algorithm>

namespace qanaat {

PbftEngine::PbftEngine(EngineContext ctx, int f, SimTime base_timeout_us)
    : InternalConsensus(std::move(ctx)),
      f_(f),
      base_timeout_(base_timeout_us) {
  slots_.reserve(1 << 12);
}

Sha256Digest PbftEngine::SignableDigest(
    ViewNo v, uint64_t slot, const Sha256Digest& value_digest) const {
  // Shared with CommitCertificate verification (ledger/block.h) so
  // commit-phase signatures double as externally checkable certificates.
  return ConsensusSignable(v, slot, value_digest);
}

namespace {
// The view-change/new-view signables salt a fixed string digest; hash it
// once per process instead of on every vote sent or verified.
const Sha256Digest& ViewChangeSalt() {
  static const Sha256Digest d = Sha256::Hash("view-change");
  return d;
}
const Sha256Digest& NewViewSalt() {
  static const Sha256Digest d = Sha256::Hash("new-view");
  return d;
}
}  // namespace

bool PbftEngine::VerifyVote(const Signature& sig, ViewNo view, uint64_t slot,
                            const Sha256Digest& digest, SlotState* st,
                            Sha256Digest* fresh) {
  const Sha256Digest* covered;
  if (st != nullptr) {
    covered = &st->signable.Get(view, slot, digest);
  } else {
    *fresh = SignableDigest(view, slot, digest);
    covered = fresh;
  }
  return ctx_.env->keystore.Verify(sig, *covered);
}

void PbftEngine::SendPrePrepare(uint64_t slot, SlotState& st) {
  if (!equivocate_) {
    auto pp = std::make_shared<PrePrepareMsg>();
    pp->view = view_;
    pp->slot = slot;
    pp->value = st.value;
    pp->value_digest = st.digest;
    pp->sig = ctx_.env->keystore.Sign(
        ctx_.self, st.signable.Get(view_, slot, st.digest));
    pp->wire_bytes = 96 + st.value.WireSize();
    // Backups re-verify the client signature of every transaction in the
    // batch before preparing (PBFT request authentication).
    if (st.value.block != nullptr &&
        st.value.kind != ConsensusValue::Kind::kXCommit) {
      pp->sig_verify_ops = static_cast<uint16_t>(
          std::min<size_t>(1 + st.value.block->tx_count(), 65535));
    }
    ctx_.broadcast(pp);
  } else {
    // Byzantine primary: send a different (garbage) digest to half the
    // replicas. Correct replicas will fail to gather matching quorums and
    // eventually view-change.
    int i = 0;
    for (NodeId peer : ctx_.cluster) {
      if (peer == ctx_.self) continue;
      auto pp = std::make_shared<PrePrepareMsg>();
      pp->view = view_;
      pp->slot = slot;
      pp->value = st.value;
      Sha256Digest d = st.digest;
      if (i++ % 2 == 0) d.bytes[0] ^= 0xff;
      pp->value_digest = d;
      pp->sig =
          ctx_.env->keystore.Sign(ctx_.self, SignableDigest(view_, slot, d));
      pp->wire_bytes = 96 + st.value.WireSize();
      ctx_.send(peer, pp);
    }
  }
}

void PbftEngine::Propose(const ConsensusValue& v) {
  if (!IsPrimary()) {
    ctx_.env->metrics.Inc("pbft.propose_on_backup");
    return;
  }
  // Pipelining: cap concurrently open slots; excess proposals queue and
  // start as earlier slots commit. A proposal arriving mid-view-change
  // also queues (a pre-prepare in a dying view would be wasted).
  if (AtPipelineCap() || in_view_change_) {
    propose_queue_.push_back(v);
    ctx_.env->metrics.Inc("pbft.proposal_queued");
    return;
  }
  StartSlot(v);
}

void PbftEngine::StartSlot(const ConsensusValue& v) {
  uint64_t slot = next_slot_++;
  SlotState& st = slots_[slot];
  st.view = view_;
  st.value = v;
  st.digest = v.Digest();
  st.have_preprepare = true;
  my_open_slots_.Insert(slot);
  SendPrePrepare(slot, st);
  // The primary's own PREPARE is implicit in the PRE-PREPARE; the slot
  // memo filled by SendPrePrepare makes this signable a hit.
  st.prepares.Put(ctx_.self, ctx_.env->keystore.Sign(
      ctx_.self, st.signable.Get(view_, slot, st.digest)));
  ArmSlotTimer(slot, st);
}

void PbftEngine::DrainProposeQueue() {
  while (!propose_queue_.empty() && IsPrimary() && !in_view_change_ &&
         !AtPipelineCap()) {
    ConsensusValue v = std::move(propose_queue_.front());
    propose_queue_.pop_front();
    StartSlot(v);
  }
}

void PbftEngine::ArmSlotTimer(uint64_t slot, SlotState& st) {
  if (st.timer_armed || st.committed) return;
  st.timer_armed = true;
  // Exponential backoff on consecutive view changes (§4.3.4).
  SimTime t = base_timeout_ << std::min<uint64_t>(view_change_count_, 6);
  ctx_.start_timer(t, kTagSlotTimeout, slot);
}

void PbftEngine::SuspectPrimary() {
  if (IsPrimary()) return;
  StartViewChange(view_ + 1, /*lone_suspicion=*/true);
}

void PbftEngine::OnHostCrash() {
  // Armed-timer flags must not outlive the timers themselves (the crash
  // epoch kills every pending one) — a stale true here would disable the
  // gap-fill / view-fetch machinery for the whole recovered life.
  gap_timer_armed_ = false;
  view_fetch_armed_ = false;
  fill_stalls_ = 0;
  // A half-done view change dies with the process: its escalation
  // watchdog is gone, so staying in_view_change_ would wedge normal-case
  // handling forever. The recovered replica rejoins the current view and
  // re-suspects if the primary is really gone.
  in_view_change_ = false;
  for (auto& [slot, st] : slots_) st.timer_armed = false;
}

void PbftEngine::OnHostRecover() {
  MaybeRequestFill();
  MaybeFetchView();
}

void PbftEngine::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag == kTagGapFill) {
    gap_timer_armed_ = false;
    if (last_delivered_ > payload) {
      fill_stalls_ = 0;
      MaybeRequestFill();  // progressed on its own; recheck later
      return;
    }
    if (max_committed_ <= last_delivered_) return;
    if (++fill_stalls_ > 3 && ctx_.request_state_transfer) {
      // Per-slot fills are going nowhere — the missing slots may be
      // below every live peer's GC floor. Escalate to state transfer.
      fill_stalls_ = 0;
      ctx_.env->metrics.Inc("pbft.fill_escalated");
      ctx_.request_state_transfer(stable_checkpoint());
      MaybeRequestFill();
      return;
    }
    ctx_.env->metrics.Inc("pbft.fill_requested");
    auto req = std::make_shared<FillRequestMsg>();
    req->from_slot = last_delivered_ + 1;
    req->to_slot = std::min(max_committed_, last_delivered_ + 16);
    NodeId peer = ctx_.self;
    for (int i = 0; i < static_cast<int>(ClusterSize()) && peer == ctx_.self;
         ++i) {
      peer = ctx_.cluster[(ctx_.self_index + 1 + fill_rr_++) % ClusterSize()];
    }
    if (peer != ctx_.self) ctx_.send(peer, req);
    MaybeRequestFill();  // re-arm until the gap closes
    return;
  }
  if (tag == kTagViewFetch) {
    view_fetch_armed_ = false;
    if (view_ >= payload) return;  // the view installed on its own
    ctx_.env->metrics.Inc("pbft.view_fetch");
    auto req = std::make_shared<FillRequestMsg>();
    req->want_view = view_ + 1;
    NodeId peer = ctx_.self;
    for (int i = 0; i < static_cast<int>(ClusterSize()) && peer == ctx_.self;
         ++i) {
      peer = ctx_.cluster[(ctx_.self_index + 1 + view_fetch_rr_++) %
                          ClusterSize()];
    }
    if (peer != ctx_.self) ctx_.send(peer, req);
    MaybeFetchView();  // re-arm until the view catches up
    return;
  }
  if (tag == kTagVcTimeout) {
    // The view change we voted for (payload) never installed — votes or
    // the NEW-VIEW were lost. Escalate to the next view; the exponential
    // backoff in StartViewChange's timer keeps escalation bounded.
    if (view_ >= payload || !in_view_change_) return;
    ctx_.env->metrics.Inc("pbft.view_change_escalated");
    StartViewChange(payload + 1, /*lone_suspicion=*/false);
    return;
  }
  if (tag != kTagSlotTimeout) return;
  auto it = slots_.find(payload);
  if (it == slots_.end()) return;
  // timer_armed doubles as a cancellation flag: a view change clears it,
  // invalidating timers armed in the old view.
  if (!it->second.timer_armed) return;
  it->second.timer_armed = false;
  if (it->second.committed) return;
  // Suspect the primary. A lone suspicion does not abandon the current
  // view — the node broadcasts its VIEW-CHANGE vote but keeps
  // participating until f+1 nodes agree (prevents a single spurious
  // timeout under load from wedging the node).
  StartViewChange(view_ + 1, /*lone_suspicion=*/true);
}

void PbftEngine::StartViewChange(ViewNo target, bool lone_suspicion) {
  if (view_change_voted_.count(target)) return;
  view_change_voted_.insert(target);
  if (!lone_suspicion) in_view_change_ = true;
  ctx_.env->metrics.Inc("pbft.view_change_started");
  // Watchdog for this target: one per target per node (the voted-set
  // guard above makes re-arming impossible).
  ctx_.start_timer(
      base_timeout_ << std::min<uint64_t>(view_change_count_ + 1, 6),
      kTagVcTimeout, target);
  auto vc = std::make_shared<ViewChangeMsg>();
  vc->new_view = target;
  vc->last_delivered = last_delivered_;
  // Gather prepared slots in ascending slot order: slots_ is a hash map,
  // but the emitted proof list must keep the deterministic order the old
  // ordered map produced (message contents feed the replay trace).
  std::vector<const std::pair<const uint64_t, SlotState>*> prepared_slots;
  for (const auto& entry : slots_) {
    if (entry.second.prepared && !entry.second.delivered) {
      prepared_slots.push_back(&entry);
    }
  }
  std::sort(prepared_slots.begin(), prepared_slots.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : prepared_slots) {
    PreparedProof p;
    p.slot = entry->first;
    p.view = entry->second.view;
    p.value = entry->second.value;
    p.value_digest = entry->second.digest;
    vc->prepared.push_back(std::move(p));
  }
  vc->sig = ctx_.env->keystore.Sign(
      ctx_.self, SignableDigest(target, 0, ViewChangeSalt()));
  vc->wire_bytes = 128 + static_cast<uint32_t>(vc->prepared.size()) * 64;
  ctx_.broadcast(vc);
  // Count our own vote.
  HandleViewChange(ctx_.self, *vc);
}

void PbftEngine::OnMessage(NodeId from, const MessageRef& msg) {
  // Buffer normal-case messages that belong to a view we have not
  // installed yet; they are replayed once the NEW-VIEW arrives.
  ViewNo msg_view = view_;
  switch (msg->type) {
    case MsgType::kPrePrepare:
      msg_view = msg->As<PrePrepareMsg>()->view;
      break;
    case MsgType::kPrepare:
      msg_view = msg->As<PrepareMsg>()->view;
      break;
    case MsgType::kCommit:
      msg_view = msg->As<CommitMsg>()->view;
      break;
    default:
      break;
  }
  if (msg_view > view_) {
    if (future_msgs_.size() < 10000) future_msgs_.emplace_back(from, msg);
    MaybeFetchView();
    return;
  }
  switch (msg->type) {
    case MsgType::kPrePrepare:
      HandlePrePrepare(from, *msg->As<PrePrepareMsg>());
      break;
    case MsgType::kPrepare:
      HandlePrepare(from, *msg->As<PrepareMsg>());
      break;
    case MsgType::kCommit:
      HandleCommit(from, *msg->As<CommitMsg>());
      break;
    case MsgType::kViewChange:
      HandleViewChange(from, *msg->As<ViewChangeMsg>());
      break;
    case MsgType::kNewView:
      HandleNewView(from, *msg->As<NewViewMsg>());
      break;
    case MsgType::kFillRequest:
      HandleFillRequest(from, *msg->As<FillRequestMsg>());
      break;
    case MsgType::kFillReply:
      HandleFillReply(from, *msg->As<FillReplyMsg>());
      break;
    case MsgType::kCheckpoint:
      HandleCheckpoint(from, *msg->As<CheckpointMsg>());
      break;
    default:
      break;
  }
}

void PbftEngine::HandlePrePrepare(NodeId from, const PrePrepareMsg& m) {
  if (m.view != view_ || in_view_change_) return;
  if (from != PrimaryNode()) return;
  // Delivered (possibly GC'd) slot: nothing to do, and touching slots_
  // would resurrect an entry below the GC floor.
  if (m.slot <= last_delivered_) return;
  auto it = slots_.find(m.slot);
  Sha256Digest fresh;
  if (!VerifyVote(m.sig, m.view, m.slot, m.value_digest,
                  it != slots_.end() ? &it->second : nullptr, &fresh)) {
    ctx_.env->metrics.Inc("pbft.bad_sig");
    return;  // a bad signature must not create slot state
  }
  bool created = it == slots_.end();
  if (created) it = slots_.try_emplace(m.slot).first;
  SlotState& st = it->second;
  if (created) st.signable.Seed(m.view, m.slot, m.value_digest, fresh);
  if (st.delivered) return;  // already decided and applied here
  if (st.have_preprepare && st.digest != m.value_digest) {
    // Conflicting pre-prepare from the primary: equivocation evidence.
    ctx_.env->metrics.Inc("pbft.equivocation_detected");
    StartViewChange(view_ + 1, /*lone_suspicion=*/true);
    return;
  }
  st.view = m.view;
  st.value = m.value;
  st.digest = m.value_digest;
  st.have_preprepare = true;
  // The primary's pre-prepare doubles as its prepare vote (its signature
  // covers the same ⟨view, slot, digest⟩ tuple).
  st.prepares.Put(from, m.sig);
  ArmSlotTimer(m.slot, st);

  auto prep = std::make_shared<PrepareMsg>();
  prep->view = m.view;
  prep->slot = m.slot;
  prep->value_digest = m.value_digest;
  prep->sig = ctx_.env->keystore.Sign(
      ctx_.self, st.signable.Get(m.view, m.slot, m.value_digest));
  ctx_.broadcast(prep);
  st.prepares.Put(ctx_.self, prep->sig);
  MaybePrepared(m.slot, st);
}

void PbftEngine::HandlePrepare(NodeId from, const PrepareMsg& m) {
  if (m.view != view_ || in_view_change_) return;
  if (m.slot <= last_delivered_) return;  // delivered (possibly GC'd)
  auto it = slots_.find(m.slot);
  Sha256Digest fresh;
  if (!VerifyVote(m.sig, m.view, m.slot, m.value_digest,
                  it != slots_.end() ? &it->second : nullptr, &fresh)) {
    ctx_.env->metrics.Inc("pbft.bad_sig");
    return;  // a bad signature must not create slot state
  }
  bool created = it == slots_.end();
  if (created) it = slots_.try_emplace(m.slot).first;
  SlotState& st = it->second;
  if (created) st.signable.Seed(m.view, m.slot, m.value_digest, fresh);
  // Only count prepares matching the pre-prepared digest (once known).
  if (st.have_preprepare && st.digest != m.value_digest) return;
  if (!st.have_preprepare) {
    // Remember the vote; digest consistency is checked when the
    // pre-prepare arrives (mismatched votes simply never quorum).
    st.digest = m.value_digest;
  }
  st.prepares.Put(from, m.sig);
  // Liveness: a vote for an unknown slot starts a timer.
  ArmSlotTimer(m.slot, st);
  MaybePrepared(m.slot, st);
}

void PbftEngine::MaybePrepared(uint64_t slot, SlotState& st) {
  if (st.prepared || !st.have_preprepare) return;
  // PBFT: pre-prepare + 2f matching prepares (self's prepare included in
  // the map; primary's pre-prepare counts as its prepare).
  if (st.prepares.size() < Quorum()) return;
  st.prepared = true;
  auto c = std::make_shared<CommitMsg>();
  c->view = st.view;
  c->slot = slot;
  c->value_digest = st.digest;
  c->sig = ctx_.env->keystore.Sign(
      ctx_.self, st.signable.Get(st.view, slot, st.digest));
  ctx_.broadcast(c);
  st.commits.Put(ctx_.self, c->sig);
  MaybeCommitted(slot, st);
}

void PbftEngine::HandleCommit(NodeId from, const CommitMsg& m) {
  if (m.view != view_ || in_view_change_) return;
  if (m.slot <= last_delivered_) return;  // delivered (possibly GC'd)
  auto it = slots_.find(m.slot);
  Sha256Digest fresh;
  if (!VerifyVote(m.sig, m.view, m.slot, m.value_digest,
                  it != slots_.end() ? &it->second : nullptr, &fresh)) {
    ctx_.env->metrics.Inc("pbft.bad_sig");
    return;  // a bad signature must not create slot state
  }
  bool created = it == slots_.end();
  if (created) it = slots_.try_emplace(m.slot).first;
  SlotState& st = it->second;
  if (created) st.signable.Seed(m.view, m.slot, m.value_digest, fresh);
  if (st.have_preprepare && st.digest != m.value_digest) return;
  st.commits.Put(from, m.sig);
  ArmSlotTimer(m.slot, st);
  MaybeCommitted(m.slot, st);
}

void PbftEngine::MaybeCommitted(uint64_t slot, SlotState& st) {
  if (st.committed || !st.prepared) return;
  if (st.commits.size() < Quorum()) return;
  st.committed = true;
  max_committed_ = std::max(max_committed_, slot);
  my_open_slots_.Erase(slot);
  DeliverReady();
  DrainProposeQueue();
}

void PbftEngine::DeliverReady() {
  while (true) {
    auto it = slots_.find(last_delivered_ + 1);
    if (it == slots_.end() || !it->second.committed ||
        it->second.delivered) {
      break;
    }
    it->second.delivered = true;
    ++last_delivered_;
    fill_stalls_ = 0;
    uint64_t slot = it->first;
    Sha256Digest vd = it->second.digest;
    // Copy the value out before delivering: the host callback can
    // re-enter the engine (propose, install a checkpoint), and an
    // insert-triggered rehash of the flat slot map would invalidate a
    // reference into it mid-call.
    ConsensusValue v = it->second.value;
    ctx_.deliver(slot, v);
    NoteDelivered(last_delivered_, vd);
  }
  MaybeRequestFill();
}

void PbftEngine::GarbageCollectBelow(uint64_t slot) {
  for (auto it = slots_.begin(); it != slots_.end();) {
    it = it->first <= slot ? slots_.erase(it) : std::next(it);
  }
  my_open_slots_.EraseUpTo(slot);
}

void PbftEngine::AdvanceFrontierTo(uint64_t slot) {
  last_delivered_ = slot;
  max_committed_ = std::max(max_committed_, slot);
  next_slot_ = std::max(next_slot_, slot + 1);
  fill_stalls_ = 0;
}

void PbftEngine::ResumeAfterInstall() {
  // Slots above the installed checkpoint may already be committed
  // locally (they arrived while the transfer ran) — flush them now.
  DeliverReady();
  DrainProposeQueue();
}

void PbftEngine::MaybeRequestFill() {
  // Stalled iff some slot committed locally beyond an undelivered
  // frontier — the frontier slot's messages are gone for good (nothing
  // in PBFT retransmits them), so fetch the decisions from a peer.
  if (gap_timer_armed_ || max_committed_ <= last_delivered_) return;
  gap_timer_armed_ = true;
  ctx_.start_timer(base_timeout_ / 2, kTagGapFill, last_delivered_);
}

void PbftEngine::MaybeFetchView() {
  // Arm one fetch per wedge episode: buffered future messages prove a
  // view beyond ours installed somewhere, and if the NEW-VIEW were
  // merely in flight it would arrive well within a timeout.
  if (view_fetch_armed_ || future_msgs_.empty()) return;
  ViewNo target = view_;
  for (const auto& [sender, msg] : future_msgs_) {
    switch (msg->type) {
      case MsgType::kPrePrepare:
        target = std::max(target, msg->As<PrePrepareMsg>()->view);
        break;
      case MsgType::kPrepare:
        target = std::max(target, msg->As<PrepareMsg>()->view);
        break;
      case MsgType::kCommit:
        target = std::max(target, msg->As<CommitMsg>()->view);
        break;
      default:
        break;
    }
  }
  if (target <= view_) return;
  view_fetch_armed_ = true;
  ctx_.start_timer(base_timeout_, kTagViewFetch, target);
}

void PbftEngine::HandleFillRequest(NodeId from, const FillRequestMsg& m) {
  if (m.want_view > 0) {
    if (last_new_view_msg_ != nullptr &&
        last_new_view_msg_->new_view >= m.want_view) {
      ctx_.env->metrics.Inc("pbft.view_served");
      ctx_.send(from, last_new_view_msg_);
    }
    if (m.to_slot == 0) return;  // pure view-sync request
  }
  if (m.from_slot <= gc_floor() && !stable_checkpoint().empty()) {
    // The requested window starts below our GC floor: those slots no
    // longer exist per slot here. Send the stable checkpoint certificate
    // instead — the requester verifies it and state-transfers.
    ctx_.env->metrics.Inc("pbft.fill_below_gc");
    auto ck = std::make_shared<CheckpointMsg>();
    ck->cert = stable_checkpoint();
    ck->wire_bytes = 48 + ck->cert.WireSize();
    ck->sig_verify_ops = static_cast<uint16_t>(ck->cert.sigs.size());
    ctx_.send(from, ck);
  }
  uint64_t to = std::min(m.to_slot, m.from_slot + 16);
  for (uint64_t slot = m.from_slot; slot <= to; ++slot) {
    auto it = slots_.find(slot);
    if (it == slots_.end() || !it->second.committed) continue;
    const SlotState& st = it->second;
    auto fr = std::make_shared<FillReplyMsg>();
    fr->slot = slot;
    fr->view = st.view;
    fr->value = st.value;
    for (const auto& [node, sig] : st.commits.entries()) {
      fr->commit_proof.push_back(sig);
    }
    fr->wire_bytes = 96 + st.value.WireSize() +
                     static_cast<uint32_t>(fr->commit_proof.size()) * 20;
    fr->sig_verify_ops = static_cast<uint16_t>(fr->commit_proof.size());
    ctx_.send(from, fr);
  }
}

void PbftEngine::HandleFillReply(NodeId from, const FillReplyMsg& m) {
  (void)from;
  if (m.slot <= last_delivered_) return;
  SlotState& st = slots_[m.slot];
  if (st.committed || st.delivered) return;
  // Self-certifying: the commit-quorum signatures prove the decision, so
  // a single faulty peer cannot inject a fake one.
  Sha256Digest covered =
      SignableDigest(m.view, m.slot, m.value.Digest());
  std::set<NodeId> distinct;
  for (const auto& sig : m.commit_proof) {
    if (!ctx_.env->keystore.Verify(sig, covered)) {
      ctx_.env->metrics.Inc("pbft.bad_fill_proof");
      return;
    }
    distinct.insert(sig.signer);
  }
  if (distinct.size() < Quorum()) {
    ctx_.env->metrics.Inc("pbft.short_fill_proof");
    return;
  }
  ctx_.env->metrics.Inc("pbft.slot_filled");
  st.view = m.view;
  st.value = m.value;
  st.digest = m.value.Digest();
  st.have_preprepare = true;
  st.prepared = true;
  st.committed = true;
  for (const auto& sig : m.commit_proof) st.commits.Put(sig.signer, sig);
  max_committed_ = std::max(max_committed_, m.slot);
  my_open_slots_.Erase(m.slot);
  DeliverReady();
  DrainProposeQueue();
}

std::vector<Signature> PbftEngine::CommitProof(uint64_t slot) const {
  std::vector<Signature> out;
  auto it = slots_.find(slot);
  if (it == slots_.end()) return out;
  for (const auto& [node, sig] : it->second.commits.entries()) {
    out.push_back(sig);
  }
  return out;
}

void PbftEngine::HandleViewChange(NodeId from, const ViewChangeMsg& m) {
  if (m.new_view <= view_) return;
  auto stored = std::make_shared<ViewChangeMsg>(m);
  view_changes_rcvd_[m.new_view][from] = stored;
  auto& votes = view_changes_rcvd_[m.new_view];

  // Join the view change once f+1 nodes demand it (liveness rule); at
  // that point the node stops working in the old view.
  if (votes.size() >= static_cast<size_t>(f_ + 1)) {
    if (!view_change_voted_.count(m.new_view)) {
      StartViewChange(m.new_view, /*lone_suspicion=*/false);
    }
    in_view_change_ = true;
  }

  // New primary: with 2f+1 view-change messages, install the view.
  NodeId new_primary = ctx_.cluster[m.new_view % ClusterSize()];
  if (new_primary != ctx_.self) return;
  if (votes.size() < Quorum()) return;
  // Exactly one NEW-VIEW per target: a vote arriving after the quorum
  // must not rebuild the message with a larger reproposal set — replicas
  // would re-install the view and reset slots already in flight.
  if (!new_view_sent_.insert(m.new_view).second) return;

  auto nv = std::make_shared<NewViewMsg>();
  nv->new_view = m.new_view;
  // Re-propose every slot any quorum member prepared.
  std::map<uint64_t, PreparedProof> merged;
  for (const auto& [node, vc] : votes) {
    for (const auto& p : vc->prepared) {
      auto cur = merged.find(p.slot);
      if (cur == merged.end() || cur->second.view < p.view) {
        merged[p.slot] = p;
      }
    }
  }
  for (auto& [slot, p] : merged) nv->reproposals.push_back(p);
  nv->sig = ctx_.env->keystore.Sign(
      ctx_.self, SignableDigest(m.new_view, 0, NewViewSalt()));
  nv->wire_bytes = 128 + static_cast<uint32_t>(nv->reproposals.size()) * 96;
  ctx_.broadcast(nv);
  HandleNewView(ctx_.self, *nv);
}

void PbftEngine::HandleNewView(NodeId from, const NewViewMsg& m) {
  (void)from;
  if (m.new_view < view_) return;
  // Process each view's NEW-VIEW at most once (duplicated deliveries
  // under fault injection would otherwise reset in-flight slots).
  if (m.new_view <= last_new_view_processed_) return;
  // The message is self-certifying: it must be SIGNED by the view's
  // primary, but any peer may deliver it — the view-fetch path re-serves
  // a retained NEW-VIEW from whichever replica holds it, which matters
  // exactly when the primary that built it is unreachable.
  NodeId expected_primary = ctx_.cluster[m.new_view % ClusterSize()];
  if (m.sig.signer != expected_primary) return;
  if (!ctx_.env->keystore.Verify(
          m.sig, SignableDigest(m.new_view, 0, NewViewSalt()))) {
    return;
  }
  view_ = m.new_view;
  last_new_view_processed_ = m.new_view;
  in_view_change_ = false;
  ++view_change_count_;
  ctx_.env->metrics.Inc("pbft.view_installed");
  // Retain the installed NEW-VIEW for view-wedged peers (see
  // MaybeFetchView / the want_view fill path).
  if (last_new_view_msg_ == nullptr ||
      last_new_view_msg_->new_view < m.new_view) {
    last_new_view_msg_ = std::make_shared<NewViewMsg>(m);
  }

  // Open-slot accounting restarts in the new view (re-proposed slots are
  // re-opened below at the new primary).
  my_open_slots_.clear();

  // Reset per-slot vote state for undelivered slots; prepared slots are
  // re-proposed by the new primary below.
  uint64_t max_slot = last_delivered_;
  for (auto& [slot, st] : slots_) {
    max_slot = std::max(max_slot, slot);
    if (st.delivered) continue;
    st.have_preprepare = false;
    st.prepared = false;
    st.committed = false;
    st.prepares.clear();
    st.commits.clear();
    st.timer_armed = false;
  }

  if (ctx_.self == expected_primary) {
    // Slots delivered anywhere in the quorum are decided; never overwrite
    // them with no-ops — fetch them via the fill protocol instead.
    uint64_t quorum_delivered = last_delivered_;
    for (const auto& [node, vc] : view_changes_rcvd_[m.new_view]) {
      quorum_delivered = std::max(quorum_delivered, vc->last_delivered);
    }
    next_slot_ = std::max(next_slot_, max_slot + 1);
    next_slot_ = std::max(next_slot_, quorum_delivered + 1);
    std::set<uint64_t> reproposed;
    for (const auto& p : m.reproposals) {
      if (p.slot <= last_delivered_) continue;
      reproposed.insert(p.slot);
      SlotState& st = slots_[p.slot];
      st.view = view_;
      st.value = p.value;
      st.digest = p.value_digest;
      st.have_preprepare = true;
      my_open_slots_.Insert(p.slot);
      SendPrePrepare(p.slot, st);
      st.prepares.Put(ctx_.self, ctx_.env->keystore.Sign(
          ctx_.self, st.signable.Get(view_, p.slot, st.digest)));
      ArmSlotTimer(p.slot, st);
    }
    // Fill abandoned slots (proposed in the old view but prepared
    // nowhere) with no-ops so later slots can deliver.
    for (uint64_t slot = last_delivered_ + 1; slot < next_slot_; ++slot) {
      if (reproposed.count(slot)) continue;
      SlotState& st = slots_[slot];
      if (st.delivered || st.committed) continue;
      if (slot <= quorum_delivered) continue;  // decided elsewhere: fill
      st.view = view_;
      st.value = ConsensusValue{};
      st.digest = st.value.Digest();
      st.have_preprepare = true;
      my_open_slots_.Insert(slot);
      SendPrePrepare(slot, st);
      st.prepares.Put(ctx_.self, ctx_.env->keystore.Sign(
          ctx_.self, st.signable.Get(view_, slot, st.digest)));
      ArmSlotTimer(slot, st);
    }
  } else {
    // Replicas accept the re-proposals as fresh pre-prepares in the new
    // view via the normal path (the new primary broadcast them).
    for (const auto& p : m.reproposals) {
      if (p.slot <= last_delivered_) continue;
      SlotState& st = slots_[p.slot];
      st.view = view_;
      st.value = p.value;
      st.digest = p.value_digest;
      st.have_preprepare = true;
      auto prep = std::make_shared<PrepareMsg>();
      prep->view = view_;
      prep->slot = p.slot;
      prep->value_digest = p.value_digest;
      prep->sig = ctx_.env->keystore.Sign(
          ctx_.self, st.signable.Get(view_, p.slot, p.value_digest));
      ctx_.broadcast(prep);
      st.prepares.Put(ctx_.self, prep->sig);
      ArmSlotTimer(p.slot, st);
    }
  }
  // Queued proposals were accepted in an earlier view; even if this node
  // is primary again now, the intervening views may have committed them
  // via client retransmission, so re-proposing would duplicate them.
  // Drop unconditionally — clients retransmit whatever really was lost.
  if (!propose_queue_.empty()) {
    ctx_.env->metrics.Inc("pbft.queue_dropped_on_view_change",
                          propose_queue_.size());
    propose_queue_.clear();
  }
  if (ctx_.on_view_change) {
    ctx_.on_view_change(view_, ctx_.cluster[view_ % ClusterSize()]);
  }
  // Replay messages that raced ahead of this NEW-VIEW.
  std::vector<std::pair<NodeId, MessageRef>> replay;
  replay.swap(future_msgs_);
  for (auto& [sender, message] : replay) OnMessage(sender, message);
}

}  // namespace qanaat
