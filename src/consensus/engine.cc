// Certified checkpoints, shared by both internal-consensus engines
// (paper §4.1 runs PBFT or Multi-Paxos inside each cluster; both need
// the classic PBFT-style stable checkpoint to garbage-collect slot state
// and to anchor recovering replicas).
//
// The checkpointed object is the *consensus history*: a digest chained
// over the value digest of every delivered slot. Unlike the application
// state (whose ledger also advances on asynchronous cross-cluster
// commits), the history at slot s is a pure function of slots 1..s, so
// every correct replica produces the same digest at the same boundary
// and matching votes quorum naturally. The ledger itself is transferred
// at the host layer, block by block, each block self-certified by its
// own commit certificate.

#include "consensus/engine.h"

#include "ledger/block.h"

namespace qanaat {

namespace {
constexpr uint64_t kHistorySalt = 0x48495354u;  // "HIST"
}  // namespace

const Sha256Digest& InternalConsensus::CkptSignableFor(
    uint64_t slot, const Sha256Digest& digest) {
  if (!ckpt_signable_valid_ || ckpt_signable_slot_ != slot ||
      !(ckpt_signable_for_ == digest)) {
    ckpt_signable_ = CheckpointSignable(slot, digest);
    ckpt_signable_slot_ = slot;
    ckpt_signable_for_ = digest;
    ckpt_signable_valid_ = true;
  }
  return ckpt_signable_;
}

void InternalConsensus::NoteDelivered(uint64_t slot,
                                      const Sha256Digest& value_digest) {
  ckpt_history_ = DeriveDigest(kHistorySalt, slot, value_digest.Prefix64(),
                               ckpt_history_);
  size_t k = ctx_.checkpoint_interval;
  if (k == 0 || slot % k != 0) return;
  ckpt_own_[slot] = ckpt_history_;
  ctx_.env->metrics.Inc("ckpt.proposed");
  auto m = std::make_shared<CheckpointMsg>();
  m->slot = slot;
  m->digest = ckpt_history_;
  m->sig = ctx_.env->keystore.Sign(ctx_.self,
                                   CkptSignableFor(slot, ckpt_history_));
  m->wire_bytes = 72;
  m->sig_verify_ops = CheapCheckpointAuth() ? 0 : 1;
  ctx_.broadcast(m);
  RecordCheckpointVote(slot, ckpt_history_, m->sig);
}

void InternalConsensus::HandleCheckpoint(NodeId from, const CheckpointMsg& m) {
  if (!m.cert.empty() && m.cert.slot > stable_.slot) {
    // A carried certificate is self-certifying — no tally needed.
    if (m.cert.Valid(ctx_.env->keystore, Quorum())) {
      ProcessStable(m.cert);
    } else {
      ctx_.env->metrics.Inc("ckpt.bad_cert");
    }
  }
  if (m.slot == 0 || m.slot <= stable_.slot) return;
  // Structural sanity: legitimate votes land only on interval
  // boundaries, so a faulty peer cannot grow the tally map with one
  // entry per arbitrary slot.
  if (ctx_.checkpoint_interval == 0 ||
      m.slot % ctx_.checkpoint_interval != 0) {
    return;
  }
  if (m.sig.signer != from ||
      !ctx_.env->keystore.Verify(m.sig,
                                 CkptSignableFor(m.slot, m.digest))) {
    ctx_.env->metrics.Inc("ckpt.bad_vote");
    return;
  }
  RecordCheckpointVote(m.slot, m.digest, m.sig);
}

void InternalConsensus::RecordCheckpointVote(uint64_t slot,
                                             const Sha256Digest& digest,
                                             const Signature& sig) {
  if (slot <= stable_.slot) return;
  // Bound tally state against a faulty peer spraying votes: at most a
  // few boundary slots tracked at once (honest votes cluster near the
  // live frontier), and at most one tally per possible sender per slot
  // (a correct sender has exactly one digest per boundary).
  size_t k = ctx_.checkpoint_interval > 0 ? ctx_.checkpoint_interval : 1;
  if (slot > LastDelivered() + 16 * k) {
    ctx_.env->metrics.Inc("ckpt.vote_beyond_horizon");
    return;
  }
  std::vector<CkptTally>& tallies = ckpt_votes_[slot];
  CkptTally* tally = nullptr;
  for (auto& t : tallies) {
    if (t.digest == digest) {
      tally = &t;
      break;
    }
  }
  if (tally == nullptr) {
    if (tallies.size() >= ClusterSize()) {
      ctx_.env->metrics.Inc("ckpt.tally_overflow");
      return;
    }
    tallies.push_back(CkptTally{digest, {}});
    tally = &tallies.back();
  }
  tally->votes.Put(sig.signer, sig);
  if (tally->votes.size() < Quorum()) return;
  CheckpointCertificate cert;
  cert.slot = slot;
  cert.digest = digest;
  for (const auto& [node, s] : tally->votes.entries()) cert.sigs.push_back(s);
  ProcessStable(cert);
}

void InternalConsensus::ProcessStable(const CheckpointCertificate& cert) {
  if (cert.slot <= stable_.slot) return;
  if (cert.slot <= LastDelivered()) {
    auto it = ckpt_own_.find(cert.slot);
    if (it != ckpt_own_.end() && !(it->second == cert.digest)) {
      // A quorum certified a history that differs from the one we
      // delivered — a divergence the safety auditor must see, not a
      // checkpoint to adopt.
      ctx_.env->metrics.Inc("ckpt.digest_divergence");
      return;
    }
    AdoptStable(cert);
    return;
  }
  // The cluster's certified frontier is beyond us: per-slot catch-up may
  // be impossible (peers GC'd those slots), so hand over to the host's
  // state-transfer path.
  ctx_.env->metrics.Inc("ckpt.behind_stable");
  if (ctx_.request_state_transfer) ctx_.request_state_transfer(cert);
}

void InternalConsensus::AdoptStable(const CheckpointCertificate& cert) {
  stable_ = cert;
  ckpt_own_.erase(ckpt_own_.begin(), ckpt_own_.upper_bound(cert.slot));
  ckpt_votes_.erase(ckpt_votes_.begin(),
                    ckpt_votes_.upper_bound(cert.slot));
  GarbageCollectBelow(cert.slot);
  gc_floor_ = cert.slot;
  ctx_.env->metrics.Inc("ckpt.stable");
}

bool InternalConsensus::InstallCheckpoint(const CheckpointCertificate& cert) {
  if (!cert.Valid(ctx_.env->keystore, Quorum())) {
    ctx_.env->metrics.Inc("ckpt.invalid_cert");
    return false;
  }
  bool jumped = cert.slot > LastDelivered();
  if (jumped) {
    // The host installed the ledger up to the certified frontier; the
    // skipped slots' history is exactly the certified digest.
    ckpt_history_ = cert.digest;
    AdvanceFrontierTo(cert.slot);
    ctx_.env->metrics.Inc("ckpt.installed_via_transfer");
  }
  if (cert.slot > stable_.slot) AdoptStable(cert);
  if (jumped) ResumeAfterInstall();
  return true;
}

}  // namespace qanaat
