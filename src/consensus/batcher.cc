#include "consensus/batcher.h"

namespace qanaat {

const char* BatchCloseName(BatchClose c) {
  switch (c) {
    case BatchClose::kSize:
      return "size";
    case BatchClose::kTimeout:
      return "timeout";
    case BatchClose::kFlush:
      return "flush";
  }
  return "unknown";
}

}  // namespace qanaat
