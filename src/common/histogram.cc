#include "common/histogram.h"

#include <algorithm>
#include <limits>

namespace qanaat {

Histogram::Histogram()
    : buckets_(kNumBuckets, 0),
      count_(0),
      min_(std::numeric_limits<int64_t>::max()),
      max_(0),
      sum_(0) {}

// Buckets: 8 sub-buckets per power of two, giving ~12.5% worst-case
// relative error — enough for throughput/latency tables.
int Histogram::BucketFor(int64_t v) {
  if (v < 8) return static_cast<int>(v < 0 ? 0 : v);
  int msb = 63 - __builtin_clzll(static_cast<uint64_t>(v));
  int sub = static_cast<int>((v >> (msb - 3)) & 7);  // top-3 bits below msb
  int b = (msb - 2) * 8 + sub;
  return std::min(b, kNumBuckets - 1);
}

int64_t Histogram::BucketLow(int b) {
  if (b < 8) return b;
  int msb = b / 8 + 2;
  int sub = b % 8;
  return (int64_t{1} << msb) | (int64_t{sub} << (msb - 3));
}

void Histogram::Add(int64_t v) {
  buckets_[BucketFor(v)]++;
  count_++;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  sum_ += static_cast<double>(v);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  if (other.count_) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
  sum_ = 0;
}

double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (target >= count_) target = count_ - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return std::min(std::max(BucketLow(i), min_), max_);
  }
  return max_;
}

}  // namespace qanaat
