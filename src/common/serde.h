#ifndef QANAAT_COMMON_SERDE_H_
#define QANAAT_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace qanaat {

/// Little-endian binary encoder. All protocol messages are serialized with
/// this so digests and signatures cover a canonical byte representation.
class Encoder {
 public:
  // One up-front reservation covers almost every message/digest encode;
  // byte-wise growth from an empty vector was a measurable share of the
  // sim hot path (several reallocations per encoded message).
  Encoder() { buf_.reserve(128); }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutI64(int64_t v) { PutLE(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed byte string.
  void PutBytes(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void PutRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Little-endian binary decoder over a borrowed buffer. Methods return
/// false on underflow; callers surface Status::Corruption.
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit Decoder(const std::vector<uint8_t>& buf)
      : Decoder(buf.data(), buf.size()) {}

  bool GetU8(uint8_t* v) { return GetLE(v); }
  bool GetU16(uint16_t* v) { return GetLE(v); }
  bool GetU32(uint32_t* v) { return GetLE(v); }
  bool GetU64(uint64_t* v) { return GetLE(v); }
  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetLE(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool GetBool(bool* v) {
    uint8_t b;
    if (!GetU8(&b)) return false;
    *v = (b != 0);
    return true;
  }
  bool GetBytes(std::string* s) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (pos_ + n > size_) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  /// Copies exactly n raw bytes; false on underflow.
  bool GetRaw(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }
  /// Current read position (for carving bounded sub-decoders).
  const uint8_t* cursor() const { return data_ + pos_; }
  bool Skip(size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }

 private:
  template <typename T>
  bool GetLE(T* v) {
    if (pos_ + sizeof(T) > size_) return false;
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    *v = out;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace qanaat

#endif  // QANAAT_COMMON_SERDE_H_
