#include "common/enterprise_set.h"

namespace qanaat {

std::string EnterpriseSet::Label() const {
  std::string out;
  for (int e = 0; e < kMaxEnterprises; ++e) {
    if (Contains(static_cast<EnterpriseId>(e))) {
      out.push_back(static_cast<char>('A' + e));
    }
  }
  return out;
}

}  // namespace qanaat
