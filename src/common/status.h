#ifndef QANAAT_COMMON_STATUS_H_
#define QANAAT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace qanaat {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // confidentiality rule violated
  kFailedPrecondition, // e.g. consistency predicate violated
  kAborted,            // transaction aborted (conflict / deadlock)
  kUnavailable,        // node crashed / partitioned
  kCorruption,         // bad digest / signature / tampered ledger
  kInternal,
};

/// Lightweight success-or-error result, modeled after absl::Status /
/// rocksdb::Status. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status PermissionDenied(std::string m) {
    return Status(StatusCode::kPermissionDenied, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Value-or-error, modeled after absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

#define QANAAT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::qanaat::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace qanaat

#endif  // QANAAT_COMMON_STATUS_H_
