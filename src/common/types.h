#ifndef QANAAT_COMMON_TYPES_H_
#define QANAAT_COMMON_TYPES_H_

#include <cstdint>

namespace qanaat {

/// Simulated time in microseconds since simulation start.
using SimTime = int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * 1000;

/// Index of an enterprise in a deployment (0-based; at most 16).
using EnterpriseId = uint8_t;

/// Index of a data shard within an enterprise.
using ShardId = uint16_t;

/// Global identifier of a simulated node (actor) in the network.
using NodeId = uint32_t;
constexpr NodeId kInvalidNode = UINT32_MAX;

/// Monotonically increasing sequence number within a data collection.
using SeqNo = uint64_t;

/// PBFT-style view number within a cluster.
using ViewNo = uint64_t;

/// Failure model declared for a set of nodes (paper §3.4).
enum class FailureModel : uint8_t {
  kCrash = 0,      // 2f+1 nodes order and execute
  kByzantine = 1,  // 3f+1 ordering, 2g+1 execution (+ optional firewall)
};

}  // namespace qanaat

#endif  // QANAAT_COMMON_TYPES_H_
