#include "common/status.h"

namespace qanaat {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace qanaat
