#include "common/rng.h"

#include <cmath>

namespace qanaat {

double Rng::Exponential(double mean) {
  // Inverse-CDF sampling; guard against log(0).
  double u = NextDouble();
  if (u >= 1.0) u = 0.9999999999;
  return -mean * std::log1p(-u);
}

namespace {
double Zeta(uint64_t n, double s) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), s);
  return sum;
}
}  // namespace

Zipf::Zipf(uint64_t n, double s) : n_(n), s_(s) {
  if (n_ == 0) n_ = 1;
  // The closed-form inversion has a pole at s == 1; nudge to 0.9999 (the
  // resulting distribution is indistinguishable at benchmark scale).
  theta_ = (s == 1.0) ? 0.9999 : s;
  zetan_ = (theta_ == 0.0) ? double(n_) : Zeta(n_, theta_);
  zeta2_ = (theta_ == 0.0) ? 2.0 : Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t Zipf::Sample(Rng& rng) const {
  if (theta_ == 0.0) return rng.Uniform(n_);
  // YCSB-style inversion (Gray et al., "Quickly generating billion-record
  // synthetic databases").
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) v = n_ - 1;
  return v;
}

}  // namespace qanaat
