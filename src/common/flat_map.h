#ifndef QANAAT_COMMON_FLAT_MAP_H_
#define QANAAT_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace qanaat {

/// Sorted-vector map for tiny key sets (collections, shard refs): the
/// per-commit ledger-head and γ-state lookups walk a handful of entries,
/// where std::map paid a pointer-chasing tree node per probe. Lookup is
/// a binary search over contiguous pairs; iteration is in ascending key
/// order (same order as the tree it replaces). Requires K to provide
/// operator< and operator==.
template <typename K, typename V>
class FlatMap {
 public:
  using Entry = std::pair<K, V>;

  /// Value for `k`, default-constructing on first touch.
  V& operator[](const K& k) {
    auto it = LowerBound(k);
    if (it != entries_.end() && it->first == k) return it->second;
    return entries_.insert(it, Entry{k, V{}})->second;
  }

  const V* Find(const K& k) const {
    auto it = LowerBound(k);
    return it != entries_.end() && it->first == k ? &it->second : nullptr;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  typename std::vector<Entry>::const_iterator begin() const {
    return entries_.begin();
  }
  typename std::vector<Entry>::const_iterator end() const {
    return entries_.end();
  }

 private:
  typename std::vector<Entry>::iterator LowerBound(const K& k) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), k,
        [](const Entry& e, const K& key) { return e.first < key; });
  }
  typename std::vector<Entry>::const_iterator LowerBound(const K& k) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), k,
        [](const Entry& e, const K& key) { return e.first < key; });
  }

  std::vector<Entry> entries_;
};

}  // namespace qanaat

#endif  // QANAAT_COMMON_FLAT_MAP_H_
