#ifndef QANAAT_COMMON_RNG_H_
#define QANAAT_COMMON_RNG_H_

#include <cstdint>

namespace qanaat {

/// SplitMix64 finalizer: full-avalanche 64-bit mix. The one shared
/// implementation behind every hash functor, trace-hash fold and
/// derived-digest lane in the tree — keep it here so a constant tweak
/// cannot desynchronize subsystems.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64 — used to expand a single user seed into per-component
/// streams so components stay decoupled (adding one does not perturb the
/// randomness of others).
inline uint64_t SplitMix64(uint64_t& state) {
  return Mix64(state += 0x9e3779b97f4a7c15ULL);
}

/// xoshiro256** deterministic PRNG. One instance per simulation component;
/// the whole simulation is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (for Poisson arrivals).
  double Exponential(double mean);

  /// Derive an independent child stream.
  Rng Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Zipfian key-selection distribution over [0, n) with skew parameter s
/// (paper §5.7 uses s = 0, 1, 2; s = 0 is uniform). Uses the standard
/// Gray/Jim-Gray YCSB rejection-free inversion method.
class Zipf {
 public:
  Zipf(uint64_t n, double s);

  /// Draw a key in [0, n).
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  double zetan_;   // generalized harmonic number H_{n,s}
  double eta_;
  double theta_;
  double alpha_;
  double zeta2_;
};

}  // namespace qanaat

#endif  // QANAAT_COMMON_RNG_H_
