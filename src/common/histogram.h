#ifndef QANAAT_COMMON_HISTOGRAM_H_
#define QANAAT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace qanaat {

/// Latency histogram with logarithmic buckets (HdrHistogram-lite).
/// Values are in microseconds; resolution degrades gracefully at the tail,
/// which is what benchmark reporting needs.
class Histogram {
 public:
  Histogram();

  void Add(int64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return max_; }
  double Mean() const;
  /// q in [0, 1], e.g. 0.5 for median, 0.99 for p99.
  int64_t Percentile(double q) const;

 private:
  static constexpr int kNumBuckets = 512;
  static int BucketFor(int64_t v);
  static int64_t BucketLow(int b);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
};

}  // namespace qanaat

#endif  // QANAAT_COMMON_HISTOGRAM_H_
