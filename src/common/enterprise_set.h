#ifndef QANAAT_COMMON_ENTERPRISE_SET_H_
#define QANAAT_COMMON_ENTERPRISE_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/types.h"

namespace qanaat {

/// A subset of the enterprises participating in a collaboration workflow.
///
/// Data collections are identified by the set of enterprises that share
/// them (paper §3.2): the root collection is the full set, local collections
/// are singletons, and intermediate collections are any other subset. The
/// order-dependency relation between collections d_X and d_Y is exactly
/// `X ⊆ Y` — `IsSubsetOf` below.
///
/// Implemented as a 16-bit mask; deployments in the paper use 2-8
/// enterprises.
class EnterpriseSet {
 public:
  static constexpr int kMaxEnterprises = 16;

  constexpr EnterpriseSet() : mask_(0) {}
  constexpr explicit EnterpriseSet(uint16_t mask) : mask_(mask) {}
  EnterpriseSet(std::initializer_list<EnterpriseId> ids) : mask_(0) {
    for (EnterpriseId id : ids) Add(id);
  }

  /// The singleton set {e}.
  static EnterpriseSet Single(EnterpriseId e) {
    return EnterpriseSet(static_cast<uint16_t>(1u << e));
  }
  /// The full set {0, 1, ..., n-1}.
  static EnterpriseSet All(int n) {
    return EnterpriseSet(static_cast<uint16_t>((1u << n) - 1));
  }

  void Add(EnterpriseId e) { mask_ |= static_cast<uint16_t>(1u << e); }
  void Remove(EnterpriseId e) { mask_ &= static_cast<uint16_t>(~(1u << e)); }

  bool Contains(EnterpriseId e) const { return (mask_ >> e) & 1u; }
  bool empty() const { return mask_ == 0; }
  int size() const { return __builtin_popcount(mask_); }
  uint16_t mask() const { return mask_; }

  /// True iff this ⊆ other. d_this is order-dependent on d_other and its
  /// transactions may read d_other's records (paper §3.2, Read rule).
  bool IsSubsetOf(const EnterpriseSet& other) const {
    return (mask_ & other.mask_) == mask_;
  }
  /// True iff this ⊂ other (strict).
  bool IsProperSubsetOf(const EnterpriseSet& other) const {
    return IsSubsetOf(other) && mask_ != other.mask_;
  }
  bool Intersects(const EnterpriseSet& other) const {
    return (mask_ & other.mask_) != 0;
  }

  EnterpriseSet Union(const EnterpriseSet& other) const {
    return EnterpriseSet(static_cast<uint16_t>(mask_ | other.mask_));
  }
  EnterpriseSet Intersect(const EnterpriseSet& other) const {
    return EnterpriseSet(static_cast<uint16_t>(mask_ & other.mask_));
  }

  /// Members in increasing id order.
  std::vector<EnterpriseId> Members() const {
    std::vector<EnterpriseId> out;
    out.reserve(size());
    for (int e = 0; e < kMaxEnterprises; ++e) {
      if (Contains(static_cast<EnterpriseId>(e))) {
        out.push_back(static_cast<EnterpriseId>(e));
      }
    }
    return out;
  }

  /// The lowest-numbered member (undefined on empty set).
  EnterpriseId First() const {
    return static_cast<EnterpriseId>(__builtin_ctz(mask_));
  }

  /// Label in the paper's notation: enterprise 0 -> 'A', e.g. "ABD".
  std::string Label() const;

  friend bool operator==(const EnterpriseSet& a, const EnterpriseSet& b) {
    return a.mask_ == b.mask_;
  }
  friend bool operator!=(const EnterpriseSet& a, const EnterpriseSet& b) {
    return a.mask_ != b.mask_;
  }
  friend bool operator<(const EnterpriseSet& a, const EnterpriseSet& b) {
    return a.mask_ < b.mask_;
  }

 private:
  uint16_t mask_;
};

}  // namespace qanaat

#endif  // QANAAT_COMMON_ENTERPRISE_SET_H_
