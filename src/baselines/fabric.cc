#include "baselines/fabric.h"

#include <algorithm>

namespace qanaat {

// ------------------------------------------------------------ FabricSystem

FabricSystem::FabricSystem(FabricConfig cfg)
    : cfg_(cfg),
      env_(std::make_unique<Env>(cfg.seed)),
      net_(std::make_unique<Network>(env_.get())),
      model_(cfg.enterprises) {
  // Single channel: no sharding. Same collection layout as Qanaat
  // (locals, pairwise private data collections, the public root).
  model_.set_default_shard_count(1);
  model_.AddWorkflow(EnterpriseSet::All(cfg.enterprises));
  for (int a = 0; a < cfg.enterprises; ++a) {
    for (int b = a + 1; b < cfg.enterprises; ++b) {
      model_.AddIntermediateCollection(EnterpriseSet{
          static_cast<EnterpriseId>(a), static_cast<EnterpriseId>(b)});
    }
  }
  for (int e = 0; e < cfg.enterprises; ++e) {
    peers_.push_back(std::make_unique<FabricPeer>(
        env_.get(), this, &model_, static_cast<EnterpriseId>(e)));
  }
  for (int i = 0; i < cfg.orderers; ++i) {
    orderers_.push_back(
        std::make_unique<FabricOrderer>(env_.get(), this, i));
  }
}

FabricSystem::~FabricSystem() = default;

NodeId FabricSystem::leader_id() const { return orderers_[0]->id(); }

std::vector<NodeId> FabricSystem::peer_ids() const {
  std::vector<NodeId> out;
  for (const auto& p : peers_) out.push_back(p->id());
  return out;
}

FabricClient* FabricSystem::AddClient(WorkloadParams wl, double rate_tps) {
  // Reuse the SmallBank generator with a single-shard directory view.
  client_dir_.params.num_enterprises = cfg_.enterprises;
  client_dir_.params.shards_per_enterprise = 1;
  auto workload = std::make_unique<SmallBankWorkload>(
      &model_, &client_dir_, wl, Rng(cfg_.seed * 97 + clients_.size() + 11));
  clients_.push_back(std::make_unique<FabricClient>(
      env_.get(), this, std::move(workload), rate_tps,
      cfg_.seed + 1000 + clients_.size()));
  return clients_.back().get();
}

uint64_t FabricSystem::TotalMeasuredCommits() const {
  uint64_t t = 0;
  for (const auto& c : clients_) t += c->measured_commits();
  return t;
}

uint64_t FabricSystem::TotalCommitted() const {
  uint64_t t = 0;
  for (const auto& c : clients_) t += c->committed();
  return t;
}

uint64_t FabricSystem::TotalInvalidated() const {
  uint64_t t = 0;
  for (const auto& c : clients_) t += c->invalidated();
  return t;
}

Histogram FabricSystem::MergedLatencies() const {
  Histogram h;
  for (const auto& c : clients_) h.Merge(c->latencies());
  return h;
}

// -------------------------------------------------------------- FabricPeer

FabricPeer::FabricPeer(Env* env, FabricSystem* sys, const DataModel* model,
                       EnterpriseId enterprise)
    : Actor(env, "fabric-peer/" + std::to_string(enterprise)),
      sys_(sys),
      model_(model),
      enterprise_(enterprise) {
  if (sys_->config().peer_catchup_period_us > 0) {
    // Stagger the polls per peer so they never land on the same tick.
    StartTimer(sys_->config().peer_catchup_period_us + enterprise,
               kTagCatchup, 0);
  }
}

void FabricPeer::OnTimer(uint64_t tag, uint64_t /*payload*/) {
  if (tag != kTagCatchup) return;
  RequestMissingBlocks();
  StartTimer(sys_->config().peer_catchup_period_us + enterprise_,
             kTagCatchup, 0);
}

void FabricPeer::RequestMissingBlocks() {
  auto req = std::make_shared<BlockFetchReqMsg>();
  req->from_block = next_block_;
  Send(sys_->leader_id(), req);
}

SimTime FabricPeer::CostOf(const Message& msg) const {
  switch (msg.type) {
    case MsgType::kEndorseReq:
      return env()->costs.base_proc_us + env()->costs.endorse_tx_us;
    case MsgType::kOrderedBlock: {
      // Per-transaction validation cost; private transactions of other
      // enterprises only cost hashing.
      const auto& m = static_cast<const OrderedBlockMsg&>(msg);
      SimTime total = env()->costs.base_proc_us;
      for (const auto& etx : *m.txs) {
        bool member = etx.tx.collection.members.Contains(enterprise_);
        total += member ? env()->costs.validate_tx_us
                        : env()->costs.hash_tx_us;
      }
      return total;
    }
    default:
      return Actor::CostOf(msg);
  }
}

void FabricPeer::HandleEndorse(NodeId from, const EndorseReqMsg& m) {
  if (!env()->keystore.Verify(m.tx.client_sig, m.tx.Digest())) {
    env()->metrics.Inc("fabric.bad_request_sig");
    return;
  }
  auto resp = std::make_shared<EndorseRespMsg>();
  resp->tx_digest = m.tx.Digest();
  resp->client = m.tx.client;
  resp->client_ts = m.tx.client_ts;
  // Simulate: read current committed versions, produce the write set.
  uint16_t coll = m.tx.collection.members.mask();
  for (const auto& op : m.tx.ops) {
    auto it = state_.find({coll, op.key});
    int64_t val = it == state_.end() ? 0 : it->second.first;
    uint64_t ver = it == state_.end() ? 0 : it->second.second;
    switch (op.kind) {
      case TxOp::Kind::kRead:
      case TxOp::Kind::kReadDep:
        resp->read_set.push_back({op.key, ver});
        break;
      case TxOp::Kind::kWrite:
        resp->write_set.push_back({op.key, op.value});
        break;
      case TxOp::Kind::kAdd:
        resp->read_set.push_back({op.key, ver});
        resp->write_set.push_back({op.key, val + op.value});
        break;
    }
  }
  resp->sig = env()->keystore.Sign(id(), resp->tx_digest);
  resp->wire_bytes =
      96 + static_cast<uint32_t>(resp->read_set.size() * 16 +
                                 resp->write_set.size() * 16);
  Send(from, resp);
}

std::vector<size_t> FabricPeer::ReorderBlock(
    const std::vector<EndorsedTx>& txs, std::vector<bool>* early_abort) const {
  // Fabric++ (Sharma et al., SIGMOD'19), simplified: within a block,
  // transactions that only *read* a key are ordered before transactions
  // that *write* it (removing r-w conflicts), and of several writers of
  // the same key all but the first are early-aborted (w-w conflict).
  size_t n = txs.size();
  std::vector<size_t> order(n);
  early_abort->assign(n, false);
  std::map<std::pair<uint16_t, uint64_t>, size_t> first_writer;
  for (size_t i = 0; i < n; ++i) {
    uint16_t coll = txs[i].tx.collection.members.mask();
    for (const auto& [k, v] : txs[i].write_set) {
      auto key = std::make_pair(coll, k);
      auto it = first_writer.find(key);
      if (it == first_writer.end()) {
        first_writer.emplace(key, i);
      } else {
        (*early_abort)[i] = true;  // w-w conflict: later writer aborts
        break;
      }
    }
  }
  // Readers-before-writers: stable partition by "has writes".
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    if (txs[i].write_set.empty()) order[pos++] = i;
  }
  for (size_t i = 0; i < n; ++i) {
    if (!txs[i].write_set.empty()) order[pos++] = i;
  }
  return order;
}

void FabricPeer::HandleBlock(const MessageRef& msg) {
  const auto& m = *msg->As<OrderedBlockMsg>();
  // The ordering service semantically delivers a stream: blocks apply in
  // block-number order exactly once. Duplicates and reorderings injected
  // by the datagram transport model are absorbed here.
  if (m.block_no < next_block_ || block_log_.count(m.block_no) ||
      held_blocks_.count(m.block_no)) {
    env()->metrics.Inc("fabric.duplicate_block");
    return;
  }
  held_blocks_[m.block_no] =
      std::static_pointer_cast<const OrderedBlockMsg>(msg);
  while (true) {
    auto it = held_blocks_.find(next_block_);
    if (it == held_blocks_.end()) break;
    std::shared_ptr<const OrderedBlockMsg> blk = it->second;
    held_blocks_.erase(it);
    ++next_block_;
    ApplyBlock(*blk);
  }
  if (!held_blocks_.empty() && sys_->config().peer_catchup_period_us > 0) {
    // A successor arrived but its predecessor did not. Give a merely
    // reordered predecessor one more arrival to show up; a gap that
    // persists means the block was lost — fetch it now rather than on
    // the next poll.
    if (had_gap_) {
      env()->metrics.Inc("fabric.gap_fetch");
      RequestMissingBlocks();
    }
    had_gap_ = true;
  } else {
    had_gap_ = false;
  }
}

void FabricPeer::ApplyBlock(const OrderedBlockMsg& m) {
  const auto& txs = *m.txs;
  // Content digest over the ordered transactions (id + read/write sets):
  // what all peers must agree on per block number.
  {
    Sha256 h;
    for (const auto& etx : txs) {
      Sha256Digest d = etx.tx.Digest();
      h.Update(d.bytes.data(), d.bytes.size());
      for (const auto& r : etx.read_set) {
        h.Update(&r.key, sizeof(r.key));
        h.Update(&r.version, sizeof(r.version));
      }
      for (const auto& [k, v] : etx.write_set) {
        h.Update(&k, sizeof(k));
        h.Update(&v, sizeof(v));
      }
    }
    block_log_[m.block_no] = h.Finalize();
  }
  std::vector<size_t> order(txs.size());
  std::vector<bool> early_abort(txs.size(), false);
  if (sys_->config().variant == FabricVariant::kFabricPP) {
    order = ReorderBlock(txs, &early_abort);
  } else {
    for (size_t i = 0; i < txs.size(); ++i) order[i] = i;
  }

  auto done = std::make_shared<ValidateDoneMsg>();
  done->block_no = m.block_no;

  for (size_t oi = 0; oi < order.size(); ++oi) {
    size_t i = order[oi];
    const EndorsedTx& etx = txs[i];
    bool member = etx.tx.collection.members.Contains(enterprise_);
    if (!member) {
      // Private data collection of other enterprises: this peer stores
      // only the hash on its copy of the single global ledger.
      hashed_txs_++;
      continue;
    }
    bool valid = !early_abort[i];
    uint16_t coll = etx.tx.collection.members.mask();
    if (valid) {
      // MVCC validation: every read version must still be current.
      for (const auto& r : etx.read_set) {
        auto it = state_.find({coll, r.key});
        uint64_t cur = it == state_.end() ? 0 : it->second.second;
        if (cur != r.version) {
          valid = false;
          break;
        }
      }
    }
    if (valid) {
      for (const auto& [k, v] : etx.write_set) {
        state_[{coll, k}] = {v, m.block_no};
      }
      if (!committed_ids_.insert({etx.tx.client, etx.tx.client_ts}).second) {
        env()->metrics.Inc("fabric.safety.double_commit");
      }
      valid_txs_++;
    } else {
      invalid_txs_++;
      env()->metrics.Inc("fabric.invalidated");
    }
    // Only the client's own enterprise peer notifies it (one
    // notification per transaction).
    if (etx.tx.initiator == enterprise_) {
      done->outcomes.emplace_back(etx.tx.client, etx.tx.client_ts, valid);
    }
  }
  if (!done->outcomes.empty()) {
    done->wire_bytes =
        64 + static_cast<uint32_t>(done->outcomes.size() * 16);
    std::set<NodeId> machines;
    for (const auto& [c, ts, ok] : done->outcomes) machines.insert(c);
    for (NodeId c : machines) Send(c, done);
  }
}

void FabricPeer::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kEndorseReq:
      HandleEndorse(from, *msg->As<EndorseReqMsg>());
      break;
    case MsgType::kOrderedBlock:
      HandleBlock(msg);
      break;
    default:
      break;
  }
}

// ----------------------------------------------------------- FabricOrderer

FabricOrderer::FabricOrderer(Env* env, FabricSystem* sys, int index)
    : Actor(env, "fabric-orderer/" + std::to_string(index)),
      sys_(sys),
      index_(index),
      batcher_(
          BatcherConfig{sys->config().batch_size,
                        sys->config().batch_timeout_us},
          [this](SimTime delay, uint64_t token) {
            StartTimer(delay, kTagBatch, token);
          },
          [this](const int& /*channel*/, std::vector<EndorsedTx> txs,
                 BatchClose /*why*/) { CloseBatch(std::move(txs)); }) {}

bool FabricOrderer::IsLeader() const { return index_ == 0; }

bool FabricOrderer::IsStale(const EndorsedTx& etx) const {
  uint16_t coll = etx.tx.collection.members.mask();
  for (const auto& r : etx.read_set) {
    auto it = last_write_block_.find({coll, r.key});
    if (it != last_write_block_.end() && it->second > r.version) {
      return true;
    }
  }
  return false;
}

SimTime FabricOrderer::CostOf(const Message& msg) const {
  if (msg.type == MsgType::kOrderSubmit) {
    // Per-transaction ordering cost — the Fabric bottleneck. FastFabric
    // only handles the transaction hash; Fabric++ early-aborts stale
    // submissions with a cheap version check before full processing.
    if (sys_->config().variant == FabricVariant::kFabricPP && IsLeader() &&
        IsStale(static_cast<const OrderSubmitMsg&>(msg).etx)) {
      return env()->costs.base_proc_us + 6;
    }
    SimTime per_tx =
        sys_->config().variant == FabricVariant::kFastFabric
            ? env()->costs.fastfabric_order_tx_us
            : env()->costs.fabric_order_tx_us;
    return env()->costs.base_proc_us + per_tx;
  }
  return Actor::CostOf(msg);
}

void FabricOrderer::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kOrderSubmit: {
      if (!IsLeader()) return;  // clients submit to the leader
      const EndorsedTx& etx = msg->As<OrderSubmitMsg>()->etx;
      if (!seen_submits_.insert({etx.tx.client, etx.tx.client_ts}).second) {
        env()->metrics.Inc("fabric.duplicate_submit");
        return;
      }
      if (sys_->config().variant == FabricVariant::kFabricPP &&
          IsStale(msg->As<OrderSubmitMsg>()->etx)) {
        early_aborted_++;
        env()->metrics.Inc("fabric.early_aborted");
        return;
      }
      batcher_.Add(0, msg->As<OrderSubmitMsg>()->etx);
      break;
    }
    case MsgType::kRaftAppend: {
      const auto& m = *msg->As<RaftAppendMsg>();
      auto resp = std::make_shared<RaftAppendRespMsg>();
      resp->term = m.term;
      resp->index = m.index;
      Send(from, resp);
      break;
    }
    case MsgType::kRaftAppendResp: {
      const auto& m = *msg->As<RaftAppendRespMsg>();
      if (!IsLeader() || delivered_.count(m.index)) break;
      auto& acks = acks_[m.index];
      acks.insert(from);
      // Majority = leader + floor(n/2) followers.
      if (acks.size() + 1 >
          static_cast<size_t>(sys_->config().orderers) / 2) {
        delivered_.insert(m.index);
        auto blk = std::make_shared<OrderedBlockMsg>();
        blk->block_no = m.index;
        blk->txs = inflight_[m.index];
        uint32_t bytes = 128;
        for (const auto& etx : *blk->txs) bytes += etx.tx.WireSize() + 64;
        blk->wire_bytes = bytes;
        ordered_txs_ += blk->txs->size();
        block_store_[m.index] = blk->txs;
        for (NodeId p : sys_->peer_ids()) Send(p, blk);
        inflight_.erase(m.index);
        acks_.erase(m.index);
      }
      break;
    }
    case MsgType::kBlockFetchReq:
      HandleBlockFetch(from, *msg->As<BlockFetchReqMsg>());
      break;
    default:
      break;
  }
}

void FabricOrderer::HandleBlockFetch(NodeId from, const BlockFetchReqMsg& m) {
  // The fetch doubles as a frontier report: once every peer has
  // reported, blocks below the slowest frontier can never be fetched
  // again and are dropped from the store.
  peer_frontier_[from] = std::max(peer_frontier_[from], m.from_block);
  if (peer_frontier_.size() >= sys_->peers().size()) {
    uint64_t low = UINT64_MAX;
    for (const auto& [peer, frontier] : peer_frontier_) {
      low = std::min(low, frontier);
    }
    block_store_.erase(block_store_.begin(), block_store_.lower_bound(low));
  }
  // Resend up to 8 retained blocks per request; the peer's next fetch
  // (gap-triggered or periodic) walks further. Silence when the peer is
  // already current keeps the steady-state cost at one request message.
  int sent = 0;
  for (auto it = block_store_.lower_bound(m.from_block);
       it != block_store_.end() && sent < 8; ++it, ++sent) {
    auto blk = std::make_shared<OrderedBlockMsg>();
    blk->block_no = it->first;
    blk->txs = it->second;
    uint32_t bytes = 128;
    for (const auto& etx : *blk->txs) bytes += etx.tx.WireSize() + 64;
    blk->wire_bytes = bytes;
    Send(from, blk);
  }
  if (sent > 0) env()->metrics.Inc("fabric.blocks_refetched", sent);
}

void FabricOrderer::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag == kTagRaftRetry) {
    if (delivered_.count(payload) || !inflight_.count(payload)) return;
    env()->metrics.Inc("fabric.raft_retry");
    SendAppend(payload);
    StartTimer(10 * sys_->config().batch_timeout_us, kTagRaftRetry,
               payload);
    return;
  }
  if (tag != kTagBatch) return;
  batcher_.OnTimer(payload);
}

void FabricOrderer::SendAppend(uint64_t index) {
  auto it = inflight_.find(index);
  if (it == inflight_.end()) return;
  auto append = std::make_shared<RaftAppendMsg>();
  append->term = 1;
  append->index = index;
  append->txs = it->second;
  uint32_t bytes = 64;
  for (const auto& etx : *append->txs) bytes += etx.tx.WireSize() + 64;
  append->wire_bytes = bytes;
  for (int i = 0; i < sys_->config().orderers; ++i) {
    if (i != index_) Send(sys_->orderer(i)->id(), append);
  }
}

void FabricOrderer::CloseBatch(std::vector<EndorsedTx> batch) {
  auto txs = std::make_shared<std::vector<EndorsedTx>>(std::move(batch));
  uint64_t index = next_block_++;
  if (sys_->config().variant == FabricVariant::kFabricPP) {
    for (const auto& etx : *txs) {
      uint16_t coll = etx.tx.collection.members.mask();
      for (const auto& [k, v] : etx.write_set) {
        last_write_block_[{coll, k}] = index;
      }
    }
  }
  inflight_[index] = txs;
  SendAppend(index);
  if (sys_->config().orderers > 1) {
    StartTimer(10 * sys_->config().batch_timeout_us, kTagRaftRetry, index);
  }
  // Single-orderer degenerate case delivers immediately.
  if (sys_->config().orderers == 1) {
    auto blk = std::make_shared<OrderedBlockMsg>();
    blk->block_no = index;
    blk->txs = txs;
    ordered_txs_ += txs->size();
    block_store_[index] = txs;
    for (NodeId p : sys_->peer_ids()) Send(p, blk);
    delivered_.insert(index);
    inflight_.erase(index);
  }
}

// ------------------------------------------------------------ FabricClient

FabricClient::FabricClient(Env* env, FabricSystem* sys,
                           std::unique_ptr<SmallBankWorkload> workload,
                           double rate_tps, uint64_t seed)
    : Actor(env, "fabric-client"),
      sys_(sys),
      workload_(std::move(workload)),
      rate_tps_(rate_tps),
      rng_(seed) {}

void FabricClient::Start(SimTime start, SimTime stop, SimTime measure_from,
                         SimTime measure_to) {
  stop_at_ = stop;
  measure_from_ = measure_from;
  measure_to_ = measure_to;
  StartTimer(start, kTagIssue, 0);
}

void FabricClient::OnTimer(uint64_t tag, uint64_t /*payload*/) {
  if (tag != kTagIssue) return;
  if (now() >= stop_at_) return;
  IssueNext();
  StartTimer(static_cast<SimTime>(rng_.Exponential(1e6 / rate_tps_)) + 1,
             kTagIssue, 0);
}

void FabricClient::IssueNext() {
  uint64_t ts = next_ts_++;
  Transaction tx = workload_->Next(id(), ts);
  tx.shards = {0};  // single channel, no sharding
  tx.client_sig = env()->keystore.Sign(id(), tx.Digest());

  PendingTx p;
  p.sent_at = now();
  p.etx.tx = tx;
  // Endorsement policy: every involved enterprise endorses.
  auto members = tx.collection.members.Members();
  p.endorsements_needed = members.size();
  pending_.emplace(ts, std::move(p));
  issued_++;

  auto req = std::make_shared<EndorseReqMsg>();
  req->tx = tx;
  req->wire_bytes = 64 + tx.WireSize();
  for (EnterpriseId e : members) {
    Send(sys_->peer(e)->id(), req);
  }
}

void FabricClient::OnMessage(NodeId /*from*/, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kEndorseResp: {
      const auto& m = *msg->As<EndorseRespMsg>();
      auto it = pending_.find(m.client_ts);
      if (it == pending_.end() || it->second.submitted) break;
      PendingTx& p = it->second;
      // A duplicated response must not double-count an endorser.
      bool have = false;
      for (const auto& e : p.etx.endorsements) {
        if (e.signer == m.sig.signer) {
          have = true;
          break;
        }
      }
      if (have) break;
      p.etx.endorsements.push_back(m.sig);
      if (p.etx.read_set.empty() && p.etx.write_set.empty()) {
        p.etx.read_set = m.read_set;
        p.etx.write_set = m.write_set;
      }
      if (p.etx.endorsements.size() >= p.endorsements_needed) {
        p.submitted = true;
        auto submit = std::make_shared<OrderSubmitMsg>();
        submit->etx = p.etx;
        submit->hash_only =
            sys_->config().variant == FabricVariant::kFastFabric;
        submit->wire_bytes =
            submit->hash_only
                ? 96
                : 128 + p.etx.tx.WireSize() +
                      static_cast<uint32_t>(p.etx.read_set.size() * 16 +
                                            p.etx.write_set.size() * 16);
        Send(sys_->leader_id(), submit);
      }
      break;
    }
    case MsgType::kValidateDone: {
      const auto& m = *msg->As<ValidateDoneMsg>();
      for (const auto& [client, ts, valid] : m.outcomes) {
        if (client != id()) continue;
        auto it = pending_.find(ts);
        if (it == pending_.end() || it->second.done) continue;
        it->second.done = true;
        if (valid) {
          committed_++;
          if (now() >= measure_from_ && now() < measure_to_) {
            measured_commits_++;
            latencies_.Add(now() - it->second.sent_at);
          }
        } else {
          invalidated_++;
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace qanaat
