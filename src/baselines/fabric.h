#ifndef QANAAT_BASELINES_FABRIC_H_
#define QANAAT_BASELINES_FABRIC_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baselines/fabric_messages.h"
#include "collections/data_model.h"
#include "consensus/batcher.h"
#include "common/histogram.h"
#include "sim/network.h"
#include "workload/smallbank.h"

namespace qanaat {

/// Which Hyperledger Fabric variant a baseline deployment models (§5).
enum class FabricVariant : uint8_t {
  kFabric = 0,     // v2.2, execute-order-validate, Raft ordering
  kFabricPP = 1,   // Fabric++: intra-block reordering + early abort
  kFastFabric = 2, // FastFabric: hash-to-orderer, separated storage
};

struct FabricConfig {
  int enterprises = 4;
  FabricVariant variant = FabricVariant::kFabric;
  int orderers = 3;  // Raft ordering service
  int batch_size = 100;
  SimTime batch_timeout_us = 2000;
  uint64_t seed = 1;
  /// Peer block catch-up: peers poll the ordering service for blocks at
  /// or above their application frontier every `peer_catchup_period_us`
  /// (and immediately on detecting a gap in the delivered stream), so a
  /// block lost on the wire no longer wedges the peer forever. 0
  /// disables catch-up (the pre-state-transfer behavior).
  SimTime peer_catchup_period_us = 100 * kMillisecond;
};

class FabricPeer;
class FabricOrderer;
class FabricClient;

/// A single-channel Hyperledger Fabric deployment model: one committing
/// (and endorsing) peer per enterprise and a Raft ordering service shared
/// by everyone. Models exactly the structural properties the paper's
/// comparison rests on:
///  * every transaction — including the hash of private-collection
///    transactions — passes through one ordering service (the
///    bottleneck, §5.1) and every peer's ledger;
///  * execute-order-validate concurrency: endorsement pins read
///    versions, MVCC validation at commit invalidates stale reads
///    (the contention collapse of §5.7);
///  * Fabric++ reorders transactions within a block to resolve r-w
///    conflicts and early-aborts w-w conflicts;
///  * FastFabric submits only transaction hashes to ordering and
///    pipelines commit on separated storage.
class FabricSystem {
 public:
  explicit FabricSystem(FabricConfig cfg);
  ~FabricSystem();

  Env& env() { return *env_; }
  Network& net() { return *net_; }
  const FabricConfig& config() const { return cfg_; }
  const DataModel& model() const { return model_; }

  FabricClient* AddClient(WorkloadParams wl, double rate_tps);

  FabricPeer* peer(int enterprise) { return peers_[enterprise].get(); }
  FabricOrderer* orderer(int i) { return orderers_[i].get(); }
  NodeId leader_id() const;
  std::vector<NodeId> peer_ids() const;

  uint64_t TotalMeasuredCommits() const;
  /// Committed transactions over the whole run (not just the window).
  uint64_t TotalCommitted() const;
  uint64_t TotalInvalidated() const;
  Histogram MergedLatencies() const;

  const std::vector<std::unique_ptr<FabricPeer>>& peers() const {
    return peers_;
  }
  const std::vector<std::unique_ptr<FabricClient>>& clients() const {
    return clients_;
  }
  int orderer_count() const { return static_cast<int>(orderers_.size()); }

 private:
  FabricConfig cfg_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<Network> net_;
  DataModel model_;
  Directory client_dir_;  // single-shard view for the workload generator
  std::vector<std::unique_ptr<FabricPeer>> peers_;
  std::vector<std::unique_ptr<FabricOrderer>> orderers_;
  std::vector<std::unique_ptr<FabricClient>> clients_;
};

/// Committing + endorsing peer of one enterprise.
class FabricPeer : public Actor {
 public:
  FabricPeer(Env* env, FabricSystem* sys, const DataModel* model,
             EnterpriseId enterprise);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;

  uint64_t valid_txs() const { return valid_txs_; }
  uint64_t invalid_txs() const { return invalid_txs_; }
  uint64_t hashed_txs() const { return hashed_txs_; }

  /// Content digest of every block this peer applied, by block number —
  /// the cross-peer agreement surface the chaos auditor checks.
  const std::map<uint64_t, Sha256Digest>& block_log() const {
    return block_log_;
  }
  /// Next block number this peer will apply (applied prefix is gapless).
  uint64_t next_block_to_apply() const { return next_block_; }

 protected:
  SimTime CostOf(const Message& msg) const override;

 private:
  static constexpr uint64_t kTagCatchup = 1;

  void HandleEndorse(NodeId from, const EndorseReqMsg& m);
  /// Admission: the ordering service's stream is consumed in block-number
  /// order. Duplicates are dropped and out-of-order deliveries (datagram
  /// transport artifacts under fault injection) are buffered until their
  /// predecessors arrive. A buffered successor whose predecessor was
  /// lost (not merely reordered) triggers an immediate catch-up fetch.
  void HandleBlock(const MessageRef& msg);
  /// Asks the ordering service for blocks >= next_block_. Sent on gap
  /// detection and on the periodic poll; the orderer answers only when
  /// it has something newer, so a current peer costs one tiny message
  /// per period.
  void RequestMissingBlocks();
  void ApplyBlock(const OrderedBlockMsg& m);
  /// Fabric++ intra-block reordering: returns the validation order and
  /// flags transactions early-aborted on w-w conflicts.
  std::vector<size_t> ReorderBlock(const std::vector<EndorsedTx>& txs,
                                   std::vector<bool>* early_abort) const;

  FabricSystem* sys_;
  const DataModel* model_;
  EnterpriseId enterprise_;
  // Committed value/version per (collection, key).
  std::map<std::pair<uint16_t, uint64_t>, std::pair<int64_t, uint64_t>>
      state_;
  // In-order admission of ordered blocks (see HandleBlock).
  uint64_t next_block_ = 1;
  std::map<uint64_t, std::shared_ptr<const OrderedBlockMsg>> held_blocks_;
  /// Grace marker for gap-triggered fetches: a predecessor that is
  /// merely reordered arrives within a delivery or two, so only a gap
  /// that persists across consecutive block arrivals triggers an
  /// immediate fetch (the periodic poll is the backstop).
  bool had_gap_ = false;
  std::map<uint64_t, Sha256Digest> block_log_;
  // Valid-committed transaction ids; a second valid commit of the same id
  // is a safety violation surfaced via the fabric.safety.double_commit
  // metric.
  std::set<std::pair<NodeId, uint64_t>> committed_ids_;
  uint64_t valid_txs_ = 0;
  uint64_t invalid_txs_ = 0;
  uint64_t hashed_txs_ = 0;
};

/// One node of the Raft ordering service. Node 0 is the leader; the
/// leader batches endorsed transactions, replicates the batch to a
/// majority of orderers, then delivers the block to every peer.
class FabricOrderer : public Actor {
 public:
  FabricOrderer(Env* env, FabricSystem* sys, int index);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;
  void OnCrash() override { batcher_.Reset(); }

  uint64_t ordered_txs() const { return ordered_txs_; }
  uint64_t early_aborted() const { return early_aborted_; }
  bool IsLeader() const;

 protected:
  SimTime CostOf(const Message& msg) const override;

 private:
  static constexpr uint64_t kTagBatch = 1;
  /// Raft append retransmission: the leader re-sends AppendEntries for a
  /// block that has not reached a majority yet. Without it one lost
  /// append under network-wide loss wedges the ordering service forever
  /// (that block never delivers, and peers hold everything after it).
  static constexpr uint64_t kTagRaftRetry = 2;
  /// Batcher flush sink: cuts the block and replicates it via Raft.
  void CloseBatch(std::vector<EndorsedTx> txs);
  void SendAppend(uint64_t index);

  /// Serves a peer's catch-up fetch from the retained block log.
  void HandleBlockFetch(NodeId from, const BlockFetchReqMsg& m);

  /// Request dedup on the leader: at-most-once ordering per (client, ts)
  /// even when the transport duplicates submissions.
  std::set<std::pair<NodeId, uint64_t>> seen_submits_;
  /// Delivered blocks retained for peer catch-up (the ordering service's
  /// block store; peers fetch missed ranges from here). Each periodic
  /// fetch reports the peer's application frontier, so the store is
  /// trimmed below the slowest peer once every peer has reported —
  /// bounded retention instead of the whole ordered history.
  std::map<uint64_t, std::shared_ptr<const std::vector<EndorsedTx>>>
      block_store_;
  std::map<NodeId, uint64_t> peer_frontier_;
  /// Fabric++ early abort: the orderer tracks the last block that wrote
  /// each key; a submission whose read versions are already stale is
  /// dropped at a fraction of the ordering cost, freeing capacity for
  /// fresh transactions (the mechanism behind §5.7's 58%-vs-91% gap).
  bool IsStale(const EndorsedTx& etx) const;

  FabricSystem* sys_;
  int index_;
  /// Block cutting (size- or timeout-triggered), shared with Qanaat's
  /// ordering layer so batching comparisons stay apples-to-apples. The
  /// single channel is one flow (key 0).
  Batcher<EndorsedTx, int> batcher_;
  std::map<std::pair<uint16_t, uint64_t>, uint64_t> last_write_block_;
  uint64_t early_aborted_ = 0;
  uint64_t next_block_ = 1;
  // Replication bookkeeping: block index -> acks.
  std::map<uint64_t, std::set<NodeId>> acks_;
  std::map<uint64_t, std::shared_ptr<const std::vector<EndorsedTx>>>
      inflight_;
  std::set<uint64_t> delivered_;
  uint64_t ordered_txs_ = 0;
};

/// Open-loop Fabric client machine: endorse -> submit -> await the
/// validation outcome from its enterprise's peer. Invalidated
/// transactions count as failed (they do not contribute throughput).
class FabricClient : public Actor {
 public:
  FabricClient(Env* env, FabricSystem* sys,
               std::unique_ptr<SmallBankWorkload> workload, double rate_tps,
               uint64_t seed);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;

  void Start(SimTime start, SimTime stop, SimTime measure_from,
             SimTime measure_to);

  uint64_t issued() const { return issued_; }
  uint64_t committed() const { return committed_; }
  uint64_t invalidated() const { return invalidated_; }
  uint64_t measured_commits() const { return measured_commits_; }
  const Histogram& latencies() const { return latencies_; }

 private:
  struct PendingTx {
    SimTime sent_at = 0;
    EndorsedTx etx;
    size_t endorsements_needed = 0;
    bool submitted = false;
    bool done = false;
  };
  static constexpr uint64_t kTagIssue = 1;

  void IssueNext();

  FabricSystem* sys_;
  std::unique_ptr<SmallBankWorkload> workload_;
  double rate_tps_;
  Rng rng_;
  SimTime stop_at_ = 0, measure_from_ = 0, measure_to_ = 0;
  uint64_t next_ts_ = 1;
  std::map<uint64_t, PendingTx> pending_;
  uint64_t issued_ = 0, committed_ = 0, invalidated_ = 0;
  uint64_t measured_commits_ = 0;
  Histogram latencies_;

 protected:
  /// Client machines aggregate many hosts; token message cost.
  SimTime CostOf(const Message& /*msg*/) const override { return 2; }
};

}  // namespace qanaat

#endif  // QANAAT_BASELINES_FABRIC_H_
