#ifndef QANAAT_BASELINES_FABRIC_MESSAGES_H_
#define QANAAT_BASELINES_FABRIC_MESSAGES_H_

#include <vector>

#include "collections/collection_id.h"
#include "crypto/signer.h"
#include "ledger/transaction.h"
#include "sim/message.h"

namespace qanaat {

/// Read-set entry of an endorsed transaction: (key, committed version at
/// endorsement time). Fabric's MVCC validation re-checks these at commit.
struct ReadSetEntry {
  uint64_t key = 0;
  uint64_t version = 0;
};

/// A fully endorsed transaction proposal, as submitted to ordering.
struct EndorsedTx {
  Transaction tx;
  std::vector<ReadSetEntry> read_set;
  std::vector<std::pair<uint64_t, int64_t>> write_set;
  std::vector<Signature> endorsements;
  bool IsPrivate(int enterprises) const {
    return static_cast<int>(tx.collection.members.size()) < enterprises;
  }
};

/// Client -> endorsing peer.
struct EndorseReqMsg : Message {
  EndorseReqMsg() : Message(MsgType::kEndorseReq) {}
  Transaction tx;
};

/// Endorsing peer -> client: simulated read/write sets + signature.
struct EndorseRespMsg : Message {
  EndorseRespMsg() : Message(MsgType::kEndorseResp) {}
  Sha256Digest tx_digest;
  NodeId client = kInvalidNode;
  uint64_t client_ts = 0;
  std::vector<ReadSetEntry> read_set;
  std::vector<std::pair<uint64_t, int64_t>> write_set;
  Signature sig;
};

/// Client -> ordering service leader.
struct OrderSubmitMsg : Message {
  OrderSubmitMsg() : Message(MsgType::kOrderSubmit) {}
  EndorsedTx etx;
  bool hash_only = false;  // FastFabric: orderers see only the hash
};

/// Ordering service -> peers: one ordered block.
struct OrderedBlockMsg : Message {
  OrderedBlockMsg() : Message(MsgType::kOrderedBlock) {}
  uint64_t block_no = 0;
  std::shared_ptr<const std::vector<EndorsedTx>> txs;
};

/// Raft AppendEntries carrying a block between orderers.
struct RaftAppendMsg : Message {
  RaftAppendMsg() : Message(MsgType::kRaftAppend) { sig_verify_ops = 0; }
  uint64_t term = 0;
  uint64_t index = 0;
  std::shared_ptr<const std::vector<EndorsedTx>> txs;
};

struct RaftAppendRespMsg : Message {
  RaftAppendRespMsg() : Message(MsgType::kRaftAppendResp) {
    sig_verify_ops = 0;
  }
  uint64_t term = 0;
  uint64_t index = 0;
  bool ok = true;
};

/// Peer -> ordering service: block catch-up. A peer that detects a gap
/// in the delivered stream (or polls while idle) asks for every retained
/// block at or above `from_block`; the orderer resends them as ordinary
/// OrderedBlockMsg deliveries and stays silent when it has nothing newer.
struct BlockFetchReqMsg : Message {
  BlockFetchReqMsg() : Message(MsgType::kBlockFetchReq) {
    sig_verify_ops = 0;
    wire_bytes = 48;
  }
  uint64_t from_block = 1;
};

/// Committing peer -> client: per-transaction validation outcome.
struct ValidateDoneMsg : Message {
  ValidateDoneMsg() : Message(MsgType::kValidateDone) {}
  uint64_t block_no = 0;
  // (client machine, client ts, valid?)
  std::vector<std::tuple<NodeId, uint64_t, bool>> outcomes;
};

}  // namespace qanaat

#endif  // QANAAT_BASELINES_FABRIC_MESSAGES_H_
