// Wire codecs for the cross-cluster protocol messages (coordinator-based
// §4.3 and flattened §4.4 families). Decoders are defensive: every count
// is bounded by the remaining buffer and a carried block must hash to the
// digest it claims, so arbitrary bytes can never crash or fool a node.

#include "protocols/cross_messages.h"

namespace qanaat {

bool VerifyTransferredLedgerEntry(const Directory& dir, const KeyStore& ks,
                                  const StateReplyMsg::Entry& e) {
  if (e.block == nullptr) return false;
  // Tamper evidence from canonical bytes, bypassing every memoized
  // digest: Merkle root over the transferred transactions, then the
  // block digest the certificate must cover.
  Sha256Digest root = e.block->RecomputeTxRoot();
  if (!(root == e.block->tx_root)) return false;
  if (!(e.cert.block_digest == e.block->RecomputeDigest(root))) {
    return false;
  }
  // Quorum of valid signatures from ordering nodes of the collection's
  // member clusters — the only parties that legitimately certify blocks
  // of this chain (keeps Byzantine execution nodes out of the signer
  // set).
  std::vector<NodeId> allowed;
  for (EnterpriseId ent : e.alpha.collection.members.Members()) {
    for (ShardId s = 0;
         s < static_cast<ShardId>(dir.params.shards_per_enterprise); ++s) {
      const auto& ord = dir.Cluster(dir.ClusterIdOf(ent, s)).ordering;
      allowed.insert(allowed.end(), ord.begin(), ord.end());
    }
  }
  return e.cert.ValidFrom(ks, dir.params.CertQuorum(), allowed);
}

namespace {

void EncodeBlockPtr(Encoder* enc, const BlockPtr& b) {
  enc->PutBool(b != nullptr);
  if (b != nullptr) b->EncodeTo(enc);
}

bool DecodeBlockPtr(Decoder* dec, BlockPtr* out) {
  bool present;
  if (!dec->GetBool(&present)) return false;
  if (!present) {
    out->reset();
    return true;
  }
  auto b = std::make_shared<Block>();
  if (!Block::DecodeFrom(dec, b.get())) return false;
  *out = std::move(b);
  return true;
}

bool DecodeAssignments(Decoder* dec, std::vector<ShardAssignment>* out) {
  uint16_t n;
  if (!dec->GetU16(&n)) return false;
  if (n > dec->remaining()) return false;
  out->resize(n);
  for (auto& a : *out) {
    if (!ShardAssignment::DecodeFrom(dec, &a)) return false;
  }
  return true;
}

}  // namespace

void XPrepareMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(coord_cluster));
  EncodeBlockPtr(enc, block);
  EncodeDigestTo(enc, block_digest);
  coord_cert.EncodeTo(enc);
}

bool XPrepareMsg::DecodeFrom(Decoder* dec, XPrepareMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->coord_cluster = static_cast<int>(c);
  if (!DecodeBlockPtr(dec, &out->block)) return false;
  if (!DecodeDigestFrom(dec, &out->block_digest)) return false;
  if (out->block != nullptr && out->block->Digest() != out->block_digest) {
    return false;
  }
  return CommitCertificate::DecodeFrom(dec, &out->coord_cert);
}

void XPreparedMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(from_cluster));
  EncodeDigestTo(enc, block_digest);
  enc->PutBool(has_assignment);
  if (has_assignment) assignment.EncodeTo(enc);
  enc->PutBool(is_cluster_cert);
  if (is_cluster_cert) cluster_cert.EncodeTo(enc);
  sig.EncodeTo(enc);
  enc->PutBool(abort);
}

bool XPreparedMsg::DecodeFrom(Decoder* dec, XPreparedMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->from_cluster = static_cast<int>(c);
  if (!DecodeDigestFrom(dec, &out->block_digest)) return false;
  if (!dec->GetBool(&out->has_assignment)) return false;
  if (out->has_assignment &&
      !ShardAssignment::DecodeFrom(dec, &out->assignment)) {
    return false;
  }
  if (!dec->GetBool(&out->is_cluster_cert)) return false;
  if (out->is_cluster_cert &&
      !CommitCertificate::DecodeFrom(dec, &out->cluster_cert)) {
    return false;
  }
  return Signature::DecodeFrom(dec, &out->sig) && dec->GetBool(&out->abort);
}

void XCommitMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(coord_cluster));
  EncodeBlockPtr(enc, block);
  EncodeDigestTo(enc, block_digest);
  coord_cert.EncodeTo(enc);
  enc->PutU16(static_cast<uint16_t>(assignments.size()));
  for (const auto& a : assignments) a.EncodeTo(enc);
  enc->PutBool(is_abort);
}

bool XCommitMsg::DecodeFrom(Decoder* dec, XCommitMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->coord_cluster = static_cast<int>(c);
  if (!DecodeBlockPtr(dec, &out->block)) return false;
  if (!DecodeDigestFrom(dec, &out->block_digest)) return false;
  if (out->block != nullptr && out->block->Digest() != out->block_digest) {
    return false;
  }
  return CommitCertificate::DecodeFrom(dec, &out->coord_cert) &&
         DecodeAssignments(dec, &out->assignments) &&
         dec->GetBool(&out->is_abort);
}

void FProposeMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(initiator_cluster));
  EncodeBlockPtr(enc, block);
  EncodeDigestTo(enc, block_digest);
  sig.EncodeTo(enc);
}

bool FProposeMsg::DecodeFrom(Decoder* dec, FProposeMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->initiator_cluster = static_cast<int>(c);
  if (!DecodeBlockPtr(dec, &out->block)) return false;
  if (!DecodeDigestFrom(dec, &out->block_digest)) return false;
  if (out->block != nullptr && out->block->Digest() != out->block_digest) {
    return false;
  }
  return Signature::DecodeFrom(dec, &out->sig);
}

void FAcceptMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(from_cluster));
  EncodeDigestTo(enc, block_digest);
  enc->PutBool(has_assignment);
  if (has_assignment) assignment.EncodeTo(enc);
  sig.EncodeTo(enc);
}

bool FAcceptMsg::DecodeFrom(Decoder* dec, FAcceptMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->from_cluster = static_cast<int>(c);
  if (!DecodeDigestFrom(dec, &out->block_digest)) return false;
  if (!dec->GetBool(&out->has_assignment)) return false;
  if (out->has_assignment &&
      !ShardAssignment::DecodeFrom(dec, &out->assignment)) {
    return false;
  }
  return Signature::DecodeFrom(dec, &out->sig);
}

void FCommitMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(from_cluster));
  EncodeDigestTo(enc, block_digest);
  sig.EncodeTo(enc);
  enc->PutBool(fast_path);
  enc->PutU16(static_cast<uint16_t>(assignments.size()));
  for (const auto& a : assignments) a.EncodeTo(enc);
}

bool FCommitMsg::DecodeFrom(Decoder* dec, FCommitMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->from_cluster = static_cast<int>(c);
  return DecodeDigestFrom(dec, &out->block_digest) &&
         Signature::DecodeFrom(dec, &out->sig) &&
         dec->GetBool(&out->fast_path) &&
         DecodeAssignments(dec, &out->assignments);
}

void QueryMsg::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(from_cluster));
  EncodeDigestTo(enc, block_digest);
  sig.EncodeTo(enc);
}

bool QueryMsg::DecodeFrom(Decoder* dec, QueryMsg* out) {
  uint32_t c;
  if (!dec->GetU32(&c)) return false;
  out->from_cluster = static_cast<int>(c);
  return DecodeDigestFrom(dec, &out->block_digest) &&
         Signature::DecodeFrom(dec, &out->sig);
}

}  // namespace qanaat
