#ifndef QANAAT_PROTOCOLS_CROSS_MESSAGES_H_
#define QANAAT_PROTOCOLS_CROSS_MESSAGES_H_

#include <vector>

#include "collections/tx_id.h"
#include "consensus/messages.h"
#include "crypto/signer.h"
#include "ledger/block.h"
#include "protocols/context.h"
#include "sim/message.h"

namespace qanaat {

/// Shared verifier for self-certifying state-transfer ledger entries,
/// used by both catch-up paths (ordering-side peer sync and the
/// firewall-side executor pull): recompute the Merkle root and block
/// digest from the transferred bytes — bypassing every memoized digest —
/// then require a certificate quorum of valid signatures from ordering
/// nodes of the collection's member clusters, the only parties that
/// legitimately certify blocks of that chain.
bool VerifyTransferredLedgerEntry(const Directory& dir, const KeyStore& ks,
                                  const StateReplyMsg::Entry& e);

/// ⟨PREPARE, ID, d, m⟩_σPc — coordinator cluster → involved clusters
/// (paper §4.3, Fig 5). Carries the block and the coordinator cluster's
/// commit certificate from its internal consensus ("signed by
/// local-majority of the cluster").
struct XPrepareMsg : Message {
  XPrepareMsg() : Message(MsgType::kXPrepare) {}
  int coord_cluster = 0;
  BlockPtr block;                 // with ID assigned by the coordinator
  Sha256Digest block_digest;
  CommitCertificate coord_cert;   // local-majority evidence

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, XPrepareMsg* out);
};

/// ⟨PREPARED, IDc, [IDi,] d⟩ — involved cluster → coordinator primary.
/// From a validating node it carries that node's signature; from a
/// primary that ran internal consensus it carries the cluster's commit
/// certificate and the locally assigned ID.
struct XPreparedMsg : Message {
  XPreparedMsg() : Message(MsgType::kXPrepared) {}
  int from_cluster = 0;
  Sha256Digest block_digest;
  bool has_assignment = false;
  ShardAssignment assignment;     // IDi (+γi) assigned by the cluster
  bool is_cluster_cert = false;   // true: cert below; false: sig below
  CommitCertificate cluster_cert;
  Signature sig;
  bool abort = false;             // involved cluster votes abort

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, XPreparedMsg* out);
};

/// ⟨COMMIT, IDc, IDi, ..., d⟩_σPc — coordinator → every node of all
/// involved clusters. full_id concatenates the per-cluster IDs; carries
/// the prepared evidence for cross-enterprise transactions (§4.3.1).
struct XCommitMsg : Message {
  XCommitMsg() : Message(MsgType::kXCommit) {}
  int coord_cluster = 0;
  BlockPtr block;
  Sha256Digest block_digest;      // digest of the ordered block
  CommitCertificate coord_cert;   // coordinator's commit-decision cert
  /// Per-shard ⟨α, γ⟩ assignments collected during the prepared phase.
  std::vector<ShardAssignment> assignments;
  bool is_abort = false;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, XCommitMsg* out);
};

/// ⟨PROPOSE, ID, d, m⟩_σπ(Pi) — flattened protocols (paper §4.4, Fig 6):
/// initiator primary → every node of all involved clusters.
struct FProposeMsg : Message {
  FProposeMsg() : Message(MsgType::kFPropose) {}
  int initiator_cluster = 0;
  BlockPtr block;
  Sha256Digest block_digest;
  Signature sig;                  // initiator primary's signature

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FProposeMsg* out);
};

/// ⟨ACCEPT, IDi, [IDj,] d, r⟩_σr — flattened accept. From the primary of
/// an involved cluster it also announces IDj for that cluster's shard.
struct FAcceptMsg : Message {
  FAcceptMsg() : Message(MsgType::kFAccept) {}
  int from_cluster = 0;
  Sha256Digest block_digest;
  bool has_assignment = false;
  ShardAssignment assignment;     // IDj (+γj) announced by a primary
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FAcceptMsg* out);
};

/// ⟨COMMIT, IDi, IDj, ..., d, r⟩_σr — flattened commit vote. In the
/// crash-only cross-shard intra-enterprise fast path (§4.4.2) this is
/// instead the initiator primary's commit instruction and carries the
/// collected per-shard assignments.
struct FCommitMsg : Message {
  FCommitMsg() : Message(MsgType::kFCommit) {}
  int from_cluster = 0;
  Sha256Digest block_digest;
  Signature sig;
  bool fast_path = false;
  std::vector<ShardAssignment> assignments;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, FCommitMsg* out);
};

/// commit-query / prepared-query (§4.3.4): a node that timed out waiting
/// for a coordinator/involved cluster asks all nodes of that cluster.
struct QueryMsg : Message {
  explicit QueryMsg(MsgType t) : Message(t) {}
  int from_cluster = 0;
  Sha256Digest block_digest;
  Signature sig;

  void EncodeTo(Encoder* enc) const;
  static bool DecodeFrom(Decoder* dec, QueryMsg* out);
};

}  // namespace qanaat

#endif  // QANAAT_PROTOCOLS_CROSS_MESSAGES_H_
