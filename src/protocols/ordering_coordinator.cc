// Coordinator-based cross-cluster consensus (paper §4.3, Fig 5):
//   prepare   — the coordinator cluster internally orders the block, then
//               sends a cluster-signed PREPARE to every involved cluster;
//   prepared  — involved clusters either validate (same data shard) or
//               internally order (different shard, assigning their own
//               ⟨α, γ⟩) and answer PREPARED;
//   commit    — with prepared evidence from every involved cluster, the
//               coordinator runs internal consensus on the decision and
//               multicasts COMMIT; every cluster appends and executes.

#include <algorithm>

#include "protocols/ordering_node.h"

namespace qanaat {

void OrderingNode::StartCoordinated(const BlockPtr& block) {
  const Transaction& probe = block->txs.front();
  int coord = CoordinatorClusterOf(probe.collection, probe.shards);
  if (coord != cfg_.cluster_id) {
    // We received requests for a flow another cluster coordinates (only
    // possible in non-designated mode); hand the whole batch over.
    for (const auto& tx : block->txs) {
      auto req = std::make_shared<RequestMsg>();
      req->tx = tx;
      req->wire_bytes = 64 + tx.WireSize();
      Send(dir_->Cluster(coord).InitialPrimary(), req);
    }
    return;
  }

  // Concurrency control (§4.3.2): defer blocks that intersect an active
  // cross-shard transaction in >= 2 shards.
  if (probe.shards.size() > 1) {
    if (HasCrossShardConflict(block, probe.shards)) {
      deferred_cross_.push_back(DeferredCross{block});
      PinCross(block);
      env()->metrics.Inc("cross.deferred_conflict");
      return;
    }
    active_cross_[block->Digest()] = probe.shards;
  }

  XState& xs = StateFor(block->Digest());
  xs.block = block;
  xs.involved = InvolvedClusters(probe.collection, probe.shards);
  xs.is_cross_enterprise = probe.collection.members.size() > 1;
  xs.is_cross_shard = probe.shards.size() > 1;
  xs.i_coordinate = true;
  if (!xs.pinned) {
    xs.pinned = true;
    PinCross(block);
  }
  xs.assignments[block->id.alpha.shard] =
      ShardAssignment{cfg_.cluster_id, block->id.alpha, block->id.gamma};
  own_pending_.insert({ShardRef{block->id.alpha.collection,
                                block->id.alpha.shard},
                       block->id.alpha.n});

  ConsensusValue v;
  v.kind = ConsensusValue::Kind::kXOrder;
  v.block = block;
  v.block_digest = xs.digest;
  v.assignments = {xs.assignments[block->id.alpha.shard]};
  engine_->Propose(v);
  ArmCrossTimer(xs.digest);
}

void OrderingNode::OnXOrderDecided(uint64_t slot, const ConsensusValue& v) {
  XState& xs = StateFor(v.block_digest);
  xs.block = v.block;
  const Transaction& probe = v.block->txs.front();
  xs.involved = InvolvedClusters(probe.collection, probe.shards);
  xs.is_cross_enterprise = probe.collection.members.size() > 1;
  xs.is_cross_shard = probe.shards.size() > 1;
  for (const auto& a : v.assignments) {
    xs.assignments[a.alpha.shard] = a;
    if (a.cluster == cfg_.cluster_id) {
      own_pending_.insert(
          {ShardRef{a.alpha.collection, a.alpha.shard}, a.alpha.n});
    }
  }
  int coord = CoordinatorClusterOf(probe.collection, probe.shards);
  xs.i_coordinate = (coord == cfg_.cluster_id);

  if (xs.i_coordinate) {
    // Phase 1 done: the coordinator cluster agreed on the order. The
    // primary sends PREPARE (signed by local-majority: the commit
    // certificate of the internal consensus) to all involved clusters.
    xs.prepared_clusters.insert(cfg_.cluster_id);
    xs.order_cert = MakeCert(slot, v.block_digest,
                             ConsensusValue::Kind::kXOrder);
    xs.order_cert_known = true;
    if (!engine_->IsPrimary()) return;
    auto prep = std::make_shared<XPrepareMsg>();
    prep->coord_cluster = cfg_.cluster_id;
    prep->block = v.block;
    prep->block_digest = v.block_digest;
    prep->coord_cert = xs.order_cert;
    prep->wire_bytes = 160 + v.block->WireSize() + prep->coord_cert.WireSize();
    prep->sig_verify_ops =
        static_cast<uint16_t>(prep->coord_cert.sigs.size());
    for (int c : xs.involved) {
      if (c == cfg_.cluster_id) continue;
      Multicast(dir_->Cluster(c).ordering, prep);
    }
    MaybeStartCommitPhase(xs);  // single-cluster edge case
    return;
  }

  // We are an involved (non-coordinator) cluster that internally ordered
  // the transaction on its own shard. The primary reports PREPARED with
  // the locally assigned ID to the coordinator cluster, and — for
  // cross-shard cross-enterprise transactions — to every cluster that
  // maintains the same data shard as us (§4.3.3).
  xs.order_cert =
      MakeCert(slot, v.block_digest, ConsensusValue::Kind::kXOrder);
  xs.order_cert_known = true;
  if (!engine_->IsPrimary()) return;
  auto pd = std::make_shared<XPreparedMsg>();
  pd->from_cluster = cfg_.cluster_id;
  pd->block_digest = v.block_digest;
  if (!v.assignments.empty()) {
    pd->has_assignment = true;
    pd->assignment = v.assignments.front();
  }
  pd->is_cluster_cert = true;
  pd->cluster_cert = xs.order_cert;
  pd->wire_bytes = 160 + pd->cluster_cert.WireSize();
  pd->sig_verify_ops = static_cast<uint16_t>(pd->cluster_cert.sigs.size());
  Multicast(dir_->Cluster(coord).ordering, pd);
  if (xs.is_cross_enterprise && xs.is_cross_shard) {
    for (int c : xs.involved) {
      const ClusterConfig& cc = dir_->Cluster(c);
      if (c != cfg_.cluster_id && cc.shard == cfg_.shard) {
        Multicast(cc.ordering, pd);
      }
    }
  }
  ArmCrossTimer(v.block_digest);
}

void OrderingNode::HandleXPrepare(NodeId from, const XPrepareMsg& m) {
  const ClusterConfig& coord = dir_->Cluster(m.coord_cluster);
  // Validate provenance: a cluster-signed message from the coordinator.
  if (m.coord_cert.block_digest != m.block_digest ||
      m.block->Digest() != m.block_digest ||
      !m.coord_cert.ValidFrom(env()->keystore, dir_->params.CertQuorum(),
                              coord.ordering)) {
    env()->metrics.Inc("cross.bad_prepare");
    return;
  }
  (void)from;
  XState& xs = StateFor(m.block_digest);
  if (xs.done) return;
  xs.block = m.block;
  const Transaction& probe = m.block->txs.front();
  xs.involved = InvolvedClusters(probe.collection, probe.shards);
  xs.is_cross_enterprise = probe.collection.members.size() > 1;
  xs.is_cross_shard = probe.shards.size() > 1;
  xs.assignments[m.block->id.alpha.shard] = ShardAssignment{
      m.coord_cluster, m.block->id.alpha, m.block->id.gamma};
  ArmCrossTimer(m.block_digest);

  if (coord.shard == cfg_.shard) {
    // Same data shard as the coordinator (intra-shard cross-enterprise,
    // or the coordinator-shard replica in the cross-shard cross-
    // enterprise protocol): validate the ID and answer PREPARED with an
    // individual signature — no internal consensus needed (§4.3.1).
    const LocalPart& alpha = m.block->id.alpha;
    ShardRef ref{alpha.collection, alpha.shard};
    auto nack = [&]() {
      auto msg = std::make_shared<XPreparedMsg>();
      msg->from_cluster = cfg_.cluster_id;
      msg->block_digest = m.block_digest;
      msg->abort = true;
      msg->sig = env()->keystore.Sign(id(), m.block_digest);
      Send(coord.InitialPrimary(), msg);
    };
    if (own_pending_.count({ref, alpha.n})) {
      // Our own cluster has an uncommitted block claiming this sequence
      // number (optimistic mode): refuse, so at most one coordinator can
      // assemble prepared evidence.
      env()->metrics.Inc("cross.conflict_nack");
      nack();
      return;
    }
    auto claim = validated_digest_.find({ref, alpha.n});
    if (claim != validated_digest_.end()) {
      if (claim->second != m.block_digest) {
        // Distinct from the live-rivalry nack above: the slot is already
        // endorsed for another block, so this claim arrived too late.
        env()->metrics.Inc("cross.conflict_stale");
        nack();
        return;
      }
      // Re-vote for the same block (retransmission) falls through.
    } else if (alpha.n <= CommittedHeadOf(alpha.collection)) {
      env()->metrics.Inc("cross.stale_prepare");
      nack();
      return;
    } else {
      validated_digest_[{ref, alpha.n}] = m.block_digest;
    }
    auto pd = std::make_shared<XPreparedMsg>();
    pd->from_cluster = cfg_.cluster_id;
    pd->block_digest = m.block_digest;
    pd->sig = env()->keystore.Sign(id(), m.block_digest);
    Send(coord.InitialPrimary(), pd);
    return;
  }

  // Different shard: only the assigner cluster of this shard runs
  // consensus to assign its own ID (§4.3.2, §4.3.3); other enterprises'
  // clusters wait for the PREPARED of the same-shard assigner cluster.
  if (!IAmShardAssigner(probe.collection, coord.enterprise)) return;
  if (!engine_->IsPrimary()) return;
  if (xs.assign_proposed) {
    // Duplicate / re-driven PREPARE: never assign a second ⟨α, γ⟩ —
    // re-send the PREPARED if the first assignment already decided.
    auto mine = xs.assignments.find(cfg_.shard);
    if (xs.order_cert_known && mine != xs.assignments.end() &&
        mine->second.cluster == cfg_.cluster_id) {
      auto pd = std::make_shared<XPreparedMsg>();
      pd->from_cluster = cfg_.cluster_id;
      pd->block_digest = m.block_digest;
      pd->has_assignment = true;
      pd->assignment = mine->second;
      pd->is_cluster_cert = true;
      pd->cluster_cert = xs.order_cert;
      pd->wire_bytes = 160 + pd->cluster_cert.WireSize();
      pd->sig_verify_ops =
          static_cast<uint16_t>(pd->cluster_cert.sigs.size());
      Multicast(coord.ordering, pd);
    }
    return;
  }
  xs.assign_proposed = true;

  ConsensusValue v;
  v.kind = ConsensusValue::Kind::kXOrder;
  v.block = m.block;
  v.block_digest = m.block_digest;
  ShardAssignment mine;
  mine.cluster = cfg_.cluster_id;
  mine.alpha = NextAlpha(probe.collection);
  mine.gamma = CaptureGamma(probe.collection);
  v.assignments = {mine};
  engine_->Propose(v);
}

void OrderingNode::HandleXPrepared(NodeId from, const XPreparedMsg& m) {
  XState& xs = StateFor(m.block_digest);
  if (xs.done) return;
  const ClusterConfig& sender = dir_->Cluster(m.from_cluster);

  if (m.is_cluster_cert) {
    // A cluster-level PREPARED from a primary that ran internal
    // consensus.
    if (!m.cluster_cert.ValidFrom(env()->keystore,
                                  dir_->params.CertQuorum(),
                                  sender.ordering)) {
      env()->metrics.Inc("cross.bad_prepared_cert");
      return;
    }
    if (m.has_assignment) {
      xs.assignments[m.assignment.alpha.shard] = m.assignment;
    }
    if (m.abort) {
      xs.prepared_clusters.clear();  // force abort path
    }
    xs.prepared_clusters.insert(m.from_cluster);
    xs.prepared_votes[m.from_cluster].insert(from);

    // Cross-shard cross-enterprise: a non-initiator cluster that shares
    // the sender's shard validates the assignment and reports its own
    // PREPARED votes to the coordinator (§4.3.3).
    if (!xs.i_coordinate && xs.block != nullptr &&
        sender.shard == cfg_.shard && sender.enterprise != cfg_.enterprise) {
      int coord = CoordinatorClusterOf(xs.block->txs.front().collection,
                                       AllShards(xs));
      auto pd = std::make_shared<XPreparedMsg>();
      pd->from_cluster = cfg_.cluster_id;
      pd->block_digest = m.block_digest;
      pd->sig = env()->keystore.Sign(id(), m.block_digest);
      Send(dir_->Cluster(coord).InitialPrimary(), pd);
    }
  } else {
    // An individual validation (or abort) vote.
    if (m.sig.signer != from ||
        !env()->keystore.Verify(m.sig, m.block_digest)) {
      env()->metrics.Inc("cross.bad_prepared_sig");
      return;
    }
    if (m.abort) {
      auto& nacks = xs.abort_votes[m.from_cluster];
      nacks.insert(from);
      // f+1 abort votes guarantee one correct node rejected the ID.
      if (xs.i_coordinate && !xs.abort_started && !xs.commit_started &&
          nacks.size() >= static_cast<size_t>(dir_->params.f) + 1 &&
          engine_->IsPrimary()) {
        xs.abort_started = true;
        ConsensusValue v;
        v.kind = ConsensusValue::Kind::kXAbort;
        v.block = xs.block;
        v.block_digest = xs.digest;
        engine_->Propose(v);
      }
      return;
    }
    auto& votes = xs.prepared_votes[m.from_cluster];
    votes.insert(from);
    if (votes.size() >= dir_->params.LocalMajority()) {
      xs.prepared_clusters.insert(m.from_cluster);
    }
  }
  if (xs.i_coordinate) MaybeStartCommitPhase(xs);
}

void OrderingNode::MaybeStartCommitPhase(XState& xs) {
  if (xs.commit_started || xs.abort_started || xs.done ||
      xs.block == nullptr) {
    return;
  }
  if (!engine_->IsPrimary()) return;
  // Every involved cluster must have prepared (the coordinator cluster
  // itself prepared when its internal consensus decided).
  for (int c : xs.involved) {
    if (!xs.prepared_clusters.count(c)) return;
  }
  // All shards must have an assignment.
  const Transaction& probe = xs.block->txs.front();
  for (ShardId s : probe.shards) {
    if (!xs.assignments.count(s)) return;
  }
  xs.commit_started = true;

  ConsensusValue v;
  v.kind = ConsensusValue::Kind::kXCommit;
  v.block = xs.block;
  v.block_digest = xs.digest;
  for (const auto& [shard, a] : xs.assignments) v.assignments.push_back(a);
  engine_->Propose(v);
}

void OrderingNode::OnXCommitDecided(uint64_t slot, const ConsensusValue& v,
                                    bool is_abort) {
  XState& xs = StateFor(v.block_digest);
  if (xs.done) return;
  xs.block = v.block;
  for (const auto& a : v.assignments) {
    xs.assignments[a.alpha.shard] = a;
  }

  CommitCertificate cert =
      MakeCert(slot, v.block_digest,
               is_abort ? ConsensusValue::Kind::kXAbort
                        : ConsensusValue::Kind::kXCommit);

  // The coordinator primary disseminates COMMIT to every node of all
  // involved clusters (§4.3.1).
  if (engine_->IsPrimary()) {
    auto cm = std::make_shared<XCommitMsg>();
    cm->coord_cluster = cfg_.cluster_id;
    cm->block = v.block;
    cm->block_digest = v.block_digest;
    cm->coord_cert = cert;
    cm->is_abort = is_abort;
    for (const auto& a : v.assignments) cm->assignments.push_back(a);
    cm->wire_bytes = 128 + cm->coord_cert.WireSize() +
                     static_cast<uint32_t>(cm->assignments.size()) * 48;
    // §4.3.1: cross-enterprise COMMITs embed the prepared messages from
    // a local-majority of every involved cluster as evidence; receivers
    // verify them (charged via sig_verify_ops) and the wire grows.
    size_t evidence = 0;
    if (xs.is_cross_enterprise) {
      evidence = dir_->params.LocalMajority() *
                 (xs.involved.size() > 0 ? xs.involved.size() - 1 : 0);
      cm->wire_bytes += static_cast<uint32_t>(evidence) * 20;
    }
    cm->sig_verify_ops = static_cast<uint16_t>(
        cm->coord_cert.sigs.size() + evidence);
    if (is_abort) cm->type = MsgType::kXAbort;
    for (int c : xs.involved) {
      if (c == cfg_.cluster_id) continue;
      Multicast(dir_->Cluster(c).ordering, cm);
    }
  }

  RecordOutcome(xs, cert, is_abort);
  if (!is_abort) {
    auto it = xs.assignments.find(cfg_.shard);
    if (it != xs.assignments.end()) {
      CommitBlock(xs.block, cert, it->second.alpha, it->second.gamma,
                  /*reply_from_here=*/true);
    }
  }
  FinishCross(xs, !is_abort);
}

void OrderingNode::HandleXCommit(NodeId /*from*/, const XCommitMsg& m) {
  XState& xs = StateFor(m.block_digest);
  if (xs.done) return;
  const ClusterConfig& coord = dir_->Cluster(m.coord_cluster);
  if (m.coord_cert.block_digest != m.block_digest ||
      !m.coord_cert.ValidFrom(env()->keystore, dir_->params.CertQuorum(),
                              coord.ordering)) {
    env()->metrics.Inc("cross.bad_commit");
    return;
  }
  xs.block = m.block;
  if (m.is_abort) {
    // Release the slot claims so a replacement block can reuse the
    // sequence numbers — but only the aborted block's own endorsements;
    // after a §4.3.5 arbitration a slot entry may already belong to the
    // rival winner.
    for (const auto& a : m.assignments) {
      std::pair<ShardRef, SeqNo> slot{
          ShardRef{a.alpha.collection, a.alpha.shard}, a.alpha.n};
      auto claim = validated_digest_.find(slot);
      if (claim != validated_digest_.end() &&
          claim->second == m.block_digest) {
        validated_digest_.erase(claim);
      }
    }
    RecordOutcome(xs, m.coord_cert, true);
    FinishCross(xs, false);
    return;
  }
  for (const auto& a : m.assignments) {
    xs.assignments[a.alpha.shard] = a;
  }
  RecordOutcome(xs, m.coord_cert, false);
  auto it = xs.assignments.find(cfg_.shard);
  if (it != xs.assignments.end()) {
    CommitBlock(m.block, m.coord_cert, it->second.alpha, it->second.gamma,
                /*reply_from_here=*/false);
  }
  FinishCross(xs, true);
}

}  // namespace qanaat
