#ifndef QANAAT_PROTOCOLS_CONTEXT_H_
#define QANAAT_PROTOCOLS_CONTEXT_H_

#include <string>
#include <vector>

#include "collections/data_model.h"
#include "common/types.h"

namespace qanaat {

/// Which family of cross-cluster protocols a deployment runs (paper §4.3
/// vs §4.4).
enum class ProtocolFamily : uint8_t {
  kCoordinator = 0,  // prepare / prepared / commit via a coordinator
  kFlattened = 1,    // propose / accept / commit, no coordinator
};

/// Static description of one cluster: the nodes that order (and, without
/// separation, execute) transactions of one data shard of one enterprise.
struct ClusterConfig {
  int cluster_id = 0;
  EnterpriseId enterprise = 0;
  ShardId shard = 0;
  FailureModel failure_model = FailureModel::kByzantine;
  int region = 0;

  std::vector<NodeId> ordering;  // 2f+1 (crash) or 3f+1 (Byzantine)
  /// Separated execution nodes (2g+1); empty when ordering nodes execute.
  std::vector<NodeId> execution;
  /// Privacy firewall rows, bottom (adjacent to ordering) to top
  /// (adjacent to execution); empty when no firewall.
  std::vector<std::vector<NodeId>> filter_rows;

  bool HasFirewall() const { return !filter_rows.empty(); }
  bool SeparatedExecution() const { return !execution.empty(); }
  NodeId InitialPrimary() const { return ordering[0]; }
};

/// Global deployment parameters shared by every node.
struct SystemParams {
  int num_enterprises = 4;
  int shards_per_enterprise = 4;
  int f = 1;  // max faulty ordering nodes per cluster
  int g = 1;  // max faulty execution nodes per cluster
  int h = 1;  // max faulty filter nodes per cluster
  FailureModel failure_model = FailureModel::kByzantine;
  bool use_firewall = false;
  ProtocolFamily family = ProtocolFamily::kFlattened;

  /// Batching: blocks close at `batch_size` transactions or after
  /// `batch_timeout_us` since the first pending request of a flow.
  /// Cross-cluster flows use a longer window — their per-block protocol
  /// cost is much higher, so amortizing it over more transactions is the
  /// right trade (the paper's higher cross-transaction latencies absorb
  /// the wait).
  int batch_size = 100;
  SimTime batch_timeout_us = 2000;
  SimTime cross_batch_timeout_us = 10000;

  /// Round pipelining: maximum consensus slots a primary keeps in flight
  /// (proposed but not yet committed) before further batches queue inside
  /// the engine. Bounds per-view memory and view-change proof size while
  /// overlapping the network round trips of consecutive rounds. 0 =
  /// unbounded.
  int pipeline_depth = 8;

  /// Internal consensus timeout; cross-cluster timers are a multiple
  /// (§4.3.4: at least 3x the WAN round-trip).
  SimTime consensus_timeout_us = 150'000;
  SimTime cross_timeout_us = 400'000;

  /// Certified checkpoints: every `checkpoint_interval` delivered
  /// consensus slots each replica broadcasts a signed CHECKPOINT vote; a
  /// quorum of matching votes makes the checkpoint stable, garbage-
  /// collecting per-slot consensus state and bounding the fill window.
  /// <= 0 disables checkpointing.
  int checkpoint_interval = 64;
  /// Ledger state transfer for recovering / gap-stuck replicas: fetch
  /// missing blocks (self-certified by their commit certificates) plus
  /// the stable checkpoint certificate from a peer, verify, install, and
  /// resume normal catch-up for the tail. Disable to measure the
  /// recovery cost it saves (bench_faults crash+recover scenarios).
  bool state_transfer = true;

  /// When true (default), each shared collection shard has a designated
  /// coordinator cluster (the option §4.3.5 describes for avoiding
  /// deadlocks). When false, any involved enterprise's cluster may
  /// coordinate, with digest-priority abort/retry on ID conflicts.
  bool designated_coordinator = true;

  /// Local-majority of a cluster (paper §4): matching votes required.
  size_t LocalMajority() const {
    return failure_model == FailureModel::kByzantine
               ? static_cast<size_t>(2 * f + 1)
               : static_cast<size_t>(f + 1);
  }
  /// Signatures expected on a cluster-signed commit certificate: a full
  /// local-majority for Byzantine clusters; crash clusters do not
  /// exchange signatures during consensus, so their certificates carry a
  /// single (trusted) signature.
  size_t CertQuorum() const {
    return failure_model == FailureModel::kByzantine ? LocalMajority() : 1;
  }
  size_t OrderingClusterSize() const {
    return failure_model == FailureModel::kByzantine
               ? static_cast<size_t>(3 * f + 1)
               : static_cast<size_t>(2 * f + 1);
  }
};

/// Directory of every cluster in the deployment plus request routing.
/// Built once by the topology builder; nodes keep a const pointer.
struct Directory {
  SystemParams params;
  std::vector<ClusterConfig> clusters;  // indexed by cluster_id

  int ClusterIdOf(EnterpriseId e, ShardId s) const {
    return static_cast<int>(e) * params.shards_per_enterprise +
           static_cast<int>(s);
  }
  const ClusterConfig& Cluster(EnterpriseId e, ShardId s) const {
    return clusters[ClusterIdOf(e, s)];
  }
  const ClusterConfig& Cluster(int id) const { return clusters[id]; }

  /// The designated coordinator enterprise for a shard of a shared
  /// collection (the deadlock-free option of §4.3.5, fixed in the
  /// collection's configuration metadata). Rotating the designation by
  /// shard spreads coordination load across the involved enterprises.
  EnterpriseId CoordinatorEnterpriseOf(const CollectionId& c,
                                       ShardId shard) const {
    auto members = c.members.Members();
    return members[shard % members.size()];
  }
};

}  // namespace qanaat

#endif  // QANAAT_PROTOCOLS_CONTEXT_H_
