#include "protocols/ordering_node.h"

#include <algorithm>

#include "consensus/paxos.h"
#include "consensus/pbft.h"

namespace qanaat {

OrderingNode::OrderingNode(Env* env, const Directory* dir,
                           const DataModel* model, int cluster_id, int index)
    : Actor(env, "order/" + std::to_string(cluster_id) + "/" +
                     std::to_string(index),
            dir->Cluster(cluster_id).region),
      dir_(dir),
      model_(model),
      cfg_(dir->Cluster(cluster_id)),
      index_(index),
      exec_(env, model, cfg_.enterprise, cfg_.shard),
      batcher_(
          BatcherConfig{dir->params.batch_size, dir->params.batch_timeout_us},
          [this](SimTime delay, uint64_t token) {
            StartTimer(delay, kTagBatch, token);
          },
          [this](const FlowKey& key, std::vector<Transaction> txs,
                 BatchClose why) { OnBatchClosed(key, std::move(txs), why); }) {
  // The dedup tables sit on the per-request hot path. A modest seed
  // reservation skips the first few growth rebuilds; further growth is
  // amortized (each rebuild is a flat copy), which beats the old
  // megabyte-scale up-front reservations — zeroing those dominated
  // node construction and wrecked cache locality for the common small
  // case.
  seen_requests_.reserve(1 << 10);
  observed_requests_.reserve(1 << 10);
  committed_requests_.reserve(1 << 10);
  EngineContext ctx;
  ctx.env = env;
  ctx.self = id();
  ctx.cluster = cfg_.ordering;
  ctx.self_index = index;
  ctx.pipeline_depth = static_cast<size_t>(
      dir_->params.pipeline_depth < 0 ? 0 : dir_->params.pipeline_depth);
  ctx.send = [this](NodeId to, MessageRef m) { Send(to, std::move(m)); };
  ctx.broadcast = [this](MessageRef m) {
    for (NodeId peer : cfg_.ordering) {
      if (peer != id()) Send(peer, m);
    }
  };
  ctx.start_timer = [this](SimTime d, uint64_t tag, uint64_t payload) {
    StartTimer(d, tag, payload);
  };
  ctx.deliver = [this](uint64_t slot, const ConsensusValue& v) {
    OnDecide(slot, v);
  };
  ctx.checkpoint_interval = static_cast<size_t>(
      dir_->params.checkpoint_interval < 0
          ? 0
          : dir_->params.checkpoint_interval);
  if (dir_->params.state_transfer) {
    ctx.request_state_transfer = [this](const CheckpointCertificate&) {
      // The peer's StateReply carries its own certificate; all the host
      // needs to know is that per-slot catch-up cannot work.
      ScheduleStateSync(dir_->params.consensus_timeout_us / 4);
    };
  }
  ctx.on_view_change = [this](ViewNo, NodeId new_primary) {
    if (new_primary == id()) ReplayExecPushes();
  };
  if (cfg_.failure_model == FailureModel::kByzantine) {
    engine_ = std::make_unique<PbftEngine>(
        std::move(ctx), dir_->params.f, dir_->params.consensus_timeout_us);
  } else {
    engine_ = std::make_unique<PaxosEngine>(
        std::move(ctx), dir_->params.f, dir_->params.consensus_timeout_us);
  }
}

SimTime OrderingNode::CostOf(const Message& msg) const {
  if (msg.type == MsgType::kRequest) {
    SimTime auth = cfg_.failure_model == FailureModel::kCrash
                       ? env()->costs.mac_verify_us
                       : env()->costs.verify_sig_us;
    SimTime pf = dir_->params.use_firewall
                     ? env()->costs.pf_tx_overhead_us
                     : 0;
    return env()->costs.base_proc_us + auth + pf;
  }
  return Actor::CostOf(msg);
}

void OrderingNode::OnCrash() {
  // Volatile intake state dies with the process: pending batch items are
  // recovered by client retransmission, and the batcher's armed-timer
  // flags must not outlive the timers (which the crash epoch discards).
  batcher_.Reset();
  progress_checks_.clear();
  pending_exec_push_.clear();
  state_sync_pending_ = false;  // its timer died with the old epoch
  exec_wedge_armed_ = false;
  exec_wedged_ = false;
  engine_->OnHostCrash();
}

void OrderingNode::MaybeWatchExecWedge() {
  if (!dir_->params.state_transfer || exec_wedge_armed_) return;
  if (exec_.pending_blocks() == 0) return;
  exec_wedge_armed_ = true;
  exec_ledger_at_arm_ = exec_.ledger().size();
  StartTimer(dir_->params.cross_timeout_us, kTagExecWedge, 0);
}

void OrderingNode::OnRecover() {
  engine_->OnHostRecover();
  MaybeWatchExecWedge();
  // A restarted replica missed every commit of its downtime — including
  // cross-cluster commits nothing will ever retransmit (completed
  // instances stop re-driving). Proactively fetch the gap from a peer;
  // the tail still catches up through the normal fill protocols.
  if (!dir_->params.state_transfer) return;
  ScheduleStateSync(dir_->params.consensus_timeout_us / 2);
}

// --------------------------------------------------------------- intake

void OrderingNode::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kRequest:
      HandleRequest(from, *msg->As<RequestMsg>());
      break;
    case MsgType::kPrePrepare:
      ObserveProposedValue(msg->As<PrePrepareMsg>()->value);
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kPaxosAccept:
      ObserveProposedValue(msg->As<PaxosAcceptMsg>()->value);
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kViewChange:
      for (const auto& p : msg->As<ViewChangeMsg>()->prepared) {
        ObserveProposedValue(p.value);
      }
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kNewView:
      for (const auto& p : msg->As<NewViewMsg>()->reproposals) {
        ObserveProposedValue(p.value);
      }
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kPaxosPromise:
      for (const auto& a : msg->As<PaxosPromiseMsg>()->accepted) {
        ObserveProposedValue(a.value);
      }
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kPrepare:
    case MsgType::kCommit:
    case MsgType::kPaxosAccepted:
    case MsgType::kPaxosLearn:
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kFillReply:
      ObserveProposedValue(msg->As<FillReplyMsg>()->value);
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kPaxosPrepare:
    case MsgType::kFillRequest:
    case MsgType::kCheckpoint:
      engine_->OnMessage(from, msg);
      break;
    case MsgType::kStateRequest:
      HandleStateRequest(from, *msg->As<StateRequestMsg>());
      break;
    case MsgType::kStateReply:
      HandleStateReply(from, *msg->As<StateReplyMsg>());
      break;
    case MsgType::kXPrepare:
      ObserveProposedBlock(msg->As<XPrepareMsg>()->block);
      HandleXPrepare(from, *msg->As<XPrepareMsg>());
      break;
    case MsgType::kXPrepared:
      HandleXPrepared(from, *msg->As<XPreparedMsg>());
      break;
    case MsgType::kXCommit:
    case MsgType::kXAbort:
      HandleXCommit(from, *msg->As<XCommitMsg>());
      break;
    case MsgType::kFPropose:
      ObserveProposedBlock(msg->As<FProposeMsg>()->block);
      HandleFPropose(from, *msg->As<FProposeMsg>());
      break;
    case MsgType::kFAccept:
      HandleFAccept(from, *msg->As<FAcceptMsg>());
      break;
    case MsgType::kFCommit:
      HandleFCommit(from, *msg->As<FCommitMsg>());
      break;
    case MsgType::kCommitQuery:
    case MsgType::kPreparedQuery:
      HandleQuery(from, *msg->As<QueryMsg>());
      break;
    case MsgType::kReplyCert:
      ForwardReplyCert(*msg->As<ReplyCertMsg>());
      break;
    case MsgType::kExecReply: {
      // Fig 4(b) path: crash-only execution nodes report to the primary,
      // which forwards a plain reply to the client machines.
      const auto& m = *msg->As<ExecReplyMsg>();
      auto reply = std::make_shared<ReplyMsg>();
      reply->block_digest = m.block_digest;
      reply->result_digest = m.result_digest;
      reply->clients = m.clients;
      reply->sig = env()->keystore.Sign(id(), m.result_digest);
      SortedVec<NodeId> machines;
      for (const auto& [c, ts] : m.clients) machines.Insert(c);
      for (NodeId c : machines) Send(c, reply);
      break;
    }
    default:
      break;
  }
}

void OrderingNode::OnTimer(uint64_t tag, uint64_t payload) {
  if (tag >= InternalConsensus::kEngineTimerBase) {
    engine_->OnTimer(tag, payload);
    return;
  }
  if (tag == kTagBatch) {
    batcher_.OnTimer(payload);
    return;
  }
  if (tag == kTagRetry) {
    RunRetry(payload);
    return;
  }
  if (tag == kTagStateSync) {
    state_sync_pending_ = false;
    SendStateRequest();
    return;
  }
  if (tag == kTagExecPush) {
    auto it = pending_exec_push_.find(payload);
    if (it == pending_exec_push_.end()) return;
    if (reply_cache_.count(it->second.msg->cert.block_digest)) {
      // A reply certificate came back down the firewall: the execution
      // nodes saw the block, nothing to do.
      pending_exec_push_.erase(it);
      return;
    }
    env()->metrics.Inc("order.exec_push_backup");
    if (cfg_.HasFirewall()) {
      Multicast(cfg_.filter_rows.front(), it->second.msg);
    } else {
      Multicast(cfg_.execution, it->second.msg);
    }
    if (++it->second.tries >= 3) {
      pending_exec_push_.erase(it);
    } else {
      StartTimer(dir_->params.cross_timeout_us, kTagExecPush, payload);
    }
    return;
  }
  if (tag == kTagExecWedge) {
    exec_wedge_armed_ = false;
    if (exec_.pending_blocks() == 0) {
      exec_wedged_ = false;
      return;
    }
    if (exec_.ledger().size() == exec_ledger_at_arm_) {
      exec_wedged_ = true;
      env()->metrics.Inc("order.exec_wedge_detected");
      ScheduleStateSync(0);
    } else {
      exec_wedged_ = false;  // progressing again
    }
    MaybeWatchExecWedge();
    return;
  }
  if (tag == kTagProgress) {
    auto it = progress_checks_.find(payload);
    if (it == progress_checks_.end()) return;
    if (IsDuplicateRequest(it->second.id)) {
      // A proposal carrying the request was observed — primary is live.
      progress_checks_.erase(it);
      return;
    }
    if (engine_->LastDelivered() != it->second.delivered_at_arm) {
      // Consensus moved since the relay: the primary is alive and the
      // request is parked for some other (legitimate) reason. Suspecting
      // here would thrash views on a healthy cluster.
      progress_checks_.erase(it);
      return;
    }
    if (++it->second.tries > 3) {
      // The request is lost upstream (e.g. dropped on the wire); the
      // client's retransmission will start a fresh watchdog.
      progress_checks_.erase(it);
      return;
    }
    env()->metrics.Inc("order.primary_suspected");
    engine_->SuspectPrimary();
    it->second.delivered_at_arm = engine_->LastDelivered();
    StartTimer(2 * dir_->params.consensus_timeout_us, kTagProgress, payload);
    return;
  }
  if (tag == kTagCross) {
    auto it = cross_timer_digest_.find(payload);
    if (it == cross_timer_digest_.end()) return;
    Sha256Digest d = it->second;
    cross_timer_digest_.erase(it);
    auto xit = xstates_.find(d);
    if (xit == xstates_.end() || xit->second.done) return;
    xit->second.timer_armed = false;
    env()->metrics.Inc("cross.timeout");
    // Initiator/coordinator primary: re-drive the instance — some votes
    // or the PREPARE/PROPOSE itself may have been lost, and nothing else
    // retransmits them.
    RedriveCross(xit->second);
    // The re-drive may have aborted the instance into the retry
    // machinery (arbitration back-off) and reshaped xstates_ — re-find
    // before touching the state again.
    xit = xstates_.find(d);
    if (xit == xstates_.end() || xit->second.done) return;
    XState& xs = xit->second;
    // §4.3.4: query the coordinator/initiator cluster for the outcome.
    auto q = std::make_shared<QueryMsg>(MsgType::kCommitQuery);
    q->from_cluster = cfg_.cluster_id;
    q->block_digest = d;
    q->sig = env()->keystore.Sign(id(), d);
    int coord = xs.involved.empty() ? cfg_.cluster_id : xs.involved.front();
    if (xs.block) {
      coord = CoordinatorClusterOf(xs.block->id.alpha.collection,
                                   AllShards(xs));
    }
    Multicast(dir_->Cluster(coord).ordering, q);
    ArmCrossTimer(d);
    return;
  }
}

std::vector<ShardId> OrderingNode::AllShards(const XState& xs) {
  std::vector<ShardId> out;
  out.reserve(xs.assignments.size());
  for (const auto& [s, a] : xs.assignments) out.push_back(s);
  if (out.empty() && xs.block) {
    out = xs.block->txs.empty() ? std::vector<ShardId>{0}
                                : xs.block->txs.front().shards;
  }
  return out;
}

void OrderingNode::HandleRequest(NodeId /*from*/, const RequestMsg& m) {
  const Transaction& tx = m.tx;
  // Authorization + signature (paper §4.1: "valid signed request from an
  // authorized client").
  if (!env()->keystore.Verify(tx.client_sig, tx.Digest())) {
    env()->metrics.Inc("order.bad_request_sig");
    return;
  }
  if (!engine_->IsPrimary()) {
    // Relay to the current primary (§4.3.4 client retransmission path).
    if (m.is_retransmission) {
      auto it = reply_cache_.end();
      // Re-send a cached reply if we executed it already.
      for (auto& [digest, cached] : reply_cache_) {
        for (auto& [c, ts] : cached->clients) {
          if (c == tx.client && ts == tx.client_ts) {
            it = reply_cache_.find(digest);
            break;
          }
        }
        if (it != reply_cache_.end()) break;
      }
      if (it != reply_cache_.end()) {
        Send(tx.client, it->second);
        return;
      }
    }
    Send(engine_->PrimaryNode(), std::make_shared<RequestMsg>(m));
    WatchRelayedRequest(tx);
    return;
  }
  if (IsDuplicateRequest({tx.client, tx.client_ts})) {
    env()->metrics.Inc("order.duplicate_request");
    return;
  }
  if (IntakeGated()) {
    // A catching-up primary must not admit fresh batches: its permanent
    // at-most-once record is still incomplete, so a retransmission of a
    // transaction whose commit it has not yet learned would be ordered a
    // second time. The client retransmits once the gate clears.
    env()->metrics.Inc("order.intake_gated");
    return;
  }
  // Write rule (§3.2): the transaction must target a collection its
  // initiating enterprise is involved in.
  Status ok = model_->ValidateWrite(tx.collection, cfg_.enterprise);
  if (!ok.ok()) {
    env()->metrics.Inc("order.rejected_write_rule");
    return;
  }
  seen_requests_.Put({tx.client, tx.client_ts}, now());
  MaybePurgeDedup();

  // Requests of one flow (same collection + shard set) can legally share
  // a block; cross-cluster flows use the longer batch window.
  FlowKey key{tx.collection, tx.shards};
  SimTime window = IsCross(key) ? dir_->params.cross_batch_timeout_us : 0;
  batcher_.Add(key, tx, window);
}

void OrderingNode::ObserveProposedValue(const ConsensusValue& v) {
  if (v.kind != ConsensusValue::Kind::kBlock &&
      v.kind != ConsensusValue::Kind::kXOrder) {
    return;
  }
  ObserveProposedBlock(v.block);
}

void OrderingNode::ObserveProposedBlock(const BlockPtr& block) {
  if (block == nullptr) return;
  for (const Transaction& tx : block->txs) {
    observed_requests_.Put({tx.client, tx.client_ts}, now());
  }
  // Backups never take the intake path, so the observation map must be
  // purged here too or it grows for the whole run on (n-1)/n nodes.
  MaybePurgeDedup();
}

bool OrderingNode::IntakeGated() const {
  // Deferred blocks gate intake from the FIRST deferral, not only once
  // the wedge watchdog confirms one: the gap between "a commit we have
  // not applied exists" and "the watchdog noticed" is exactly where a
  // catching-up leader re-orders a retransmission into a duplicate
  // block (the chaos corpus reproduces this deterministically). The
  // cost on a healthy primary is negligible — transient γ-deferrals
  // rarely coincide with intake, and gated clients simply retransmit.
  return dir_->params.state_transfer &&
         (state_sync_pending_ || exec_wedged_ ||
          exec_.pending_blocks() > 0);
}

SimTime OrderingNode::DedupWindowUs() const {
  // The window a live proposal could still commit in (internal rounds
  // plus a full re-driven cross instance); past it the proposal is
  // presumed abandoned and the transaction may be batched afresh.
  return 2 * dir_->params.cross_timeout_us;
}

bool OrderingNode::RecentlyIn(const RequestTable& m,
                              const RequestId& id) const {
  const SimTime* at = m.Find(id);
  return at != nullptr && now() - *at <= DedupWindowUs();
}

bool OrderingNode::ObservedRecently(const RequestId& id) const {
  return committed_requests_.Contains(id) ||
         RecentlyIn(observed_requests_, id);
}

bool OrderingNode::IsDuplicateRequest(const RequestId& id) const {
  // Intake dedup uses the same expiry as observation dedup: past the
  // window, this node's own proposal is presumed abandoned and a client
  // retransmission may be admitted afresh — otherwise a transaction lost
  // in an abandoned proposal would stay blacklisted here until another
  // node became primary.
  // pending_cross_ deliberately has no expiry: those requests sit in a
  // cross instance this node keeps re-driving, so they are never
  // abandoned while pinned (see FinishCross for the release).
  return committed_requests_.Contains(id) ||
         pending_cross_.find(id) != pending_cross_.end() ||
         RecentlyIn(seen_requests_, id) ||
         RecentlyIn(observed_requests_, id);
}

void OrderingNode::PinCross(const BlockPtr& block) {
  for (const auto& tx : block->txs) {
    ++pending_cross_[{tx.client, tx.client_ts}];
  }
}

void OrderingNode::UnpinCross(const BlockPtr& block) {
  if (block == nullptr) return;
  for (const auto& tx : block->txs) {
    auto it = pending_cross_.find({tx.client, tx.client_ts});
    if (it == pending_cross_.end()) continue;
    if (--it->second == 0) pending_cross_.erase(it);
  }
}

void OrderingNode::MaybePurgeDedup() {
  if (now() - last_dedup_purge_ <= DedupWindowUs()) return;
  last_dedup_purge_ = now();
  SimTime horizon = now() - DedupWindowUs();
  seen_requests_.PurgeBefore(horizon);
  observed_requests_.PurgeBefore(horizon);
}

void OrderingNode::WatchRelayedRequest(const Transaction& tx) {
  uint64_t token = next_progress_++;
  ProgressCheck pc;
  pc.id = {tx.client, tx.client_ts};
  pc.delivered_at_arm = engine_->LastDelivered();
  progress_checks_[token] = pc;
  StartTimer(2 * dir_->params.consensus_timeout_us, kTagProgress, token);
}

LocalPart OrderingNode::NextAlpha(const CollectionId& c) {
  LocalPart a;
  a.collection = c;
  a.shard = cfg_.shard;
  // In optimistic (non-designated) mode another enterprise's commits may
  // have advanced the chain past our own assignment counter.
  SeqNo base = std::max(next_seq_[c], StateOfCollection(c));
  a.n = base + 1;
  next_seq_[c] = a.n;
  return a;
}

SeqNo OrderingNode::StateOfCollection(const CollectionId& c) const {
  const SeqNo* at = state_.Find(c);
  return at == nullptr ? 0 : *at;
}

SeqNo OrderingNode::CommittedHeadOf(const CollectionId& c) const {
  return exec_.ledger().HeadOf(ShardRef{c, cfg_.shard});
}

std::vector<GammaEntry> OrderingNode::CaptureGamma(
    const CollectionId& c) const {
  // §4.1: the global part includes the current state of *all* collections
  // d_c is order-dependent on, because the read-set is unknown until
  // execution.
  std::vector<GammaEntry> gamma;
  for (const CollectionId& dep : model_->OrderDependenciesOf(c)) {
    const SeqNo* at = state_.Find(dep);
    SeqNo m = at == nullptr ? 0 : *at;
    gamma.push_back(GammaEntry{dep, m});
  }
  return gamma;
}

BlockPtr OrderingNode::MakeBlock(const FlowKey& key,
                                 std::vector<Transaction> txs,
                                 uint32_t attempt) {
  auto block = std::make_shared<Block>();
  block->attempt = attempt;
  block->id.alpha = NextAlpha(key.collection);
  block->id.gamma = CaptureGamma(key.collection);
  block->txs = std::move(txs);
  block->Seal();
  // Batching cost: hashing/assembling the block.
  const_cast<OrderingNode*>(this)->ChargeCpu(
      static_cast<SimTime>(block->txs.size()) * env()->costs.batch_tx_us);
  return block;
}

void OrderingNode::OnBatchClosed(const FlowKey& key,
                                 std::vector<Transaction> txs,
                                 BatchClose why) {
  // A transaction observed in another leader's proposal between intake
  // and batch close is (or will be) ordered there — proposing it again
  // here would commit it twice.
  size_t before = txs.size();
  txs.erase(std::remove_if(txs.begin(), txs.end(),
                           [this](const Transaction& tx) {
                             return ObservedRecently(
                                 {tx.client, tx.client_ts});
                           }),
            txs.end());
  if (txs.size() != before) {
    env()->metrics.Inc("order.dup_tx_filtered", before - txs.size());
  }
  if (txs.empty()) return;
  env()->metrics.Inc(std::string("batch.closed_") + BatchCloseName(why));
  env()->metrics.Hist("batch.txs").Add(static_cast<int64_t>(txs.size()));

  BlockPtr block = MakeBlock(key, std::move(txs));
  if (!IsCross(key)) {
    // Intra-shard intra-enterprise: internal consensus commits directly.
    ConsensusValue v = ConsensusValue::ForBlock(block);
    v.batch_close = static_cast<uint8_t>(why);
    engine_->Propose(v);
    return;
  }
  if (dir_->params.family == ProtocolFamily::kCoordinator) {
    StartCoordinated(block);
  } else {
    StartFlattened(block);
  }
}

// --------------------------------------------------- consensus plumbing

CommitCertificate OrderingNode::MakeCert(uint64_t slot,
                                         const Sha256Digest& digest,
                                         ConsensusValue::Kind kind) {
  CommitCertificate cert;
  cert.block_digest = digest;
  cert.view = engine_->view();
  cert.slot = slot;
  cert.value_kind = static_cast<uint8_t>(kind);
  cert.sigs = engine_->CommitProof(slot);
  if (cert.sigs.empty()) {
    // Crash clusters don't exchange signatures during consensus; the
    // appending node certifies the decided block itself.
    cert.direct = true;
    cert.sigs.push_back(env()->keystore.Sign(id(), digest));
  }
  return cert;
}

void OrderingNode::OnDecide(uint64_t slot, const ConsensusValue& v) {
  switch (v.kind) {
    case ConsensusValue::Kind::kBlock: {
      CommitCertificate cert =
          MakeCert(slot, v.block_digest, ConsensusValue::Kind::kBlock);
      CommitBlock(v.block, std::move(cert), v.block->id.alpha,
                  v.block->id.gamma, /*reply_from_here=*/true);
      break;
    }
    case ConsensusValue::Kind::kXOrder:
      OnXOrderDecided(slot, v);
      break;
    case ConsensusValue::Kind::kXCommit:
      OnXCommitDecided(slot, v, /*is_abort=*/false);
      break;
    case ConsensusValue::Kind::kXAbort:
      OnXCommitDecided(slot, v, /*is_abort=*/true);
      break;
    case ConsensusValue::Kind::kNoop:
      break;
  }
}

// ------------------------------------------------- commit & execution

void OrderingNode::CommitBlock(const BlockPtr& block, CommitCertificate cert,
                               const LocalPart& alpha,
                               std::vector<GammaEntry> gamma,
                               bool reply_from_here) {
  for (const Transaction& tx : block->txs) {
    committed_requests_.Put({tx.client, tx.client_ts}, 0);
  }
  // Track committed state for future γ captures.
  auto& st = state_[alpha.collection];
  st = std::max(st, alpha.n);
  committed_blocks_++;
  committed_txs_ += block->tx_count();
  if (reply_from_here) reply_owner_.insert(cert.block_digest);

  if (cfg_.SeparatedExecution()) {
    // Byzantine with separation: the primary pushes the request + commit
    // certificate through the privacy firewall (§4.2). Backups keep the
    // recent pushes instead of discarding them — if the primary crashed
    // between committing and forwarding, the next primary replays the
    // tail on its view change (execution-side dedup absorbs duplicates).
    auto eo = std::make_shared<ExecOrderMsg>();
    eo->block = block;
    eo->cert = std::move(cert);
    eo->alpha_here = alpha;
    eo->gamma_here = std::move(gamma);
    eo->wire_bytes = 128 + block->WireSize() + eo->cert.WireSize();
    eo->sig_verify_ops = static_cast<uint16_t>(eo->cert.sigs.size());
    if (engine_->IsPrimary()) {
      if (cfg_.HasFirewall()) {
        Multicast(cfg_.filter_rows.front(), eo);
      } else {
        Multicast(cfg_.execution, eo);
      }
    } else {
      uint64_t token = next_exec_push_++;
      pending_exec_push_[token] = PendingExecPush{std::move(eo), 0};
      StartTimer(dir_->params.cross_timeout_us, kTagExecPush, token);
    }
    return;
  }

  // Co-located execution (crash clusters; Byzantine without separation):
  // every ordering node executes.
  bool primary = engine_->IsPrimary();
  Status st2 = exec_.Submit(
      block, std::move(cert), alpha, std::move(gamma),
      [this, reply_from_here, primary](const ExecutorCore::ExecResult& res) {
        ChargeCpu(res.cpu_cost);
        if (!reply_from_here) return;
        OnExecutedReply(res, primary);
      });
  if (!st2.ok() && st2.code() != StatusCode::kAlreadyExists) {
    env()->metrics.Inc("order.commit_submit_error");
  }
  MaybeWatchExecWedge();
}

void OrderingNode::OnExecutedReply(const ExecutorCore::ExecResult& res,
                                   bool primary) {
  // Every executing node replies; the client machine applies its
  // acceptance rule (first reply on crash clusters, f+1 matching results
  // on Byzantine ones). Suppressing non-primary replies on crash
  // clusters — the cheaper steady-state choice — deadlocks under chaos:
  // leadership can land on a recovered replica whose execution lags its
  // consensus (its ledger misses blocks from its crashed life), and then
  // nobody ever answers the clients.
  (void)primary;
  auto reply = std::make_shared<ReplyMsg>();
  reply->block_digest = res.block->Digest();
  reply->result_digest = res.result_digest;
  reply->clients = res.clients;
  reply->sig = env()->keystore.Sign(id(), res.result_digest);
  reply->wire_bytes = 96 + static_cast<uint32_t>(res.clients.size() * 12);
  // Distinct target machines in ascending id order (same order the
  // std::set this replaced produced) without a tree allocation per reply.
  SortedVec<NodeId> machines;
  for (const auto& [c, ts] : res.clients) machines.Insert(c);
  for (NodeId c : machines) Send(c, reply);
}

void OrderingNode::ForwardReplyCert(const ReplyCertMsg& m) {
  // Reply certificate arrived from the bottom filter row; the primary
  // forwards it to the client machines (§4.2). All nodes cache it for
  // client retransmissions. For cross-cluster blocks only the initiator
  // cluster replies.
  auto cached = std::make_shared<ReplyCertMsg>(m);
  reply_cache_[m.block_digest] = cached;
  if (!engine_->IsPrimary()) return;
  if (!reply_owner_.count(m.block_digest)) return;
  SortedVec<NodeId> machines;
  for (const auto& [c, ts] : m.clients) machines.Insert(c);
  for (NodeId c : machines) Send(c, cached);
}

// ------------------------------------------------- cross-cluster common

bool OrderingNode::IsCross(const FlowKey& key) const {
  return key.collection.members.size() > 1 || key.shards.size() > 1;
}

std::vector<int> OrderingNode::InvolvedClusters(
    const CollectionId& c, const std::vector<ShardId>& shards) const {
  std::vector<int> out;
  for (EnterpriseId e : c.members.Members()) {
    for (ShardId s : shards) {
      out.push_back(dir_->ClusterIdOf(e, s));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int OrderingNode::CoordinatorClusterOf(
    const CollectionId& c, const std::vector<ShardId>& shards) const {
  ShardId s = shards.empty() ? 0 : *std::min_element(shards.begin(),
                                                     shards.end());
  EnterpriseId e = dir_->params.designated_coordinator
                       ? dir_->CoordinatorEnterpriseOf(c, s)
                       : cfg_.enterprise;
  if (c.members.size() == 1) e = c.members.First();
  return dir_->ClusterIdOf(e, s);
}

bool OrderingNode::IAmShardAssigner(const CollectionId& c,
                                    EnterpriseId initiator_enterprise) const {
  if (!c.members.Contains(cfg_.enterprise)) return false;
  if (c.members.size() == 1) return c.members.First() == cfg_.enterprise;
  if (dir_->params.designated_coordinator) {
    return dir_->CoordinatorEnterpriseOf(c, cfg_.shard) == cfg_.enterprise;
  }
  return cfg_.enterprise == initiator_enterprise;
}

std::vector<NodeId> OrderingNode::NodesOf(
    const std::vector<int>& clusters) const {
  std::vector<NodeId> out;
  for (int c : clusters) {
    const auto& ord = dir_->Cluster(c).ordering;
    out.insert(out.end(), ord.begin(), ord.end());
  }
  return out;
}

bool OrderingNode::HasCrossShardConflict(
    const BlockPtr& block, const std::vector<ShardId>& shards) const {
  auto intersects2 = [&shards](const std::vector<ShardId>& other) {
    std::vector<ShardId> inter;
    std::set_intersection(shards.begin(), shards.end(), other.begin(),
                          other.end(), std::back_inserter(inter));
    return inter.size() >= 2;
  };
  for (const auto& [d, s] : active_cross_) {
    if (intersects2(s)) return true;
  }
  for (const auto& d : deferred_cross_) {
    if (d.block == block) continue;  // re-admission of the head itself
    if (!d.block->txs.empty() && intersects2(d.block->txs.front().shards)) {
      return true;
    }
  }
  return false;
}

OrderingNode::XState& OrderingNode::StateFor(const Sha256Digest& d) {
  XState& xs = xstates_[d];
  if (xs.started_at == 0) xs.started_at = now();
  xs.digest = d;
  return xs;
}

void OrderingNode::ArmCrossTimer(const Sha256Digest& d) {
  XState& xs = StateFor(d);
  if (xs.timer_armed || xs.done) return;
  xs.timer_armed = true;
  uint64_t token = next_cross_timer_++;
  cross_timer_digest_[token] = d;
  StartTimer(dir_->params.cross_timeout_us, kTagCross, token);
}

void OrderingNode::FinishCross(XState& xs, bool committed) {
  xs.done = true;
  if (xs.pinned) {
    xs.pinned = false;
    UnpinCross(xs.block);
  }
  if (!committed) aborted_blocks_++;
  for (const auto& [shard, a] : xs.assignments) {
    if (a.cluster == cfg_.cluster_id) {
      own_pending_.erase(
          {ShardRef{a.alpha.collection, a.alpha.shard}, a.alpha.n});
    }
  }
  // Release the shard reservation and admit deferred conflicting blocks.
  auto it = active_cross_.find(xs.digest);
  if (it != active_cross_.end()) {
    active_cross_.erase(it);
    if (!deferred_cross_.empty()) {
      std::vector<DeferredCross> retry;
      retry.swap(deferred_cross_);
      for (auto& d : retry) {
        // Hand the pin from the deferred entry to whatever holder the
        // restart lands in (new instance, or back onto the deferred
        // queue) — the Start call below re-pins.
        UnpinCross(d.block);
        if (dir_->params.family == ProtocolFamily::kCoordinator) {
          StartCoordinated(d.block);
        } else {
          StartFlattened(d.block);
        }
      }
    }
  }
  // Abort at the initiating cluster: retry the batch under a fresh block
  // (same transactions, new ID) after a deterministic per-cluster backoff
  // (§4.3.5: different timers per cluster prevent repeated deadlocks).
  if (!committed) {
    // Release slot claims and roll back our own assignment counters so
    // replacements can reuse the burned sequence numbers. Only this
    // block's own endorsement is released: after a §4.3.5 arbitration
    // switch the slot entry holds the rival winner's digest, and erasing
    // it would let a third claim sneak into a decided slot.
    for (const auto& [shard, a] : xs.assignments) {
      std::pair<ShardRef, SeqNo> slot{
          ShardRef{a.alpha.collection, a.alpha.shard}, a.alpha.n};
      auto claim = validated_digest_.find(slot);
      if (claim != validated_digest_.end() && claim->second == xs.digest) {
        validated_digest_.erase(claim);
      }
      auto locked = commit_locked_.find(slot);
      if (locked != commit_locked_.end() && locked->second == xs.digest) {
        commit_locked_.erase(locked);
      }
      if (a.cluster == cfg_.cluster_id && engine_->IsPrimary() &&
          next_seq_[a.alpha.collection] == a.alpha.n) {
        --next_seq_[a.alpha.collection];
      }
    }
  }
  if (!committed && xs.i_coordinate && xs.block != nullptr &&
      engine_->IsPrimary() && xs.retries < 8) {
    env()->metrics.Inc("cross.retry");
    uint64_t token = next_retry_++;
    retry_blocks_[token] = {xs.block, xs.retries + 1};
    PinCross(xs.block);
    SimTime backoff = 1000 * (cfg_.cluster_id + 1) * (xs.retries + 1);
    StartTimer(backoff, kTagRetry, token);
  }
  // §4.3.5 loser re-proposal is a flattened-mode mechanism: only there
  // does the commit-vote lock guarantee a slot-losing rival can never
  // commit, making its abort-and-requeue safe. In the coordinator
  // family a slot collision is a duplicate redrive whose transactions
  // may ride in another live instance — requeueing would mint a third
  // copy and break exactly-once (the paxos-seed-32 scenario).
  if (committed && dir_->params.family == ProtocolFamily::kFlattened) {
    RequeueArbitrationLosers(xs);
  }
}

void OrderingNode::RequeueArbitrationLosers(const XState& winner) {
  if (winner.assignments.empty()) return;
  // Copy the winner's contested slots first: aborting a loser below can
  // mutate xstates_ (deferred re-admission inserts fresh instances),
  // which would invalidate references into the table.
  const Sha256Digest winner_digest = winner.digest;
  std::vector<std::pair<ShardRef, SeqNo>> slots;
  slots.reserve(winner.assignments.size());
  for (const auto& [shard, a] : winner.assignments) {
    slots.push_back(
        {ShardRef{a.alpha.collection, a.alpha.shard}, a.alpha.n});
  }
  // xstates_ is a hashed container — collect matches, then order the
  // losers by digest so the abort (and retry) schedule is deterministic.
  std::vector<Sha256Digest> losers;
  for (const auto& [d, rival] : xstates_) {
    if (rival.done || d == winner_digest) continue;
    for (const auto& [shard, a] : rival.assignments) {
      std::pair<ShardRef, SeqNo> slot{
          ShardRef{a.alpha.collection, a.alpha.shard}, a.alpha.n};
      if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
        losers.push_back(d);
        break;
      }
    }
  }
  std::sort(losers.begin(), losers.end());
  for (const Sha256Digest& d : losers) {
    auto it = xstates_.find(d);
    if (it == xstates_.end() || it->second.done) continue;
    env()->metrics.Inc("cross.arbitration_loser");
    if (it->second.block != nullptr) {
      for (const Transaction& tx : it->second.block->txs) {
        arbitration_loser_txs_.insert({tx.client, tx.client_ts});
      }
    }
    // The winner holds the slot, and its commit-vote majorities keep it
    // locked at a local majority of every involved cluster — the loser
    // can never commit, so its transactions can safely go back through
    // the retry machinery (the pin in pending_cross_ rides along, which
    // is what keeps re-admission exactly-once).
    FinishCross(it->second, /*committed=*/false);
  }
}

void OrderingNode::RunRetry(uint64_t token) {
  auto it = retry_blocks_.find(token);
  if (it == retry_blocks_.end()) return;
  auto [old_block, retries] = it->second;
  retry_blocks_.erase(it);
  // The retry entry's pin moves to the fresh block's holder below.
  UnpinCross(old_block);
  // Exactly-once: drop transactions that committed meanwhile. An aborted
  // instance can share requests with the block that beat it — a §4.3.5
  // arbitration loser that was a duplicate admission of the winner, or a
  // redrive whose original finally landed — and re-proposing those would
  // commit them twice (committed_requests_ is the permanent record).
  std::vector<Transaction> txs;
  txs.reserve(old_block->txs.size());
  for (const Transaction& tx : old_block->txs) {
    if (!committed_requests_.Contains({tx.client, tx.client_ts})) {
      txs.push_back(tx);
    }
  }
  if (txs.empty()) {
    env()->metrics.Inc("cross.retry_settled");
    return;
  }
  const Transaction& probe = txs.front();
  BlockPtr fresh = MakeBlock(FlowKey{probe.collection, probe.shards},
                             std::move(txs),
                             static_cast<uint32_t>(retries));
  XState& xs = StateFor(fresh->Digest());
  xs.retries = retries;
  if (dir_->params.family == ProtocolFamily::kCoordinator) {
    StartCoordinated(fresh);
  } else {
    StartFlattened(fresh);
  }
}

void OrderingNode::RecordOutcome(XState& xs, const CommitCertificate& cert,
                                 bool abort) {
  xs.outcome_cert = cert;
  xs.outcome_known = true;
  xs.outcome_abort = abort;
}

void OrderingNode::RedriveCross(XState& xs) {
  if (xs.done || xs.block == nullptr || !xs.i_coordinate ||
      !engine_->IsPrimary()) {
    return;
  }
  // §4.3.5: if one of our claimed slots has meanwhile committed under a
  // different block (learned via votes or state transfer), this instance
  // lost its arbitration and can never commit — the winner's commit-vote
  // majorities hold the slot locked. Abort into the retry machinery
  // instead of re-driving a dead claim forever.
  for (const auto& [shard, a] : xs.assignments) {
    if (a.cluster != cfg_.cluster_id) continue;
    ShardRef ref{a.alpha.collection, a.alpha.shard};
    if (exec_.ledger().HeadOf(ref) < a.alpha.n) continue;
    for (size_t i : exec_.ledger().ChainOf(ref)) {
      const DagLedger::Entry& e = exec_.ledger().entry(i);
      if (e.alpha.n != a.alpha.n) continue;
      if (e.block->Digest() != xs.digest) {
        env()->metrics.Inc("cross.arbitration_backoff");
        FinishCross(xs, /*committed=*/false);
        return;
      }
      break;
    }
  }
  env()->metrics.Inc("cross.redrive");
  if (dir_->params.family == ProtocolFamily::kFlattened) {
    auto prop = std::make_shared<FProposeMsg>();
    prop->initiator_cluster = cfg_.cluster_id;
    prop->block = xs.block;
    prop->block_digest = xs.digest;
    prop->sig = env()->keystore.Sign(id(), xs.digest);
    prop->wire_bytes = 128 + xs.block->WireSize();
    for (int c : xs.involved) {
      for (NodeId n : dir_->Cluster(c).ordering) {
        if (n != id()) Send(n, prop);
      }
    }
    ResendCrossVotes(xs);
  } else if (xs.order_cert_known) {
    auto prep = std::make_shared<XPrepareMsg>();
    prep->coord_cluster = cfg_.cluster_id;
    prep->block = xs.block;
    prep->block_digest = xs.digest;
    prep->coord_cert = xs.order_cert;
    prep->wire_bytes =
        160 + xs.block->WireSize() + prep->coord_cert.WireSize();
    prep->sig_verify_ops =
        static_cast<uint16_t>(prep->coord_cert.sigs.size());
    for (int c : xs.involved) {
      if (c == cfg_.cluster_id) continue;
      Multicast(dir_->Cluster(c).ordering, prep);
    }
  }
}

void OrderingNode::HandleQuery(NodeId from, const QueryMsg& m) {
  auto it = xstates_.find(m.block_digest);
  if (it != xstates_.end() && it->second.done && it->second.outcome_known &&
      it->second.block != nullptr) {
    // §4.3.4: answer with the certified outcome. The asker lost the
    // original commit (crash, partition, drop); without this resend its
    // chain — and every collection order-dependent on it — stalls
    // forever.
    const XState& xs = it->second;
    env()->metrics.Inc("cross.query_answered");
    auto cm = std::make_shared<XCommitMsg>();
    cm->coord_cluster = cfg_.cluster_id;
    cm->block = xs.block;
    cm->block_digest = m.block_digest;
    cm->coord_cert = xs.outcome_cert;
    cm->is_abort = xs.outcome_abort;
    if (xs.outcome_abort) cm->type = MsgType::kXAbort;
    for (const auto& [shard, a] : xs.assignments) {
      cm->assignments.push_back(a);
    }
    cm->wire_bytes = 128 + cm->coord_cert.WireSize() +
                     static_cast<uint32_t>(cm->assignments.size()) * 48;
    cm->sig_verify_ops = static_cast<uint16_t>(cm->coord_cert.sigs.size());
    Send(from, cm);
    return;
  }
  // If we have no record or it is still pending, count suspicion toward
  // the primary (a local-majority of queries triggers a view change,
  // §4.3.4).
  env()->metrics.Inc("cross.query_pending");
}

// ------------------------------------- checkpointed state transfer

void OrderingNode::ScheduleStateSync(SimTime delay) {
  if (!dir_->params.state_transfer || state_sync_pending_) return;
  state_sync_pending_ = true;
  StartTimer(delay, kTagStateSync, 0);
}

void OrderingNode::SendStateRequest() {
  size_t n = cfg_.ordering.size();
  if (n <= 1) return;
  NodeId peer = id();
  for (size_t i = 0; i < n && peer == id(); ++i) {
    peer = cfg_.ordering[(static_cast<size_t>(index_) + 1 +
                          static_cast<size_t>(state_sync_rr_++)) % n];
  }
  if (peer == id()) return;
  auto req = std::make_shared<StateRequestMsg>();
  for (const auto& [ref, chain] : exec_.ledger().chains()) {
    req->heads.push_back(StateRequestMsg::ChainHead{
        ref.collection, ref.shard, exec_.ledger().HeadOf(ref)});
  }
  req->frontier = engine_->LastDelivered();
  req->wire_bytes =
      48 + static_cast<uint32_t>(req->heads.size()) * 16;
  env()->metrics.Inc("order.state_requested");
  Send(peer, req);
}

void OrderingNode::HandleStateRequest(NodeId from, const StateRequestMsg& m) {
  if (!dir_->params.state_transfer) return;
  std::map<ShardRef, SeqNo> req_heads;
  for (const auto& h : m.heads) {
    req_heads[ShardRef{h.collection, h.shard}] = h.head;
  }
  // Chunked like the other catch-up protocols (fills: 16 slots, Fabric
  // fetch: 8 blocks): at most kMaxEntries entries per reply, filled
  // round-robin ACROSS chains — oldest missing entry of each chain
  // first — so a long chain cannot starve the chain its γ dependencies
  // point at. The requester re-requests with updated heads until a
  // round installs nothing new.
  constexpr size_t kMaxEntries = 256;
  auto rep = std::make_shared<StateReplyMsg>();
  rep->ckpt = engine_->stable_checkpoint();
  const DagLedger& led = exec_.ledger();
  uint64_t bytes = 64 + rep->ckpt.WireSize();
  size_t verify_ops = rep->ckpt.sigs.size();
  // Per-chain cursors into the missing suffix (chain[i] holds the entry
  // committed at sequence number i + 1, so the requester's gap starts
  // at index `head`).
  std::vector<std::pair<const std::vector<size_t>*, size_t>> cursors;
  for (const auto& [ref, chain] : led.chains()) {
    auto it = req_heads.find(ref);
    SeqNo have = it == req_heads.end() ? 0 : it->second;
    if (have < chain.size()) cursors.emplace_back(&chain, have);
  }
  bool any = true;
  while (any && rep->entries.size() < kMaxEntries) {
    any = false;
    for (auto& [chain, i] : cursors) {
      if (i >= chain->size() || rep->entries.size() >= kMaxEntries) {
        continue;
      }
      const DagLedger::Entry& e = led.entry((*chain)[i++]);
      rep->entries.push_back(
          StateReplyMsg::Entry{e.block, e.cert, e.alpha, e.gamma});
      bytes += 64 + e.block->WireSize() + e.cert.WireSize();
      verify_ops += e.cert.sigs.size();
      any = true;
    }
  }
  // Certified-but-wedged tail: blocks this replica committed whose chain
  // predecessor is still missing live outside the installed chains. A
  // requester that recovers while a chain is globally wedged would never
  // see them in any later sync round (once the wedge clears, the tail
  // block has no successor to reveal the gap) — include them, pending
  // the same predecessors on the requester's side.
  for (const auto& p : exec_.pending()) {
    if (rep->entries.size() >= kMaxEntries) break;
    auto it = req_heads.find(ShardRef{p.alpha.collection, p.alpha.shard});
    SeqNo have = it == req_heads.end() ? 0 : it->second;
    if (p.alpha.n <= have) continue;
    rep->entries.push_back(
        StateReplyMsg::Entry{p.block, p.cert, p.alpha, p.gamma});
    bytes += 64 + p.block->WireSize() + p.cert.WireSize();
    verify_ops += p.cert.sigs.size();
  }
  if (rep->entries.empty() && rep->ckpt.slot <= m.frontier) return;
  rep->requester = m.requester;  // echo for firewall-routed executor pulls
  rep->wire_bytes = static_cast<uint32_t>(
      std::min<uint64_t>(bytes, UINT32_MAX));
  rep->sig_verify_ops =
      static_cast<uint16_t>(std::min<size_t>(verify_ops, 65535));
  env()->metrics.Inc("order.state_served");
  env()->metrics.Inc("order.state_blocks_served", rep->entries.size());
  Send(from, rep);
}

bool OrderingNode::VerifyTransferredEntry(
    const StateReplyMsg::Entry& e) const {
  return VerifyTransferredLedgerEntry(*dir_, env()->keystore, e);
}

bool OrderingNode::InstallTransferredBlock(const StateReplyMsg::Entry& e) {
  for (const Transaction& tx : e.block->txs) {
    committed_requests_.Put({tx.client, tx.client_ts}, 0);
  }
  auto& st = state_[e.alpha.collection];
  st = std::max(st, e.alpha.n);
  // Re-execution rebuilds the multi-versioned store deterministically;
  // Submit defers entries whose chain predecessor or γ dependencies have
  // not landed yet (transfers interleave chains arbitrarily) and dedups
  // entries already queued by an earlier chunk.
  Status s = exec_.Submit(
      e.block, e.cert, e.alpha, e.gamma,
      [this](const ExecutorCore::ExecResult& res) {
        ChargeCpu(res.cpu_cost);
      });
  MaybeWatchExecWedge();
  if (s.code() == StatusCode::kAlreadyExists) return false;
  if (!s.ok()) {
    env()->metrics.Inc("order.state_install_error");
    return false;
  }
  committed_blocks_++;
  committed_txs_ += e.block->tx_count();
  env()->metrics.Inc("order.state_block_installed");
  return true;
}

void OrderingNode::HandleStateReply(NodeId /*from*/, const StateReplyMsg& m) {
  if (!dir_->params.state_transfer) return;
  size_t installed = 0;
  for (const auto& e : m.entries) {
    ShardRef ref{e.alpha.collection, e.alpha.shard};
    if (e.alpha.n <= exec_.ledger().HeadOf(ref)) continue;  // have it
    if (!VerifyTransferredEntry(e)) {
      env()->metrics.Inc("order.bad_state_block");
      continue;
    }
    if (InstallTransferredBlock(e)) ++installed;
  }
  if (m.ckpt.slot > engine_->LastDelivered()) {
    if (!engine_->InstallCheckpoint(m.ckpt)) {
      env()->metrics.Inc("order.bad_state_ckpt");
    }
  }
  if (installed > 0) {
    // Another round in case the serving peer itself was behind; it
    // no-ops (and goes unanswered) once everyone agrees.
    ScheduleStateSync(dir_->params.consensus_timeout_us);
  }
}

void OrderingNode::ReplayExecPushes() {
  if (!cfg_.SeparatedExecution() || pending_exec_push_.empty()) return;
  env()->metrics.Inc("order.exec_push_replayed", pending_exec_push_.size());
  for (const auto& [token, p] : pending_exec_push_) {
    if (reply_cache_.count(p.msg->cert.block_digest)) continue;
    if (cfg_.HasFirewall()) {
      Multicast(cfg_.filter_rows.front(), p.msg);
    } else {
      Multicast(cfg_.execution, p.msg);
    }
  }
  pending_exec_push_.clear();
}

}  // namespace qanaat
