#ifndef QANAAT_PROTOCOLS_REQUEST_TABLE_H_
#define QANAAT_PROTOCOLS_REQUEST_TABLE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace qanaat {

/// Open-addressed flat map from request identity (client, client
/// timestamp) to a timestamp — the shape of every per-request dedup
/// record an ordering node keeps (intake, observation, permanent
/// at-most-once). These tables are touched once or more per transaction
/// per replica, where std::unordered_map paid a node allocation per
/// insert and a pointer chase per lookup; here an entry is 24 contiguous
/// bytes, inserts never allocate below the load cap, and the periodic
/// expiry sweep rebuilds the table instead of unlinking entries one by
/// one. Linear probing with power-of-two capacity and load factor <= 1/2
/// keeps probe runs short; kInvalidNode marks an empty slot (no real
/// client carries that id).
class RequestTable {
 private:
  struct Entry {
    uint64_t ts = 0;
    SimTime when = 0;
    NodeId client = kInvalidNode;
  };

  static constexpr size_t kMinCapacity = 64;

 public:
  using RequestId = std::pair<NodeId, uint64_t>;

  /// Inserts or overwrites the timestamp for `id`.
  void Put(const RequestId& id, SimTime when) {
    if ((size_ + 1) * 2 > slots_.size()) Grow();
    Entry& e = slots_[ProbeFor(id, slots_)];
    if (e.client == kInvalidNode) {
      e.client = id.first;
      e.ts = id.second;
      ++size_;
    }
    e.when = when;
  }

  /// Timestamp recorded for `id`, or nullptr when absent.
  const SimTime* Find(const RequestId& id) const {
    if (slots_.empty()) return nullptr;
    const Entry& e = slots_[ProbeFor(id, slots_)];
    return e.client == kInvalidNode ? nullptr : &e.when;
  }

  bool Contains(const RequestId& id) const { return Find(id) != nullptr; }

  /// Drops every entry with timestamp < horizon by rebuilding — O(n)
  /// once per expiry window, amortized against the per-entry unlink walk
  /// of the map it replaced.
  void PurgeBefore(SimTime horizon) {
    if (slots_.empty()) return;
    std::vector<Entry> fresh(slots_.size());
    size_t kept = 0;
    for (const Entry& e : slots_) {
      if (e.client == kInvalidNode || e.when < horizon) continue;
      fresh[ProbeFor({e.client, e.ts}, fresh)] = e;
      ++kept;
    }
    slots_.swap(fresh);
    size_ = kept;
  }

  size_t size() const { return size_; }

  void reserve(size_t n) {
    size_t want = kMinCapacity;
    while (want < n * 2) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

 private:
  static size_t Hash(const RequestId& id) {
    return static_cast<size_t>(
        Mix64((static_cast<uint64_t>(id.first) << 32) ^
              (id.second + 0x9e3779b97f4a7c15ULL)));
  }

  /// Index of the slot holding `id`, or of the empty slot where it
  /// belongs.
  static size_t ProbeFor(const RequestId& id,
                         const std::vector<Entry>& slots) {
    size_t mask = slots.size() - 1;
    size_t i = Hash(id) & mask;
    while (slots[i].client != kInvalidNode &&
           (slots[i].client != id.first || slots[i].ts != id.second)) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Grow() {
    Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
  }

  void Rehash(size_t capacity) {
    std::vector<Entry> fresh(capacity);
    for (const Entry& e : slots_) {
      if (e.client == kInvalidNode) continue;
      fresh[ProbeFor({e.client, e.ts}, fresh)] = e;
    }
    slots_.swap(fresh);
  }

  std::vector<Entry> slots_;
  size_t size_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_PROTOCOLS_REQUEST_TABLE_H_
