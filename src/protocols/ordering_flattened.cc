// Flattened cross-cluster consensus (paper §4.4, Fig 6): no coordinator —
// the initiator primary PROPOSEs to every node of all involved clusters,
// primaries of the initiator enterprise's other clusters announce their
// shard's ⟨α, γ⟩ in their ACCEPT, every node multicasts ACCEPT and then
// COMMIT, and a node commits on matching votes from a local-majority of
// every involved cluster. Crash-only cross-shard intra-enterprise
// transactions use the cheaper centralized fast path of §4.4.2.

#include <algorithm>

#include "protocols/ordering_node.h"

namespace qanaat {

namespace {
Sha256Digest AcceptSignable(const Sha256Digest& d) {
  // Derived tag over (0xFA ‖ block digest); see DeriveDigest in
  // ledger/block.h for why this does not need an inner SHA-256.
  return DeriveDigest(0x46414343u /* "FACC" */, 0xFA, 0, d);
}
}  // namespace

bool OrderingNode::FlattenedCftFastPath(const XState& xs) const {
  return cfg_.failure_model == FailureModel::kCrash &&
         !xs.is_cross_enterprise && xs.is_cross_shard;
}

void OrderingNode::StartFlattened(const BlockPtr& block) {
  const Transaction& probe = block->txs.front();
  int initiator = CoordinatorClusterOf(probe.collection, probe.shards);
  if (initiator != cfg_.cluster_id) {
    for (const auto& tx : block->txs) {
      auto req = std::make_shared<RequestMsg>();
      req->tx = tx;
      req->wire_bytes = 64 + tx.WireSize();
      Send(dir_->Cluster(initiator).InitialPrimary(), req);
    }
    return;
  }

  // Concurrency rule (§4.4.2): no concurrent uncommitted request sharing
  // >= 2 shards.
  if (probe.shards.size() > 1) {
    if (HasCrossShardConflict(block, probe.shards)) {
      deferred_cross_.push_back(DeferredCross{block});
      PinCross(block);
      env()->metrics.Inc("cross.deferred_conflict");
      return;
    }
    active_cross_[block->Digest()] = probe.shards;
  }

  XState& xs = StateFor(block->Digest());
  xs.block = block;
  xs.involved = InvolvedClusters(probe.collection, probe.shards);
  xs.is_cross_enterprise = probe.collection.members.size() > 1;
  xs.is_cross_shard = probe.shards.size() > 1;
  xs.i_coordinate = true;
  if (!xs.pinned) {
    xs.pinned = true;
    PinCross(block);
  }
  xs.assignments[block->id.alpha.shard] =
      ShardAssignment{cfg_.cluster_id, block->id.alpha, block->id.gamma};
  own_pending_.insert({ShardRef{block->id.alpha.collection,
                                block->id.alpha.shard},
                       block->id.alpha.n});

  auto prop = std::make_shared<FProposeMsg>();
  prop->initiator_cluster = cfg_.cluster_id;
  prop->block = block;
  prop->block_digest = xs.digest;
  prop->sig = env()->keystore.Sign(id(), xs.digest);
  prop->wire_bytes = 128 + block->WireSize();
  for (int c : xs.involved) {
    for (NodeId n : dir_->Cluster(c).ordering) {
      if (n != id()) Send(n, prop);
    }
  }
  ArmCrossTimer(xs.digest);
  SendFAccept(xs);
}

void OrderingNode::HandleFPropose(NodeId from, const FProposeMsg& m) {
  const ClusterConfig& init = dir_->Cluster(m.initiator_cluster);
  // Provenance: signed by a member of the initiator cluster (the primary
  // may have changed; membership is what a remote node can check).
  if (std::find(init.ordering.begin(), init.ordering.end(), from) ==
          init.ordering.end() ||
      m.sig.signer != from ||
      !env()->keystore.Verify(m.sig, m.block_digest) ||
      m.block->Digest() != m.block_digest) {
    env()->metrics.Inc("cross.bad_propose");
    return;
  }
  XState& xs = StateFor(m.block_digest);
  if (xs.done) return;
  xs.block = m.block;
  const Transaction& probe = m.block->txs.front();
  xs.involved = InvolvedClusters(probe.collection, probe.shards);
  xs.is_cross_enterprise = probe.collection.members.size() > 1;
  xs.is_cross_shard = probe.shards.size() > 1;
  // Replies to clients come from the initiator cluster — every node of
  // it, so the client can gather f+1 matching results.
  xs.i_coordinate = (m.initiator_cluster == cfg_.cluster_id);
  xs.assignments[m.block->id.alpha.shard] = ShardAssignment{
      m.initiator_cluster, m.block->id.alpha, m.block->id.gamma};
  ArmCrossTimer(m.block_digest);

  // Replay a fast-path commit that overtook this propose.
  if (xs.pending_fast_commit != nullptr) {
    std::shared_ptr<const FCommitMsg> held = xs.pending_fast_commit;
    NodeId held_from = xs.pending_fast_commit_from;
    xs.pending_fast_commit = nullptr;
    HandleFCommit(held_from, *held);
    if (xs.done) return;
  }

  // Duplicate propose (initiator re-drive after losing votes): re-vote
  // idempotently instead of falling through the first-time paths.
  if (xs.sent_accept) {
    ResendCrossVotes(xs);
    return;
  }

  // Assigner clusters on other shards assign their own ID and announce
  // it in their primary's ACCEPT (§4.4.2, §4.4.3).
  if (xs.is_cross_shard &&
      IAmShardAssigner(probe.collection, init.enterprise) &&
      cfg_.cluster_id != m.initiator_cluster && engine_->IsPrimary() &&
      !xs.assignments.count(cfg_.shard)) {
    ShardAssignment mine;
    mine.cluster = cfg_.cluster_id;
    mine.alpha = NextAlpha(probe.collection);
    // Register the claim like any other vote. A primary whose sequence
    // counter is stale (fresh after a leadership change) must also skip
    // numbers already claimed by other in-flight blocks — assigning a
    // claimed number and voting for it anyway is how two blocks end up
    // committed at one height.
    {
      ShardRef ref{mine.alpha.collection, mine.alpha.shard};
      while (true) {
        auto claim = validated_digest_.find({ref, mine.alpha.n});
        if (claim == validated_digest_.end() ||
            claim->second == m.block_digest) {
          break;
        }
        env()->metrics.Inc("cross.assign_skip_claimed");
        mine.alpha.n = ++next_seq_[probe.collection];
      }
      validated_digest_[{ref, mine.alpha.n}] = m.block_digest;
    }
    mine.gamma = CaptureGamma(probe.collection);
    xs.assignments[cfg_.shard] = mine;

    auto acc = std::make_shared<FAcceptMsg>();
    acc->from_cluster = cfg_.cluster_id;
    acc->block_digest = m.block_digest;
    acc->has_assignment = true;
    acc->assignment = mine;
    acc->sig = env()->keystore.Sign(id(), AcceptSignable(m.block_digest));
    acc->wire_bytes = 160;
    if (FlattenedCftFastPath(xs)) {
      // Fast path: announce to own cluster nodes; votes go to the whole
      // initiator cluster — leadership may have moved off the initial
      // primary, and a vote sent only there would never be tallied.
      for (NodeId n : cfg_.ordering) {
        if (n != id()) Send(n, acc);
      }
      for (NodeId n : init.ordering) {
        if (n != id()) Send(n, acc);
      }
      xs.sent_accept = true;
      return;
    }
    for (int c : xs.involved) {
      for (NodeId n : dir_->Cluster(c).ordering) {
        if (n != id()) Send(n, acc);
      }
    }
    xs.sent_accept = true;
    xs.accepts[cfg_.cluster_id][id()] = acc->sig;
    MaybeSendFCommit(xs);
    return;
  }
  SendFAccept(xs);
}

void OrderingNode::SendFAccept(XState& xs) {
  if (xs.sent_accept || xs.done || xs.block == nullptr) return;
  const Transaction& probe = xs.block->txs.front();
  if (FlattenedCftFastPath(xs)) {
    // Fast path (§4.4.2): a node endorses its own shard's order as soon
    // as it knows it; only the initiator primary assembles the rest.
    bool involves_us =
        std::find(probe.shards.begin(), probe.shards.end(), cfg_.shard) !=
        probe.shards.end();
    if (involves_us && !xs.assignments.count(cfg_.shard)) return;
  } else {
    // General path: a node votes once it knows the block and the ⟨α, γ⟩
    // assignment of every involved shard.
    for (ShardId s : probe.shards) {
      if (!xs.assignments.count(s)) return;
    }
  }
  // Validate the assignment on our own chain before voting: idempotent
  // for the same block, refused for a rival claim to the slot. This
  // applies to our own cluster's assignments too — after a leadership
  // change the new primary may unknowingly re-assign a sequence number
  // the old primary's still-in-flight block already claimed, and a node
  // endorsing both would let two different blocks commit at one height.
  auto mine = xs.assignments.find(cfg_.shard);
  if (mine != xs.assignments.end()) {
    const LocalPart& alpha = mine->second.alpha;
    ShardRef ref{alpha.collection, alpha.shard};
    std::pair<ShardRef, SeqNo> slot{ref, alpha.n};
    auto claim = validated_digest_.find(slot);
    if (claim != validated_digest_.end()) {
      if (claim->second != xs.digest) {
        // §4.3.5 digest-priority arbitration: when two live claims
        // contest one slot, every validator deterministically prefers
        // the lower block digest. Switching the endorsement is safe only
        // before this node commit-votes the endorsed block
        // (commit_locked_), only for a live slot, and never on the
        // §4.4.2 fast path — fast-path commits carry no commit votes, so
        // the lock cannot protect them.
        if (FlattenedCftFastPath(xs) || commit_locked_.count(slot) ||
            alpha.n <= CommittedHeadOf(alpha.collection) ||
            !(xs.digest < claim->second)) {
          env()->metrics.Inc("cross.conflict_nack");
          return;
        }
        env()->metrics.Inc("cross.arbitration_switch");
        claim->second = xs.digest;
      }
    } else {
      if (mine->second.cluster != cfg_.cluster_id &&
          own_pending_.count(slot)) {
        // Our cluster's claim is in flight but not yet endorsed here, so
        // the digests are not comparable yet — nack; arbitration decides
        // once both claims are registered.
        env()->metrics.Inc("cross.conflict_nack");
        return;
      }
      if (alpha.n <= CommittedHeadOf(alpha.collection)) {
        env()->metrics.Inc("cross.stale_accept");
        return;
      }
      validated_digest_[slot] = xs.digest;
    }
  }
  xs.sent_accept = true;

  auto acc = std::make_shared<FAcceptMsg>();
  acc->from_cluster = cfg_.cluster_id;
  acc->block_digest = xs.digest;
  acc->sig = env()->keystore.Sign(id(), AcceptSignable(xs.digest));
  if (FlattenedCftFastPath(xs)) {
    acc->sig_verify_ops = 0;
    // Vote to every node of the initiator cluster: only its current
    // primary tallies, and that may no longer be the initial one.
    for (NodeId n : dir_->Cluster(xs.involved.front()).ordering) {
      if (n != id()) Send(n, acc);
    }
    if (engine_->IsPrimary() && xs.i_coordinate) {
      xs.accepts[cfg_.cluster_id][id()] = acc->sig;
      MaybeSendFCommit(xs);
    }
    return;
  }
  for (int c : xs.involved) {
    for (NodeId n : dir_->Cluster(c).ordering) {
      if (n != id()) Send(n, acc);
    }
  }
  xs.accepts[cfg_.cluster_id][id()] = acc->sig;
  MaybeSendFCommit(xs);
}

void OrderingNode::ResendCrossVotes(XState& xs) {
  if (xs.done || xs.block == nullptr || !xs.sent_accept) return;
  // Re-validate the slot claim: if the chain slot has since been won by
  // a different block, re-voting for this one could hand two different
  // blocks a quorum at the same height.
  auto claimed = xs.assignments.find(cfg_.shard);
  if (claimed != xs.assignments.end()) {
    const LocalPart& alpha = claimed->second.alpha;
    auto claim = validated_digest_.find(
        {ShardRef{alpha.collection, alpha.shard}, alpha.n});
    if (claim == validated_digest_.end() || claim->second != xs.digest) {
      env()->metrics.Inc("cross.resend_suppressed");
      return;
    }
  }
  auto acc = std::make_shared<FAcceptMsg>();
  acc->from_cluster = cfg_.cluster_id;
  acc->block_digest = xs.digest;
  acc->sig = env()->keystore.Sign(id(), AcceptSignable(xs.digest));
  auto mine = xs.assignments.find(cfg_.shard);
  if (mine != xs.assignments.end() &&
      mine->second.cluster == cfg_.cluster_id && engine_->IsPrimary()) {
    acc->has_assignment = true;
    acc->assignment = mine->second;
    acc->wire_bytes = 160;
  }
  if (FlattenedCftFastPath(xs)) {
    acc->sig_verify_ops = 0;
    for (NodeId n : dir_->Cluster(xs.involved.front()).ordering) {
      if (n != id()) Send(n, acc);
    }
    return;
  }
  for (int c : xs.involved) {
    for (NodeId n : dir_->Cluster(c).ordering) {
      if (n != id()) Send(n, acc);
    }
  }
  if (xs.sent_commit) {
    auto cm = std::make_shared<FCommitMsg>();
    cm->from_cluster = cfg_.cluster_id;
    cm->block_digest = xs.digest;
    cm->sig = env()->keystore.Sign(id(), xs.digest);
    for (const auto& [s2, a] : xs.assignments) cm->assignments.push_back(a);
    cm->wire_bytes = 96 + static_cast<uint32_t>(cm->assignments.size()) * 48;
    for (int c : xs.involved) {
      for (NodeId n : dir_->Cluster(c).ordering) {
        if (n != id()) Send(n, cm);
      }
    }
  }
}

void OrderingNode::HandleFAccept(NodeId from, const FAcceptMsg& m) {
  XState& xs = StateFor(m.block_digest);
  if (xs.done) return;
  const ClusterConfig& sender = dir_->Cluster(m.from_cluster);
  if (std::find(sender.ordering.begin(), sender.ordering.end(), from) ==
          sender.ordering.end() ||
      m.sig.signer != from ||
      !env()->keystore.Verify(m.sig, AcceptSignable(m.block_digest))) {
    env()->metrics.Inc("cross.bad_accept");
    return;
  }
  if (m.has_assignment) {
    auto it = xs.assignments.find(m.assignment.alpha.shard);
    if (it == xs.assignments.end()) {
      xs.assignments[m.assignment.alpha.shard] = m.assignment;
    } else if (!(it->second.alpha == m.assignment.alpha)) {
      env()->metrics.Inc("cross.conflicting_assignment");
      return;
    }
  }
  xs.accepts[m.from_cluster][from] = m.sig;

  if (xs.block != nullptr && FlattenedCftFastPath(xs)) {
    SendFAccept(xs);  // vote toward the initiator primary
    if (xs.i_coordinate && engine_->IsPrimary()) MaybeSendFCommit(xs);
    return;
  }
  SendFAccept(xs);  // we may have been waiting for an assignment
  MaybeSendFCommit(xs);
}

void OrderingNode::MaybeSendFCommit(XState& xs) {
  if (xs.sent_commit || xs.done || xs.block == nullptr || !xs.sent_accept) {
    return;
  }
  size_t quorum = dir_->params.LocalMajority();
  for (int c : xs.involved) {
    auto it = xs.accepts.find(c);
    if (it == xs.accepts.end() || it->second.size() < quorum) return;
  }
  const Transaction& probe = xs.block->txs.front();
  for (ShardId s : probe.shards) {
    if (!xs.assignments.count(s)) return;
  }
  // §4.3.5 commit-vote guard: a node commit-votes at most one digest per
  // slot. The endorsement may have moved to a lower rival after our
  // accept; commit-voting the abandoned block anyway would let two
  // commit-vote majorities assemble inside one cluster.
  auto here = xs.assignments.find(cfg_.shard);
  if (here != xs.assignments.end()) {
    const LocalPart& alpha = here->second.alpha;
    std::pair<ShardRef, SeqNo> slot{ShardRef{alpha.collection, alpha.shard},
                                    alpha.n};
    auto endorsed = validated_digest_.find(slot);
    auto locked = commit_locked_.find(slot);
    if ((endorsed != validated_digest_.end() &&
         endorsed->second != xs.digest) ||
        (locked != commit_locked_.end() && locked->second != xs.digest)) {
      env()->metrics.Inc("cross.commit_vote_suppressed");
      return;
    }
    commit_locked_[slot] = xs.digest;
  }
  xs.sent_commit = true;

  auto cm = std::make_shared<FCommitMsg>();
  cm->from_cluster = cfg_.cluster_id;
  cm->block_digest = xs.digest;
  cm->sig = env()->keystore.Sign(id(), xs.digest);

  if (FlattenedCftFastPath(xs)) {
    // §4.4.2 fast path: the initiator primary alone disseminates the
    // commit instruction, carrying the collected assignments.
    cm->fast_path = true;
    cm->sig_verify_ops = 1;
    for (const auto& [s, a] : xs.assignments) cm->assignments.push_back(a);
    cm->wire_bytes =
        96 + static_cast<uint32_t>(cm->assignments.size()) * 48;
    for (int c : xs.involved) {
      for (NodeId n : dir_->Cluster(c).ordering) {
        if (n != id()) Send(n, cm);
      }
    }
    // Commit locally.
    CommitCertificate cert;
    cert.block_digest = xs.digest;
    cert.direct = true;
    cert.sigs.push_back(cm->sig);
    RecordOutcome(xs, cert, false);
    auto mine = xs.assignments.find(cfg_.shard);
    if (mine != xs.assignments.end()) {
      CommitBlock(xs.block, cert, mine->second.alpha, mine->second.gamma,
                  /*reply_from_here=*/true);
    }
    FinishCross(xs, true);
    return;
  }

  for (const auto& [s2, a] : xs.assignments) cm->assignments.push_back(a);
  cm->wire_bytes = 96 + static_cast<uint32_t>(cm->assignments.size()) * 48;
  for (int c : xs.involved) {
    for (NodeId n : dir_->Cluster(c).ordering) {
      if (n != id()) Send(n, cm);
    }
  }
  xs.commit_votes[cfg_.cluster_id][id()] = cm->sig;
  for (const auto& [s2, a] : xs.assignments) {
    auto& slot = xs.assignment_votes[a.alpha.shard][a.alpha.n];
    slot.first = a;
    slot.second.insert(id());
  }
  MaybeFCommitDone(xs);
}

void OrderingNode::HandleFCommit(NodeId from, const FCommitMsg& m) {
  XState& xs = StateFor(m.block_digest);
  if (xs.done) return;
  const ClusterConfig& sender = dir_->Cluster(m.from_cluster);
  if (std::find(sender.ordering.begin(), sender.ordering.end(), from) ==
          sender.ordering.end() ||
      m.sig.signer != from ||
      !env()->keystore.Verify(m.sig, m.block_digest)) {
    env()->metrics.Inc("cross.bad_fcommit");
    return;
  }

  if (m.fast_path) {
    // Crash-only fast path: trust the initiator primary's instruction.
    if (xs.block == nullptr) {
      // The commit overtook its FPropose (reordered delivery). Hold it —
      // dropping it would stall this replica's chain forever, since the
      // initiator does not retransmit fast-path commits.
      env()->metrics.Inc("cross.fcommit_before_propose");
      xs.pending_fast_commit = std::make_shared<FCommitMsg>(m);
      xs.pending_fast_commit_from = from;
      return;
    }
    for (const auto& a : m.assignments) {
      xs.assignments[a.alpha.shard] = a;
    }
    CommitCertificate cert;
    cert.block_digest = m.block_digest;
    cert.direct = true;
    cert.sigs.push_back(m.sig);
    RecordOutcome(xs, cert, false);
    auto mine = xs.assignments.find(cfg_.shard);
    if (mine != xs.assignments.end()) {
      CommitBlock(xs.block, cert, mine->second.alpha, mine->second.gamma,
                  /*reply_from_here=*/false);
    }
    FinishCross(xs, true);
    return;
  }

  xs.commit_votes[m.from_cluster][from] = m.sig;
  for (const auto& a : m.assignments) {
    auto& slot = xs.assignment_votes[a.alpha.shard][a.alpha.n];
    slot.first = a;
    slot.second.insert(from);
  }
  if (xs.block == nullptr) {
    // Commit votes for a block this replica never saw proposed: the
    // FPropose was lost on the wire. The voters are already past accept
    // and will finish without us — and completed instances stop
    // re-driving, so without action this chain is gapped forever (the
    // cross-shard liveness hole the post-heal convergence audit trips
    // on). Arm the §4.3.4 query timer; the timeout path multicasts a
    // CommitQuery and any finished peer answers with the certified
    // outcome, block included.
    env()->metrics.Inc("cross.fcommit_before_propose");
    ArmCrossTimer(m.block_digest);
  }
  MaybeFCommitDone(xs);
}

void OrderingNode::MaybeFCommitDone(XState& xs) {
  if (xs.done || !xs.sent_commit || xs.block == nullptr) return;
  size_t quorum = dir_->params.LocalMajority();
  for (int c : xs.involved) {
    auto it = xs.commit_votes.find(c);
    if (it == xs.commit_votes.end() || it->second.size() < quorum) return;
  }
  // Commit certificate: our own cluster's commit votes (they sign the
  // block digest directly).
  CommitCertificate cert;
  cert.block_digest = xs.digest;
  cert.direct = true;
  for (const auto& [node, sig] : xs.commit_votes[cfg_.cluster_id]) {
    cert.sigs.push_back(sig);
  }
  // Commit under the assignment a local-majority of its assigner cluster
  // endorsed, not under our local belief: a recovered replica that
  // self-assigned a stale sequence number while wrongly leading must not
  // append the block at that height.
  auto av = xs.assignment_votes.find(cfg_.shard);
  if (av != xs.assignment_votes.end()) {
    size_t best = 0;
    const ShardAssignment* winner = nullptr;
    for (const auto& [n, variant] : av->second) {
      const std::vector<NodeId>& assigner =
          dir_->Cluster(variant.first.cluster).ordering;
      size_t backing = 0;
      for (NodeId v : variant.second) {
        if (std::find(assigner.begin(), assigner.end(), v) !=
            assigner.end()) {
          ++backing;
        }
      }
      if (backing >= dir_->params.LocalMajority() && backing > best) {
        best = backing;
        winner = &variant.first;
      }
    }
    if (winner != nullptr &&
        !(xs.assignments[cfg_.shard] == *winner)) {
      env()->metrics.Inc("cross.assignment_corrected");
      xs.assignments[cfg_.shard] = *winner;
    }
  }
  RecordOutcome(xs, cert, false);
  auto mine = xs.assignments.find(cfg_.shard);
  if (mine != xs.assignments.end()) {
    CommitBlock(xs.block, cert, mine->second.alpha, mine->second.gamma,
                /*reply_from_here=*/xs.i_coordinate);
  }
  FinishCross(xs, true);
}

}  // namespace qanaat
