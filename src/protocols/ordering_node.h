#ifndef QANAAT_PROTOCOLS_ORDERING_NODE_H_
#define QANAAT_PROTOCOLS_ORDERING_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "consensus/batcher.h"
#include "consensus/engine.h"
#include "consensus/messages.h"
#include "firewall/executor_core.h"
#include "protocols/context.h"
#include "protocols/cross_messages.h"
#include "common/flat_map.h"
#include "protocols/request_table.h"
#include "sim/network.h"

namespace qanaat {

/// An ordering node of one Qanaat cluster.
///
/// Responsibilities (paper §4):
///  * receive client requests, batch them per flow (target collection +
///    shard set) into blocks, assign ⟨α, γ⟩ IDs (§4.1);
///  * run the pluggable internal consensus (PBFT / Multi-Paxos);
///  * drive or participate in the cross-cluster protocols, either
///    coordinator-based (§4.3) or flattened (§4.4);
///  * hand committed blocks to execution: through the privacy firewall
///    (Byzantine, separated), or executing in place (crash clusters and
///    Byzantine clusters without separation), and route replies;
///  * failure handling: commit-query / prepared-query and view-change
///    triggering (§4.3.4, §4.4.4).
class OrderingNode : public Actor {
 public:
  OrderingNode(Env* env, const Directory* dir, const DataModel* model,
               int cluster_id, int index);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;
  void OnCrash() override;
  void OnRecover() override;
  /// Byzantine-ordering fault injection (chaos corpus): forwards to the
  /// internal consensus engine, which equivocates while enabled.
  void SetEquivocating(bool on) override { engine_->SetEquivocate(on); }

  const ClusterConfig& cluster() const { return cfg_; }
  InternalConsensus* engine() { return engine_.get(); }
  const ExecutorCore& exec_core() const { return exec_; }
  bool IsPrimary() const { return engine_->IsPrimary(); }

  uint64_t committed_blocks() const { return committed_blocks_; }
  uint64_t committed_txs() const { return committed_txs_; }
  uint64_t aborted_blocks() const { return aborted_blocks_; }

  /// Auditor surface: request ids (client, client timestamp) of the
  /// transactions that lost a §4.3.5 digest-priority arbitration here and
  /// were re-queued for re-proposal. The chaos auditor checks that each
  /// eventually commits exactly once on some winning block.
  const std::set<std::pair<NodeId, uint64_t>>& arbitration_loser_txs() const {
    return arbitration_loser_txs_;
  }

 private:
  friend class QanaatSystem;

  // Key of a batching flow: all requests of a flow execute on the same
  // collection and shard set, so they can share a block.
  struct FlowKey {
    CollectionId collection;
    std::vector<ShardId> shards;
    bool operator<(const FlowKey& o) const {
      if (collection != o.collection) return collection < o.collection;
      return shards < o.shards;
    }
  };

  // Cross-cluster protocol state for one in-flight block.
  struct XState {
    BlockPtr block;
    Sha256Digest digest;
    std::vector<int> involved;          // involved cluster ids (sorted)
    bool is_cross_enterprise = false;
    bool is_cross_shard = false;
    bool i_coordinate = false;          // we are in the coordinator cluster
    bool pinned = false;                // txs held in pending_cross_ here
    // Assignments collected per shard (keyed by shard id).
    std::map<ShardId, ShardAssignment> assignments;
    // Coordinator-side prepared bookkeeping: cluster -> voters.
    std::map<int, std::set<NodeId>> prepared_votes;
    std::map<int, std::set<NodeId>> abort_votes;
    std::set<int> prepared_clusters;
    bool commit_started = false;
    bool abort_started = false;
    // Flattened bookkeeping.
    std::map<int, std::map<NodeId, Signature>> accepts;
    std::map<int, std::map<NodeId, Signature>> commit_votes;
    // Per-shard assignment endorsements carried on commit votes: keyed
    // by the claimed sequence number, with the endorsing nodes. Commit
    // adopts the variant a local-majority of the assigner cluster backs —
    // a node's own belief may be a stale self-assignment from a crashed
    // life, and committing under it diverges the shared chain.
    std::map<ShardId, std::map<SeqNo, std::pair<ShardAssignment,
                                                std::set<NodeId>>>>
        assignment_votes;
    bool sent_accept = false;
    bool sent_commit = false;
    // A fast-path FCommit that overtook its FPropose (reordered
    // delivery): held until the block arrives, then replayed.
    std::shared_ptr<const FCommitMsg> pending_fast_commit;
    NodeId pending_fast_commit_from = kInvalidNode;
    // Outcome evidence, kept so commit-queries (§4.3.4) can be answered:
    // a node stalled on a lost commit recovers by querying any node that
    // has the certified outcome.
    CommitCertificate outcome_cert;
    bool outcome_known = false;
    bool outcome_abort = false;
    // kXOrder evidence (coordinator family), kept so a timed-out
    // initiator can re-drive its PREPARE and an assigner can re-send its
    // PREPARED without running consensus again.
    CommitCertificate order_cert;
    bool order_cert_known = false;
    bool assign_proposed = false;
    bool done = false;
    bool timer_armed = false;
    SimTime started_at = 0;
    int retries = 0;
  };

  static constexpr uint64_t kTagBatch = 1;
  static constexpr uint64_t kTagCross = 2;
  static constexpr uint64_t kTagRetry = 3;
  static constexpr uint64_t kTagProgress = 4;
  static constexpr uint64_t kTagStateSync = 5;
  static constexpr uint64_t kTagExecWedge = 6;
  static constexpr uint64_t kTagExecPush = 7;

  // ---- request intake / batching
  void HandleRequest(NodeId from, const RequestMsg& m);
  /// Marks every transaction of a value observed in a consensus proposal
  /// (pre-prepare, Paxos accept, view-change proof) as seen, so a client
  /// retransmission racing a view change cannot get the same transaction
  /// batched into a second block by the new primary.
  void ObserveProposedValue(const ConsensusValue& v);
  /// Same for a block observed in a cross-cluster proposal (FPropose /
  /// XPrepare): those never pass through internal consensus at every
  /// node, so without this a retransmission during an in-flight cross
  /// instance could be batched into a second block.
  void ObserveProposedBlock(const BlockPtr& block);
  /// A primary may admit fresh intake only from a caught-up state: while
  /// a state sync is pending or committed blocks sit deferred, this
  /// node's permanent at-most-once record (committed_requests_) is
  /// incomplete, and admitting a retransmission whose commit we have not
  /// learned yet re-orders it into a duplicate block.
  bool IntakeGated() const;
  /// Arms a progress watchdog for a request relayed to the primary: if no
  /// proposal containing it is observed in time, suspect the primary —
  /// otherwise a primary that crashed with nothing in flight is never
  /// suspected and the cluster ignores new requests forever.
  void WatchRelayedRequest(const Transaction& tx);
  /// Batcher flush sink: seals the batch into a block and hands it to
  /// internal consensus (intra-cluster) or a cross-cluster protocol.
  void OnBatchClosed(const FlowKey& key, std::vector<Transaction> txs,
                     BatchClose why);
  BlockPtr MakeBlock(const FlowKey& key, std::vector<Transaction> txs,
                     uint32_t attempt = 0);
  std::vector<GammaEntry> CaptureGamma(const CollectionId& c) const;
  LocalPart NextAlpha(const CollectionId& c);
  SeqNo StateOfCollection(const CollectionId& c) const;
  /// The gaplessly-committed head of our shard's chain (what staleness
  /// checks must compare against; state_ may run ahead of it when
  /// cross-shard commits of different flows arrive out of order).
  SeqNo CommittedHeadOf(const CollectionId& c) const;

  // ---- internal consensus plumbing
  void OnDecide(uint64_t slot, const ConsensusValue& v);
  CommitCertificate MakeCert(uint64_t slot, const Sha256Digest& digest,
                             ConsensusValue::Kind kind);

  // ---- commit & execution path (shared by all protocols)
  void CommitBlock(const BlockPtr& block, CommitCertificate cert,
                   const LocalPart& alpha, std::vector<GammaEntry> gamma,
                   bool reply_from_here);
  void OnExecutedReply(const ExecutorCore::ExecResult& res, bool primary);
  void ForwardReplyCert(const ReplyCertMsg& m);
  static std::vector<ShardId> AllShards(const XState& xs);

  // ---- cross-cluster: shared helpers
  bool IsCross(const FlowKey& key) const;
  std::vector<int> InvolvedClusters(const CollectionId& c,
                                    const std::vector<ShardId>& shards) const;
  int CoordinatorClusterOf(const CollectionId& c,
                           const std::vector<ShardId>& shards) const;
  /// Is this cluster the one that assigns ⟨α, γ⟩ for its shard of
  /// collection c? In designated mode the per-shard designated
  /// enterprise assigns (one assigner per chain); in optimistic mode the
  /// initiator enterprise's clusters do (paper §4.3.3 verbatim).
  bool IAmShardAssigner(const CollectionId& c,
                        EnterpriseId initiator_enterprise) const;
  std::vector<NodeId> NodesOf(const std::vector<int>& clusters) const;
  XState& StateFor(const Sha256Digest& d);
  /// True if `block` intersects an active *or already-deferred*
  /// cross-shard block in >= 2 shards (§4.3.2). Deferred blocks count so
  /// a later block of the same flow cannot overtake an earlier one and
  /// gap the chain.
  bool HasCrossShardConflict(const BlockPtr& block,
                             const std::vector<ShardId>& shards) const;
  void FinishCross(XState& xs, bool committed);
  /// §4.3.5 loser re-proposal: after `winner` commits, aborts every live
  /// rival instance claiming one of the winner's slots with a different
  /// digest. The abort path funnels the loser's transactions into the
  /// retry machinery (still pinned in pending_cross_), so re-admission
  /// stays exactly-once.
  void RequeueArbitrationLosers(const XState& winner);
  void ArmCrossTimer(const Sha256Digest& d);
  void RunRetry(uint64_t token);
  /// Timed-out initiator/coordinator primary re-drives an unfinished
  /// cross instance (re-sends PREPARE / PROPOSE); receivers answer with
  /// idempotent re-votes. Without this, one lost vote strands the
  /// instance and holes its chain's sequence numbers forever.
  void RedriveCross(XState& xs);
  /// Re-sends this node's accept (and commit) votes for an instance it
  /// already voted on — the duplicate-propose path of a re-drive.
  void ResendCrossVotes(XState& xs);

  // ---- coordinator-based family (ordering_coordinator.cc)
  void StartCoordinated(const BlockPtr& block);
  void OnXOrderDecided(uint64_t slot, const ConsensusValue& v);
  void OnXCommitDecided(uint64_t slot, const ConsensusValue& v,
                        bool is_abort);
  void HandleXPrepare(NodeId from, const XPrepareMsg& m);
  void HandleXPrepared(NodeId from, const XPreparedMsg& m);
  void HandleXCommit(NodeId from, const XCommitMsg& m);
  void MaybeStartCommitPhase(XState& xs);

  // ---- flattened family (ordering_flattened.cc)
  void StartFlattened(const BlockPtr& block);
  void HandleFPropose(NodeId from, const FProposeMsg& m);
  void HandleFAccept(NodeId from, const FAcceptMsg& m);
  void HandleFCommit(NodeId from, const FCommitMsg& m);
  void SendFAccept(XState& xs);
  void MaybeSendFCommit(XState& xs);
  void MaybeFCommitDone(XState& xs);
  bool FlattenedCftFastPath(const XState& xs) const;

  // ---- failure handling
  void HandleQuery(NodeId from, const QueryMsg& m);
  /// Records a certified cross-instance outcome for query answering.
  void RecordOutcome(XState& xs, const CommitCertificate& cert, bool abort);

  // ---- checkpointed state transfer (recovery path)
  /// Arms the one-shot state-sync timer (deduped while pending): the
  /// entry point for the recovery hook and the engine's transfer
  /// requests.
  void ScheduleStateSync(SimTime delay);
  /// Sends a StateRequest (chain heads + consensus frontier) to the next
  /// peer in round-robin order — any replica can serve, primary or not.
  void SendStateRequest();
  void HandleStateRequest(NodeId from, const StateRequestMsg& m);
  void HandleStateReply(NodeId from, const StateReplyMsg& m);
  /// Verifies one transferred ledger entry: recomputed Merkle root and
  /// block digest must match the commit certificate, and the certificate
  /// must carry a quorum of valid signatures from ordering nodes of the
  /// collection's member clusters.
  bool VerifyTransferredEntry(const StateReplyMsg::Entry& e) const;
  /// Installs a verified entry: dedup bookkeeping, γ-capture state, and
  /// in-order execution (which rebuilds the MvStore deterministically).
  /// Returns false when the entry was already queued or applied (a
  /// repeated chunk must not inflate counters or re-trigger sync
  /// rounds).
  bool InstallTransferredBlock(const StateReplyMsg::Entry& e);
  /// Re-pushes recently committed blocks through the firewall when this
  /// node becomes primary: the previous primary may have crashed between
  /// committing and forwarding, and execution nodes cannot fill the gap
  /// themselves (the wiring only lets them talk to the top filter row).
  void ReplayExecPushes();
  /// Arms the executor-wedge watchdog while committed blocks sit
  /// deferred: a block whose chain predecessor was lost for good (e.g. a
  /// cross-cluster commit this node missed while crashed or partitioned
  /// — completed instances are never retransmitted) wedges the ledger at
  /// a point the consensus engine cannot see. If a full cross-timeout
  /// passes with deferred blocks and zero ledger growth, state transfer
  /// fetches the missing predecessors from a peer.
  void MaybeWatchExecWedge();

  /// Cost model hook: client requests are MAC-authenticated on crash
  /// clusters and signature-verified on Byzantine ones; the privacy
  /// firewall adds per-request body-encryption overhead.
  SimTime CostOf(const Message& msg) const override;

  const Directory* dir_;
  const DataModel* model_;
  ClusterConfig cfg_;
  int index_;
  std::unique_ptr<InternalConsensus> engine_;
  ExecutorCore exec_;

  Batcher<Transaction, FlowKey> batcher_;
  FlatMap<CollectionId, SeqNo> state_;  // committed state (γ capture)
  FlatMap<CollectionId, SeqNo> next_seq_;
  // Validated slot claims on incoming cross-cluster IDs: which block
  // digest this node endorsed for each (chain, n). Re-votes for the same
  // digest are idempotent; a different digest claiming the same slot is
  // a conflict (nack). Aborts erase the claim so a replacement block can
  // take the slot. Keyed by digest rather than a watermark so pipelined
  // prepares tolerate out-of-order delivery.
  std::map<std::pair<ShardRef, SeqNo>, Sha256Digest> validated_digest_;
  // Commit-vote lock (§4.3.5 arbitration safety): the one digest this
  // node has commit-voted for each slot. An endorsement may switch to a
  // lower rival digest while the slot is merely accepted, but never after
  // the commit vote — without the lock, two commit-vote majorities for
  // different digests could assemble inside one cluster. Released only by
  // a matching abort.
  std::map<std::pair<ShardRef, SeqNo>, Sha256Digest> commit_locked_;
  // (chain, n) assignments our own cluster currently has in flight. A
  // node never endorses a remote block claiming a sequence number its
  // own cluster is still trying to commit (optimistic-mode safety,
  // §4.3.5) — until both claims are digest-comparable, at which point
  // the lower digest wins deterministically.
  std::set<std::pair<ShardRef, SeqNo>> own_pending_;
  // Transactions that lost a digest-priority arbitration (see
  // RequeueArbitrationLosers); kept for the chaos auditor's
  // eventual-commit invariant.
  std::set<std::pair<NodeId, uint64_t>> arbitration_loser_txs_;
  // Request identity (client, client timestamp) for dedup bookkeeping.
  // These maps sit on the per-request hot path, so they are hashed flat
  // containers rather than ordered trees; nothing iterates them in key
  // order.
  using RequestId = std::pair<NodeId, uint64_t>;
  /// Block digests are uniform SHA-256 output; their first 8 bytes are a
  /// ready-made hash for the flat cross-state containers.
  struct DigestHash {
    size_t operator()(const Sha256Digest& d) const {
      return static_cast<size_t>(d.Prefix64());
    }
  };
  // Requests this node itself admitted to its batcher (primary intake
  // dedup), with the admission time. An intake entry EXPIRES
  // (SeenRecently) with the same window as observation dedup: a
  // transaction stranded in this node's own abandoned proposal (e.g.
  // lost on the wire before preparing) can be recovered by client
  // retransmission to the same primary, instead of only via another node
  // taking over leadership. Expired entries are purged periodically so
  // the map is bounded by the intake rate times the window.
  RequestTable seen_requests_;
  // ...and requests observed in someone else's proposal, promise, fill
  // or a delivered block, with the observation time. Kept separate: a
  // batch is filtered against observations at close, which drops a
  // retransmitted transaction that a previous primary already got
  // ordered — without dropping the batch's own fresh intake. An
  // observation EXPIRES (ObservedRecently) so a transaction whose
  // proposal was abandoned (e.g. no-op-filled by a view change before
  // preparing) can be retried by client retransmission instead of being
  // blacklisted forever; committed_requests_ is the permanent record.
  RequestTable observed_requests_;
  RequestTable committed_requests_;
  /// The one shared expiry predicate both dedup maps use.
  bool RecentlyIn(const RequestTable& m, const RequestId& id) const;
  bool ObservedRecently(const RequestId& id) const;
  /// Committed, recently admitted here, or recently observed in a
  /// proposal — the per-request intake (and watchdog) dedup predicate.
  bool IsDuplicateRequest(const RequestId& id) const;
  /// The shared dedup window: how long an in-flight proposal could still
  /// legitimately commit (internal rounds plus a full re-driven cross
  /// instance).
  SimTime DedupWindowUs() const;
  /// Amortized sweep of expired intake/observation entries (at most once
  /// per window), so both maps stay bounded under sustained load.
  void MaybePurgeDedup();
  // Requests inside a cross block this node is actively driving — held in
  // a deferred queue, a live locally-initiated instance, or a scheduled
  // retry. These do NOT expire with the dedup window: the cross timer
  // re-drives an instance indefinitely, so "presumed abandoned" is never
  // true while the instance is live, and admitting a retransmission past
  // the window would commit the same request twice (once in the stalled
  // block once it finally lands, once in the fresh one). Reference
  // counted because a transaction can sit in two overlapping holders
  // during a hand-off (e.g. an aborted instance and its retry block).
  std::map<RequestId, int> pending_cross_;
  void PinCross(const BlockPtr& block);
  void UnpinCross(const BlockPtr& block);
  SimTime last_dedup_purge_ = 0;
  // Progress watchdog for a relayed request: if neither the request is
  // observed in a proposal nor any slot delivers before the timer fires,
  // the primary is suspected. The delivery baseline distinguishes a dead
  // primary from a request parked for a legitimate reason (deferred
  // cross-shard conflict, stalled cross instance).
  struct ProgressCheck {
    std::pair<NodeId, uint64_t> id;
    int tries = 0;
    uint64_t delivered_at_arm = 0;
  };
  /// Sequential tokens need a mixing hash; looked up per watchdog
  /// firing, never iterated.
  struct TokenHash {
    size_t operator()(uint64_t t) const {
      return static_cast<size_t>(Mix64(t + 0x9e3779b97f4a7c15ULL));
    }
  };
  std::unordered_map<uint64_t, ProgressCheck, TokenHash> progress_checks_;
  uint64_t next_progress_ = 0;
  std::unordered_map<Sha256Digest, XState, DigestHash> xstates_;
  std::unordered_map<uint64_t, Sha256Digest, TokenHash> cross_timer_digest_;
  uint64_t next_cross_timer_ = 0;
  // Blocks whose client replies this cluster owns (initiator side).
  std::unordered_set<Sha256Digest, DigestHash> reply_owner_;
  // Reply cache for retransmissions: block digest -> cert msg.
  std::map<Sha256Digest, std::shared_ptr<const ReplyCertMsg>> reply_cache_;
  // Serialization of conflicting cross-shard blocks (paper §4.3.2: no two
  // concurrent transactions may intersect in >= 2 shards).
  struct DeferredCross {
    BlockPtr block;
  };
  std::vector<DeferredCross> deferred_cross_;
  // Iterated only for an order-independent overlap test, so a flat map
  // is safe.
  std::unordered_map<Sha256Digest, std::vector<ShardId>, DigestHash>
      active_cross_;
  std::map<uint64_t, std::pair<BlockPtr, int>> retry_blocks_;
  uint64_t next_retry_ = 0;

  // State-sync bookkeeping: one pending request at a time, peers picked
  // round-robin so non-primary replicas serve just as often.
  bool state_sync_pending_ = false;
  int state_sync_rr_ = 0;
  // Executor-wedge watchdog state (see MaybeWatchExecWedge).
  bool exec_wedge_armed_ = false;
  size_t exec_ledger_at_arm_ = 0;
  /// A wedge was DETECTED (deferred blocks + no ledger growth for a full
  /// cross-timeout) and has not drained yet. Distinct from a transient
  /// deferral, which is normal cross-shard machinery and must not gate
  /// intake.
  bool exec_wedged_ = false;
  // Committed-but-possibly-unforwarded ExecOrder messages (separated
  // execution only). Backups keep each one under an evidence watchdog:
  // if no reply certificate for the block comes back down the firewall
  // within a cross-timeout, the primary's push is presumed lost (it may
  // have been crashed at commit time — cross-cluster commits need no
  // live primary) and the backup pushes itself. A view change replays
  // everything immediately. Execution-side dedup absorbs duplicates.
  struct PendingExecPush {
    std::shared_ptr<ExecOrderMsg> msg;
    int tries = 0;
  };
  std::map<uint64_t, PendingExecPush> pending_exec_push_;
  uint64_t next_exec_push_ = 0;

  uint64_t committed_blocks_ = 0;
  uint64_t committed_txs_ = 0;
  uint64_t aborted_blocks_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_PROTOCOLS_ORDERING_NODE_H_
