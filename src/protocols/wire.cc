#include "protocols/wire.h"

namespace qanaat {

namespace {

template <typename T>
bool EncodeBody(const Message& m, Encoder* enc) {
  static_cast<const T&>(m).EncodeTo(enc);
  return true;
}

template <typename T, typename... CtorArgs>
MessageRef DecodeBody(Decoder* dec, uint32_t wire_bytes,
                      uint16_t sig_verify_ops, CtorArgs... args) {
  auto m = std::make_shared<T>(args...);
  if (!T::DecodeFrom(dec, m.get())) return nullptr;
  m->wire_bytes = wire_bytes;
  m->sig_verify_ops = sig_verify_ops;
  return m;
}

}  // namespace

bool EncodeMessage(const Message& m, Encoder* enc) {
  Encoder body;
  bool ok = false;
  switch (m.type) {
    case MsgType::kRequest:
      ok = EncodeBody<RequestMsg>(m, &body);
      break;
    case MsgType::kReply:
      ok = EncodeBody<ReplyMsg>(m, &body);
      break;
    case MsgType::kReplyCert:
      ok = EncodeBody<ReplyCertMsg>(m, &body);
      break;
    case MsgType::kPrePrepare:
      ok = EncodeBody<PrePrepareMsg>(m, &body);
      break;
    case MsgType::kPrepare:
      ok = EncodeBody<PrepareMsg>(m, &body);
      break;
    case MsgType::kCommit:
      ok = EncodeBody<CommitMsg>(m, &body);
      break;
    case MsgType::kViewChange:
      ok = EncodeBody<ViewChangeMsg>(m, &body);
      break;
    case MsgType::kNewView:
      ok = EncodeBody<NewViewMsg>(m, &body);
      break;
    case MsgType::kPaxosAccept:
      ok = EncodeBody<PaxosAcceptMsg>(m, &body);
      break;
    case MsgType::kPaxosAccepted:
      ok = EncodeBody<PaxosAcceptedMsg>(m, &body);
      break;
    case MsgType::kPaxosLearn:
      ok = EncodeBody<PaxosLearnMsg>(m, &body);
      break;
    case MsgType::kPaxosPrepare:
      ok = EncodeBody<PaxosPrepareMsg>(m, &body);
      break;
    case MsgType::kPaxosPromise:
      ok = EncodeBody<PaxosPromiseMsg>(m, &body);
      break;
    case MsgType::kFillRequest:
      ok = EncodeBody<FillRequestMsg>(m, &body);
      break;
    case MsgType::kFillReply:
      ok = EncodeBody<FillReplyMsg>(m, &body);
      break;
    case MsgType::kCheckpoint:
      ok = EncodeBody<CheckpointMsg>(m, &body);
      break;
    case MsgType::kStateRequest:
      ok = EncodeBody<StateRequestMsg>(m, &body);
      break;
    case MsgType::kStateReply:
      ok = EncodeBody<StateReplyMsg>(m, &body);
      break;
    case MsgType::kXPrepare:
      ok = EncodeBody<XPrepareMsg>(m, &body);
      break;
    case MsgType::kXPrepared:
      ok = EncodeBody<XPreparedMsg>(m, &body);
      break;
    case MsgType::kXCommit:
    case MsgType::kXAbort:
      ok = EncodeBody<XCommitMsg>(m, &body);
      break;
    case MsgType::kFPropose:
      ok = EncodeBody<FProposeMsg>(m, &body);
      break;
    case MsgType::kFAccept:
      ok = EncodeBody<FAcceptMsg>(m, &body);
      break;
    case MsgType::kFCommit:
      ok = EncodeBody<FCommitMsg>(m, &body);
      break;
    case MsgType::kCommitQuery:
    case MsgType::kPreparedQuery:
      ok = EncodeBody<QueryMsg>(m, &body);
      break;
    case MsgType::kExecOrder:
      ok = EncodeBody<ExecOrderMsg>(m, &body);
      break;
    case MsgType::kExecReply:
      ok = EncodeBody<ExecReplyMsg>(m, &body);
      break;
    default:
      return false;
  }
  if (!ok) return false;
  enc->PutU8(static_cast<uint8_t>(m.type));
  enc->PutU32(m.wire_bytes);
  enc->PutU16(m.sig_verify_ops);
  enc->PutU32(static_cast<uint32_t>(body.size()));
  enc->PutRaw(body.buffer().data(), body.size());
  return true;
}

MessageRef DecodeMessage(Decoder* dec) {
  uint8_t tag;
  uint32_t wire_bytes;
  uint16_t sig_ops;
  uint32_t body_len;
  if (!dec->GetU8(&tag) || !dec->GetU32(&wire_bytes) ||
      !dec->GetU16(&sig_ops) || !dec->GetU32(&body_len)) {
    return nullptr;
  }
  if (body_len > dec->remaining()) return nullptr;
  // Decode the body inside its declared frame: the decoder must consume
  // exactly body_len bytes, so a corrupted length field can neither leak
  // into the next frame nor leave trailing garbage undetected.
  Decoder body(dec->cursor(), body_len);
  Decoder* outer = dec;
  dec = &body;
  MessageRef out;
  switch (static_cast<MsgType>(tag)) {
    case MsgType::kRequest:
      out = DecodeBody<RequestMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kReply:
      out = DecodeBody<ReplyMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kReplyCert:
      out = DecodeBody<ReplyCertMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPrePrepare:
      out = DecodeBody<PrePrepareMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPrepare:
      out = DecodeBody<PrepareMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kCommit:
      out = DecodeBody<CommitMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kViewChange:
      out = DecodeBody<ViewChangeMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kNewView:
      out = DecodeBody<NewViewMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPaxosAccept:
      out = DecodeBody<PaxosAcceptMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPaxosAccepted:
      out = DecodeBody<PaxosAcceptedMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPaxosLearn:
      out = DecodeBody<PaxosLearnMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPaxosPrepare:
      out = DecodeBody<PaxosPrepareMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kPaxosPromise:
      out = DecodeBody<PaxosPromiseMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kFillRequest:
      out = DecodeBody<FillRequestMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kFillReply:
      out = DecodeBody<FillReplyMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kCheckpoint:
      out = DecodeBody<CheckpointMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kStateRequest:
      out = DecodeBody<StateRequestMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kStateReply:
      out = DecodeBody<StateReplyMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kXPrepare:
      out = DecodeBody<XPrepareMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kXPrepared:
      out = DecodeBody<XPreparedMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kXCommit:
    case MsgType::kXAbort: {
      out = DecodeBody<XCommitMsg>(dec, wire_bytes, sig_ops);
      if (out != nullptr && static_cast<MsgType>(tag) == MsgType::kXAbort) {
        std::const_pointer_cast<Message>(out)->type = MsgType::kXAbort;
      }
      break;
    }
    case MsgType::kFPropose:
      out = DecodeBody<FProposeMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kFAccept:
      out = DecodeBody<FAcceptMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kFCommit:
      out = DecodeBody<FCommitMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kCommitQuery:
    case MsgType::kPreparedQuery:
      out = DecodeBody<QueryMsg>(dec, wire_bytes, sig_ops,
                                 static_cast<MsgType>(tag));
      break;
    case MsgType::kExecOrder:
      out = DecodeBody<ExecOrderMsg>(dec, wire_bytes, sig_ops);
      break;
    case MsgType::kExecReply:
      out = DecodeBody<ExecReplyMsg>(dec, wire_bytes, sig_ops);
      break;
    default:
      return nullptr;
  }
  if (out == nullptr || !body.Done()) return nullptr;
  outer->Skip(body_len);
  return out;
}

}  // namespace qanaat
