#ifndef QANAAT_PROTOCOLS_WIRE_H_
#define QANAAT_PROTOCOLS_WIRE_H_

#include "common/serde.h"
#include "consensus/messages.h"
#include "protocols/cross_messages.h"

namespace qanaat {

/// Encodes a protocol message as a self-describing envelope: type tag,
/// transport metadata (wire_bytes, sig_verify_ops) and the typed body.
/// Returns false for message types without a wire codec (the Fabric
/// baseline's internal messages).
bool EncodeMessage(const Message& m, Encoder* enc);

/// Decodes an envelope produced by EncodeMessage. Returns nullptr on any
/// malformation — unknown tag, truncation, count overflow, digest
/// mismatch — and never throws or crashes on arbitrary bytes.
MessageRef DecodeMessage(Decoder* dec);

}  // namespace qanaat

#endif  // QANAAT_PROTOCOLS_WIRE_H_
