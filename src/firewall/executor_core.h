#ifndef QANAAT_FIREWALL_EXECUTOR_CORE_H_
#define QANAAT_FIREWALL_EXECUTOR_CORE_H_

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "collections/data_model.h"
#include "ledger/dag_ledger.h"
#include "ledger/transaction.h"
#include "sim/env.h"
#include "store/mvstore.h"

namespace qanaat {

/// Deterministic execution engine for one cluster's data shard:
/// maintains the DAG ledger and the multi-versioned stores of every
/// collection the enterprise is involved in (this cluster's shard of
/// each), executes committed blocks in order, and resolves reads of
/// order-dependent collections at exactly the γ-captured version
/// (paper §4.2).
///
/// Used by execution nodes (Byzantine clusters with separation) and by
/// ordering nodes when ordering and execution are co-located (crash
/// clusters, or Byzantine clusters without the privacy firewall).
class ExecutorCore {
 public:
  struct ExecResult {
    BlockPtr block;
    Sha256Digest result_digest;
    size_t tx_count = 0;
    /// (client machine, client timestamp) per transaction, for replies.
    std::vector<std::pair<NodeId, uint64_t>> clients;
    /// Simulated CPU time consumed executing the block.
    SimTime cpu_cost = 0;
  };
  using ExecCallback = std::function<void(const ExecResult&)>;

  ExecutorCore(Env* env, const DataModel* model, EnterpriseId enterprise,
               ShardId shard);

  /// Submits a committed block for in-order execution. The block runs
  /// once its chain predecessor has run and every γ dependency on a
  /// matching shard is locally committed; otherwise it waits. `on_done`
  /// fires synchronously when the block executes (possibly during a later
  /// Submit that unblocks it).
  Status Submit(BlockPtr block, CommitCertificate cert,
                const LocalPart& alpha_here, std::vector<GammaEntry> gamma,
                ExecCallback on_done);

  const DagLedger& ledger() const { return ledger_; }
  const MvStore& StoreOf(const CollectionId& c) const;
  MvStore* MutableStoreOf(const CollectionId& c);

  /// State-identity surface for the chaos auditor: the fingerprint of
  /// this shard's store of collection `c` (0 when never written).
  uint64_t StateFingerprintOf(const CollectionId& c) const {
    return StoreOf(c).Fingerprint();
  }

  EnterpriseId enterprise() const { return enterprise_; }
  ShardId shard() const { return shard_; }
  uint64_t executed_blocks() const { return executed_blocks_; }
  uint64_t executed_txs() const { return executed_txs_; }
  size_t pending_blocks() const { return waiting_.size(); }

  struct Pending {
    BlockPtr block;
    CommitCertificate cert;
    LocalPart alpha;
    std::vector<GammaEntry> gamma;
    ExecCallback on_done;
  };
  /// Committed blocks still waiting on a chain predecessor or γ
  /// dependency. State-transfer servers include these beyond the
  /// requester's heads: a wedged chain would otherwise hide its certified
  /// tail from every sync until the wedge resolves — after which the
  /// requester may never sync again (the tail block has no successor to
  /// reveal the gap).
  const std::vector<Pending>& pending() const { return waiting_; }

 private:

  bool Ready(const Pending& p) const;
  void ExecuteNow(Pending& p);
  void DrainReady();
  /// Executes one transaction; returns a digest contribution.
  uint64_t ExecuteTx(const Transaction& tx,
                     const std::vector<GammaEntry>& gamma, SeqNo version);

  Env* env_;
  const DataModel* model_;
  EnterpriseId enterprise_;
  ShardId shard_;
  DagLedger ledger_;
  std::map<CollectionId, MvStore> stores_;
  std::vector<Pending> waiting_;
  uint64_t executed_blocks_ = 0;
  uint64_t executed_txs_ = 0;
};

}  // namespace qanaat

#endif  // QANAAT_FIREWALL_EXECUTOR_CORE_H_
