#include "firewall/firewall.h"

#include <algorithm>

#include "protocols/cross_messages.h"

namespace qanaat {

// ------------------------------------------------------- ExecutionNode

ExecutionNode::ExecutionNode(Env* env, const Directory* dir,
                             const DataModel* model, int cluster_id,
                             int index)
    : Actor(env, "exec/" + std::to_string(cluster_id) + "/" +
                     std::to_string(index),
            dir->Cluster(cluster_id).region),
      dir_(dir),
      cfg_(dir->Cluster(cluster_id)),
      index_(index),
      core_(env, model, cfg_.enterprise, cfg_.shard) {}

void ExecutionNode::OnMessage(NodeId from, const MessageRef& msg) {
  if (msg->type == MsgType::kExecOrder) {
    HandleExecOrder(*msg->As<ExecOrderMsg>());
  } else if (msg->type == MsgType::kStateRequest) {
    HandleStateRequest(from, *msg->As<StateRequestMsg>());
  } else if (msg->type == MsgType::kStateReply) {
    HandleStateReply(*msg->As<StateReplyMsg>());
  }
}

void ExecutionNode::OnTimer(uint64_t tag, uint64_t /*payload*/) {
  if (tag != kTagPull) return;
  pull_armed_ = false;
  if (core_.pending_blocks() == 0) return;  // the push stream caught up
  if (core_.ledger().size() > pull_ledger_mark_) {
    // Progress since arming: pushes are draining the gap. Keep watching
    // without pulling, so a merely-slow stream never costs a transfer.
    ArmPullWatchdog();
    return;
  }
  env()->metrics.Inc("exec.pull_wedged");
  SendPullRequest();
  ArmPullWatchdog();
}

void ExecutionNode::OnRecover() {
  if (!dir_->params.state_transfer) return;
  env()->metrics.Inc("exec.pull_on_recover");
  SendPullRequest();
  ArmPullWatchdog();
}

void ExecutionNode::ArmPullWatchdog() {
  if (!dir_->params.state_transfer || pull_armed_) return;
  pull_armed_ = true;
  pull_ledger_mark_ = core_.ledger().size();
  StartTimer(dir_->params.consensus_timeout_us, kTagPull);
}

void ExecutionNode::SendPullRequest() {
  auto req = std::make_shared<StateRequestMsg>();
  for (const auto& [ref, chain] : core_.ledger().chains()) {
    req->heads.push_back(StateRequestMsg::ChainHead{
        ref.collection, ref.shard, core_.ledger().HeadOf(ref)});
  }
  // An executor has no consensus frontier; the max sentinel suppresses
  // checkpoint-only replies — it only ever wants ledger entries.
  req->frontier = UINT64_MAX;
  req->requester = id();
  req->wire_bytes = 48 + static_cast<uint32_t>(req->heads.size()) * 16;
  env()->metrics.Inc("exec.pull_requested");
  if (cfg_.HasFirewall()) {
    // The top filter row brokers the transfer to a serving peer.
    const std::vector<NodeId>& hop = cfg_.filter_rows.back();
    Send(hop[pull_rr_++ % hop.size()], req);
    return;
  }
  // No firewall (Fig 4(b)): pull from a peer execution node directly —
  // they, not the ordering nodes, retain the executable ledger.
  std::vector<NodeId> peers;
  for (NodeId p : cfg_.execution) {
    if (p != id()) peers.push_back(p);
  }
  if (peers.empty()) return;
  Send(peers[pull_rr_++ % peers.size()], req);
}

void ExecutionNode::HandleStateRequest(NodeId from,
                                       const StateRequestMsg& m) {
  if (!dir_->params.state_transfer) return;
  if (std::find(cfg_.execution.begin(), cfg_.execution.end(), m.requester) ==
      cfg_.execution.end()) {
    return;  // filters validate this too; defense in depth
  }
  std::map<ShardRef, SeqNo> req_heads;
  for (const auto& h : m.heads) {
    req_heads[ShardRef{h.collection, h.shard}] = h.head;
  }
  // Same chunking as the ordering-side server: at most kMaxEntries per
  // reply, filled round-robin ACROSS chains so a long chain cannot
  // starve the chain its γ dependencies point at; the requester re-pulls
  // with advanced heads until a round installs nothing new.
  constexpr size_t kMaxEntries = 256;
  auto rep = std::make_shared<StateReplyMsg>();
  const DagLedger& led = core_.ledger();
  uint64_t bytes = 64;
  size_t verify_ops = 0;
  std::vector<std::pair<const std::vector<size_t>*, size_t>> cursors;
  for (const auto& [ref, chain] : led.chains()) {
    auto it = req_heads.find(ref);
    SeqNo have = it == req_heads.end() ? 0 : it->second;
    if (have < chain.size()) cursors.emplace_back(&chain, have);
  }
  bool any = true;
  while (any && rep->entries.size() < kMaxEntries) {
    any = false;
    for (auto& [chain, i] : cursors) {
      if (i >= chain->size() || rep->entries.size() >= kMaxEntries) {
        continue;
      }
      const DagLedger::Entry& e = led.entry((*chain)[i++]);
      rep->entries.push_back(
          StateReplyMsg::Entry{e.block, e.cert, e.alpha, e.gamma});
      bytes += 64 + e.block->WireSize() + e.cert.WireSize();
      verify_ops += e.cert.sigs.size();
      any = true;
    }
  }
  // Certified-but-wedged tail (see the ordering-side server): committed
  // blocks still waiting on predecessors here must travel too, or a
  // requester recovering during the wedge can never learn them.
  for (const auto& p : core_.pending()) {
    if (rep->entries.size() >= kMaxEntries) break;
    auto it = req_heads.find(ShardRef{p.alpha.collection, p.alpha.shard});
    SeqNo have = it == req_heads.end() ? 0 : it->second;
    if (p.alpha.n <= have) continue;
    rep->entries.push_back(
        StateReplyMsg::Entry{p.block, p.cert, p.alpha, p.gamma});
    bytes += 64 + p.block->WireSize() + p.cert.WireSize();
    verify_ops += p.cert.sigs.size();
  }
  if (rep->entries.empty()) return;  // nothing the requester lacks
  rep->requester = m.requester;
  rep->wire_bytes =
      static_cast<uint32_t>(std::min<uint64_t>(bytes, UINT32_MAX));
  rep->sig_verify_ops =
      static_cast<uint16_t>(std::min<size_t>(verify_ops, 65535));
  env()->metrics.Inc("exec.state_served");
  env()->metrics.Inc("exec.state_blocks_served", rep->entries.size());
  // With a firewall `from` is the brokering top-row filter, which routes
  // the reply to the requester; without one it is the requester itself.
  Send(from, rep);
}

void ExecutionNode::HandleStateReply(const StateReplyMsg& m) {
  if (!dir_->params.state_transfer) return;
  size_t installed = 0;
  for (const auto& e : m.entries) {
    ShardRef ref{e.alpha.collection, e.alpha.shard};
    if (e.alpha.n <= core_.ledger().HeadOf(ref)) continue;  // have it
    if (!VerifyTransferredLedgerEntry(*dir_, env()->keystore, e)) {
      env()->metrics.Inc("exec.bad_pull_block");
      continue;
    }
    if (seen_.count(e.cert.block_digest)) continue;
    seen_.insert(e.cert.block_digest);
    // Re-execution rebuilds the store deterministically. No reply share
    // goes out for pulled blocks: the clients were answered by the
    // executors that stayed up, this node only needs to converge.
    Status st = core_.Submit(
        e.block, e.cert, e.alpha, e.gamma,
        [this](const ExecutorCore::ExecResult& res) {
          ChargeCpu(res.cpu_cost);
        });
    if (st.ok()) {
      ++installed;
      env()->metrics.Inc("exec.pull_block_installed");
    }
  }
  if (installed > 0) {
    // Another round with the advanced heads: replies are chunked, and
    // the serving node may have committed more meanwhile. The exchange
    // quiesces once a round installs nothing new.
    SendPullRequest();
  }
}

void ExecutionNode::HandleExecOrder(const ExecOrderMsg& m) {
  // Verify the commit certificate: 2f+1 ordering-node signatures over
  // the block digest.
  if (m.cert.block_digest != m.block->Digest() ||
      !m.cert.Valid(env()->keystore, dir_->params.CertQuorum())) {
    env()->metrics.Inc("exec.bad_cert");
    return;
  }
  if (seen_.count(m.cert.block_digest)) return;
  seen_.insert(m.cert.block_digest);

  Status st = core_.Submit(
      m.block, m.cert, m.alpha_here, m.gamma_here,
      [this](const ExecutorCore::ExecResult& res) {
        ChargeCpu(res.cpu_cost);
        auto reply = std::make_shared<ExecReplyMsg>();
        reply->block_digest = res.block->Digest();
        reply->result_digest = res.result_digest;
        if (corrupt_replies_) {
          // Byzantine executor: stuff a bogus (potentially confidential)
          // payload into the reply. Correct executors' replies won't
          // match, so the top filter row can never assemble g+1 shares
          // around this value.
          reply->result_digest.bytes[0] ^= 0x5a;
          reply->wire_bytes += 512;
        }
        reply->clients = res.clients;
        Encoder enc;
        enc.PutRaw(reply->block_digest.bytes.data(), 32);
        enc.PutRaw(reply->result_digest.bytes.data(), 32);
        reply->sig =
            env()->keystore.SignShare(id(), Sha256::Hash(enc.buffer()));
        reply->wire_bytes += static_cast<uint32_t>(res.clients.size() * 12);

        if (cfg_.HasFirewall()) {
          Multicast(cfg_.filter_rows.back(), reply);
        } else {
          // Fig 4(b): crash-only execution nodes reply straight to the
          // ordering primary, which forwards to clients.
          Send(cfg_.InitialPrimary(), reply);
        }
      });
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
    env()->metrics.Inc("exec.submit_error");
  }
  // A block parked behind a missing predecessor or γ dependency means a
  // ledger gap: start (or keep) the pull watchdog so a push lost for
  // good cannot wedge this executor forever.
  if (core_.pending_blocks() > 0) ArmPullWatchdog();
}

// ----------------------------------------------------------- FilterNode

FilterNode::FilterNode(Env* env, const Directory* dir, int cluster_id,
                       int row, int index)
    : Actor(env, "filter/" + std::to_string(cluster_id) + "/" +
                     std::to_string(row) + "/" + std::to_string(index),
            dir->Cluster(cluster_id).region),
      dir_(dir),
      cfg_(dir->Cluster(cluster_id)),
      row_(row),
      index_(index),
      top_row_(row ==
               static_cast<int>(cfg_.filter_rows.size()) - 1) {}

std::vector<NodeId> FilterNode::Above() const {
  if (top_row_) return cfg_.execution;
  return cfg_.filter_rows[row_ + 1];
}

std::vector<NodeId> FilterNode::Below() const {
  if (row_ == 0) return cfg_.ordering;
  return cfg_.filter_rows[row_ - 1];
}

void FilterNode::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kExecOrder:
      HandleExecOrder(from, msg);
      break;
    case MsgType::kExecReply:
      HandleExecReply(from, *msg->As<ExecReplyMsg>());
      break;
    case MsgType::kReplyCert:
      HandleReplyCert(from, msg);
      break;
    case MsgType::kStateRequest:
      HandleStateRequest(from, msg);
      break;
    case MsgType::kStateReply:
      HandleStateReply(from, msg);
      break;
    default:
      ++filtered_;
      env()->metrics.Inc("firewall.filtered_unknown");
      break;
  }
}

void FilterNode::HandleExecOrder(NodeId /*from*/, const MessageRef& msg) {
  const auto& m = *msg->As<ExecOrderMsg>();
  // Filters check the request and commit certificate are valid (§4.2)
  // before passing them toward the execution nodes.
  if (m.cert.block_digest != m.block->Digest() ||
      !m.cert.Valid(env()->keystore, dir_->params.CertQuorum())) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_cert");
    return;
  }
  if (forwarded_down_.count(m.cert.block_digest)) return;
  forwarded_down_.insert(m.cert.block_digest);
  if (byzantine()) {
    // A malicious filter may corrupt what it forwards; the next row's
    // certificate check drops the damaged copy, and the row-mate's clean
    // copy keeps the protocol live (the h+1-per-row argument, §3.4).
    auto evil = std::make_shared<ExecOrderMsg>(m);
    evil->cert.sigs[0] = env()->keystore.Forge(evil->cert.sigs[0].signer);
    Multicast(Above(), evil);
    return;
  }
  Multicast(Above(), msg);
}

void FilterNode::HandleExecReply(NodeId from, const ExecReplyMsg& m) {
  if (!top_row_) {
    // Reply shares are only accepted by the top row, directly from the
    // execution nodes; anything else is out-of-protocol traffic.
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_misrouted_reply");
    return;
  }
  Encoder enc;
  enc.PutRaw(m.block_digest.bytes.data(), 32);
  enc.PutRaw(m.result_digest.bytes.data(), 32);
  Sha256Digest signable = Sha256::Hash(enc.buffer());
  if (m.sig.signer != from ||
      !env()->keystore.VerifyShare(m.sig, signable)) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_share");
    return;
  }
  if (forwarded_up_.count(m.block_digest)) return;

  auto& by_result = reply_shares_[m.block_digest];
  by_result[m.result_digest][from] = m.sig;
  if (!reply_bodies_.count(m.result_digest)) {
    reply_bodies_[m.result_digest] =
        std::make_shared<ExecReplyMsg>(m);
  }

  size_t quorum = static_cast<size_t>(dir_->params.g) + 1;
  for (auto& [result, shares] : by_result) {
    if (shares.size() < quorum) continue;
    // g+1 matching replies: assemble the reply certificate (§4.2).
    forwarded_up_.insert(m.block_digest);
    auto cert_msg = std::make_shared<ReplyCertMsg>();
    cert_msg->block_digest = m.block_digest;
    cert_msg->result_digest = result;
    cert_msg->clients = reply_bodies_[result]->clients;
    cert_msg->cert.reply_digest = result;
    for (auto& [node, sig] : shares) cert_msg->cert.sigs.push_back(sig);
    cert_msg->wire_bytes =
        96 + static_cast<uint32_t>(cert_msg->clients.size() * 12 +
                                   cert_msg->cert.sigs.size() * 20);
    Multicast(Below(), cert_msg);
    reply_shares_.erase(m.block_digest);
    return;
  }
}

void FilterNode::HandleReplyCert(NodeId /*from*/, const MessageRef& msg) {
  const auto& m = *msg->As<ReplyCertMsg>();
  if (top_row_) {
    // Certificates originate at the top row; one arriving from elsewhere
    // is out-of-protocol.
    ++filtered_;
    return;
  }
  // Each row re-validates the certificate, so a row of correct filters
  // drops anything a malicious filter below the top row injected.
  Encoder enc;
  enc.PutRaw(m.block_digest.bytes.data(), 32);
  enc.PutRaw(m.result_digest.bytes.data(), 32);
  Sha256Digest signable = Sha256::Hash(enc.buffer());
  size_t quorum = static_cast<size_t>(dir_->params.g) + 1;
  std::set<NodeId> distinct;
  for (const auto& s : m.cert.sigs) {
    if (!env()->keystore.VerifyShare(s, signable)) {
      ++filtered_;
      env()->metrics.Inc("firewall.filtered_bad_cert_share");
      return;
    }
    distinct.insert(s.signer);
  }
  if (distinct.size() < quorum) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_short_cert");
    return;
  }
  if (forwarded_up_.count(m.block_digest)) return;
  forwarded_up_.insert(m.block_digest);
  if (byzantine()) {
    auto evil = std::make_shared<ReplyCertMsg>(m);
    evil->result_digest.bytes[0] ^= 0x77;  // tampered result
    Multicast(Below(), evil);
    return;
  }
  Multicast(Below(), msg);
}

void FilterNode::HandleStateRequest(NodeId /*from*/, const MessageRef& msg) {
  const auto& m = *msg->As<StateRequestMsg>();
  // Only pulls originated by this cluster's execution nodes may use the
  // firewall, and only through the top row; anything else is
  // out-of-protocol traffic.
  if (!top_row_ ||
      std::find(cfg_.execution.begin(), cfg_.execution.end(), m.requester) ==
          cfg_.execution.end()) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_pull");
    return;
  }
  // Broker to a serving peer — never back to the requester itself.
  std::vector<NodeId> peers;
  for (NodeId p : cfg_.execution) {
    if (p != m.requester) peers.push_back(p);
  }
  if (peers.empty()) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_pull");
    return;
  }
  Send(peers[pull_rr_serve_++ % peers.size()], msg);
}

void FilterNode::HandleStateReply(NodeId /*from*/, const MessageRef& msg) {
  const auto& m = *msg->As<StateReplyMsg>();
  if (std::find(cfg_.execution.begin(), cfg_.execution.end(), m.requester) ==
      cfg_.execution.end()) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_pull");
    return;
  }
  if (!top_row_) {
    // Transfers never cross below the top row: a StateReply arriving at
    // a lower row was injected or misrouted.
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_pull");
    return;
  }
  // The requester validated above is one of our execution nodes, so this
  // delivery stays inside the firewall's wiring.
  Send(m.requester, msg);
}

// --------------------------------------------------- link restrictions

void RestrictFirewallLinks(Network* net, const ClusterConfig& cfg) {
  if (!cfg.HasFirewall()) return;
  const int rows = static_cast<int>(cfg.filter_rows.size());
  // Execution nodes: only the top filter row.
  for (NodeId e : cfg.execution) {
    net->RestrictLinks(e, cfg.filter_rows[rows - 1]);
  }
  // Filters: only the rows above and below.
  for (int r = 0; r < rows; ++r) {
    std::vector<NodeId> peers;
    const std::vector<NodeId>& below =
        (r == 0) ? cfg.ordering : cfg.filter_rows[r - 1];
    const std::vector<NodeId>& above =
        (r == rows - 1) ? cfg.execution : cfg.filter_rows[r + 1];
    peers.insert(peers.end(), below.begin(), below.end());
    peers.insert(peers.end(), above.begin(), above.end());
    for (NodeId fnode : cfg.filter_rows[r]) {
      net->RestrictLinks(fnode, peers);
    }
  }
}

}  // namespace qanaat
