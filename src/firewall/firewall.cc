#include "firewall/firewall.h"

namespace qanaat {

// ------------------------------------------------------- ExecutionNode

ExecutionNode::ExecutionNode(Env* env, const Directory* dir,
                             const DataModel* model, int cluster_id,
                             int index)
    : Actor(env, "exec/" + std::to_string(cluster_id) + "/" +
                     std::to_string(index),
            dir->Cluster(cluster_id).region),
      dir_(dir),
      cfg_(dir->Cluster(cluster_id)),
      index_(index),
      core_(env, model, cfg_.enterprise, cfg_.shard) {}

void ExecutionNode::OnMessage(NodeId /*from*/, const MessageRef& msg) {
  if (msg->type == MsgType::kExecOrder) {
    HandleExecOrder(*msg->As<ExecOrderMsg>());
  }
}

void ExecutionNode::HandleExecOrder(const ExecOrderMsg& m) {
  // Verify the commit certificate: 2f+1 ordering-node signatures over
  // the block digest.
  if (m.cert.block_digest != m.block->Digest() ||
      !m.cert.Valid(env()->keystore, dir_->params.CertQuorum())) {
    env()->metrics.Inc("exec.bad_cert");
    return;
  }
  if (seen_.count(m.cert.block_digest)) return;
  seen_.insert(m.cert.block_digest);

  Status st = core_.Submit(
      m.block, m.cert, m.alpha_here, m.gamma_here,
      [this](const ExecutorCore::ExecResult& res) {
        ChargeCpu(res.cpu_cost);
        auto reply = std::make_shared<ExecReplyMsg>();
        reply->block_digest = res.block->Digest();
        reply->result_digest = res.result_digest;
        if (corrupt_replies_) {
          // Byzantine executor: stuff a bogus (potentially confidential)
          // payload into the reply. Correct executors' replies won't
          // match, so the top filter row can never assemble g+1 shares
          // around this value.
          reply->result_digest.bytes[0] ^= 0x5a;
          reply->wire_bytes += 512;
        }
        reply->clients = res.clients;
        Encoder enc;
        enc.PutRaw(reply->block_digest.bytes.data(), 32);
        enc.PutRaw(reply->result_digest.bytes.data(), 32);
        reply->sig =
            env()->keystore.SignShare(id(), Sha256::Hash(enc.buffer()));
        reply->wire_bytes += static_cast<uint32_t>(res.clients.size() * 12);

        if (cfg_.HasFirewall()) {
          Multicast(cfg_.filter_rows.back(), reply);
        } else {
          // Fig 4(b): crash-only execution nodes reply straight to the
          // ordering primary, which forwards to clients.
          Send(cfg_.InitialPrimary(), reply);
        }
      });
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
    env()->metrics.Inc("exec.submit_error");
  }
}

// ----------------------------------------------------------- FilterNode

FilterNode::FilterNode(Env* env, const Directory* dir, int cluster_id,
                       int row, int index)
    : Actor(env, "filter/" + std::to_string(cluster_id) + "/" +
                     std::to_string(row) + "/" + std::to_string(index),
            dir->Cluster(cluster_id).region),
      dir_(dir),
      cfg_(dir->Cluster(cluster_id)),
      row_(row),
      index_(index),
      top_row_(row ==
               static_cast<int>(cfg_.filter_rows.size()) - 1) {}

std::vector<NodeId> FilterNode::Above() const {
  if (top_row_) return cfg_.execution;
  return cfg_.filter_rows[row_ + 1];
}

std::vector<NodeId> FilterNode::Below() const {
  if (row_ == 0) return cfg_.ordering;
  return cfg_.filter_rows[row_ - 1];
}

void FilterNode::OnMessage(NodeId from, const MessageRef& msg) {
  switch (msg->type) {
    case MsgType::kExecOrder:
      HandleExecOrder(from, msg);
      break;
    case MsgType::kExecReply:
      HandleExecReply(from, *msg->As<ExecReplyMsg>());
      break;
    case MsgType::kReplyCert:
      HandleReplyCert(from, msg);
      break;
    default:
      ++filtered_;
      env()->metrics.Inc("firewall.filtered_unknown");
      break;
  }
}

void FilterNode::HandleExecOrder(NodeId /*from*/, const MessageRef& msg) {
  const auto& m = *msg->As<ExecOrderMsg>();
  // Filters check the request and commit certificate are valid (§4.2)
  // before passing them toward the execution nodes.
  if (m.cert.block_digest != m.block->Digest() ||
      !m.cert.Valid(env()->keystore, dir_->params.CertQuorum())) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_cert");
    return;
  }
  if (forwarded_down_.count(m.cert.block_digest)) return;
  forwarded_down_.insert(m.cert.block_digest);
  if (byzantine()) {
    // A malicious filter may corrupt what it forwards; the next row's
    // certificate check drops the damaged copy, and the row-mate's clean
    // copy keeps the protocol live (the h+1-per-row argument, §3.4).
    auto evil = std::make_shared<ExecOrderMsg>(m);
    evil->cert.sigs[0] = env()->keystore.Forge(evil->cert.sigs[0].signer);
    Multicast(Above(), evil);
    return;
  }
  Multicast(Above(), msg);
}

void FilterNode::HandleExecReply(NodeId from, const ExecReplyMsg& m) {
  if (!top_row_) {
    // Reply shares are only accepted by the top row, directly from the
    // execution nodes; anything else is out-of-protocol traffic.
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_misrouted_reply");
    return;
  }
  Encoder enc;
  enc.PutRaw(m.block_digest.bytes.data(), 32);
  enc.PutRaw(m.result_digest.bytes.data(), 32);
  Sha256Digest signable = Sha256::Hash(enc.buffer());
  if (m.sig.signer != from ||
      !env()->keystore.VerifyShare(m.sig, signable)) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_bad_share");
    return;
  }
  if (forwarded_up_.count(m.block_digest)) return;

  auto& by_result = reply_shares_[m.block_digest];
  by_result[m.result_digest][from] = m.sig;
  if (!reply_bodies_.count(m.result_digest)) {
    reply_bodies_[m.result_digest] =
        std::make_shared<ExecReplyMsg>(m);
  }

  size_t quorum = static_cast<size_t>(dir_->params.g) + 1;
  for (auto& [result, shares] : by_result) {
    if (shares.size() < quorum) continue;
    // g+1 matching replies: assemble the reply certificate (§4.2).
    forwarded_up_.insert(m.block_digest);
    auto cert_msg = std::make_shared<ReplyCertMsg>();
    cert_msg->block_digest = m.block_digest;
    cert_msg->result_digest = result;
    cert_msg->clients = reply_bodies_[result]->clients;
    cert_msg->cert.reply_digest = result;
    for (auto& [node, sig] : shares) cert_msg->cert.sigs.push_back(sig);
    cert_msg->wire_bytes =
        96 + static_cast<uint32_t>(cert_msg->clients.size() * 12 +
                                   cert_msg->cert.sigs.size() * 20);
    Multicast(Below(), cert_msg);
    reply_shares_.erase(m.block_digest);
    return;
  }
}

void FilterNode::HandleReplyCert(NodeId /*from*/, const MessageRef& msg) {
  const auto& m = *msg->As<ReplyCertMsg>();
  if (top_row_) {
    // Certificates originate at the top row; one arriving from elsewhere
    // is out-of-protocol.
    ++filtered_;
    return;
  }
  // Each row re-validates the certificate, so a row of correct filters
  // drops anything a malicious filter below the top row injected.
  Encoder enc;
  enc.PutRaw(m.block_digest.bytes.data(), 32);
  enc.PutRaw(m.result_digest.bytes.data(), 32);
  Sha256Digest signable = Sha256::Hash(enc.buffer());
  size_t quorum = static_cast<size_t>(dir_->params.g) + 1;
  std::set<NodeId> distinct;
  for (const auto& s : m.cert.sigs) {
    if (!env()->keystore.VerifyShare(s, signable)) {
      ++filtered_;
      env()->metrics.Inc("firewall.filtered_bad_cert_share");
      return;
    }
    distinct.insert(s.signer);
  }
  if (distinct.size() < quorum) {
    ++filtered_;
    env()->metrics.Inc("firewall.filtered_short_cert");
    return;
  }
  if (forwarded_up_.count(m.block_digest)) return;
  forwarded_up_.insert(m.block_digest);
  if (byzantine()) {
    auto evil = std::make_shared<ReplyCertMsg>(m);
    evil->result_digest.bytes[0] ^= 0x77;  // tampered result
    Multicast(Below(), evil);
    return;
  }
  Multicast(Below(), msg);
}

// --------------------------------------------------- link restrictions

void RestrictFirewallLinks(Network* net, const ClusterConfig& cfg) {
  if (!cfg.HasFirewall()) return;
  const int rows = static_cast<int>(cfg.filter_rows.size());
  // Execution nodes: only the top filter row.
  for (NodeId e : cfg.execution) {
    net->RestrictLinks(e, cfg.filter_rows[rows - 1]);
  }
  // Filters: only the rows above and below.
  for (int r = 0; r < rows; ++r) {
    std::vector<NodeId> peers;
    const std::vector<NodeId>& below =
        (r == 0) ? cfg.ordering : cfg.filter_rows[r - 1];
    const std::vector<NodeId>& above =
        (r == rows - 1) ? cfg.execution : cfg.filter_rows[r + 1];
    peers.insert(peers.end(), below.begin(), below.end());
    peers.insert(peers.end(), above.begin(), above.end());
    for (NodeId fnode : cfg.filter_rows[r]) {
      net->RestrictLinks(fnode, peers);
    }
  }
}

}  // namespace qanaat
