#include "firewall/executor_core.h"

#include <algorithm>

namespace qanaat {

ExecutorCore::ExecutorCore(Env* env, const DataModel* model,
                           EnterpriseId enterprise, ShardId shard)
    : env_(env), model_(model), enterprise_(enterprise), shard_(shard) {}

const MvStore& ExecutorCore::StoreOf(const CollectionId& c) const {
  static const MvStore kEmpty;
  auto it = stores_.find(c);
  return it == stores_.end() ? kEmpty : it->second;
}

MvStore* ExecutorCore::MutableStoreOf(const CollectionId& c) {
  return &stores_[c];
}

bool ExecutorCore::Ready(const Pending& p) const {
  // In-order per chain.
  ShardRef ref{p.alpha.collection, p.alpha.shard};
  if (p.alpha.n != ledger_.HeadOf(ref) + 1) return false;
  // γ dependencies: for entries captured on our shard index, the
  // referenced state must be locally committed so the snapshot read is
  // resolvable (paper §4.2 — nodes execute "if all transactions ... with
  // lower sequence numbers have been executed", and read the captured
  // state of order-dependent collections).
  for (const auto& ge : p.gamma) {
    if (ledger_.StateOf(ge.collection) < ge.m) return false;
  }
  return true;
}

uint64_t ExecutorCore::ExecuteTx(const Transaction& tx,
                                 const std::vector<GammaEntry>& gamma,
                                 SeqNo version) {
  MvStore* own = MutableStoreOf(tx.collection);
  WriteBatch batch;
  uint64_t acc = 0xcbf29ce484222325ULL;  // FNV accumulator over results
  auto mix = [&acc](uint64_t v) {
    acc = (acc ^ v) * 0x100000001b3ULL;
  };

  // Cross-shard transactions: this cluster applies only the ops whose key
  // lives on its shard (keys are sharded by key % shard_count).
  int shard_count = model_->ShardCountOf(tx.collection);
  auto on_my_shard = [&](uint64_t key) {
    if (tx.shards.size() <= 1) return true;
    return static_cast<ShardId>(key % shard_count) == shard_;
  };

  for (const auto& op : tx.ops) {
    switch (op.kind) {
      case TxOp::Kind::kRead: {
        if (!on_my_shard(op.key)) break;
        const int64_t* v = own->Find(op.key);
        mix(v != nullptr ? static_cast<uint64_t>(*v) : 0);
        break;
      }
      case TxOp::Kind::kWrite: {
        if (!on_my_shard(op.key)) break;
        batch.Put(op.key, op.value);
        mix(static_cast<uint64_t>(op.value));
        break;
      }
      case TxOp::Kind::kAdd: {
        if (!on_my_shard(op.key)) break;
        // Read latest pending-in-batch or committed value.
        int64_t cur = 0;
        bool in_batch = false;
        for (auto it = batch.writes().rbegin(); it != batch.writes().rend();
             ++it) {
          if (it->first == op.key) {
            cur = it->second;
            in_batch = true;
            break;
          }
        }
        if (!in_batch) {
          const int64_t* v = own->Find(op.key);
          if (v != nullptr) cur = *v;
        }
        batch.Put(op.key, cur + op.value);
        mix(static_cast<uint64_t>(cur + op.value));
        break;
      }
      case TxOp::Kind::kReadDep: {
        // Read an order-dependent collection at the γ-captured version.
        const MvStore& dep = StoreOf(op.dep);
        SeqNo at = 0;
        for (const auto& ge : gamma) {
          if (ge.collection == op.dep) {
            at = ge.m;
            break;
          }
        }
        auto v = dep.GetAt(op.key, at);
        mix(v.ok() ? static_cast<uint64_t>(*v) : 0);
        break;
      }
    }
  }
  Status st = batch.ApplyTo(own, version);
  if (!st.ok()) env_->metrics.Inc("exec.apply_error");
  return acc;
}

void ExecutorCore::ExecuteNow(Pending& p) {
  Status st = ledger_.AppendFor(p.block, p.cert, env_->sim.now(), p.alpha,
                                p.gamma);
  if (!st.ok()) {
    env_->metrics.Inc("exec.append_error");
    return;
  }
  ExecResult res;
  res.block = p.block;
  res.tx_count = p.block->tx_count();
  uint64_t acc = p.block->Digest().Prefix64();
  for (const auto& tx : p.block->txs) {
    acc ^= ExecuteTx(tx, p.gamma, p.alpha.n) * 0x9e3779b97f4a7c15ULL;
    res.clients.emplace_back(tx.client, tx.client_ts);
  }
  // The result digest authenticates the 64-bit execution fold `acc`
  // against the (real-SHA) block digest; deriving it with the keyed
  // digest mix instead of hashing an 8-byte buffer keeps the content
  // chain rooted in SHA-256 while dropping a full SHA per block
  // execution per replica (see DeriveDigest in ledger/block.h).
  res.result_digest =
      DeriveDigest(0x52534c54u /* "RSLT" */, acc, p.alpha.n,
                   p.block->Digest());
  res.cpu_cost =
      static_cast<SimTime>(res.tx_count) * env_->costs.exec_tx_us;
  executed_blocks_++;
  executed_txs_ += res.tx_count;
  if (p.on_done) p.on_done(res);
}

void ExecutorCore::DrainReady() {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = waiting_.begin(); it != waiting_.end(); ++it) {
      if (Ready(*it)) {
        Pending p = std::move(*it);
        waiting_.erase(it);
        ExecuteNow(p);
        progressed = true;
        break;
      }
    }
  }
  // Drop entries overtaken by what just executed (a state transfer can
  // race a live commit of the same block): their sequence number can
  // never match head+1 again, so they would sit in the queue forever.
  waiting_.erase(
      std::remove_if(waiting_.begin(), waiting_.end(),
                     [this](const Pending& p) {
                       ShardRef ref{p.alpha.collection, p.alpha.shard};
                       return p.alpha.n <= ledger_.HeadOf(ref);
                     }),
      waiting_.end());
}

Status ExecutorCore::Submit(BlockPtr block, CommitCertificate cert,
                            const LocalPart& alpha_here,
                            std::vector<GammaEntry> gamma,
                            ExecCallback on_done) {
  ShardRef ref{alpha_here.collection, alpha_here.shard};
  if (alpha_here.n <= ledger_.HeadOf(ref)) {
    return Status::AlreadyExists("duplicate block " +
                                 std::to_string(alpha_here.n));
  }
  for (const Pending& w : waiting_) {
    if (w.alpha.collection == alpha_here.collection &&
        w.alpha.shard == alpha_here.shard && w.alpha.n == alpha_here.n) {
      return Status::AlreadyExists("block already queued " +
                                   std::to_string(alpha_here.n));
    }
  }
  Pending p{std::move(block), std::move(cert), alpha_here, std::move(gamma),
            std::move(on_done)};
  if (Ready(p)) {
    ExecuteNow(p);
    DrainReady();
  } else {
    env_->metrics.Inc("exec.deferred");
    waiting_.push_back(std::move(p));
  }
  return Status::Ok();
}

}  // namespace qanaat
