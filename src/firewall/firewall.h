#ifndef QANAAT_FIREWALL_FIREWALL_H_
#define QANAAT_FIREWALL_FIREWALL_H_

#include <map>
#include <set>
#include <vector>

#include "consensus/messages.h"
#include "firewall/executor_core.h"
#include "protocols/context.h"
#include "sim/network.h"

namespace qanaat {

/// An execution node of a Byzantine cluster with ordering/execution
/// separation (paper §3.4/§4.2): verifies the commit certificate coming
/// through the firewall, appends the block to its ledger, executes it
/// deterministically, and sends a signed reply share toward the top
/// filter row (or, without a firewall, directly to clients and the
/// ordering nodes — Fig 4(b)).
class ExecutionNode : public Actor {
 public:
  ExecutionNode(Env* env, const Directory* dir, const DataModel* model,
                int cluster_id, int index);

  void OnMessage(NodeId from, const MessageRef& msg) override;

  const ExecutorCore& core() const { return core_; }
  ExecutorCore* mutable_core() { return &core_; }

  /// Byzantine behaviour: corrupt every execution result (a node trying
  /// to smuggle data out through replies). The firewall must filter it.
  void SetCorruptReplies(bool c) { corrupt_replies_ = c; }

 private:
  void HandleExecOrder(const ExecOrderMsg& m);

  const Directory* dir_;
  ClusterConfig cfg_;
  int index_;
  ExecutorCore core_;
  bool corrupt_replies_ = false;
  std::set<Sha256Digest> seen_;
};

/// A privacy-firewall filter node (paper §3.4). Filters are stateless
/// w.r.t. application data: they verify certificates and forward —
/// downstream-to-upstream for ExecOrder (ordering → execution), and
/// upstream-to-downstream for replies (execution → ordering), where the
/// top row aggregates g+1 matching signed replies into a reply
/// certificate. A row of correct filters therefore stops any message a
/// malicious execution node crafts outside the protocol (leak
/// containment), and the Network link restrictions model the physical
/// wiring (each filter connects only to the rows above and below).
class FilterNode : public Actor {
 public:
  FilterNode(Env* env, const Directory* dir, int cluster_id, int row,
             int index);

  void OnMessage(NodeId from, const MessageRef& msg) override;

  int row() const { return row_; }

  uint64_t filtered_messages() const { return filtered_; }

 private:
  void HandleExecOrder(NodeId from, const MessageRef& msg);
  void HandleExecReply(NodeId from, const ExecReplyMsg& m);
  void HandleReplyCert(NodeId from, const MessageRef& msg);

  /// Nodes in the row toward execution (row above), or the execution
  /// nodes themselves for the top row.
  std::vector<NodeId> Above() const;
  /// Nodes in the row toward ordering (row below), or the ordering nodes
  /// for the bottom row.
  std::vector<NodeId> Below() const;

  const Directory* dir_;
  ClusterConfig cfg_;
  int row_;
  int index_;
  bool top_row_;
  std::set<Sha256Digest> forwarded_down_;  // ExecOrder digests forwarded
  std::set<Sha256Digest> forwarded_up_;    // reply digests forwarded
  // Top-row aggregation: block digest -> (result digest -> shares)
  std::map<Sha256Digest, std::map<Sha256Digest, std::map<NodeId, Signature>>>
      reply_shares_;
  std::map<Sha256Digest, std::shared_ptr<const ExecReplyMsg>> reply_bodies_;
  uint64_t filtered_ = 0;
};

/// Wires the physical link restrictions of a cluster's firewall into the
/// network: ordering ↔ row 0 ↔ row 1 ↔ ... ↔ row h ↔ execution nodes.
/// Execution nodes and filters get NO other links — the paper's
/// guarantee that a malicious execution node cannot talk to clients.
void RestrictFirewallLinks(Network* net, const ClusterConfig& cfg);

}  // namespace qanaat

#endif  // QANAAT_FIREWALL_FIREWALL_H_
