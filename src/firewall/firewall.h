#ifndef QANAAT_FIREWALL_FIREWALL_H_
#define QANAAT_FIREWALL_FIREWALL_H_

#include <map>
#include <set>
#include <vector>

#include "consensus/messages.h"
#include "firewall/executor_core.h"
#include "protocols/context.h"
#include "sim/network.h"

namespace qanaat {

/// An execution node of a Byzantine cluster with ordering/execution
/// separation (paper §3.4/§4.2): verifies the commit certificate coming
/// through the firewall, appends the block to its ledger, executes it
/// deterministically, and sends a signed reply share toward the top
/// filter row (or, without a firewall, directly to clients and the
/// ordering nodes — Fig 4(b)).
class ExecutionNode : public Actor {
 public:
  ExecutionNode(Env* env, const Directory* dir, const DataModel* model,
                int cluster_id, int index);

  void OnMessage(NodeId from, const MessageRef& msg) override;
  void OnTimer(uint64_t tag, uint64_t payload) override;
  /// A restarted executor has no timers left and may have missed
  /// ExecOrder pushes entirely while down: pull proactively instead of
  /// waiting for a successor block to reveal the gap.
  void OnRecover() override;

  const ExecutorCore& core() const { return core_; }
  ExecutorCore* mutable_core() { return &core_; }

  /// Byzantine behaviour: corrupt every execution result (a node trying
  /// to smuggle data out through replies). The firewall must filter it.
  void SetCorruptReplies(bool c) { corrupt_replies_ = c; }

 private:
  static constexpr uint64_t kTagPull = 1;

  void HandleExecOrder(const ExecOrderMsg& m);
  /// Serves a peer executor's pull from this node's own ledger. Ordering
  /// nodes cannot serve these: with separated execution they forward
  /// blocks through the firewall without retaining an executable ledger,
  /// so the committed blocks (with their certificates) live only on the
  /// execution side. Entries are self-certifying, so a gapped peer can
  /// safely take them from any single serving executor.
  void HandleStateRequest(NodeId from, const StateRequestMsg& m);
  /// Pull-based state transfer (firewall side): entries are
  /// self-certifying, so the executor verifies each one against its
  /// commit certificate before re-executing — a faulty filter or serving
  /// node cannot inject a fake block.
  void HandleStateReply(const StateReplyMsg& m);
  /// Sends a StateRequest carrying this node's chain heads toward a peer
  /// execution node: via one top-row filter (round-robin) with a
  /// firewall, directly to a peer without one. `requester` routes the
  /// reply back through the top row.
  void SendPullRequest();
  /// Arms the gap watchdog: if blocks are still waiting on missing
  /// predecessors after a consensus timeout with no ledger growth, the
  /// push stream has lost something for good — switch to pulling.
  void ArmPullWatchdog();

  const Directory* dir_;
  ClusterConfig cfg_;
  int index_;
  ExecutorCore core_;
  bool corrupt_replies_ = false;
  std::set<Sha256Digest> seen_;
  bool pull_armed_ = false;
  size_t pull_ledger_mark_ = 0;  // ledger size when the watchdog armed
  uint32_t pull_rr_ = 0;         // round-robins the first-hop target
};

/// A privacy-firewall filter node (paper §3.4). Filters are stateless
/// w.r.t. application data: they verify certificates and forward —
/// downstream-to-upstream for ExecOrder (ordering → execution), and
/// upstream-to-downstream for replies (execution → ordering), where the
/// top row aggregates g+1 matching signed replies into a reply
/// certificate. A row of correct filters therefore stops any message a
/// malicious execution node crafts outside the protocol (leak
/// containment), and the Network link restrictions model the physical
/// wiring (each filter connects only to the rows above and below).
class FilterNode : public Actor {
 public:
  FilterNode(Env* env, const Directory* dir, int cluster_id, int row,
             int index);

  void OnMessage(NodeId from, const MessageRef& msg) override;

  int row() const { return row_; }

  uint64_t filtered_messages() const { return filtered_; }

 private:
  void HandleExecOrder(NodeId from, const MessageRef& msg);
  void HandleExecReply(NodeId from, const ExecReplyMsg& m);
  void HandleReplyCert(NodeId from, const MessageRef& msg);
  /// Executor pull brokering (top row only): a StateRequest from a
  /// gapped execution node is handed to one of its peers (round-robin,
  /// never the requester itself), and the serving peer's StateReply is
  /// routed back to the requester. Transfers never cross below the top
  /// row — with separated execution only the executors hold the ledger —
  /// and the requester simply re-pulls through a different filter if one
  /// hop or serving peer is faulty.
  void HandleStateRequest(NodeId from, const MessageRef& msg);
  void HandleStateReply(NodeId from, const MessageRef& msg);

  /// Nodes in the row toward execution (row above), or the execution
  /// nodes themselves for the top row.
  std::vector<NodeId> Above() const;
  /// Nodes in the row toward ordering (row below), or the ordering nodes
  /// for the bottom row.
  std::vector<NodeId> Below() const;

  const Directory* dir_;
  ClusterConfig cfg_;
  int row_;
  int index_;
  bool top_row_;
  std::set<Sha256Digest> forwarded_down_;  // ExecOrder digests forwarded
  std::set<Sha256Digest> forwarded_up_;    // reply digests forwarded
  // Top-row aggregation: block digest -> (result digest -> shares)
  std::map<Sha256Digest, std::map<Sha256Digest, std::map<NodeId, Signature>>>
      reply_shares_;
  std::map<Sha256Digest, std::shared_ptr<const ExecReplyMsg>> reply_bodies_;
  uint64_t filtered_ = 0;
  uint32_t pull_rr_serve_ = 0;  // round-robins the serving peer choice
};

/// Wires the physical link restrictions of a cluster's firewall into the
/// network: ordering ↔ row 0 ↔ row 1 ↔ ... ↔ row h ↔ execution nodes.
/// Execution nodes and filters get NO other links — the paper's
/// guarantee that a malicious execution node cannot talk to clients.
void RestrictFirewallLinks(Network* net, const ClusterConfig& cfg);

}  // namespace qanaat

#endif  // QANAAT_FIREWALL_FIREWALL_H_
