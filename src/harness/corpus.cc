#include "harness/corpus.h"

#include <cinttypes>
#include <cstdio>

#include "common/rng.h"

namespace qanaat {

AdversaryKind AdversaryFor(ChaosStack stack, uint64_t seed) {
  switch (stack) {
    case ChaosStack::kQanaatPbft:
      // seed % 4 == 0 are the untargeted-loss runs — keep those benign so
      // loss and adversaries stay independently attributable.
      switch (seed % 4) {
        case 1:
          return AdversaryKind::kGrayFailure;
        case 2:
          return AdversaryKind::kEquivocation;
        case 3:
          return AdversaryKind::kSelectiveSilence;
        default:
          return AdversaryKind::kNone;
      }
    case ChaosStack::kQanaatPaxos:
      // Crash model: no Byzantine ordering node to equivocate.
      switch (seed % 4) {
        case 1:
          return AdversaryKind::kGrayFailure;
        case 3:
          return AdversaryKind::kSelectiveSilence;
        default:
          return AdversaryKind::kNone;
      }
    case ChaosStack::kFabric:
      return (seed % 4 == 2) ? AdversaryKind::kGrayFailure
                             : AdversaryKind::kNone;
  }
  return AdversaryKind::kNone;
}

std::vector<CorpusEntry> CorpusManifest::Enumerate() const {
  static const ChaosStack kStacks[] = {
      ChaosStack::kQanaatPbft,
      ChaosStack::kQanaatPaxos,
      ChaosStack::kFabric,
  };
  std::vector<CorpusEntry> out;
  out.reserve(static_cast<size_t>(seeds) * 3 +
              static_cast<size_t>(conflict_seeds) * 2);
  for (ChaosStack stack : kStacks) {
    for (uint64_t seed = 1; seed <= static_cast<uint64_t>(seeds); ++seed) {
      out.push_back({stack, seed, AdversaryFor(stack, seed)});
    }
  }
  // Cross-conflict profile: Qanaat stacks only (Fabric has no cross-shard
  // slot claims to contest). Appending keeps every rotation cell's
  // position, identity and shard untouched.
  for (ChaosStack stack :
       {ChaosStack::kQanaatPbft, ChaosStack::kQanaatPaxos}) {
    for (uint64_t i = 1; i <= static_cast<uint64_t>(conflict_seeds); ++i) {
      out.push_back(
          {stack, kConflictSeedBase + i, AdversaryKind::kCrossConflict});
    }
  }
  return out;
}

uint64_t EntryKey(const CorpusEntry& e) {
  // Identity only — never the manifest position. The adversary is part of
  // the identity so a rotation change is an explicit re-keying, not a
  // silent one.
  uint64_t k = Mix64(e.seed + 0x9e3779b97f4a7c15ULL);
  k = Mix64(k ^ (static_cast<uint64_t>(e.stack) + 1));
  k = Mix64(k ^ ((static_cast<uint64_t>(e.adversary) + 1) << 8));
  return k;
}

int ShardOf(const CorpusEntry& e, int shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<int>(EntryKey(e) % static_cast<uint64_t>(shard_count));
}

ChaosOptions EntryOptions(const CorpusEntry& e) {
  // Mirrors the chaos_test corpus recipe exactly for adversary == kNone;
  // the pinned ChaosGolden trace hashes guard the equivalence.
  ChaosOptions o;
  o.stack = e.stack;
  o.seed = e.seed;
  o.family = (e.seed % 2 == 0) ? ProtocolFamily::kCoordinator
                               : ProtocolFamily::kFlattened;
  static const CrossKind kKinds[] = {
      CrossKind::kIntraShardCrossEnterprise,
      CrossKind::kCrossShardIntraEnterprise,
      CrossKind::kCrossShardCrossEnterprise,
  };
  o.cross_kind = e.stack == ChaosStack::kFabric
                     ? CrossKind::kIntraShardCrossEnterprise
                     : kKinds[e.seed % 3];
  o.cross_fraction = 0.25;
  o.offered_tps = 300;
  o.profile.dup = 0.03;
  o.profile.reorder = 0.05;
  o.profile.loss = (e.seed % 4 == 0) ? 0.02 : 0.0;
  o.profile.adversary = e.adversary;
  if (e.adversary == AdversaryKind::kCrossConflict) {
    // §4.3.5 rivalry regime: no designated coordinators, flattened
    // protocols (arbitration lives in the FAccept path), a cross-heavy
    // intra-shard cross-enterprise mix so rival clusters contest the
    // same shared-collection slots, and no untargeted loss — the
    // convergence and eventual-commit audits must stay armed.
    o.designated_coordinator = false;
    o.family = ProtocolFamily::kFlattened;
    o.cross_kind = CrossKind::kIntraShardCrossEnterprise;
    o.cross_fraction = 0.5;
    o.profile.loss = 0.0;
  }
  return o;
}

CorpusRunResult RunEntry(const CorpusEntry& e) {
  CorpusRunResult res;
  res.entry = e;
  ChaosReport r = RunChaos(EntryOptions(e));
  res.report = r;

  std::string why;
  if (!r.safety.ok()) {
    why = "safety: " + r.safety.ToString();
  } else if (r.faults_applied == 0) {
    why = "no faults applied";
  } else if (r.net_duplicated + r.net_reordered == 0) {
    why = "injected dup/reorder never bit";
  } else if (!r.liveness_resumed) {
    why = "liveness did not resume after heal (commits " +
          std::to_string(r.commits_at_heal) + " at heal, " +
          std::to_string(r.commits_total) + " total)";
  } else if (r.commits_total <= 100) {
    why = "commit floor missed (" + std::to_string(r.commits_total) + ")";
  } else if (EntryOptions(e).profile.loss == 0.0 && !r.convergence_checked) {
    why = "convergence not checked despite loss-free plan";
  }
  res.passed = why.empty();
  res.failure = why;
  return res;
}

const char* StackArgName(ChaosStack s) {
  switch (s) {
    case ChaosStack::kQanaatPbft:
      return "pbft";
    case ChaosStack::kQanaatPaxos:
      return "paxos";
    case ChaosStack::kFabric:
      return "fabric";
  }
  return "?";
}

bool ParseStack(const std::string& s, ChaosStack* out) {
  if (s == "pbft") {
    *out = ChaosStack::kQanaatPbft;
  } else if (s == "paxos") {
    *out = ChaosStack::kQanaatPaxos;
  } else if (s == "fabric") {
    *out = ChaosStack::kFabric;
  } else {
    return false;
  }
  return true;
}

bool ParseAdversary(const std::string& s, AdversaryKind* out) {
  if (s == "none") {
    *out = AdversaryKind::kNone;
  } else if (s == "gray") {
    *out = AdversaryKind::kGrayFailure;
  } else if (s == "equivocation") {
    *out = AdversaryKind::kEquivocation;
  } else if (s == "silence") {
    *out = AdversaryKind::kSelectiveSilence;
  } else if (s == "conflict") {
    *out = AdversaryKind::kCrossConflict;
  } else {
    return false;
  }
  return true;
}

std::string ReproCommand(const CorpusEntry& e) {
  std::string cmd = "tools/run_corpus --stack=";
  cmd += StackArgName(e.stack);
  cmd += " --seed=" + std::to_string(e.seed);
  cmd += " --adversary=";
  cmd += AdversaryName(e.adversary);
  return cmd;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SummaryJson(int shard_index, int shard_count,
                        const std::vector<CorpusRunResult>& results) {
  size_t passed = 0;
  for (const auto& r : results) passed += r.passed ? 1 : 0;

  std::string j = "{\n";
  j += "  \"shard_index\": " + std::to_string(shard_index) + ",\n";
  j += "  \"shard_count\": " + std::to_string(shard_count) + ",\n";
  j += "  \"total\": " + std::to_string(results.size()) + ",\n";
  j += "  \"passed\": " + std::to_string(passed) + ",\n";
  j += "  \"failed\": " + std::to_string(results.size() - passed) + ",\n";
  j += "  \"runs\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char hash[32];
    std::snprintf(hash, sizeof(hash), "0x%016" PRIx64, r.report.trace_hash);
    j += "    {\"stack\": \"";
    j += StackArgName(r.entry.stack);
    j += "\", \"seed\": " + std::to_string(r.entry.seed);
    j += ", \"adversary\": \"";
    j += AdversaryName(r.entry.adversary);
    j += "\", \"passed\": ";
    j += r.passed ? "true" : "false";
    j += ", \"trace_hash\": \"";
    j += hash;
    j += "\", \"commits\": " + std::to_string(r.report.commits_total);
    j += ", \"faults\": " + std::to_string(r.report.faults_applied);
    j += ", \"silenced\": " + std::to_string(r.report.net_silenced);
    j += ", \"liveness_resume_us\": " +
         std::to_string(r.report.liveness_resume_us);
    if (!r.passed) {
      j += ", \"violation\": \"" + JsonEscape(r.failure) + "\"";
      j += ", \"repro\": \"" + JsonEscape(ReproCommand(r.entry)) + "\"";
    }
    j += "}";
    j += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  j += "  ]\n}\n";
  return j;
}

}  // namespace qanaat
