#ifndef QANAAT_HARNESS_CORPUS_H_
#define QANAAT_HARNESS_CORPUS_H_

#include <string>
#include <vector>

#include "harness/chaos.h"
#include "sim/faults.h"

namespace qanaat {

/// One cell of the chaos corpus: a (stack, seed, adversary) triple. The
/// triple IS the run's identity — everything else (topology, workload,
/// fault profile) derives from it deterministically via EntryOptions, so
/// any corpus run reproduces from its triple alone.
struct CorpusEntry {
  ChaosStack stack = ChaosStack::kQanaatPbft;
  uint64_t seed = 1;
  AdversaryKind adversary = AdversaryKind::kNone;
};

/// Declarative description of the whole corpus: `seeds` consecutive seeds
/// (1..seeds inclusive) crossed with every stack, each run under the
/// adversary the per-stack rotation assigns to that seed. Growing `seeds`
/// only APPENDS entries — existing (stack, seed) cells keep their
/// adversary and, because sharding hashes entry identity, their shard.
struct CorpusManifest {
  int seeds = 66;  // 66 seeds x 3 stacks = 198 runs
  /// Cross-conflict profile (§4.3.5): dedicated seeds run the two Qanaat
  /// stacks with designated coordinators off and a cross-heavy workload
  /// under the kCrossConflict adversary, manufacturing symmetric rival
  /// claims that digest-priority arbitration must settle. Appended after
  /// the rotation entries at kConflictSeedBase + 1.., so growing either
  /// knob never reshuffles existing cells.
  int conflict_seeds = 8;  // x 2 stacks = 16 more runs

  std::vector<CorpusEntry> Enumerate() const;
};

/// Seed band for the cross-conflict profile entries — disjoint from the
/// rotation's 1..seeds band so the two sweeps stay independently growable.
constexpr uint64_t kConflictSeedBase = 1000;

/// The adversary the rotation assigns to (stack, seed). Stacks only face
/// adversaries their fault model admits: equivocation needs a Byzantine
/// ordering node (PBFT only); the crash-model Paxos stack rotates gray
/// failure and selective silence; the Fabric baseline (pinned Raft
/// leader, no view change to starve) only faces gray failure.
AdversaryKind AdversaryFor(ChaosStack stack, uint64_t seed);

/// Stable 64-bit identity of an entry. Depends only on the triple, never
/// on the entry's position in the manifest.
uint64_t EntryKey(const CorpusEntry& e);

/// Which of `shard_count` shards owns the entry: Mix64(EntryKey) modulo
/// shard_count. Hash-stable — adding seeds to the manifest never moves an
/// existing entry between shards (for a fixed shard_count).
int ShardOf(const CorpusEntry& e, int shard_count);

/// The canonical options for an entry. For adversary == kNone this is
/// byte-identical to the chaos_test corpus recipe — the pinned ChaosGolden
/// trace hashes are the witness — and the adversary rides on top without
/// disturbing that baseline.
ChaosOptions EntryOptions(const CorpusEntry& e);

struct CorpusRunResult {
  CorpusEntry entry;
  ChaosReport report;
  bool passed = false;
  /// Why the run failed, human-readable; empty when passed.
  std::string failure;
};

/// Runs one entry and applies the corpus pass criteria (safety audits
/// clean, faults actually bit, liveness resumed, commit floor met).
CorpusRunResult RunEntry(const CorpusEntry& e);

/// Exact one-line command reproducing a single corpus entry.
std::string ReproCommand(const CorpusEntry& e);

const char* StackArgName(ChaosStack s);
bool ParseStack(const std::string& s, ChaosStack* out);
bool ParseAdversary(const std::string& s, AdversaryKind* out);

/// Machine-readable shard summary (one JSON object: shard identity,
/// totals, and a per-run record with trace hash, violation text and the
/// repro command for every failure).
std::string SummaryJson(int shard_index, int shard_count,
                        const std::vector<CorpusRunResult>& results);

}  // namespace qanaat

#endif  // QANAAT_HARNESS_CORPUS_H_
