#ifndef QANAAT_HARNESS_CHAOS_H_
#define QANAAT_HARNESS_CHAOS_H_

#include <set>
#include <string>

#include "baselines/fabric.h"
#include "common/status.h"
#include "qanaat/system.h"
#include "sim/faults.h"
#include "workload/smallbank.h"

namespace qanaat {

/// Which protocol stack a chaos run hammers.
enum class ChaosStack : uint8_t {
  kQanaatPbft = 0,   // Byzantine clusters, PBFT internal consensus
  kQanaatPaxos = 1,  // crash clusters, Multi-Paxos internal consensus
  kFabric = 2,       // Hyperledger Fabric baseline (Raft ordering)
};

const char* ChaosStackName(ChaosStack s);

/// One deterministic chaos run: a system built from `seed`, a SmallBank
/// workload, a seed-expanded FaultPlan, and continuous safety audits.
/// Identical options (including seed) reproduce the run bit-identically —
/// ChaosReport::trace_hash is the witness.
struct ChaosOptions {
  ChaosStack stack = ChaosStack::kQanaatPbft;
  uint64_t seed = 1;

  // Topology (Qanaat stacks; Fabric uses `enterprises` only).
  int enterprises = 2;
  int shards_per_enterprise = 2;
  ProtocolFamily family = ProtocolFamily::kFlattened;
  /// When false, any involved cluster may claim a slot for a shared
  /// collection shard — the §4.3.5 symmetric-rivalry regime that the
  /// cross-conflict corpus profile drives (digest-priority arbitration
  /// plus loser re-proposal must settle every contested transaction).
  bool designated_coordinator = true;
  bool use_firewall = false;
  /// With the firewall: one execution node per cluster turns Byzantine
  /// and corrupts every reply — the filters must contain it.
  bool byzantine_executor = false;

  // Workload.
  double offered_tps = 300;
  int client_machines = 2;
  CrossKind cross_kind = CrossKind::kIntraShardCrossEnterprise;
  double cross_fraction = 0.25;
  SimTime client_retransmit_us = 250 * kMillisecond;  // Qanaat stacks only

  // Schedule: faults happen in [0, heal_at); clients issue until
  // issue_until; the run quiesces until run_until, then the final audit
  // (including convergence, when the plan permits) executes.
  SimTime heal_at = 800 * kMillisecond;
  SimTime issue_until = 1400 * kMillisecond;
  SimTime run_until = 2000 * kMillisecond;
  SimTime audit_period = 100 * kMillisecond;

  ChaosProfile profile;
};

struct ChaosReport {
  /// Ok iff every audit (periodic and final) passed. The first violation
  /// is captured verbatim.
  Status safety = Status::Ok();
  /// Network trace hash at the end of the run — the replay witness.
  uint64_t trace_hash = 0;
  uint64_t faults_applied = 0;
  uint64_t audits = 0;
  /// Transactions settled at clients over the whole run / by heal_at.
  uint64_t commits_total = 0;
  uint64_t commits_at_heal = 0;
  /// Commits happened after every fault healed (the liveness criterion).
  bool liveness_resumed = false;
  /// Microseconds after heal_at until the first post-heal settle was
  /// observed (10ms polling granularity); -1 = liveness never resumed.
  /// The liveness *cost* of an adversary shows up here: safety holds for
  /// free, recovery time does not.
  SimTime liveness_resume_us = -1;
  /// The final audit also asserted bit-identical ledgers across all
  /// non-degraded replicas (possible only without untargeted loss).
  bool convergence_checked = false;
  uint64_t net_duplicated = 0;
  uint64_t net_reordered = 0;
  uint64_t net_dropped = 0;
  uint64_t net_silenced = 0;
  std::string plan_summary;
};

ChaosReport RunChaos(const ChaosOptions& opts);

/// Cross-replica safety audits. Exposed separately so targeted tests can
/// audit systems they drive themselves.
class SafetyAuditor {
 public:
  /// Checks, across every ledger of the deployment (ordering and
  /// execution replicas of all clusters):
  ///  * chain agreement — no two replicas hold different blocks at the
  ///    same (collection shard, height); cross-cluster replicas of a
  ///    shared collection shard agree on the common prefix;
  ///  * at-most-once commit — no (client, timestamp) pair appears twice
  ///    in one ledger;
  ///  * with `full`: per-ledger hash-chain + γ-monotonicity re-audit
  ///    (DagLedger::VerifyChain) and firewall containment (every link a
  ///    message was delivered on is still allowed by the wiring);
  ///  * with `converged_except` non-null: every replica NOT in the set
  ///    ends with chains identical to its cluster peers' (same heads,
  ///    same digests) AND an identical multi-versioned store per chain
  ///    (state identity). Since the checkpoint/state-transfer subsystem
  ///    the chaos corpus passes an EMPTY exclusion set: recovered
  ///    replicas converge too, not just stay prefix-consistent.
  static Status AuditQanaat(QanaatSystem& sys, bool full,
                            const std::set<NodeId>* converged_except);

  /// Fabric: peers agree on the content digest of every block number they
  /// share, each peer applied a gapless block prefix, and no transaction
  /// id validated twice (fabric.safety.double_commit == 0).
  static Status AuditFabric(FabricSystem& sys);

  /// Every delivered link must still satisfy the (static) restriction
  /// table — the firewall's physical wiring holds under duplication,
  /// reordering and every other injected fault.
  static Status AuditLinkContainment(const Network& net);
};

}  // namespace qanaat

#endif  // QANAAT_HARNESS_CHAOS_H_
