#include "harness/sweep.h"

#include <cstdio>

namespace qanaat {

namespace {
// The paper's reported operating point: the highest-throughput point
// whose throughput still tracks offered load; if none does (heavily
// invalidation-limited runs), the highest-throughput point outright.
LoadPoint PickKnee(const std::vector<LoadPoint>& curve) {
  const LoadPoint* best_ok = nullptr;
  const LoadPoint* best_any = &curve.front();
  for (const auto& p : curve) {
    if (p.measured_tps >= best_any->measured_tps) best_any = &p;
    if (p.measured_tps >= 0.85 * p.offered_tps &&
        (best_ok == nullptr || p.measured_tps >= best_ok->measured_tps)) {
      best_ok = &p;
    }
  }
  return best_ok != nullptr ? *best_ok : *best_any;
}
}  // namespace

LoadPoint RunQanaatPoint(const QanaatRunConfig& cfg, double offered_tps) {
  QanaatSystem::Options opts;
  opts.params = cfg.params;
  opts.cluster_regions = cfg.cluster_regions;
  opts.seed = cfg.seed;
  QanaatSystem sys(std::move(opts));

  // §5.4 region RTTs (Tokyo, Seoul, Virginia, California).
  if (!cfg.cluster_regions.empty()) {
    int regions = sys.net().region_count();
    static const SimTime kRtt[4][4] = {
        {0, 33000, 148000, 107000},
        {33000, 0, 175000, 135000},
        {148000, 175000, 0, 62000},
        {107000, 135000, 62000, 0},
    };
    for (int a = 0; a < regions && a < 4; ++a) {
      for (int b = a + 1; b < regions && b < 4; ++b) {
        sys.net().SetRtt(a, b, kRtt[a][b]);
      }
    }
  }

  // Fault injection (§5.6): crash one non-primary ordering node per
  // cluster (f=1 tolerated), plus one execution node and one filter when
  // the firewall is deployed.
  if (cfg.faulty_ordering_nodes > 0) {
    for (int c = 0; c < sys.cluster_count(); ++c) {
      const ClusterConfig& cc = sys.directory().Cluster(c);
      for (int i = 0; i < cfg.faulty_ordering_nodes &&
                      i + 1 < static_cast<int>(cc.ordering.size());
           ++i) {
        sys.ordering_node(c, static_cast<int>(cc.ordering.size()) - 1 - i)
            ->Crash();
      }
      if (!cc.execution.empty()) {
        sys.execution_node(c, static_cast<int>(cc.execution.size()) - 1)
            ->Crash();
      }
      if (!cc.filter_rows.empty()) {
        sys.filter_node(c, 0,
                        static_cast<int>(cc.filter_rows[0].size()) - 1)
            ->Crash();
      }
    }
  }

  if (cfg.drop_rate > 0) sys.net().SetDropRate(cfg.drop_rate);

  if (cfg.recover_at > cfg.crash_at && cfg.crash_at > 0) {
    for (int c = 0; c < sys.cluster_count(); ++c) {
      const ClusterConfig& cc = sys.directory().Cluster(c);
      Actor* victim = sys.ordering_node(
          c, static_cast<int>(cc.ordering.size()) - 1);
      sys.env().sim.ScheduleAt(cfg.crash_at, [victim]() { victim->Crash(); });
      sys.env().sim.ScheduleAt(cfg.recover_at,
                               [victim]() { victim->Recover(); });
    }
  }

  double per_client = offered_tps / cfg.client_machines;
  SimTime measure_from = cfg.warmup;
  SimTime measure_to = cfg.duration - cfg.warmup / 3;
  for (int i = 0; i < cfg.client_machines; ++i) {
    ClientMachine* c = sys.AddClient(cfg.workload, per_client);
    if (cfg.client_retransmit_us > 0) {
      c->SetRetransmitTimeout(cfg.client_retransmit_us);
    }
    c->Start(0, cfg.duration, measure_from, measure_to);
  }
  sys.env().sim.Run(cfg.duration + 500 * kMillisecond);

  LoadPoint p;
  p.offered_tps = offered_tps;
  double window_s =
      static_cast<double>(measure_to - measure_from) / kSecond;
  p.measured_tps = static_cast<double>(sys.TotalMeasuredCommits()) / window_s;
  Histogram lat = sys.MergedLatencies();
  p.avg_latency_ms = lat.Mean() / 1000.0;
  p.p99_latency_ms = static_cast<double>(lat.Percentile(0.99)) / 1000.0;
  return p;
}

SweepResult SaturationSweep(
    const std::function<LoadPoint(double)>& run_point, double start_tps,
    double growth, int max_points) {
  SweepResult result;
  double offered = start_tps;
  double base_latency = -1;
  for (int i = 0; i < max_points; ++i) {
    LoadPoint p = run_point(offered);
    result.curve.push_back(p);
    if (base_latency < 0 && p.avg_latency_ms > 0) {
      base_latency = p.avg_latency_ms;
    }
    bool saturated =
        p.measured_tps < 0.85 * p.offered_tps ||
        (base_latency > 0 && p.avg_latency_ms > 12.0 * base_latency);
    if (saturated) break;
    offered *= growth;
  }
  result.knee = PickKnee(result.curve);
  return result;
}

SweepResult SmartSweep(const std::function<LoadPoint(double)>& run_point,
                       double capacity_guess) {
  // Bracket the saturation knee starting from a calibrated guess: step
  // up while throughput tracks offered load, step down once it stops.
  // All probe loads stay near capacity, so no run degenerates into the
  // intake-flooded regime.
  auto saturated = [](const LoadPoint& p) {
    return p.measured_tps < 0.87 * p.offered_tps;
  };
  SweepResult result;
  double offered = capacity_guess * 0.8;
  bool seen_ok = false, seen_sat = false;
  for (int i = 0; i < 4 && !(seen_ok && seen_sat); ++i) {
    LoadPoint p = run_point(offered);
    result.curve.push_back(p);
    if (saturated(p)) {
      seen_sat = true;
      offered *= seen_ok ? 0.9 : 0.72;
    } else {
      seen_ok = true;
      offered *= 1.3;
    }
  }
  result.knee = PickKnee(result.curve);
  // Refine: if the gap between the best non-saturated point and the
  // lowest saturated point is wide, probe the midpoint once.
  double best_ok = 0, low_sat = 0;
  for (const auto& p : result.curve) {
    if (!saturated(p)) {
      best_ok = std::max(best_ok, p.offered_tps);
    } else if (low_sat == 0 || p.offered_tps < low_sat) {
      low_sat = p.offered_tps;
    }
  }
  if (best_ok > 0 && low_sat > 1.12 * best_ok) {
    result.curve.push_back(run_point(0.5 * (best_ok + low_sat)));
    result.knee = PickKnee(result.curve);
  }
  // One half-load point for the latency floor of the curve.
  result.curve.insert(result.curve.begin(),
                      run_point(result.knee.measured_tps * 0.5));
  result.knee = PickKnee(result.curve);
  return result;
}

SweepResult PlateauSweep(const std::function<LoadPoint(double)>& run_point,
                         double start_tps, double growth, int max_points) {
  SweepResult result;
  double offered = start_tps;
  double best = 0;
  int flat = 0;
  for (int i = 0; i < max_points; ++i) {
    LoadPoint p = run_point(offered);
    result.curve.push_back(p);
    // Under heavy invalidation useful throughput can dip before rising
    // again at higher offered load; require two consecutive
    // non-improving points before declaring the plateau.
    if (p.measured_tps < best * 1.08) {
      if (++flat >= 2) break;
    } else {
      flat = 0;
    }
    best = std::max(best, p.measured_tps);
    offered *= growth;
  }
  result.knee = PickKnee(result.curve);
  return result;
}

LoadPoint RunFabricPoint(const FabricRunConfig& cfg, double offered_tps) {
  FabricSystem sys(cfg.fabric);
  if (cfg.fail_follower) sys.orderer(1)->Crash();
  double per_client = offered_tps / cfg.client_machines;
  SimTime measure_from = cfg.warmup;
  SimTime measure_to = cfg.duration - cfg.warmup / 3;
  std::vector<FabricClient*> clients;
  for (int i = 0; i < cfg.client_machines; ++i) {
    FabricClient* c = sys.AddClient(cfg.workload, per_client);
    c->Start(0, cfg.duration, measure_from, measure_to);
    clients.push_back(c);
  }
  if (cfg.drop_rate > 0) {
    // Loss on client links only: the Fabric model has no block catch-up,
    // so a dropped ordered-block delivery would stall a peer forever.
    Network::LinkFault lf;
    lf.drop = cfg.drop_rate;
    for (FabricClient* c : clients) {
      sys.net().SetLinkFaultBetween(c->id(), sys.leader_id(), lf);
      for (const auto& peer : sys.peers()) {
        sys.net().SetLinkFaultBetween(c->id(), peer->id(), lf);
      }
    }
  }
  sys.env().sim.Run(cfg.duration + 500 * kMillisecond);

  LoadPoint p;
  p.offered_tps = offered_tps;
  double window_s =
      static_cast<double>(measure_to - measure_from) / kSecond;
  p.measured_tps = static_cast<double>(sys.TotalMeasuredCommits()) / window_s;
  Histogram lat = sys.MergedLatencies();
  p.avg_latency_ms = lat.Mean() / 1000.0;
  p.p99_latency_ms = static_cast<double>(lat.Percentile(0.99)) / 1000.0;
  return p;
}

SweepResult SweepFabric(const FabricRunConfig& cfg, double start_tps,
                        double growth, int max_points) {
  return SaturationSweep(
      [&cfg](double tps) { return RunFabricPoint(cfg, tps); }, start_tps,
      growth, max_points);
}

SweepResult SweepQanaat(const QanaatRunConfig& cfg, double start_tps,
                        double growth, int max_points) {
  return SaturationSweep(
      [&cfg](double tps) { return RunQanaatPoint(cfg, tps); }, start_tps,
      growth, max_points);
}

void PrintCurveHeader(const std::string& series_name) {
  std::printf("# %s\n", series_name.c_str());
  std::printf("%-14s %-14s %-12s %-12s\n", "offered[tps]", "tput[tps]",
              "avg_lat[ms]", "p99_lat[ms]");
}

void PrintCurve(const std::string& series_name, const SweepResult& r) {
  PrintCurveHeader(series_name);
  for (const auto& p : r.curve) {
    std::printf("%-14.0f %-14.0f %-12.2f %-12.2f\n", p.offered_tps,
                p.measured_tps, p.avg_latency_ms, p.p99_latency_ms);
  }
  std::printf("knee: %.0f tps @ %.2f ms\n\n", r.knee.measured_tps,
              r.knee.avg_latency_ms);
}

}  // namespace qanaat
