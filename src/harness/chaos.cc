#include "harness/chaos.h"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>
#include <vector>

namespace qanaat {

const char* ChaosStackName(ChaosStack s) {
  switch (s) {
    case ChaosStack::kQanaatPbft:
      return "qanaat-pbft";
    case ChaosStack::kQanaatPaxos:
      return "qanaat-paxos";
    case ChaosStack::kFabric:
      return "fabric";
  }
  return "?";
}

namespace {

/// Every executor core of the deployment with the node that owns it
/// (core.ledger() is the chain surface, the core itself the store
/// surface for state-identity checks).
std::vector<std::pair<NodeId, const ExecutorCore*>> AllCores(
    QanaatSystem& sys) {
  std::vector<std::pair<NodeId, const ExecutorCore*>> out;
  for (int c = 0; c < sys.cluster_count(); ++c) {
    const ClusterConfig& cc = sys.directory().Cluster(c);
    for (size_t i = 0; i < cc.ordering.size(); ++i) {
      out.emplace_back(cc.ordering[i],
                       &sys.ordering_node(c, static_cast<int>(i))
                            ->exec_core());
    }
    for (size_t i = 0; i < cc.execution.size(); ++i) {
      out.emplace_back(cc.execution[i],
                       &sys.execution_node(c, static_cast<int>(i))
                            ->core());
    }
  }
  return out;
}

std::string NodeLabel(NodeId n) { return "node " + std::to_string(n); }

}  // namespace

Status SafetyAuditor::AuditLinkContainment(const Network& net) {
  for (const auto& [from, to] : net.delivered_links()) {
    if (!net.LinkAllowed(from, to)) {
      return Status::Internal("firewall containment violated: message "
                              "delivered on restricted link " +
                              std::to_string(from) + " -> " +
                              std::to_string(to));
    }
  }
  return Status::Ok();
}

Status SafetyAuditor::AuditQanaat(QanaatSystem& sys, bool full,
                                  const std::set<NodeId>* converged_except) {
  auto cores = AllCores(sys);
  std::vector<std::pair<NodeId, const DagLedger*>> ledgers;
  ledgers.reserve(cores.size());
  for (const auto& [node, core] : cores) {
    ledgers.emplace_back(node, &core->ledger());
  }

  // 1. Chain agreement: at every (collection shard, height) all replicas
  // — within a cluster and across clusters sharing the chain — hold the
  // same block under the same ⟨α, γ⟩.
  std::map<std::pair<ShardRef, size_t>, std::pair<Sha256Digest, NodeId>>
      canon;
  for (const auto& [node, led] : ledgers) {
    for (const auto& [ref, chain] : led->chains()) {
      for (size_t i = 0; i < chain.size(); ++i) {
        const DagLedger::Entry& e = led->entry(chain[i]);
        Sha256Digest d = e.block->Digest();
        auto [it, inserted] =
            canon.emplace(std::make_pair(ref, i), std::make_pair(d, node));
        if (!inserted && !(it->second.first == d)) {
          return Status::Internal(
              "chain disagreement on " + ref.Label() + " height " +
              std::to_string(i + 1) + ": " + NodeLabel(node) + " vs " +
              NodeLabel(it->second.second));
        }
      }
    }
  }

  // 2. At-most-once commit per ledger.
  for (const auto& [node, led] : ledgers) {
    std::set<std::pair<NodeId, uint64_t>> seen;
    for (size_t i = 0; i < led->size(); ++i) {
      for (const Transaction& tx : led->entry(i).block->txs) {
        if (!seen.insert({tx.client, tx.client_ts}).second) {
          return Status::Internal(
              "transaction committed twice on " + NodeLabel(node) +
              ": client " + std::to_string(tx.client) + " ts " +
              std::to_string(tx.client_ts));
        }
      }
    }
  }

  // 3. Full audit: hash chains, γ monotonicity, certificates, wiring.
  if (full) {
    for (const auto& [node, led] : ledgers) {
      Status st = led->VerifyChain(sys.env().keystore, 0);
      if (!st.ok()) {
        return Status::Internal("ledger audit failed on " + NodeLabel(node) +
                                ": " + st.ToString());
      }
    }
    QANAAT_RETURN_IF_ERROR(AuditLinkContainment(sys.net()));
  }

  // 4. Convergence: every executing replica of a chain not explicitly
  // excluded — since the checkpoint/state-transfer subsystem, recovered
  // replicas are NOT excluded — ends with the same head (digest equality
  // along the way is implied by 1) AND an identical multi-versioned
  // store for the chain's collection (state identity, not just prefix
  // consistency: re-execution after state transfer must land on the
  // exact same bytes).
  if (converged_except != nullptr) {
    // Expected maintainers of ShardRef{coll, s}: the executing replicas
    // (execution nodes when separated, ordering nodes otherwise) of
    // cluster (e, s) for every member enterprise e.
    std::map<NodeId, const ExecutorCore*> by_node(cores.begin(),
                                                  cores.end());
    std::set<ShardRef> all_chains;
    for (const auto& [node, led] : ledgers) {
      for (const auto& [ref, chain] : led->chains()) all_chains.insert(ref);
    }
    for (const ShardRef& ref : all_chains) {
      size_t expect = 0;
      uint64_t expect_state = 0;
      bool have_expect = false;
      NodeId expect_node = kInvalidNode;
      for (EnterpriseId e : ref.collection.members.Members()) {
        int c = sys.directory().ClusterIdOf(e, ref.shard);
        const ClusterConfig& cc = sys.directory().Cluster(c);
        const std::vector<NodeId>& executing =
            cc.SeparatedExecution() ? cc.execution : cc.ordering;
        for (NodeId n : executing) {
          if (converged_except->count(n)) continue;
          const ExecutorCore* core = by_node.at(n);
          size_t len = core->ledger().ChainOf(ref).size();
          uint64_t state = core->StateFingerprintOf(ref.collection);
          if (!have_expect) {
            expect = len;
            expect_state = state;
            have_expect = true;
            expect_node = n;
          } else if (len != expect) {
            return Status::Internal(
                "post-heal divergence on " + ref.Label() + ": " +
                NodeLabel(n) + " has " + std::to_string(len) + " blocks, " +
                NodeLabel(expect_node) + " has " + std::to_string(expect));
          } else if (state != expect_state) {
            return Status::Internal(
                "post-heal state divergence on " + ref.Label() + ": " +
                NodeLabel(n) + " and " + NodeLabel(expect_node) +
                " agree on " + std::to_string(len) +
                " blocks but their stores differ");
          }
        }
      }
    }

    // 5. Eventual commit of arbitration losers (§4.3.5): a transaction
    // whose block lost a digest-priority arbitration was re-queued for
    // re-proposal, so after heal it must appear on some winning block in
    // some ledger. Chain agreement (1) and at-most-once (2) upgrade
    // "eventually commits" to "commits exactly once".
    std::set<std::pair<NodeId, uint64_t>> losers;
    for (int c = 0; c < sys.cluster_count(); ++c) {
      const ClusterConfig& cc = sys.directory().Cluster(c);
      for (size_t i = 0; i < cc.ordering.size(); ++i) {
        const auto& l = sys.ordering_node(c, static_cast<int>(i))
                            ->arbitration_loser_txs();
        losers.insert(l.begin(), l.end());
      }
    }
    if (!losers.empty()) {
      std::set<std::pair<NodeId, uint64_t>> committed;
      for (const auto& [node, led] : ledgers) {
        for (size_t i = 0; i < led->size(); ++i) {
          for (const Transaction& tx : led->entry(i).block->txs) {
            committed.insert({tx.client, tx.client_ts});
          }
        }
      }
      for (const auto& [client, ts] : losers) {
        if (!committed.count({client, ts})) {
          return Status::Internal(
              "arbitration loser never re-committed: client " +
              std::to_string(client) + " ts " + std::to_string(ts));
        }
      }
    }
  }
  return Status::Ok();
}

Status SafetyAuditor::AuditFabric(FabricSystem& sys) {
  // Cross-peer agreement on every shared block number.
  std::map<uint64_t, std::pair<Sha256Digest, EnterpriseId>> canon;
  EnterpriseId e = 0;
  for (const auto& peer : sys.peers()) {
    // The applied prefix must be gapless: in-order admission guarantees
    // block_log covers exactly [1, next_block).
    if (peer->block_log().size() != peer->next_block_to_apply() - 1) {
      return Status::Internal("peer " + std::to_string(e) +
                              " applied a gapped block sequence");
    }
    for (const auto& [no, digest] : peer->block_log()) {
      auto [it, inserted] = canon.emplace(no, std::make_pair(digest, e));
      if (!inserted && !(it->second.first == digest)) {
        return Status::Internal(
            "fabric peers disagree on block " + std::to_string(no) +
            ": enterprise " + std::to_string(e) + " vs " +
            std::to_string(it->second.second));
      }
    }
    ++e;
  }
  if (sys.env().metrics.Get("fabric.safety.double_commit") != 0) {
    return Status::Internal("a transaction id validated twice");
  }
  return Status::Ok();
}

namespace {

/// Fills in stack-appropriate defaults for a staged adversary: which
/// message types a selective-silence link swallows, and which adversaries
/// are meaningful on the stack at all (equivocation needs a Byzantine
/// engine; Fabric's pinned Raft leader only supports gray failure).
ChaosProfile ResolveAdversary(const ChaosOptions& opts) {
  ChaosProfile p = opts.profile;
  if (p.adversary == AdversaryKind::kNone) return p;
  const bool pbft = opts.stack == ChaosStack::kQanaatPbft;
  if (opts.stack == ChaosStack::kFabric &&
      p.adversary != AdversaryKind::kGrayFailure) {
    p.adversary = AdversaryKind::kNone;
    return p;
  }
  if (p.adversary == AdversaryKind::kEquivocation && !pbft) {
    // A crash-model cluster assumes no Byzantine nodes (paper §3.2); an
    // equivocation run on Paxos would test an excluded fault class.
    p.adversary = AdversaryKind::kNone;
    return p;
  }
  if (p.adversary == AdversaryKind::kSelectiveSilence &&
      p.silence_types == 0) {
    using LF = Network::LinkFault;
    // Masks must name traffic that actually FLOWS on the target's links,
    // or the rules never bite (checkpoint votes come once per interval;
    // view changes only exist once something is already wrong). PBFT:
    // swallow the primary's PRE-PREPAREs — the cluster must view-change
    // past a link-mute primary — plus the view-change/new-view and
    // checkpoint traffic toward the target, so it sits out the election
    // and recovers via the (unsilenced) fill/state-transfer path. Paxos:
    // swallow the leader's LEARNs and the fill traffic inside the window
    // — peers stall on chosen-value notifications and must catch up once
    // the window closes.
    p.silence_types =
        pbft ? LF::TypeBit(MsgType::kPrePrepare) |
                   LF::TypeBit(MsgType::kViewChange) |
                   LF::TypeBit(MsgType::kNewView) |
                   LF::TypeBit(MsgType::kCheckpoint)
             : LF::TypeBit(MsgType::kPaxosLearn) |
                   LF::TypeBit(MsgType::kCheckpoint) |
                   LF::TypeBit(MsgType::kFillRequest) |
                   LF::TypeBit(MsgType::kFillReply);
  }
  return p;
}

ChaosReport RunQanaatChaos(const ChaosOptions& opts) {
  QanaatSystem::Options so;
  so.params.num_enterprises = opts.enterprises;
  so.params.shards_per_enterprise = opts.shards_per_enterprise;
  so.params.failure_model = opts.stack == ChaosStack::kQanaatPbft
                                ? FailureModel::kByzantine
                                : FailureModel::kCrash;
  so.params.family = opts.family;
  so.params.designated_coordinator = opts.designated_coordinator;
  so.params.use_firewall =
      opts.use_firewall && opts.stack == ChaosStack::kQanaatPbft;
  so.seed = opts.seed;
  const bool firewalled = so.params.use_firewall;
  QanaatSystem sys(std::move(so));
  sys.net().set_record_delivered_links(true);
  if (opts.byzantine_executor && firewalled) {
    for (int c = 0; c < sys.cluster_count(); ++c) {
      const ClusterConfig& cc = sys.directory().Cluster(c);
      if (cc.execution.empty()) continue;
      ExecutionNode* bad =
          sys.execution_node(c, static_cast<int>(cc.execution.size()) - 1);
      bad->SetByzantine(true);
      bad->SetCorruptReplies(true);
    }
  }

  WorkloadParams wl;
  wl.cross_kind = opts.cross_kind;
  wl.cross_fraction = opts.cross_fraction;
  double per_client = opts.offered_tps / opts.client_machines;
  for (int i = 0; i < opts.client_machines; ++i) {
    ClientMachine* c = sys.AddClient(wl, per_client);
    if (opts.client_retransmit_us > 0) {
      c->SetRetransmitTimeout(opts.client_retransmit_us);
    }
    c->Start(0, opts.issue_until, 0, opts.run_until);
  }

  // Fault groups: each cluster tolerates f chaos victims among its
  // ordering nodes — initial primaries included. Primary crashes ride
  // the random corpus since the checkpoint/state-transfer subsystem:
  // view changes / ballot takeovers hand leadership over, and the
  // recovered primary converges back via state transfer.
  std::vector<CrashGroup> groups;
  AdversaryTargets targets;
  for (int c = 0; c < sys.cluster_count(); ++c) {
    const ClusterConfig& cc = sys.directory().Cluster(c);
    CrashGroup g;
    g.crashable.assign(cc.ordering.begin(), cc.ordering.end());
    g.max_faulty = sys.directory().params.f;
    groups.push_back(std::move(g));
    targets.primaries.push_back(cc.InitialPrimary());
  }
  ChaosProfile profile = ResolveAdversary(opts);
  FaultPlan plan =
      MakeRandomPlan(opts.seed, groups, opts.heal_at, profile, targets);

  ChaosReport rep;
  rep.plan_summary = plan.Summary();

  FaultInjector injector(&sys.env(), &sys.net());
  injector.Install(std::move(plan));

  Status first = Status::Ok();
  std::function<void()> audit = [&]() {
    ++rep.audits;
    if (first.ok()) {
      first = SafetyAuditor::AuditQanaat(sys, /*full=*/false, nullptr);
    }
    if (sys.env().sim.now() + opts.audit_period < opts.run_until) {
      sys.env().sim.Schedule(opts.audit_period, audit);
    }
  };
  sys.env().sim.Schedule(opts.audit_period, audit);
  // Liveness-resume clock: poll from heal until the first post-heal
  // settle (10ms granularity). The poll only reads counters, so it never
  // perturbs the network trace.
  std::function<void()> resume_poll = [&]() {
    if (sys.TotalAccepted() > rep.commits_at_heal) {
      rep.liveness_resume_us = sys.env().sim.now() - opts.heal_at;
      return;
    }
    if (sys.env().sim.now() + 10 * kMillisecond < opts.run_until) {
      sys.env().sim.Schedule(10 * kMillisecond, resume_poll);
    }
  };
  sys.env().sim.ScheduleAt(opts.heal_at + 1, [&]() {
    rep.commits_at_heal = sys.TotalAccepted();
    resume_poll();
  });

  sys.env().sim.Run(opts.run_until);

  // Post-heal convergence covers EVERY live replica — crash victims that
  // recovered, partition endpoints, all of them (the recovered-replica
  // exclusion predates state transfer). Untargeted loss still only
  // asserts prefix agreement: a message lost after the last checkpoint
  // boundary leaves no signal to catch up from.
  bool converge = !injector.plan().HasUntargetedLoss();
  static const std::set<NodeId> kNoExclusions;
  if (first.ok()) {
    ++rep.audits;
    first = SafetyAuditor::AuditQanaat(sys, /*full=*/true,
                                       converge ? &kNoExclusions : nullptr);
  }
  rep.convergence_checked = converge && first.ok();
  rep.safety = first;
  rep.trace_hash = sys.net().trace_hash();
  rep.faults_applied = injector.applied();
  rep.commits_total = sys.TotalAccepted();
  rep.liveness_resumed = rep.commits_total > rep.commits_at_heal;
  rep.net_duplicated = sys.net().duplicated();
  rep.net_reordered = sys.net().reordered();
  rep.net_dropped = sys.env().metrics.Get("net.dropped");
  rep.net_silenced = sys.net().silenced();
  return rep;
}

ChaosReport RunFabricChaos(const ChaosOptions& opts) {
  FabricConfig fc;
  fc.enterprises = std::max(2, opts.enterprises);
  fc.seed = opts.seed;
  FabricSystem sys(fc);
  sys.net().set_record_delivered_links(true);

  WorkloadParams wl;
  wl.cross_kind = opts.cross_kind;
  wl.cross_fraction = opts.cross_fraction;
  std::vector<FabricClient*> clients;
  double per_client = opts.offered_tps / opts.client_machines;
  for (int i = 0; i < opts.client_machines; ++i) {
    FabricClient* c = sys.AddClient(wl, per_client);
    c->Start(0, opts.issue_until, 0, opts.run_until);
    clients.push_back(c);
  }

  // Victims: Raft followers only (a majority with the leader survives
  // one follower down; the model pins leadership to orderer 0).
  CrashGroup g;
  for (int i = 1; i < sys.orderer_count(); ++i) {
    g.crashable.push_back(sys.orderer(i)->id());
  }
  g.max_faulty = (sys.orderer_count() - 1) / 2;

  // The only stageable adversary on this stack is a gray-failed (slow-
  // but-alive) leader: leadership is pinned, so equivocation/silence
  // have no recovery path and are resolved to kNone.
  ChaosProfile profile = ResolveAdversary(opts);
  AdversaryTargets targets;
  targets.primaries.push_back(sys.leader_id());

  // Loss is injected network-wide, exactly like the Qanaat stacks: peers
  // now have a block catch-up protocol (gap-triggered + periodic fetch
  // from the ordering service), so a block lost on the wire no longer
  // wedges a peer forever.
  FaultPlan plan =
      MakeRandomPlan(opts.seed, {g}, opts.heal_at, profile, targets);

  ChaosReport rep;
  rep.plan_summary = plan.Summary();

  FaultInjector injector(&sys.env(), &sys.net());
  injector.Install(std::move(plan));

  Status first = Status::Ok();
  std::function<void()> audit = [&]() {
    ++rep.audits;
    if (first.ok()) {
      first = SafetyAuditor::AuditFabric(sys);
    }
    if (sys.env().sim.now() + opts.audit_period < opts.run_until) {
      sys.env().sim.Schedule(opts.audit_period, audit);
    }
  };
  sys.env().sim.Schedule(opts.audit_period, audit);
  std::function<void()> resume_poll = [&]() {
    if (sys.TotalCommitted() > rep.commits_at_heal) {
      rep.liveness_resume_us = sys.env().sim.now() - opts.heal_at;
      return;
    }
    if (sys.env().sim.now() + 10 * kMillisecond < opts.run_until) {
      sys.env().sim.Schedule(10 * kMillisecond, resume_poll);
    }
  };
  sys.env().sim.ScheduleAt(opts.heal_at + 1, [&]() {
    rep.commits_at_heal = sys.TotalCommitted();
    resume_poll();
  });

  sys.env().sim.Run(opts.run_until);

  if (first.ok()) {
    ++rep.audits;
    first = SafetyAuditor::AuditFabric(sys);
  }
  if (first.ok()) {
    // Block delivery is loss-free by construction, so at quiesce every
    // peer must have applied the exact same block sequence.
    uint64_t head = sys.peers().front()->next_block_to_apply();
    for (const auto& p : sys.peers()) {
      if (p->next_block_to_apply() != head) {
        first = Status::Internal("fabric peers did not converge");
        break;
      }
    }
    rep.convergence_checked = first.ok();
  }
  rep.safety = first;
  rep.trace_hash = sys.net().trace_hash();
  rep.faults_applied = injector.applied();
  rep.commits_total = sys.TotalCommitted();
  rep.liveness_resumed = rep.commits_total > rep.commits_at_heal;
  rep.net_duplicated = sys.net().duplicated();
  rep.net_reordered = sys.net().reordered();
  rep.net_dropped = sys.env().metrics.Get("net.dropped");
  return rep;
}

}  // namespace

ChaosReport RunChaos(const ChaosOptions& opts) {
  if (opts.stack == ChaosStack::kFabric) return RunFabricChaos(opts);
  return RunQanaatChaos(opts);
}

}  // namespace qanaat
