#ifndef QANAAT_HARNESS_SWEEP_H_
#define QANAAT_HARNESS_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/fabric.h"
#include "protocols/context.h"
#include "qanaat/system.h"
#include "workload/smallbank.h"

namespace qanaat {

/// One measured point of a throughput/latency curve.
struct LoadPoint {
  double offered_tps = 0;
  double measured_tps = 0;
  double avg_latency_ms = 0;
  double p99_latency_ms = 0;
};

/// Result of a saturation sweep: the full curve plus the knee — the
/// point "just below saturation" the paper reports in its tables.
struct SweepResult {
  std::vector<LoadPoint> curve;
  LoadPoint knee;
};

/// A full Qanaat measurement configuration.
struct QanaatRunConfig {
  SystemParams params;
  WorkloadParams workload;
  std::vector<int> cluster_regions;  // §5.4 geo experiments
  int client_machines = 16;
  SimTime duration = 1500 * kMillisecond;
  SimTime warmup = 300 * kMillisecond;
  uint64_t seed = 1;
  /// Crash `count` non-primary ordering nodes (+1 exec node and +1 filter
  /// per cluster when the firewall is on) at t=0 — Table 3.
  int faulty_ordering_nodes = 0;
  /// Crash-and-recover scenario (checkpoint/state-transfer overhead
  /// bench): one non-primary ordering node per cluster crashes at
  /// `crash_at` and recovers at `recover_at` (both 0 disables). Combined
  /// with SystemParams::state_transfer / checkpoint_interval this
  /// measures what certified checkpoints buy a recovering replica.
  SimTime crash_at = 0;
  SimTime recover_at = 0;
  /// Uniform message-loss probability on every link (§5 failure runs).
  double drop_rate = 0;
  /// Client retransmission period; 0 disables (enable under loss).
  SimTime client_retransmit_us = 0;
};

/// Runs one Qanaat configuration at a fixed offered load.
LoadPoint RunQanaatPoint(const QanaatRunConfig& cfg, double offered_tps);

/// A Fabric-family baseline measurement configuration.
struct FabricRunConfig {
  FabricConfig fabric;
  WorkloadParams workload;
  int client_machines = 16;
  SimTime duration = 1500 * kMillisecond;
  SimTime warmup = 300 * kMillisecond;
  /// Crash one Raft follower at t=0 (Table 3).
  bool fail_follower = false;
  /// Message-loss probability on client links (peers have no catch-up
  /// protocol, so loss on block-delivery links would wedge them).
  double drop_rate = 0;
};

/// Runs one Fabric configuration at a fixed offered load. Throughput
/// counts only transactions that pass MVCC validation.
LoadPoint RunFabricPoint(const FabricRunConfig& cfg, double offered_tps);

/// Convenience: sweep a Fabric configuration.
SweepResult SweepFabric(const FabricRunConfig& cfg, double start_tps,
                        double growth = 1.6, int max_points = 10);

/// Generic saturation sweep over any point-runner: geometrically
/// increases offered load until measured throughput stops tracking it
/// (or latency explodes), and reports the knee.
SweepResult SaturationSweep(
    const std::function<LoadPoint(double)>& run_point, double start_tps,
    double growth = 1.6, int max_points = 10);

/// Two-phase sweep (cheaper; used by the bench binaries): first
/// over-drives the system at `capacity_guess` to measure its plateau
/// throughput, then measures the curve at ~{0.5, 0.75, 0.92} of the
/// discovered capacity. The knee is the highest point whose throughput
/// tracks its offered load — the paper's "just below saturation".
SweepResult SmartSweep(const std::function<LoadPoint(double)>& run_point,
                       double capacity_guess);

/// Plateau sweep for invalidation-limited systems (the contention
/// experiments of §5.7): useful throughput can keep growing with offered
/// load long past the point where most transactions fail, so this sweep
/// raises offered load geometrically until *measured* throughput stops
/// improving, and reports the best point.
SweepResult PlateauSweep(const std::function<LoadPoint(double)>& run_point,
                         double start_tps, double growth = 1.7,
                         int max_points = 7);

/// Convenience: sweep a Qanaat configuration.
SweepResult SweepQanaat(const QanaatRunConfig& cfg, double start_tps,
                        double growth = 1.6, int max_points = 10);

/// Printer helpers shared by the bench binaries.
void PrintCurveHeader(const std::string& series_name);
void PrintCurve(const std::string& series_name, const SweepResult& r);

}  // namespace qanaat

#endif  // QANAAT_HARNESS_SWEEP_H_
