#include "workload/smallbank.h"

#include <algorithm>

namespace qanaat {

SmallBankWorkload::SmallBankWorkload(const DataModel* model,
                                     const Directory* dir,
                                     WorkloadParams params, Rng rng)
    : model_(model),
      dir_(dir),
      params_(params),
      rng_(rng),
      zipf_(params.accounts_per_shard, params.zipf_s) {
  for (const auto& c : model_->Collections()) {
    if (c.members.size() > 1) shared_collections_.push_back(c);
  }
}

uint64_t SmallBankWorkload::KeyOn(ShardId shard, int shard_count) {
  // Zipf-ranked account, then mapped onto the shard's residue class.
  uint64_t rank = zipf_.Sample(rng_);
  return rank * static_cast<uint64_t>(shard_count) + shard;
}

Transaction SmallBankWorkload::MakeInternal(NodeId client, uint64_t ts) {
  Transaction tx;
  tx.client = client;
  tx.client_ts = ts;
  auto e = static_cast<EnterpriseId>(
      rng_.Uniform(static_cast<uint64_t>(model_->enterprise_count())));
  tx.initiator = e;
  tx.collection = CollectionId(EnterpriseSet::Single(e));
  int sc = model_->ShardCountOf(tx.collection);
  auto shard = static_cast<ShardId>(rng_.Uniform(sc));
  tx.shards = {shard};
  // sendPayment: debit src, credit dst (same shard).
  uint64_t src = KeyOn(shard, sc);
  uint64_t dst = KeyOn(shard, sc);
  int64_t amount = 1 + static_cast<int64_t>(rng_.Uniform(100));
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, src, -amount, {}});
  tx.ops.push_back(TxOp{TxOp::Kind::kAdd, dst, amount, {}});
  if (rng_.NextDouble() < params_.dep_read_fraction &&
      !shared_collections_.empty()) {
    // Internal transaction consuming shared data (e.g. the supplier
    // reading order records): read an order-dependent collection at the
    // γ-captured version.
    std::vector<CollectionId> deps =
        model_->OrderDependenciesOf(tx.collection);
    if (!deps.empty()) {
      const CollectionId& dep = deps[rng_.Uniform(deps.size())];
      tx.ops.push_back(
          TxOp{TxOp::Kind::kReadDep, KeyOn(shard, sc), 0, dep});
    }
  }
  return tx;
}

Transaction SmallBankWorkload::MakeCross(NodeId client, uint64_t ts) {
  Transaction tx;
  tx.client = client;
  tx.client_ts = ts;
  int S = dir_->params.shards_per_enterprise;
  switch (params_.cross_kind) {
    case CrossKind::kIntraShardCrossEnterprise: {
      // A payment on one shard of a shared collection (Fig 7): "each
      // transaction is randomly initiated on a single data shard of a
      // data collection shared among multiple enterprises".
      const CollectionId& c =
          shared_collections_[rng_.Uniform(shared_collections_.size())];
      tx.collection = c;
      int sc = model_->ShardCountOf(c);
      auto shard = static_cast<ShardId>(rng_.Uniform(sc));
      tx.shards = {shard};
      tx.initiator = dir_->CoordinatorEnterpriseOf(c, shard);
      int64_t amount = 1 + static_cast<int64_t>(rng_.Uniform(100));
      tx.ops.push_back(
          TxOp{TxOp::Kind::kAdd, KeyOn(shard, sc), -amount, {}});
      tx.ops.push_back(
          TxOp{TxOp::Kind::kAdd, KeyOn(shard, sc), amount, {}});
      break;
    }
    case CrossKind::kCrossShardIntraEnterprise: {
      // A payment across two shards of a local collection (Fig 8).
      auto e = static_cast<EnterpriseId>(
          rng_.Uniform(static_cast<uint64_t>(model_->enterprise_count())));
      tx.initiator = e;
      tx.collection = CollectionId(EnterpriseSet::Single(e));
      int sc = model_->ShardCountOf(tx.collection);
      auto s1 = static_cast<ShardId>(rng_.Uniform(sc));
      auto s2 = static_cast<ShardId>(rng_.Uniform(sc));
      while (sc > 1 && s2 == s1) {
        s2 = static_cast<ShardId>(rng_.Uniform(sc));
      }
      tx.shards = {std::min(s1, s2), std::max(s1, s2)};
      if (s1 == s2) tx.shards = {s1};
      int64_t amount = 1 + static_cast<int64_t>(rng_.Uniform(100));
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, KeyOn(s1, sc), -amount, {}});
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, KeyOn(s2, sc), amount, {}});
      break;
    }
    case CrossKind::kCrossShardCrossEnterprise: {
      // A payment across two shards of a shared collection (Fig 9).
      const CollectionId& c =
          shared_collections_[rng_.Uniform(shared_collections_.size())];
      tx.collection = c;
      int sc = model_->ShardCountOf(c);
      auto s1 = static_cast<ShardId>(rng_.Uniform(sc));
      auto s2 = static_cast<ShardId>(rng_.Uniform(sc));
      while (sc > 1 && s2 == s1) {
        s2 = static_cast<ShardId>(rng_.Uniform(sc));
      }
      tx.shards = {std::min(s1, s2), std::max(s1, s2)};
      if (s1 == s2) tx.shards = {s1};
      tx.initiator = dir_->CoordinatorEnterpriseOf(c, tx.shards.front());
      int64_t amount = 1 + static_cast<int64_t>(rng_.Uniform(100));
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, KeyOn(s1, sc), -amount, {}});
      tx.ops.push_back(TxOp{TxOp::Kind::kAdd, KeyOn(s2, sc), amount, {}});
      break;
    }
  }
  (void)S;
  return tx;
}

Transaction SmallBankWorkload::Next(NodeId client, uint64_t ts) {
  if (rng_.NextDouble() < params_.cross_fraction &&
      (!shared_collections_.empty() ||
       params_.cross_kind == CrossKind::kCrossShardIntraEnterprise)) {
    return MakeCross(client, ts);
  }
  return MakeInternal(client, ts);
}

int SmallBankWorkload::TargetCluster(const Transaction& tx) const {
  ShardId s = *std::min_element(tx.shards.begin(), tx.shards.end());
  EnterpriseId e = tx.collection.members.size() > 1
                       ? dir_->CoordinatorEnterpriseOf(tx.collection, s)
                       : tx.collection.members.First();
  return dir_->ClusterIdOf(e, s);
}

}  // namespace qanaat
