#ifndef QANAAT_WORKLOAD_SMALLBANK_H_
#define QANAAT_WORKLOAD_SMALLBANK_H_

#include <vector>

#include "collections/data_model.h"
#include "common/rng.h"
#include "ledger/transaction.h"
#include "protocols/context.h"

namespace qanaat {

/// Which cross-cluster dimension a workload stresses — the three
/// experiment families of §5.1–§5.3.
enum class CrossKind : uint8_t {
  kIntraShardCrossEnterprise = 0,  // Fig 7
  kCrossShardIntraEnterprise = 1,  // Fig 8
  kCrossShardCrossEnterprise = 2,  // Fig 9
};

/// Parameters of the (modified) SmallBank workload used throughout the
/// paper's evaluation: write-heavy sendPayment transactions performing
/// read-modify-writes on one or two keys of a data collection, with a
/// controllable fraction of cross-shard / cross-enterprise transactions
/// and Zipfian key selection (§5: uniform, s-value = 0 by default).
struct WorkloadParams {
  CrossKind cross_kind = CrossKind::kIntraShardCrossEnterprise;
  /// Fraction of transactions that are cross-cluster (the rest are
  /// internal intra-shard transactions on the local collection).
  double cross_fraction = 0.1;
  /// Zipfian skew for key selection within a collection shard (§5.7).
  double zipf_s = 0.0;
  /// Accounts per collection shard.
  uint64_t accounts_per_shard = 100000;
  /// Fraction of internal transactions that read an order-dependent
  /// collection (exercises γ-capture reads).
  double dep_read_fraction = 0.05;
};

/// Generates SmallBank transactions for a Qanaat deployment.
///
/// Internal transactions: sendPayment between two accounts of one shard
/// of the initiating enterprise's local collection. Cross-enterprise
/// transactions target a shared (intermediate or root) data collection;
/// cross-shard transactions touch accounts on two distinct shards.
class SmallBankWorkload {
 public:
  SmallBankWorkload(const DataModel* model, const Directory* dir,
                    WorkloadParams params, Rng rng);

  /// Draws the next transaction. `client` / `client_ts` identify it for
  /// reply matching; the signature is left unset (the client machine
  /// signs).
  Transaction Next(NodeId client, uint64_t client_ts);

  /// The cluster a transaction must be submitted to: the (designated)
  /// coordinator of its target collection + shard set.
  int TargetCluster(const Transaction& tx) const;

  const WorkloadParams& params() const { return params_; }

 private:
  Transaction MakeInternal(NodeId client, uint64_t ts);
  Transaction MakeCross(NodeId client, uint64_t ts);
  /// A key on shard `shard` of a collection (keys are sharded by
  /// key % shard_count).
  uint64_t KeyOn(ShardId shard, int shard_count);

  const DataModel* model_;
  const Directory* dir_;
  WorkloadParams params_;
  Rng rng_;
  Zipf zipf_;
  std::vector<CollectionId> shared_collections_;  // non-local collections
};

}  // namespace qanaat

#endif  // QANAAT_WORKLOAD_SMALLBANK_H_
